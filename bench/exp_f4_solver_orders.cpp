// F4 — reference-solver validation figure: convergence order of the two
// high-fidelity substrates against analytic solutions.
//   (a) Crank-Nicolson error vs dt on the free Gaussian packet
//       (expected slope ~2: the scheme is 2nd order in time), and
//   (b) split-step Fourier error vs dt on the bright soliton
//       (expected slope ~2 from Strang splitting; space is spectral).
// These orders certify the references PINNs are scored against.
#include "exp_common.hpp"

#include <cmath>

#include "fdm/crank_nicolson.hpp"
#include "fdm/split_step.hpp"
#include "quantum/analytic.hpp"

namespace {

using namespace qpinn;
using namespace qpinn::fdm;

double rel_l2(const std::vector<Complex>& a, const std::vector<Complex>& b) {
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    num += std::norm(a[i] - b[i]);
    den += std::norm(b[i]);
  }
  return std::sqrt(num / den);
}

}  // namespace

int main() {
  log::set_level(log::Level::kWarn);
  exp::print_mode_banner("F4: reference-solver convergence orders");
  const double t_final = 0.5;

  // (a) Crank-Nicolson vs dt (dt values divide t_final exactly, and the
  // analytic comparison uses the reached time steps*dt, so only the
  // temporal truncation error is measured).
  const auto packet = quantum::free_gaussian_packet(0.0, 1.0, 0.6);
  Table cn_table({"dt", "rel L2 at t=0.5", "observed order"});
  double previous_error = 0.0, previous_dt = 0.0;
  for (double dt : {5e-2, 2.5e-2, 1.25e-2, 6.25e-3}) {
    CrankNicolsonConfig config;
    config.grid = Grid1d{-10.0, 10.0, exp::full() ? 6400 : 3200, false};
    config.dt = dt;
    config.steps = static_cast<std::int64_t>(std::round(t_final / dt));
    config.store_every = config.steps;
    const double t_reached = dt * static_cast<double>(config.steps);
    const WaveEvolution evolution = solve_tdse_crank_nicolson(
        config, [&](double x) { return packet(x, 0.0); });
    std::vector<Complex> exact(evolution.x.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      exact[i] = packet(evolution.x[i], t_reached);
    }
    const double error = rel_l2(evolution.psi.back(), exact);
    std::string order = "-";
    if (previous_error > 0.0) {
      order = Table::fmt(std::log(previous_error / error) /
                             std::log(previous_dt / dt),
                         2);
    }
    cn_table.add_row({Table::fmt_sci(dt, 1), Table::fmt_sci(error, 3), order});
    previous_error = error;
    previous_dt = dt;
  }
  exp::emit(cn_table, "F4a - Crank-Nicolson temporal order (free packet)",
            "exp_f4_cn_order.csv");

  // (b) split-step Fourier vs dt.
  const auto soliton = quantum::nls_bright_soliton(1.0, 1.0);
  Table ss_table({"dt", "rel L2 at t=0.5", "observed order"});
  previous_error = previous_dt = 0.0;
  for (double dt : {5e-2, 2.5e-2, 1.25e-2, 6.25e-3}) {
    SplitStepConfig config;
    // Wide domain: the periodic images of the sech tails set the error
    // floor (~e^{-2 L}); L = 18 keeps it below 1e-12.
    config.grid = Grid1d{-18.0, 18.0, exp::full() ? 2048 : 1024, true};
    config.dt = dt;
    config.steps = static_cast<std::int64_t>(std::round(t_final / dt));
    config.store_every = config.steps;
    config.nonlinearity = -1.0;
    const double t_reached = dt * static_cast<double>(config.steps);
    const WaveEvolution evolution =
        solve_split_step(config, [&](double x) { return soliton(x, 0.0); });
    std::vector<Complex> exact(evolution.x.size());
    for (std::size_t i = 0; i < exact.size(); ++i) {
      exact[i] = soliton(evolution.x[i], t_reached);
    }
    const double error = rel_l2(evolution.psi.back(), exact);
    std::string order = "-";
    if (previous_error > 0.0) {
      order = Table::fmt(std::log(previous_error / error) /
                             std::log(previous_dt / dt),
                         2);
    }
    ss_table.add_row({Table::fmt_sci(dt, 1), Table::fmt_sci(error, 3), order});
    previous_error = error;
    previous_dt = dt;
  }
  exp::emit(ss_table, "F4b - split-step Strang order (NLS soliton)",
            "exp_f4_splitstep_order.csv");
  return 0;
}

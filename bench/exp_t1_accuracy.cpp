// T1 — accuracy table: PINN relative-L2 error against analytic / spectral
// references across the quantum benchmarks, plus the trivial-solution
// baseline (the error a collapsed, zero-late-time network would score).
//
// Shape expected from the paper family: trained PINNs land well below the
// trivial baseline (relative L2 << 1) on every benchmark; the NLS Raissi
// case is the hardest (higher-order soliton focusing).
#include "exp_common.hpp"

#include "core/metrics.hpp"

namespace {

using namespace qpinn;
using namespace qpinn::core;

struct Row {
  std::shared_ptr<SchrodingerProblem> problem;
  const char* reference_kind;
};

}  // namespace

int main() {
  log::set_level(log::Level::kWarn);
  exp::print_mode_banner("T1: benchmark accuracy");
  const std::int64_t run_epochs = exp::epochs(300, 4000);

  const Row rows[] = {
      {make_free_packet_problem(), "analytic"},
      {make_ho_coherent_problem(), "analytic"},
      {make_well_superposition_problem(), "analytic"},
      {make_nls_soliton_problem(), "analytic"},
      {make_nls_raissi_problem(), "split-step"},
  };

  Table table({"problem", "reference", "params", "epochs", "rel L2",
               "trivial-baseline L2", "max |err|", "train s"});
  for (const Row& row : rows) {
    auto model = exp::standard_model(*row.problem, /*seed=*/3);
    TrainConfig config = exp::standard_train(run_epochs, /*seed=*/3);
    if (row.problem->periodic_x()) config.sampling.n_boundary = 0;
    Trainer trainer(row.problem, model, config);

    // Trivial baseline: what a zero-field prediction scores (the failure
    // mode PINN trainings collapse to).
    const Tensor grid = grid_points(row.problem->domain(), config.metric_nx,
                                    config.metric_nt);
    const Tensor reference =
        sample_reference(row.problem->reference(), grid);
    double ref_sq = 0.0;
    for (std::int64_t i = 0; i < reference.numel(); ++i) {
      ref_sq += reference[i] * reference[i];
    }
    const double trivial = 1.0;  // ||0 - ref|| / ||ref||
    (void)ref_sq;

    const TrainResult result = trainer.fit();
    const double max_err =
        max_abs_error(*model, row.problem->reference(), row.problem->domain(),
                      config.metric_nx, config.metric_nt);
    table.add_row({row.problem->name(), row.reference_kind,
                   std::to_string(model->num_parameters()),
                   std::to_string(run_epochs), Table::fmt(result.final_l2, 4),
                   Table::fmt(trivial, 1), Table::fmt(max_err, 4),
                   Table::fmt(result.seconds, 1)});
  }
  exp::emit(table, "T1 - relative L2 error per benchmark", "exp_t1_accuracy.csv");
  return 0;
}

// F2 — ablation grid: the convergence enhancements of the reproduction
// switched on/off pairwise on the free-packet benchmark:
//   (a) random Fourier features  (spectral-bias mitigation)
//   (b) hard-IC transform        (exact initial condition)
//   (c) per-epoch collocation resampling (anti-overfitting; the component
//       this reproduction found load-bearing)
//
// Shape expected: the full recipe wins; dropping resampling hurts the
// most (residual overfitting at fixed points lets an imposter solution
// score a low training loss while the true L2 error stalls).
#include "exp_common.hpp"

namespace {
using namespace qpinn;
using namespace qpinn::core;
}  // namespace

int main() {
  log::set_level(log::Level::kWarn);
  exp::print_mode_banner("F2: feature ablation (free packet)");
  const std::int64_t run_epochs = exp::epochs(250, 2000);

  auto problem = make_free_packet_problem();

  Table table({"fourier", "hard IC", "resample", "final loss", "rel L2",
               "train s"});
  for (bool fourier : {true, false}) {
    for (bool hard_ic : {true, false}) {
      for (bool resample : {true, false}) {
        FieldModelConfig mc = default_model_config(*problem, 3);
        mc.hidden = exp::full() ? std::vector<std::int64_t>{48, 48, 48}
                                : std::vector<std::int64_t>{32, 32};
        if (fourier) {
          mc.fourier = nn::FourierConfig{exp::full() ? 32 : 16, 1.0};
        } else {
          mc.fourier.reset();
        }
        if (hard_ic) {
          mc.hard_ic =
              HardIc{problem->config().initial, problem->domain().t_lo};
        }
        auto model = make_field_model(mc);

        TrainConfig config = exp::standard_train(run_epochs, 3);
        config.resample_every = resample ? 1 : 0;
        Trainer trainer(problem, model, config);
        const TrainResult result = trainer.fit();
        table.add_row({fourier ? "on" : "off", hard_ic ? "on" : "off",
                       resample ? "on" : "off",
                       Table::fmt_sci(result.final_loss, 2),
                       Table::fmt(result.final_l2, 4),
                       Table::fmt(result.seconds, 1)});
      }
    }
  }
  exp::emit(table, "F2 - ablation of convergence enhancements",
            "exp_f2_ablation.csv");
  return 0;
}

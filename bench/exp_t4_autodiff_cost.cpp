// T4 — autodiff cost table: per-point wall-clock of the network forward
// pass versus the first-, second-, and third-order derivative chains a
// PDE residual needs, and the resulting cost multiplier.
//
// Shape expected: each extra derivative order roughly doubles-and-change
// the work (the loss-evaluation cost model c ~ 1 + sum 2^order per
// occurrence), and the parameter-gradient pass adds a comparable factor.
#include "exp_common.hpp"

#include "autodiff/derivatives.hpp"
#include "autodiff/grad.hpp"
#include "nn/mlp.hpp"

namespace {

using namespace qpinn;
using namespace qpinn::autodiff;

double time_of(const std::function<void()>& body, int repeats) {
  body();  // warm-up
  Stopwatch watch;
  for (int r = 0; r < repeats; ++r) body();
  return watch.seconds() / repeats;
}

}  // namespace

int main() {
  log::set_level(log::Level::kWarn);
  exp::print_mode_banner("T4: autodiff derivative-order cost");
  const int repeats = exp::full() ? 30 : 8;
  const std::int64_t n = exp::full() ? 4096 : 1024;

  nn::MlpConfig mc;
  mc.in_dim = 2;
  mc.out_dim = 2;
  mc.hidden = {64, 64, 64};
  mc.seed = 1;
  nn::Mlp net(mc);
  Rng rng(2);
  const Tensor X = Tensor::rand({n, 2}, rng, -1.0, 1.0);
  const auto params = net.parameters();

  const double t_forward_nograd = time_of(
      [&] {
        NoGradGuard guard;
        net.forward(Variable::constant(X));
      },
      repeats);
  const double t_forward = time_of(
      [&] { net.forward(Variable::constant(X)); }, repeats);
  const double t_param_grad = time_of(
      [&] {
        const Variable loss = mse(net.forward(Variable::constant(X)));
        grad(loss, params);
      },
      repeats);
  const double t_first = time_of(
      [&] {
        const Variable Xv = Variable::leaf(X, true);
        const Variable u = slice_cols(net.forward(Xv), 0, 1);
        const Variable loss = mse(partial(u, Xv, 1));
        grad(loss, params);
      },
      repeats);
  const double t_second = time_of(
      [&] {
        const Variable Xv = Variable::leaf(X, true);
        const Variable u = slice_cols(net.forward(Xv), 0, 1);
        const Variable loss = mse(add(partial(u, Xv, 1),
                                      partial_n(u, Xv, 0, 2)));
        grad(loss, params);
      },
      repeats);
  const double t_third = time_of(
      [&] {
        const Variable Xv = Variable::leaf(X, true);
        const Variable u = slice_cols(net.forward(Xv), 0, 1);
        const Variable loss = mse(partial_n(u, Xv, 0, 3));
        grad(loss, params);
      },
      repeats);

  const double per_point = 1e9 / static_cast<double>(n);
  Table table({"stage", "total ms", "ns / point", "x forward"});
  auto add = [&](const char* name, double seconds) {
    table.add_row({name, Table::fmt(seconds * 1e3, 3),
                   Table::fmt(seconds * per_point, 0),
                   Table::fmt(seconds / t_forward, 2)});
  };
  add("forward (no graph)", t_forward_nograd);
  add("forward (graph)", t_forward);
  add("+ parameter gradient", t_param_grad);
  add("+ u_t residual (1st order)", t_first);
  add("+ u_t, u_xx residual (2nd order)", t_second);
  add("+ u_xxx residual (3rd order)", t_third);
  exp::emit(table, "T4 - cost vs derivative order (MLP 2-64-64-64-2)",
            "exp_t4_autodiff_cost.csv");
  std::printf(
      "shape check: 2nd-order residual / plain parameter gradient = %.2f\n"
      "(cost grows roughly geometrically with derivative order)\n",
      t_second / t_param_grad);
  return 0;
}

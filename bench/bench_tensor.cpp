// B1: tensor kernel microbenchmarks — elementwise, broadcast, matmul,
// reductions. Establishes the raw-kernel baseline against which the
// autodiff overhead (bench_autodiff) is measured.
#include <benchmark/benchmark.h>

#include "tensor/kernels.hpp"
#include "util/rng.hpp"

namespace {

using namespace qpinn;

Tensor random_tensor(Shape shape, std::uint64_t seed) {
  Rng rng(seed);
  return Tensor::rand(std::move(shape), rng, -1.0, 1.0);
}

void BM_ElementwiseAdd(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = random_tensor({n}, 1);
  const Tensor b = random_tensor({n}, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::add(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ElementwiseAdd)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_ElementwiseTanh(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = random_tensor({n}, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::tanh(a));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ElementwiseTanh)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_BroadcastBiasAdd(benchmark::State& state) {
  const std::int64_t rows = state.range(0);
  const Tensor a = random_tensor({rows, 64}, 4);
  const Tensor bias = random_tensor({1, 64}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::add(a, bias));
  }
  state.SetItemsProcessed(state.iterations() * rows * 64);
}
BENCHMARK(BM_BroadcastBiasAdd)->Arg(256)->Arg(1024)->Arg(4096);

void BM_Matmul(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = random_tensor({n, 64}, 6);
  const Tensor b = random_tensor({64, 64}, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::matmul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64 * 2);
}
BENCHMARK(BM_Matmul)->Arg(128)->Arg(512)->Arg(2048);

void BM_SumAll(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = random_tensor({n}, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::sum_all(a));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_SumAll)->Arg(1 << 14)->Arg(1 << 18);

void BM_Transpose(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  const Tensor a = random_tensor({n, 64}, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::transpose(a));
  }
}
BENCHMARK(BM_Transpose)->Arg(256)->Arg(2048);

}  // namespace

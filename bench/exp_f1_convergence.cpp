// F1 — convergence figure: training loss and relative-L2 error versus
// epoch for the free-packet benchmark (series printed and written as CSV,
// ready to plot).
//
// Shape expected: monotone loss decay over orders of magnitude; the L2
// error tracks it downward and keeps improving after the loss flattens.
#include "exp_common.hpp"

namespace {
using namespace qpinn;
using namespace qpinn::core;
}  // namespace

int main() {
  log::set_level(log::Level::kWarn);
  exp::print_mode_banner("F1: convergence curves (free packet)");
  const std::int64_t run_epochs = exp::epochs(400, 4000);

  auto problem = make_free_packet_problem();
  auto model = exp::standard_model(*problem, 3);
  TrainConfig config = exp::standard_train(run_epochs, 3);
  config.eval_every = std::max<std::int64_t>(1, run_epochs / 20);
  Trainer trainer(problem, model, config);
  const TrainResult result = trainer.fit();

  Table table({"epoch", "total loss", "pde loss", "rel L2", "lr",
               "grad norm"});
  for (const EpochRecord& record : result.history) {
    if (std::isnan(record.l2)) continue;  // keep only evaluation epochs
    table.add_row({std::to_string(record.epoch),
                   Table::fmt_sci(record.total_loss, 3),
                   Table::fmt_sci(record.pde_loss, 3),
                   Table::fmt(record.l2, 4), Table::fmt_sci(record.lr, 2),
                   Table::fmt_sci(record.grad_norm, 2)});
  }
  exp::emit(table, "F1 - loss / L2 vs epoch (free packet)",
            "exp_f1_convergence.csv");
  std::printf("final: loss %.3e, rel L2 %.4f in %.1fs\n", result.final_loss,
              result.final_l2, result.seconds);
  return 0;
}

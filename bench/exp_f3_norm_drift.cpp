// F3 — physics-fidelity figure: total probability N(t) = integral
// |psi|^2 dx of the trained model over time, with and without the global
// norm-conservation loss term.
//
// Shape expected: the Schrödinger flow conserves N exactly; an
// unconstrained PINN lets N(t) sag away from the initial slice, and the
// conservation penalty pins it near 1 — the same role global invariants
// play in stabilizing PINN training throughout this literature.
#include "exp_common.hpp"

#include "core/metrics.hpp"

namespace {
using namespace qpinn;
using namespace qpinn::core;
}  // namespace

int main() {
  log::set_level(log::Level::kWarn);
  exp::print_mode_banner("F3: norm conservation (HO coherent state)");
  const std::int64_t run_epochs = exp::epochs(250, 2500);

  BenchmarkOverrides with_norm;
  with_norm.weight_norm = 1.0;
  auto problem_with = make_ho_coherent_problem(with_norm);
  auto problem_without = make_ho_coherent_problem();

  auto run = [&](std::shared_ptr<SchrodingerProblem> problem) {
    auto model = exp::standard_model(*problem, 7);
    Trainer trainer(problem, model, exp::standard_train(run_epochs, 7));
    trainer.fit();
    return std::make_pair(model, trainer.evaluate_l2());
  };
  auto [model_with, l2_with] = run(problem_with);
  auto [model_without, l2_without] = run(problem_without);

  const Domain d = problem_with->domain();
  std::vector<double> times;
  const int slices = 11;
  for (int i = 0; i < slices; ++i) {
    times.push_back(d.t_lo + d.t_span() * i / (slices - 1));
  }
  const auto series_with = norm_series(*model_with, d, 201, times);
  const auto series_without = norm_series(*model_without, d, 201, times);

  Table table({"t", "N(t) with norm loss", "N(t) without", "target"});
  for (int i = 0; i < slices; ++i) {
    table.add_row({Table::fmt(times[static_cast<std::size_t>(i)], 3),
                   Table::fmt(series_with[static_cast<std::size_t>(i)], 5),
                   Table::fmt(series_without[static_cast<std::size_t>(i)], 5),
                   "1.00000"});
  }
  exp::emit(table, "F3 - total probability over time", "exp_f3_norm_drift.csv");
  std::printf(
      "max |N(t) - N(0)|: with norm loss %.4f, without %.4f\n"
      "rel L2: with %.4f, without %.4f\n",
      max_norm_drift(series_with), max_norm_drift(series_without), l2_with,
      l2_without);
  return 0;
}

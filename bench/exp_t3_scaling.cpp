// T3 — strong-scaling table: wall-clock per training step versus worker
// threads at fixed problem size, plus the serial/parallel loss agreement
// that certifies the decomposition is exact.
//
// Shape expected from the paper family (ICPP systems angle): near-linear
// speedup while shards stay large; the harness machine may have a single
// core (speedup ~1), which the table reports honestly — the decomposition
// itself is validated by the loss-agreement column.
#include "exp_common.hpp"

#include <cmath>
#include <thread>

#include "parallel/thread_pool.hpp"

namespace {

using namespace qpinn;
using namespace qpinn::core;

}  // namespace

int main() {
  log::set_level(log::Level::kWarn);
  exp::print_mode_banner("T3: data-parallel strong scaling");
  const int repeats = exp::full() ? 10 : 3;
  const std::int64_t side = exp::full() ? 40 : 24;

  auto problem = make_free_packet_problem();

  // Serial reference loss for the agreement column.
  double serial_loss = 0.0;
  double serial_time = 0.0;
  {
    set_global_threads(1);
    auto model = exp::standard_model(*problem, 5);
    TrainConfig config = exp::standard_train(1, 5);
    config.sampling.n_interior_x = side;
    config.sampling.n_interior_t = side;
    config.resample_every = 0;
    config.threads = 1;
    Trainer trainer(problem, model, config);
    trainer.step(0);  // warm-up (allocator, pool)
    Stopwatch watch;
    for (int r = 0; r < repeats; ++r) {
      serial_loss = trainer.step(0).total_loss;
    }
    serial_time = watch.seconds() / repeats;
  }

  Table table({"threads", "hw threads", "step ms", "speedup", "efficiency",
               "loss rel diff vs serial"});
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    set_global_threads(threads);
    auto model = exp::standard_model(*problem, 5);
    TrainConfig config = exp::standard_train(1, 5);
    config.sampling.n_interior_x = side;
    config.sampling.n_interior_t = side;
    config.resample_every = 0;
    config.threads = threads;
    Trainer trainer(problem, model, config);
    trainer.step(0);
    Stopwatch watch;
    double loss = 0.0;
    for (int r = 0; r < repeats; ++r) {
      loss = trainer.step(0).total_loss;
    }
    const double step_time = watch.seconds() / repeats;
    const double speedup = serial_time / step_time;
    table.add_row(
        {std::to_string(threads),
         std::to_string(std::thread::hardware_concurrency()),
         Table::fmt(step_time * 1e3, 2), Table::fmt(speedup, 2),
         Table::fmt(speedup / static_cast<double>(threads), 2),
         Table::fmt_sci(
             std::abs(loss - serial_loss) / std::max(1e-300, serial_loss),
             2)});
  }
  set_global_threads(default_num_threads());
  exp::emit(table, "T3 - training-step strong scaling", "exp_t3_scaling.csv");
  std::printf(
      "note: speedup is bounded by the machine's hardware threads; the\n"
      "loss-agreement column certifies the shard decomposition is exact\n"
      "regardless of available cores.\n");
  return 0;
}

// T3 — strong-scaling tables: wall-clock per training step versus worker
// threads (T3) and versus loopback process ranks (T3b) at fixed problem
// size, plus the serial/parallel loss agreement that certifies each
// decomposition is exact.
//
// Shape expected from the paper family (ICPP systems angle): near-linear
// speedup while shards stay large; the harness machine may have a single
// core (speedup ~1), which the table reports honestly — the decomposition
// itself is validated by the loss-agreement column.
#include "exp_common.hpp"

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "dist/communicator.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace qpinn;
using namespace qpinn::core;

/// One loopback rank of the T3b job: trainer + its communicator.
struct RankJob {
  std::shared_ptr<core::FieldModel> model;
  std::unique_ptr<Trainer> trainer;
};

RankJob make_rank_job(std::int64_t side,
                      std::shared_ptr<dist::Communicator> comm) {
  RankJob job;
  auto problem = make_free_packet_problem();
  job.model = exp::standard_model(*problem, 5);
  TrainConfig config = exp::standard_train(1, 5);
  config.sampling.n_interior_x = side;
  config.sampling.n_interior_t = side;
  config.resample_every = 0;
  config.dist = std::move(comm);
  job.trainer = std::make_unique<Trainer>(problem, job.model, config);
  return job;
}

}  // namespace

int main() {
  log::set_level(log::Level::kWarn);
  exp::print_mode_banner("T3: data-parallel strong scaling");
  const int repeats = exp::full() ? 10 : 3;
  const std::int64_t side = exp::full() ? 40 : 24;

  auto problem = make_free_packet_problem();

  // Serial reference loss for the agreement column.
  double serial_loss = 0.0;
  double serial_time = 0.0;
  {
    set_global_threads(1);
    auto model = exp::standard_model(*problem, 5);
    TrainConfig config = exp::standard_train(1, 5);
    config.sampling.n_interior_x = side;
    config.sampling.n_interior_t = side;
    config.resample_every = 0;
    config.threads = 1;
    Trainer trainer(problem, model, config);
    trainer.step(0);  // warm-up (allocator, pool)
    Stopwatch watch;
    for (int r = 0; r < repeats; ++r) {
      serial_loss = trainer.step(0).total_loss;
    }
    serial_time = watch.seconds() / repeats;
  }

  Table table({"threads", "hw threads", "step ms", "speedup", "efficiency",
               "loss rel diff vs serial"});
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{8}}) {
    set_global_threads(threads);
    auto model = exp::standard_model(*problem, 5);
    TrainConfig config = exp::standard_train(1, 5);
    config.sampling.n_interior_x = side;
    config.sampling.n_interior_t = side;
    config.resample_every = 0;
    config.threads = threads;
    Trainer trainer(problem, model, config);
    trainer.step(0);
    Stopwatch watch;
    double loss = 0.0;
    for (int r = 0; r < repeats; ++r) {
      loss = trainer.step(0).total_loss;
    }
    const double step_time = watch.seconds() / repeats;
    const double speedup = serial_time / step_time;
    table.add_row(
        {std::to_string(threads),
         std::to_string(std::thread::hardware_concurrency()),
         Table::fmt(step_time * 1e3, 2), Table::fmt(speedup, 2),
         Table::fmt(speedup / static_cast<double>(threads), 2),
         Table::fmt_sci(
             std::abs(loss - serial_loss) / std::max(1e-300, serial_loss),
             2)});
  }
  set_global_threads(default_num_threads());
  exp::emit(table, "T3 - training-step strong scaling", "exp_t3_scaling.csv");

  // T3b — the same strong-scaling question at the process level: loopback
  // dist ranks (socketpair transport, rank-ordered all-reduce) instead of
  // pool threads. The agreement column compares each world against a
  // single-process run with threads=world shards — the dist runtime's
  // bit-identity contract — so 0 certifies that going multi-process
  // changes nothing about the mathematics.
  Table table2({"ranks", "step ms", "speedup", "efficiency",
                "loss rel diff vs threads=N"});
  for (const std::int64_t world : {1, 2, 4}) {
    // Reference: one process, `world` logical shards, pool size 1 — the
    // epoch schedule (0 warmup, then 1..repeats) matches the dist job.
    double ref_loss = 0.0;
    {
      set_global_threads(1);
      auto problem = make_free_packet_problem();
      auto model = exp::standard_model(*problem, 5);
      TrainConfig config = exp::standard_train(1, 5);
      config.sampling.n_interior_x = side;
      config.sampling.n_interior_t = side;
      config.resample_every = 0;
      config.threads = static_cast<std::size_t>(world);
      Trainer trainer(problem, model, config);
      trainer.step(0);
      for (int r = 1; r <= repeats; ++r) {
        ref_loss = trainer.step(r).total_loss;
      }
    }

    set_global_threads(1);
    auto comms = dist::Communicator::loopback(world);
    std::vector<RankJob> jobs;
    for (std::int64_t r = 0; r < world; ++r) {
      jobs.push_back(make_rank_job(side, comms[static_cast<std::size_t>(r)]));
    }
    // Worker ranks run the full epoch schedule on background threads; the
    // collectives hold every rank in lockstep with the timed root, so the
    // root's wall clock is the job's.
    std::vector<std::thread> workers;
    for (std::int64_t r = 1; r < world; ++r) {
      workers.emplace_back([&jobs, r, repeats] {
        Trainer& t = *jobs[static_cast<std::size_t>(r)].trainer;
        for (int e = 0; e <= repeats; ++e) t.step(e);
      });
    }
    jobs[0].trainer->step(0);  // warm-up
    Stopwatch watch;
    double loss = 0.0;
    for (int e = 1; e <= repeats; ++e) {
      loss = jobs[0].trainer->step(e).total_loss;
    }
    const double step_time = watch.seconds() / repeats;
    for (auto& w : workers) w.join();

    const double speedup = serial_time / step_time;
    table2.add_row(
        {std::to_string(world), Table::fmt(step_time * 1e3, 2),
         Table::fmt(speedup, 2),
         Table::fmt(speedup / static_cast<double>(world), 2),
         Table::fmt_sci(
             std::abs(loss - ref_loss) / std::max(1e-300, ref_loss), 2)});
  }
  set_global_threads(default_num_threads());
  exp::emit(table2, "T3b - process-level strong scaling (loopback ranks)",
            "exp_t3b_dist_scaling.csv");
  std::printf(
      "note: speedup is bounded by the machine's hardware threads; the\n"
      "agreement columns certify the shard decompositions are exact\n"
      "regardless of available cores (process ranks reproduce threads=N\n"
      "bit-for-bit by construction of the rank-ordered reduction).\n");
  return 0;
}

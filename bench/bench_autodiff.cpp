// B2: autodiff overhead — forward pass, first-order gradient, and the
// PDE-style second-order derivative chain on a PINN-sized MLP. Read
// together with bench_tensor to see the framework's cost over raw kernels.
#include <benchmark/benchmark.h>

#include "autodiff/derivatives.hpp"
#include "autodiff/grad.hpp"
#include "autodiff/ops.hpp"
#include "nn/mlp.hpp"
#include "util/rng.hpp"

namespace {

using namespace qpinn;
using namespace qpinn::autodiff;

nn::MlpConfig mlp_config() {
  nn::MlpConfig config;
  config.in_dim = 2;
  config.out_dim = 2;
  config.hidden = {64, 64, 64};
  config.seed = 1;
  return config;
}

Tensor batch(std::int64_t n) {
  Rng rng(2);
  return Tensor::rand({n, 2}, rng, -1.0, 1.0);
}

void BM_MlpForwardNoGrad(benchmark::State& state) {
  nn::Mlp net(mlp_config());
  const Tensor X = batch(state.range(0));
  for (auto _ : state) {
    NoGradGuard guard;
    benchmark::DoNotOptimize(net.forward(Variable::constant(X)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpForwardNoGrad)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MlpForwardWithGraph(benchmark::State& state) {
  nn::Mlp net(mlp_config());
  const Tensor X = batch(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(Variable::constant(X)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpForwardWithGraph)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MlpParameterGradient(benchmark::State& state) {
  nn::Mlp net(mlp_config());
  const Tensor X = batch(state.range(0));
  const auto params = net.parameters();
  for (auto _ : state) {
    const Variable loss = mse(net.forward(Variable::constant(X)));
    benchmark::DoNotOptimize(grad(loss, params));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MlpParameterGradient)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PdeSecondOrderResidual(benchmark::State& state) {
  // The full PINN residual pattern: u_t and u_xx via double backward,
  // then the parameter gradient of their MSE.
  nn::Mlp net(mlp_config());
  const Tensor X = batch(state.range(0));
  const auto params = net.parameters();
  for (auto _ : state) {
    const Variable Xv = Variable::leaf(X, /*requires_grad=*/true);
    const Variable out = net.forward(Xv);
    const Variable u = slice_cols(out, 0, 1);
    const Variable u_t = partial(u, Xv, 1);
    const Variable u_xx = partial_n(u, Xv, 0, 2);
    const Variable loss = mse(add(u_t, u_xx));
    benchmark::DoNotOptimize(grad(loss, params));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PdeSecondOrderResidual)->Arg(256)->Arg(1024)->Arg(4096);

void BM_GraphNodeConstruction(benchmark::State& state) {
  // Per-op framework overhead on small tensors (graph bookkeeping bound).
  const Variable x = Variable::leaf(Tensor::ones({8, 8}));
  for (auto _ : state) {
    Variable y = x;
    for (int i = 0; i < 64; ++i) y = tanh(add_scalar(y, 1e-3));
    benchmark::DoNotOptimize(y);
  }
  state.SetItemsProcessed(state.iterations() * 128);  // ops per iteration
}
BENCHMARK(BM_GraphNodeConstruction);

}  // namespace

// B4: training-step cost — one full PINN optimization step (residual +
// aux losses + parameter update) versus collocation count and versus
// worker-thread count (shared-memory stand-in for the GPU batch).
#include <benchmark/benchmark.h>

#include "core/benchmarks.hpp"
#include "core/trainer.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using namespace qpinn;
using namespace qpinn::core;

void BM_TrainingStepVsPoints(benchmark::State& state) {
  const std::int64_t side = state.range(0);
  auto problem = make_free_packet_problem();
  FieldModelConfig mc = default_model_config(*problem, 1);
  mc.hidden = {48, 48, 48};
  mc.fourier = nn::FourierConfig{32, 1.0};
  auto model = make_field_model(mc);

  TrainConfig tc = default_train_config(/*epochs=*/1, /*seed=*/1);
  tc.sampling.n_interior_x = side;
  tc.sampling.n_interior_t = side;
  tc.resample_every = 0;
  Trainer trainer(problem, model, tc);

  std::int64_t epoch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.step(epoch++));
  }
  state.SetItemsProcessed(state.iterations() * side * side);
}
BENCHMARK(BM_TrainingStepVsPoints)->Arg(10)->Arg(20)->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_TrainingStepVsThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  set_global_threads(std::max<std::size_t>(threads, 1));
  auto problem = make_free_packet_problem();
  FieldModelConfig mc = default_model_config(*problem, 1);
  mc.hidden = {48, 48, 48};
  mc.fourier = nn::FourierConfig{32, 1.0};
  auto model = make_field_model(mc);

  TrainConfig tc = default_train_config(/*epochs=*/1, /*seed=*/1);
  tc.sampling.n_interior_x = 32;
  tc.sampling.n_interior_t = 32;
  tc.resample_every = 0;
  tc.threads = threads;
  Trainer trainer(problem, model, tc);

  std::int64_t epoch = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.step(epoch++));
  }
  set_global_threads(default_num_threads());
}
BENCHMARK(BM_TrainingStepVsThreads)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// B3: reference-solver microbenchmarks — FFT, Crank-Nicolson steps,
// split-step steps, Sturm eigensolve.
#include <benchmark/benchmark.h>

#include <complex>

#include "fdm/crank_nicolson.hpp"
#include "fdm/eigensolver.hpp"
#include "fdm/fft.hpp"
#include "fdm/split_step.hpp"
#include "quantum/potentials.hpp"
#include "util/rng.hpp"

namespace {

using namespace qpinn;
using namespace qpinn::fdm;

void BM_Fft(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::complex<double>> a(n);
  for (auto& v : a) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  for (auto _ : state) {
    auto copy = a;
    fft_inplace(copy);
    benchmark::DoNotOptimize(copy);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_CrankNicolsonStep(benchmark::State& state) {
  const std::int64_t nx = state.range(0);
  CrankNicolsonConfig config;
  config.grid = Grid1d{-8.0, 8.0, nx, false};
  config.dt = 1e-3;
  config.steps = 1;
  config.store_every = 1;
  config.potential = quantum::harmonic_potential();
  const auto psi0 = [](double x) {
    return Complex(std::exp(-x * x), 0.0);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_tdse_crank_nicolson(config, psi0));
  }
  state.SetItemsProcessed(state.iterations() * nx);
}
BENCHMARK(BM_CrankNicolsonStep)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SplitStepStep(benchmark::State& state) {
  const std::int64_t nx = state.range(0);
  SplitStepConfig config;
  config.grid = Grid1d{-8.0, 8.0, nx, true};
  config.dt = 1e-3;
  config.steps = 1;
  config.store_every = 1;
  config.nonlinearity = -1.0;
  const auto psi0 = [](double x) {
    return Complex(1.0 / std::cosh(x), 0.0);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_split_step(config, psi0));
  }
  state.SetItemsProcessed(state.iterations() * nx);
}
BENCHMARK(BM_SplitStepStep)->Arg(256)->Arg(1024)->Arg(4096);

void BM_SturmEigenvalues(benchmark::State& state) {
  const std::int64_t nx = state.range(0);
  const Grid1d grid{-8.0, 8.0, nx, false};
  const SymTridiag h = build_hamiltonian(grid, quantum::harmonic_potential());
  for (auto _ : state) {
    benchmark::DoNotOptimize(smallest_eigenvalues(h, 4));
  }
}
BENCHMARK(BM_SturmEigenvalues)->Arg(201)->Arg(801)->Arg(3201);

}  // namespace

// bench_report — machine-readable performance report for the hot path.
//
// Times the tensor / autodiff / training-step suites and writes a JSON
// report (default BENCH_qpinn.json) with ns/op plus allocations/op and
// pool-reuses/op taken from the storage pool's own counters. The summary
// block measures the pool's allocation win directly: the same training
// step is run with the pool enabled and disabled and the per-step heap
// allocation counts are compared (alloc_reduction_x).
//
// CI runs `bench_report --quick` and diffs the report against the
// committed baseline with tools/bench_compare.py (warn-only — timing on
// shared runners is noisy; the allocation counts are exact and stable).
//
// Usage:
//   bench_report [--quick] [--out BENCH_qpinn.json] [--threads N]

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <limits>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "autodiff/grad.hpp"
#include "autodiff/ops.hpp"
#include "autodiff/plan.hpp"
#include "autodiff/plan_passes.hpp"
#include "autodiff/precision.hpp"
#include "core/benchmarks.hpp"
#include "core/field_model.hpp"
#include "core/trainer.hpp"
#include "dist/communicator.hpp"
#include "serve/compiled_model.hpp"
#include "serve/model_registry.hpp"
#include "serve/query_queue.hpp"
#include "optim/adam.hpp"
#include "optim/lbfgs.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/kernels.hpp"
#include "tensor/kernels_f32.hpp"
#include "tensor/simd.hpp"
#include "tensor/storage_pool.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using qpinn::Rng;
using qpinn::Shape;
using qpinn::StoragePool;
using qpinn::Stopwatch;
using qpinn::Tensor;
namespace ad = qpinn::autodiff;
namespace k = qpinn::kernels;

struct Result {
  std::string suite;
  std::string op;
  std::string shape;
  double ns_per_op = 0.0;
  double allocs_per_op = 0.0;
  double reuses_per_op = 0.0;
  double gflops = 0.0;  // 0 when the op has no meaningful flop count
};

// Best-of-passes count, shared with the dist rows: the worker-rank threads
// must issue exactly the 1 + kPasses*reps collective calls the timed body
// makes, or the loopback ranks deadlock.
constexpr int kPasses = 3;

template <typename F>
Result time_op(const std::string& suite, const std::string& op,
               const std::string& shape, int reps, F body,
               double flops_per_op = 0.0) {
  body();  // warmup: fills the pool's free lists and touches the caches
  StoragePool& pool = StoragePool::instance();
  const auto s0 = pool.stats();
  // Best-of-passes: interference spikes (shared runners, frequency ramps)
  // only ever make a pass slower, so the minimum is the robust estimate.
  double ns = std::numeric_limits<double>::infinity();
  for (int p = 0; p < kPasses; ++p) {
    Stopwatch sw;
    for (int r = 0; r < reps; ++r) body();
    ns = std::min(ns, sw.seconds() * 1e9 / reps);
  }
  const auto s1 = pool.stats();
  Result res;
  res.suite = suite;
  res.op = op;
  res.shape = shape;
  res.ns_per_op = ns;
  const int total_reps = reps * kPasses;
  res.allocs_per_op =
      static_cast<double>(s1.heap_allocations - s0.heap_allocations) /
      total_reps;
  res.reuses_per_op =
      static_cast<double>(s1.pool_reuses - s0.pool_reuses) / total_reps;
  if (flops_per_op > 0.0 && ns > 0.0) res.gflops = flops_per_op / ns;
  return res;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

/// Six-parameter tanh MLP (2 -> 64 -> 64 -> 1) on a 256-point batch — the
/// same network scale the PINN examples train. The dist rows shard the
/// batch, so the row count is a parameter.
struct BenchModel {
  ad::Variable w1, b1, w2, b2, w3, b3;
  ad::Variable x;
  std::vector<ad::Variable> params;

  explicit BenchModel(Rng& rng, std::int64_t rows = 256)
      : w1(ad::Variable::leaf(Tensor::randn({2, 64}, rng, 0.0, 0.3))),
        b1(ad::Variable::leaf(Tensor::zeros({1, 64}))),
        w2(ad::Variable::leaf(Tensor::randn({64, 64}, rng, 0.0, 0.3))),
        b2(ad::Variable::leaf(Tensor::zeros({1, 64}))),
        w3(ad::Variable::leaf(Tensor::randn({64, 1}, rng, 0.0, 0.3))),
        b3(ad::Variable::leaf(Tensor::zeros({1, 1}))),
        x(ad::Variable::constant(Tensor::rand({rows, 2}, rng, -1.0, 1.0))),
        params{w1, b1, w2, b2, w3, b3} {}

  ad::Variable loss() const {
    ad::Variable h = ad::tanh(ad::add(ad::matmul(x, w1), b1));
    h = ad::tanh(ad::add(ad::matmul(h, w2), b2));
    return ad::mean_all(ad::square(ad::add(ad::matmul(h, w3), b3)));
  }
};

}  // namespace

int main(int argc, char** argv) {
  qpinn::CliParser cli(
      "bench_report",
      "Timed perf suites with pool allocation counters. Every row carries a "
      "gflops estimate; transcendentals (tanh etc.) count as 1 flop by "
      "convention, so composite rows stay comparable across kernels.");
  cli.add_flag("quick", "fewer repetitions (CI configuration)");
  cli.add_string("out", "BENCH_qpinn.json", "output JSON path");
  cli.add_int("threads", 0, "worker threads (0 = default)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  if (cli.get_int("threads") > 0) {
    qpinn::set_global_threads(static_cast<std::size_t>(cli.get_int("threads")));
  }
  const bool quick = cli.get_flag("quick");
  const int r_small = quick ? 200 : 2000;   // cheap ops
  const int r_mid = quick ? 50 : 500;       // mid-size matmuls
  const int r_big = quick ? 10 : 100;       // 256x256 matmuls, train step

  Rng rng(7);
  StoragePool& pool = StoragePool::instance();
  std::vector<Result> results;

  // ---- tensor suite ------------------------------------------------------
  {
    const Tensor a = Tensor::rand({256, 256}, rng, -1.0, 1.0);
    const Tensor b = Tensor::rand({256, 256}, rng, -1.0, 1.0);
    const Tensor a64 = Tensor::rand({64, 64}, rng, -1.0, 1.0);
    const Tensor b64 = Tensor::rand({64, 64}, rng, -1.0, 1.0);
    const Tensor v1 = Tensor::rand({1 << 16}, rng, -1.0, 1.0);
    const Tensor v2 = Tensor::rand({1 << 16}, rng, -1.0, 1.0);
    Tensor acc = v1.clone();
    const double n_elem = 256.0 * 256.0;
    const double n_vec = static_cast<double>(1 << 16);
    results.push_back(time_op("tensor", "add", "256x256", r_mid,
                              [&] { k::add(a, b); }, n_elem));
    results.push_back(time_op("tensor", "mul", "256x256", r_mid,
                              [&] { k::mul(a, b); }, n_elem));
    results.push_back(time_op("tensor", "matmul", "64x64x64", r_mid,
                              [&] { k::matmul(a64, b64); },
                              2.0 * 64.0 * 64.0 * 64.0));
    results.push_back(time_op("tensor", "matmul", "256x256x256", r_big,
                              [&] { k::matmul(a, b); }, 2.0 * 256.0 * n_elem));
    results.push_back(time_op("tensor", "matmul_tn", "256x256x256", r_big,
                              [&] { k::matmul_tn(a, b); },
                              2.0 * 256.0 * n_elem));
    results.push_back(time_op("tensor", "matmul_nt", "256x256x256", r_big,
                              [&] { k::matmul_nt(a, b); },
                              2.0 * 256.0 * n_elem));
    results.push_back(time_op("tensor", "dot", "65536", r_small,
                              [&] { k::dot(v1, v2); }, 2.0 * n_vec));
    results.push_back(time_op("tensor", "axpy_inplace", "65536", r_small,
                              [&] { k::axpy_inplace(acc, 0.5, v2); },
                              2.0 * n_vec));
    results.push_back(time_op("tensor", "sum_to", "256x256->1x256", r_small,
                              [&] { k::sum_to(a, Shape{1, 256}); }, n_elem));

    // Fused kernels introduced by the SIMD layer.
    Tensor acc2 = v1.clone();
    const Tensor w_col = Tensor::rand({256, 1}, rng, 0.0, 1.0);
    const Tensor bias_row = Tensor::rand({1, 256}, rng, -1.0, 1.0);
    Tensor param = Tensor::rand({1 << 16}, rng, -1.0, 1.0);
    Tensor grad = Tensor::rand({1 << 16}, rng, -1.0, 1.0);
    Tensor m = Tensor::zeros({1 << 16});
    Tensor v = Tensor::zeros({1 << 16});
    k::AdamStepConfig adam_cfg;
    adam_cfg.lr = 1e-3;
    adam_cfg.beta1 = 0.9;
    adam_cfg.beta2 = 0.999;
    adam_cfg.eps = 1e-8;
    adam_cfg.bias_corr1 = 0.1;
    adam_cfg.bias_corr2 = 0.001;
    results.push_back(time_op("tensor", "axpby_inplace", "65536", r_small,
                              [&] { k::axpby_inplace(acc2, 0.9, 0.1, v2); },
                              3.0 * n_vec));
    results.push_back(time_op("tensor", "square_sum", "256x256", r_mid,
                              [&] { k::square_sum_all(a); }, 2.0 * n_elem));
    results.push_back(
        time_op("tensor", "weighted_square_sum", "256x1,256x256", r_mid,
                [&] { k::weighted_square_sum_all(w_col, a); }, 3.0 * n_elem));
    results.push_back(time_op("tensor", "bias_tanh", "256x256", r_mid,
                              [&] { k::bias_tanh(a, bias_row); },
                              2.0 * n_elem));
    results.push_back(
        time_op("tensor", "adam_step", "65536", r_small,
                [&] { k::adam_step_inplace(param, grad, m, v, adam_cfg); },
                14.0 * n_vec));

    // fp32 twins of the hottest sweeps — the kernels the mixed-precision
    // replay path (QPINN_PRECISION=mixed) executes through the fp32 SIMD
    // tables. Same shapes and chunking as the fp64 rows above, so the
    // row-to-row ratio is the raw width win on this machine.
    {
      namespace f32 = qpinn::kernels_f32;
      const std::size_t ne = static_cast<std::size_t>(n_elem);
      std::vector<float> fa(ne), fb(ne), fo(ne), fbias(256);
      f32::downcast(fa.data(), a.data(), ne);
      f32::downcast(fb.data(), b.data(), ne);
      f32::downcast(fbias.data(), bias_row.data(), 256);
      results.push_back(time_op(
          "tensor", "add_f32", "256x256", r_mid,
          [&] {
            f32::bin_same(qpinn::simd::kAdd, fa.data(), fb.data(), fo.data(),
                          ne);
          },
          n_elem));
      results.push_back(time_op(
          "tensor", "mul_f32", "256x256", r_mid,
          [&] {
            f32::bin_same(qpinn::simd::kMul, fa.data(), fb.data(), fo.data(),
                          ne);
          },
          n_elem));
      results.push_back(
          time_op("tensor", "bias_tanh_f32", "256x256", r_mid,
                  [&] {
                    f32::bias_tanh(fa.data(), fbias.data(), fo.data(), 256,
                                   256);
                  },
                  2.0 * n_elem));
      results.push_back(
          time_op("tensor", "matmul_f32", "256x256x256", r_big,
                  [&] { f32::matmul(fa.data(), fb.data(), fo.data(), 256, 256,
                                    256); },
                  2.0 * 256.0 * n_elem));
    }
  }

  // Flop model for the 2-64-64-1 tanh MLP on the 256-row batch (one flop
  // per transcendental). Forward: matmuls at 2NKM plus the bias adds, tanh
  // sweeps, and the mean-square head. Backward: the reverse-mode matmul
  // pair per layer (the input x is a constant, so layer 1 only computes the
  // weight gradient), d tanh = (1 - t^2) * g at 4 flops/elem, and the bias
  // sum_to reductions. Adam adds 14 flops per parameter element.
  const double h_elems = 256.0 * 64.0;
  const double mlp_fwd_flops =
      2.0 * 256.0 * 2.0 * 64.0 + h_elems +   // x@W1 + b1
      h_elems +                              // tanh
      2.0 * 256.0 * 64.0 * 64.0 + h_elems +  // h@W2 + b2
      h_elems +                              // tanh
      2.0 * 256.0 * 64.0 + 256.0 +           // h@W3 + b3
      2.0 * 256.0 + 1.0;                     // square + mean
  const double mlp_bwd_flops =
      2.0 * 256.0 + 512.0 +                                // head backward
      2.0 * 64.0 * 256.0 + 2.0 * 256.0 * 64.0 + 256.0 +    // dW3, dh2, db3
      4.0 * h_elems +                                      // d tanh (layer 2)
      2.0 * 64.0 * 256.0 * 64.0 + 2.0 * 256.0 * 64.0 * 64.0 +
      h_elems +                                            // dW2, dh1, db2
      4.0 * h_elems +                                      // d tanh (layer 1)
      2.0 * 2.0 * 256.0 * 64.0 + h_elems;                  // dW1, db1
  const double mlp_grad_flops = mlp_fwd_flops + mlp_bwd_flops;
  const double n_params = 2.0 * 64.0 + 64.0 + 64.0 * 64.0 + 64.0 + 64.0 + 1.0;
  const double train_step_flops = mlp_grad_flops + 14.0 * n_params;

  // ---- autodiff suite ----------------------------------------------------
  BenchModel model(rng);
  results.push_back(time_op("autodiff", "mlp_forward", "256x2->1", r_mid,
                            [&] { model.loss(); }, mlp_fwd_flops));
  results.push_back(time_op("autodiff", "mlp_grad", "256x2->1", r_mid,
                            [&] { ad::grad(model.loss(), model.params); },
                            mlp_grad_flops));

  // Graph replay (autodiff/plan.hpp): capture the forward pass once, then
  // replay the recorded kernel schedule — no tape, no Node allocations, no
  // pool traffic (allocs_per_op and reuses_per_op must both be 0).
  namespace plan = qpinn::autodiff::plan;
  const bool plan_opt = plan::plan_opt_env_enabled();
  plan::ExecutionPlan fwd_plan;
  Tensor fwd_loss;  // declared plan output: keeps the head live under DCE
  {
    plan::CaptureScope scope(fwd_plan);
    fwd_loss = model.loss().value();
  }
  plan::PassStats fwd_pass;
  fwd_pass.thunks_before = fwd_pass.thunks_after = fwd_plan.size();
  fwd_pass.arena_bytes_before = fwd_pass.arena_bytes_after =
      fwd_plan.arena_bytes();
  if (plan_opt) fwd_pass = plan::optimize_plan(fwd_plan, {fwd_loss});
  results.push_back(time_op("autodiff", "mlp_forward_replay", "256x2->1",
                            r_mid, [&] { fwd_plan.replay(); },
                            mlp_fwd_flops));

  // ---- training-step suite ----------------------------------------------
  qpinn::optim::Adam adam(model.params, {});
  auto train_step = [&] {
    auto grads = ad::grad(model.loss(), model.params);
    std::vector<Tensor> g;
    g.reserve(grads.size());
    for (auto& gv : grads) g.push_back(gv.value());
    adam.step(g);
  };
  results.push_back(time_op("training", "train_step", "mlp-2-64-64-1", r_big,
                            train_step, train_step_flops));

  // Replayed training step, mirroring the Trainer integration: the captured
  // plan recomputes loss + gradients into pinned buffers, Adam stays eager
  // (its step count and LR change every iteration).
  plan::ExecutionPlan step_plan;
  std::vector<Tensor> plan_grads;
  {
    plan::CaptureScope scope(step_plan);
    auto grads = ad::grad(model.loss(), model.params);
    plan_grads.reserve(grads.size());
    for (auto& gv : grads) plan_grads.push_back(gv.value());
  }
  plan::PassStats step_pass;
  step_pass.thunks_before = step_pass.thunks_after = step_plan.size();
  step_pass.arena_bytes_before = step_pass.arena_bytes_after =
      step_plan.arena_bytes();
  if (plan_opt) step_pass = plan::optimize_plan(step_plan, plan_grads);
  auto train_step_replay = [&] {
    step_plan.replay();
    adam.step(plan_grads);
  };
  results.push_back(time_op("training", "train_step_replay", "mlp-2-64-64-1",
                            r_big, train_step_replay, train_step_flops));

  // Demoted twin of the replay row: an identically captured schedule run
  // through autodiff::demote_plan, so the interior sweeps execute on the
  // fp32 tables while Adam stays eager fp64 on the master weights (the
  // downcast-on-publish thunks re-run inside every replay). The ratio to
  // train_step_replay is the mixed-precision win the trainer sees.
  plan::ExecutionPlan mixed_plan;
  std::vector<Tensor> mixed_grads;
  {
    plan::CaptureScope scope(mixed_plan);
    auto grads = ad::grad(model.loss(), model.params);
    mixed_grads.reserve(grads.size());
    for (auto& gv : grads) mixed_grads.push_back(gv.value());
  }
  if (plan_opt) plan::optimize_plan(mixed_plan, mixed_grads);
  const ad::DemoteStats demote_stats =
      ad::demote_plan(mixed_plan, mixed_grads);
  auto train_step_mixed = [&] {
    mixed_plan.replay();
    adam.step(mixed_grads);
  };
  results.push_back(time_op("training", "train_step_mixed", "mlp-2-64-64-1",
                            r_big, train_step_mixed, train_step_flops));

  // ---- dist suite --------------------------------------------------------
  // Loopback communicators (dist/communicator.hpp): socketpair ranks on
  // background threads, the same framing/retry/CRC code paths the
  // multi-process transport runs minus the listener. The collectives keep
  // every rank in lockstep with the timed root, so the worker threads
  // issue exactly the 1 + kPasses*reps calls time_op's body makes. The
  // allocs/reuses columns aggregate every rank — the pool is global —
  // and pool hits race across rank threads, so they are
  // interleaving-dependent here (bench_compare exempts this suite from
  // its exact-alloc gate).
  {
    namespace dist = qpinn::dist;
    dist::TransportOptions dopts;
    // On a loaded single-core runner a preempted rank is slow, not lost;
    // the fault paths are not what this suite measures.
    dopts.message_timeout_ms = 10000;
    dopts.heartbeat_timeout_ms = 60000;

    // The Trainer's reduction buffer: [loss, aux, stop, grads...].
    const std::int64_t n_doubles = static_cast<std::int64_t>(n_params) + 3;
    for (const std::int64_t world : {2, 4}) {
      auto comms = dist::Communicator::loopback(world, dopts);
      const int calls = 1 + kPasses * r_mid;
      std::vector<std::thread> workers;
      for (std::int64_t r = 1; r < world; ++r) {
        workers.emplace_back([&comms, r, n_doubles, calls] {
          std::vector<double> buf(static_cast<std::size_t>(n_doubles));
          for (int c = 0; c < calls; ++c) {
            std::fill(buf.begin(), buf.end(), static_cast<double>(r));
            comms[static_cast<std::size_t>(r)]->allreduce(buf, c);
          }
        });
      }
      std::vector<double> buf(static_cast<std::size_t>(n_doubles));
      std::int64_t epoch = 0;
      const std::string shape = std::to_string(world) + "ranks-" +
                                std::to_string(n_doubles) + "dbl";
      // Flop model: the root's rank-ordered gather sum, (world-1) adds
      // per element; the broadcast moves bytes, not flops.
      results.push_back(time_op(
          "dist", "allreduce", shape, r_mid,
          [&] {
            std::fill(buf.begin(), buf.end(), 0.0);
            comms[0]->allreduce(buf, epoch++);
          },
          static_cast<double>((world - 1) * n_doubles)));
      for (auto& w : workers) w.join();
    }

    // N-rank data-parallel training step — the schedule Trainer::fit runs
    // in dist mode: each rank takes the gradient of its 256/world-row
    // shard, the flat buffer is all-reduced in rank order, and a per-rank
    // Adam applies the averaged sum. gflops counts the aggregate useful
    // math (the full-batch step) so the column stays comparable with the
    // single-process train_step row; the gap to that row is the
    // communication + redundant-optimizer overhead of going distributed.
    struct RankState {
      BenchModel model;
      qpinn::optim::Adam adam;
      std::vector<Tensor> summed;
      std::vector<double> buf;
      std::int64_t epoch = 0;
      RankState(Rng& rank_rng, std::int64_t rows, std::int64_t n)
          : model(rank_rng, rows), adam(model.params, {}),
            buf(static_cast<std::size_t>(n)) {
        summed.reserve(model.params.size());
        for (const ad::Variable& p : model.params) {
          summed.push_back(Tensor::zeros(p.shape()));
        }
      }
    };
    for (const std::int64_t world : {2, 4}) {
      auto comms = dist::Communicator::loopback(world, dopts);
      std::vector<std::unique_ptr<RankState>> ranks;
      for (std::int64_t r = 0; r < world; ++r) {
        Rng rank_rng(static_cast<std::uint64_t>(100 + r));
        ranks.push_back(std::make_unique<RankState>(rank_rng, 256 / world,
                                                    n_doubles));
      }
      auto rank_step = [&comms, &ranks, world](std::int64_t r) {
        RankState& st = *ranks[static_cast<std::size_t>(r)];
        auto grads = ad::grad(st.model.loss(), st.model.params);
        st.buf[0] = st.buf[1] = st.buf[2] = 0.0;  // loss/aux/stop header
        std::size_t off = 3;
        for (const ad::Variable& gv : grads) {
          const Tensor& t = gv.value();
          std::copy(t.data(), t.data() + t.numel(),
                    st.buf.begin() + static_cast<std::ptrdiff_t>(off));
          off += static_cast<std::size_t>(t.numel());
        }
        comms[static_cast<std::size_t>(r)]->allreduce(st.buf, st.epoch++);
        const double inv = 1.0 / static_cast<double>(world);
        off = 3;
        for (Tensor& t : st.summed) {
          double* dst = t.data();
          for (std::int64_t i = 0; i < t.numel(); ++i) {
            dst[static_cast<std::size_t>(i)] =
                st.buf[off + static_cast<std::size_t>(i)] * inv;
          }
          off += static_cast<std::size_t>(t.numel());
        }
        st.adam.step(st.summed);
      };
      const int calls = 1 + kPasses * r_big;
      std::vector<std::thread> workers;
      for (std::int64_t r = 1; r < world; ++r) {
        workers.emplace_back([&rank_step, r, calls] {
          for (int c = 0; c < calls; ++c) rank_step(r);
        });
      }
      const std::string shape =
          "mlp-2-64-64-1x" + std::to_string(world) + "ranks";
      results.push_back(time_op("dist", "train_step", shape, r_big,
                                [&] { rank_step(0); }, train_step_flops));
      for (auto& w : workers) w.join();
    }
  }

  // ---- serve suite -------------------------------------------------------
  // Surrogate serving path (src/serve/): concurrent clients issue point
  // queries, the queue coalesces them into batched forward-only replays.
  // serve_qps carries the mean ns/query at full load (1e9 / qps, so the
  // ratio gate points the usual way); serve_p50_us / serve_p99_us carry
  // the end-to-end per-query latency percentiles in ns, queue wait and
  // deadline flush included. allocs/query is exact and must stay 0: the
  // plan replays into pinned buffers and worker scratch is reused, so a
  // steady-state query touches the pool not at all.
  //
  // The QPINN_SERVE_WORKERS sweep (1/2/4 at the same fixed client count)
  // locates where the single replay mutex saturates: every worker replays
  // against the same CompiledModel, so extra workers only help while flush
  // scheduling (ring drain, wakeups) — not the serialized replay — is the
  // bottleneck. The summary fields track the 1-worker configuration; the
  // sweep rows carry the per-worker-count qps/p50/p99.
  double serve_qps = 0.0;
  double serve_p50_us = 0.0;
  double serve_p99_us = 0.0;
  double serve_allocs_per_query = 0.0;
  {
    namespace serve = qpinn::serve;
    qpinn::core::FieldModelConfig mconfig;
    mconfig.hidden = {64, 64};
    mconfig.fourier = qpinn::nn::FourierConfig{16, 1.0};
    mconfig.normalization =
        qpinn::core::InputNormalization::for_domain(-1.0, 1.0, 0.0, 1.0);
    mconfig.seed = 7;
    // Each client blocks on its own query, so the number of clients bounds
    // the outstanding queries: batch_rows must not exceed it or every
    // flush is a deadline-expired partial batch and the row measures the
    // flush timer, not the serving path.
    constexpr int kServeClients = 8;
    auto registry = std::make_shared<serve::ModelRegistry>();
    registry->publish(serve::CompiledModel::compile(
        qpinn::core::make_field_model(mconfig), /*batch_rows=*/8));
    const std::int64_t per_client = quick ? 2000 : 20000;
    for (const std::size_t n_workers : {1, 2, 4}) {
      serve::QueryQueueConfig qconfig;
      qconfig.flush_us = 50;
      qconfig.workers = n_workers;
      serve::QueryQueue queue(registry, qconfig);
      // Warm-up primes the pinned replay buffers and the worker's scratch.
      for (int i = 0; i < 256; ++i) {
        (void)queue.query(0.005 * i - 0.64, 0.5);
      }

      std::vector<std::vector<double>> latencies_ns(kServeClients);
      const auto sp0 = pool.stats();
      Stopwatch wall;
      std::vector<std::thread> clients;
      clients.reserve(kServeClients);
      for (int c = 0; c < kServeClients; ++c) {
        clients.emplace_back([&queue, &latencies_ns, per_client, c] {
          std::vector<double>& mine =
              latencies_ns[static_cast<std::size_t>(c)];
          mine.reserve(static_cast<std::size_t>(per_client));
          for (std::int64_t q = 0; q < per_client; ++q) {
            const double x =
                -1.0 + 2.0 * static_cast<double>(q % 997) / 997.0;
            const double t =
                static_cast<double>((q * (c + 1)) % 101) / 101.0;
            Stopwatch sw;
            (void)queue.query(x, t);
            mine.push_back(sw.seconds() * 1e9);
          }
        });
      }
      for (auto& client : clients) client.join();
      const double wall_s = wall.seconds();
      const auto sp1 = pool.stats();
      queue.shutdown();

      const double total_queries =
          static_cast<double>(kServeClients) *
          static_cast<double>(per_client);
      const double qps = total_queries / wall_s;
      const double allocs_per_query =
          static_cast<double>(sp1.heap_allocations - sp0.heap_allocations) /
          total_queries;
      const double reuses_per_query =
          static_cast<double>(sp1.pool_reuses - sp0.pool_reuses) /
          total_queries;
      std::vector<double> all_ns;
      all_ns.reserve(static_cast<std::size_t>(total_queries));
      for (const auto& mine : latencies_ns) {
        all_ns.insert(all_ns.end(), mine.begin(), mine.end());
      }
      std::sort(all_ns.begin(), all_ns.end());
      const double p50_ns = all_ns[all_ns.size() / 2];
      const double p99_ns = all_ns[static_cast<std::size_t>(
          0.99 * static_cast<double>(all_ns.size() - 1))];
      if (n_workers == 1) {
        serve_qps = qps;
        serve_allocs_per_query = allocs_per_query;
        serve_p50_us = p50_ns / 1e3;
        serve_p99_us = p99_ns / 1e3;
      }

      // The 1-worker shape keeps its pre-sweep name so historical baselines
      // keep comparing against the same row.
      const std::string serve_shape =
          n_workers == 1 ? "batch8x8clients"
                         : "batch8x8clients-" +
                               std::to_string(n_workers) + "w";
      Result row;
      row.suite = "serve";
      row.shape = serve_shape;
      row.allocs_per_op = allocs_per_query;
      row.reuses_per_op = reuses_per_query;
      row.op = "serve_qps";
      row.ns_per_op = 1e9 / qps;
      results.push_back(row);
      row.op = "serve_p50_us";
      row.ns_per_op = p50_ns;
      results.push_back(row);
      row.op = "serve_p99_us";
      row.ns_per_op = p99_ns;
      results.push_back(row);
    }
  }

  // ---- optimizer suite: wall-clock to target accuracy --------------------
  // The two-stage recipe of classical PINN practice — Adam epochs, then an
  // L-BFGS refinement on the same fixed collocation objective — timed as
  // wall nanoseconds until the relative L2 against the B1 free-packet
  // analytic reference first drops below the target. Collocation is fixed
  // (resample_every = 0) so the L-BFGS stage minimizes a deterministic
  // objective. The same trainer also supplies the per-plan optimizer-pass
  // statistics for a real captured TDSE training plan (the acceptance
  // numbers: nonzero thunk and arena reduction).
  plan::PassStats tdse_pass;
  const double target_l2 = 0.5;
  double time_to_target_ns = 0.0;
  double achieved_l2 = std::numeric_limits<double>::infinity();
  bool target_reached = false;
  {
    namespace core = qpinn::core;
    auto problem = core::make_free_packet_problem();
    core::TrainConfig tc = core::default_train_config(/*epochs=*/1,
                                                      /*seed=*/7);
    tc.resample_every = 0;
    tc.sampling.n_interior_x = 12;
    tc.sampling.n_interior_t = 12;
    tc.sampling.n_initial = 24;
    tc.sampling.n_boundary = 12;
    tc.metric_nx = 32;
    tc.metric_nt = 16;
    tc.graph = core::GraphMode::kOn;
    tc.second_stage.enabled = true;
    tc.second_stage.lbfgs.max_iterations = 10;
    core::FieldModelConfig mc = core::default_model_config(*problem,
                                                           /*seed=*/7);
    mc.hidden = {16, 16};
    mc.fourier = qpinn::nn::FourierConfig{8, 1.0};
    mc.hard_ic = core::HardIc{problem->config().initial,
                              problem->domain().t_lo};
    auto model = core::make_field_model(mc);
    core::Trainer trainer(problem, model, tc);

    const std::int64_t adam_epochs = quick ? 200 : 600;
    const std::int64_t eval_every = 25;
    Stopwatch clock;
    for (std::int64_t e = 0; e < adam_epochs && !target_reached; ++e) {
      trainer.step(e);
      if ((e + 1) % eval_every == 0) {
        achieved_l2 = trainer.evaluate_l2();
        if (achieved_l2 <= target_l2) {
          target_reached = true;
          time_to_target_ns = clock.seconds() * 1e9;
        }
      }
    }
    // Per-plan pass statistics, captured on the trainer's first step
    // (all-zero when QPINN_PLAN_OPT is off).
    const auto shard_stats = trainer.plan_pass_stats();
    if (!shard_stats.empty()) tdse_pass = shard_stats[0];

    if (!target_reached) {
      // L-BFGS refinement rounds through the Trainer's first-class second
      // stage (SecondStageConfig, configured above): the exact objective
      // Trainer::fit refines, interleaved here with metric evaluation so
      // the clock stops at the first round that crosses the target.
      const std::int64_t rounds = quick ? 6 : 20;
      for (std::int64_t round = 0; round < rounds && !target_reached;
           ++round) {
        trainer.run_second_stage(adam_epochs);
        achieved_l2 = trainer.evaluate_l2();
        if (achieved_l2 <= target_l2) {
          target_reached = true;
          time_to_target_ns = clock.seconds() * 1e9;
        }
      }
    }
    // Budget exhausted without reaching the target: report the full spend
    // (the summary's time_to_target_l2_reached flag disambiguates).
    if (!target_reached) time_to_target_ns = clock.seconds() * 1e9;

    Result row;
    row.suite = "training";
    row.op = "time_to_target_l2";
    row.shape = "free-packet";
    row.ns_per_op = time_to_target_ns;
    results.push_back(row);
  }

  // SIMD win: re-time the key ops with the dispatch forced to the scalar
  // table, on the same buffers and repetition counts. The ratio is the
  // vectorization speedup on THIS machine (the scalar rows are not written
  // to the report's results array, only the ratios to the summary).
  namespace simd = qpinn::simd;
  const simd::Isa active_isa = simd::active_isa();
  auto ns_of = [&](const std::string& op, const std::string& shape) {
    for (const Result& r : results) {
      if (r.op == op && r.shape == shape) return r.ns_per_op;
    }
    return 0.0;
  };
  double speedup_add = 1.0;
  double speedup_mul = 1.0;
  double speedup_matmul = 1.0;
  double speedup_train = 1.0;
  if (active_isa != simd::Isa::kScalar &&
      simd::force_isa(simd::Isa::kScalar)) {
    simd::force_isa(active_isa);
    Rng rng2(7);
    const Tensor sa = Tensor::rand({256, 256}, rng2, -1.0, 1.0);
    const Tensor sb = Tensor::rand({256, 256}, rng2, -1.0, 1.0);
    // The elementwise comparison runs in the DRAM-bound regime (above the
    // non-temporal store threshold): below LLC size the 3-stream sweep is
    // cache-bandwidth-bound and any vectorization parity-matches the
    // auto-vectorized scalar loop, so there is nothing to measure there.
    const std::int64_t big_n =
        static_cast<std::int64_t>(simd::detail::kStreamMinElems) * 2;
    const Tensor ba = Tensor::rand({big_n}, rng2, -1.0, 1.0);
    const Tensor bb = Tensor::rand({big_n}, rng2, -1.0, 1.0);
    const int r_huge = quick ? 5 : 20;
    // Each pair is timed back-to-back under both dispatch tables: the
    // vector rows in `results` were measured much earlier in the run, and
    // clock/thermal drift over a full report otherwise biases the ratio.
    const auto paired = [&](int reps, auto body) {
      simd::force_isa(active_isa);
      const Result vec = time_op("scalar", "vector-side", "-", reps, body);
      simd::force_isa(simd::Isa::kScalar);
      const Result sca = time_op("scalar", "scalar-side", "-", reps, body);
      simd::force_isa(active_isa);
      return (sca.ns_per_op > 0.0 && vec.ns_per_op > 0.0)
                 ? sca.ns_per_op / vec.ns_per_op
                 : 1.0;
    };
    speedup_add = paired(r_huge, [&] { k::add(ba, bb); });
    speedup_mul = paired(r_huge, [&] { k::mul(ba, bb); });
    speedup_matmul = paired(r_big, [&] { k::matmul(sa, sb); });
    speedup_train = paired(r_big, train_step);
  }

  // Allocation win: identical steps, pool on vs off, counted by the pool
  // itself. Exact and machine-independent (same tape -> same tensor count).
  const int alloc_reps = quick ? 10 : 50;
  const bool was_enabled = pool.enabled();
  pool.set_enabled(true);
  train_step();  // steady state: free lists primed
  auto s0 = pool.stats();
  for (int r = 0; r < alloc_reps; ++r) train_step();
  auto s1 = pool.stats();
  const double allocs_on =
      static_cast<double>(s1.heap_allocations - s0.heap_allocations) /
      alloc_reps;
  pool.set_enabled(false);
  train_step();
  s0 = pool.stats();
  for (int r = 0; r < alloc_reps; ++r) train_step();
  s1 = pool.stats();
  const double allocs_off =
      static_cast<double>(s1.heap_allocations - s0.heap_allocations) /
      alloc_reps;
  pool.set_enabled(was_enabled);
  const double reduction = allocs_off / std::max(allocs_on, 1.0);

  // Eager-vs-replay gap on the training step (>1 means replay is faster;
  // this is the overhead the graph executor removes from the eager tape).
  const double replay_ns = ns_of("train_step_replay", "mlp-2-64-64-1");
  const double graph_overhead =
      replay_ns > 0.0 ? ns_of("train_step", "mlp-2-64-64-1") / replay_ns : 1.0;
  const plan::PlanStats pstats = plan::plan_stats();

  // Mixed-precision win on the replayed training step (>1 means the
  // demoted fp32 schedule is faster than the fp64 one; bench_compare
  // gates this at >= 1.3).
  const double mixed_ns = ns_of("train_step_mixed", "mlp-2-64-64-1");
  const double mixed_speedup =
      mixed_ns > 0.0 ? replay_ns / mixed_ns : 1.0;

  // Cost of going distributed on a 2-rank loopback world relative to the
  // same step single-process (>1 means dist is slower; the gap is the
  // transport round-trip plus the per-rank optimizer duplication).
  const double step_ns = ns_of("train_step", "mlp-2-64-64-1");
  const double dist2_ns = ns_of("train_step", "mlp-2-64-64-1x2ranks");
  const double dist_overhead =
      step_ns > 0.0 ? dist2_ns / step_ns : 1.0;

  // ---- report ------------------------------------------------------------
  std::ostringstream json;
  json << "{\n";
  json << "  \"schema\": 1,\n";
  json << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  json << "  \"threads\": " << qpinn::global_pool().size() << ",\n";
  json << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    json << "    {\"suite\": \"" << r.suite << "\", \"op\": \"" << r.op
         << "\", \"shape\": \"" << r.shape << "\", \"ns_per_op\": "
         << fmt(r.ns_per_op) << ", \"allocs_per_op\": " << fmt(r.allocs_per_op)
         << ", \"reuses_per_op\": " << fmt(r.reuses_per_op)
         << ", \"gflops\": " << fmt(r.gflops) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"summary\": {\n";
  json << "    \"train_step_allocs_pool_on\": " << fmt(allocs_on) << ",\n";
  json << "    \"train_step_allocs_pool_off\": " << fmt(allocs_off) << ",\n";
  json << "    \"alloc_reduction_x\": " << fmt(reduction) << ",\n";
  json << "    \"simd_isa\": \"" << simd::isa_name(active_isa) << "\",\n";
  json << "    \"speedup_add_vs_scalar\": " << fmt(speedup_add) << ",\n";
  json << "    \"speedup_mul_vs_scalar\": " << fmt(speedup_mul) << ",\n";
  json << "    \"speedup_matmul_vs_scalar\": " << fmt(speedup_matmul)
       << ",\n";
  json << "    \"speedup_train_step_vs_scalar\": " << fmt(speedup_train)
       << ",\n";
  json << "    \"graph_overhead_x\": " << fmt(graph_overhead) << ",\n";
  json << "    \"mixed_speedup_x\": " << fmt(mixed_speedup) << ",\n";
  json << "    \"mixed_demoted_thunks\": " << demote_stats.demoted << ",\n";
  json << "    \"mixed_kept_fp64_thunks\": " << demote_stats.kept_fp64
       << ",\n";
  json << "    \"mixed_downcasts\": " << demote_stats.downcasts << ",\n";
  json << "    \"mixed_upcasts\": " << demote_stats.upcasts << ",\n";
  json << "    \"mixed_shadow_bytes\": " << demote_stats.shadow_bytes
       << ",\n";
  json << "    \"dist_overhead_2rank_x\": " << fmt(dist_overhead) << ",\n";
  json << "    \"serve_qps\": " << fmt(serve_qps) << ",\n";
  json << "    \"serve_p50_us\": " << fmt(serve_p50_us) << ",\n";
  json << "    \"serve_p99_us\": " << fmt(serve_p99_us) << ",\n";
  json << "    \"serve_allocs_per_query\": " << fmt(serve_allocs_per_query)
       << ",\n";
  json << "    \"plans_captured\": " << pstats.plans_captured << ",\n";
  json << "    \"plan_replays\": " << pstats.replays << ",\n";
  json << "    \"plan_fallbacks\": " << pstats.fallbacks << ",\n";
  json << "    \"plan_opt_enabled\": " << (plan_opt ? "true" : "false")
       << ",\n";
  json << "    \"plans_optimized\": " << pstats.plans_optimized << ",\n";
  json << "    \"plan_thunks_eliminated\": " << pstats.thunks_eliminated
       << ",\n";
  json << "    \"plan_arena_bytes_saved\": " << pstats.arena_bytes_saved
       << ",\n";
  json << "    \"fwd_plan_thunks_before\": " << fwd_pass.thunks_before
       << ",\n";
  json << "    \"fwd_plan_thunks_after\": " << fwd_pass.thunks_after
       << ",\n";
  json << "    \"fwd_plan_arena_bytes_before\": "
       << fwd_pass.arena_bytes_before << ",\n";
  json << "    \"fwd_plan_arena_bytes_after\": "
       << fwd_pass.arena_bytes_after << ",\n";
  json << "    \"step_plan_thunks_before\": " << step_pass.thunks_before
       << ",\n";
  json << "    \"step_plan_thunks_after\": " << step_pass.thunks_after
       << ",\n";
  json << "    \"step_plan_arena_bytes_before\": "
       << step_pass.arena_bytes_before << ",\n";
  json << "    \"step_plan_arena_bytes_after\": "
       << step_pass.arena_bytes_after << ",\n";
  json << "    \"tdse_plan_thunks_before\": " << tdse_pass.thunks_before
       << ",\n";
  json << "    \"tdse_plan_thunks_after\": " << tdse_pass.thunks_after
       << ",\n";
  json << "    \"tdse_plan_arena_bytes_before\": "
       << tdse_pass.arena_bytes_before << ",\n";
  json << "    \"tdse_plan_arena_bytes_after\": "
       << tdse_pass.arena_bytes_after << ",\n";
  json << "    \"time_to_target_l2_ns\": " << fmt(time_to_target_ns)
       << ",\n";
  json << "    \"time_to_target_l2_goal\": " << fmt(target_l2) << ",\n";
  json << "    \"time_to_target_l2_achieved\": " << fmt(achieved_l2)
       << ",\n";
  json << "    \"time_to_target_l2_reached\": "
       << (target_reached ? "true" : "false") << "\n";
  json << "  }\n";
  json << "}\n";

  const std::string out_path = cli.get_string("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_report: cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  out.close();

  std::cout << json.str();
  std::cout << "wrote " << out_path << "\n";
  if (reduction < 5.0) {
    std::cout << "WARNING: alloc_reduction_x " << fmt(reduction)
              << " is below the 5x budget (see ISSUE 3 acceptance)\n";
  }
  // The elementwise add/mul speedups are gated at >= 0.95: the "scalar"
  // table's plain loops auto-vectorize under -O3, so on a cache-resident
  // 3-stream sweep explicit SIMD can only parity-match them. The gated
  // measurement therefore runs DRAM-bound, where the vector path's
  // non-temporal stores cut memory traffic and win outright (see
  // DESIGN.md); a value below 0.95 means the streaming path regressed.
  if (speedup_add < 0.95 || speedup_mul < 0.95) {
    std::cout << "WARNING: elementwise SIMD speedup below the 0.95 parity "
                 "gate (add "
              << fmt(speedup_add) << ", mul " << fmt(speedup_mul) << ")\n";
  }
  if (mixed_speedup < 1.3) {
    std::cout << "WARNING: mixed_speedup_x " << fmt(mixed_speedup)
              << " is below the 1.3x gate (train_step_replay vs "
                 "train_step_mixed)\n";
  }
  if (serve_allocs_per_query > 0.0) {
    std::cout << "WARNING: serving did " << fmt(serve_allocs_per_query)
              << " pool allocations per query; steady state must be 0\n";
  }
  if (plan_opt &&
      (tdse_pass.thunks_after >= tdse_pass.thunks_before ||
       tdse_pass.arena_bytes_after >= tdse_pass.arena_bytes_before)) {
    std::cout << "WARNING: plan optimizer made no thunk or arena reduction "
                 "on the TDSE training plan (thunks "
              << tdse_pass.thunks_before << " -> " << tdse_pass.thunks_after
              << ", arena " << tdse_pass.arena_bytes_before << " -> "
              << tdse_pass.arena_bytes_after << " bytes)\n";
  }
  return 0;
}

// bench_report — machine-readable performance report for the hot path.
//
// Times the tensor / autodiff / training-step suites and writes a JSON
// report (default BENCH_qpinn.json) with ns/op plus allocations/op and
// pool-reuses/op taken from the storage pool's own counters. The summary
// block measures the pool's allocation win directly: the same training
// step is run with the pool enabled and disabled and the per-step heap
// allocation counts are compared (alloc_reduction_x).
//
// CI runs `bench_report --quick` and diffs the report against the
// committed baseline with tools/bench_compare.py (warn-only — timing on
// shared runners is noisy; the allocation counts are exact and stable).
//
// Usage:
//   bench_report [--quick] [--out BENCH_qpinn.json] [--threads N]

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "autodiff/grad.hpp"
#include "autodiff/ops.hpp"
#include "optim/adam.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/kernels.hpp"
#include "tensor/storage_pool.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

using qpinn::Rng;
using qpinn::Shape;
using qpinn::StoragePool;
using qpinn::Stopwatch;
using qpinn::Tensor;
namespace ad = qpinn::autodiff;
namespace k = qpinn::kernels;

struct Result {
  std::string suite;
  std::string op;
  std::string shape;
  double ns_per_op = 0.0;
  double allocs_per_op = 0.0;
  double reuses_per_op = 0.0;
};

template <typename F>
Result time_op(const std::string& suite, const std::string& op,
               const std::string& shape, int reps, F body) {
  body();  // warmup: fills the pool's free lists and touches the caches
  StoragePool& pool = StoragePool::instance();
  const auto s0 = pool.stats();
  Stopwatch sw;
  for (int r = 0; r < reps; ++r) body();
  const double ns = sw.seconds() * 1e9 / reps;
  const auto s1 = pool.stats();
  Result res;
  res.suite = suite;
  res.op = op;
  res.shape = shape;
  res.ns_per_op = ns;
  res.allocs_per_op =
      static_cast<double>(s1.heap_allocations - s0.heap_allocations) / reps;
  res.reuses_per_op =
      static_cast<double>(s1.pool_reuses - s0.pool_reuses) / reps;
  return res;
}

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

/// Six-parameter tanh MLP (2 -> 64 -> 64 -> 1) on a 256-point batch — the
/// same network scale the PINN examples train.
struct BenchModel {
  ad::Variable w1, b1, w2, b2, w3, b3;
  ad::Variable x;
  std::vector<ad::Variable> params;

  explicit BenchModel(Rng& rng)
      : w1(ad::Variable::leaf(Tensor::randn({2, 64}, rng, 0.0, 0.3))),
        b1(ad::Variable::leaf(Tensor::zeros({1, 64}))),
        w2(ad::Variable::leaf(Tensor::randn({64, 64}, rng, 0.0, 0.3))),
        b2(ad::Variable::leaf(Tensor::zeros({1, 64}))),
        w3(ad::Variable::leaf(Tensor::randn({64, 1}, rng, 0.0, 0.3))),
        b3(ad::Variable::leaf(Tensor::zeros({1, 1}))),
        x(ad::Variable::constant(Tensor::rand({256, 2}, rng, -1.0, 1.0))),
        params{w1, b1, w2, b2, w3, b3} {}

  ad::Variable loss() const {
    ad::Variable h = ad::tanh(ad::add(ad::matmul(x, w1), b1));
    h = ad::tanh(ad::add(ad::matmul(h, w2), b2));
    return ad::mean_all(ad::square(ad::add(ad::matmul(h, w3), b3)));
  }
};

}  // namespace

int main(int argc, char** argv) {
  qpinn::CliParser cli("bench_report",
                       "Timed perf suites with pool allocation counters");
  cli.add_flag("quick", "fewer repetitions (CI configuration)");
  cli.add_string("out", "BENCH_qpinn.json", "output JSON path");
  cli.add_int("threads", 0, "worker threads (0 = default)");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::cout << cli.help_text();
    return 0;
  }
  if (cli.get_int("threads") > 0) {
    qpinn::set_global_threads(static_cast<std::size_t>(cli.get_int("threads")));
  }
  const bool quick = cli.get_flag("quick");
  const int r_small = quick ? 200 : 2000;   // cheap ops
  const int r_mid = quick ? 50 : 500;       // mid-size matmuls
  const int r_big = quick ? 10 : 100;       // 256x256 matmuls, train step

  Rng rng(7);
  StoragePool& pool = StoragePool::instance();
  std::vector<Result> results;

  // ---- tensor suite ------------------------------------------------------
  {
    const Tensor a = Tensor::rand({256, 256}, rng, -1.0, 1.0);
    const Tensor b = Tensor::rand({256, 256}, rng, -1.0, 1.0);
    const Tensor a64 = Tensor::rand({64, 64}, rng, -1.0, 1.0);
    const Tensor b64 = Tensor::rand({64, 64}, rng, -1.0, 1.0);
    const Tensor v1 = Tensor::rand({1 << 16}, rng, -1.0, 1.0);
    const Tensor v2 = Tensor::rand({1 << 16}, rng, -1.0, 1.0);
    Tensor acc = v1.clone();
    results.push_back(time_op("tensor", "add", "256x256", r_mid,
                              [&] { k::add(a, b); }));
    results.push_back(time_op("tensor", "mul", "256x256", r_mid,
                              [&] { k::mul(a, b); }));
    results.push_back(time_op("tensor", "matmul", "64x64x64", r_mid,
                              [&] { k::matmul(a64, b64); }));
    results.push_back(time_op("tensor", "matmul", "256x256x256", r_big,
                              [&] { k::matmul(a, b); }));
    results.push_back(time_op("tensor", "matmul_tn", "256x256x256", r_big,
                              [&] { k::matmul_tn(a, b); }));
    results.push_back(time_op("tensor", "matmul_nt", "256x256x256", r_big,
                              [&] { k::matmul_nt(a, b); }));
    results.push_back(
        time_op("tensor", "dot", "65536", r_small, [&] { k::dot(v1, v2); }));
    results.push_back(time_op("tensor", "axpy_inplace", "65536", r_small,
                              [&] { k::axpy_inplace(acc, 0.5, v2); }));
    results.push_back(time_op("tensor", "sum_to", "256x256->1x256", r_small,
                              [&] { k::sum_to(a, Shape{1, 256}); }));
  }

  // ---- autodiff suite ----------------------------------------------------
  BenchModel model(rng);
  results.push_back(time_op("autodiff", "mlp_forward", "256x2->1", r_mid,
                            [&] { model.loss(); }));
  results.push_back(time_op("autodiff", "mlp_grad", "256x2->1", r_mid, [&] {
    ad::grad(model.loss(), model.params);
  }));

  // ---- training-step suite ----------------------------------------------
  qpinn::optim::Adam adam(model.params, {});
  auto train_step = [&] {
    auto grads = ad::grad(model.loss(), model.params);
    std::vector<Tensor> g;
    g.reserve(grads.size());
    for (auto& gv : grads) g.push_back(gv.value());
    adam.step(g);
  };
  results.push_back(
      time_op("training", "train_step", "mlp-2-64-64-1", r_big, train_step));

  // Allocation win: identical steps, pool on vs off, counted by the pool
  // itself. Exact and machine-independent (same tape -> same tensor count).
  const int alloc_reps = quick ? 10 : 50;
  const bool was_enabled = pool.enabled();
  pool.set_enabled(true);
  train_step();  // steady state: free lists primed
  auto s0 = pool.stats();
  for (int r = 0; r < alloc_reps; ++r) train_step();
  auto s1 = pool.stats();
  const double allocs_on =
      static_cast<double>(s1.heap_allocations - s0.heap_allocations) /
      alloc_reps;
  pool.set_enabled(false);
  train_step();
  s0 = pool.stats();
  for (int r = 0; r < alloc_reps; ++r) train_step();
  s1 = pool.stats();
  const double allocs_off =
      static_cast<double>(s1.heap_allocations - s0.heap_allocations) /
      alloc_reps;
  pool.set_enabled(was_enabled);
  const double reduction = allocs_off / std::max(allocs_on, 1.0);

  // ---- report ------------------------------------------------------------
  std::ostringstream json;
  json << "{\n";
  json << "  \"schema\": 1,\n";
  json << "  \"quick\": " << (quick ? "true" : "false") << ",\n";
  json << "  \"threads\": " << qpinn::global_pool().size() << ",\n";
  json << "  \"results\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    json << "    {\"suite\": \"" << r.suite << "\", \"op\": \"" << r.op
         << "\", \"shape\": \"" << r.shape << "\", \"ns_per_op\": "
         << fmt(r.ns_per_op) << ", \"allocs_per_op\": " << fmt(r.allocs_per_op)
         << ", \"reuses_per_op\": " << fmt(r.reuses_per_op) << "}"
         << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"summary\": {\n";
  json << "    \"train_step_allocs_pool_on\": " << fmt(allocs_on) << ",\n";
  json << "    \"train_step_allocs_pool_off\": " << fmt(allocs_off) << ",\n";
  json << "    \"alloc_reduction_x\": " << fmt(reduction) << "\n";
  json << "  }\n";
  json << "}\n";

  const std::string out_path = cli.get_string("out");
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_report: cannot write " << out_path << "\n";
    return 1;
  }
  out << json.str();
  out.close();

  std::cout << json.str();
  std::cout << "wrote " << out_path << "\n";
  if (reduction < 5.0) {
    std::cout << "WARNING: alloc_reduction_x " << fmt(reduction)
              << " is below the 5x budget (see ISSUE 3 acceptance)\n";
  }
  return 0;
}

// T2 — eigenvalue table: TISE eigen-PINN spectra versus the analytic
// values, the Sturm/FD eigensolver, and the Numerov shooting method, for
// the particle-in-a-box and the harmonic oscillator.
//
// Shape expected: the eigen-PINN recovers the low-lying spectrum to a few
// percent (state by state via deflation), while the two classical solvers
// agree with analytic values to discretization accuracy.
#include "exp_common.hpp"

#include "core/eigen_pinn.hpp"
#include "fdm/eigensolver.hpp"
#include "fdm/numerov.hpp"
#include "quantum/hermite.hpp"
#include "quantum/potentials.hpp"

namespace {

using namespace qpinn;
using namespace qpinn::core;

struct Spectrum {
  const char* name;
  double x_lo, x_hi;
  PotentialOp potential_op;            // for the PINN
  quantum::PotentialFn potential_fn;   // for the classical solvers
  std::vector<double> analytic;        // exact eigenvalues
};

}  // namespace

int main() {
  log::set_level(log::Level::kWarn);
  exp::print_mode_banner("T2: eigen-PINN spectra");
  const std::int64_t run_epochs = exp::epochs(2000, 5000);
  const std::int64_t k = exp::full() ? 4 : 2;

  std::vector<Spectrum> problems;
  {
    Spectrum box{"box[0,1]", 0.0, 1.0, nullptr, nullptr, {}};
    for (std::int64_t n = 1; n <= k; ++n) {
      box.analytic.push_back(quantum::infinite_well_eigenvalue(n, 1.0));
    }
    problems.push_back(std::move(box));

    Spectrum ho{"harmonic(box wall +-8)", -8.0, 8.0,
                harmonic_potential_op(1.0), quantum::harmonic_potential(),
                {}};
    for (std::int64_t n = 0; n < k; ++n) {
      ho.analytic.push_back(quantum::ho_eigenvalue(n));
    }
    problems.push_back(std::move(ho));
  }

  Table table({"system", "state", "analytic", "FD-Sturm", "Numerov",
               "eigen-PINN", "PINN rel err"});
  for (const Spectrum& spec : problems) {
    // Classical references.
    const fdm::Grid1d grid{spec.x_lo, spec.x_hi, 1201, false};
    const fdm::SymTridiag h = fdm::build_hamiltonian(grid, spec.potential_fn);
    const std::vector<double> sturm = fdm::smallest_eigenvalues(h, k);
    const std::vector<double> numerov = fdm::numerov_eigenvalues(
        grid, spec.potential_fn, k, spec.analytic.front() - 1.0,
        spec.analytic.back() * 1.8 + 10.0);

    // Eigen-PINN with deflation; guesses are perturbed analytic values
    // (standing in for the WKB estimates a practitioner would use).
    EigenPinnConfig config;
    config.x_lo = spec.x_lo;
    config.x_hi = spec.x_hi;
    config.n_collocation = exp::full() ? 128 : 64;
    config.potential = spec.potential_op;
    config.hidden = exp::full() ? std::vector<std::int64_t>{24, 24, 24}
                                : std::vector<std::int64_t>{16, 16};
    config.epochs = run_epochs;
    config.adam.lr = 5e-3;
    config.anchor_epochs = run_epochs / 8;  // release the anchor early
    config.seed = 11;
    const EigenPinn solver(config);
    std::vector<double> guesses;
    for (double e : spec.analytic) guesses.push_back(1.02 * e + 0.02);
    const std::vector<EigenState> states = solver.solve_spectrum(guesses);

    for (std::int64_t j = 0; j < k; ++j) {
      const double exact = spec.analytic[static_cast<std::size_t>(j)];
      const double pinn = states[static_cast<std::size_t>(j)].energy;
      table.add_row({spec.name, std::to_string(j),
                     Table::fmt(exact, 5),
                     Table::fmt(sturm[static_cast<std::size_t>(j)], 5),
                     Table::fmt(numerov[static_cast<std::size_t>(j)], 5),
                     Table::fmt(pinn, 5),
                     Table::fmt_sci(std::abs(pinn - exact) /
                                        std::max(1e-12, std::abs(exact)),
                                    2)});
    }
  }
  exp::emit(table, "T2 - TISE spectra: analytic vs FD vs Numerov vs eigen-PINN",
            "exp_t2_eigenvalues.csv");
  return 0;
}

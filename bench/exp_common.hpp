// Shared plumbing for the exp_* experiment binaries.
//
// Every experiment runs a fast smoke configuration by default so the whole
// bench directory can be executed in one sweep; QPINN_FULL=1 switches to
// the full-size runs recorded in EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>

#include "core/benchmarks.hpp"
#include "core/trainer.hpp"
#include "util/env.hpp"
#include "util/logging.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace qpinn::exp {

inline bool full() { return qpinn::full_experiments(); }

/// Training epochs for the mode.
inline std::int64_t epochs(std::int64_t smoke, std::int64_t full_size) {
  return full() ? full_size : smoke;
}

/// The standard experiment model: the validated recipe from DESIGN.md
/// (hard IC + periodic embedding where applicable + RFF + normalization).
inline std::shared_ptr<core::FieldModel> standard_model(
    const core::SchrodingerProblem& problem, std::uint64_t seed,
    bool hard_ic = true) {
  core::FieldModelConfig config = core::default_model_config(problem, seed);
  if (full()) {
    config.hidden = {48, 48, 48};
    config.fourier = nn::FourierConfig{32, 1.0};
  } else {
    config.hidden = {32, 32};
    config.fourier = nn::FourierConfig{16, 1.0};
  }
  if (hard_ic) {
    config.hard_ic =
        core::HardIc{problem.config().initial, problem.domain().t_lo};
  }
  return core::make_field_model(config);
}

/// The standard training configuration for the mode.
inline core::TrainConfig standard_train(std::int64_t run_epochs,
                                        std::uint64_t seed) {
  core::TrainConfig config = core::default_train_config(run_epochs, seed);
  if (!full()) {
    config.sampling.n_interior_x = 22;
    config.sampling.n_interior_t = 22;
    config.metric_nx = 48;
    config.metric_nt = 16;
  }
  return config;
}

/// Prints the table and writes its CSV next to the binary.
inline void emit(const Table& table, const std::string& title,
                 const std::string& csv_name) {
  std::printf("%s", table.to_string(title).c_str());
  table.write_csv(csv_name);
  std::printf("(CSV written to %s)\n\n", csv_name.c_str());
}

inline void print_mode_banner(const char* experiment) {
  std::printf("== %s [%s mode] ==\n", experiment,
              full() ? "FULL (QPINN_FULL=1)" : "smoke");
}

}  // namespace qpinn::exp

#!/usr/bin/env python3
"""Repo lint: mechanical rules the compiler does not enforce.

Rules (each finding prints ``path:line: [rule] message``; exit 1 if any):

  banned-random   no C ``rand()`` / ``srand()`` in src/ — use util/rng.hpp,
                  which is seeded, splittable, and deterministic across runs.
  banned-stdout   no ``std::cout`` in src/ — use util/logging.hpp so output
                  honors the configured level and is serialized across
                  threads.
  pragma-once     every header under src/ starts its include guard with
                  ``#pragma once``.
  naked-new       no ``new`` expressions — ownership goes through
                  make_unique/make_shared/containers. Suppress a deliberate
                  use with a trailing ``// lint-allow: naked-new``.
  test-coverage   every src/<mod>/<name>.cpp with a sibling header is
                  directly included by at least one tests/*_test.cpp, so no
                  module silently drops out of the suite.
  banned-raw-storage
                  no ``make_shared<std::vector<double>>`` outside
                  src/tensor/storage_pool.cpp — tensor buffers must come
                  from the pool so recycling and the allocation counters
                  stay accurate (QPINN_NO_POOL flows through the pool too).
  banned-intrinsics
                  no raw SIMD intrinsics (immintrin.h / arm_neon.h,
                  ``_mm*``/``__m*`` / ``v*q_f64`` identifiers) outside
                  src/tensor/simd.hpp — all vector code goes through the
                  dispatch tables there, so every kernel exists in every
                  variant and the QPINN_SIMD override stays meaningful.
  banned-node-construction
                  no direct tape-``Node`` construction (``make_shared<Node>``
                  or ``new Node``) outside src/autodiff/ — graph capture &
                  replay (autodiff/plan.hpp) records every op launched
                  through the autodiff layer; a Node built elsewhere would
                  run eagerly but silently drop out of captured plans.
  banned-raw-sockets
                  no raw blocking socket calls (``recv``/``accept``/
                  ``connect``) outside src/dist/transport.cpp — the
                  transport wraps every one with a deadline, bounded
                  retries, and framing CRC; a bare call elsewhere can hang
                  a rank forever and bypass the failure detector.

Comments and string literals are stripped before token rules run, so prose
mentioning ``new`` or ``rand()`` never trips the gate.

Usage: tools/qpinn_lint.py [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

HEADER_EXT = ".hpp"
SOURCE_EXTS = (".hpp", ".cpp")

ALLOW_TAG = "lint-allow:"


def strip_code(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines and
    column positions so findings keep real line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


class Finding:
    def __init__(self, path: pathlib.Path, line: int, rule: str, message: str):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed(raw_line: str, rule: str) -> bool:
    tag = raw_line.rsplit(ALLOW_TAG, 1)
    return len(tag) == 2 and rule in tag[1]


def token_rules(path: pathlib.Path, findings: list[Finding]) -> None:
    raw = path.read_text(encoding="utf-8")
    raw_lines = raw.splitlines()
    code_lines = strip_code(raw).splitlines()

    rules = [
        # C rand() takes no arguments; qpinn's Tensor::rand(shape, rng, ...)
        # never matches the empty-parens form.
        ("banned-random", re.compile(r"\b(?:std::)?rand\s*\(\s*\)"),
         "C rand() is banned; use util/rng.hpp (seeded, deterministic)"),
        ("banned-random", re.compile(r"\bsrand\s*\("),
         "srand() is banned; use util/rng.hpp (seeded, deterministic)"),
        ("banned-stdout", re.compile(r"\bstd::cout\b"),
         "std::cout is banned in src/; use util/logging.hpp"),
        ("naked-new", re.compile(r"\bnew\b"),
         "naked new is banned; use make_unique/make_shared or a container"),
    ]
    # The pool implementation is the one place allowed to talk to the heap
    # for tensor buffers; everything else must go through StoragePool.
    if path.as_posix().rsplit("src/", 1)[-1] != "tensor/storage_pool.cpp":
        rules.append((
            "banned-raw-storage",
            re.compile(r"make_shared\s*<\s*std::vector\s*<\s*double\b"),
            "raw tensor-buffer allocation is banned; acquire storage via "
            "tensor/storage_pool.hpp so pooling and counters stay accurate"))
    # The autodiff layer owns the tape: every Node must be built by its op
    # launchers so graph capture (autodiff/plan.hpp) sees it. A Node built
    # anywhere else would execute eagerly but never be recorded, silently
    # breaking replay bit-identity.
    if not path.as_posix().rsplit("src/", 1)[-1].startswith("autodiff/"):
        rules.append((
            "banned-node-construction",
            re.compile(r"(?:make_shared\s*<|new\s+)\s*(?:\w+\s*::\s*)*Node\b"),
            "direct tape-Node construction is banned outside src/autodiff/; "
            "go through the autodiff ops so plan capture records the op"))
    # The transport owns the sockets: every recv/accept/connect there runs
    # under a deadline with bounded retries and CRC framing. A bare call
    # anywhere else can block a rank forever — invisible to the heartbeat
    # failure detector, which only watches transport traffic. The
    # lookbehind skips member access (timer.connect, obj->accept) while
    # still catching the global-namespace ::recv spelling.
    if path.as_posix().rsplit("src/", 1)[-1] != "dist/transport.cpp":
        rules.append((
            "banned-raw-sockets",
            re.compile(r"(?<![\w.>])(?:::\s*)?\b(?:recv|accept|connect)"
                       r"\s*\("),
            "raw socket calls are banned outside dist/transport.cpp; use "
            "the Socket/Listener wrappers (deadlines, retries, framing)"))
    # The SIMD abstraction is the one place allowed to spell intrinsics;
    # everywhere else goes through its dispatch tables so each kernel exists
    # in every variant (including the scalar QPINN_SIMD=off fallback).
    if path.as_posix().rsplit("src/", 1)[-1] != "tensor/simd.hpp":
        message = ("raw SIMD intrinsics are banned outside tensor/simd.hpp; "
                   "use the simd::active() kernel tables")
        rules.extend([
            ("banned-intrinsics",
             re.compile(r"#include\s*<(?:immintrin|arm_neon)\.h>"), message),
            ("banned-intrinsics", re.compile(r"\b_mm\d*_\w+"), message),
            ("banned-intrinsics", re.compile(r"\b__m\d+[di]?\b"), message),
            ("banned-intrinsics",
             re.compile(r"\bfloat64x\d+_t\b|\bv\w+q_f64\b"), message),
        ])
    for lineno, code in enumerate(code_lines, start=1):
        for rule, pattern, message in rules:
            if pattern.search(code) and not allowed(raw_lines[lineno - 1], rule):
                findings.append(Finding(path, lineno, rule, message))


def pragma_once_rule(path: pathlib.Path, findings: list[Finding]) -> None:
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(),
                                  start=1):
        stripped = line.strip()
        if stripped == "#pragma once":
            return
        if stripped and not stripped.startswith("//"):
            break  # first non-comment line reached without the pragma
    findings.append(Finding(path, 1, "pragma-once",
                            "header must start with #pragma once"))


def test_coverage_rule(src: pathlib.Path, tests: pathlib.Path,
                       findings: list[Finding]) -> None:
    included: set[str] = set()
    include_re = re.compile(r'#include\s+"([^"]+)"')
    for test in sorted(tests.glob("*_test.cpp")):
        for match in include_re.finditer(test.read_text(encoding="utf-8")):
            included.add(match.group(1))
    for cpp in sorted(src.rglob("*.cpp")):
        header = cpp.with_suffix(HEADER_EXT)
        if not header.is_file():
            continue
        rel = header.relative_to(src).as_posix()
        if rel not in included:
            findings.append(Finding(
                cpp, 1, "test-coverage",
                f'no tests/*_test.cpp includes "{rel}"; add a test or an '
                f"include to an existing suite"))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=None,
                        help="repository root (default: this script's ../)")
    args = parser.parse_args()

    root = (pathlib.Path(args.root).resolve() if args.root
            else pathlib.Path(__file__).resolve().parent.parent)
    src, tests = root / "src", root / "tests"
    if not src.is_dir() or not tests.is_dir():
        print(f"qpinn_lint: {root} has no src/ and tests/", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in sorted(src.rglob("*")):
        if path.suffix not in SOURCE_EXTS or not path.is_file():
            continue
        token_rules(path, findings)
        if path.suffix == HEADER_EXT:
            pragma_once_rule(path, findings)
    test_coverage_rule(src, tests, findings)

    for finding in findings:
        print(finding)
    checked = sum(1 for p in src.rglob("*") if p.suffix in SOURCE_EXTS)
    status = "FAIL" if findings else "OK"
    print(f"qpinn_lint: {checked} files, {len(findings)} finding(s) [{status}]")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Repo lint: mechanical determinism rules the compiler does not enforce.

The analyzer runs in passes:

  1. lex       — comments and string/char literals are blanked (positions
                 preserved), so prose mentioning ``new`` or ``rand()``
                 never trips a gate.
  2. rules     — every rule walks the lexed files and emits findings.
  3. suppress  — a finding on a line carrying a matching
                 ``// lint-allow: <rule>`` tag is dropped and the tag is
                 marked used; tags that suppress nothing become
                 ``unused-suppression`` findings, so stale allows cannot
                 accumulate.
  4. report    — text (``path:line: [rule] message``) or ``--format=sarif``
                 (SARIF 2.1.0, one run, one result per finding).

Rules (exit 1 if any finding survives suppression):

  banned-random   no C ``rand()`` / ``srand()`` in src/ — use util/rng.hpp,
                  which is seeded, splittable, and deterministic across runs.
  banned-stdout   no ``std::cout`` in src/ — use util/logging.hpp so output
                  honors the configured level and is serialized across
                  threads.
  pragma-once     every header under src/ starts its include guard with
                  ``#pragma once``.
  naked-new       no ``new`` expressions — ownership goes through
                  make_unique/make_shared/containers.
  test-coverage   every src/<mod>/<name>.cpp with a sibling header is
                  directly included by at least one tests/*_test.cpp, so no
                  module silently drops out of the suite.
  banned-raw-storage
                  no ``make_shared<std::vector<double>>`` outside
                  src/tensor/storage_pool.cpp — tensor buffers must come
                  from the pool so recycling and the allocation counters
                  stay accurate.
  banned-intrinsics
                  no raw SIMD intrinsics outside src/tensor/simd.hpp — all
                  vector code goes through the dispatch tables there.
  banned-node-construction
                  no direct tape-``Node`` construction outside
                  src/autodiff/ — a Node built elsewhere would run eagerly
                  but silently drop out of captured plans.
  banned-raw-sockets
                  no raw blocking socket calls outside
                  src/dist/transport.cpp — the transport wraps every one
                  with a deadline, bounded retries, and framing CRC.
  banned-fma      no explicit fused multiply-add (``std::fma``,
                  ``__builtin_fma*``, ``FP_CONTRACT ON``) outside
                  src/tensor/simd.hpp — contraction changes rounding per
                  target and breaks the cross-variant bit-identity contract;
                  the simd kernel tables pin fma semantics per variant.
  banned-wallclock
                  no time sources (chrono clocks, ``time()``,
                  ``gettimeofday``, ``clock_gettime``, ...) outside
                  src/util/timer.hpp and src/util/logging.cpp — timing must
                  flow through the Timer/logging layer so numerics never
                  read the clock and replay stays deterministic.
  serve-forward-purity
                  no tape construction inside src/serve/ — the serving
                  layer is forward-only replay (NoGradGuard + a
                  ``CaptureKind::kForwardOnly`` capture); building leaves,
                  raw ops, or calling ``grad()`` there would silently grow
                  a tape on the query path.
  plan-thunk-mutation
                  no ``set_thunks(``/``take_thunks(`` outside
                  src/autodiff/ — ExecutionPlan thunk arrays are rewritten
                  only by the pass pipeline (plan_passes.hpp), which is
                  what keeps replay bit-identical and the arena index
                  consistent with the thunk list.
  banned-unordered-float-reduce
                  no ``unordered_map``/``unordered_set`` whose element or
                  mapped type is directly ``float``/``double`` — iteration
                  is hash-order and reducing over it reorders the
                  floating-point sum between runs.
  banned-naked-float-cast
                  no double<->float casts (``static_cast<float>``, C-style
                  or functional ``float(...)``) outside src/tensor/ — the
                  fp64/fp32 boundary is crossed only through
                  ``kernels_f32::downcast``/``upcast`` so every precision
                  demotion is a visible, auditable plan edit rather than an
                  ad-hoc cast.
  catch-all-swallow
                  every ``catch (...)`` must rethrow (``throw;``) or
                  capture ``std::current_exception()`` — swallowing unknown
                  exceptions hides rank failures from the training loop.
                  Teardown paths in src/dist/launcher.cpp and
                  src/dist/transport.cpp are exempt.
  unused-suppression
                  every ``// lint-allow: <rule>`` tag must suppress a real
                  finding on its line; stale tags are findings themselves.

Usage: tools/qpinn_lint.py [--root REPO_ROOT] [--format {text,sarif}]
                           [--output FILE]
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import pathlib
import re
import sys
from typing import Iterable, Iterator

TOOL_NAME = "qpinn_lint"
TOOL_VERSION = "2.0.0"
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"

HEADER_EXT = ".hpp"
SOURCE_EXTS = (".hpp", ".cpp")

ALLOW_TAG = "lint-allow:"


def strip_code(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines and
    column positions so findings keep real line numbers."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line-comment | block-comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line-comment"
                out.append("  ")
                i += 2
            elif c == "/" and nxt == "*":
                state = "block-comment"
                out.append("  ")
                i += 2
            elif c == '"':
                state = "string"
                out.append(" ")
                i += 1
            elif c == "'":
                state = "char"
                out.append(" ")
                i += 1
            else:
                out.append(c)
                i += 1
        elif state == "line-comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif state == "block-comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
    return "".join(out)


@dataclasses.dataclass
class Finding:
    rel: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class SourceFile:
    """A lexed source file: raw lines for suppression tags, code lines
    (comments/strings blanked) for the token rules."""
    path: pathlib.Path
    rel: str
    raw_lines: list[str]
    code_text: str
    code_lines: list[str]

    @staticmethod
    def load(path: pathlib.Path, root: pathlib.Path) -> "SourceFile":
        raw = path.read_text(encoding="utf-8")
        code = strip_code(raw)
        return SourceFile(path=path,
                          rel=path.relative_to(root).as_posix(),
                          raw_lines=raw.splitlines(),
                          code_text=code,
                          code_lines=code.splitlines())


class Rule:
    """One named analysis pass over the lexed file set."""

    name = ""
    short = ""  # one-line description, exported to SARIF

    def check(self, files: list[SourceFile]) -> Iterator[Finding]:
        raise NotImplementedError


class RegexRule(Rule):
    """Line-oriented token rule: any pattern hit on a lexed line is a
    finding, unless the file is exempt (exact rel path or rel prefix).
    ``only_prefixes`` inverts the scoping: the rule applies exclusively to
    files under the given rel prefixes (for per-subsystem bans)."""

    def __init__(self, name: str, short: str, message: str,
                 patterns: Iterable[str], exempt: Iterable[str] = (),
                 exempt_prefixes: Iterable[str] = (),
                 only_prefixes: Iterable[str] = ()):
        self.name, self.short, self.message = name, short, message
        self.patterns = [re.compile(p) for p in patterns]
        self.exempt = frozenset(exempt)
        self.exempt_prefixes = tuple(exempt_prefixes)
        self.only_prefixes = tuple(only_prefixes)

    def applies_to(self, rel: str) -> bool:
        if self.only_prefixes and not rel.startswith(self.only_prefixes):
            return False
        if rel in self.exempt:
            return False
        return not (self.exempt_prefixes
                    and rel.startswith(self.exempt_prefixes))

    def check(self, files: list[SourceFile]) -> Iterator[Finding]:
        for f in files:
            if not self.applies_to(f.rel):
                continue
            for lineno, code in enumerate(f.code_lines, start=1):
                if any(p.search(code) for p in self.patterns):
                    yield Finding(f.rel, lineno, self.name, self.message)


class PragmaOnceRule(Rule):
    name = "pragma-once"
    short = "headers start with #pragma once"

    def check(self, files: list[SourceFile]) -> Iterator[Finding]:
        for f in files:
            if f.path.suffix != HEADER_EXT:
                continue
            for raw in f.raw_lines:
                stripped = raw.strip()
                if stripped == "#pragma once":
                    break
                if stripped and not stripped.startswith("//"):
                    yield Finding(f.rel, 1, self.name,
                                  "header must start with #pragma once")
                    break
            else:
                yield Finding(f.rel, 1, self.name,
                              "header must start with #pragma once")


class TestCoverageRule(Rule):
    """Repo-level rule: every src/ translation unit with a sibling header
    must have that header included by some tests/*_test.cpp."""

    name = "test-coverage"
    short = "every module header is included by a test suite"

    def __init__(self, src: pathlib.Path, tests: pathlib.Path,
                 root: pathlib.Path):
        self.src, self.tests, self.root = src, tests, root

    def check(self, files: list[SourceFile]) -> Iterator[Finding]:
        included: set[str] = set()
        include_re = re.compile(r'#include\s+"([^"]+)"')
        for test in sorted(self.tests.glob("*_test.cpp")):
            for match in include_re.finditer(
                    test.read_text(encoding="utf-8")):
                included.add(match.group(1))
        for f in files:
            if f.path.suffix != ".cpp":
                continue
            header = f.path.with_suffix(HEADER_EXT)
            if not header.is_file():
                continue
            rel = header.relative_to(self.src).as_posix()
            if rel not in included:
                yield Finding(
                    f.rel, 1, self.name,
                    f'no tests/*_test.cpp includes "{rel}"; add a test or '
                    f"an include to an existing suite")


class CatchAllSwallowRule(Rule):
    """Brace-matching rule: a ``catch (...)`` block must rethrow, capture
    std::current_exception(), or deliberately terminate. Launcher and
    transport teardown paths (best-effort cleanup of dead peers) are
    exempt."""

    name = "catch-all-swallow"
    short = "catch (...) must rethrow or capture current_exception"
    EXEMPT = frozenset({"src/dist/launcher.cpp", "src/dist/transport.cpp"})
    CATCH = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")
    HANDLED = re.compile(r"\bthrow\s*;|\bcurrent_exception\b|"
                         r"\brethrow_exception\b|\bterminate\s*\(|"
                         r"\babort\s*\(")

    def check(self, files: list[SourceFile]) -> Iterator[Finding]:
        for f in files:
            if f.rel in self.EXEMPT:
                continue
            text = f.code_text
            for match in self.CATCH.finditer(text):
                brace = text.find("{", match.end())
                if brace < 0:
                    continue
                depth, i = 0, brace
                while i < len(text):
                    if text[i] == "{":
                        depth += 1
                    elif text[i] == "}":
                        depth -= 1
                        if depth == 0:
                            break
                    i += 1
                body = text[brace:i + 1]
                if not self.HANDLED.search(body):
                    line = text.count("\n", 0, match.start()) + 1
                    yield Finding(
                        f.rel, line, self.name,
                        "catch (...) swallows the exception; rethrow "
                        "(throw;) or capture std::current_exception() so "
                        "failures reach the training loop")


def build_rules(src: pathlib.Path, tests: pathlib.Path,
                root: pathlib.Path) -> list[Rule]:
    """The full rule registry, in reporting order."""
    return [
        RegexRule(
            "banned-random", "no C rand()/srand(); use util/rng.hpp",
            "C rand()/srand() is banned; use util/rng.hpp (seeded, "
            "deterministic)",
            # C rand() takes no arguments; qpinn's Tensor::rand(shape, ...)
            # never matches the empty-parens form.
            [r"\b(?:std::)?rand\s*\(\s*\)", r"\bsrand\s*\("]),
        RegexRule(
            "banned-stdout", "no std::cout in src/; use util/logging.hpp",
            "std::cout is banned in src/; use util/logging.hpp",
            [r"\bstd::cout\b"]),
        RegexRule(
            "naked-new", "no naked new expressions",
            "naked new is banned; use make_unique/make_shared or a "
            "container",
            [r"\bnew\b"]),
        RegexRule(
            "banned-raw-storage",
            "tensor buffers come from tensor/storage_pool.hpp",
            "raw tensor-buffer allocation is banned; acquire storage via "
            "tensor/storage_pool.hpp so pooling and counters stay accurate",
            [r"make_shared\s*<\s*std::vector\s*<\s*double\b"],
            exempt=["src/tensor/storage_pool.cpp"]),
        RegexRule(
            "banned-intrinsics",
            "raw SIMD intrinsics only inside tensor/simd.hpp",
            "raw SIMD intrinsics are banned outside tensor/simd.hpp; use "
            "the simd::active() kernel tables",
            [r"#include\s*<(?:immintrin|arm_neon)\.h>",
             r"\b_mm\d*_\w+", r"\b__m\d+[di]?\b",
             r"\bfloat64x\d+_t\b|\bv\w+q_f64\b"],
            exempt=["src/tensor/simd.hpp"]),
        RegexRule(
            "banned-node-construction",
            "tape Nodes are built only inside src/autodiff/",
            "direct tape-Node construction is banned outside src/autodiff/; "
            "go through the autodiff ops so plan capture records the op",
            [r"(?:make_shared\s*<|new\s+)\s*(?:\w+\s*::\s*)*Node\b"],
            exempt_prefixes=["src/autodiff/"]),
        RegexRule(
            "banned-raw-sockets",
            "raw socket calls only inside dist/transport.cpp",
            "raw socket calls are banned outside dist/transport.cpp; use "
            "the Socket/Listener wrappers (deadlines, retries, framing)",
            # The lookbehind skips member access (timer.connect,
            # obj->accept) while catching the global ::recv spelling.
            [r"(?<![\w.>])(?:::\s*)?\b(?:recv|accept|connect)\s*\("],
            exempt=["src/dist/transport.cpp"]),
        RegexRule(
            "banned-fma",
            "explicit FMA contraction only inside tensor/simd.hpp",
            "explicit fused multiply-add is banned outside tensor/simd.hpp; "
            "contraction changes rounding per target and breaks the "
            "cross-variant bit-identity contract — use the simd kernel "
            "tables",
            [r"(?<![\w.>:])(?:std\s*::\s*)?fma[fl]?\s*\(",
             r"\b__builtin_fma\w*\b",
             r"#pragma\s+STDC\s+FP_CONTRACT\s+ON"],
            exempt=["src/tensor/simd.hpp"]),
        RegexRule(
            "banned-wallclock",
            "time sources only inside util/timer.hpp and util/logging.cpp",
            "time sources are banned outside util/timer.hpp and "
            "util/logging.cpp; route timing through util::Timer so numerics "
            "never read the clock and replay stays deterministic",
            [r"\b(?:system_clock|steady_clock|high_resolution_clock)\b",
             r"\b(?:gettimeofday|clock_gettime|timespec_get|localtime"
             r"|gmtime)\s*\(",
             r"(?<![\w.>:])(?:std\s*::\s*)?time\s*\(",
             r"(?<![\w.>:])(?:std\s*::\s*)?clock\s*\(\s*\)"],
            exempt=["src/util/timer.hpp", "src/util/logging.cpp"]),
        RegexRule(
            "serve-forward-purity",
            "the serving layer never builds a tape",
            "tape construction is banned in src/serve/; serving is "
            "forward-only replay — capture under NoGradGuard with "
            "CaptureKind::kForwardOnly instead of building leaves, ops, or "
            "calling grad()",
            [r"\bVariable\s*::\s*leaf\s*\(",
             r"\bmake_op\s*\(",
             r"(?<![\w.>:])(?:autodiff\s*::\s*|ad\s*::\s*)?grad\s*\(",
             r"\bCaptureKind\s*::\s*kTraining\b"],
            only_prefixes=["src/serve/"]),
        RegexRule(
            "plan-thunk-mutation",
            "ExecutionPlan thunk arrays are rewritten only inside "
            "src/autodiff/",
            "direct ExecutionPlan thunk-array mutation is banned outside "
            "src/autodiff/; rewrite plans through the pass pipeline "
            "(plan_passes.hpp optimize_plan) so the bit-identity contract "
            "and arena accounting stay intact",
            [r"\b(?:set_thunks|take_thunks)\s*\("],
            exempt_prefixes=["src/autodiff/"]),
        RegexRule(
            "banned-unordered-float-reduce",
            "no unordered containers of float/double elements",
            "unordered containers iterate in hash order; a float/double "
            "element or mapped type invites an order-nondeterministic "
            "reduction — use std::map or sort the keys first",
            # Direct element/mapped type only: [^<>] cannot cross a nested
            # template argument, so vector<vector<double>> stays legal.
            [r"\bunordered_(?:map|set)\s*<[^<>\n]*\b(?:float|double)\s*>"]),
        RegexRule(
            "banned-naked-float-cast",
            "double<->float conversions only inside src/tensor/",
            "double<->float casts are banned outside src/tensor/; cross "
            "the precision boundary only through kernels_f32::downcast/"
            "upcast so fp64 master-weight residency stays auditable",
            # sizeof(float) is not a cast: the lookbehinds skip it, and a
            # real cast is followed by an operand anyway. The functional
            # form needs a non-identifier on the left so declarations like
            # `float foo(` never match.
            [r"\bstatic_cast\s*<\s*float\s*>",
             r"(?<!sizeof)(?<!sizeof )\(\s*float\s*\)\s*[\w(]",
             r"(?<![\w.:])float\s*\("],
            exempt_prefixes=["src/tensor/"]),
        PragmaOnceRule(),
        CatchAllSwallowRule(),
        TestCoverageRule(src, tests, root),
    ]


class SuppressionIndex:
    """Pass 3: ``// lint-allow: <rule>`` tags. A finding whose (file, line)
    carries a tag naming its rule is suppressed and the tag counted used;
    leftover tags become unused-suppression findings."""

    def __init__(self, files: list[SourceFile]):
        self.tags: dict[tuple[str, int], dict] = {}
        for f in files:
            for lineno, raw in enumerate(f.raw_lines, start=1):
                if ALLOW_TAG not in raw:
                    continue
                tail = raw.rsplit(ALLOW_TAG, 1)[1].strip()
                rule = tail.split()[0] if tail else ""
                self.tags[(f.rel, lineno)] = {"rule": rule, "used": False}

    def apply(self, findings: list[Finding]) -> list[Finding]:
        kept = []
        for finding in findings:
            tag = self.tags.get((finding.rel, finding.line))
            if tag is not None and tag["rule"] == finding.rule:
                tag["used"] = True
            else:
                kept.append(finding)
        return kept

    def used_count(self) -> int:
        return sum(1 for tag in self.tags.values() if tag["used"])

    def unused(self) -> Iterator[Finding]:
        for (rel, line), tag in sorted(self.tags.items()):
            if not tag["used"]:
                yield Finding(
                    rel, line, "unused-suppression",
                    f"'lint-allow: {tag['rule']}' suppresses nothing; "
                    f"remove the tag or name the right rule")


@dataclasses.dataclass
class LintReport:
    findings: list[Finding]
    files_checked: int
    suppressions_used: int
    rules: list[Rule]


def run_lint(root: pathlib.Path) -> LintReport:
    src, tests = root / "src", root / "tests"
    if not src.is_dir() or not tests.is_dir():
        raise FileNotFoundError(f"{root} has no src/ and tests/")

    files = [SourceFile.load(p, root) for p in sorted(src.rglob("*"))
             if p.suffix in SOURCE_EXTS and p.is_file()]
    rules = build_rules(src, tests, root)

    findings: list[Finding] = []
    for rule in rules:
        findings.extend(rule.check(files))

    suppressions = SuppressionIndex(files)
    findings = suppressions.apply(findings)
    findings.extend(suppressions.unused())
    findings.sort(key=lambda f: (f.rel, f.line, f.rule))
    return LintReport(findings=findings, files_checked=len(files),
                      suppressions_used=suppressions.used_count(),
                      rules=rules)


def sarif_document(report: LintReport, root: pathlib.Path) -> dict:
    """SARIF 2.1.0: one run, the rule registry as reportingDescriptors,
    one result per finding with a SRCROOT-relative location."""
    rule_meta = [{"id": rule.name,
                  "shortDescription": {"text": rule.short}}
                 for rule in report.rules]
    rule_meta.append({"id": "unused-suppression",
                      "shortDescription": {
                          "text": "lint-allow tags must suppress a real "
                                  "finding"}})
    rule_index = {meta["id"]: i for i, meta in enumerate(rule_meta)}
    results = [{
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.rel,
                                     "uriBaseId": "SRCROOT"},
                "region": {"startLine": finding.line},
            },
        }],
    } for finding in report.findings]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {"name": TOOL_NAME,
                                "version": TOOL_VERSION,
                                "rules": rule_meta}},
            "originalUriBaseIds": {
                "SRCROOT": {"uri": root.resolve().as_uri() + "/"}},
            "results": results,
        }],
    }


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repository root (default: this script's ../)")
    parser.add_argument("--format", choices=("text", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--output", default=None,
                        help="write the report here instead of stdout")
    args = parser.parse_args()

    root = (pathlib.Path(args.root).resolve() if args.root
            else pathlib.Path(__file__).resolve().parent.parent)
    try:
        report = run_lint(root)
    except FileNotFoundError as err:
        print(f"{TOOL_NAME}: {err}", file=sys.stderr)
        return 2

    if args.format == "sarif":
        text = json.dumps(sarif_document(report, root), indent=2)
    else:
        text = "\n".join(str(f) for f in report.findings)
    if args.output:
        pathlib.Path(args.output).write_text(text + "\n", encoding="utf-8")
    elif text:
        print(text)

    status = "FAIL" if report.findings else "OK"
    summary = (f"{TOOL_NAME}: {report.files_checked} files, "
               f"{len(report.findings)} finding(s), "
               f"{report.suppressions_used} suppression(s) used [{status}]")
    print(summary, file=sys.stderr if args.format == "sarif" else sys.stdout)
    return 1 if report.findings else 0


if __name__ == "__main__":
    sys.exit(main())

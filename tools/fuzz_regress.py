#!/usr/bin/env python3
"""Replay the committed fuzz corpora and regression artifacts.

For every harness target this feeds each file under
``fuzz/corpus/<target>/`` and ``fuzz/artifacts/<target>/`` through the
built binary and fails on any non-zero exit (crash, sanitizer report,
round-trip trap). Both engine modes share the contract that file
arguments are replayed once and the process exits 0:

* libFuzzer binaries (clang): ``./fuzz_<target> file...``
* standalone driver (gcc):     same invocation, driver main()

Usage: tools/fuzz_regress.py --fuzz-dir FUZZ_DIR --bin-dir BIN_DIR
       [--targets frame_decode,checkpoint_load,...]
"""

from __future__ import annotations

import argparse
import pathlib
import subprocess
import sys

DEFAULT_TARGETS = (
    "frame_decode",
    "checkpoint_load",
    "model_deserialize",
    "env_cli",
)


def collect_inputs(fuzz_dir: pathlib.Path, target: str) -> list[pathlib.Path]:
    inputs: list[pathlib.Path] = []
    for kind in ("corpus", "artifacts"):
        directory = fuzz_dir / kind / target
        if directory.is_dir():
            inputs.extend(sorted(p for p in directory.iterdir()
                                 if p.is_file()))
    return inputs


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fuzz-dir", required=True,
                        help="repo fuzz/ directory (corpus + artifacts)")
    parser.add_argument("--bin-dir", required=True,
                        help="directory holding the fuzz_<target> binaries")
    parser.add_argument("--targets", default=",".join(DEFAULT_TARGETS),
                        help="comma-separated target list")
    args = parser.parse_args()

    fuzz_dir = pathlib.Path(args.fuzz_dir)
    bin_dir = pathlib.Path(args.bin_dir)
    failures = 0
    replayed = 0
    for target in [t for t in args.targets.split(",") if t]:
        binary = bin_dir / f"fuzz_{target}"
        if not binary.is_file():
            print(f"fuzz_regress: missing binary {binary}", file=sys.stderr)
            failures += 1
            continue
        inputs = collect_inputs(fuzz_dir, target)
        if not inputs:
            print(f"fuzz_regress: no committed inputs for {target}",
                  file=sys.stderr)
            failures += 1
            continue
        result = subprocess.run(
            [str(binary)] + [str(p) for p in inputs],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        replayed += len(inputs)
        if result.returncode != 0:
            print(f"fuzz_regress: {target} FAILED "
                  f"(exit {result.returncode})\n{result.stdout}",
                  file=sys.stderr)
            failures += 1
        else:
            print(f"fuzz_regress: {target}: {len(inputs)} input(s) ok")

    status = "FAIL" if failures else "OK"
    print(f"fuzz_regress: {replayed} input(s) replayed, "
          f"{failures} failing target(s) [{status}]")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())

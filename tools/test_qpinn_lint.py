#!/usr/bin/env python3
"""Unit tests for tools/qpinn_lint.py.

Every rule gets a positive case (the rule fires on a minimal bad snippet),
a negative case (idiomatic code stays clean), and the suppression machinery
is tested both ways (a matching lint-allow suppresses and is counted; a
stale tag becomes an unused-suppression finding). The SARIF writer is
checked structurally against the 2.1.0 shape the CI uploader expects.

Runs as a ctest (qpinn_lint_selftest) and standalone:
    python3 tools/test_qpinn_lint.py
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import qpinn_lint  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

HEADER = "#pragma once\n"


def lint(files: dict[str, str]) -> qpinn_lint.LintReport:
    """Lint a synthetic repo laid out from {rel_path: contents}."""
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "src").mkdir()
        (root / "tests").mkdir()
        for rel, text in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text, encoding="utf-8")
        return qpinn_lint.run_lint(root)


def rules_hit(report: qpinn_lint.LintReport) -> set[str]:
    return {finding.rule for finding in report.findings}


class StripCodeTest(unittest.TestCase):
    def test_comments_and_strings_are_blanked(self):
        code = ('int x = 1;  // the new rand() seed\n'
                'const char* s = "std::cout << new";\n'
                '/* srand(7) */ int y = 2;\n')
        stripped = qpinn_lint.strip_code(code)
        self.assertNotIn("new", stripped)
        self.assertNotIn("rand", stripped)
        self.assertNotIn("cout", stripped)
        self.assertIn("int x = 1;", stripped)
        self.assertEqual(code.count("\n"), stripped.count("\n"))

    def test_positions_are_preserved(self):
        code = 'a /* mid */ b\n'
        stripped = qpinn_lint.strip_code(code)
        self.assertEqual(len(code), len(stripped))
        self.assertEqual(stripped.index("b"), code.index("b"))


class TokenRuleTest(unittest.TestCase):
    def test_banned_random_fires(self):
        report = lint({"src/a.cpp": "int x = rand();\nsrand(7);\n"})
        self.assertIn("banned-random", rules_hit(report))

    def test_tensor_rand_is_clean(self):
        report = lint(
            {"src/a.cpp": "auto t = Tensor::rand(shape, rng, -1.0, 1.0);\n"})
        self.assertNotIn("banned-random", rules_hit(report))

    def test_banned_stdout(self):
        bad = lint({"src/a.cpp": 'std::cout << "hi";\n'})
        good = lint({"src/a.cpp": 'QPINN_LOG_INFO("hi");\n'})
        self.assertIn("banned-stdout", rules_hit(bad))
        self.assertNotIn("banned-stdout", rules_hit(good))

    def test_naked_new(self):
        bad = lint({"src/a.cpp": "auto* p = new int(3);\n"})
        good = lint({"src/a.cpp": "auto p = std::make_unique<int>(3);\n"})
        self.assertIn("naked-new", rules_hit(bad))
        self.assertNotIn("naked-new", rules_hit(good))

    def test_banned_raw_storage_exempts_pool(self):
        snippet = "auto b = std::make_shared<std::vector<double>>(64);\n"
        bad = lint({"src/tensor/tensor.cpp": snippet})
        exempt = lint({"src/tensor/storage_pool.cpp": snippet})
        self.assertIn("banned-raw-storage", rules_hit(bad))
        self.assertNotIn("banned-raw-storage", rules_hit(exempt))

    def test_banned_intrinsics_exempts_simd_header(self):
        snippet = "#include <immintrin.h>\n__m256d v = _mm256_set1_pd(0);\n"
        bad = lint({"src/tensor/kernels.cpp": snippet})
        exempt = lint({"src/tensor/simd.hpp": HEADER + snippet})
        self.assertIn("banned-intrinsics", rules_hit(bad))
        self.assertNotIn("banned-intrinsics", rules_hit(exempt))

    def test_banned_node_construction_exempts_autodiff(self):
        snippet = "auto n = std::make_shared<Node>();\n"
        bad = lint({"src/core/trainer.cpp": snippet})
        exempt = lint({"src/autodiff/ops.cpp": snippet})
        self.assertIn("banned-node-construction", rules_hit(bad))
        self.assertNotIn("banned-node-construction", rules_hit(exempt))

    def test_banned_raw_sockets(self):
        bad = lint({"src/dist/peer.cpp": "recv(fd, buf, len, 0);\n"})
        member = lint({"src/dist/peer.cpp": "socket_.connect(addr);\n"})
        exempt = lint(
            {"src/dist/transport.cpp": "recv(fd, buf, len, 0);\n"})
        self.assertIn("banned-raw-sockets", rules_hit(bad))
        self.assertNotIn("banned-raw-sockets", rules_hit(member))
        self.assertNotIn("banned-raw-sockets", rules_hit(exempt))


class ServeForwardPurityTest(unittest.TestCase):
    def test_fires_on_tape_construction_in_serve(self):
        for snippet in ("auto v = Variable::leaf(t);\n",
                        "auto v = make_op(fn, parents);\n",
                        "auto gs = autodiff::grad(loss, params);\n",
                        "CaptureScope s(plan_, CaptureKind::kTraining);\n"):
            report = lint({"src/serve/compiled_model.cpp": snippet})
            self.assertIn("serve-forward-purity", rules_hit(report),
                          f"should fire on: {snippet!r}")

    def test_scoped_to_serve_only(self):
        report = lint(
            {"src/core/trainer.cpp": "auto gs = autodiff::grad(l, ps);\n"})
        self.assertNotIn("serve-forward-purity", rules_hit(report))

    def test_forward_only_serving_code_is_clean(self):
        snippet = ("autodiff::NoGradGuard no_grad;\n"
                   "plan::CaptureScope scope(plan_, "
                   "plan::CaptureKind::kForwardOnly);\n"
                   "auto out = model_->forward(Variable::constant(input_));\n"
                   "if (p.requires_grad()) {}\n")
        report = lint({"src/serve/compiled_model.cpp": snippet})
        self.assertNotIn("serve-forward-purity", rules_hit(report))


class PlanThunkMutationTest(unittest.TestCase):
    def test_fires_on_thunk_mutation_outside_autodiff(self):
        for snippet in ("plan.set_thunks(std::move(ts));\n",
                        "auto ts = plan.take_thunks();\n"):
            report = lint({"src/core/trainer.cpp": snippet})
            self.assertIn("plan-thunk-mutation", rules_hit(report),
                          f"should fire on: {snippet!r}")

    def test_exempts_autodiff_pass_pipeline(self):
        snippet = ("auto ts = plan.take_thunks();\n"
                   "plan.set_thunks(std::move(ts));\n")
        report = lint({"src/autodiff/plan_passes.cpp": snippet})
        self.assertNotIn("plan-thunk-mutation", rules_hit(report))

    def test_reading_thunks_is_clean(self):
        report = lint(
            {"src/core/trainer.cpp": "const auto& ts = plan.thunks();\n"})
        self.assertNotIn("plan-thunk-mutation", rules_hit(report))


class DeterminismRuleTest(unittest.TestCase):
    def test_banned_fma_fires_on_std_and_builtin(self):
        report = lint({"src/a.cpp": "double y = std::fma(a, b, c);\n"
                                    "double z = __builtin_fma(a, b, c);\n"})
        self.assertEqual(
            2, sum(1 for f in report.findings if f.rule == "banned-fma"))

    def test_banned_fma_ignores_kernel_table_calls(self):
        report = lint({"src/a.cpp": "acc = V::fma(x, w, acc);\n"})
        self.assertNotIn("banned-fma", rules_hit(report))

    def test_banned_fma_exempts_simd_header(self):
        report = lint(
            {"src/tensor/simd.hpp":
             HEADER + "static reg fma(reg a, reg b, reg c);\n"})
        self.assertNotIn("banned-fma", rules_hit(report))

    def test_banned_wallclock_fires(self):
        report = lint({"src/a.cpp":
                       "auto t0 = std::chrono::steady_clock::now();\n"
                       "auto t1 = std::time(nullptr);\n"
                       "gettimeofday(&tv, nullptr);\n"})
        self.assertEqual(
            3,
            sum(1 for f in report.findings if f.rule == "banned-wallclock"))

    def test_banned_wallclock_exempts_timer_and_logging(self):
        clock = "using clock = std::chrono::steady_clock;\n"
        timer = lint({"src/util/timer.hpp": HEADER + clock})
        logging = lint({"src/util/logging.cpp": clock})
        self.assertNotIn("banned-wallclock", rules_hit(timer))
        self.assertNotIn("banned-wallclock", rules_hit(logging))

    def test_banned_wallclock_ignores_similar_identifiers(self):
        report = lint({"src/a.cpp": "double time_step = dt;\n"
                                    "auto x = wall_time(step);\n"})
        self.assertNotIn("banned-wallclock", rules_hit(report))

    def test_unordered_float_reduce_fires_on_direct_types(self):
        report = lint({"src/a.cpp":
                       "std::unordered_map<std::string, double> sums;\n"
                       "std::unordered_set<float> seen;\n"})
        self.assertEqual(
            2, sum(1 for f in report.findings
                   if f.rule == "banned-unordered-float-reduce"))

    def test_unordered_float_reduce_ignores_nested_types(self):
        report = lint({"src/a.cpp":
                       "std::unordered_map<std::size_t, "
                       "std::vector<std::vector<double>>> buckets;\n"
                       "std::unordered_map<Node*, Variable> grads;\n"})
        self.assertNotIn("banned-unordered-float-reduce", rules_hit(report))

    def test_catch_all_swallow_fires(self):
        report = lint({"src/a.cpp":
                       "void f() {\n"
                       "  try { g(); } catch (...) {\n"
                       "    cleanup();\n"
                       "  }\n"
                       "}\n"})
        findings = [f for f in report.findings
                    if f.rule == "catch-all-swallow"]
        self.assertEqual(1, len(findings))
        self.assertEqual(2, findings[0].line)

    def test_catch_all_rethrow_and_capture_are_clean(self):
        report = lint({"src/a.cpp":
                       "void f() {\n"
                       "  try { g(); } catch (...) { cleanup(); throw; }\n"
                       "  try { g(); } catch (...) {\n"
                       "    err = std::current_exception();\n"
                       "  }\n"
                       "}\n"})
        self.assertNotIn("catch-all-swallow", rules_hit(report))

    def test_naked_float_cast_fires_on_every_spelling(self):
        for snippet in ("float y = static_cast<float>(x);\n",
                        "float y = (float)x;\n",
                        "float y = float(x);\n"):
            report = lint({"src/core/trainer.cpp": snippet})
            self.assertIn("banned-naked-float-cast", rules_hit(report),
                          f"should fire on: {snippet!r}")

    def test_naked_float_cast_exempts_tensor_layer(self):
        report = lint({"src/tensor/kernels_f32.cpp":
                       "out[i] = static_cast<float>(src[i]);\n"})
        self.assertNotIn("banned-naked-float-cast", rules_hit(report))

    def test_naked_float_cast_ignores_sizeof_and_params(self):
        report = lint({"src/autodiff/precision.cpp":
                       "bytes += n * sizeof(float);\n"
                       "auto f = [](float v) { return v; };\n"})
        self.assertNotIn("banned-naked-float-cast", rules_hit(report))

    def test_catch_all_exempts_teardown_paths(self):
        snippet = "void f() { try { g(); } catch (...) { } }\n"
        report = lint({"src/dist/launcher.cpp": snippet,
                       "src/dist/transport.cpp": snippet})
        self.assertNotIn("catch-all-swallow", rules_hit(report))


class StructuralRuleTest(unittest.TestCase):
    def test_pragma_once(self):
        bad = lint({"src/a.hpp": "struct A {};\n"})
        good = lint({"src/a.hpp": "// doc comment first is fine\n"
                                  "#pragma once\nstruct A {};\n"})
        self.assertIn("pragma-once", rules_hit(bad))
        self.assertNotIn("pragma-once", rules_hit(good))

    def test_test_coverage(self):
        module = {"src/mod/a.hpp": HEADER + "void f();\n",
                  "src/mod/a.cpp": "void f() {}\n"}
        bad = lint(module)
        good = lint({**module,
                     "tests/a_test.cpp": '#include "mod/a.hpp"\n'})
        self.assertIn("test-coverage", rules_hit(bad))
        self.assertNotIn("test-coverage", rules_hit(good))


class SuppressionTest(unittest.TestCase):
    def test_matching_allow_suppresses_and_is_counted(self):
        report = lint({"src/a.cpp":
                       "auto* p = new Impl();  // lint-allow: naked-new\n"})
        self.assertEqual([], report.findings)
        self.assertEqual(1, report.suppressions_used)

    def test_allow_with_trailing_note_still_matches(self):
        report = lint({"src/a.cpp":
                       "auto* p = new Impl();"
                       "  // lint-allow: naked-new (private ctor)\n"})
        self.assertEqual([], report.findings)

    def test_allow_for_wrong_rule_does_not_suppress(self):
        report = lint({"src/a.cpp":
                       "auto* p = new Impl();  // lint-allow: banned-fma\n"})
        hit = rules_hit(report)
        self.assertIn("naked-new", hit)
        self.assertIn("unused-suppression", hit)

    def test_unused_allow_is_a_finding(self):
        report = lint({"src/a.cpp":
                       "int x = 1;  // lint-allow: banned-wallclock\n"})
        findings = [f for f in report.findings
                    if f.rule == "unused-suppression"]
        self.assertEqual(1, len(findings))
        self.assertIn("banned-wallclock", findings[0].message)


class SarifTest(unittest.TestCase):
    def test_sarif_document_structure(self):
        report = lint({"src/a.cpp": "int x = rand();\n"})
        with tempfile.TemporaryDirectory() as tmp:
            doc = qpinn_lint.sarif_document(report, pathlib.Path(tmp))
        doc = json.loads(json.dumps(doc))  # must be JSON-serializable

        self.assertEqual(qpinn_lint.SARIF_VERSION, doc["version"])
        self.assertEqual(qpinn_lint.SARIF_SCHEMA, doc["$schema"])
        self.assertEqual(1, len(doc["runs"]))
        run = doc["runs"][0]

        driver = run["tool"]["driver"]
        self.assertEqual("qpinn_lint", driver["name"])
        rule_ids = [rule["id"] for rule in driver["rules"]]
        self.assertEqual(len(rule_ids), len(set(rule_ids)))
        for rule in driver["rules"]:
            self.assertTrue(rule["shortDescription"]["text"])
        self.assertIn("unused-suppression", rule_ids)

        self.assertIn("SRCROOT", run["originalUriBaseIds"])
        self.assertTrue(
            run["originalUriBaseIds"]["SRCROOT"]["uri"].endswith("/"))

        self.assertEqual(len(report.findings), len(run["results"]))
        for result in run["results"]:
            self.assertEqual(
                result["ruleId"], rule_ids[result["ruleIndex"]])
            self.assertEqual("error", result["level"])
            self.assertTrue(result["message"]["text"])
            location = result["locations"][0]["physicalLocation"]
            self.assertEqual(
                "SRCROOT", location["artifactLocation"]["uriBaseId"])
            self.assertNotIn("..", location["artifactLocation"]["uri"])
            self.assertGreaterEqual(location["region"]["startLine"], 1)

    def test_clean_run_has_empty_results(self):
        report = lint({"src/a.cpp": "int x = 1;\n"})
        doc = qpinn_lint.sarif_document(report, pathlib.Path("/tmp"))
        self.assertEqual([], doc["runs"][0]["results"])


class RepoCleanTest(unittest.TestCase):
    def test_repo_is_clean_under_all_rules(self):
        report = qpinn_lint.run_lint(REPO_ROOT)
        self.assertEqual(
            [], [str(f) for f in report.findings],
            "repo must lint clean; fix or lint-allow with justification")
        self.assertGreater(report.files_checked, 100)


if __name__ == "__main__":
    unittest.main(verbosity=2)

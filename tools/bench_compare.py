#!/usr/bin/env python3
"""Warn-only comparison of two bench_report JSON files.

CI runs ``bench_report --quick`` and diffs the fresh report against the
committed baseline (BENCH_qpinn.json). Timing on shared runners is noisy,
so ns/op regressions only WARN by default; allocation counts are exact
(the pool counts them deterministically from the tape), so an allocs/op
increase is the signal to look at first.

Exit code is 0 unless --strict is passed AND a finding exists, so the CI
job stays warn-only until the trajectory stabilizes enough to gate on.

Usage: tools/bench_compare.py --baseline BENCH_qpinn.json --current new.json
"""

from __future__ import annotations

import argparse
import json
import sys

TIME_WARN_RATIO = 1.30   # ns/op regression threshold (noisy metric)
ALLOC_WARN_DELTA = 0.5   # allocs/op increase threshold (exact metric)


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def index(report: dict) -> dict:
    return {
        (r["suite"], r["op"], r["shape"]): r
        for r in report.get("results", [])
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any finding (default: warn only)")
    args = parser.parse_args()

    baseline, current = load(args.baseline), load(args.current)
    base_idx, cur_idx = index(baseline), index(current)

    findings: list[str] = []
    for key, cur in sorted(cur_idx.items()):
        base = base_idx.get(key)
        name = "/".join(key)
        if base is None:
            print(f"bench_compare: NEW {name} "
                  f"(ns/op {cur['ns_per_op']:.0f}, no baseline entry)")
            continue
        if base["ns_per_op"] > 0:
            ratio = cur["ns_per_op"] / base["ns_per_op"]
            if ratio > TIME_WARN_RATIO:
                findings.append(
                    f"{name}: ns/op {base['ns_per_op']:.0f} -> "
                    f"{cur['ns_per_op']:.0f} ({ratio:.2f}x)")
        if cur["allocs_per_op"] > base["allocs_per_op"] + ALLOC_WARN_DELTA:
            findings.append(
                f"{name}: allocs/op {base['allocs_per_op']:.1f} -> "
                f"{cur['allocs_per_op']:.1f} (exact metric; real regression)")
    for key in sorted(base_idx.keys() - cur_idx.keys()):
        findings.append(f"{'/'.join(key)}: present in baseline, missing now")

    base_red = baseline.get("summary", {}).get("alloc_reduction_x")
    cur_red = current.get("summary", {}).get("alloc_reduction_x")
    if cur_red is not None:
        print(f"bench_compare: alloc_reduction_x baseline={base_red} "
              f"current={cur_red}")
        if cur_red < 5.0:
            findings.append(
                f"alloc_reduction_x {cur_red:.1f} below the 5x budget")

    for finding in findings:
        print(f"bench_compare: WARN {finding}")
    status = "FAIL" if (findings and args.strict) else "OK"
    print(f"bench_compare: {len(cur_idx)} entries, {len(findings)} "
          f"warning(s) [{status}]")
    return 1 if (findings and args.strict) else 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Warn-only comparison of two bench_report JSON files.

CI runs ``bench_report --quick`` and diffs the fresh report against the
committed baseline (BENCH_qpinn.json). Timing on shared runners is noisy,
so ns/op regressions only WARN by default; allocation counts are exact
(the pool counts them deterministically from the tape), so an allocs/op
increase is the signal to look at first.

The per-op timing threshold defaults to +/-25% and is overridable with
``--threshold`` (a fraction: 0.25 means a 1.25x slowdown warns). The last
line is a machine-readable verdict, e.g.::

    bench_compare: verdict=ok regressions=0 new=5 missing=0 threshold=0.25

Exit code is 0 unless ``--fail-on-regress`` (regressions only) or
``--strict`` (any finding) is passed, so the CI job stays warn-only until
the trajectory stabilizes enough to gate on.

Usage: tools/bench_compare.py --baseline BENCH_qpinn.json --current new.json
"""

from __future__ import annotations

import argparse
import json
import sys

ALLOC_WARN_DELTA = 0.5   # allocs/op increase threshold (exact metric)


def load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def index(report: dict) -> dict:
    return {
        (r["suite"], r["op"], r["shape"]): r
        for r in report.get("results", [])
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="per-op ns/op regression fraction before a "
                             "warning fires (default 0.25 = 1.25x)")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when any regression is found")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 on any finding, including new/missing "
                             "entries (default: warn only)")
    args = parser.parse_args()
    warn_ratio = 1.0 + args.threshold

    baseline, current = load(args.baseline), load(args.current)
    base_idx, cur_idx = index(baseline), index(current)

    regressions: list[str] = []
    findings: list[str] = []
    new_entries = 0
    for key, cur in sorted(cur_idx.items()):
        base = base_idx.get(key)
        name = "/".join(key)
        if base is None:
            new_entries += 1
            print(f"bench_compare: NEW {name} "
                  f"(ns/op {cur['ns_per_op']:.0f}, no baseline entry)")
            continue
        if base["ns_per_op"] > 0:
            ratio = cur["ns_per_op"] / base["ns_per_op"]
            if ratio > warn_ratio:
                regressions.append(
                    f"{name}: ns/op {base['ns_per_op']:.0f} -> "
                    f"{cur['ns_per_op']:.0f} ({ratio:.2f}x)")
        # The alloc counters are exact for single-threaded suites (the
        # pool counts deterministically from the tape). The dist rows run
        # several rank threads against the shared pool, so hits/misses
        # depend on thread interleaving — allocs/op there is noise on the
        # order of 1, not a tape property; only the timing gate applies.
        if key[0] != "dist" and (cur["allocs_per_op"]
                                 > base["allocs_per_op"] + ALLOC_WARN_DELTA):
            regressions.append(
                f"{name}: allocs/op {base['allocs_per_op']:.1f} -> "
                f"{cur['allocs_per_op']:.1f} (exact metric; real regression)")
    missing = sorted(base_idx.keys() - cur_idx.keys())
    for key in missing:
        findings.append(f"{'/'.join(key)}: present in baseline, missing now")

    base_sum = baseline.get("summary", {})
    cur_sum = current.get("summary", {})
    base_red = base_sum.get("alloc_reduction_x")
    cur_red = cur_sum.get("alloc_reduction_x")
    if cur_red is not None:
        print(f"bench_compare: alloc_reduction_x baseline={base_red} "
              f"current={cur_red}")
        if cur_red < 5.0:
            regressions.append(
                f"alloc_reduction_x {cur_red:.1f} below the 5x budget")

    # Plan-optimizer gates. Thunk counts and arena bytes are exact metrics
    # (deterministic properties of the captured tape, like the alloc
    # counters), so these are real regressions, not noise: with the passes
    # on, every tracked plan must shrink in both thunks and arena bytes,
    # and the optimized sizes must not grow past the baseline's.
    if cur_sum.get("plan_opt_enabled"):
        for plan in ("fwd", "step", "tdse"):
            thunks_b = cur_sum.get(f"{plan}_plan_thunks_before")
            thunks_a = cur_sum.get(f"{plan}_plan_thunks_after")
            arena_b = cur_sum.get(f"{plan}_plan_arena_bytes_before")
            arena_a = cur_sum.get(f"{plan}_plan_arena_bytes_after")
            if None in (thunks_b, thunks_a, arena_b, arena_a):
                continue
            print(f"bench_compare: {plan}_plan thunks {thunks_b}->{thunks_a}"
                  f" arena_bytes {arena_b}->{arena_a}")
            if thunks_a >= thunks_b:
                regressions.append(
                    f"{plan}_plan: optimizer eliminated no thunks "
                    f"({thunks_b} -> {thunks_a})")
            if arena_a >= arena_b:
                regressions.append(
                    f"{plan}_plan: optimizer saved no arena bytes "
                    f"({arena_b} -> {arena_a})")
            if base_sum.get("plan_opt_enabled"):
                for field in (f"{plan}_plan_thunks_after",
                              f"{plan}_plan_arena_bytes_after"):
                    base_v = base_sum.get(field)
                    cur_v = cur_sum.get(field)
                    if base_v is not None and cur_v > base_v:
                        regressions.append(
                            f"{field} {base_v} -> {cur_v} "
                            f"(exact metric; optimizer lost ground)")

    # Mixed-precision gate: the demoted training-step replay must beat the
    # fp64 replay by >= 1.3x. Both sides are timed back-to-back in the same
    # bench_report run (same machine, same load), so unlike the raw ns/op
    # rows this ratio is stable enough to gate on.
    cur_mixed = cur_sum.get("mixed_speedup_x")
    if cur_mixed is not None:
        print(f"bench_compare: mixed_speedup_x "
              f"baseline={base_sum.get('mixed_speedup_x')} "
              f"current={cur_mixed}")
        if cur_mixed < 1.3:
            regressions.append(
                f"mixed_speedup_x {cur_mixed:.2f} below the 1.3x gate "
                f"(fp32 replay no longer pays for its conversions)")

    findings = regressions + findings
    for finding in findings:
        print(f"bench_compare: WARN {finding}")
    fail = bool((regressions and args.fail_on_regress)
                or (findings and args.strict))
    print(f"bench_compare: {len(cur_idx)} entries, {len(findings)} "
          f"warning(s) [{'FAIL' if fail else 'OK'}]")
    verdict = "regress" if regressions else "ok"
    print(f"bench_compare: verdict={verdict} regressions={len(regressions)} "
          f"new={new_entries} missing={len(missing)} "
          f"threshold={args.threshold}")
    return 1 if fail else 0


if __name__ == "__main__":
    sys.exit(main())

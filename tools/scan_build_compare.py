#!/usr/bin/env python3
"""Gate scan-build (clang static analyzer) output against a baseline.

scan-build -plist-html drops one .plist per translation unit under the
results directory. This script collects every diagnostic as a
(checker, file, description) triple — line numbers are deliberately left
out of the key so unrelated edits above a finding don't churn the
baseline — and compares the multiset against the committed baseline JSON:

  * a triple not in the baseline is a NEW finding  -> exit 1
  * a baseline triple that no longer appears is reported as resolved
    (informational; run with --update to rewrite the baseline)

Usage:
  tools/scan_build_compare.py --results DIR --baseline FILE --root REPO
                              [--update]
"""

from __future__ import annotations

import argparse
import collections
import json
import pathlib
import plistlib
import sys


def collect_findings(results: pathlib.Path,
                     root: pathlib.Path) -> collections.Counter:
    findings: collections.Counter = collections.Counter()
    for plist_path in sorted(results.rglob("*.plist")):
        with open(plist_path, "rb") as handle:
            try:
                doc = plistlib.load(handle)
            except plistlib.InvalidFileException:
                continue
        files = doc.get("files", [])
        for diag in doc.get("diagnostics", []):
            checker = diag.get("check_name", diag.get("category", "unknown"))
            description = diag.get("description", "")
            index = diag.get("location", {}).get("file", -1)
            source = files[index] if 0 <= index < len(files) else "<unknown>"
            try:
                source = pathlib.Path(source).resolve().relative_to(
                    root.resolve()).as_posix()
            except ValueError:
                pass  # outside the repo (system header): keep as-is
            findings[(checker, source, description)] += 1
    return findings


def load_baseline(path: pathlib.Path) -> collections.Counter:
    doc = json.loads(path.read_text(encoding="utf-8"))
    baseline: collections.Counter = collections.Counter()
    for entry in doc.get("findings", []):
        key = (entry["checker"], entry["file"], entry["description"])
        baseline[key] += entry.get("count", 1)
    return baseline


def write_baseline(path: pathlib.Path,
                   findings: collections.Counter) -> None:
    doc = {"findings": [
        {"checker": checker, "file": source, "description": description,
         "count": count}
        for (checker, source, description), count in sorted(findings.items())
    ]}
    path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", required=True,
                        help="scan-build output directory (plist files)")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--root", default=".",
                        help="repo root for normalizing source paths")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from current results")
    args = parser.parse_args()

    results = pathlib.Path(args.results)
    if not results.is_dir():
        print(f"scan_build_compare: no results directory {results}",
              file=sys.stderr)
        return 2
    current = collect_findings(results, pathlib.Path(args.root))
    baseline_path = pathlib.Path(args.baseline)

    if args.update:
        write_baseline(baseline_path, current)
        print(f"scan_build_compare: baseline rewritten with "
              f"{sum(current.values())} finding(s)")
        return 0

    baseline = load_baseline(baseline_path)
    new = current - baseline
    resolved = baseline - current

    for (checker, source, description), count in sorted(new.items()):
        print(f"NEW: {source}: [{checker}] {description} (x{count})")
    for (checker, source, description), count in sorted(resolved.items()):
        print(f"resolved: {source}: [{checker}] {description} (x{count}) — "
              f"run with --update to shrink the baseline")

    status = "FAIL" if new else "OK"
    print(f"scan_build_compare: {sum(current.values())} finding(s), "
          f"{sum(new.values())} new, {sum(resolved.values())} resolved "
          f"[{status}]")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())

#include "nn/fourier.hpp"

#include <numbers>

#include "autodiff/ops.hpp"
#include "util/error.hpp"

namespace qpinn::nn {

using autodiff::Variable;

RandomFourierFeatures::RandomFourierFeatures(std::int64_t in,
                                             std::int64_t num_features,
                                             double sigma, Rng& rng)
    : in_(in), num_features_(num_features) {
  QPINN_CHECK(in > 0 && num_features > 0, "RFF dims must be positive");
  QPINN_CHECK(sigma > 0.0, "RFF sigma must be positive");
  projection_ = Variable::constant(
      Tensor::randn(Shape{in, num_features}, rng, 0.0, sigma));
}

Variable RandomFourierFeatures::forward(const Variable& x) {
  QPINN_CHECK_SHAPE(x.value().rank() == 2 && x.value().cols() == in_,
                    "RFF expects (N, " + std::to_string(in_) + ") input");
  using namespace autodiff;
  const Variable projected =
      scale(matmul(x, projection_), 2.0 * std::numbers::pi);
  return concat_cols({sin(projected), cos(projected)});
}

}  // namespace qpinn::nn

// Base interface for all trainable components.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "autodiff/variable.hpp"

namespace qpinn::nn {

/// A trainable component mapping a batch Variable to a batch Variable.
/// Parameters are autodiff leaves shared (by node) between the module and
/// the optimizer, so in-place updates through mutable_value() are seen by
/// subsequent forward passes.
class Module {
 public:
  virtual ~Module() = default;

  /// Builds the forward graph for a batch x of shape (N, in_dim).
  virtual autodiff::Variable forward(const autodiff::Variable& x) = 0;

  /// All trainable leaves, in a stable order.
  virtual std::vector<autodiff::Variable> parameters() const = 0;

  /// Stable (name, leaf) pairs, used for checkpoints and diagnostics.
  virtual std::vector<std::pair<std::string, autodiff::Variable>>
  named_parameters() const = 0;

  virtual std::int64_t input_dim() const = 0;
  virtual std::int64_t output_dim() const = 0;

  /// Total trainable scalar count.
  std::int64_t num_parameters() const {
    std::int64_t n = 0;
    for (const auto& p : parameters()) n += p.numel();
    return n;
  }
};

}  // namespace qpinn::nn

// Fully connected layer.
#pragma once

#include <memory>

#include "nn/activation.hpp"
#include "nn/init.hpp"
#include "nn/module.hpp"

namespace qpinn::nn {

class Linear : public Module {
 public:
  /// Weight (in, out) initialized by `init`; bias (1, out) zeros when
  /// `with_bias`.
  Linear(std::int64_t in, std::int64_t out, Rng& rng,
         Init init = Init::kXavierUniform, bool with_bias = true);

  autodiff::Variable forward(const autodiff::Variable& x) override;
  /// forward followed by `act`, fusing the bias-add with the activation
  /// into one kernel sweep (and one tape node) for tanh and sin — the
  /// PINN-default activations. Other activations and bias-less layers
  /// fall back to the unfused composition; results are identical either
  /// way.
  autodiff::Variable forward_act(const autodiff::Variable& x, Activation act);
  std::vector<autodiff::Variable> parameters() const override;
  std::vector<std::pair<std::string, autodiff::Variable>> named_parameters()
      const override;
  std::int64_t input_dim() const override { return in_; }
  std::int64_t output_dim() const override { return out_; }

  const autodiff::Variable& weight() const { return weight_; }
  const autodiff::Variable& bias() const { return bias_; }
  bool has_bias() const { return bias_.defined(); }

 private:
  std::int64_t in_;
  std::int64_t out_;
  autodiff::Variable weight_;
  autodiff::Variable bias_;  // undefined when bias disabled
};

}  // namespace qpinn::nn

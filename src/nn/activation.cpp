#include "nn/activation.hpp"

#include <numbers>

#include "util/error.hpp"

namespace qpinn::nn {

using autodiff::Variable;

Activation parse_activation(const std::string& name) {
  if (name == "tanh") return Activation::kTanh;
  if (name == "sin") return Activation::kSin;
  if (name == "sigmoid") return Activation::kSigmoid;
  if (name == "softplus") return Activation::kSoftplus;
  if (name == "relu") return Activation::kRelu;
  if (name == "gelu") return Activation::kGelu;
  if (name == "identity" || name == "none") return Activation::kIdentity;
  throw ValueError("unknown activation '" + name + "'");
}

std::string to_string(Activation activation) {
  switch (activation) {
    case Activation::kTanh: return "tanh";
    case Activation::kSin: return "sin";
    case Activation::kSigmoid: return "sigmoid";
    case Activation::kSoftplus: return "softplus";
    case Activation::kRelu: return "relu";
    case Activation::kGelu: return "gelu";
    case Activation::kIdentity: return "identity";
  }
  throw ValueError("invalid Activation enum value");
}

Variable apply_activation(Activation activation, const Variable& x) {
  using namespace autodiff;
  switch (activation) {
    case Activation::kTanh: return tanh(x);
    case Activation::kSin: return sin(x);
    case Activation::kSigmoid: return sigmoid(x);
    case Activation::kSoftplus: return softplus(x);
    case Activation::kRelu: return relu(x);
    case Activation::kGelu: {
      // 0.5 x (1 + tanh(sqrt(2/pi) (x + 0.044715 x^3)))
      const double c =
          std::numbers::sqrt2 * std::numbers::inv_sqrtpi;  // sqrt(2/pi)
      const Variable inner =
          scale(add(x, scale(mul(square(x), x), 0.044715)), c);
      return scale(mul(x, add_scalar(tanh(inner), 1.0)), 0.5);
    }
    case Activation::kIdentity: return x;
  }
  throw ValueError("invalid Activation enum value");
}

}  // namespace qpinn::nn

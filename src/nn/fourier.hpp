// Random Fourier feature embedding (Tancik et al. 2020; Rahimi & Recht 2007).
//
// gamma(v) = [sin(2*pi*B v), cos(2*pi*B v)], B ~ N(0, sigma^2), fixed (not
// trained). Mitigates the spectral bias PINNs exhibit on oscillatory
// solutions — the central convergence enhancement in this reproduction.
#pragma once

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace qpinn::nn {

class RandomFourierFeatures : public Module {
 public:
  /// Projects `in` dims onto `num_features` random directions; output has
  /// 2 * num_features columns (sin block then cos block).
  RandomFourierFeatures(std::int64_t in, std::int64_t num_features,
                        double sigma, Rng& rng);

  autodiff::Variable forward(const autodiff::Variable& x) override;
  std::vector<autodiff::Variable> parameters() const override { return {}; }
  std::vector<std::pair<std::string, autodiff::Variable>> named_parameters()
      const override {
    return {};
  }
  std::int64_t input_dim() const override { return in_; }
  std::int64_t output_dim() const override { return 2 * num_features_; }

  /// The fixed projection matrix (in, num_features).
  const Tensor& projection() const { return projection_.value(); }

 private:
  std::int64_t in_;
  std::int64_t num_features_;
  autodiff::Variable projection_;  // constant
};

}  // namespace qpinn::nn

#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <map>

#include "util/error.hpp"

namespace qpinn::nn {

namespace {
constexpr char kMagic[4] = {'Q', 'P', 'N', 'N'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::ifstream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw IoError("checkpoint truncated");
  return value;
}
}  // namespace

void save_parameters(
    const std::string& path,
    const std::vector<std::pair<std::string, autodiff::Variable>>& params) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw IoError("cannot open '" + path + "' for writing");

  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(params.size()));
  for (const auto& [name, variable] : params) {
    const Tensor& tensor = variable.value();
    write_pod(out, static_cast<std::uint64_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(out, static_cast<std::uint64_t>(tensor.rank()));
    for (std::int64_t d = 0; d < tensor.rank(); ++d) {
      write_pod(out, static_cast<std::uint64_t>(tensor.dim(d)));
    }
    out.write(reinterpret_cast<const char*>(tensor.data()),
              static_cast<std::streamsize>(tensor.numel() *
                                           static_cast<std::int64_t>(
                                               sizeof(double))));
  }
  if (!out) throw IoError("failed while writing checkpoint '" + path + "'");
}

void load_parameters(
    const std::string& path,
    const std::vector<std::pair<std::string, autodiff::Variable>>& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open checkpoint '" + path + "'");

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw IoError("'" + path + "' is not a qpinn checkpoint");
  }
  const auto version = read_pod<std::uint32_t>(in);
  if (version != kVersion) {
    throw IoError("unsupported checkpoint version " + std::to_string(version));
  }
  const auto count = read_pod<std::uint64_t>(in);

  std::map<std::string, autodiff::Variable> by_name;
  for (const auto& [name, variable] : params) by_name.emplace(name, variable);

  std::uint64_t matched = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto name_len = read_pod<std::uint64_t>(in);
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    if (!in) throw IoError("checkpoint truncated");
    const auto rank = read_pod<std::uint64_t>(in);
    Shape shape(rank);
    for (auto& d : shape) {
      d = static_cast<std::int64_t>(read_pod<std::uint64_t>(in));
    }
    const std::int64_t n = numel(shape);
    std::vector<double> data(static_cast<std::size_t>(n));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(n * static_cast<std::int64_t>(
                                                 sizeof(double))));
    if (!in) throw IoError("checkpoint truncated");

    auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw ValueError("checkpoint parameter '" + name +
                       "' has no match in the target module");
    }
    Tensor& target = it->second.mutable_value();
    QPINN_CHECK_SHAPE(target.shape() == shape,
                      "checkpoint parameter '" + name + "' has shape " +
                          shape_to_string(shape) + " but target expects " +
                          shape_to_string(target.shape()));
    std::copy(data.begin(), data.end(), target.data());
    ++matched;
  }
  if (matched != params.size()) {
    throw ValueError("checkpoint holds " + std::to_string(matched) +
                     " of the module's " + std::to_string(params.size()) +
                     " parameters");
  }
}

}  // namespace qpinn::nn

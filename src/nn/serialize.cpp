#include "nn/serialize.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>

#include "util/atomic_io.hpp"
#include "util/binary_io.hpp"
#include "util/error.hpp"

namespace qpinn::nn {

namespace {
constexpr char kMagic[4] = {'Q', 'P', 'N', 'N'};

/// Size of the stream in bytes (restores the read position).
std::uint64_t stream_size(std::istream& in) {
  const auto pos = in.tellg();
  in.seekg(0, std::ios::end);
  const auto end = in.tellg();
  in.seekg(pos);
  return end < 0 ? 0 : static_cast<std::uint64_t>(end);
}
}  // namespace

void write_header(std::ostream& out, std::uint32_t version) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, version);
}

std::uint32_t read_header(std::istream& in, const std::string& path) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::string(magic, 4) != std::string(kMagic, 4)) {
    throw IoError("'" + path + "' is not a qpinn checkpoint");
  }
  const auto version = read_pod<std::uint32_t>(in, "checkpoint version");
  if (version != kCheckpointVersionV1 && version != kCheckpointVersion) {
    throw IoError("unsupported checkpoint version " + std::to_string(version));
  }
  return version;
}

void write_tensor(std::ostream& out, const Tensor& tensor) {
  write_pod(out, static_cast<std::uint64_t>(tensor.rank()));
  for (std::int64_t d = 0; d < tensor.rank(); ++d) {
    write_pod(out, static_cast<std::uint64_t>(tensor.dim(d)));
  }
  out.write(reinterpret_cast<const char*>(tensor.data()),
            static_cast<std::streamsize>(
                tensor.numel() * static_cast<std::int64_t>(sizeof(double))));
}

Tensor read_tensor(std::istream& in, std::uint64_t max_bytes,
                   const std::string& field) {
  const auto rank = read_pod<std::uint64_t>(in, field + " rank");
  if (rank > kMaxTensorRank) {
    throw IoError(field + " rank " + std::to_string(rank) +
                  " exceeds limit " + std::to_string(kMaxTensorRank));
  }
  const std::uint64_t max_elems = max_bytes / sizeof(double);
  Shape shape(rank);
  std::uint64_t count = 1;
  for (auto& d : shape) {
    const auto extent = read_pod<std::uint64_t>(in, field + " extent");
    if (extent == 0 || extent > max_elems || count > max_elems / extent) {
      throw IoError(field + " extent " + std::to_string(extent) +
                    " implies a payload larger than the file");
    }
    count *= extent;
    d = static_cast<std::int64_t>(extent);
  }
  Tensor tensor = Tensor::zeros(std::move(shape));
  in.read(reinterpret_cast<char*>(tensor.data()),
          static_cast<std::streamsize>(count * sizeof(double)));
  if (!in) throw IoError("truncated while reading " + field + " data");
  return tensor;
}

void write_param_block(std::ostream& out, const NamedParams& params) {
  write_pod(out, static_cast<std::uint64_t>(params.size()));
  for (const auto& [name, variable] : params) {
    write_string(out, name);
    write_tensor(out, variable.value());
  }
}

void read_param_block(std::istream& in, const NamedParams& params,
                      std::uint64_t max_bytes) {
  const auto count = read_pod<std::uint64_t>(in, "parameter count");
  if (count > kMaxParamCount) {
    throw IoError("parameter count " + std::to_string(count) +
                  " exceeds limit " + std::to_string(kMaxParamCount));
  }

  std::map<std::string, autodiff::Variable> by_name;
  for (const auto& [name, variable] : params) by_name.emplace(name, variable);

  std::uint64_t matched = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name =
        read_string(in, kMaxParamNameLen, "parameter name");
    const Tensor loaded =
        read_tensor(in, max_bytes, "parameter '" + name + "'");

    auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw ValueError("checkpoint parameter '" + name +
                       "' has no match in the target module");
    }
    Tensor& target = it->second.mutable_value();
    QPINN_CHECK_SHAPE(target.shape() == loaded.shape(),
                      "checkpoint parameter '" + name + "' has shape " +
                          shape_to_string(loaded.shape()) +
                          " but target expects " +
                          shape_to_string(target.shape()));
    std::copy(loaded.data(), loaded.data() + loaded.numel(), target.data());
    ++matched;
  }
  if (matched != params.size()) {
    throw ValueError("checkpoint holds " + std::to_string(matched) +
                     " of the module's " + std::to_string(params.size()) +
                     " parameters");
  }
}

void skip_param_block(std::istream& in, std::uint64_t max_bytes) {
  const auto count = read_pod<std::uint64_t>(in, "parameter count");
  if (count > kMaxParamCount) {
    throw IoError("parameter count " + std::to_string(count) +
                  " exceeds limit " + std::to_string(kMaxParamCount));
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::string name =
        read_string(in, kMaxParamNameLen, "parameter name");
    (void)read_tensor(in, max_bytes, "parameter '" + name + "'");
  }
}

void save_parameters(const std::string& path, const NamedParams& params) {
  write_file_atomic(path, [&](std::ostream& out) {
    write_header(out);
    write_param_block(out, params);
    write_pod(out, std::uint32_t{0});  // empty section table
    if (!out) throw IoError("failed while writing checkpoint '" + path + "'");
  });
}

void load_parameters(const std::string& path, const NamedParams& params) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("cannot open checkpoint '" + path + "'");
  const std::uint64_t size = stream_size(in);
  read_header(in, path);
  // v2 sections (if any) carry training state, not parameters — ignored.
  read_param_block(in, params, size);
}

void load_parameters_from_bytes(const std::string& bytes,
                                const NamedParams& params,
                                const std::string& label) {
  std::istringstream in(bytes, std::ios::binary);
  read_header(in, label);
  read_param_block(in, params, bytes.size());
}

}  // namespace qpinn::nn

#include "nn/mlp.hpp"

#include "util/error.hpp"

namespace qpinn::nn {

using autodiff::Variable;

void MlpConfig::validate() const {
  if (in_dim <= 0 || out_dim <= 0) {
    throw ConfigError("MlpConfig: in_dim and out_dim must be positive");
  }
  if (hidden.empty()) {
    throw ConfigError("MlpConfig: at least one hidden layer is required");
  }
  for (std::int64_t h : hidden) {
    if (h <= 0) throw ConfigError("MlpConfig: hidden widths must be positive");
  }
  if (!periods.empty() &&
      static_cast<std::int64_t>(periods.size()) != in_dim) {
    throw ConfigError("MlpConfig: periods must have in_dim entries or be empty");
  }
  if (fourier) {
    if (fourier->num_features <= 0) {
      throw ConfigError("MlpConfig: fourier.num_features must be positive");
    }
    if (fourier->sigma <= 0.0) {
      throw ConfigError("MlpConfig: fourier.sigma must be positive");
    }
  }
}

Mlp::Mlp(const MlpConfig& config) : config_(config) {
  config_.validate();
  Rng rng(config_.seed);

  std::int64_t width = config_.in_dim;
  if (!config_.periods.empty()) {
    periodic_ = std::make_unique<PeriodicEmbedding>(config_.periods);
    width = periodic_->output_dim();
  }
  if (config_.fourier) {
    fourier_ = std::make_unique<RandomFourierFeatures>(
        width, config_.fourier->num_features, config_.fourier->sigma, rng);
    width = fourier_->output_dim();
  }
  for (std::int64_t h : config_.hidden) {
    layers_.push_back(std::make_unique<Linear>(width, h, rng, config_.init));
    width = h;
  }
  layers_.push_back(
      std::make_unique<Linear>(width, config_.out_dim, rng, config_.init));
}

Variable Mlp::forward(const Variable& x) {
  Variable h = x;
  if (periodic_) h = periodic_->forward(h);
  if (fourier_) h = fourier_->forward(h);
  for (std::size_t i = 0; i + 1 < layers_.size(); ++i) {
    h = layers_[i]->forward_act(h, config_.activation);
  }
  return layers_.back()->forward(h);  // linear output head
}

std::vector<Variable> Mlp::parameters() const {
  std::vector<Variable> params;
  for (const auto& layer : layers_) {
    for (const auto& p : layer->parameters()) params.push_back(p);
  }
  return params;
}

std::vector<std::pair<std::string, Variable>> Mlp::named_parameters() const {
  std::vector<std::pair<std::string, Variable>> params;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (const auto& [name, p] : layers_[i]->named_parameters()) {
      params.emplace_back("layer" + std::to_string(i) + "." + name, p);
    }
  }
  return params;
}

}  // namespace qpinn::nn

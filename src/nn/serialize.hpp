// Binary checkpointing of module parameters.
//
// Format: magic "QPNN", u32 version, u64 count, then per parameter:
// u64 name length, name bytes, u64 rank, u64 extents..., f64 data...
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "autodiff/variable.hpp"

namespace qpinn::nn {

/// Writes named parameters to `path`; throws IoError on failure.
void save_parameters(
    const std::string& path,
    const std::vector<std::pair<std::string, autodiff::Variable>>& params);

/// Loads a checkpoint into existing parameters (matched by name; shapes
/// must agree). Throws IoError / ShapeError / ValueError on mismatch.
void load_parameters(
    const std::string& path,
    const std::vector<std::pair<std::string, autodiff::Variable>>& params);

}  // namespace qpinn::nn

// Binary checkpointing of module parameters.
//
// Format v2: magic "QPNN", u32 version, then a parameter block
// (u64 count; per parameter: u64 name length, name bytes, u64 rank,
// u64 extents..., f64 data...) followed by a section table
// (u32 section count; per section: u64 tag length, tag bytes, u64 payload
// bytes, payload). save_parameters writes v2 with an empty section table;
// core::Checkpointer reuses the same param block and stores full training
// state (optimizer moments, RNG, epoch, collocation) in tagged sections.
// Version 1 files — parameter block only, no section table — remain
// readable. Unknown sections are skipped, so the format is forward-open.
//
// Writes are crash-consistent (tmp file + flush + fsync + rename) and
// loading is hardened against corrupt or adversarial files: every length,
// rank, and extent is bounded (by fixed limits and by the file size) before
// any allocation, so a flipped byte produces an IoError naming the bad
// field instead of a multi-gigabyte allocation.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "autodiff/variable.hpp"

namespace qpinn::nn {

using NamedParams = std::vector<std::pair<std::string, autodiff::Variable>>;

/// Current file-format version (parameter block + section table).
constexpr std::uint32_t kCheckpointVersion = 2;
/// Legacy parameter-only version still accepted by load_parameters.
constexpr std::uint32_t kCheckpointVersionV1 = 1;

// Hardening bounds applied while reading untrusted files.
constexpr std::uint64_t kMaxParamCount = 1ULL << 20;
constexpr std::uint64_t kMaxParamNameLen = 4096;
constexpr std::uint64_t kMaxTensorRank = 8;
constexpr std::uint32_t kMaxSectionCount = 256;
constexpr std::uint64_t kMaxSectionTagLen = 256;

/// Writes named parameters to `path` atomically; throws IoError on failure.
void save_parameters(const std::string& path, const NamedParams& params);

/// Loads a v1 or v2 checkpoint into existing parameters (matched by name;
/// shapes must agree). Throws IoError / ShapeError / ValueError on
/// corruption or mismatch. Sections of v2 files are ignored.
void load_parameters(const std::string& path, const NamedParams& params);

/// Byte-level counterpart of load_parameters, parsing `bytes` as a whole
/// checkpoint file. `label` names the source in error messages. Untrusted
/// input is safe: every length field is bounded before allocation. This is
/// the entry point fuzz/fuzz_model_deserialize.cpp drives.
void load_parameters_from_bytes(const std::string& bytes,
                                const NamedParams& params,
                                const std::string& label);

// ---- stream-level building blocks (shared with core::Checkpointer) ------

/// Writes the "QPNN" magic and a version word.
void write_header(std::ostream& out,
                  std::uint32_t version = kCheckpointVersion);
/// Reads and validates the magic; returns the version (1 or 2). `path`
/// labels errors.
std::uint32_t read_header(std::istream& in, const std::string& path);

/// Writes one tensor as u64 rank, u64 extents..., f64 data...
void write_tensor(std::ostream& out, const Tensor& tensor);
/// Bounded tensor read: rejects rank/extents whose payload would exceed
/// `max_bytes` (pass the file size) before allocating.
Tensor read_tensor(std::istream& in, std::uint64_t max_bytes,
                   const std::string& field);

void write_param_block(std::ostream& out, const NamedParams& params);
/// Reads a param block into existing parameters; `max_bytes` as in
/// read_tensor.
void read_param_block(std::istream& in, const NamedParams& params,
                      std::uint64_t max_bytes);
/// Consumes a param block without touching any module: names and tensors
/// are parsed (with the same hardening bounds) and discarded. Lets callers
/// peek at the sections that follow without owning a matching parameter
/// set (core::Checkpointer::peek_state).
void skip_param_block(std::istream& in, std::uint64_t max_bytes);

}  // namespace qpinn::nn

#include "nn/init.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qpinn::nn {

Init parse_init(const std::string& name) {
  if (name == "xavier_uniform") return Init::kXavierUniform;
  if (name == "xavier_normal") return Init::kXavierNormal;
  if (name == "he_normal") return Init::kHeNormal;
  if (name == "lecun_normal") return Init::kLeCunNormal;
  throw ValueError("unknown init scheme '" + name + "'");
}

std::string to_string(Init init) {
  switch (init) {
    case Init::kXavierUniform: return "xavier_uniform";
    case Init::kXavierNormal: return "xavier_normal";
    case Init::kHeNormal: return "he_normal";
    case Init::kLeCunNormal: return "lecun_normal";
  }
  throw ValueError("invalid Init enum value");
}

Tensor make_weight(std::int64_t fan_in, std::int64_t fan_out, Init init,
                   Rng& rng) {
  QPINN_CHECK(fan_in > 0 && fan_out > 0, "weight fans must be positive");
  const Shape shape{fan_in, fan_out};
  const double fi = static_cast<double>(fan_in);
  const double fo = static_cast<double>(fan_out);
  switch (init) {
    case Init::kXavierUniform: {
      const double bound = std::sqrt(6.0 / (fi + fo));
      return Tensor::rand(shape, rng, -bound, bound);
    }
    case Init::kXavierNormal:
      return Tensor::randn(shape, rng, 0.0, std::sqrt(2.0 / (fi + fo)));
    case Init::kHeNormal:
      return Tensor::randn(shape, rng, 0.0, std::sqrt(2.0 / fi));
    case Init::kLeCunNormal:
      return Tensor::randn(shape, rng, 0.0, std::sqrt(1.0 / fi));
  }
  throw ValueError("invalid Init enum value");
}

}  // namespace qpinn::nn

// Exact periodic-boundary embedding (Dong & Ni 2021).
//
// Input columns with a declared period L are replaced by the pair
// (sin(2*pi*x/L), cos(2*pi*x/L)); non-periodic columns pass through. Any
// network applied on top is then exactly L-periodic in those coordinates,
// removing the need for a soft boundary loss.
#pragma once

#include <vector>

#include "nn/module.hpp"

namespace qpinn::nn {

class PeriodicEmbedding : public Module {
 public:
  /// `periods[d] > 0` declares column d periodic with that period;
  /// `periods[d] == 0` passes the column through unchanged.
  explicit PeriodicEmbedding(std::vector<double> periods);

  autodiff::Variable forward(const autodiff::Variable& x) override;
  std::vector<autodiff::Variable> parameters() const override { return {}; }
  std::vector<std::pair<std::string, autodiff::Variable>> named_parameters()
      const override {
    return {};
  }
  std::int64_t input_dim() const override {
    return static_cast<std::int64_t>(periods_.size());
  }
  std::int64_t output_dim() const override { return out_dim_; }

  const std::vector<double>& periods() const { return periods_; }

 private:
  std::vector<double> periods_;
  std::int64_t out_dim_;
};

}  // namespace qpinn::nn

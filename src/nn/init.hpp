// Weight initialization schemes.
#pragma once

#include <string>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace qpinn::nn {

enum class Init {
  kXavierUniform,  ///< U(-sqrt(6/(fan_in+fan_out)), +...)  — tanh default
  kXavierNormal,   ///< N(0, 2/(fan_in+fan_out))
  kHeNormal,       ///< N(0, 2/fan_in) — relu-family
  kLeCunNormal,    ///< N(0, 1/fan_in) — selu/sin-family
};

/// Parses "xavier_uniform" / "xavier_normal" / "he_normal" / "lecun_normal".
Init parse_init(const std::string& name);
std::string to_string(Init init);

/// A (fan_in, fan_out) weight matrix drawn from the scheme.
Tensor make_weight(std::int64_t fan_in, std::int64_t fan_out, Init init,
                   Rng& rng);

}  // namespace qpinn::nn

// Activation functions assembled from differentiable ops.
#pragma once

#include <string>

#include "autodiff/ops.hpp"

namespace qpinn::nn {

enum class Activation {
  kTanh,      ///< classical PINN default
  kSin,       ///< SIREN-style; pairs well with wave solutions
  kSigmoid,
  kSoftplus,
  kRelu,      ///< second derivative is zero a.e.: unsuitable for 2nd-order
              ///< PDE residuals, provided for baselines
  kGelu,      ///< tanh approximation
  kIdentity,
};

Activation parse_activation(const std::string& name);
std::string to_string(Activation activation);

/// Applies the activation elementwise (fully differentiable to any order,
/// except relu whose higher derivatives vanish a.e.).
autodiff::Variable apply_activation(Activation activation,
                                    const autodiff::Variable& x);

}  // namespace qpinn::nn

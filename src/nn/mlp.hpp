// The PINN backbone: optional periodic embedding -> optional random
// Fourier features -> fully connected stack.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "nn/activation.hpp"
#include "nn/fourier.hpp"
#include "nn/linear.hpp"
#include "nn/module.hpp"
#include "nn/periodic.hpp"

namespace qpinn::nn {

struct FourierConfig {
  std::int64_t num_features = 64;
  double sigma = 1.0;
};

struct MlpConfig {
  std::int64_t in_dim = 2;
  std::int64_t out_dim = 2;
  std::vector<std::int64_t> hidden = {64, 64, 64, 64};
  Activation activation = Activation::kTanh;
  Init init = Init::kXavierUniform;
  /// Optional RFF embedding applied after the periodic embedding.
  std::optional<FourierConfig> fourier;
  /// Per-input-dim periods (empty = no periodic embedding; otherwise must
  /// have in_dim entries, 0 meaning pass-through).
  std::vector<double> periods;
  std::uint64_t seed = 0;

  /// Throws ConfigError when inconsistent.
  void validate() const;
};

class Mlp : public Module {
 public:
  explicit Mlp(const MlpConfig& config);

  autodiff::Variable forward(const autodiff::Variable& x) override;
  std::vector<autodiff::Variable> parameters() const override;
  std::vector<std::pair<std::string, autodiff::Variable>> named_parameters()
      const override;
  std::int64_t input_dim() const override { return config_.in_dim; }
  std::int64_t output_dim() const override { return config_.out_dim; }

  const MlpConfig& config() const { return config_; }
  std::size_t num_layers() const { return layers_.size(); }

 private:
  MlpConfig config_;
  std::unique_ptr<PeriodicEmbedding> periodic_;     // may be null
  std::unique_ptr<RandomFourierFeatures> fourier_;  // may be null
  std::vector<std::unique_ptr<Linear>> layers_;
};

}  // namespace qpinn::nn

#include "nn/linear.hpp"

#include "autodiff/ops.hpp"
#include "util/error.hpp"

namespace qpinn::nn {

using autodiff::Variable;

Linear::Linear(std::int64_t in, std::int64_t out, Rng& rng, Init init,
               bool with_bias)
    : in_(in), out_(out) {
  QPINN_CHECK(in > 0 && out > 0, "Linear dims must be positive");
  weight_ = Variable::leaf(make_weight(in, out, init, rng));
  if (with_bias) {
    bias_ = Variable::leaf(Tensor::zeros(Shape{1, out}));
  }
}

Variable Linear::forward(const Variable& x) {
  QPINN_CHECK_SHAPE(x.value().rank() == 2 && x.value().cols() == in_,
                    "Linear expects (N, " + std::to_string(in_) +
                        ") input, got " + shape_to_string(x.shape()));
  Variable y = autodiff::matmul(x, weight_);
  if (bias_.defined()) y = autodiff::add(y, bias_);
  return y;
}

Variable Linear::forward_act(const Variable& x, Activation act) {
  QPINN_CHECK_SHAPE(x.value().rank() == 2 && x.value().cols() == in_,
                    "Linear expects (N, " + std::to_string(in_) +
                        ") input, got " + shape_to_string(x.shape()));
  const Variable y = autodiff::matmul(x, weight_);
  if (bias_.defined()) {
    if (act == Activation::kTanh) return autodiff::bias_tanh(y, bias_);
    if (act == Activation::kSin) return autodiff::bias_sin(y, bias_);
    return apply_activation(act, autodiff::add(y, bias_));
  }
  return apply_activation(act, y);
}

std::vector<Variable> Linear::parameters() const {
  std::vector<Variable> params{weight_};
  if (bias_.defined()) params.push_back(bias_);
  return params;
}

std::vector<std::pair<std::string, Variable>> Linear::named_parameters()
    const {
  std::vector<std::pair<std::string, Variable>> params{{"weight", weight_}};
  if (bias_.defined()) params.emplace_back("bias", bias_);
  return params;
}

}  // namespace qpinn::nn

#include "nn/periodic.hpp"

#include <numbers>

#include "autodiff/ops.hpp"
#include "util/error.hpp"

namespace qpinn::nn {

using autodiff::Variable;

PeriodicEmbedding::PeriodicEmbedding(std::vector<double> periods)
    : periods_(std::move(periods)) {
  QPINN_CHECK(!periods_.empty(), "PeriodicEmbedding needs at least one dim");
  out_dim_ = 0;
  for (double period : periods_) {
    QPINN_CHECK(period >= 0.0, "periods must be >= 0 (0 = pass-through)");
    out_dim_ += (period > 0.0) ? 2 : 1;
  }
}

Variable PeriodicEmbedding::forward(const Variable& x) {
  QPINN_CHECK_SHAPE(
      x.value().rank() == 2 &&
          x.value().cols() == static_cast<std::int64_t>(periods_.size()),
      "PeriodicEmbedding expects (N, " + std::to_string(periods_.size()) +
          ") input, got " + shape_to_string(x.shape()));
  using namespace autodiff;
  std::vector<Variable> parts;
  parts.reserve(periods_.size() + 2);
  for (std::size_t d = 0; d < periods_.size(); ++d) {
    const Variable col =
        slice_cols(x, static_cast<std::int64_t>(d),
                   static_cast<std::int64_t>(d) + 1);
    if (periods_[d] > 0.0) {
      const Variable angle = scale(col, 2.0 * std::numbers::pi / periods_[d]);
      parts.push_back(sin(angle));
      parts.push_back(cos(angle));
    } else {
      parts.push_back(col);
    }
  }
  return concat_cols(parts);
}

}  // namespace qpinn::nn

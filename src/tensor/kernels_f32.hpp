// fp32 executor layer for mixed-precision plan replay.
//
// These are raw-buffer kernels (float* / const float*, explicit shapes),
// not Tensor operations: the fp32 shadow buffers that mixed-precision
// replay writes (see src/autodiff/precision.cpp) are plain pooled
// std::vector<float> storage with no Tensor wrapper. Shapes were already
// validated when the fp64 plan was captured, so this layer does no
// checking — it only dispatches through simd::active_f32() with the same
// chunking/grain policy as the fp64 paths in kernels.cpp.
//
// This header and its .cpp are, together with the SIMD layer, the only
// code allowed to convert between double and float (enforced by
// tools/qpinn_lint.py banned-naked-float-cast): downcast/upcast are the
// sole precision boundary, and every scalar immediate crossing into a
// kernel is cast exactly once at entry.
//
// Reductions accumulate in and return double (the fp32 tables promote
// per element), preserving the fp64 loss-accumulation contract of mixed
// mode.
#pragma once

#include <cstddef>
#include <cstdint>

#include "tensor/simd.hpp"

namespace qpinn::kernels_f32 {

// ---- precision boundary --------------------------------------------------

/// dst[i] = (float)src[i]. Runs on every replay of a demoted plan for
/// fp64-resident inputs (parameters included), which is what makes Adam's
/// fp64 master-weight updates visible to the fp32 sweeps.
void downcast(float* dst, const double* src, std::size_t n);
/// dst[i] = (double)src[i] — exact (every float is a double).
void upcast(double* dst, const float* src, std::size_t n);

// ---- elementwise ---------------------------------------------------------

/// o[i] = a[i] op b[i], contiguous same length.
void bin_same(simd::BinOp op, const float* a, const float* b, float* o,
              std::size_t n);
/// o[r][c] = a[r][c] op b[c] (rank-2 row broadcast, the bias pattern).
void bin_row(simd::BinOp op, const float* a, const float* b, float* o,
             std::size_t rows, std::size_t cols);
/// o[i] = a[i] op s (scalar right operand, read from the fp64 plan buffer
/// at replay time).
void bin_scalar_rhs(simd::BinOp op, const float* a, double s, float* o,
                    std::size_t n);
/// o[i] = s op b[i] (scalar left operand).
void bin_scalar_lhs(simd::BinOp op, double s, const float* b, float* o,
                    std::size_t n);

void neg(const float* a, float* o, std::size_t n);
void square(const float* a, float* o, std::size_t n);
void sqrt(const float* a, float* o, std::size_t n);
void reciprocal(const float* a, float* o, std::size_t n);
void relu(const float* a, float* o, std::size_t n);
void abs(const float* a, float* o, std::size_t n);
void step(const float* a, float* o, std::size_t n);
void sign(const float* a, float* o, std::size_t n);
void tanh(const float* a, float* o, std::size_t n);
void exp(const float* a, float* o, std::size_t n);
void log(const float* a, float* o, std::size_t n);
void sin(const float* a, float* o, std::size_t n);
void cos(const float* a, float* o, std::size_t n);
void sigmoid(const float* a, float* o, std::size_t n);
void softplus(const float* a, float* o, std::size_t n);

void scale(const float* a, double s, float* o, std::size_t n);
void add_scalar(const float* a, double s, float* o, std::size_t n);
void pow_scalar(const float* a, double p, float* o, std::size_t n);

/// o[r][c] = tanh(a[r][c] + b[c]) — fused hidden-layer forward.
void bias_tanh(const float* a, const float* b, float* o, std::size_t rows,
               std::size_t cols);
/// o[r][c] = sin(a[r][c] + b[c]).
void bias_sin(const float* a, const float* b, float* o, std::size_t rows,
              std::size_t cols);
/// o[i] = g[i] * (1 - t[i]^2) — fused tanh backward.
void tanh_grad(const float* g, const float* t, float* o, std::size_t n);

// ---- data movement -------------------------------------------------------

void copy(float* dst, const float* src, std::size_t n);
void fill_zero(float* o, std::size_t n);
/// o[i] = (float)v for all i — scalar broadcast_to, value read from the
/// fp64 plan buffer at replay time.
void fill_value(float* o, double v, std::size_t n);
/// dst[i] += s * src[i] (gradient accumulation in kAxpyAcc/kCopyAxpy).
void axpy(float* dst, double s, const float* src, std::size_t n);
/// out[m][n] = a[n][m]^T.
void transpose(const float* a, float* o, std::int64_t n, std::int64_t m);
/// o[c] = sum_r a[r][c] — the rank-2 row-collapse of sum_to.
void sum_to_rows(const float* a, float* o, std::size_t rows,
                 std::size_t cols);

// ---- matmul --------------------------------------------------------------

/// out[n,m] = a[n,k] * b[k,m].
void matmul(const float* a, const float* b, float* o, std::int64_t n,
            std::int64_t k, std::int64_t m);

// ---- reductions (double accumulation) ------------------------------------

double sum(const float* a, std::size_t n);
double square_sum(const float* a, std::size_t n);
/// sum_i w[i] * a[i]^2, same-shape contiguous operands.
double weighted_square_sum(const float* w, const float* a, std::size_t n);
/// sum_r w[r] * sum_c a[r][c]^2 — per-row weights (the PINN loss shape).
double weighted_square_sum_rows(const float* w, const float* a,
                                std::size_t rows, std::size_t cols);

}  // namespace qpinn::kernels_f32

// Scalar instantiation of the SIMD kernel templates (VecScalar has
// width 1, so every loop body is exactly the fringe expression). This is
// the portable fallback and the reference the equivalence tests compare
// the vector variants against. Compiled with -ffp-contract=off like the
// other variant TUs so no target sneaks an FMA into the arithmetic
// kernels.
#include "tensor/simd.hpp"

namespace qpinn::simd::detail {

const KernelTable* scalar_table() {
  static const KernelTable table =
      make_table<VecScalar>(Isa::kScalar, "scalar");
  return &table;
}

const KernelTableF* scalar_table_f32() {
  static const KernelTableF table =
      make_table<VecScalarF>(Isa::kScalar, "scalar");
  return &table;
}

}  // namespace qpinn::simd::detail

// Compute kernels on raw tensors.
//
// These are the only routines that touch tensor memory directly; the
// autodiff layer composes them. Large elementwise loops, reductions, and
// the matmul family are parallelized over the global thread pool, and the
// arithmetic hot loops dispatch through the runtime-selected SIMD kernel
// table (tensor/simd.hpp; QPINN_SIMD overrides the choice).
//
// Storage contract: every value-returning kernel returns FRESH storage the
// caller may mutate freely — no path aliases an operand's buffer, including
// the shapes-equal paths of sum_to/broadcast_to. IEEE semantics are
// preserved end to end: no kernel skips operand values (0 * NaN stays NaN),
// so a poisoned activation propagates to the loss instead of vanishing.
#pragma once

#include <vector>

#include "tensor/tensor.hpp"

namespace qpinn::kernels {

// ---- elementwise binary (NumPy broadcasting) ----------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);

// ---- elementwise unary ---------------------------------------------------
Tensor neg(const Tensor& a);
Tensor scale(const Tensor& a, double s);
Tensor add_scalar(const Tensor& a, double s);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor tanh(const Tensor& a);
Tensor sin(const Tensor& a);
Tensor cos(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor reciprocal(const Tensor& a);
Tensor square(const Tensor& a);
Tensor sigmoid(const Tensor& a);
Tensor softplus(const Tensor& a);
/// x^p for real p (x must be positive unless p is a non-negative integer).
Tensor pow_scalar(const Tensor& a, double p);
/// Heaviside step: 1 where a > 0, else 0 (used for relu's zero-a.e.
/// derivative; treated as locally constant by autodiff).
Tensor step(const Tensor& a);
Tensor relu(const Tensor& a);
Tensor abs(const Tensor& a);
/// -1 / 0 / +1 elementwise.
Tensor sign(const Tensor& a);

// ---- linear algebra ------------------------------------------------------
// The matmul trio shares a register-tiled micro-kernel (4x8 accumulator
// blocks, remainder fringes handled scalar) and a serial-dispatch floor:
// below ~4 output rows per chunk the work runs inline on the caller.
/// (N,K) x (K,M) -> (N,M); rank-2 only.
Tensor matmul(const Tensor& a, const Tensor& b);
/// a^T b without materializing the transpose: (K,N)^T (K,M) -> (N,M).
Tensor matmul_tn(const Tensor& a, const Tensor& b);
/// a b^T: (N,K) (M,K)^T -> (N,M).
Tensor matmul_nt(const Tensor& a, const Tensor& b);
Tensor transpose(const Tensor& a);

// ---- reductions / broadcast management -----------------------------------
/// Sum of all elements as a scalar tensor.
Tensor sum_all(const Tensor& a);
/// Mean of all elements as a scalar tensor.
Tensor mean_all(const Tensor& a);
/// Reverse of broadcasting: sums `a` down to `target` (which must be
/// broadcastable to a.shape()).
Tensor sum_to(const Tensor& a, const Shape& target);
/// Materialized broadcast of `a` to `target`.
Tensor broadcast_to(const Tensor& a, const Shape& target);

// ---- structural ----------------------------------------------------------
/// Horizontal concatenation of rank-2 tensors with equal row counts.
Tensor concat_cols(const std::vector<Tensor>& parts);
/// Columns [c0, c1) of a rank-2 tensor.
Tensor slice_cols(const Tensor& a, std::int64_t c0, std::int64_t c1);
/// Rows [r0, r1) of a rank-2 tensor.
Tensor slice_rows(const Tensor& a, std::int64_t r0, std::int64_t r1);
/// Vertical concatenation of rank-2 tensors with equal column counts.
Tensor concat_rows(const std::vector<Tensor>& parts);

// ---- fused kernels (single-sweep versions of multi-pass sequences) --------
// All of these dispatch through the SIMD layer (tensor/simd.hpp) like the
// plain elementwise kernels and obey the same storage/IEEE contract.
/// tanh(a + bias) in one pass; a rank-2, bias a row vector ({M} or {1,M}).
Tensor bias_tanh(const Tensor& a, const Tensor& bias);
/// sin(a + bias); same contract as bias_tanh.
Tensor bias_sin(const Tensor& a, const Tensor& bias);
/// g * (1 - t^2) in one pass (the tanh backward chain), same shapes
/// required. Performs the identical per-lane IEEE sequence as the
/// mul(g, add_scalar(neg(square(t)), 1.0)) composition — square, negate,
/// add 1.0, multiply, no FMA contraction — so it is bit-identical to the
/// unfused chain (asserted in tests/simd_test.cpp).
Tensor tanh_grad(const Tensor& g, const Tensor& t);
/// sum_i a_i^2 as a scalar tensor, without materializing square(a).
Tensor square_sum_all(const Tensor& a);
/// sum_i w_i * a_i^2 as a scalar tensor; w is same-shape as `a` or a
/// per-row column vector ({N} or {N,1}) against rank-2 `a`.
Tensor weighted_square_sum_all(const Tensor& w, const Tensor& a);

// ---- preallocated-output variants (graph capture & replay) ----------------
// Each X_into(out, ...) computes exactly what X(...) returns, written into a
// caller-provided tensor whose shape must already match the result (checked).
// The autodiff execution plan (autodiff/plan.hpp) records these against the
// buffers pinned at capture so steady-state replay performs zero
// allocations; results are bit-identical to the value-returning versions.
void add_into(Tensor& out, const Tensor& a, const Tensor& b);
void sub_into(Tensor& out, const Tensor& a, const Tensor& b);
void mul_into(Tensor& out, const Tensor& a, const Tensor& b);
void div_into(Tensor& out, const Tensor& a, const Tensor& b);
void neg_into(Tensor& out, const Tensor& a);
void scale_into(Tensor& out, const Tensor& a, double s);
void add_scalar_into(Tensor& out, const Tensor& a, double s);
void exp_into(Tensor& out, const Tensor& a);
void log_into(Tensor& out, const Tensor& a);
void tanh_into(Tensor& out, const Tensor& a);
void sin_into(Tensor& out, const Tensor& a);
void cos_into(Tensor& out, const Tensor& a);
void sqrt_into(Tensor& out, const Tensor& a);
void reciprocal_into(Tensor& out, const Tensor& a);
void square_into(Tensor& out, const Tensor& a);
void sigmoid_into(Tensor& out, const Tensor& a);
void softplus_into(Tensor& out, const Tensor& a);
void pow_scalar_into(Tensor& out, const Tensor& a, double p);
void step_into(Tensor& out, const Tensor& a);
void relu_into(Tensor& out, const Tensor& a);
void abs_into(Tensor& out, const Tensor& a);
void sign_into(Tensor& out, const Tensor& a);
void matmul_into(Tensor& out, const Tensor& a, const Tensor& b);
void matmul_tn_into(Tensor& out, const Tensor& a, const Tensor& b);
void matmul_nt_into(Tensor& out, const Tensor& a, const Tensor& b);
void transpose_into(Tensor& out, const Tensor& a);
void sum_all_into(Tensor& out, const Tensor& a);
void mean_all_into(Tensor& out, const Tensor& a);
void sum_to_into(Tensor& out, const Tensor& a);
void broadcast_to_into(Tensor& out, const Tensor& a);
void concat_cols_into(Tensor& out, const std::vector<Tensor>& parts);
void concat_rows_into(Tensor& out, const std::vector<Tensor>& parts);
void slice_cols_into(Tensor& out, const Tensor& a, std::int64_t c0,
                     std::int64_t c1);
void slice_rows_into(Tensor& out, const Tensor& a, std::int64_t r0,
                     std::int64_t r1);
void bias_tanh_into(Tensor& out, const Tensor& a, const Tensor& bias);
void bias_sin_into(Tensor& out, const Tensor& a, const Tensor& bias);
void tanh_grad_into(Tensor& out, const Tensor& g, const Tensor& t);
void square_sum_all_into(Tensor& out, const Tensor& a);
void weighted_square_sum_all_into(Tensor& out, const Tensor& w,
                                  const Tensor& a);
/// Zero-fills `out` (plan thunk for constant-zero gradient buffers).
void fill_zero(Tensor& out);

// ---- in-place helpers (used by optimizers; bypass autodiff) ---------------
/// dst += s * src (same shape required).
void axpy_inplace(Tensor& dst, double s, const Tensor& src);
/// dst *= s.
void scale_inplace(Tensor& dst, double s);
/// dst = a*dst + b*src in one sweep (same shape required); bit-identical
/// to scale_inplace(dst, a) followed by axpy_inplace(dst, b, src).
void axpby_inplace(Tensor& dst, double a, double b, const Tensor& src);
/// Copies src into dst (same shape required).
void copy_into(Tensor& dst, const Tensor& src);

/// Per-step constants of the fused Adam update; bias corrections are
/// precomputed by the caller (bias_corr1 = 1 - beta1^t, etc.).
struct AdamStepConfig {
  double lr = 0.0;
  double beta1 = 0.0;
  double beta2 = 0.0;
  double eps = 0.0;
  double weight_decay = 0.0;
  double bias_corr1 = 1.0;
  double bias_corr2 = 1.0;
  bool decoupled = false;  ///< AdamW-style decoupled weight decay
};
/// One fused sweep of the Adam update: weight decay, both moment updates,
/// bias correction, and the parameter write in a single pass per buffer
/// (replaces ~6 kernel calls per parameter). Bit-identical across SIMD
/// dispatch variants, so checkpoints resume exactly under any of them.
void adam_step_inplace(Tensor& param, const Tensor& grad, Tensor& m,
                       Tensor& v, const AdamStepConfig& cfg);

/// Euclidean dot product of two same-shape tensors (returns a double).
double dot(const Tensor& a, const Tensor& b);
/// Euclidean norm.
double norm2(const Tensor& a);

}  // namespace qpinn::kernels

#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/parallel_for.hpp"
#include "util/error.hpp"
#include "util/invariant.hpp"

// Checked builds validate every kernel operand's storage/shape agreement
// on entry (catches use-after-move and metadata corruption at the first
// kernel that would otherwise read through a dangling buffer). Release
// builds compile the calls out.
#ifdef QPINN_CHECKED
#define QPINN_KERNEL_VALIDATE(t, site) (t).validate(site)
#else
#define QPINN_KERNEL_VALIDATE(t, site) \
  do {                                 \
  } while (false)
#endif

namespace qpinn::kernels {

namespace {

// Elementwise unary application, parallelized for large tensors.
template <typename F>
Tensor unary_apply(const Tensor& a, F f) {
  QPINN_KERNEL_VALIDATE(a, "kernels.unary");
  Tensor out(a.shape());
  const double* in = a.data();
  double* o = out.data();
  const std::size_t n = static_cast<std::size_t>(a.numel());
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) o[i] = f(in[i]);
  });
  return out;
}

// Strides padded to `rank` with 0 for broadcast dimensions.
std::vector<std::int64_t> broadcast_strides(const Shape& shape,
                                            std::size_t rank) {
  const auto natural = row_major_strides(shape);
  std::vector<std::int64_t> out(rank, 0);
  const std::size_t offset = rank - shape.size();
  for (std::size_t i = 0; i < shape.size(); ++i) {
    out[offset + i] = (shape[i] == 1) ? 0 : natural[i];
  }
  return out;
}

template <typename F>
Tensor binary_apply(const Tensor& a, const Tensor& b, F f) {
  QPINN_KERNEL_VALIDATE(a, "kernels.binary");
  QPINN_KERNEL_VALIDATE(b, "kernels.binary");
  // Fast path: identical shapes.
  if (a.same_shape(b)) {
    Tensor out(a.shape());
    const double* pa = a.data();
    const double* pb = b.data();
    double* o = out.data();
    const std::size_t n = static_cast<std::size_t>(a.numel());
    parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) o[i] = f(pa[i], pb[i]);
    });
    return out;
  }
  const Shape out_shape = broadcast_shapes(a.shape(), b.shape());
  // Fast path: one side is a one-element tensor AND the result keeps the
  // other side's exact shape (a rank-0 scalar against {1,1} must still
  // produce {1,1}, so the shape condition matters).
  if (b.numel() == 1 && out_shape == a.shape()) {
    const double s = b.data()[0];
    return unary_apply(a, [f, s](double x) { return f(x, s); });
  }
  if (a.numel() == 1 && out_shape == b.shape()) {
    const double s = a.data()[0];
    return unary_apply(b, [f, s](double x) { return f(s, x); });
  }
  Tensor out(out_shape);
  const std::size_t rank = out_shape.size();
  const auto sa = broadcast_strides(a.shape(), rank);
  const auto sb = broadcast_strides(b.shape(), rank);
  const auto so = row_major_strides(out_shape);
  const double* pa = a.data();
  const double* pb = b.data();
  double* o = out.data();
  const std::size_t n = static_cast<std::size_t>(out.numel());

  // Fast path: rank-2 row-broadcast (matrix op row-vector), the common
  // bias-add pattern.
  if (rank == 2 && sa[0] != 0 && sb[0] == 0 && sa[1] == 1 && sb[1] == 1) {
    const std::size_t rows = static_cast<std::size_t>(out_shape[0]);
    const std::size_t cols = static_cast<std::size_t>(out_shape[1]);
    parallel_for(rows, [&](std::size_t begin, std::size_t end) {
      for (std::size_t r = begin; r < end; ++r) {
        const double* row_a = pa + r * cols;
        double* row_o = o + r * cols;
        for (std::size_t c = 0; c < cols; ++c) {
          row_o[c] = f(row_a[c], pb[c]);
        }
      }
    }, /*grain=*/64);
    return out;
  }

  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      std::int64_t rem = static_cast<std::int64_t>(i);
      std::int64_t ia = 0, ib = 0;
      for (std::size_t d = 0; d < rank; ++d) {
        const std::int64_t coord = rem / so[d];
        rem -= coord * so[d];
        ia += coord * sa[d];
        ib += coord * sb[d];
      }
      o[i] = f(pa[ia], pb[ib]);
    }
  });
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_apply(a, b, [](double x, double y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_apply(a, b, [](double x, double y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_apply(a, b, [](double x, double y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_apply(a, b, [](double x, double y) { return x / y; });
}

Tensor neg(const Tensor& a) {
  return unary_apply(a, [](double x) { return -x; });
}
Tensor scale(const Tensor& a, double s) {
  return unary_apply(a, [s](double x) { return s * x; });
}
Tensor add_scalar(const Tensor& a, double s) {
  return unary_apply(a, [s](double x) { return x + s; });
}
Tensor exp(const Tensor& a) {
  return unary_apply(a, [](double x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary_apply(a, [](double x) { return std::log(x); });
}
Tensor tanh(const Tensor& a) {
  return unary_apply(a, [](double x) { return std::tanh(x); });
}
Tensor sin(const Tensor& a) {
  return unary_apply(a, [](double x) { return std::sin(x); });
}
Tensor cos(const Tensor& a) {
  return unary_apply(a, [](double x) { return std::cos(x); });
}
Tensor sqrt(const Tensor& a) {
  return unary_apply(a, [](double x) { return std::sqrt(x); });
}
Tensor reciprocal(const Tensor& a) {
  return unary_apply(a, [](double x) { return 1.0 / x; });
}
Tensor square(const Tensor& a) {
  return unary_apply(a, [](double x) { return x * x; });
}
Tensor sigmoid(const Tensor& a) {
  return unary_apply(a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}
Tensor softplus(const Tensor& a) {
  // Numerically stable log(1 + e^x).
  return unary_apply(a, [](double x) {
    return x > 0.0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
  });
}
Tensor pow_scalar(const Tensor& a, double p) {
  return unary_apply(a, [p](double x) { return std::pow(x, p); });
}
Tensor step(const Tensor& a) {
  return unary_apply(a, [](double x) { return x > 0.0 ? 1.0 : 0.0; });
}
Tensor relu(const Tensor& a) {
  return unary_apply(a, [](double x) { return x > 0.0 ? x : 0.0; });
}
Tensor abs(const Tensor& a) {
  return unary_apply(a, [](double x) { return std::abs(x); });
}
Tensor sign(const Tensor& a) {
  return unary_apply(a, [](double x) {
    return (x > 0.0) ? 1.0 : (x < 0.0 ? -1.0 : 0.0);
  });
}

namespace {

// ---- matmul micro-kernels -------------------------------------------------
//
// All three variants use register-tiled blocks: kRowTile output rows by
// kColTile output columns accumulate in a local array the compiler keeps in
// registers, so each loaded element of a and b feeds several FMAs instead
// of one. Remainder fringes fall back to plain loops. No operand value is
// ever skipped — an earlier `aik == 0.0` shortcut silently dropped IEEE
// NaN/Inf propagation from the right operand (0 * NaN must be NaN).
constexpr std::int64_t kRowTile = 4;
constexpr std::int64_t kColTile = 8;

// Serial-dispatch heuristic: run on the calling thread unless a chunk of at
// least kMinRowsPerChunk rows carries ~kSerialFlops of multiply-adds.
// The floor keeps tiny matmuls (few output rows) off the pool entirely —
// per-task dispatch costs more than the work itself.
constexpr std::int64_t kMinRowsPerChunk = 4;
constexpr std::int64_t kSerialFlops = 16384;

std::size_t matmul_grain(std::int64_t flops_per_row) {
  return static_cast<std::size_t>(std::max<std::int64_t>(
      kMinRowsPerChunk,
      kSerialFlops / std::max<std::int64_t>(1, flops_per_row)));
}

// Rows [i0, i1) of out[n,m] = a[n,k] * b[k,m]; out rows pre-zeroed.
void matmul_rows(const double* pa, const double* pb, double* po,
                 std::int64_t i0, std::int64_t i1, std::int64_t k,
                 std::int64_t m) {
  for (std::int64_t i = i0; i < i1; i += kRowTile) {
    const std::int64_t ib = std::min(kRowTile, i1 - i);
    for (std::int64_t j = 0; j < m; j += kColTile) {
      const std::int64_t jb = std::min(kColTile, m - j);
      if (ib == kRowTile && jb == kColTile) {
        double acc[kRowTile][kColTile] = {};
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const double* b_row = pb + kk * m + j;
          for (std::int64_t r = 0; r < kRowTile; ++r) {
            const double a_rk = pa[(i + r) * k + kk];
            for (std::int64_t c = 0; c < kColTile; ++c) {
              acc[r][c] += a_rk * b_row[c];
            }
          }
        }
        for (std::int64_t r = 0; r < kRowTile; ++r) {
          double* out_row = po + (i + r) * m + j;
          for (std::int64_t c = 0; c < kColTile; ++c) out_row[c] = acc[r][c];
        }
      } else {
        for (std::int64_t r = 0; r < ib; ++r) {
          double* out_row = po + (i + r) * m + j;
          const double* a_row = pa + (i + r) * k;
          for (std::int64_t kk = 0; kk < k; ++kk) {
            const double a_rk = a_row[kk];
            const double* b_row = pb + kk * m + j;
            for (std::int64_t c = 0; c < jb; ++c) {
              out_row[c] += a_rk * b_row[c];
            }
          }
        }
      }
    }
  }
}

// Rows [i0, i1) of out[n,m] = a[k,n]^T * b[k,m]; out rows pre-zeroed.
// a columns i..i+3 are adjacent in memory, so the tile loads stay unit
// stride in both operands.
void matmul_tn_rows(const double* pa, const double* pb, double* po,
                    std::int64_t i0, std::int64_t i1, std::int64_t k,
                    std::int64_t n, std::int64_t m) {
  for (std::int64_t i = i0; i < i1; i += kRowTile) {
    const std::int64_t ib = std::min(kRowTile, i1 - i);
    for (std::int64_t j = 0; j < m; j += kColTile) {
      const std::int64_t jb = std::min(kColTile, m - j);
      if (ib == kRowTile && jb == kColTile) {
        double acc[kRowTile][kColTile] = {};
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const double* a_col = pa + kk * n + i;
          const double* b_row = pb + kk * m + j;
          for (std::int64_t r = 0; r < kRowTile; ++r) {
            const double a_rk = a_col[r];
            for (std::int64_t c = 0; c < kColTile; ++c) {
              acc[r][c] += a_rk * b_row[c];
            }
          }
        }
        for (std::int64_t r = 0; r < kRowTile; ++r) {
          double* out_row = po + (i + r) * m + j;
          for (std::int64_t c = 0; c < kColTile; ++c) out_row[c] = acc[r][c];
        }
      } else {
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const double* a_col = pa + kk * n + i;
          const double* b_row = pb + kk * m + j;
          for (std::int64_t r = 0; r < ib; ++r) {
            double* out_row = po + (i + r) * m + j;
            const double a_rk = a_col[r];
            for (std::int64_t c = 0; c < jb; ++c) {
              out_row[c] += a_rk * b_row[c];
            }
          }
        }
      }
    }
  }
}

// Rows [i0, i1) of out[n,m] = a[n,k] * b[m,k]^T. Both operands stream
// along k, so the tile is kRowTile x kRowTile dot products.
void matmul_nt_rows(const double* pa, const double* pb, double* po,
                    std::int64_t i0, std::int64_t i1, std::int64_t k,
                    std::int64_t m) {
  for (std::int64_t i = i0; i < i1; i += kRowTile) {
    const std::int64_t ib = std::min(kRowTile, i1 - i);
    for (std::int64_t j = 0; j < m; j += kRowTile) {
      const std::int64_t jb = std::min(kRowTile, m - j);
      if (ib == kRowTile && jb == kRowTile) {
        double acc[kRowTile][kRowTile] = {};
        for (std::int64_t kk = 0; kk < k; ++kk) {
          double av[kRowTile], bv[kRowTile];
          for (std::int64_t r = 0; r < kRowTile; ++r) {
            av[r] = pa[(i + r) * k + kk];
            bv[r] = pb[(j + r) * k + kk];
          }
          for (std::int64_t r = 0; r < kRowTile; ++r) {
            for (std::int64_t c = 0; c < kRowTile; ++c) {
              acc[r][c] += av[r] * bv[c];
            }
          }
        }
        for (std::int64_t r = 0; r < kRowTile; ++r) {
          double* out_row = po + (i + r) * m + j;
          for (std::int64_t c = 0; c < kRowTile; ++c) out_row[c] = acc[r][c];
        }
      } else {
        for (std::int64_t r = 0; r < ib; ++r) {
          const double* a_row = pa + (i + r) * k;
          double* out_row = po + (i + r) * m + j;
          for (std::int64_t c = 0; c < jb; ++c) {
            const double* b_row = pb + (j + c) * k;
            double acc = 0.0;
            for (std::int64_t kk = 0; kk < k; ++kk) {
              acc += a_row[kk] * b_row[kk];
            }
            out_row[c] = acc;
          }
        }
      }
    }
  }
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  QPINN_KERNEL_VALIDATE(a, "kernels.matmul");
  QPINN_KERNEL_VALIDATE(b, "kernels.matmul");
  QPINN_CHECK_SHAPE(a.rank() == 2 && b.rank() == 2,
                    "matmul requires rank-2 operands, got " +
                        shape_to_string(a.shape()) + " x " +
                        shape_to_string(b.shape()));
  QPINN_CHECK_SHAPE(a.cols() == b.rows(),
                    "matmul inner dimensions mismatch: " +
                        shape_to_string(a.shape()) + " x " +
                        shape_to_string(b.shape()));
  const std::int64_t n = a.rows(), k = a.cols(), m = b.cols();
  Tensor out(Shape{n, m});
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end) {
        matmul_rows(pa, pb, po, static_cast<std::int64_t>(begin),
                    static_cast<std::int64_t>(end), k, m);
      },
      matmul_grain(k * m));
  return out;
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  QPINN_KERNEL_VALIDATE(a, "kernels.matmul_tn");
  QPINN_KERNEL_VALIDATE(b, "kernels.matmul_tn");
  QPINN_CHECK_SHAPE(a.rank() == 2 && b.rank() == 2,
                    "matmul_tn requires rank-2 operands");
  QPINN_CHECK_SHAPE(a.rows() == b.rows(),
                    "matmul_tn dimension mismatch: " +
                        shape_to_string(a.shape()) + "^T x " +
                        shape_to_string(b.shape()));
  const std::int64_t k = a.rows(), n = a.cols(), m = b.cols();
  Tensor out(Shape{n, m});
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  // out[i][j] = sum_kk a[kk][i] * b[kk][j]; parallelized over output rows i.
  parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end) {
        matmul_tn_rows(pa, pb, po, static_cast<std::int64_t>(begin),
                       static_cast<std::int64_t>(end), k, n, m);
      },
      matmul_grain(k * m));
  return out;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  QPINN_KERNEL_VALIDATE(a, "kernels.matmul_nt");
  QPINN_KERNEL_VALIDATE(b, "kernels.matmul_nt");
  QPINN_CHECK_SHAPE(a.rank() == 2 && b.rank() == 2,
                    "matmul_nt requires rank-2 operands");
  QPINN_CHECK_SHAPE(a.cols() == b.cols(),
                    "matmul_nt dimension mismatch: " +
                        shape_to_string(a.shape()) + " x " +
                        shape_to_string(b.shape()) + "^T");
  const std::int64_t n = a.rows(), k = a.cols(), m = b.rows();
  Tensor out(Shape{n, m});
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end) {
        matmul_nt_rows(pa, pb, po, static_cast<std::int64_t>(begin),
                       static_cast<std::int64_t>(end), k, m);
      },
      matmul_grain(k * m));
  return out;
}

Tensor transpose(const Tensor& a) {
  QPINN_KERNEL_VALIDATE(a, "kernels.transpose");
  QPINN_CHECK_SHAPE(a.rank() == 2, "transpose requires a rank-2 tensor");
  const std::int64_t n = a.rows(), m = a.cols();
  Tensor out(Shape{m, n});
  const double* pa = a.data();
  double* po = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < m; ++j) po[j * n + i] = pa[i * m + j];
  }
  return out;
}

Tensor sum_all(const Tensor& a) {
  QPINN_KERNEL_VALIDATE(a, "kernels.sum_all");
  const double* p = a.data();
  const std::size_t n = static_cast<std::size_t>(a.numel());
  const double total = parallel_reduce<double>(
      n, 0.0,
      [&](std::size_t begin, std::size_t end, double acc) {
        for (std::size_t i = begin; i < end; ++i) acc += p[i];
        return acc;
      },
      [](double x, double y) { return x + y; });
  return Tensor::scalar(total);
}

Tensor mean_all(const Tensor& a) {
  return scale(sum_all(a), 1.0 / static_cast<double>(a.numel()));
}

Tensor sum_to(const Tensor& a, const Shape& target) {
  QPINN_KERNEL_VALIDATE(a, "kernels.sum_to");
  // Shapes equal: still a fresh buffer. Returning `a` itself would alias
  // the caller's storage on exactly one path while every other path
  // allocates — and an in-place mutation through the "result" (e.g. the
  // backward pass accumulating gradients) would silently corrupt the
  // source tensor.
  if (a.shape() == target) return a.clone();
  QPINN_CHECK_SHAPE(broadcastable_to(target, a.shape()),
                    "sum_to target " + shape_to_string(target) +
                        " is not broadcast-compatible with " +
                        shape_to_string(a.shape()));
  Tensor out(target);
  const std::size_t rank = a.shape().size();
  const auto sa = row_major_strides(a.shape());
  const auto st = broadcast_strides(target, rank);
  const double* pa = a.data();
  double* po = out.data();
  const std::int64_t n = a.numel();

  // Fast path: rank-2 input collapsing rows into a row vector ({1, m} or
  // {m}) — the bias-gradient pattern, dominant in backward passes. Chunked
  // partial rows combine in fixed chunk order, so the result is
  // deterministic regardless of thread count.
  const bool row_target =
      a.rank() == 2 &&
      ((target.size() == 1 && target[0] == a.cols()) ||
       (target.size() == 2 && target[0] == 1 && target[1] == a.cols()));
  if (row_target) {
    const std::size_t rows = static_cast<std::size_t>(a.rows());
    const std::size_t cols = static_cast<std::size_t>(a.cols());
    std::vector<double> total = parallel_reduce<std::vector<double>>(
        rows, std::vector<double>(cols, 0.0),
        [&](std::size_t begin, std::size_t end, std::vector<double> acc) {
          for (std::size_t r = begin; r < end; ++r) {
            const double* row = pa + r * cols;
            for (std::size_t c = 0; c < cols; ++c) acc[c] += row[c];
          }
          return acc;
        },
        [](std::vector<double> x, const std::vector<double>& y) {
          for (std::size_t c = 0; c < x.size(); ++c) x[c] += y[c];
          return x;
        },
        /*grain=*/64);
    std::copy(total.begin(), total.end(), po);
    return out;
  }

  // General case: serial accumulation — outputs may collide across input
  // elements.
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t rem = i;
    std::int64_t it = 0;
    for (std::size_t d = 0; d < rank; ++d) {
      const std::int64_t coord = rem / sa[d];
      rem -= coord * sa[d];
      it += coord * st[d];
    }
    po[it] += pa[i];
  }
  return out;
}

Tensor broadcast_to(const Tensor& a, const Shape& target) {
  QPINN_KERNEL_VALIDATE(a, "kernels.broadcast_to");
  // Fresh storage on the shapes-equal path too; see sum_to.
  if (a.shape() == target) return a.clone();
  QPINN_CHECK_SHAPE(broadcastable_to(a.shape(), target),
                    "cannot broadcast " + shape_to_string(a.shape()) + " to " +
                        shape_to_string(target));
  Tensor out(target);
  const std::size_t rank = target.size();
  const auto sa = broadcast_strides(a.shape(), rank);
  const auto so = row_major_strides(target);
  const double* pa = a.data();
  double* po = out.data();
  const std::size_t n = static_cast<std::size_t>(out.numel());
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      std::int64_t rem = static_cast<std::int64_t>(i);
      std::int64_t ia = 0;
      for (std::size_t d = 0; d < rank; ++d) {
        const std::int64_t coord = rem / so[d];
        rem -= coord * so[d];
        ia += coord * sa[d];
      }
      po[i] = pa[ia];
    }
  });
  return out;
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  QPINN_CHECK(!parts.empty(), "concat_cols needs at least one tensor");
  const std::int64_t rows = parts.front().rows();
  std::int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    QPINN_CHECK_SHAPE(p.rank() == 2 && p.rows() == rows,
                      "concat_cols requires rank-2 tensors with equal rows");
    total_cols += p.cols();
  }
  Tensor out(Shape{rows, total_cols});
  double* po = out.data();
  std::int64_t col_offset = 0;
  for (const Tensor& p : parts) {
    const double* pp = p.data();
    const std::int64_t pc = p.cols();
    for (std::int64_t r = 0; r < rows; ++r) {
      std::copy(pp + r * pc, pp + (r + 1) * pc,
                po + r * total_cols + col_offset);
    }
    col_offset += pc;
  }
  return out;
}

Tensor slice_cols(const Tensor& a, std::int64_t c0, std::int64_t c1) {
  QPINN_KERNEL_VALIDATE(a, "kernels.slice_cols");
  QPINN_CHECK_SHAPE(a.rank() == 2, "slice_cols requires a rank-2 tensor");
  QPINN_CHECK_SHAPE(0 <= c0 && c0 < c1 && c1 <= a.cols(),
                    "slice_cols range [" + std::to_string(c0) + ", " +
                        std::to_string(c1) + ") invalid for " +
                        shape_to_string(a.shape()));
  const std::int64_t rows = a.rows(), cols = a.cols(), width = c1 - c0;
  Tensor out(Shape{rows, width});
  const double* pa = a.data();
  double* po = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    std::copy(pa + r * cols + c0, pa + r * cols + c1, po + r * width);
  }
  return out;
}

Tensor slice_rows(const Tensor& a, std::int64_t r0, std::int64_t r1) {
  QPINN_KERNEL_VALIDATE(a, "kernels.slice_rows");
  QPINN_CHECK_SHAPE(a.rank() == 2, "slice_rows requires a rank-2 tensor");
  QPINN_CHECK_SHAPE(0 <= r0 && r0 < r1 && r1 <= a.rows(),
                    "slice_rows range [" + std::to_string(r0) + ", " +
                        std::to_string(r1) + ") invalid for " +
                        shape_to_string(a.shape()));
  const std::int64_t cols = a.cols();
  Tensor out(Shape{r1 - r0, cols});
  std::copy(a.data() + r0 * cols, a.data() + r1 * cols, out.data());
  return out;
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  QPINN_CHECK(!parts.empty(), "concat_rows needs at least one tensor");
  const std::int64_t cols = parts.front().cols();
  std::int64_t total_rows = 0;
  for (const Tensor& p : parts) {
    QPINN_CHECK_SHAPE(p.rank() == 2 && p.cols() == cols,
                      "concat_rows requires rank-2 tensors with equal cols");
    total_rows += p.rows();
  }
  Tensor out(Shape{total_rows, cols});
  double* po = out.data();
  for (const Tensor& p : parts) {
    std::copy(p.data(), p.data() + p.numel(), po);
    po += p.numel();
  }
  return out;
}

void axpy_inplace(Tensor& dst, double s, const Tensor& src) {
  QPINN_KERNEL_VALIDATE(dst, "kernels.axpy_inplace");
  QPINN_KERNEL_VALIDATE(src, "kernels.axpy_inplace");
  QPINN_CHECK_SHAPE(dst.same_shape(src), "axpy_inplace shape mismatch");
  double* pd = dst.data();
  const double* ps = src.data();
  const std::size_t n = static_cast<std::size_t>(dst.numel());
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) pd[i] += s * ps[i];
  });
}

void scale_inplace(Tensor& dst, double s) {
  QPINN_KERNEL_VALIDATE(dst, "kernels.scale_inplace");
  double* pd = dst.data();
  const std::size_t n = static_cast<std::size_t>(dst.numel());
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) pd[i] *= s;
  });
}

void copy_into(Tensor& dst, const Tensor& src) {
  QPINN_KERNEL_VALIDATE(dst, "kernels.copy_into");
  QPINN_KERNEL_VALIDATE(src, "kernels.copy_into");
  QPINN_CHECK_SHAPE(dst.same_shape(src), "copy_into shape mismatch");
  std::copy(src.data(), src.data() + src.numel(), dst.data());
}

double dot(const Tensor& a, const Tensor& b) {
  QPINN_KERNEL_VALIDATE(a, "kernels.dot");
  QPINN_KERNEL_VALIDATE(b, "kernels.dot");
  QPINN_CHECK_SHAPE(a.same_shape(b), "dot shape mismatch");
  const double* pa = a.data();
  const double* pb = b.data();
  const std::size_t n = static_cast<std::size_t>(a.numel());
  // parallel_reduce combines per-chunk partials in fixed chunk order, so
  // the rounding is deterministic across runs for a given thread count.
  return parallel_reduce<double>(
      n, 0.0,
      [&](std::size_t begin, std::size_t end, double acc) {
        for (std::size_t i = begin; i < end; ++i) acc += pa[i] * pb[i];
        return acc;
      },
      [](double x, double y) { return x + y; });
}

double norm2(const Tensor& a) { return std::sqrt(dot(a, a)); }

}  // namespace qpinn::kernels

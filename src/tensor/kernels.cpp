#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/parallel_for.hpp"
#include "tensor/simd.hpp"
#include "util/error.hpp"
#include "util/invariant.hpp"

// Checked builds validate every kernel operand's storage/shape agreement
// on entry (catches use-after-move and metadata corruption at the first
// kernel that would otherwise read through a dangling buffer). Release
// builds compile the calls out.
#ifdef QPINN_CHECKED
#define QPINN_KERNEL_VALIDATE(t, site) (t).validate(site)
#else
#define QPINN_KERNEL_VALIDATE(t, site) \
  do {                                 \
  } while (false)
#endif

namespace qpinn::kernels {

namespace {

// Elementwise unary application, parallelized for large tensors.
template <typename F>
void unary_apply_into(Tensor& out, const Tensor& a, F f) {
  QPINN_KERNEL_VALIDATE(a, "kernels.unary");
  QPINN_KERNEL_VALIDATE(out, "kernels.unary");
  QPINN_CHECK_SHAPE(out.same_shape(a), "unary output shape mismatch");
  const double* in = a.data();
  double* o = out.data();
  const std::size_t n = static_cast<std::size_t>(a.numel());
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) o[i] = f(in[i]);
  });
}

template <typename F>
Tensor unary_apply(const Tensor& a, F f) {
  Tensor out = Tensor::uninitialized(a.shape());
  unary_apply_into(out, a, f);
  return out;
}

// Unary application through a SIMD-table kernel (one contiguous sweep per
// parallel chunk).
void unary_simd_into(Tensor& out, const Tensor& a,
                     void (*fn)(const double*, double*, std::size_t)) {
  QPINN_KERNEL_VALIDATE(a, "kernels.unary");
  QPINN_KERNEL_VALIDATE(out, "kernels.unary");
  QPINN_CHECK_SHAPE(out.same_shape(a), "unary output shape mismatch");
  const double* in = a.data();
  double* o = out.data();
  const std::size_t n = static_cast<std::size_t>(a.numel());
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(in + begin, o + begin, end - begin);
  });
}

Tensor unary_simd(const Tensor& a,
                  void (*fn)(const double*, double*, std::size_t)) {
  Tensor out = Tensor::uninitialized(a.shape());
  unary_simd_into(out, a, fn);
  return out;
}

// Same, for kernels parameterized by one scalar.
void unary_simd_s_into(
    Tensor& out, const Tensor& a, double s,
    void (*fn)(const double*, double, double*, std::size_t)) {
  QPINN_KERNEL_VALIDATE(a, "kernels.unary");
  QPINN_KERNEL_VALIDATE(out, "kernels.unary");
  QPINN_CHECK_SHAPE(out.same_shape(a), "unary output shape mismatch");
  const double* in = a.data();
  double* o = out.data();
  const std::size_t n = static_cast<std::size_t>(a.numel());
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(in + begin, s, o + begin, end - begin);
  });
}

Tensor unary_simd_s(const Tensor& a, double s,
                    void (*fn)(const double*, double, double*, std::size_t)) {
  Tensor out = Tensor::uninitialized(a.shape());
  unary_simd_s_into(out, a, s, fn);
  return out;
}

// Strides padded to `rank` with 0 for broadcast dimensions.
std::vector<std::int64_t> broadcast_strides(const Shape& shape,
                                            std::size_t rank) {
  const auto natural = row_major_strides(shape);
  std::vector<std::int64_t> out(rank, 0);
  const std::size_t offset = rank - shape.size();
  for (std::size_t i = 0; i < shape.size(); ++i) {
    out[offset + i] = (shape[i] == 1) ? 0 : natural[i];
  }
  return out;
}

// The four arithmetic binaries take a simd::BinOp selecting the vectorized
// contiguous kernels; the scalar functor `f` stays authoritative for the
// broadcast paths the table does not cover.
template <typename F>
void binary_apply_into(Tensor& out, const Tensor& a, const Tensor& b,
                       simd::BinOp bop, F f) {
  QPINN_KERNEL_VALIDATE(a, "kernels.binary");
  QPINN_KERNEL_VALIDATE(b, "kernels.binary");
  QPINN_KERNEL_VALIDATE(out, "kernels.binary");
  // Fast path: identical shapes — one contiguous SIMD sweep per chunk.
  if (a.same_shape(b)) {
    QPINN_CHECK_SHAPE(out.same_shape(a), "binary output shape mismatch");
    const double* pa = a.data();
    const double* pb = b.data();
    double* o = out.data();
    const std::size_t n = static_cast<std::size_t>(a.numel());
    auto* fn = simd::active().bin_same[bop];
    parallel_for(n, [&](std::size_t begin, std::size_t end) {
      fn(pa + begin, pb + begin, o + begin, end - begin);
    });
    return;
  }
  const Shape out_shape = broadcast_shapes(a.shape(), b.shape());
  QPINN_CHECK_SHAPE(out.shape() == out_shape,
                    "binary output shape mismatch");
  // Fast path: one side is a one-element tensor AND the result keeps the
  // other side's exact shape (a rank-0 scalar against {1,1} must still
  // produce {1,1}, so the shape condition matters).
  if (b.numel() == 1 && out_shape == a.shape()) {
    const double s = b.data()[0];
    unary_apply_into(out, a, [f, s](double x) { return f(x, s); });
    return;
  }
  if (a.numel() == 1 && out_shape == b.shape()) {
    const double s = a.data()[0];
    unary_apply_into(out, b, [f, s](double x) { return f(s, x); });
    return;
  }
  const std::size_t rank = out_shape.size();
  const auto sa = broadcast_strides(a.shape(), rank);
  const auto sb = broadcast_strides(b.shape(), rank);
  const auto so = row_major_strides(out_shape);
  const double* pa = a.data();
  const double* pb = b.data();
  double* o = out.data();
  const std::size_t n = static_cast<std::size_t>(out.numel());

  // Fast path: rank-2 row-broadcast (matrix op row-vector), the common
  // bias-add pattern.
  if (rank == 2 && sa[0] != 0 && sb[0] == 0 && sa[1] == 1 && sb[1] == 1) {
    const std::size_t rows = static_cast<std::size_t>(out_shape[0]);
    const std::size_t cols = static_cast<std::size_t>(out_shape[1]);
    auto* fn = simd::active().bin_row[bop];
    parallel_for(rows, [&](std::size_t begin, std::size_t end) {
      fn(pa + begin * cols, pb, o + begin * cols, end - begin, cols);
    }, /*grain=*/64);
    return;
  }

  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      std::int64_t rem = static_cast<std::int64_t>(i);
      std::int64_t ia = 0, ib = 0;
      for (std::size_t d = 0; d < rank; ++d) {
        const std::int64_t coord = rem / so[d];
        rem -= coord * so[d];
        ia += coord * sa[d];
        ib += coord * sb[d];
      }
      o[i] = f(pa[ia], pb[ib]);
    }
  });
}

template <typename F>
Tensor binary_apply(const Tensor& a, const Tensor& b, simd::BinOp bop, F f) {
  Tensor out =
      Tensor::uninitialized(broadcast_shapes(a.shape(), b.shape()));
  binary_apply_into(out, a, b, bop, f);
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_apply(a, b, simd::kAdd,
                      [](double x, double y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_apply(a, b, simd::kSub,
                      [](double x, double y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_apply(a, b, simd::kMul,
                      [](double x, double y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return binary_apply(a, b, simd::kDiv,
                      [](double x, double y) { return x / y; });
}

Tensor neg(const Tensor& a) { return unary_simd(a, simd::active().neg); }
Tensor scale(const Tensor& a, double s) {
  return unary_simd_s(a, s, simd::active().scale);
}
Tensor add_scalar(const Tensor& a, double s) {
  return unary_simd_s(a, s, simd::active().add_scalar);
}
Tensor exp(const Tensor& a) {
  return unary_apply(a, [](double x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return unary_apply(a, [](double x) { return std::log(x); });
}
Tensor tanh(const Tensor& a) { return unary_simd(a, simd::active().tanh); }
Tensor sin(const Tensor& a) {
  return unary_apply(a, [](double x) { return std::sin(x); });
}
Tensor cos(const Tensor& a) {
  return unary_apply(a, [](double x) { return std::cos(x); });
}
Tensor sqrt(const Tensor& a) { return unary_simd(a, simd::active().sqrt); }
Tensor reciprocal(const Tensor& a) {
  return unary_simd(a, simd::active().reciprocal);
}
Tensor square(const Tensor& a) {
  return unary_simd(a, simd::active().square);
}
Tensor sigmoid(const Tensor& a) {
  return unary_apply(a, [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}
Tensor softplus(const Tensor& a) {
  // Numerically stable log(1 + e^x).
  return unary_apply(a, [](double x) {
    return x > 0.0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
  });
}
Tensor pow_scalar(const Tensor& a, double p) {
  return unary_apply(a, [p](double x) { return std::pow(x, p); });
}
Tensor step(const Tensor& a) { return unary_simd(a, simd::active().step); }
Tensor relu(const Tensor& a) { return unary_simd(a, simd::active().relu); }
Tensor abs(const Tensor& a) { return unary_simd(a, simd::active().abs); }
Tensor sign(const Tensor& a) { return unary_simd(a, simd::active().sign); }

void add_into(Tensor& out, const Tensor& a, const Tensor& b) {
  binary_apply_into(out, a, b, simd::kAdd,
                    [](double x, double y) { return x + y; });
}
void sub_into(Tensor& out, const Tensor& a, const Tensor& b) {
  binary_apply_into(out, a, b, simd::kSub,
                    [](double x, double y) { return x - y; });
}
void mul_into(Tensor& out, const Tensor& a, const Tensor& b) {
  binary_apply_into(out, a, b, simd::kMul,
                    [](double x, double y) { return x * y; });
}
void div_into(Tensor& out, const Tensor& a, const Tensor& b) {
  binary_apply_into(out, a, b, simd::kDiv,
                    [](double x, double y) { return x / y; });
}
void neg_into(Tensor& out, const Tensor& a) {
  unary_simd_into(out, a, simd::active().neg);
}
void scale_into(Tensor& out, const Tensor& a, double s) {
  unary_simd_s_into(out, a, s, simd::active().scale);
}
void add_scalar_into(Tensor& out, const Tensor& a, double s) {
  unary_simd_s_into(out, a, s, simd::active().add_scalar);
}
void exp_into(Tensor& out, const Tensor& a) {
  unary_apply_into(out, a, [](double x) { return std::exp(x); });
}
void log_into(Tensor& out, const Tensor& a) {
  unary_apply_into(out, a, [](double x) { return std::log(x); });
}
void tanh_into(Tensor& out, const Tensor& a) {
  unary_simd_into(out, a, simd::active().tanh);
}
void sin_into(Tensor& out, const Tensor& a) {
  unary_apply_into(out, a, [](double x) { return std::sin(x); });
}
void cos_into(Tensor& out, const Tensor& a) {
  unary_apply_into(out, a, [](double x) { return std::cos(x); });
}
void sqrt_into(Tensor& out, const Tensor& a) {
  unary_simd_into(out, a, simd::active().sqrt);
}
void reciprocal_into(Tensor& out, const Tensor& a) {
  unary_simd_into(out, a, simd::active().reciprocal);
}
void square_into(Tensor& out, const Tensor& a) {
  unary_simd_into(out, a, simd::active().square);
}
void sigmoid_into(Tensor& out, const Tensor& a) {
  unary_apply_into(out, a,
                   [](double x) { return 1.0 / (1.0 + std::exp(-x)); });
}
void softplus_into(Tensor& out, const Tensor& a) {
  unary_apply_into(out, a, [](double x) {
    return x > 0.0 ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
  });
}
void pow_scalar_into(Tensor& out, const Tensor& a, double p) {
  unary_apply_into(out, a, [p](double x) { return std::pow(x, p); });
}
void step_into(Tensor& out, const Tensor& a) {
  unary_simd_into(out, a, simd::active().step);
}
void relu_into(Tensor& out, const Tensor& a) {
  unary_simd_into(out, a, simd::active().relu);
}
void abs_into(Tensor& out, const Tensor& a) {
  unary_simd_into(out, a, simd::active().abs);
}
void sign_into(Tensor& out, const Tensor& a) {
  unary_simd_into(out, a, simd::active().sign);
}

void fill_zero(Tensor& out) {
  QPINN_KERNEL_VALIDATE(out, "kernels.fill_zero");
  std::fill(out.data(), out.data() + out.numel(), 0.0);
}

namespace {

// Shared shape check for the fused bias+activation kernels.
void check_bias_shape(const Tensor& a, const Tensor& bias, const char* name) {
  QPINN_KERNEL_VALIDATE(a, "kernels.bias_activation");
  QPINN_KERNEL_VALIDATE(bias, "kernels.bias_activation");
  QPINN_CHECK_SHAPE(a.rank() == 2, std::string(name) +
                                       " requires a rank-2 input, got " +
                                       shape_to_string(a.shape()));
  const bool row_vector =
      (bias.rank() == 1 && bias.numel() == a.cols()) ||
      (bias.rank() == 2 && bias.rows() == 1 && bias.cols() == a.cols());
  QPINN_CHECK_SHAPE(row_vector, std::string(name) + " bias " +
                                    shape_to_string(bias.shape()) +
                                    " does not match columns of " +
                                    shape_to_string(a.shape()));
}

// Scalar sweep for fused bias+activation kernels whose transcendental has
// no vectorized table entry (bias_sin); the win is one pass (and one tape
// node) instead of broadcast-add followed by a unary.
template <typename F>
void bias_activation_into(Tensor& out, const Tensor& a, const Tensor& bias,
                          const char* name, F f) {
  check_bias_shape(a, bias, name);
  QPINN_KERNEL_VALIDATE(out, "kernels.bias_activation");
  QPINN_CHECK_SHAPE(out.same_shape(a),
                    std::string(name) + " output shape mismatch");
  const double* pa = a.data();
  const double* pb = bias.data();
  double* po = out.data();
  const std::size_t rows = static_cast<std::size_t>(a.rows());
  const std::size_t cols = static_cast<std::size_t>(a.cols());
  parallel_for(
      rows,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const double* row_a = pa + r * cols;
          double* row_o = po + r * cols;
          for (std::size_t c = 0; c < cols; ++c) {
            row_o[c] = f(row_a[c] + pb[c]);
          }
        }
      },
      /*grain=*/16);
}

}  // namespace

void bias_tanh_into(Tensor& out, const Tensor& a, const Tensor& bias) {
  check_bias_shape(a, bias, "bias_tanh");
  QPINN_KERNEL_VALIDATE(out, "kernels.bias_activation");
  QPINN_CHECK_SHAPE(out.same_shape(a), "bias_tanh output shape mismatch");
  const double* pa = a.data();
  const double* pb = bias.data();
  double* po = out.data();
  const std::size_t rows = static_cast<std::size_t>(a.rows());
  const std::size_t cols = static_cast<std::size_t>(a.cols());
  auto* fn = simd::active().bias_tanh;
  parallel_for(
      rows,
      [&](std::size_t begin, std::size_t end) {
        fn(pa + begin * cols, pb, po + begin * cols, end - begin, cols);
      },
      /*grain=*/16);
}

Tensor bias_tanh(const Tensor& a, const Tensor& bias) {
  Tensor out = Tensor::uninitialized(a.shape());
  bias_tanh_into(out, a, bias);
  return out;
}

void bias_sin_into(Tensor& out, const Tensor& a, const Tensor& bias) {
  bias_activation_into(out, a, bias, "bias_sin",
                       [](double x) { return std::sin(x); });
}

Tensor bias_sin(const Tensor& a, const Tensor& bias) {
  Tensor out = Tensor::uninitialized(a.shape());
  bias_sin_into(out, a, bias);
  return out;
}

void tanh_grad_into(Tensor& out, const Tensor& g, const Tensor& t) {
  QPINN_KERNEL_VALIDATE(g, "kernels.tanh_grad");
  QPINN_KERNEL_VALIDATE(t, "kernels.tanh_grad");
  QPINN_KERNEL_VALIDATE(out, "kernels.tanh_grad");
  QPINN_CHECK_SHAPE(g.same_shape(t), "tanh_grad operand shape mismatch");
  QPINN_CHECK_SHAPE(out.same_shape(g), "tanh_grad output shape mismatch");
  const double* pg = g.data();
  const double* pt = t.data();
  double* po = out.data();
  const std::size_t n = static_cast<std::size_t>(g.numel());
  auto* fn = simd::active().tanh_grad;
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(pg + begin, pt + begin, po + begin, end - begin);
  });
}

Tensor tanh_grad(const Tensor& g, const Tensor& t) {
  Tensor out = Tensor::uninitialized(g.shape());
  tanh_grad_into(out, g, t);
  return out;
}

namespace {

double square_sum_total(const Tensor& a) {
  QPINN_KERNEL_VALIDATE(a, "kernels.square_sum_all");
  const double* p = a.data();
  const std::size_t n = static_cast<std::size_t>(a.numel());
  auto* fn = simd::active().square_sum;
  return parallel_reduce<double>(
      n, 0.0,
      [&](std::size_t begin, std::size_t end, double acc) {
        return acc + fn(p + begin, end - begin);
      },
      [](double x, double y) { return x + y; });
}

double weighted_square_sum_total(const Tensor& w, const Tensor& a) {
  QPINN_KERNEL_VALIDATE(w, "kernels.weighted_square_sum_all");
  QPINN_KERNEL_VALIDATE(a, "kernels.weighted_square_sum_all");
  const double* pw = w.data();
  const double* pa = a.data();
  if (w.same_shape(a)) {
    const std::size_t n = static_cast<std::size_t>(a.numel());
    auto* fn = simd::active().weighted_square_sum;
    return parallel_reduce<double>(
        n, 0.0,
        [&](std::size_t begin, std::size_t end, double acc) {
          return acc + fn(pw + begin, pa + begin, end - begin);
        },
        [](double x, double y) { return x + y; });
  }
  // Per-row weights against a rank-2 residual: w broadcast along columns.
  const bool col_vector =
      a.rank() == 2 &&
      ((w.rank() == 1 && w.numel() == a.rows()) ||
       (w.rank() == 2 && w.rows() == a.rows() && w.cols() == 1));
  QPINN_CHECK_SHAPE(col_vector, "weighted_square_sum_all weights " +
                                    shape_to_string(w.shape()) +
                                    " do not match " +
                                    shape_to_string(a.shape()));
  const std::size_t rows = static_cast<std::size_t>(a.rows());
  const std::size_t cols = static_cast<std::size_t>(a.cols());
  auto* fn = simd::active().square_sum;
  return parallel_reduce<double>(
      rows, 0.0,
      [&](std::size_t begin, std::size_t end, double acc) {
        for (std::size_t r = begin; r < end; ++r) {
          acc += pw[r] * fn(pa + r * cols, cols);
        }
        return acc;
      },
      [](double x, double y) { return x + y; },
      /*grain=*/16);
}

}  // namespace

Tensor square_sum_all(const Tensor& a) {
  return Tensor::scalar(square_sum_total(a));
}

void square_sum_all_into(Tensor& out, const Tensor& a) {
  QPINN_KERNEL_VALIDATE(out, "kernels.square_sum_all");
  QPINN_CHECK_SHAPE(out.numel() == 1, "square_sum_all output must be scalar");
  out.data()[0] = square_sum_total(a);
}

Tensor weighted_square_sum_all(const Tensor& w, const Tensor& a) {
  return Tensor::scalar(weighted_square_sum_total(w, a));
}

void weighted_square_sum_all_into(Tensor& out, const Tensor& w,
                                  const Tensor& a) {
  QPINN_KERNEL_VALIDATE(out, "kernels.weighted_square_sum_all");
  QPINN_CHECK_SHAPE(out.numel() == 1,
                    "weighted_square_sum_all output must be scalar");
  out.data()[0] = weighted_square_sum_total(w, a);
}

namespace {

// ---- matmul dispatch ------------------------------------------------------
//
// The register-tiled micro-kernels (kMmRowTile x 8 accumulator blocks,
// FMA-accumulated on targets that have it, remainder fringes scalar) live
// in tensor/simd.hpp and are selected per-ISA through the kernel table.
// No operand value is ever skipped — an earlier `aik == 0.0` shortcut
// silently dropped IEEE NaN/Inf propagation (0 * NaN must be NaN).

// Serial-dispatch heuristic: run on the calling thread unless a chunk of at
// least kMinRowsPerChunk rows carries ~kSerialFlops of multiply-adds.
// The floor keeps tiny matmuls (few output rows) off the pool entirely —
// per-task dispatch costs more than the work itself.
constexpr std::int64_t kMinRowsPerChunk = 4;
constexpr std::int64_t kSerialFlops = 16384;

std::size_t matmul_grain(std::int64_t flops_per_row) {
  return static_cast<std::size_t>(std::max<std::int64_t>(
      kMinRowsPerChunk,
      kSerialFlops / std::max<std::int64_t>(1, flops_per_row)));
}

}  // namespace

void matmul_into(Tensor& out, const Tensor& a, const Tensor& b) {
  QPINN_KERNEL_VALIDATE(a, "kernels.matmul");
  QPINN_KERNEL_VALIDATE(b, "kernels.matmul");
  QPINN_KERNEL_VALIDATE(out, "kernels.matmul");
  QPINN_CHECK_SHAPE(a.rank() == 2 && b.rank() == 2,
                    "matmul requires rank-2 operands, got " +
                        shape_to_string(a.shape()) + " x " +
                        shape_to_string(b.shape()));
  QPINN_CHECK_SHAPE(a.cols() == b.rows(),
                    "matmul inner dimensions mismatch: " +
                        shape_to_string(a.shape()) + " x " +
                        shape_to_string(b.shape()));
  const std::int64_t n = a.rows(), k = a.cols(), m = b.cols();
  QPINN_CHECK_SHAPE(out.rank() == 2 && out.rows() == n && out.cols() == m,
                    "matmul output shape mismatch");
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  // The micro-kernel fringe paths accumulate into pre-zeroed output rows.
  std::fill(po, po + n * m, 0.0);
  auto* fn = simd::active().matmul_rows;
  parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end) {
        fn(pa, pb, po, static_cast<std::int64_t>(begin),
           static_cast<std::int64_t>(end), k, m);
      },
      matmul_grain(k * m));
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  QPINN_CHECK_SHAPE(a.rank() == 2 && b.rank() == 2,
                    "matmul requires rank-2 operands, got " +
                        shape_to_string(a.shape()) + " x " +
                        shape_to_string(b.shape()));
  Tensor out = Tensor::uninitialized(Shape{a.rows(), b.cols()});
  matmul_into(out, a, b);
  return out;
}

void matmul_tn_into(Tensor& out, const Tensor& a, const Tensor& b) {
  QPINN_KERNEL_VALIDATE(a, "kernels.matmul_tn");
  QPINN_KERNEL_VALIDATE(b, "kernels.matmul_tn");
  QPINN_KERNEL_VALIDATE(out, "kernels.matmul_tn");
  QPINN_CHECK_SHAPE(a.rank() == 2 && b.rank() == 2,
                    "matmul_tn requires rank-2 operands");
  QPINN_CHECK_SHAPE(a.rows() == b.rows(),
                    "matmul_tn dimension mismatch: " +
                        shape_to_string(a.shape()) + "^T x " +
                        shape_to_string(b.shape()));
  const std::int64_t k = a.rows(), n = a.cols(), m = b.cols();
  QPINN_CHECK_SHAPE(out.rank() == 2 && out.rows() == n && out.cols() == m,
                    "matmul_tn output shape mismatch");
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  std::fill(po, po + n * m, 0.0);
  // out[i][j] = sum_kk a[kk][i] * b[kk][j]; parallelized over output rows i.
  auto* fn = simd::active().matmul_tn_rows;
  parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end) {
        fn(pa, pb, po, static_cast<std::int64_t>(begin),
           static_cast<std::int64_t>(end), k, n, m);
      },
      matmul_grain(k * m));
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  QPINN_CHECK_SHAPE(a.rank() == 2 && b.rank() == 2,
                    "matmul_tn requires rank-2 operands");
  Tensor out = Tensor::uninitialized(Shape{a.cols(), b.cols()});
  matmul_tn_into(out, a, b);
  return out;
}

void matmul_nt_into(Tensor& out, const Tensor& a, const Tensor& b) {
  QPINN_KERNEL_VALIDATE(a, "kernels.matmul_nt");
  QPINN_KERNEL_VALIDATE(b, "kernels.matmul_nt");
  QPINN_KERNEL_VALIDATE(out, "kernels.matmul_nt");
  QPINN_CHECK_SHAPE(a.rank() == 2 && b.rank() == 2,
                    "matmul_nt requires rank-2 operands");
  QPINN_CHECK_SHAPE(a.cols() == b.cols(),
                    "matmul_nt dimension mismatch: " +
                        shape_to_string(a.shape()) + " x " +
                        shape_to_string(b.shape()) + "^T");
  const std::int64_t n = a.rows(), k = a.cols(), m = b.rows();
  QPINN_CHECK_SHAPE(out.rank() == 2 && out.rows() == n && out.cols() == m,
                    "matmul_nt output shape mismatch");
  const double* pa = a.data();
  const double* pb = b.data();
  double* po = out.data();
  std::fill(po, po + n * m, 0.0);
  auto* fn = simd::active().matmul_nt_rows;
  parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end) {
        fn(pa, pb, po, static_cast<std::int64_t>(begin),
           static_cast<std::int64_t>(end), k, m);
      },
      matmul_grain(k * m));
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  QPINN_CHECK_SHAPE(a.rank() == 2 && b.rank() == 2,
                    "matmul_nt requires rank-2 operands");
  Tensor out = Tensor::uninitialized(Shape{a.rows(), b.rows()});
  matmul_nt_into(out, a, b);
  return out;
}

void transpose_into(Tensor& out, const Tensor& a) {
  QPINN_KERNEL_VALIDATE(a, "kernels.transpose");
  QPINN_KERNEL_VALIDATE(out, "kernels.transpose");
  QPINN_CHECK_SHAPE(a.rank() == 2, "transpose requires a rank-2 tensor");
  const std::int64_t n = a.rows(), m = a.cols();
  QPINN_CHECK_SHAPE(out.rank() == 2 && out.rows() == m && out.cols() == n,
                    "transpose output shape mismatch");
  const double* pa = a.data();
  double* po = out.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < m; ++j) po[j * n + i] = pa[i * m + j];
  }
}

Tensor transpose(const Tensor& a) {
  QPINN_CHECK_SHAPE(a.rank() == 2, "transpose requires a rank-2 tensor");
  Tensor out = Tensor::uninitialized(Shape{a.cols(), a.rows()});
  transpose_into(out, a);
  return out;
}

namespace {

double sum_total(const Tensor& a) {
  QPINN_KERNEL_VALIDATE(a, "kernels.sum_all");
  const double* p = a.data();
  const std::size_t n = static_cast<std::size_t>(a.numel());
  auto* fn = simd::active().sum;
  return parallel_reduce<double>(
      n, 0.0,
      [&](std::size_t begin, std::size_t end, double acc) {
        return acc + fn(p + begin, end - begin);
      },
      [](double x, double y) { return x + y; });
}

}  // namespace

Tensor sum_all(const Tensor& a) { return Tensor::scalar(sum_total(a)); }

void sum_all_into(Tensor& out, const Tensor& a) {
  QPINN_KERNEL_VALIDATE(out, "kernels.sum_all");
  QPINN_CHECK_SHAPE(out.numel() == 1, "sum_all output must be scalar");
  out.data()[0] = sum_total(a);
}

Tensor mean_all(const Tensor& a) {
  return scale(sum_all(a), 1.0 / static_cast<double>(a.numel()));
}

void mean_all_into(Tensor& out, const Tensor& a) {
  QPINN_KERNEL_VALIDATE(out, "kernels.mean_all");
  QPINN_CHECK_SHAPE(out.numel() == 1, "mean_all output must be scalar");
  // Same expression order as mean_all (scale computes s * total).
  out.data()[0] = (1.0 / static_cast<double>(a.numel())) * sum_total(a);
}

Tensor sum_to(const Tensor& a, const Shape& target) {
  QPINN_KERNEL_VALIDATE(a, "kernels.sum_to");
  // Shapes equal: still a fresh buffer. Returning `a` itself would alias
  // the caller's storage on exactly one path while every other path
  // allocates — and an in-place mutation through the "result" (e.g. the
  // backward pass accumulating gradients) would silently corrupt the
  // source tensor.
  if (a.shape() == target) return a.clone();
  Tensor out(target);
  sum_to_into(out, a);
  return out;
}

void sum_to_into(Tensor& out, const Tensor& a) {
  QPINN_KERNEL_VALIDATE(a, "kernels.sum_to");
  QPINN_KERNEL_VALIDATE(out, "kernels.sum_to");
  const Shape& target = out.shape();
  if (a.shape() == target) {
    copy_into(out, a);
    return;
  }
  QPINN_CHECK_SHAPE(broadcastable_to(target, a.shape()),
                    "sum_to target " + shape_to_string(target) +
                        " is not broadcast-compatible with " +
                        shape_to_string(a.shape()));
  const std::size_t rank = a.shape().size();
  const auto sa = row_major_strides(a.shape());
  const auto st = broadcast_strides(target, rank);
  const double* pa = a.data();
  double* po = out.data();
  const std::int64_t n = a.numel();

  // Fast path: rank-2 input collapsing rows into a row vector ({1, m} or
  // {m}) — the bias-gradient pattern, dominant in backward passes. Chunked
  // partial rows combine in fixed chunk order, so the result is
  // deterministic regardless of thread count.
  const bool row_target =
      a.rank() == 2 &&
      ((target.size() == 1 && target[0] == a.cols()) ||
       (target.size() == 2 && target[0] == 1 && target[1] == a.cols()));
  if (row_target) {
    const std::size_t rows = static_cast<std::size_t>(a.rows());
    const std::size_t cols = static_cast<std::size_t>(a.cols());
    auto* fn = simd::active().acc_add;
    std::vector<double> total = parallel_reduce<std::vector<double>>(
        rows, std::vector<double>(cols, 0.0),
        [&](std::size_t begin, std::size_t end, std::vector<double> acc) {
          for (std::size_t r = begin; r < end; ++r) {
            fn(acc.data(), pa + r * cols, cols);
          }
          return acc;
        },
        [](std::vector<double> x, const std::vector<double>& y) {
          for (std::size_t c = 0; c < x.size(); ++c) x[c] += y[c];
          return x;
        },
        /*grain=*/64);
    std::copy(total.begin(), total.end(), po);
    return;
  }

  // General case: serial accumulation — outputs may collide across input
  // elements, so the (possibly dirty) output is zeroed first.
  std::fill(po, po + out.numel(), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t rem = i;
    std::int64_t it = 0;
    for (std::size_t d = 0; d < rank; ++d) {
      const std::int64_t coord = rem / sa[d];
      rem -= coord * sa[d];
      it += coord * st[d];
    }
    po[it] += pa[i];
  }
}

Tensor broadcast_to(const Tensor& a, const Shape& target) {
  QPINN_KERNEL_VALIDATE(a, "kernels.broadcast_to");
  // Fresh storage on the shapes-equal path too; see sum_to.
  if (a.shape() == target) return a.clone();
  Tensor out = Tensor::uninitialized(target);
  broadcast_to_into(out, a);
  return out;
}

void broadcast_to_into(Tensor& out, const Tensor& a) {
  QPINN_KERNEL_VALIDATE(a, "kernels.broadcast_to");
  QPINN_KERNEL_VALIDATE(out, "kernels.broadcast_to");
  const Shape& target = out.shape();
  if (a.shape() == target) {
    copy_into(out, a);
    return;
  }
  QPINN_CHECK_SHAPE(broadcastable_to(a.shape(), target),
                    "cannot broadcast " + shape_to_string(a.shape()) + " to " +
                        shape_to_string(target));
  const std::size_t rank = target.size();
  const auto sa = broadcast_strides(a.shape(), rank);
  const auto so = row_major_strides(target);
  const double* pa = a.data();
  double* po = out.data();
  const std::size_t n = static_cast<std::size_t>(out.numel());
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      std::int64_t rem = static_cast<std::int64_t>(i);
      std::int64_t ia = 0;
      for (std::size_t d = 0; d < rank; ++d) {
        const std::int64_t coord = rem / so[d];
        rem -= coord * so[d];
        ia += coord * sa[d];
      }
      po[i] = pa[ia];
    }
  });
}

void concat_cols_into(Tensor& out, const std::vector<Tensor>& parts) {
  QPINN_CHECK(!parts.empty(), "concat_cols needs at least one tensor");
  QPINN_KERNEL_VALIDATE(out, "kernels.concat_cols");
  const std::int64_t rows = parts.front().rows();
  std::int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    QPINN_CHECK_SHAPE(p.rank() == 2 && p.rows() == rows,
                      "concat_cols requires rank-2 tensors with equal rows");
    total_cols += p.cols();
  }
  QPINN_CHECK_SHAPE(out.rank() == 2 && out.rows() == rows &&
                        out.cols() == total_cols,
                    "concat_cols output shape mismatch");
  double* po = out.data();
  std::int64_t col_offset = 0;
  for (const Tensor& p : parts) {
    const double* pp = p.data();
    const std::int64_t pc = p.cols();
    for (std::int64_t r = 0; r < rows; ++r) {
      std::copy(pp + r * pc, pp + (r + 1) * pc,
                po + r * total_cols + col_offset);
    }
    col_offset += pc;
  }
}

Tensor concat_cols(const std::vector<Tensor>& parts) {
  QPINN_CHECK(!parts.empty(), "concat_cols needs at least one tensor");
  std::int64_t total_cols = 0;
  for (const Tensor& p : parts) total_cols += p.cols();
  Tensor out = Tensor::uninitialized(Shape{parts.front().rows(), total_cols});
  concat_cols_into(out, parts);
  return out;
}

Tensor slice_cols(const Tensor& a, std::int64_t c0, std::int64_t c1) {
  QPINN_KERNEL_VALIDATE(a, "kernels.slice_cols");
  QPINN_CHECK_SHAPE(a.rank() == 2, "slice_cols requires a rank-2 tensor");
  QPINN_CHECK_SHAPE(0 <= c0 && c0 < c1 && c1 <= a.cols(),
                    "slice_cols range [" + std::to_string(c0) + ", " +
                        std::to_string(c1) + ") invalid for " +
                        shape_to_string(a.shape()));
  Tensor out = Tensor::uninitialized(Shape{a.rows(), c1 - c0});
  slice_cols_into(out, a, c0, c1);
  return out;
}

void slice_cols_into(Tensor& out, const Tensor& a, std::int64_t c0,
                     std::int64_t c1) {
  QPINN_KERNEL_VALIDATE(a, "kernels.slice_cols");
  QPINN_KERNEL_VALIDATE(out, "kernels.slice_cols");
  QPINN_CHECK_SHAPE(a.rank() == 2, "slice_cols requires a rank-2 tensor");
  QPINN_CHECK_SHAPE(0 <= c0 && c0 < c1 && c1 <= a.cols(),
                    "slice_cols range invalid");
  const std::int64_t rows = a.rows(), cols = a.cols(), width = c1 - c0;
  QPINN_CHECK_SHAPE(out.rank() == 2 && out.rows() == rows &&
                        out.cols() == width,
                    "slice_cols output shape mismatch");
  const double* pa = a.data();
  double* po = out.data();
  for (std::int64_t r = 0; r < rows; ++r) {
    std::copy(pa + r * cols + c0, pa + r * cols + c1, po + r * width);
  }
}

Tensor slice_rows(const Tensor& a, std::int64_t r0, std::int64_t r1) {
  QPINN_KERNEL_VALIDATE(a, "kernels.slice_rows");
  QPINN_CHECK_SHAPE(a.rank() == 2, "slice_rows requires a rank-2 tensor");
  QPINN_CHECK_SHAPE(0 <= r0 && r0 < r1 && r1 <= a.rows(),
                    "slice_rows range [" + std::to_string(r0) + ", " +
                        std::to_string(r1) + ") invalid for " +
                        shape_to_string(a.shape()));
  Tensor out = Tensor::uninitialized(Shape{r1 - r0, a.cols()});
  slice_rows_into(out, a, r0, r1);
  return out;
}

void slice_rows_into(Tensor& out, const Tensor& a, std::int64_t r0,
                     std::int64_t r1) {
  QPINN_KERNEL_VALIDATE(a, "kernels.slice_rows");
  QPINN_KERNEL_VALIDATE(out, "kernels.slice_rows");
  QPINN_CHECK_SHAPE(a.rank() == 2, "slice_rows requires a rank-2 tensor");
  QPINN_CHECK_SHAPE(0 <= r0 && r0 < r1 && r1 <= a.rows(),
                    "slice_rows range invalid");
  const std::int64_t cols = a.cols();
  QPINN_CHECK_SHAPE(out.rank() == 2 && out.rows() == r1 - r0 &&
                        out.cols() == cols,
                    "slice_rows output shape mismatch");
  std::copy(a.data() + r0 * cols, a.data() + r1 * cols, out.data());
}

void concat_rows_into(Tensor& out, const std::vector<Tensor>& parts) {
  QPINN_CHECK(!parts.empty(), "concat_rows needs at least one tensor");
  QPINN_KERNEL_VALIDATE(out, "kernels.concat_rows");
  const std::int64_t cols = parts.front().cols();
  std::int64_t total_rows = 0;
  for (const Tensor& p : parts) {
    QPINN_CHECK_SHAPE(p.rank() == 2 && p.cols() == cols,
                      "concat_rows requires rank-2 tensors with equal cols");
    total_rows += p.rows();
  }
  QPINN_CHECK_SHAPE(out.rank() == 2 && out.rows() == total_rows &&
                        out.cols() == cols,
                    "concat_rows output shape mismatch");
  double* po = out.data();
  for (const Tensor& p : parts) {
    std::copy(p.data(), p.data() + p.numel(), po);
    po += p.numel();
  }
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  QPINN_CHECK(!parts.empty(), "concat_rows needs at least one tensor");
  std::int64_t total_rows = 0;
  for (const Tensor& p : parts) total_rows += p.rows();
  Tensor out = Tensor::uninitialized(Shape{total_rows, parts.front().cols()});
  concat_rows_into(out, parts);
  return out;
}

void axpy_inplace(Tensor& dst, double s, const Tensor& src) {
  QPINN_KERNEL_VALIDATE(dst, "kernels.axpy_inplace");
  QPINN_KERNEL_VALIDATE(src, "kernels.axpy_inplace");
  QPINN_CHECK_SHAPE(dst.same_shape(src), "axpy_inplace shape mismatch");
  double* pd = dst.data();
  const double* ps = src.data();
  const std::size_t n = static_cast<std::size_t>(dst.numel());
  auto* fn = simd::active().axpy;
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(pd + begin, s, ps + begin, end - begin);
  });
}

void scale_inplace(Tensor& dst, double s) {
  QPINN_KERNEL_VALIDATE(dst, "kernels.scale_inplace");
  double* pd = dst.data();
  const std::size_t n = static_cast<std::size_t>(dst.numel());
  auto* fn = simd::active().scale_inplace;
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(pd + begin, s, end - begin);
  });
}

void axpby_inplace(Tensor& dst, double a, double b, const Tensor& src) {
  QPINN_KERNEL_VALIDATE(dst, "kernels.axpby_inplace");
  QPINN_KERNEL_VALIDATE(src, "kernels.axpby_inplace");
  QPINN_CHECK_SHAPE(dst.same_shape(src), "axpby_inplace shape mismatch");
  double* pd = dst.data();
  const double* ps = src.data();
  const std::size_t n = static_cast<std::size_t>(dst.numel());
  auto* fn = simd::active().axpby;
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(pd + begin, a, b, ps + begin, end - begin);
  });
}

void copy_into(Tensor& dst, const Tensor& src) {
  QPINN_KERNEL_VALIDATE(dst, "kernels.copy_into");
  QPINN_KERNEL_VALIDATE(src, "kernels.copy_into");
  QPINN_CHECK_SHAPE(dst.same_shape(src), "copy_into shape mismatch");
  std::copy(src.data(), src.data() + src.numel(), dst.data());
}

void adam_step_inplace(Tensor& param, const Tensor& grad, Tensor& m,
                       Tensor& v, const AdamStepConfig& cfg) {
  QPINN_KERNEL_VALIDATE(param, "kernels.adam_step_inplace");
  QPINN_KERNEL_VALIDATE(grad, "kernels.adam_step_inplace");
  QPINN_KERNEL_VALIDATE(m, "kernels.adam_step_inplace");
  QPINN_KERNEL_VALIDATE(v, "kernels.adam_step_inplace");
  QPINN_CHECK_SHAPE(param.same_shape(grad) && param.same_shape(m) &&
                        param.same_shape(v),
                    "adam_step_inplace shape mismatch");
  simd::AdamParams sp;
  sp.lr = cfg.lr;
  sp.beta1 = cfg.beta1;
  sp.beta2 = cfg.beta2;
  sp.eps = cfg.eps;
  sp.weight_decay = cfg.weight_decay;
  sp.bias_corr1 = cfg.bias_corr1;
  sp.bias_corr2 = cfg.bias_corr2;
  sp.decoupled = cfg.decoupled;
  double* pp = param.data();
  const double* pg = grad.data();
  double* pm = m.data();
  double* pv = v.data();
  const std::size_t n = static_cast<std::size_t>(param.numel());
  auto* fn = simd::active().adam;
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(pp + begin, pg + begin, pm + begin, pv + begin, end - begin, sp);
  });
}

double dot(const Tensor& a, const Tensor& b) {
  QPINN_KERNEL_VALIDATE(a, "kernels.dot");
  QPINN_KERNEL_VALIDATE(b, "kernels.dot");
  QPINN_CHECK_SHAPE(a.same_shape(b), "dot shape mismatch");
  const double* pa = a.data();
  const double* pb = b.data();
  const std::size_t n = static_cast<std::size_t>(a.numel());
  auto* fn = simd::active().dot;
  // parallel_reduce combines per-chunk partials in fixed chunk order, so
  // the rounding is deterministic across runs for a given thread count.
  return parallel_reduce<double>(
      n, 0.0,
      [&](std::size_t begin, std::size_t end, double acc) {
        return acc + fn(pa + begin, pb + begin, end - begin);
      },
      [](double x, double y) { return x + y; });
}

double norm2(const Tensor& a) { return std::sqrt(dot(a, a)); }

}  // namespace qpinn::kernels

// AVX2+FMA instantiation of the SIMD kernel templates (256-bit,
// 4 doubles). Compiled with -mavx2 -mfma (see src/CMakeLists.txt), so
// nothing in this TU may run before dispatch verifies cpu support — the
// only entry point is avx2_table(), called by simd.cpp after
// __builtin_cpu_supports("avx2")/"fma" both pass.
#include "tensor/simd.hpp"

#if defined(QPINN_SIMD_X86) && defined(__AVX2__) && defined(__FMA__)

namespace qpinn::simd::detail {

const KernelTable* avx2_table() {
  static const KernelTable table = make_table<VecAvx2>(Isa::kAvx2, "avx2");
  return &table;
}

const KernelTableF* avx2_table_f32() {
  static const KernelTableF table = make_table<VecAvx2F>(Isa::kAvx2, "avx2");
  return &table;
}

}  // namespace qpinn::simd::detail

#endif  // QPINN_SIMD_X86 && __AVX2__ && __FMA__

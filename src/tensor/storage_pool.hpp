// Size-bucketed recycling pool behind Tensor storage allocation.
//
// Every Tensor buffer in qpinn is a shared std::vector<double>. A training
// step builds and tears down a tape of thousands of short-lived tensors
// whose sizes repeat exactly from step to step, so instead of paying the
// global allocator per tensor, released buffers park in per-size-class free
// lists and the next acquire of a compatible size reuses them. Buffers are
// handed out exclusively (a pooled buffer is never shared between two live
// tensors) and zero-filled on reuse, so Tensor semantics are unchanged —
// the pool is purely an allocation strategy, observable only through its
// stats counters and the profiler.
//
// Concurrency: acquire/release take one short lock on the bucket table;
// buffers themselves are touched only by their owning tensor. Safe to call
// from pool worker threads (kernels allocate their outputs before
// dispatching, but backward closures run wherever the caller runs).
//
// Escape hatch: set QPINN_NO_POOL=1 to fall back to plain heap allocation
// (every acquire is a fresh vector, every release frees); useful for
// bisecting pool bugs and for measuring the allocation win (see
// bench/bench_report.cpp). QPINN_POOL_MAX_MB caps the bytes parked in free
// lists (default 512); beyond the cap released buffers are freed outright.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

namespace qpinn {

/// Point-in-time counters. Monotonic fields survive reset_stats() = false;
/// all are process-lifetime totals until reset_stats() zeroes them.
struct StoragePoolStats {
  std::uint64_t heap_allocations = 0;  ///< buffers built fresh from the heap
  std::uint64_t pool_reuses = 0;       ///< acquires served from a free list
  std::uint64_t adopted = 0;           ///< caller-built vectors wrapped
  std::uint64_t returns = 0;           ///< releases parked in a free list
  std::uint64_t discards = 0;          ///< releases freed (cap hit/pool off)
  std::uint64_t free_buffers = 0;      ///< buffers currently parked
  std::uint64_t free_bytes = 0;        ///< capacity bytes currently parked
};

namespace detail {
struct PoolCore;
}  // namespace detail

class StoragePool {
 public:
  /// Process-wide pool used by all Tensor storage allocation.
  static StoragePool& instance();

  StoragePool(const StoragePool&) = delete;
  StoragePool& operator=(const StoragePool&) = delete;

  /// An exclusively owned buffer of exactly `n` elements. Zero-filled when
  /// `zero` (the Tensor constructor contract); with zero=false the contents
  /// are unspecified and the caller must overwrite every element (clone()).
  std::shared_ptr<std::vector<double>> acquire(std::size_t n,
                                               bool zero = true);

  /// Float twin of acquire(), backed by separate fp32 free lists — the
  /// mixed-precision plan shadows (src/autodiff/precision.cpp) recycle
  /// through here instead of the heap. Shares the enabled flag, byte cap,
  /// and stats counters with the fp64 buckets.
  std::shared_ptr<std::vector<float>> acquire_f32(std::size_t n,
                                                  bool zero = true);

  /// Wraps a caller-constructed vector (Tensor::from_vector) so its buffer
  /// recycles through the pool on release like any acquired one.
  std::shared_ptr<std::vector<double>> adopt(std::vector<double> values);

  /// False when QPINN_NO_POOL was set at startup or set_enabled(false) was
  /// called: acquires allocate fresh and releases free immediately.
  bool enabled() const;
  /// Runtime toggle for tests and benchmarks (e.g. measuring the allocation
  /// win). Outstanding buffers release safely regardless of the setting.
  void set_enabled(bool on);

  StoragePoolStats stats() const;
  /// Zeroes the monotonic counters (free_buffers/free_bytes reflect the
  /// actual free lists and are unaffected).
  void reset_stats();
  /// Frees every parked buffer.
  void trim();

 private:
  StoragePool();

  std::shared_ptr<detail::PoolCore> core_;
};

}  // namespace qpinn

// SSE2 instantiation of the SIMD kernel templates (128-bit, 2 doubles).
// SSE2 is part of the x86-64 baseline, so this TU needs no extra target
// flags beyond -ffp-contract=off; it is only added to the build on x86.
#include "tensor/simd.hpp"

#if defined(QPINN_SIMD_X86) && defined(__SSE2__)

namespace qpinn::simd::detail {

const KernelTable* sse2_table() {
  static const KernelTable table = make_table<VecSse2>(Isa::kSse2, "sse2");
  return &table;
}

const KernelTableF* sse2_table_f32() {
  static const KernelTableF table = make_table<VecSse2F>(Isa::kSse2, "sse2");
  return &table;
}

}  // namespace qpinn::simd::detail

#endif  // QPINN_SIMD_X86 && __SSE2__

// Shapes and broadcasting rules.
//
// qpinn tensors are dense, row-major, double precision. Shapes are small
// vectors of extents; broadcasting follows NumPy semantics (align trailing
// dimensions, extents must match or be 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qpinn {

using Shape = std::vector<std::int64_t>;

/// Product of extents; the scalar shape {} has numel 1.
std::int64_t numel(const Shape& shape);

/// "[2, 3]" style rendering for diagnostics.
std::string shape_to_string(const Shape& shape);

/// Row-major strides (in elements). Scalars get an empty stride vector.
std::vector<std::int64_t> row_major_strides(const Shape& shape);

/// NumPy-style broadcast of two shapes; throws ShapeError when incompatible.
Shape broadcast_shapes(const Shape& a, const Shape& b);

/// True when `from` can broadcast to `to`.
bool broadcastable_to(const Shape& from, const Shape& to);

/// Validates that every extent is positive; throws ShapeError otherwise.
void check_shape_valid(const Shape& shape);

}  // namespace qpinn

#include "tensor/storage_pool.hpp"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <utility>

#include "util/env.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace qpinn {

namespace {

// Smallest tracked class: 8 doubles (64 bytes). Anything smaller is cheap
// enough that recycling it is not worth a bucket entry.
constexpr std::size_t kMinClass = 8;

/// Smallest power-of-two class that can hold `n` elements.
std::size_t class_ceil(std::size_t n) {
  std::size_t c = kMinClass;
  while (c < n) c <<= 1;
  return c;
}

/// Largest class a buffer of capacity `cap` can serve, or 0 when the buffer
/// is below the smallest tracked class.
std::size_t class_floor(std::size_t cap) {
  if (cap < kMinClass) return 0;
  std::size_t c = kMinClass;
  while ((c << 1) <= cap) c <<= 1;
  return c;
}

}  // namespace

namespace detail {

/// Shared pool state. Held by shared_ptr from both the StoragePool facade
/// and every outstanding buffer's holder, so releases remain safe during
/// and after static destruction of the facade.
struct PoolCore {
  mutable Mutex mutex;
  std::unordered_map<std::size_t, std::vector<std::vector<double>>> buckets
      QPINN_GUARDED_BY(mutex);
  std::unordered_map<std::size_t, std::vector<std::vector<float>>> buckets_f32
      QPINN_GUARDED_BY(mutex);
  std::size_t free_buffers QPINN_GUARDED_BY(mutex) = 0;
  std::size_t free_bytes QPINN_GUARDED_BY(mutex) = 0;
  std::size_t max_free_bytes = 0;

  std::atomic<bool> enabled{true};
  std::atomic<std::uint64_t> heap_allocations{0};
  std::atomic<std::uint64_t> pool_reuses{0};
  std::atomic<std::uint64_t> adopted{0};
  std::atomic<std::uint64_t> returns{0};
  std::atomic<std::uint64_t> discards{0};

  /// Pops a parked buffer of class `cls` into `out`; false when none.
  bool take(std::size_t cls, std::vector<double>& out) {
    MutexLock lock(mutex);
    auto it = buckets.find(cls);
    if (it == buckets.end() || it->second.empty()) return false;
    out = std::move(it->second.back());
    it->second.pop_back();
    --free_buffers;
    free_bytes -= out.capacity() * sizeof(double);
    return true;
  }

  /// Parks a released buffer, or lets it free when the pool is off, the
  /// buffer is below the smallest class, or the byte cap is reached.
  void give(std::vector<double>&& v) {
    const std::size_t cls = class_floor(v.capacity());
    const std::size_t bytes = v.capacity() * sizeof(double);
    if (cls == 0 || !enabled.load(std::memory_order_relaxed)) {
      discards.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    {
      MutexLock lock(mutex);
      if (free_bytes + bytes <= max_free_bytes) {
        buckets[cls].push_back(std::move(v));
        ++free_buffers;
        free_bytes += bytes;
        returns.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    discards.fetch_add(1, std::memory_order_relaxed);
  }

  /// fp32 twins of take/give over the separate float buckets; same class
  /// scheme (class sizes are element counts, not bytes) and same caps.
  bool take_f32(std::size_t cls, std::vector<float>& out) {
    MutexLock lock(mutex);
    auto it = buckets_f32.find(cls);
    if (it == buckets_f32.end() || it->second.empty()) return false;
    out = std::move(it->second.back());
    it->second.pop_back();
    --free_buffers;
    free_bytes -= out.capacity() * sizeof(float);
    return true;
  }

  void give_f32(std::vector<float>&& v) {
    const std::size_t cls = class_floor(v.capacity());
    const std::size_t bytes = v.capacity() * sizeof(float);
    if (cls == 0 || !enabled.load(std::memory_order_relaxed)) {
      discards.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    {
      MutexLock lock(mutex);
      if (free_bytes + bytes <= max_free_bytes) {
        buckets_f32[cls].push_back(std::move(v));
        ++free_buffers;
        free_bytes += bytes;
        returns.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    discards.fetch_add(1, std::memory_order_relaxed);
  }
};

namespace {

/// Owner object aliased by the storage shared_ptr: destruction of the last
/// reference recycles the vector instead of freeing it.
struct PooledHolder {
  std::shared_ptr<PoolCore> core;
  std::vector<double> v;

  PooledHolder() = default;
  PooledHolder(const PooledHolder&) = delete;
  PooledHolder& operator=(const PooledHolder&) = delete;
  ~PooledHolder() {
    if (core) core->give(std::move(v));
  }
};

/// Float twin of PooledHolder.
struct PooledHolderF {
  std::shared_ptr<PoolCore> core;
  std::vector<float> v;

  PooledHolderF() = default;
  PooledHolderF(const PooledHolderF&) = delete;
  PooledHolderF& operator=(const PooledHolderF&) = delete;
  ~PooledHolderF() {
    if (core) core->give_f32(std::move(v));
  }
};

}  // namespace

}  // namespace detail

StoragePool::StoragePool() : core_(std::make_shared<detail::PoolCore>()) {
  core_->enabled.store(!env_flag("QPINN_NO_POOL"), std::memory_order_relaxed);
  const long long mb = std::max(0LL, env_int("QPINN_POOL_MAX_MB", 512));
  core_->max_free_bytes = static_cast<std::size_t>(mb) * 1024 * 1024;
}

StoragePool& StoragePool::instance() {
  static StoragePool pool;
  return pool;
}

std::shared_ptr<std::vector<double>> StoragePool::acquire(std::size_t n,
                                                          bool zero) {
  detail::PoolCore& core = *core_;
  if (!core.enabled.load(std::memory_order_relaxed)) {
    core.heap_allocations.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<std::vector<double>>(n, 0.0);
  }
  auto holder = std::make_shared<detail::PooledHolder>();
  const std::size_t cls = class_ceil(std::max(n, std::size_t{1}));
  if (core.take(cls, holder->v)) {
    core.pool_reuses.fetch_add(1, std::memory_order_relaxed);
    if (zero) {
      holder->v.assign(n, 0.0);
    } else {
      holder->v.resize(n);
    }
  } else {
    core.heap_allocations.fetch_add(1, std::memory_order_relaxed);
    holder->v.reserve(cls);
    holder->v.resize(n, 0.0);
  }
  holder->core = core_;
  return std::shared_ptr<std::vector<double>>(holder, &holder->v);
}

std::shared_ptr<std::vector<float>> StoragePool::acquire_f32(std::size_t n,
                                                             bool zero) {
  detail::PoolCore& core = *core_;
  if (!core.enabled.load(std::memory_order_relaxed)) {
    core.heap_allocations.fetch_add(1, std::memory_order_relaxed);
    return std::make_shared<std::vector<float>>(n, 0.0F);
  }
  auto holder = std::make_shared<detail::PooledHolderF>();
  const std::size_t cls = class_ceil(std::max(n, std::size_t{1}));
  if (core.take_f32(cls, holder->v)) {
    core.pool_reuses.fetch_add(1, std::memory_order_relaxed);
    if (zero) {
      holder->v.assign(n, 0.0F);
    } else {
      holder->v.resize(n);
    }
  } else {
    core.heap_allocations.fetch_add(1, std::memory_order_relaxed);
    holder->v.reserve(cls);
    holder->v.resize(n, 0.0F);
  }
  holder->core = core_;
  return std::shared_ptr<std::vector<float>>(holder, &holder->v);
}

std::shared_ptr<std::vector<double>> StoragePool::adopt(
    std::vector<double> values) {
  detail::PoolCore& core = *core_;
  core.adopted.fetch_add(1, std::memory_order_relaxed);
  if (!core.enabled.load(std::memory_order_relaxed)) {
    return std::make_shared<std::vector<double>>(std::move(values));
  }
  auto holder = std::make_shared<detail::PooledHolder>();
  holder->v = std::move(values);
  holder->core = core_;
  return std::shared_ptr<std::vector<double>>(holder, &holder->v);
}

bool StoragePool::enabled() const {
  return core_->enabled.load(std::memory_order_relaxed);
}

void StoragePool::set_enabled(bool on) {
  core_->enabled.store(on, std::memory_order_relaxed);
  if (!on) trim();
}

StoragePoolStats StoragePool::stats() const {
  const detail::PoolCore& core = *core_;
  StoragePoolStats s;
  s.heap_allocations = core.heap_allocations.load(std::memory_order_relaxed);
  s.pool_reuses = core.pool_reuses.load(std::memory_order_relaxed);
  s.adopted = core.adopted.load(std::memory_order_relaxed);
  s.returns = core.returns.load(std::memory_order_relaxed);
  s.discards = core.discards.load(std::memory_order_relaxed);
  MutexLock lock(core.mutex);
  s.free_buffers = core.free_buffers;
  s.free_bytes = core.free_bytes;
  return s;
}

void StoragePool::reset_stats() {
  detail::PoolCore& core = *core_;
  core.heap_allocations.store(0, std::memory_order_relaxed);
  core.pool_reuses.store(0, std::memory_order_relaxed);
  core.adopted.store(0, std::memory_order_relaxed);
  core.returns.store(0, std::memory_order_relaxed);
  core.discards.store(0, std::memory_order_relaxed);
}

void StoragePool::trim() {
  detail::PoolCore& core = *core_;
  // Swap the buckets out so the (potentially large) frees happen unlocked.
  std::unordered_map<std::size_t, std::vector<std::vector<double>>> drained;
  std::unordered_map<std::size_t, std::vector<std::vector<float>>> drained_f;
  {
    MutexLock lock(core.mutex);
    drained.swap(core.buckets);
    drained_f.swap(core.buckets_f32);
    core.free_buffers = 0;
    core.free_bytes = 0;
  }
}

}  // namespace qpinn

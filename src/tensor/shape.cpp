#include "tensor/shape.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace qpinn {

std::int64_t numel(const Shape& shape) {
  std::int64_t n = 1;
  for (std::int64_t d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

std::vector<std::int64_t> row_major_strides(const Shape& shape) {
  std::vector<std::int64_t> strides(shape.size());
  std::int64_t acc = 1;
  for (std::size_t i = shape.size(); i-- > 0;) {
    strides[i] = acc;
    acc *= shape[i];
  }
  return strides;
}

Shape broadcast_shapes(const Shape& a, const Shape& b) {
  const std::size_t rank = std::max(a.size(), b.size());
  Shape out(rank);
  for (std::size_t i = 0; i < rank; ++i) {
    const std::int64_t da =
        i < rank - a.size() ? 1 : a[i - (rank - a.size())];
    const std::int64_t db =
        i < rank - b.size() ? 1 : b[i - (rank - b.size())];
    if (da == db || da == 1 || db == 1) {
      out[i] = std::max(da, db);
    } else {
      throw ShapeError("cannot broadcast " + shape_to_string(a) + " with " +
                       shape_to_string(b));
    }
  }
  return out;
}

bool broadcastable_to(const Shape& from, const Shape& to) {
  if (from.size() > to.size()) return false;
  for (std::size_t i = 0; i < from.size(); ++i) {
    const std::int64_t df = from[from.size() - 1 - i];
    const std::int64_t dt = to[to.size() - 1 - i];
    if (df != dt && df != 1) return false;
  }
  return true;
}

void check_shape_valid(const Shape& shape) {
  for (std::int64_t d : shape) {
    if (d <= 0) {
      throw ShapeError("invalid shape " + shape_to_string(shape) +
                       " (all extents must be positive)");
    }
  }
}

}  // namespace qpinn

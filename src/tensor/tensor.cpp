#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "tensor/storage_pool.hpp"
#include "util/error.hpp"
#include "util/invariant.hpp"

namespace qpinn {

Tensor::Tensor() : Tensor(Shape{}) {}

Tensor::Tensor(Shape shape) {
  check_shape_valid(shape);
  shape_ = std::move(shape);
  numel_ = qpinn::numel(shape_);
  storage_ = StoragePool::instance().acquire(static_cast<std::size_t>(numel_));
}

Tensor Tensor::zeros(Shape shape) { return Tensor(std::move(shape)); }

Tensor Tensor::uninitialized(Shape shape) {
  check_shape_valid(shape);
  const std::int64_t n = qpinn::numel(shape);
  return Tensor(
      StoragePool::instance().acquire(static_cast<std::size_t>(n),
                                      /*zero=*/false),
      std::move(shape));
}

Tensor Tensor::ones(Shape shape) { return full(std::move(shape), 1.0); }

Tensor Tensor::full(Shape shape, double value) {
  Tensor t(std::move(shape));
  std::fill(t.storage_->begin(), t.storage_->end(), value);
  return t;
}

Tensor Tensor::scalar(double value) {
  Tensor t{Shape{}};
  (*t.storage_)[0] = value;
  return t;
}

Tensor Tensor::from_vector(std::vector<double> values, Shape shape) {
  check_shape_valid(shape);
  QPINN_CHECK_SHAPE(
      qpinn::numel(shape) == static_cast<std::int64_t>(values.size()),
      "from_vector: " + std::to_string(values.size()) +
          " values cannot fill shape " + shape_to_string(shape));
  return Tensor(StoragePool::instance().adopt(std::move(values)),
                std::move(shape));
}

Tensor::Tensor(std::shared_ptr<std::vector<double>> storage, Shape shape)
    : storage_(std::move(storage)),
      shape_(std::move(shape)),
      numel_(qpinn::numel(shape_)) {}

Tensor Tensor::rand(Shape shape, Rng& rng, double lo, double hi) {
  Tensor t(std::move(shape));
  for (auto& v : *t.storage_) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::randn(Shape shape, Rng& rng, double mean, double stddev) {
  Tensor t(std::move(shape));
  for (auto& v : *t.storage_) v = rng.normal(mean, stddev);
  return t;
}

Tensor Tensor::linspace(double lo, double hi, std::int64_t n) {
  QPINN_CHECK(n >= 2, "linspace needs at least two points");
  Tensor t(Shape{n});
  const double step = (hi - lo) / static_cast<double>(n - 1);
  for (std::int64_t i = 0; i < n; ++i) {
    (*t.storage_)[static_cast<std::size_t>(i)] =
        lo + step * static_cast<double>(i);
  }
  (*t.storage_)[static_cast<std::size_t>(n - 1)] = hi;  // exact endpoint
  return t;
}

Tensor Tensor::arange(std::int64_t n) {
  QPINN_CHECK(n >= 1, "arange needs n >= 1");
  Tensor t(Shape{n});
  for (std::int64_t i = 0; i < n; ++i) {
    (*t.storage_)[static_cast<std::size_t>(i)] = static_cast<double>(i);
  }
  return t;
}

std::int64_t Tensor::dim(std::int64_t axis) const {
  QPINN_CHECK_SHAPE(axis >= 0 && axis < rank(),
                    "dim(" + std::to_string(axis) + ") out of range for " +
                        shape_to_string(shape_));
  return shape_[static_cast<std::size_t>(axis)];
}

std::int64_t Tensor::rows() const {
  QPINN_CHECK_SHAPE(rank() == 2, "rows() requires a rank-2 tensor, got " +
                                     shape_to_string(shape_));
  return shape_[0];
}

std::int64_t Tensor::cols() const {
  QPINN_CHECK_SHAPE(rank() == 2, "cols() requires a rank-2 tensor, got " +
                                     shape_to_string(shape_));
  return shape_[1];
}

std::int64_t Tensor::check_index(std::int64_t i) const {
  QPINN_CHECK_SHAPE(i >= 0 && i < numel_,
                    "flat index " + std::to_string(i) + " out of range for " +
                        shape_to_string(shape_));
  return i;
}

double& Tensor::at(std::int64_t r, std::int64_t c) {
  QPINN_CHECK_SHAPE(rank() == 2, "at(r, c) requires a rank-2 tensor");
  QPINN_CHECK_SHAPE(r >= 0 && r < shape_[0] && c >= 0 && c < shape_[1],
                    "index (" + std::to_string(r) + ", " + std::to_string(c) +
                        ") out of range for " + shape_to_string(shape_));
  return (*storage_)[static_cast<std::size_t>(r * shape_[1] + c)];
}

double Tensor::at(std::int64_t r, std::int64_t c) const {
  return const_cast<Tensor*>(this)->at(r, c);
}

double Tensor::item() const {
  QPINN_CHECK_SHAPE(numel_ == 1, "item() requires exactly one element, got " +
                                     shape_to_string(shape_));
  return (*storage_)[0];
}

Tensor Tensor::reshape(Shape new_shape) const {
  check_shape_valid(new_shape);
  QPINN_CHECK_SHAPE(qpinn::numel(new_shape) == numel_,
                    "reshape " + shape_to_string(shape_) + " -> " +
                        shape_to_string(new_shape) + " changes element count");
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

Tensor Tensor::clone() const {
  Tensor t(StoragePool::instance().acquire(static_cast<std::size_t>(numel_),
                                           /*zero=*/false),
           shape_);
  std::copy(storage_->begin(), storage_->end(), t.storage_->begin());
  return t;
}

void Tensor::validate(const char* site) const {
  const char* violation = nullptr;
  if (!storage_) {
    violation = "no storage (moved-from or corrupted tensor)";
  } else if (numel_ != qpinn::numel(shape_)) {
    violation = "cached numel disagrees with the shape product";
  } else if (static_cast<std::size_t>(numel_) != storage_->size()) {
    violation = "storage size disagrees with the shape";
  } else {
    for (const std::int64_t extent : shape_) {
      if (extent <= 0) {
        violation = "non-positive extent";
        break;
      }
    }
  }
  if (violation != nullptr) {
    throw InvariantError(site, "storage",
                         std::string(violation) + " in tensor of shape " +
                             shape_to_string(shape_) + " (numel " +
                             std::to_string(numel_) + ")");
  }
}

bool Tensor::all_finite() const {
  for (double v : *storage_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

double Tensor::min() const {
  return *std::min_element(storage_->begin(), storage_->end());
}

double Tensor::max() const {
  return *std::max_element(storage_->begin(), storage_->end());
}

double Tensor::abs_max() const {
  double m = 0.0;
  for (double v : *storage_) m = std::max(m, std::abs(v));
  return m;
}

std::string Tensor::to_string(std::int64_t max_elements) const {
  std::ostringstream os;
  os << "Tensor" << shape_to_string(shape_) << " {";
  const std::int64_t shown = std::min(numel_, max_elements);
  for (std::int64_t i = 0; i < shown; ++i) {
    if (i > 0) os << ", ";
    os << (*storage_)[static_cast<std::size_t>(i)];
  }
  if (shown < numel_) os << ", ... (" << numel_ - shown << " more)";
  os << "}";
  return os.str();
}

}  // namespace qpinn

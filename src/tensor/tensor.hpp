// Dense, row-major, double-precision tensor with shared storage.
//
// Tensor is a cheap value type: copies share the underlying buffer
// (copy-on-explicit-clone). All qpinn kernels allocate fresh outputs; the
// only sanctioned in-place mutation is through data() by code that owns the
// tensor (e.g. optimizers updating parameters).
//
// Storage comes from tensor/storage_pool.hpp: released buffers recycle
// through size-bucketed free lists instead of the global allocator (set
// QPINN_NO_POOL=1 to disable). Pooling is invisible to Tensor semantics —
// a live buffer is always exclusively owned until shared by copies.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/shape.hpp"
#include "util/rng.hpp"

namespace qpinn {

class Tensor {
 public:
  /// Empty tensor (rank 0, one element, value 0) — a scalar zero.
  Tensor();

  /// Zero-initialized tensor of the given shape.
  explicit Tensor(Shape shape);

  // ---- factories -------------------------------------------------------
  static Tensor zeros(Shape shape);
  /// Unspecified contents — the caller must overwrite every element before
  /// any read. For kernels whose output is fully written (elementwise,
  /// broadcast, transpose); skips the zero-fill write pass, which is half
  /// the memory traffic of a memory-bound elementwise op.
  static Tensor uninitialized(Shape shape);
  static Tensor ones(Shape shape);
  static Tensor full(Shape shape, double value);
  static Tensor scalar(double value);
  /// Takes ownership of `values`; numel(shape) must equal values.size().
  static Tensor from_vector(std::vector<double> values, Shape shape);
  /// Uniform random in [lo, hi).
  static Tensor rand(Shape shape, Rng& rng, double lo = 0.0, double hi = 1.0);
  /// Gaussian with the given moments.
  static Tensor randn(Shape shape, Rng& rng, double mean = 0.0,
                      double stddev = 1.0);
  /// n evenly spaced values in [lo, hi] inclusive, shape {n}.
  static Tensor linspace(double lo, double hi, std::int64_t n);
  /// 0, 1, ..., n-1 as doubles, shape {n}.
  static Tensor arange(std::int64_t n);

  // ---- shape queries ----------------------------------------------------
  const Shape& shape() const { return shape_; }
  std::int64_t rank() const { return static_cast<std::int64_t>(shape_.size()); }
  std::int64_t numel() const { return numel_; }
  std::int64_t dim(std::int64_t axis) const;
  /// Rank-2 helpers; throw ShapeError when rank != 2.
  std::int64_t rows() const;
  std::int64_t cols() const;
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  // ---- element access ---------------------------------------------------
  double* data() { return storage_->data(); }
  const double* data() const { return storage_->data(); }
  double& operator[](std::int64_t i) { return (*storage_)[check_index(i)]; }
  double operator[](std::int64_t i) const { return (*storage_)[check_index(i)]; }
  /// 2-D access with bounds checks.
  double& at(std::int64_t r, std::int64_t c);
  double at(std::int64_t r, std::int64_t c) const;
  /// Value of a one-element tensor; throws ShapeError otherwise.
  double item() const;

  // ---- views & copies ---------------------------------------------------
  /// Shares storage; numel must be preserved.
  Tensor reshape(Shape new_shape) const;
  /// Deep copy with private storage.
  Tensor clone() const;
  /// True when storage is shared with `other`.
  bool shares_storage(const Tensor& other) const {
    return storage_ == other.storage_;
  }
  /// Number of owners of this tensor's storage (shared_ptr use count). The
  /// plan optimizer (autodiff/plan_passes.cpp) compares it against the
  /// plan-internal reference count to prove a buffer has no outside
  /// observers before re-binding it onto a shared arena slot.
  long storage_use_count() const { return storage_.use_count(); }

  // ---- diagnostics ------------------------------------------------------
  /// Storage/shape/stride agreement: storage present, every extent
  /// positive, cached numel == product of extents == buffer size. Always
  /// callable; kernels invoke it on their operands in checked builds
  /// (QPINN_CHECKED), where a violation — e.g. a moved-from tensor, or
  /// metadata scribbled over through data() — raises InvariantError naming
  /// `site`. See util/invariant.hpp.
  void validate(const char* site) const;
  bool all_finite() const;
  double min() const;
  double max() const;
  double abs_max() const;
  std::string to_string(std::int64_t max_elements = 24) const;

 private:
  /// Wraps already-acquired storage without touching the pool (used by
  /// from_vector so adoption is the only allocation event).
  Tensor(std::shared_ptr<std::vector<double>> storage, Shape shape);

  std::int64_t check_index(std::int64_t i) const;

  std::shared_ptr<std::vector<double>> storage_;
  Shape shape_;
  std::int64_t numel_ = 0;
};

}  // namespace qpinn

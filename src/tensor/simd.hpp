// SIMD layer: width-agnostic vector kernels with one-time runtime
// dispatch, templated on element type (double and float).
//
// This header is the ONLY place in the repository allowed to touch raw
// SIMD intrinsics (enforced by tools/qpinn_lint.py banned-intrinsics).
// Everything above it programs against two things:
//
//   1. A `KernelTableT<T>` of C-style function pointers (one table per
//      instruction-set variant and element type) covering the hot
//      kernels: contiguous elementwise arithmetic, row-broadcast
//      binaries, reductions, in-place BLAS-1 style updates, the fused
//      Adam sweep, and the matmul micro-kernels. `KernelTable` is the
//      fp64 table (`KernelTableT<double>`), `KernelTableF` the fp32 one.
//   2. `active()` / `active_f32()`, which return the tables selected
//      once at first use by runtime CPU detection (cpuid-backed
//      __builtin_cpu_supports on x86, compile-target NEON on aarch64),
//      overridable with the QPINN_SIMD environment variable
//      (off|scalar|sse2|avx2|neon) and, for tests, switchable at
//      runtime with force_isa(). Both element widths always dispatch to
//      the same ISA.
//
// Kernel implementations are written once as width- and element-
// agnostic templates over a small vector wrapper (VecScalar / VecSse2 /
// VecAvx2 / VecNeon for double, VecScalarF / VecSse2F / VecAvx2F /
// VecNeonF for float); per-ISA translation units (simd_scalar.cpp,
// simd_sse2.cpp, ...) instantiate them with the matching target flags,
// so no TU ever executes instructions its compile target does not
// guarantee without a prior runtime check. Scalar immediates cross the
// table ABI as double and are cast once at kernel entry (an identity
// cast for the fp64 tables, so fp64 behavior is unchanged).
//
// Bit-identity contract (fp64 tables): for the elementwise arithmetic
// kernels (bin_same/bin_row, neg, scale, add_scalar, square,
// reciprocal, sqrt, abs, relu, step, sign, tanh, bias_tanh, axpy,
// scale_inplace, axpby, acc_add, adam) the vector body performs exactly
// the lane-wise IEEE operation sequence of the scalar code and fringe
// elements run the identical scalar expressions, so results are
// bit-identical across every dispatch variant (the per-ISA TUs are
// compiled with -ffp-contract=off so the compiler cannot fuse a*b+c
// differently per target). tanh is a branchless polynomial
// implementation (tanh_lanes below) accurate to a few ulp of std::tanh
// but NOT bit-equal to it — the scalar fringe runs the same lane
// algorithm, never libm, so every variant (and every thread-count
// chunking) produces identical bits. Reductions (dot, sum, square_sum,
// weighted_square_sum) and the matmul micro-kernels reassociate and may
// use FMA, so they agree across variants only to rounding; they stay
// deterministic for a fixed variant. IEEE semantics are preserved
// everywhere: no operand value is skipped (0 * NaN stays NaN) and
// comparisons are ordered/non-signaling, so NaN takes the "else" branch
// exactly like the scalar ternaries.
//
// The fp32 tables keep the same per-variant bit-identity guarantees for
// the elementwise kernels (scalar fringe == vector lane expression, no
// FMA, same select semantics), but fp32 results are of course not
// comparable bit-for-bit with fp64 — mixed-precision consumers gate on
// tolerances instead (see src/autodiff/precision.hpp). The fp32
// reductions accumulate in double and return double, so loss sums keep
// fp64 accumulation even when the summed values are fp32.
#pragma once

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
#define QPINN_SIMD_X86 1
#include <immintrin.h>
#endif
#if defined(__aarch64__) && defined(__ARM_NEON)
#define QPINN_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace qpinn::simd {

// ---- dispatch surface ----------------------------------------------------

enum class Isa : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kNeon = 3 };

/// Index into KernelTableT::bin_same / bin_row.
enum BinOp : int { kAdd = 0, kSub = 1, kMul = 2, kDiv = 3, kNumBinOps = 4 };

/// Per-step constants of the fused Adam update (bias corrections are
/// precomputed by the caller: bias_corr1 = 1 - beta1^t, etc.). Always
/// fp64 — the optimizer state is master-precision regardless of what
/// the forward sweeps run in.
struct AdamParams {
  double lr = 0.0;
  double beta1 = 0.0;
  double beta2 = 0.0;
  double eps = 0.0;
  double weight_decay = 0.0;
  double bias_corr1 = 1.0;
  double bias_corr2 = 1.0;
  bool decoupled = false;
};

/// One fully-populated kernel variant over element type T. All pointers
/// are non-null. Scalar immediates stay double in the ABI (cast once at
/// kernel entry); reductions always accumulate to and return double.
template <class T>
struct KernelTableT {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";
  std::size_t width = 1;  ///< elements per vector register

  // Contiguous same-length elementwise: o[i] = a[i] op b[i].
  void (*bin_same[kNumBinOps])(const T* a, const T* b, T* o, std::size_t n);
  // Row broadcast: o[r][c] = a[r][c] op b[c] (the bias-add pattern).
  void (*bin_row[kNumBinOps])(const T* a, const T* b, T* o, std::size_t rows,
                              std::size_t cols);

  void (*neg)(const T* a, T* o, std::size_t n);
  void (*scale)(const T* a, double s, T* o, std::size_t n);
  void (*add_scalar)(const T* a, double s, T* o, std::size_t n);
  void (*square)(const T* a, T* o, std::size_t n);
  void (*reciprocal)(const T* a, T* o, std::size_t n);
  void (*sqrt)(const T* a, T* o, std::size_t n);
  void (*abs)(const T* a, T* o, std::size_t n);
  void (*relu)(const T* a, T* o, std::size_t n);
  void (*step)(const T* a, T* o, std::size_t n);
  void (*sign)(const T* a, T* o, std::size_t n);
  void (*tanh)(const T* a, T* o, std::size_t n);
  /// Fused bias + tanh: o[r][c] = tanh(a[r][c] + b[c]); bit-identical to
  /// composing bin_row[kAdd] with tanh.
  void (*bias_tanh)(const T* a, const T* b, T* o, std::size_t rows,
                    std::size_t cols);
  /// Fused tanh backward: o[i] = g[i] * (1 - t[i]^2); bit-identical to the
  /// square/neg/add_scalar/mul composition (see detail::OpTanhGrad).
  void (*tanh_grad)(const T* g, const T* t, T* o, std::size_t n);

  double (*dot)(const T* a, const T* b, std::size_t n);
  double (*sum)(const T* a, std::size_t n);
  double (*square_sum)(const T* a, std::size_t n);
  /// sum_i w[i] * a[i]^2 — the fused PINN loss reduction.
  double (*weighted_square_sum)(const T* w, const T* a, std::size_t n);

  void (*axpy)(T* dst, double s, const T* src, std::size_t n);
  void (*scale_inplace)(T* dst, double s, std::size_t n);
  /// dst = a*dst + b*src in one sweep.
  void (*axpby)(T* dst, double a, double b, const T* src, std::size_t n);
  /// dst += src (the sum_to row-collapse inner loop).
  void (*acc_add)(T* dst, const T* src, std::size_t n);

  /// Fused Adam: moments + bias correction + parameter write, one sweep.
  void (*adam)(T* p, const T* g, T* m, T* v, std::size_t n,
               const AdamParams& cfg);

  // Matmul micro-kernels over output rows [i0, i1); out rows pre-zeroed.
  // matmul_rows:    out[n,m] = a[n,k] * b[k,m]
  // matmul_tn_rows: out[n,m] = a[k,n]^T * b[k,m]
  // matmul_nt_rows: out[n,m] = a[n,k] * b[m,k]^T
  void (*matmul_rows)(const T* a, const T* b, T* o, std::int64_t i0,
                      std::int64_t i1, std::int64_t k, std::int64_t m);
  void (*matmul_tn_rows)(const T* a, const T* b, T* o, std::int64_t i0,
                         std::int64_t i1, std::int64_t k, std::int64_t n,
                         std::int64_t m);
  void (*matmul_nt_rows)(const T* a, const T* b, T* o, std::int64_t i0,
                         std::int64_t i1, std::int64_t k, std::int64_t m);
};

using KernelTable = KernelTableT<double>;
using KernelTableF = KernelTableT<float>;

/// The active fp64 kernel table. First call resolves it from the CPU and
/// the QPINN_SIMD override; later calls are one atomic load.
const KernelTable& active();

/// The active fp32 kernel table; always the same ISA as active().
const KernelTableF& active_f32();

/// Shorthand for active().isa.
Isa active_isa();

/// Switches the active tables (both element widths) at runtime (tests,
/// benchmarks). Returns false — leaving the current tables in place —
/// when the variant is not available on this build/CPU.
bool force_isa(Isa isa);

/// Every variant selectable on this build + CPU, best first.
std::vector<Isa> available_isas();

/// "scalar" / "sse2" / "avx2" / "neon".
const char* isa_name(Isa isa);

/// Parses an ISA name as accepted by QPINN_SIMD ("off" maps to kScalar,
/// case-insensitive). Throws qpinn::ConfigError on anything else.
Isa parse_isa(const std::string& name);

// ---- vector wrappers -----------------------------------------------------
//
// Each wrapper exposes the same static interface:
//   elem, reg, kWidth, kMmRowTile, load/store/set1/zero,
//   add/sub/mul/div/sqrt/fma/neg/abs, gt_and(a,b,c) = (a>b) ? c : 0
//   (lane-wise, NaN -> 0 like the scalar ternary), hsum (deterministic
//   low-to-high lane order, returns elem), plus the bitwise toolkit used
//   by the polynomial tanh: cmp_gt (all-ones/all-zeros mask),
//   band/bor/andnot (andnot(a, b) = (~a) & b, matching _mm_andnot_pd),
//   and pow2n, which maps a register of small *integral* values n to 2^n
//   via the round-to-int magic-number trick and exponent-field
//   arithmetic — defined behavior (unspecified value) for
//   non-integral/NaN lanes, so discarded select branches can feed it
//   garbage safely.
//
// Variants with kHasStream expose stream(p, v), an ALIGNED non-temporal
// store (p must be kWidth*sizeof(elem)-aligned), and fence(), which
// orders the write-combining buffers before any cross-thread
// publication. The value stored is identical to store() — only the
// cache behavior differs — so streaming never affects bit-identity.

struct VecScalar {
  using elem = double;
  using reg = double;
  static constexpr std::size_t kWidth = 1;
  static constexpr std::int64_t kMmRowTile = 4;
  static constexpr bool kHasStream = false;
  static reg load(const double* p) { return *p; }
  static void store(double* p, reg v) { *p = v; }
  static void stream(double* p, reg v) { *p = v; }
  static void fence() {}
  static reg set1(double s) { return s; }
  static reg zero() { return 0.0; }
  static reg add(reg a, reg b) { return a + b; }
  static reg sub(reg a, reg b) { return a - b; }
  static reg mul(reg a, reg b) { return a * b; }
  static reg div(reg a, reg b) { return a / b; }
  static reg sqrt(reg a) { return std::sqrt(a); }
  static reg fma(reg a, reg b, reg c) { return a * b + c; }
  static reg neg(reg a) { return -a; }
  static reg abs(reg a) { return std::abs(a); }
  static reg gt_and(reg a, reg b, reg c) { return a > b ? c : 0.0; }
  static reg cmp_gt(reg a, reg b) {
    return a > b ? std::bit_cast<double>(~std::uint64_t{0}) : 0.0;
  }
  static reg band(reg a, reg b) {
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(a) &
                                 std::bit_cast<std::uint64_t>(b));
  }
  static reg bor(reg a, reg b) {
    return std::bit_cast<double>(std::bit_cast<std::uint64_t>(a) |
                                 std::bit_cast<std::uint64_t>(b));
  }
  static reg andnot(reg a, reg b) {
    return std::bit_cast<double>(~std::bit_cast<std::uint64_t>(a) &
                                 std::bit_cast<std::uint64_t>(b));
  }
  static reg pow2n(reg nd) {
    const std::uint64_t u =
        std::bit_cast<std::uint64_t>(nd + 6755399441055744.0);
    return std::bit_cast<double>((u + 1023u) << 52);
  }
  static double hsum(reg a) { return a; }
};

/// Scalar float lanes: same algorithmic skeleton as VecScalar with the
/// 32-bit magic numbers (round-to-int magic 1.5*2^23, exponent bias 127,
/// mantissa width 23).
struct VecScalarF {
  using elem = float;
  using reg = float;
  static constexpr std::size_t kWidth = 1;
  static constexpr std::int64_t kMmRowTile = 4;
  static constexpr bool kHasStream = false;
  static reg load(const float* p) { return *p; }
  static void store(float* p, reg v) { *p = v; }
  static void stream(float* p, reg v) { *p = v; }
  static void fence() {}
  static reg set1(float s) { return s; }
  static reg zero() { return 0.0F; }
  static reg add(reg a, reg b) { return a + b; }
  static reg sub(reg a, reg b) { return a - b; }
  static reg mul(reg a, reg b) { return a * b; }
  static reg div(reg a, reg b) { return a / b; }
  static reg sqrt(reg a) { return std::sqrt(a); }
  static reg fma(reg a, reg b, reg c) { return a * b + c; }
  static reg neg(reg a) { return -a; }
  static reg abs(reg a) { return std::abs(a); }
  static reg gt_and(reg a, reg b, reg c) { return a > b ? c : 0.0F; }
  static reg cmp_gt(reg a, reg b) {
    return a > b ? std::bit_cast<float>(~std::uint32_t{0}) : 0.0F;
  }
  static reg band(reg a, reg b) {
    return std::bit_cast<float>(std::bit_cast<std::uint32_t>(a) &
                                std::bit_cast<std::uint32_t>(b));
  }
  static reg bor(reg a, reg b) {
    return std::bit_cast<float>(std::bit_cast<std::uint32_t>(a) |
                                std::bit_cast<std::uint32_t>(b));
  }
  static reg andnot(reg a, reg b) {
    return std::bit_cast<float>(~std::bit_cast<std::uint32_t>(a) &
                                std::bit_cast<std::uint32_t>(b));
  }
  static reg pow2n(reg nd) {
    const std::uint32_t u = std::bit_cast<std::uint32_t>(nd + 12582912.0F);
    return std::bit_cast<float>((u + 127U) << 23);
  }
  static float hsum(reg a) { return a; }
};

#if defined(QPINN_SIMD_X86) && defined(__SSE2__)
struct VecSse2 {
  using elem = double;
  using reg = __m128d;
  static constexpr std::size_t kWidth = 2;
  static constexpr std::int64_t kMmRowTile = 2;
  static constexpr bool kHasStream = true;
  static reg load(const double* p) { return _mm_loadu_pd(p); }
  static void store(double* p, reg v) { _mm_storeu_pd(p, v); }
  static void stream(double* p, reg v) { _mm_stream_pd(p, v); }
  static void fence() { _mm_sfence(); }
  static reg set1(double s) { return _mm_set1_pd(s); }
  static reg zero() { return _mm_setzero_pd(); }
  static reg add(reg a, reg b) { return _mm_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm_mul_pd(a, b); }
  static reg div(reg a, reg b) { return _mm_div_pd(a, b); }
  static reg sqrt(reg a) { return _mm_sqrt_pd(a); }
  static reg fma(reg a, reg b, reg c) {
    return _mm_add_pd(_mm_mul_pd(a, b), c);
  }
  static reg neg(reg a) { return _mm_xor_pd(a, _mm_set1_pd(-0.0)); }
  static reg abs(reg a) { return _mm_andnot_pd(_mm_set1_pd(-0.0), a); }
  static reg gt_and(reg a, reg b, reg c) {
    return _mm_and_pd(_mm_cmpgt_pd(a, b), c);
  }
  static reg cmp_gt(reg a, reg b) { return _mm_cmpgt_pd(a, b); }
  static reg band(reg a, reg b) { return _mm_and_pd(a, b); }
  static reg bor(reg a, reg b) { return _mm_or_pd(a, b); }
  static reg andnot(reg a, reg b) { return _mm_andnot_pd(a, b); }
  static reg pow2n(reg nd) {
    const __m128i u = _mm_castpd_si128(
        _mm_add_pd(nd, _mm_set1_pd(6755399441055744.0)));
    return _mm_castsi128_pd(
        _mm_slli_epi64(_mm_add_epi64(u, _mm_set1_epi64x(1023)), 52));
  }
  static double hsum(reg a) {
    return _mm_cvtsd_f64(a) + _mm_cvtsd_f64(_mm_unpackhi_pd(a, a));
  }
};

struct VecSse2F {
  using elem = float;
  using reg = __m128;
  static constexpr std::size_t kWidth = 4;
  static constexpr std::int64_t kMmRowTile = 2;
  static constexpr bool kHasStream = true;
  static reg load(const float* p) { return _mm_loadu_ps(p); }
  static void store(float* p, reg v) { _mm_storeu_ps(p, v); }
  static void stream(float* p, reg v) { _mm_stream_ps(p, v); }
  static void fence() { _mm_sfence(); }
  static reg set1(float s) { return _mm_set1_ps(s); }
  static reg zero() { return _mm_setzero_ps(); }
  static reg add(reg a, reg b) { return _mm_add_ps(a, b); }
  static reg sub(reg a, reg b) { return _mm_sub_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm_mul_ps(a, b); }
  static reg div(reg a, reg b) { return _mm_div_ps(a, b); }
  static reg sqrt(reg a) { return _mm_sqrt_ps(a); }
  static reg fma(reg a, reg b, reg c) {
    return _mm_add_ps(_mm_mul_ps(a, b), c);
  }
  static reg neg(reg a) { return _mm_xor_ps(a, _mm_set1_ps(-0.0F)); }
  static reg abs(reg a) { return _mm_andnot_ps(_mm_set1_ps(-0.0F), a); }
  static reg gt_and(reg a, reg b, reg c) {
    return _mm_and_ps(_mm_cmpgt_ps(a, b), c);
  }
  static reg cmp_gt(reg a, reg b) { return _mm_cmpgt_ps(a, b); }
  static reg band(reg a, reg b) { return _mm_and_ps(a, b); }
  static reg bor(reg a, reg b) { return _mm_or_ps(a, b); }
  static reg andnot(reg a, reg b) { return _mm_andnot_ps(a, b); }
  static reg pow2n(reg nd) {
    const __m128i u =
        _mm_castps_si128(_mm_add_ps(nd, _mm_set1_ps(12582912.0F)));
    return _mm_castsi128_ps(
        _mm_slli_epi32(_mm_add_epi32(u, _mm_set1_epi32(127)), 23));
  }
  static float hsum(reg a) {
    alignas(16) float t[4];
    _mm_store_ps(t, a);
    return ((t[0] + t[1]) + t[2]) + t[3];
  }
};
#endif  // QPINN_SIMD_X86 && __SSE2__

#if defined(QPINN_SIMD_X86) && defined(__AVX2__) && defined(__FMA__)
struct VecAvx2 {
  using elem = double;
  using reg = __m256d;
  static constexpr std::size_t kWidth = 4;
  static constexpr std::int64_t kMmRowTile = 4;
  static constexpr bool kHasStream = true;
  static reg load(const double* p) { return _mm256_loadu_pd(p); }
  static void store(double* p, reg v) { _mm256_storeu_pd(p, v); }
  static void stream(double* p, reg v) { _mm256_stream_pd(p, v); }
  static void fence() { _mm_sfence(); }
  static reg set1(double s) { return _mm256_set1_pd(s); }
  static reg zero() { return _mm256_setzero_pd(); }
  static reg add(reg a, reg b) { return _mm256_add_pd(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_pd(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_pd(a, b); }
  static reg div(reg a, reg b) { return _mm256_div_pd(a, b); }
  static reg sqrt(reg a) { return _mm256_sqrt_pd(a); }
  static reg fma(reg a, reg b, reg c) { return _mm256_fmadd_pd(a, b, c); }
  static reg neg(reg a) { return _mm256_xor_pd(a, _mm256_set1_pd(-0.0)); }
  static reg abs(reg a) {
    return _mm256_andnot_pd(_mm256_set1_pd(-0.0), a);
  }
  static reg gt_and(reg a, reg b, reg c) {
    return _mm256_and_pd(_mm256_cmp_pd(a, b, _CMP_GT_OQ), c);
  }
  static reg cmp_gt(reg a, reg b) {
    return _mm256_cmp_pd(a, b, _CMP_GT_OQ);
  }
  static reg band(reg a, reg b) { return _mm256_and_pd(a, b); }
  static reg bor(reg a, reg b) { return _mm256_or_pd(a, b); }
  static reg andnot(reg a, reg b) { return _mm256_andnot_pd(a, b); }
  static reg pow2n(reg nd) {
    const __m256i u = _mm256_castpd_si256(
        _mm256_add_pd(nd, _mm256_set1_pd(6755399441055744.0)));
    return _mm256_castsi256_pd(
        _mm256_slli_epi64(_mm256_add_epi64(u, _mm256_set1_epi64x(1023)), 52));
  }
  static double hsum(reg a) {
    const __m128d lo = _mm256_castpd256_pd128(a);
    const __m128d hi = _mm256_extractf128_pd(a, 1);
    const __m128d s = _mm_add_pd(lo, hi);
    return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
  }
};

struct VecAvx2F {
  using elem = float;
  using reg = __m256;
  static constexpr std::size_t kWidth = 8;
  static constexpr std::int64_t kMmRowTile = 4;
  static constexpr bool kHasStream = true;
  static reg load(const float* p) { return _mm256_loadu_ps(p); }
  static void store(float* p, reg v) { _mm256_storeu_ps(p, v); }
  static void stream(float* p, reg v) { _mm256_stream_ps(p, v); }
  static void fence() { _mm_sfence(); }
  static reg set1(float s) { return _mm256_set1_ps(s); }
  static reg zero() { return _mm256_setzero_ps(); }
  static reg add(reg a, reg b) { return _mm256_add_ps(a, b); }
  static reg sub(reg a, reg b) { return _mm256_sub_ps(a, b); }
  static reg mul(reg a, reg b) { return _mm256_mul_ps(a, b); }
  static reg div(reg a, reg b) { return _mm256_div_ps(a, b); }
  static reg sqrt(reg a) { return _mm256_sqrt_ps(a); }
  static reg fma(reg a, reg b, reg c) { return _mm256_fmadd_ps(a, b, c); }
  static reg neg(reg a) { return _mm256_xor_ps(a, _mm256_set1_ps(-0.0F)); }
  static reg abs(reg a) {
    return _mm256_andnot_ps(_mm256_set1_ps(-0.0F), a);
  }
  static reg gt_and(reg a, reg b, reg c) {
    return _mm256_and_ps(_mm256_cmp_ps(a, b, _CMP_GT_OQ), c);
  }
  static reg cmp_gt(reg a, reg b) {
    return _mm256_cmp_ps(a, b, _CMP_GT_OQ);
  }
  static reg band(reg a, reg b) { return _mm256_and_ps(a, b); }
  static reg bor(reg a, reg b) { return _mm256_or_ps(a, b); }
  static reg andnot(reg a, reg b) { return _mm256_andnot_ps(a, b); }
  static reg pow2n(reg nd) {
    const __m256i u = _mm256_castps_si256(
        _mm256_add_ps(nd, _mm256_set1_ps(12582912.0F)));
    return _mm256_castsi256_ps(
        _mm256_slli_epi32(_mm256_add_epi32(u, _mm256_set1_epi32(127)), 23));
  }
  static float hsum(reg a) {
    const __m128 lo = _mm256_castps256_ps128(a);
    const __m128 hi = _mm256_extractf128_ps(a, 1);
    alignas(16) float t[4];
    _mm_store_ps(t, _mm_add_ps(lo, hi));
    return ((t[0] + t[1]) + t[2]) + t[3];
  }
};
#endif  // QPINN_SIMD_X86 && __AVX2__ && __FMA__

#if defined(QPINN_SIMD_NEON)
struct VecNeon {
  using elem = double;
  using reg = float64x2_t;
  static constexpr std::size_t kWidth = 2;
  static constexpr std::int64_t kMmRowTile = 2;
  static constexpr bool kHasStream = false;
  static reg load(const double* p) { return vld1q_f64(p); }
  static void store(double* p, reg v) { vst1q_f64(p, v); }
  static void stream(double* p, reg v) { vst1q_f64(p, v); }
  static void fence() {}
  static reg set1(double s) { return vdupq_n_f64(s); }
  static reg zero() { return vdupq_n_f64(0.0); }
  static reg add(reg a, reg b) { return vaddq_f64(a, b); }
  static reg sub(reg a, reg b) { return vsubq_f64(a, b); }
  static reg mul(reg a, reg b) { return vmulq_f64(a, b); }
  static reg div(reg a, reg b) { return vdivq_f64(a, b); }
  static reg sqrt(reg a) { return vsqrtq_f64(a); }
  static reg fma(reg a, reg b, reg c) { return vfmaq_f64(c, a, b); }
  static reg neg(reg a) { return vnegq_f64(a); }
  static reg abs(reg a) { return vabsq_f64(a); }
  static reg gt_and(reg a, reg b, reg c) {
    return vreinterpretq_f64_u64(
        vandq_u64(vcgtq_f64(a, b), vreinterpretq_u64_f64(c)));
  }
  static reg cmp_gt(reg a, reg b) {
    return vreinterpretq_f64_u64(vcgtq_f64(a, b));
  }
  static reg band(reg a, reg b) {
    return vreinterpretq_f64_u64(
        vandq_u64(vreinterpretq_u64_f64(a), vreinterpretq_u64_f64(b)));
  }
  static reg bor(reg a, reg b) {
    return vreinterpretq_f64_u64(
        vorrq_u64(vreinterpretq_u64_f64(a), vreinterpretq_u64_f64(b)));
  }
  static reg andnot(reg a, reg b) {
    return vreinterpretq_f64_u64(
        vbicq_u64(vreinterpretq_u64_f64(b), vreinterpretq_u64_f64(a)));
  }
  static reg pow2n(reg nd) {
    const uint64x2_t u = vreinterpretq_u64_f64(
        vaddq_f64(nd, vdupq_n_f64(6755399441055744.0)));
    return vreinterpretq_f64_u64(
        vshlq_n_u64(vaddq_u64(u, vdupq_n_u64(1023)), 52));
  }
  static double hsum(reg a) {
    return vgetq_lane_f64(a, 0) + vgetq_lane_f64(a, 1);
  }
};

struct VecNeonF {
  using elem = float;
  using reg = float32x4_t;
  static constexpr std::size_t kWidth = 4;
  static constexpr std::int64_t kMmRowTile = 2;
  static constexpr bool kHasStream = false;
  static reg load(const float* p) { return vld1q_f32(p); }
  static void store(float* p, reg v) { vst1q_f32(p, v); }
  static void stream(float* p, reg v) { vst1q_f32(p, v); }
  static void fence() {}
  static reg set1(float s) { return vdupq_n_f32(s); }
  static reg zero() { return vdupq_n_f32(0.0F); }
  static reg add(reg a, reg b) { return vaddq_f32(a, b); }
  static reg sub(reg a, reg b) { return vsubq_f32(a, b); }
  static reg mul(reg a, reg b) { return vmulq_f32(a, b); }
  static reg div(reg a, reg b) { return vdivq_f32(a, b); }
  static reg sqrt(reg a) { return vsqrtq_f32(a); }
  static reg fma(reg a, reg b, reg c) { return vfmaq_f32(c, a, b); }
  static reg neg(reg a) { return vnegq_f32(a); }
  static reg abs(reg a) { return vabsq_f32(a); }
  static reg gt_and(reg a, reg b, reg c) {
    return vreinterpretq_f32_u32(
        vandq_u32(vcgtq_f32(a, b), vreinterpretq_u32_f32(c)));
  }
  static reg cmp_gt(reg a, reg b) {
    return vreinterpretq_f32_u32(vcgtq_f32(a, b));
  }
  static reg band(reg a, reg b) {
    return vreinterpretq_f32_u32(
        vandq_u32(vreinterpretq_u32_f32(a), vreinterpretq_u32_f32(b)));
  }
  static reg bor(reg a, reg b) {
    return vreinterpretq_f32_u32(
        vorrq_u32(vreinterpretq_u32_f32(a), vreinterpretq_u32_f32(b)));
  }
  static reg andnot(reg a, reg b) {
    return vreinterpretq_f32_u32(
        vbicq_u32(vreinterpretq_u32_f32(b), vreinterpretq_u32_f32(a)));
  }
  static reg pow2n(reg nd) {
    const uint32x4_t u = vreinterpretq_u32_f32(
        vaddq_f32(nd, vdupq_n_f32(12582912.0F)));
    return vreinterpretq_f32_u32(
        vshlq_n_u32(vaddq_u32(u, vdupq_n_u32(127)), 23));
  }
  static float hsum(reg a) {
    return ((vgetq_lane_f32(a, 0) + vgetq_lane_f32(a, 1)) +
            vgetq_lane_f32(a, 2)) +
           vgetq_lane_f32(a, 3);
  }
};
#endif  // QPINN_SIMD_NEON

// ---- width-agnostic kernel templates -------------------------------------

namespace detail {

/// The width-1 wrapper of the same element type, used for kernel fringe
/// elements so fringes run the identical lane algorithm.
template <class T>
struct ScalarVecFor;
template <>
struct ScalarVecFor<double> {
  using type = VecScalar;
};
template <>
struct ScalarVecFor<float> {
  using type = VecScalarF;
};

// Binary op tags: `s` is the scalar expression (also used verbatim for
// fringes), `v` the lane-wise vector equivalent.
struct OpAdd {
  template <class T>
  static T s(T a, T b) {
    return a + b;
  }
  template <class V>
  static typename V::reg v(typename V::reg a, typename V::reg b) {
    return V::add(a, b);
  }
};
struct OpSub {
  template <class T>
  static T s(T a, T b) {
    return a - b;
  }
  template <class V>
  static typename V::reg v(typename V::reg a, typename V::reg b) {
    return V::sub(a, b);
  }
};
struct OpMul {
  template <class T>
  static T s(T a, T b) {
    return a * b;
  }
  template <class V>
  static typename V::reg v(typename V::reg a, typename V::reg b) {
    return V::mul(a, b);
  }
};
struct OpDiv {
  template <class T>
  static T s(T a, T b) {
    return a / b;
  }
  template <class V>
  static typename V::reg v(typename V::reg a, typename V::reg b) {
    return V::div(a, b);
  }
};
// tanh backward: a * (1 - b^2), written as the exact IEEE op sequence of
// its composition square -> neg -> add_scalar(1.0) -> mul (negation is a
// sign flip, exact; no FMA, no reassociation), so the fused kernel is
// bit-identical to the four-kernel chain it replaces in optimized plans.
struct OpTanhGrad {
  template <class T>
  static T s(T a, T b) {
    return a * ((-(b * b)) + T(1.0));
  }
  template <class V>
  static typename V::reg v(typename V::reg a, typename V::reg b) {
    return V::mul(a, V::add(V::neg(V::mul(b, b)),
                            V::set1(typename V::elem(1.0))));
  }
};

/// Sweeps writing at least this many output elements bypass the cache
/// with non-temporal stores (4 MiB of doubles; float sweeps stream from
/// 2 MiB — still comfortably past last-level-cache residency, and one
/// shared threshold keeps the chunking logic element-agnostic). The
/// destination is write-only in ew_bin, so beyond last-level-cache size
/// regular stores just burn read-for-ownership bandwidth on the
/// 3-stream (a, b, o) memory-bound loop — NT stores cut the traffic
/// from 4 streams to 3. Below this size the working set is
/// cache-resident and evicting the output would LOSE bandwidth
/// (measured ~2x slower at 256x256), hence the high threshold. The
/// check is per parallel_for chunk, so each chunk decides
/// independently; either path stores identical values.
inline constexpr std::size_t kStreamMinElems = std::size_t{1} << 19;

template <class V, class Op>
void ew_bin(const typename V::elem* a, const typename V::elem* b,
            typename V::elem* o, std::size_t n) {
  using T = typename V::elem;
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    if constexpr (V::kHasStream) {
      if (n >= kStreamMinElems) {
        // Peel scalar iterations until o hits the register alignment the
        // non-temporal store requires (element arrays are always
        // sizeof(T)-aligned).
        const auto addr = reinterpret_cast<std::uintptr_t>(o);
        const std::size_t misalign = addr % (w * sizeof(T));
        const std::size_t peel =
            misalign == 0 ? 0 : (w * sizeof(T) - misalign) / sizeof(T);
        for (; i < peel; ++i) o[i] = Op::template s<T>(a[i], b[i]);
        for (; i + w <= n; i += w) {
          V::stream(o + i, Op::template v<V>(V::load(a + i), V::load(b + i)));
        }
        // Drain the write-combining buffers before the parallel_for join
        // publishes this chunk to other threads.
        V::fence();
        for (; i < n; ++i) o[i] = Op::template s<T>(a[i], b[i]);
        return;
      }
    }
    for (; i + w <= n; i += w) {
      V::store(o + i, Op::template v<V>(V::load(a + i), V::load(b + i)));
    }
  }
  for (; i < n; ++i) o[i] = Op::template s<T>(a[i], b[i]);
}

template <class V, class Op>
void ew_bin_row(const typename V::elem* a, const typename V::elem* b,
                typename V::elem* o, std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    ew_bin<V, Op>(a + r * cols, b, o + r * cols, cols);
  }
}

template <class V>
void ew_neg(const typename V::elem* a, typename V::elem* o, std::size_t n) {
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    for (; i + w <= n; i += w) V::store(o + i, V::neg(V::load(a + i)));
  }
  for (; i < n; ++i) o[i] = -a[i];
}

template <class V>
void ew_scale(const typename V::elem* a, double s, typename V::elem* o,
              std::size_t n) {
  using T = typename V::elem;
  const T sv = static_cast<T>(s);
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    const typename V::reg vs = V::set1(sv);
    for (; i + w <= n; i += w) V::store(o + i, V::mul(vs, V::load(a + i)));
  }
  for (; i < n; ++i) o[i] = sv * a[i];
}

template <class V>
void ew_add_scalar(const typename V::elem* a, double s, typename V::elem* o,
                   std::size_t n) {
  using T = typename V::elem;
  const T sv = static_cast<T>(s);
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    const typename V::reg vs = V::set1(sv);
    for (; i + w <= n; i += w) V::store(o + i, V::add(V::load(a + i), vs));
  }
  for (; i < n; ++i) o[i] = a[i] + sv;
}

template <class V>
void ew_square(const typename V::elem* a, typename V::elem* o,
               std::size_t n) {
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    for (; i + w <= n; i += w) {
      const typename V::reg x = V::load(a + i);
      V::store(o + i, V::mul(x, x));
    }
  }
  for (; i < n; ++i) o[i] = a[i] * a[i];
}

template <class V>
void ew_reciprocal(const typename V::elem* a, typename V::elem* o,
                   std::size_t n) {
  using T = typename V::elem;
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    const typename V::reg one = V::set1(T(1.0));
    for (; i + w <= n; i += w) V::store(o + i, V::div(one, V::load(a + i)));
  }
  for (; i < n; ++i) o[i] = T(1.0) / a[i];
}

template <class V>
void ew_sqrt(const typename V::elem* a, typename V::elem* o, std::size_t n) {
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    for (; i + w <= n; i += w) V::store(o + i, V::sqrt(V::load(a + i)));
  }
  for (; i < n; ++i) o[i] = std::sqrt(a[i]);
}

template <class V>
void ew_abs(const typename V::elem* a, typename V::elem* o, std::size_t n) {
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    for (; i + w <= n; i += w) V::store(o + i, V::abs(V::load(a + i)));
  }
  for (; i < n; ++i) o[i] = std::abs(a[i]);
}

template <class V>
void ew_relu(const typename V::elem* a, typename V::elem* o, std::size_t n) {
  using T = typename V::elem;
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    const typename V::reg z = V::zero();
    for (; i + w <= n; i += w) {
      const typename V::reg x = V::load(a + i);
      V::store(o + i, V::gt_and(x, z, x));
    }
  }
  for (; i < n; ++i) o[i] = a[i] > T(0.0) ? a[i] : T(0.0);
}

template <class V>
void ew_step(const typename V::elem* a, typename V::elem* o, std::size_t n) {
  using T = typename V::elem;
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    const typename V::reg z = V::zero();
    const typename V::reg one = V::set1(T(1.0));
    for (; i + w <= n; i += w) {
      V::store(o + i, V::gt_and(V::load(a + i), z, one));
    }
  }
  for (; i < n; ++i) o[i] = a[i] > T(0.0) ? T(1.0) : T(0.0);
}

template <class V>
void ew_sign(const typename V::elem* a, typename V::elem* o, std::size_t n) {
  using T = typename V::elem;
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    const typename V::reg z = V::zero();
    const typename V::reg one = V::set1(T(1.0));
    const typename V::reg mone = V::set1(T(-1.0));
    for (; i + w <= n; i += w) {
      const typename V::reg x = V::load(a + i);
      // The masks are disjoint, so add == or.
      V::store(o + i, V::add(V::gt_and(x, z, one), V::gt_and(z, x, mone)));
    }
  }
  for (; i < n; ++i) {
    o[i] = (a[i] > T(0.0)) ? T(1.0) : (a[i] < T(0.0) ? T(-1.0) : T(0.0));
  }
}

/// Lane-wise select: m ? a : b for full-width masks from cmp_gt.
template <class V>
inline typename V::reg vsel(typename V::reg m, typename V::reg a,
                            typename V::reg b) {
  return V::bor(V::band(m, a), V::andnot(m, b));
}

/// Per-element-type constants of the polynomial tanh. The double
/// parameters are the original PR 5 values; the float ones follow the
/// same construction with 32-bit magic numbers, the fdlibm single-
/// precision Cody-Waite ln2 split (both halves positive, so the generic
/// reduction expression is shared), a lower saturation threshold
/// (tanhf rounds to 1 from ~8.7) and a Taylor polynomial truncated at
/// r^7/7! (~1.4 float ulp, matching the fp64 chain's ~few-ulp budget).
template <class T>
struct TanhTraits;

template <>
struct TanhTraits<double> {
  static constexpr double kMagic = 6755399441055744.0;  // 1.5 * 2^52
  static constexpr double kBig = 19.0625;
  static constexpr double kYClamp = 38.125;
  static constexpr double kLog2e = 1.4426950408889634074;
  static constexpr double kLn2Hi = 6.93147180369123816490e-01;
  static constexpr double kLn2Lo = 1.90821492927058770002e-10;
  // q = 1/2! + r/3! + ... + r^11/13!  (Horner, high to low).
  static constexpr double kCoef[12] = {
      1.0 / 6227020800.0, 1.0 / 479001600.0, 1.0 / 39916800.0,
      1.0 / 3628800.0,    1.0 / 362880.0,    1.0 / 40320.0,
      1.0 / 5040.0,       1.0 / 720.0,       1.0 / 120.0,
      1.0 / 24.0,         1.0 / 6.0,         0.5};
};

template <>
struct TanhTraits<float> {
  static constexpr float kMagic = 12582912.0F;  // 1.5 * 2^23
  static constexpr float kBig = 9.0625F;
  static constexpr float kYClamp = 18.125F;
  static constexpr float kLog2e = 1.44269504F;
  static constexpr float kLn2Hi = 6.9313812256e-01F;
  static constexpr float kLn2Lo = 9.0580006145e-06F;
  // q = 1/2! + r/3! + ... + r^5/7!  (Horner, high to low).
  static constexpr float kCoef[6] = {1.0F / 5040.0F, 1.0F / 720.0F,
                                     1.0F / 120.0F,  1.0F / 24.0F,
                                     1.0F / 6.0F,    0.5F};
};

// Branchless polynomial tanh, identical lane algorithm on every variant
// of a given element type (add/sub/mul/div + bitwise ops only — no FMA,
// no libm, no float->int conversion), so results are bit-identical
// across ISAs and chunk boundaries. tanh(x) = sign(x) * em1 / (em1 + 2)
// with em1 = expm1(2|x|); expm1 by Cody-Waite range reduction
// (y = n*ln2 + r, |r| <= ln2/2) and a Taylor polynomial (degree 13 for
// double, ~1e-17 relative truncation; degree 7 for float, ~1e-8).
// |x| > kBig returns +-1 exactly (true tanh rounds to 1 there); those
// lanes still run the arithmetic on a clamped y so pow2n stays in
// range. NaN propagates through the computed branch; +-0 keeps its sign
// via the final bitwise-or.
template <class V>
inline typename V::reg tanh_lanes(typename V::reg x) {
  using R = typename V::reg;
  using T = typename V::elem;
  using Tr = TanhTraits<T>;
  const R magic = V::set1(Tr::kMagic);
  const R s = V::band(x, V::set1(T(-0.0)));
  const R a = V::abs(x);
  const R big = V::cmp_gt(a, V::set1(Tr::kBig));
  const R y = vsel<V>(big, V::set1(Tr::kYClamp), V::add(a, a));
  // n = round(y * log2(e)) via the magic-number trick (round-to-nearest).
  const R nd = V::sub(V::add(V::mul(y, V::set1(Tr::kLog2e)), magic), magic);
  // r = y - n*ln2, split high/low so n*ln2hi is exact for the reduced
  // exponent range.
  const R r = V::sub(V::sub(y, V::mul(nd, V::set1(Tr::kLn2Hi))),
                     V::mul(nd, V::set1(Tr::kLn2Lo)));
  constexpr std::size_t deg = sizeof(Tr::kCoef) / sizeof(Tr::kCoef[0]);
  R q = V::set1(Tr::kCoef[0]);
  for (std::size_t d = 1; d < deg; ++d) {
    q = V::add(V::mul(q, r), V::set1(Tr::kCoef[d]));
  }
  const R p = V::add(V::mul(V::mul(q, r), r), r);  // expm1(r)
  // expm1(y) = 2^n * (expm1(r) + 1) - 1; for n == 0 that difference
  // cancels the low bits of a tiny p, so keep p directly (nd >= 0 here).
  const R one = V::set1(T(1.0));
  const R sc = V::pow2n(nd);
  const R em1b = V::sub(V::mul(sc, V::add(p, one)), one);
  const R em1 = vsel<V>(V::cmp_gt(V::set1(T(0.5)), nd), p, em1b);
  R t = V::div(em1, V::add(em1, V::set1(T(2.0))));
  t = vsel<V>(big, one, t);
  return V::bor(s, t);
}

template <class V>
void ew_tanh(const typename V::elem* a, typename V::elem* o, std::size_t n) {
  using S = typename ScalarVecFor<typename V::elem>::type;
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    for (; i + w <= n; i += w) {
      V::store(o + i, tanh_lanes<V>(V::load(a + i)));
    }
  }
  for (; i < n; ++i) o[i] = tanh_lanes<S>(a[i]);
}

template <class V>
void ew_bias_tanh(const typename V::elem* a, const typename V::elem* b,
                  typename V::elem* o, std::size_t rows, std::size_t cols) {
  using T = typename V::elem;
  using S = typename ScalarVecFor<T>::type;
  constexpr std::size_t w = V::kWidth;
  for (std::size_t row = 0; row < rows; ++row) {
    const T* ar = a + row * cols;
    T* orow = o + row * cols;
    std::size_t i = 0;
    if constexpr (w > 1) {
      for (; i + w <= cols; i += w) {
        V::store(orow + i,
                 tanh_lanes<V>(V::add(V::load(ar + i), V::load(b + i))));
      }
    }
    for (; i < cols; ++i) orow[i] = tanh_lanes<S>(ar[i] + b[i]);
  }
}

// Reductions return double for every element type. The fp64 bodies use
// 4 (or 2) independent vector accumulators with FMA to hide latency,
// combining partials low-to-high — deterministic per variant. The fp32
// bodies promote each element to double and accumulate in unrolled
// double scalars instead: loads move half the bytes of the fp64 path,
// so the memory-bound regime stays fast, and loss sums keep full fp64
// accumulation (the mixed-precision contract).

template <class V>
double red_dot(const typename V::elem* a, const typename V::elem* b,
               std::size_t n) {
  using T = typename V::elem;
  if constexpr (std::is_same_v<T, double>) {
    constexpr std::size_t w = V::kWidth;
    std::size_t i = 0;
    double total = 0.0;
    if constexpr (w > 1) {
      typename V::reg acc0 = V::zero(), acc1 = V::zero();
      typename V::reg acc2 = V::zero(), acc3 = V::zero();
      for (; i + 4 * w <= n; i += 4 * w) {
        acc0 = V::fma(V::load(a + i), V::load(b + i), acc0);
        acc1 = V::fma(V::load(a + i + w), V::load(b + i + w), acc1);
        acc2 = V::fma(V::load(a + i + 2 * w), V::load(b + i + 2 * w), acc2);
        acc3 = V::fma(V::load(a + i + 3 * w), V::load(b + i + 3 * w), acc3);
      }
      for (; i + w <= n; i += w) {
        acc0 = V::fma(V::load(a + i), V::load(b + i), acc0);
      }
      total = V::hsum(V::add(V::add(acc0, acc1), V::add(acc2, acc3)));
    }
    for (; i < n; ++i) total += a[i] * b[i];
    return total;
  } else {
    std::size_t i = 0;
    double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
    for (; i + 4 <= n; i += 4) {
      t0 += static_cast<double>(a[i]) * static_cast<double>(b[i]);
      t1 += static_cast<double>(a[i + 1]) * static_cast<double>(b[i + 1]);
      t2 += static_cast<double>(a[i + 2]) * static_cast<double>(b[i + 2]);
      t3 += static_cast<double>(a[i + 3]) * static_cast<double>(b[i + 3]);
    }
    double total = (t0 + t1) + (t2 + t3);
    for (; i < n; ++i) {
      total += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    }
    return total;
  }
}

template <class V>
double red_sum(const typename V::elem* a, std::size_t n) {
  using T = typename V::elem;
  if constexpr (std::is_same_v<T, double>) {
    constexpr std::size_t w = V::kWidth;
    std::size_t i = 0;
    double total = 0.0;
    if constexpr (w > 1) {
      typename V::reg acc0 = V::zero(), acc1 = V::zero();
      typename V::reg acc2 = V::zero(), acc3 = V::zero();
      for (; i + 4 * w <= n; i += 4 * w) {
        acc0 = V::add(acc0, V::load(a + i));
        acc1 = V::add(acc1, V::load(a + i + w));
        acc2 = V::add(acc2, V::load(a + i + 2 * w));
        acc3 = V::add(acc3, V::load(a + i + 3 * w));
      }
      for (; i + w <= n; i += w) acc0 = V::add(acc0, V::load(a + i));
      total = V::hsum(V::add(V::add(acc0, acc1), V::add(acc2, acc3)));
    }
    for (; i < n; ++i) total += a[i];
    return total;
  } else {
    std::size_t i = 0;
    double t0 = 0.0, t1 = 0.0, t2 = 0.0, t3 = 0.0;
    for (; i + 4 <= n; i += 4) {
      t0 += static_cast<double>(a[i]);
      t1 += static_cast<double>(a[i + 1]);
      t2 += static_cast<double>(a[i + 2]);
      t3 += static_cast<double>(a[i + 3]);
    }
    double total = (t0 + t1) + (t2 + t3);
    for (; i < n; ++i) total += static_cast<double>(a[i]);
    return total;
  }
}

template <class V>
double red_square_sum(const typename V::elem* a, std::size_t n) {
  using T = typename V::elem;
  if constexpr (std::is_same_v<T, double>) {
    constexpr std::size_t w = V::kWidth;
    std::size_t i = 0;
    double total = 0.0;
    if constexpr (w > 1) {
      typename V::reg acc0 = V::zero(), acc1 = V::zero();
      for (; i + 2 * w <= n; i += 2 * w) {
        const typename V::reg x0 = V::load(a + i);
        const typename V::reg x1 = V::load(a + i + w);
        acc0 = V::fma(x0, x0, acc0);
        acc1 = V::fma(x1, x1, acc1);
      }
      for (; i + w <= n; i += w) {
        const typename V::reg x = V::load(a + i);
        acc0 = V::fma(x, x, acc0);
      }
      total = V::hsum(V::add(acc0, acc1));
    }
    for (; i < n; ++i) total += a[i] * a[i];
    return total;
  } else {
    std::size_t i = 0;
    double t0 = 0.0, t1 = 0.0;
    for (; i + 2 <= n; i += 2) {
      const double x0 = static_cast<double>(a[i]);
      const double x1 = static_cast<double>(a[i + 1]);
      t0 += x0 * x0;
      t1 += x1 * x1;
    }
    double total = t0 + t1;
    for (; i < n; ++i) {
      const double x = static_cast<double>(a[i]);
      total += x * x;
    }
    return total;
  }
}

template <class V>
double red_weighted_square_sum(const typename V::elem* wgt,
                               const typename V::elem* a, std::size_t n) {
  using T = typename V::elem;
  if constexpr (std::is_same_v<T, double>) {
    constexpr std::size_t w = V::kWidth;
    std::size_t i = 0;
    double total = 0.0;
    if constexpr (w > 1) {
      typename V::reg acc0 = V::zero(), acc1 = V::zero();
      for (; i + 2 * w <= n; i += 2 * w) {
        const typename V::reg x0 = V::load(a + i);
        const typename V::reg x1 = V::load(a + i + w);
        acc0 = V::fma(V::mul(V::load(wgt + i), x0), x0, acc0);
        acc1 = V::fma(V::mul(V::load(wgt + i + w), x1), x1, acc1);
      }
      for (; i + w <= n; i += w) {
        const typename V::reg x = V::load(a + i);
        acc0 = V::fma(V::mul(V::load(wgt + i), x), x, acc0);
      }
      total = V::hsum(V::add(acc0, acc1));
    }
    for (; i < n; ++i) total += wgt[i] * a[i] * a[i];
    return total;
  } else {
    std::size_t i = 0;
    double t0 = 0.0, t1 = 0.0;
    for (; i + 2 <= n; i += 2) {
      const double x0 = static_cast<double>(a[i]);
      const double x1 = static_cast<double>(a[i + 1]);
      t0 += static_cast<double>(wgt[i]) * x0 * x0;
      t1 += static_cast<double>(wgt[i + 1]) * x1 * x1;
    }
    double total = t0 + t1;
    for (; i < n; ++i) {
      const double x = static_cast<double>(a[i]);
      total += static_cast<double>(wgt[i]) * x * x;
    }
    return total;
  }
}

template <class V>
void ip_axpy(typename V::elem* dst, double s, const typename V::elem* src,
             std::size_t n) {
  using T = typename V::elem;
  const T sv = static_cast<T>(s);
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    const typename V::reg vs = V::set1(sv);
    for (; i + w <= n; i += w) {
      V::store(dst + i,
               V::add(V::load(dst + i), V::mul(vs, V::load(src + i))));
    }
  }
  for (; i < n; ++i) dst[i] += sv * src[i];
}

template <class V>
void ip_scale(typename V::elem* dst, double s, std::size_t n) {
  using T = typename V::elem;
  const T sv = static_cast<T>(s);
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    const typename V::reg vs = V::set1(sv);
    for (; i + w <= n; i += w) {
      V::store(dst + i, V::mul(V::load(dst + i), vs));
    }
  }
  for (; i < n; ++i) dst[i] *= sv;
}

template <class V>
void ip_axpby(typename V::elem* dst, double a, double b,
              const typename V::elem* src, std::size_t n) {
  using T = typename V::elem;
  const T av = static_cast<T>(a);
  const T bv = static_cast<T>(b);
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    const typename V::reg va = V::set1(av);
    const typename V::reg vb = V::set1(bv);
    for (; i + w <= n; i += w) {
      V::store(dst + i, V::add(V::mul(va, V::load(dst + i)),
                               V::mul(vb, V::load(src + i))));
    }
  }
  for (; i < n; ++i) dst[i] = av * dst[i] + bv * src[i];
}

template <class V>
void ip_acc_add(typename V::elem* dst, const typename V::elem* src,
                std::size_t n) {
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    for (; i + w <= n; i += w) {
      V::store(dst + i, V::add(V::load(dst + i), V::load(src + i)));
    }
  }
  for (; i < n; ++i) dst[i] += src[i];
}

// Fused Adam sweep. The vector body performs the exact lane-wise IEEE
// operation sequence of the scalar fringe (mul/add/div/sqrt, never FMA),
// so the update is bit-identical across dispatch variants — checkpoints
// written under one variant resume bit-for-bit under another. The fp64
// cfg fields are cast once at entry (identity for the fp64 table; the
// mixed-precision Trainer never runs Adam in fp32 — master weights stay
// double — but the instantiation exists for table completeness).
template <class V>
void adam_sweep(typename V::elem* p, const typename V::elem* g,
                typename V::elem* m, typename V::elem* v, std::size_t n,
                const AdamParams& cfg) {
  using T = typename V::elem;
  const bool coupled_wd = cfg.weight_decay > 0.0 && !cfg.decoupled;
  const bool decoupled_wd = cfg.weight_decay > 0.0 && cfg.decoupled;
  const T lr = static_cast<T>(cfg.lr);
  const T beta1 = static_cast<T>(cfg.beta1);
  const T beta2 = static_cast<T>(cfg.beta2);
  const T eps = static_cast<T>(cfg.eps);
  const T wd = static_cast<T>(cfg.weight_decay);
  const T bc1 = static_cast<T>(cfg.bias_corr1);
  const T bc2 = static_cast<T>(cfg.bias_corr2);
  const T ob1 = T(1.0) - beta1;
  const T ob2 = T(1.0) - beta2;
  constexpr std::size_t w = V::kWidth;
  std::size_t i = 0;
  if constexpr (w > 1) {
    const typename V::reg vb1 = V::set1(beta1);
    const typename V::reg vob1 = V::set1(ob1);
    const typename V::reg vb2 = V::set1(beta2);
    const typename V::reg vob2 = V::set1(ob2);
    const typename V::reg vbc1 = V::set1(bc1);
    const typename V::reg vbc2 = V::set1(bc2);
    const typename V::reg veps = V::set1(eps);
    const typename V::reg vlr = V::set1(lr);
    const typename V::reg vwd = V::set1(wd);
    for (; i + w <= n; i += w) {
      const typename V::reg pv = V::load(p + i);
      typename V::reg gj = V::load(g + i);
      if (coupled_wd) gj = V::add(gj, V::mul(vwd, pv));
      const typename V::reg mv =
          V::add(V::mul(vb1, V::load(m + i)), V::mul(vob1, gj));
      const typename V::reg vv = V::add(V::mul(vb2, V::load(v + i)),
                                        V::mul(vob2, V::mul(gj, gj)));
      V::store(m + i, mv);
      V::store(v + i, vv);
      const typename V::reg m_hat = V::div(mv, vbc1);
      const typename V::reg v_hat = V::div(vv, vbc2);
      typename V::reg update =
          V::div(m_hat, V::add(V::sqrt(v_hat), veps));
      if (decoupled_wd) update = V::add(update, V::mul(vwd, pv));
      V::store(p + i, V::sub(pv, V::mul(vlr, update)));
    }
  }
  for (; i < n; ++i) {
    T gj = g[i];
    if (coupled_wd) gj = gj + wd * p[i];
    m[i] = beta1 * m[i] + ob1 * gj;
    v[i] = beta2 * v[i] + ob2 * (gj * gj);
    const T m_hat = m[i] / bc1;
    const T v_hat = v[i] / bc2;
    T update = m_hat / (std::sqrt(v_hat) + eps);
    if (decoupled_wd) update = update + wd * p[i];
    p[i] = p[i] - lr * update;
  }
}

// ---- matmul micro-kernels ------------------------------------------------
//
// Register-tiled accumulator blocks of V::kMmRowTile output rows by 8
// output columns (8 / kWidth vector registers per row). Each loaded
// element feeds several FMAs; remainder fringes run plain scalar loops.
// No operand value is ever skipped (0 * NaN stays NaN).

inline constexpr std::int64_t kMmColTile = 8;

/// Depth cap for the stack-packed panels of the transposed matmul variants
/// (mm_tn_rows / mm_nt_rows). Panels are at most kMmPackK * 8 elements
/// (32 KiB of doubles) of stack — no heap traffic — and every layer in
/// this codebase has k far below the cap; larger k falls back to the
/// unpacked tile loop.
inline constexpr std::int64_t kMmPackK = 512;

template <class V>
void mm_rows(const typename V::elem* pa, const typename V::elem* pb,
             typename V::elem* po, std::int64_t i0, std::int64_t i1,
             std::int64_t k, std::int64_t m) {
  using T = typename V::elem;
  constexpr std::int64_t rt = V::kMmRowTile;
  constexpr std::int64_t cv =
      kMmColTile / static_cast<std::int64_t>(V::kWidth);
  constexpr std::size_t w = V::kWidth;
  for (std::int64_t i = i0; i < i1; i += rt) {
    const std::int64_t ib = std::min(rt, i1 - i);
    for (std::int64_t j = 0; j < m; j += kMmColTile) {
      const std::int64_t jb = std::min(kMmColTile, m - j);
      if (ib == rt && jb == kMmColTile) {
        typename V::reg acc[rt][cv];
        for (std::int64_t r = 0; r < rt; ++r) {
          for (std::int64_t c = 0; c < cv; ++c) acc[r][c] = V::zero();
        }
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const T* b_row = pb + kk * m + j;
          typename V::reg bv[cv];
          for (std::int64_t c = 0; c < cv; ++c) {
            bv[c] = V::load(b_row + static_cast<std::size_t>(c) * w);
          }
          for (std::int64_t r = 0; r < rt; ++r) {
            const typename V::reg a_rk = V::set1(pa[(i + r) * k + kk]);
            for (std::int64_t c = 0; c < cv; ++c) {
              acc[r][c] = V::fma(a_rk, bv[c], acc[r][c]);
            }
          }
        }
        for (std::int64_t r = 0; r < rt; ++r) {
          T* out_row = po + (i + r) * m + j;
          for (std::int64_t c = 0; c < cv; ++c) {
            V::store(out_row + static_cast<std::size_t>(c) * w, acc[r][c]);
          }
        }
      } else {
        for (std::int64_t r = 0; r < ib; ++r) {
          T* out_row = po + (i + r) * m + j;
          const T* a_row = pa + (i + r) * k;
          for (std::int64_t kk = 0; kk < k; ++kk) {
            const T a_rk = a_row[kk];
            const T* b_row = pb + kk * m + j;
            for (std::int64_t c = 0; c < jb; ++c) {
              out_row[c] += a_rk * b_row[c];
            }
          }
        }
      }
    }
  }
}

// a[k,n]^T * b[k,m]: row r of the output tile reads COLUMN i+r of `a`, a
// stride-n walk that touches a fresh cache line per k step. The packed path
// copies the rt columns of the current row tile into a contiguous stack
// panel once, then every column tile of `b` streams against it with the
// exact FMA schedule of mm_rows.
template <class V>
void mm_tn_rows(const typename V::elem* pa, const typename V::elem* pb,
                typename V::elem* po, std::int64_t i0, std::int64_t i1,
                std::int64_t k, std::int64_t n, std::int64_t m) {
  using T = typename V::elem;
  constexpr std::int64_t rt = V::kMmRowTile;
  constexpr std::int64_t cv =
      kMmColTile / static_cast<std::int64_t>(V::kWidth);
  constexpr std::size_t w = V::kWidth;
  alignas(64) T apack[static_cast<std::size_t>(kMmPackK * rt)];
  for (std::int64_t i = i0; i < i1; i += rt) {
    const std::int64_t ib = std::min(rt, i1 - i);
    const bool packed = ib == rt && k <= kMmPackK;
    if (packed) {
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const T* a_col = pa + kk * n + i;
        for (std::int64_t r = 0; r < rt; ++r) apack[kk * rt + r] = a_col[r];
      }
    }
    for (std::int64_t j = 0; j < m; j += kMmColTile) {
      const std::int64_t jb = std::min(kMmColTile, m - j);
      if (ib == rt && jb == kMmColTile) {
        typename V::reg acc[rt][cv];
        for (std::int64_t r = 0; r < rt; ++r) {
          for (std::int64_t c = 0; c < cv; ++c) acc[r][c] = V::zero();
        }
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const T* a_col = packed ? apack + kk * rt : pa + kk * n + i;
          const T* b_row = pb + kk * m + j;
          typename V::reg bv[cv];
          for (std::int64_t c = 0; c < cv; ++c) {
            bv[c] = V::load(b_row + static_cast<std::size_t>(c) * w);
          }
          for (std::int64_t r = 0; r < rt; ++r) {
            const typename V::reg a_rk = V::set1(a_col[r]);
            for (std::int64_t c = 0; c < cv; ++c) {
              acc[r][c] = V::fma(a_rk, bv[c], acc[r][c]);
            }
          }
        }
        for (std::int64_t r = 0; r < rt; ++r) {
          T* out_row = po + (i + r) * m + j;
          for (std::int64_t c = 0; c < cv; ++c) {
            V::store(out_row + static_cast<std::size_t>(c) * w, acc[r][c]);
          }
        }
      } else {
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const T* a_col = pa + kk * n + i;
          const T* b_row = pb + kk * m + j;
          for (std::int64_t r = 0; r < ib; ++r) {
            T* out_row = po + (i + r) * m + j;
            const T a_rk = a_col[r];
            for (std::int64_t c = 0; c < jb; ++c) {
              out_row[c] += a_rk * b_row[c];
            }
          }
        }
      }
    }
  }
}

// a[n,k] * b[m,k]^T: output column j+c reads ROW j+c of `b`, so the
// broadcast-A tile of mm_rows needs b transposed. The packed path
// transposes an 8-row panel of `b` into a contiguous stack buffer once per
// column tile — amortized over every row tile of `a` — and then runs the
// mm_rows schedule (broadcast a, vector b, one FMA per element) instead of
// per-element dot products ending in a horizontal sum. Fringes and
// deeper-than-cap k fall back to vector dots with a scalar tail.
template <class V>
void mm_nt_rows(const typename V::elem* pa, const typename V::elem* pb,
                typename V::elem* po, std::int64_t i0, std::int64_t i1,
                std::int64_t k, std::int64_t m) {
  using T = typename V::elem;
  constexpr std::int64_t rt = V::kMmRowTile;
  constexpr std::int64_t cv =
      kMmColTile / static_cast<std::int64_t>(V::kWidth);
  constexpr std::size_t w = V::kWidth;
  const std::size_t kw = static_cast<std::size_t>(k);
  alignas(64) T bpack[static_cast<std::size_t>(kMmPackK * kMmColTile)];
  for (std::int64_t j = 0; j < m; j += kMmColTile) {
    const std::int64_t jb = std::min(kMmColTile, m - j);
    const bool packed = jb == kMmColTile && k <= kMmPackK;
    if (packed) {
      for (std::int64_t c = 0; c < kMmColTile; ++c) {
        const T* b_row = pb + (j + c) * k;
        for (std::int64_t kk = 0; kk < k; ++kk) {
          bpack[kk * kMmColTile + c] = b_row[kk];
        }
      }
    }
    for (std::int64_t i = i0; i < i1; i += rt) {
      const std::int64_t ib = std::min(rt, i1 - i);
      if (packed && ib == rt) {
        typename V::reg acc[rt][cv];
        for (std::int64_t r = 0; r < rt; ++r) {
          for (std::int64_t c = 0; c < cv; ++c) acc[r][c] = V::zero();
        }
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const T* b_row = bpack + kk * kMmColTile;
          typename V::reg bv[cv];
          for (std::int64_t c = 0; c < cv; ++c) {
            bv[c] = V::load(b_row + static_cast<std::size_t>(c) * w);
          }
          for (std::int64_t r = 0; r < rt; ++r) {
            const typename V::reg a_rk = V::set1(pa[(i + r) * k + kk]);
            for (std::int64_t c = 0; c < cv; ++c) {
              acc[r][c] = V::fma(a_rk, bv[c], acc[r][c]);
            }
          }
        }
        for (std::int64_t r = 0; r < rt; ++r) {
          T* out_row = po + (i + r) * m + j;
          for (std::int64_t c = 0; c < cv; ++c) {
            V::store(out_row + static_cast<std::size_t>(c) * w, acc[r][c]);
          }
        }
      } else {
        // Fringe tile or k beyond the pack cap: per-element vector dot
        // products with a scalar k-tail.
        for (std::int64_t r = 0; r < ib; ++r) {
          const T* a_row = pa + (i + r) * k;
          T* out_row = po + (i + r) * m + j;
          for (std::int64_t c = 0; c < jb; ++c) {
            const T* b_row = pb + (j + c) * k;
            typename V::reg acc = V::zero();
            std::size_t kk = 0;
            for (; kk + w <= kw; kk += w) {
              acc = V::fma(V::load(a_row + kk), V::load(b_row + kk), acc);
            }
            T total = V::hsum(acc);
            for (; kk < kw; ++kk) total += a_row[kk] * b_row[kk];
            out_row[c] = total;
          }
        }
      }
    }
  }
}

/// Builds the full table for one vector wrapper. Instantiated once per
/// element type per per-ISA translation unit (see simd_scalar.cpp and
/// friends).
template <class V>
KernelTableT<typename V::elem> make_table(Isa isa, const char* name) {
  KernelTableT<typename V::elem> t;
  t.isa = isa;
  t.name = name;
  t.width = V::kWidth;
  t.bin_same[kAdd] = &ew_bin<V, OpAdd>;
  t.bin_same[kSub] = &ew_bin<V, OpSub>;
  t.bin_same[kMul] = &ew_bin<V, OpMul>;
  t.bin_same[kDiv] = &ew_bin<V, OpDiv>;
  t.bin_row[kAdd] = &ew_bin_row<V, OpAdd>;
  t.bin_row[kSub] = &ew_bin_row<V, OpSub>;
  t.bin_row[kMul] = &ew_bin_row<V, OpMul>;
  t.bin_row[kDiv] = &ew_bin_row<V, OpDiv>;
  t.neg = &ew_neg<V>;
  t.scale = &ew_scale<V>;
  t.add_scalar = &ew_add_scalar<V>;
  t.square = &ew_square<V>;
  t.reciprocal = &ew_reciprocal<V>;
  t.sqrt = &ew_sqrt<V>;
  t.abs = &ew_abs<V>;
  t.relu = &ew_relu<V>;
  t.step = &ew_step<V>;
  t.sign = &ew_sign<V>;
  t.tanh = &ew_tanh<V>;
  t.bias_tanh = &ew_bias_tanh<V>;
  t.tanh_grad = &ew_bin<V, OpTanhGrad>;
  t.dot = &red_dot<V>;
  t.sum = &red_sum<V>;
  t.square_sum = &red_square_sum<V>;
  t.weighted_square_sum = &red_weighted_square_sum<V>;
  t.axpy = &ip_axpy<V>;
  t.scale_inplace = &ip_scale<V>;
  t.axpby = &ip_axpby<V>;
  t.acc_add = &ip_acc_add<V>;
  t.adam = &adam_sweep<V>;
  t.matmul_rows = &mm_rows<V>;
  t.matmul_tn_rows = &mm_tn_rows<V>;
  t.matmul_nt_rows = &mm_nt_rows<V>;
  return t;
}

}  // namespace detail

}  // namespace qpinn::simd

// Runtime dispatch for the SIMD layer: CPU feature detection, the
// QPINN_SIMD override, and the atomic active-table pointer.
//
// The per-ISA tables themselves live in simd_scalar.cpp / simd_sse2.cpp /
// simd_avx2.cpp / simd_neon.cpp, each compiled with the matching target
// flags (see src/CMakeLists.txt); this TU is compiled with the project
// baseline, so it only ever calls through function pointers after the
// runtime support check.
#include "tensor/simd.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <mutex>

#include "util/env.hpp"
#include "util/error.hpp"

namespace qpinn::simd {

namespace detail {

// Defined in the per-ISA translation units.
const KernelTable* scalar_table();
const KernelTableF* scalar_table_f32();
#if defined(QPINN_SIMD_X86)
const KernelTable* sse2_table();
const KernelTableF* sse2_table_f32();
#endif
#if defined(QPINN_HAVE_AVX2_TU)
const KernelTable* avx2_table();
const KernelTableF* avx2_table_f32();
#endif
#if defined(QPINN_SIMD_NEON)
const KernelTable* neon_table();
const KernelTableF* neon_table_f32();
#endif

namespace {

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse2:
#if defined(QPINN_SIMD_X86)
      // SSE2 is part of the x86-64 baseline ABI.
      return true;
#else
      return false;
#endif
    case Isa::kAvx2:
#if defined(QPINN_SIMD_X86) && (defined(__GNUC__) || defined(__clang__))
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(QPINN_SIMD_NEON)
      // Advanced SIMD is architecturally mandatory on AArch64.
      return true;
#else
      return false;
#endif
  }
  return false;
}

// Null when the variant is compiled out or unsupported on this CPU.
const KernelTable* table_for(Isa isa) {
  if (!cpu_supports(isa)) return nullptr;
  switch (isa) {
    case Isa::kScalar:
      return scalar_table();
    case Isa::kSse2:
#if defined(QPINN_SIMD_X86)
      return sse2_table();
#else
      return nullptr;
#endif
    case Isa::kAvx2:
#if defined(QPINN_HAVE_AVX2_TU)
      return avx2_table();
#else
      return nullptr;
#endif
    case Isa::kNeon:
#if defined(QPINN_SIMD_NEON)
      return neon_table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

// The fp32 twin of table_for; same guards, so whenever table_for(isa)
// returns non-null this does too.
const KernelTableF* table_f32_for(Isa isa) {
  if (!cpu_supports(isa)) return nullptr;
  switch (isa) {
    case Isa::kScalar:
      return scalar_table_f32();
    case Isa::kSse2:
#if defined(QPINN_SIMD_X86)
      return sse2_table_f32();
#else
      return nullptr;
#endif
    case Isa::kAvx2:
#if defined(QPINN_HAVE_AVX2_TU)
      return avx2_table_f32();
#else
      return nullptr;
#endif
    case Isa::kNeon:
#if defined(QPINN_SIMD_NEON)
      return neon_table_f32();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const KernelTable* resolve_initial() {
  const std::string requested = env_string("QPINN_SIMD");
  if (!requested.empty()) {
    const Isa isa = parse_isa(requested);
    const KernelTable* t = table_for(isa);
    if (t == nullptr) {
      throw ConfigError("QPINN_SIMD requests '" + std::string(isa_name(isa)) +
                        "', which is not available on this build/CPU");
    }
    return t;
  }
  for (const Isa isa : {Isa::kAvx2, Isa::kNeon, Isa::kSse2}) {
    if (const KernelTable* t = table_for(isa)) return t;
  }
  return scalar_table();
}

std::atomic<const KernelTable*> g_active{nullptr};

}  // namespace

}  // namespace detail

const KernelTable& active() {
  const KernelTable* t = detail::g_active.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  static std::once_flag once;
  std::call_once(once, [] {
    detail::g_active.store(detail::resolve_initial(),
                           std::memory_order_release);
  });
  return *detail::g_active.load(std::memory_order_acquire);
}

const KernelTableF& active_f32() {
  // Derived from the fp64 table so both widths always agree on the ISA
  // (force_isa swaps them together; QPINN_SIMD picks both).
  return *detail::table_f32_for(active().isa);
}

Isa active_isa() { return active().isa; }

bool force_isa(Isa isa) {
  const KernelTable* t = detail::table_for(isa);
  if (t == nullptr) return false;
  active();  // make sure first-use resolution has happened
  detail::g_active.store(t, std::memory_order_release);
  return true;
}

std::vector<Isa> available_isas() {
  std::vector<Isa> out;
  for (const Isa isa : {Isa::kAvx2, Isa::kNeon, Isa::kSse2, Isa::kScalar}) {
    if (detail::table_for(isa) != nullptr) out.push_back(isa);
  }
  return out;
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

Isa parse_isa(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (const char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "off" || lower == "scalar") return Isa::kScalar;
  if (lower == "sse2") return Isa::kSse2;
  if (lower == "avx2") return Isa::kAvx2;
  if (lower == "neon") return Isa::kNeon;
  throw ConfigError("unknown QPINN_SIMD value '" + name +
                    "' (expected off|scalar|sse2|avx2|neon)");
}

}  // namespace qpinn::simd

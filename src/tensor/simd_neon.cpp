// NEON instantiation of the SIMD kernel templates (128-bit, 2 doubles).
// Advanced SIMD is architecturally mandatory on AArch64, so no runtime
// probe is needed; this TU is only added to the build on aarch64.
#include "tensor/simd.hpp"

#if defined(QPINN_SIMD_NEON)

namespace qpinn::simd::detail {

const KernelTable* neon_table() {
  static const KernelTable table = make_table<VecNeon>(Isa::kNeon, "neon");
  return &table;
}

const KernelTableF* neon_table_f32() {
  static const KernelTableF table = make_table<VecNeonF>(Isa::kNeon, "neon");
  return &table;
}

}  // namespace qpinn::simd::detail

#endif  // QPINN_SIMD_NEON

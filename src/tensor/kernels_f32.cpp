#include "tensor/kernels_f32.hpp"

#include <algorithm>
#include <cmath>

#include "parallel/parallel_for.hpp"

namespace qpinn::kernels_f32 {

namespace {

// Same chunking policy as the fp64 paths in kernels.cpp: table kernels
// are handed contiguous chunks by parallel_for with the default grain;
// row kernels use grain 64 (bin_row) / 16 (fused activations); matmul
// rows use the flops-derived grain below.
constexpr std::int64_t kMinRowsPerChunk = 4;
constexpr std::int64_t kSerialFlops = 16384;

std::size_t matmul_grain(std::int64_t flops_per_row) {
  return static_cast<std::size_t>(std::max<std::int64_t>(
      kMinRowsPerChunk,
      kSerialFlops / std::max<std::int64_t>(1, flops_per_row)));
}

template <typename ChunkFn>
void unary_table(const float* a, float* o, std::size_t n, ChunkFn fn) {
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(a + begin, o + begin, end - begin);
  });
}

template <typename ScalarFn>
void unary_scalar(const float* a, float* o, std::size_t n, ScalarFn f) {
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) o[i] = f(a[i]);
  });
}

}  // namespace

void downcast(float* dst, const double* src, std::size_t n) {
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      dst[i] = static_cast<float>(src[i]);
    }
  });
}

void upcast(double* dst, const float* src, std::size_t n) {
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      dst[i] = static_cast<double>(src[i]);
    }
  });
}

void bin_same(simd::BinOp op, const float* a, const float* b, float* o,
              std::size_t n) {
  auto* fn = simd::active_f32().bin_same[op];
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(a + begin, b + begin, o + begin, end - begin);
  });
}

void bin_row(simd::BinOp op, const float* a, const float* b, float* o,
             std::size_t rows, std::size_t cols) {
  auto* fn = simd::active_f32().bin_row[op];
  parallel_for(
      rows,
      [&](std::size_t begin, std::size_t end) {
        fn(a + begin * cols, b, o + begin * cols, end - begin, cols);
      },
      64);
}

void bin_scalar_rhs(simd::BinOp op, const float* a, double s, float* o,
                    std::size_t n) {
  const auto& t = simd::active_f32();
  switch (op) {
    case simd::kAdd:
      unary_table(a, o, n, [&](const float* p, float* q, std::size_t c) {
        t.add_scalar(p, s, q, c);
      });
      break;
    case simd::kSub:
      unary_table(a, o, n, [&](const float* p, float* q, std::size_t c) {
        t.add_scalar(p, -s, q, c);
      });
      break;
    case simd::kMul:
      unary_table(a, o, n, [&](const float* p, float* q, std::size_t c) {
        t.scale(p, s, q, c);
      });
      break;
    case simd::kDiv: {
      // Matches the fp64 scalar-operand path, which divides per element
      // rather than multiplying by a precomputed reciprocal.
      const float sv = static_cast<float>(s);
      unary_scalar(a, o, n, [sv](float x) { return x / sv; });
      break;
    }
    default:
      break;
  }
}

void bin_scalar_lhs(simd::BinOp op, double s, const float* b, float* o,
                    std::size_t n) {
  const float sv = static_cast<float>(s);
  switch (op) {
    case simd::kAdd:
      unary_scalar(b, o, n, [sv](float x) { return sv + x; });
      break;
    case simd::kSub:
      unary_scalar(b, o, n, [sv](float x) { return sv - x; });
      break;
    case simd::kMul:
      unary_scalar(b, o, n, [sv](float x) { return sv * x; });
      break;
    case simd::kDiv:
      unary_scalar(b, o, n, [sv](float x) { return sv / x; });
      break;
    default:
      break;
  }
}

void neg(const float* a, float* o, std::size_t n) {
  unary_table(a, o, n, simd::active_f32().neg);
}
void square(const float* a, float* o, std::size_t n) {
  unary_table(a, o, n, simd::active_f32().square);
}
void sqrt(const float* a, float* o, std::size_t n) {
  unary_table(a, o, n, simd::active_f32().sqrt);
}
void reciprocal(const float* a, float* o, std::size_t n) {
  unary_table(a, o, n, simd::active_f32().reciprocal);
}
void relu(const float* a, float* o, std::size_t n) {
  unary_table(a, o, n, simd::active_f32().relu);
}
void abs(const float* a, float* o, std::size_t n) {
  unary_table(a, o, n, simd::active_f32().abs);
}
void step(const float* a, float* o, std::size_t n) {
  unary_table(a, o, n, simd::active_f32().step);
}
void sign(const float* a, float* o, std::size_t n) {
  unary_table(a, o, n, simd::active_f32().sign);
}
void tanh(const float* a, float* o, std::size_t n) {
  unary_table(a, o, n, simd::active_f32().tanh);
}

void exp(const float* a, float* o, std::size_t n) {
  unary_scalar(a, o, n, [](float x) { return std::exp(x); });
}
void log(const float* a, float* o, std::size_t n) {
  unary_scalar(a, o, n, [](float x) { return std::log(x); });
}
void sin(const float* a, float* o, std::size_t n) {
  unary_scalar(a, o, n, [](float x) { return std::sin(x); });
}
void cos(const float* a, float* o, std::size_t n) {
  unary_scalar(a, o, n, [](float x) { return std::cos(x); });
}
void sigmoid(const float* a, float* o, std::size_t n) {
  unary_scalar(a, o, n, [](float x) { return 1.0F / (1.0F + std::exp(-x)); });
}
void softplus(const float* a, float* o, std::size_t n) {
  unary_scalar(a, o, n, [](float x) {
    return x > 0.0F ? x + std::log1p(std::exp(-x)) : std::log1p(std::exp(x));
  });
}

void scale(const float* a, double s, float* o, std::size_t n) {
  auto* fn = simd::active_f32().scale;
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(a + begin, s, o + begin, end - begin);
  });
}

void add_scalar(const float* a, double s, float* o, std::size_t n) {
  auto* fn = simd::active_f32().add_scalar;
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(a + begin, s, o + begin, end - begin);
  });
}

void pow_scalar(const float* a, double p, float* o, std::size_t n) {
  const float pv = static_cast<float>(p);
  unary_scalar(a, o, n, [pv](float x) { return std::pow(x, pv); });
}

void bias_tanh(const float* a, const float* b, float* o, std::size_t rows,
               std::size_t cols) {
  auto* fn = simd::active_f32().bias_tanh;
  parallel_for(
      rows,
      [&](std::size_t begin, std::size_t end) {
        fn(a + begin * cols, b, o + begin * cols, end - begin, cols);
      },
      16);
}

void bias_sin(const float* a, const float* b, float* o, std::size_t rows,
              std::size_t cols) {
  parallel_for(
      rows,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t r = begin; r < end; ++r) {
          const float* pa = a + r * cols;
          float* po = o + r * cols;
          for (std::size_t c = 0; c < cols; ++c) {
            po[c] = std::sin(pa[c] + b[c]);
          }
        }
      },
      16);
}

void tanh_grad(const float* g, const float* t, float* o, std::size_t n) {
  auto* fn = simd::active_f32().tanh_grad;
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(g + begin, t + begin, o + begin, end - begin);
  });
}

void copy(float* dst, const float* src, std::size_t n) {
  std::copy(src, src + n, dst);
}

void fill_zero(float* o, std::size_t n) { std::fill(o, o + n, 0.0F); }

void fill_value(float* o, double v, std::size_t n) {
  std::fill(o, o + n, static_cast<float>(v));
}

void axpy(float* dst, double s, const float* src, std::size_t n) {
  auto* fn = simd::active_f32().axpy;
  parallel_for(n, [&](std::size_t begin, std::size_t end) {
    fn(dst + begin, s, src + begin, end - begin);
  });
}

void transpose(const float* a, float* o, std::int64_t n, std::int64_t m) {
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < m; ++j) o[j * n + i] = a[i * m + j];
  }
}

void sum_to_rows(const float* a, float* o, std::size_t rows,
                 std::size_t cols) {
  auto* fn = simd::active_f32().acc_add;
  std::fill(o, o + cols, 0.0F);
  for (std::size_t r = 0; r < rows; ++r) fn(o, a + r * cols, cols);
}

void matmul(const float* a, const float* b, float* o, std::int64_t n,
            std::int64_t k, std::int64_t m) {
  std::fill(o, o + n * m, 0.0F);
  auto* fn = simd::active_f32().matmul_rows;
  parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t begin, std::size_t end) {
        fn(a, b, o, static_cast<std::int64_t>(begin),
           static_cast<std::int64_t>(end), k, m);
      },
      matmul_grain(k * m));
}

double sum(const float* a, std::size_t n) {
  auto* fn = simd::active_f32().sum;
  return parallel_reduce<double>(
      n, 0.0,
      [&](std::size_t begin, std::size_t end, double acc) {
        return acc + fn(a + begin, end - begin);
      },
      [](double x, double y) { return x + y; });
}

double square_sum(const float* a, std::size_t n) {
  auto* fn = simd::active_f32().square_sum;
  return parallel_reduce<double>(
      n, 0.0,
      [&](std::size_t begin, std::size_t end, double acc) {
        return acc + fn(a + begin, end - begin);
      },
      [](double x, double y) { return x + y; });
}

double weighted_square_sum(const float* w, const float* a, std::size_t n) {
  auto* fn = simd::active_f32().weighted_square_sum;
  return parallel_reduce<double>(
      n, 0.0,
      [&](std::size_t begin, std::size_t end, double acc) {
        return acc + fn(w + begin, a + begin, end - begin);
      },
      [](double x, double y) { return x + y; });
}

double weighted_square_sum_rows(const float* w, const float* a,
                                std::size_t rows, std::size_t cols) {
  auto* fn = simd::active_f32().square_sum;
  return parallel_reduce<double>(
      rows, 0.0,
      [&](std::size_t begin, std::size_t end, double acc) {
        for (std::size_t r = begin; r < end; ++r) {
          acc += static_cast<double>(w[r]) * fn(a + r * cols, cols);
        }
        return acc;
      },
      [](double x, double y) { return x + y; },
      16);
}

}  // namespace qpinn::kernels_f32

// Stochastic gradient descent with optional momentum / Nesterov /
// weight decay.
#pragma once

#include "optim/optimizer.hpp"

namespace qpinn::optim {

struct SgdConfig {
  double lr = 1e-2;
  double momentum = 0.0;
  bool nesterov = false;
  double weight_decay = 0.0;
};

class Sgd : public Optimizer {
 public:
  Sgd(std::vector<autodiff::Variable> params, const SgdConfig& config);

  void reset() override;

  /// Slots layout: [velocity_0..velocity_{n-1}] (empty without momentum).
  OptimizerState export_state() const override;
  void import_state(const OptimizerState& state) override;

 protected:
  void apply(const std::vector<Tensor>& grads) override;

 private:
  SgdConfig config_;
  std::vector<Tensor> velocity_;  // lazily sized on first step
};

}  // namespace qpinn::optim

// Limited-memory BFGS with strong-Wolfe line search.
//
// Classical PINN practice trains with Adam first and refines with L-BFGS;
// this implementation uses the standard two-loop recursion over the last
// m curvature pairs. Unlike the first-order optimizers it drives the
// loss/gradient evaluations itself, so it takes a closure.
#pragma once

#include <functional>
#include <vector>

#include "autodiff/variable.hpp"

namespace qpinn::optim {

struct LbfgsConfig {
  std::int64_t max_iterations = 100;
  std::int64_t history = 10;       ///< stored curvature pairs (m)
  double grad_tolerance = 1e-8;    ///< stop when ||g||_inf below this
  double wolfe_c1 = 1e-4;          ///< sufficient-decrease constant
  double wolfe_c2 = 0.9;           ///< curvature constant
  std::int64_t max_line_search = 25;
};

struct LbfgsResult {
  double final_loss = 0.0;
  double final_grad_norm = 0.0;
  std::int64_t iterations = 0;
  bool converged = false;          ///< grad tolerance reached
  bool line_search_failed = false;
};

/// Evaluates the objective at the CURRENT parameter values and returns
/// (loss, gradients). The optimizer mutates the parameters in place
/// between calls.
using LossClosure = std::function<std::pair<double, std::vector<Tensor>>()>;

/// Minimizes the closure over the given parameter leaves.
LbfgsResult lbfgs_minimize(std::vector<autodiff::Variable> params,
                           const LossClosure& closure,
                           const LbfgsConfig& config = {});

}  // namespace qpinn::optim

#include "optim/sgd.hpp"

#include "tensor/kernels.hpp"
#include "util/error.hpp"

namespace qpinn::optim {

Sgd::Sgd(std::vector<autodiff::Variable> params, const SgdConfig& config)
    : Optimizer(std::move(params), config.lr), config_(config) {
  QPINN_CHECK(config.momentum >= 0.0 && config.momentum < 1.0,
              "momentum must be in [0, 1)");
  QPINN_CHECK(!config.nesterov || config.momentum > 0.0,
              "nesterov requires momentum > 0");
  QPINN_CHECK(config.weight_decay >= 0.0, "weight_decay must be >= 0");
}

void Sgd::reset() { velocity_.clear(); }

OptimizerState Sgd::export_state() const {
  OptimizerState state;
  detail::clone_into_slots(state.slots, velocity_);
  return state;
}

void Sgd::import_state(const OptimizerState& state) {
  detail::validate_state_agreement(state, params_, "Sgd::import_state");
  if (state.slots.empty()) {
    velocity_.clear();
    return;
  }
  QPINN_CHECK(state.slots.size() == params_.size(),
              "Sgd::import_state expects 1 slot per parameter");
  velocity_ = detail::clone_slot_group(state, 0, params_, "Sgd velocity");
}

void Sgd::apply(const std::vector<Tensor>& grads) {
  if (config_.momentum > 0.0 && velocity_.empty()) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) {
      velocity_.push_back(Tensor::zeros(p.value().shape()));
    }
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& param = params_[i].mutable_value();
    Tensor effective = grads[i].clone();
    if (config_.weight_decay > 0.0) {
      kernels::axpy_inplace(effective, config_.weight_decay, param);
    }
    if (config_.momentum > 0.0) {
      Tensor& v = velocity_[i];
      // v = mu * v + g, one sweep instead of scale + axpy.
      kernels::axpby_inplace(v, config_.momentum, 1.0, effective);
      if (config_.nesterov) {
        // g + mu * v
        kernels::axpy_inplace(effective, config_.momentum, v);
      } else {
        effective = v.clone();
      }
    }
    kernels::axpy_inplace(param, -lr_, effective);
  }
}

}  // namespace qpinn::optim

// Optimizer interface.
//
// qpinn uses a functional gradient API: the trainer computes gradients via
// autodiff::grad and hands plain tensors to the optimizer, which updates
// the parameter leaves in place.
#pragma once

#include <vector>

#include "autodiff/variable.hpp"

namespace qpinn::optim {

class Optimizer {
 public:
  explicit Optimizer(std::vector<autodiff::Variable> params, double lr);
  virtual ~Optimizer() = default;

  /// Applies one update; grads[i] must match params[i] in shape. Throws
  /// NumericsError if any gradient is non-finite.
  void step(const std::vector<Tensor>& grads);

  /// Clears internal state (moments, step counters).
  virtual void reset() = 0;

  double lr() const { return lr_; }
  void set_lr(double lr);

  const std::vector<autodiff::Variable>& params() const { return params_; }

 protected:
  /// Backend update after validation.
  virtual void apply(const std::vector<Tensor>& grads) = 0;

  std::vector<autodiff::Variable> params_;
  double lr_;
};

/// Scales `grads` in place so their global L2 norm is at most `max_norm`;
/// returns the pre-clip norm.
double clip_grad_norm(std::vector<Tensor>& grads, double max_norm);

}  // namespace qpinn::optim

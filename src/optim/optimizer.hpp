// Optimizer interface.
//
// qpinn uses a functional gradient API: the trainer computes gradients via
// autodiff::grad and hands plain tensors to the optimizer, which updates
// the parameter leaves in place.
#pragma once

#include <vector>

#include "autodiff/variable.hpp"

namespace qpinn::optim {

/// Snapshot of an optimizer's mutable state in a backend-agnostic layout:
/// per-parameter buffers (moments, velocities, ...) in `slots`, ordered
/// buffer-major (all of buffer 0 across parameters, then all of buffer 1),
/// plus a step counter and optimizer-specific scalars. Produced by
/// export_state(), consumed by import_state(), serialized verbatim by
/// core::Checkpointer — so checkpoint/rollback code never needs to know
/// which optimizer it is saving.
struct OptimizerState {
  std::int64_t step_count = 0;
  std::vector<double> scalars;
  std::vector<Tensor> slots;  ///< deep copies, detached from the optimizer
};

class Optimizer {
 public:
  explicit Optimizer(std::vector<autodiff::Variable> params, double lr);
  virtual ~Optimizer() = default;

  /// Applies one update; grads[i] must match params[i] in shape. Throws
  /// NumericsError if any gradient is non-finite.
  void step(const std::vector<Tensor>& grads);

  /// Clears internal state (moments, step counters).
  virtual void reset() = 0;

  /// Deep-copies the mutable state (for in-memory rollback snapshots and
  /// on-disk checkpoints). Empty slots mean "no state accumulated yet".
  virtual OptimizerState export_state() const = 0;

  /// Restores a state produced by export_state() on an optimizer with the
  /// same parameter shapes; throws ValueError/ShapeError on mismatch.
  virtual void import_state(const OptimizerState& state) = 0;

  double lr() const { return lr_; }
  void set_lr(double lr);

  const std::vector<autodiff::Variable>& params() const { return params_; }

 protected:
  /// Backend update after validation.
  virtual void apply(const std::vector<Tensor>& grads) = 0;

  std::vector<autodiff::Variable> params_;
  double lr_;
};

/// Scales `grads` in place so their global L2 norm is at most `max_norm`;
/// returns the pre-clip norm.
double clip_grad_norm(std::vector<Tensor>& grads, double max_norm);

namespace detail {
/// Checked-build (QPINN_CHECKED) agreement validation between an imported
/// OptimizerState and the optimizer's parameters: step count non-negative,
/// slot count an exact per-parameter multiple, every slot tensor internally
/// consistent (Tensor::validate). Violations raise InvariantError at site
/// "optim.import_state" — a corrupted checkpoint is caught here rather
/// than silently skewing bias correction or moment shapes. No-op in
/// release builds.
void validate_state_agreement(const OptimizerState& state,
                              const std::vector<autodiff::Variable>& params,
                              const char* what);
/// Clones every tensor of `buffers` onto the end of `slots`.
void clone_into_slots(std::vector<Tensor>& slots,
                      const std::vector<Tensor>& buffers);
/// Extracts one per-parameter buffer group from `state.slots[offset ...]`,
/// shape-checked against `params`; `what` labels errors.
std::vector<Tensor> clone_slot_group(const OptimizerState& state,
                                     std::size_t offset,
                                     const std::vector<autodiff::Variable>&
                                         params,
                                     const char* what);
}  // namespace detail

}  // namespace qpinn::optim

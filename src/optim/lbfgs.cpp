#include "optim/lbfgs.hpp"

#include <cmath>
#include <deque>

#include "tensor/kernels.hpp"
#include "util/error.hpp"

namespace qpinn::optim {

namespace {

/// Flat-vector helpers over parameter-shaped tensor lists.
double dot_list(const std::vector<Tensor>& a, const std::vector<Tensor>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += kernels::dot(a[i], b[i]);
  return acc;
}

std::vector<Tensor> clone_list(const std::vector<Tensor>& a) {
  std::vector<Tensor> out;
  out.reserve(a.size());
  for (const Tensor& t : a) out.push_back(t.clone());
  return out;
}

void axpy_list(std::vector<Tensor>& dst, double s,
               const std::vector<Tensor>& src) {
  for (std::size_t i = 0; i < dst.size(); ++i) {
    kernels::axpy_inplace(dst[i], s, src[i]);
  }
}

void scale_list(std::vector<Tensor>& dst, double s) {
  for (Tensor& t : dst) kernels::scale_inplace(t, s);
}

double inf_norm(const std::vector<Tensor>& a) {
  double norm = 0.0;
  for (const Tensor& t : a) norm = std::max(norm, t.abs_max());
  return norm;
}

struct CurvaturePair {
  std::vector<Tensor> s;  // parameter step
  std::vector<Tensor> y;  // gradient change
  double rho = 0.0;       // 1 / <y, s>
};

}  // namespace

LbfgsResult lbfgs_minimize(std::vector<autodiff::Variable> params,
                           const LossClosure& closure,
                           const LbfgsConfig& config) {
  QPINN_CHECK(!params.empty(), "lbfgs: needs at least one parameter");
  QPINN_CHECK(config.history >= 1, "lbfgs: history must be >= 1");
  QPINN_CHECK(config.max_iterations >= 1, "lbfgs: max_iterations must be >= 1");
  QPINN_CHECK(0.0 < config.wolfe_c1 && config.wolfe_c1 < config.wolfe_c2 &&
                  config.wolfe_c2 < 1.0,
              "lbfgs: need 0 < c1 < c2 < 1");

  auto set_params = [&](const std::vector<Tensor>& values) {
    for (std::size_t i = 0; i < params.size(); ++i) {
      kernels::copy_into(params[i].mutable_value(), values[i]);
    }
  };
  auto get_params = [&] {
    std::vector<Tensor> values;
    values.reserve(params.size());
    for (const auto& p : params) values.push_back(p.value().clone());
    return values;
  };

  LbfgsResult result;
  auto [loss, grad] = closure();
  if (!std::isfinite(loss)) {
    throw NumericsError("lbfgs: initial loss is non-finite");
  }
  std::deque<CurvaturePair> history;

  for (std::int64_t iteration = 0; iteration < config.max_iterations;
       ++iteration) {
    result.iterations = iteration + 1;
    if (inf_norm(grad) < config.grad_tolerance) {
      result.converged = true;
      break;
    }

    // Two-loop recursion: direction = -H grad.
    std::vector<Tensor> direction = clone_list(grad);
    std::vector<double> alpha(history.size());
    for (std::size_t i = history.size(); i-- > 0;) {
      const CurvaturePair& pair = history[i];
      alpha[i] = pair.rho * dot_list(pair.s, direction);
      axpy_list(direction, -alpha[i], pair.y);
    }
    if (!history.empty()) {
      // Initial Hessian scaling gamma = <s, y> / <y, y>.
      const CurvaturePair& last = history.back();
      const double gamma =
          dot_list(last.s, last.y) / dot_list(last.y, last.y);
      scale_list(direction, gamma);
    }
    for (std::size_t i = 0; i < history.size(); ++i) {
      const CurvaturePair& pair = history[i];
      const double beta = pair.rho * dot_list(pair.y, direction);
      axpy_list(direction, alpha[i] - beta, pair.s);
    }
    scale_list(direction, -1.0);

    double derivative0 = dot_list(grad, direction);
    if (derivative0 >= 0.0) {
      // Not a descent direction (stale curvature); restart from steepest
      // descent.
      history.clear();
      direction = clone_list(grad);
      scale_list(direction, -1.0);
      derivative0 = -dot_list(grad, grad);
    }

    // Strong-Wolfe backtracking/extension line search.
    const std::vector<Tensor> x0 = get_params();
    const double loss0 = loss;
    double step = 1.0, lo = 0.0, hi = 0.0;
    bool have_hi = false, accepted = false;
    std::vector<Tensor> new_grad;
    double new_loss = 0.0;
    for (std::int64_t ls = 0; ls < config.max_line_search; ++ls) {
      std::vector<Tensor> x = clone_list(x0);
      axpy_list(x, step, direction);
      set_params(x);
      auto [trial_loss, trial_grad] = closure();
      if (!std::isfinite(trial_loss)) {
        // Treat as "too far": shrink.
        hi = step;
        have_hi = true;
        step = 0.5 * (lo + hi);
        continue;
      }
      const double derivative = dot_list(trial_grad, direction);
      if (trial_loss > loss0 + config.wolfe_c1 * step * derivative0) {
        hi = step;  // sufficient decrease violated: shrink
        have_hi = true;
      } else if (std::abs(derivative) >
                 config.wolfe_c2 * std::abs(derivative0)) {
        if (derivative > 0.0) {
          hi = step;  // overshot the minimum along the ray
          have_hi = true;
        } else {
          lo = step;  // still descending: extend
          if (!have_hi) {
            step *= 2.0;
            continue;
          }
        }
      } else {
        new_loss = trial_loss;
        new_grad = std::move(trial_grad);
        accepted = true;
        break;
      }
      step = have_hi ? 0.5 * (lo + hi) : step;
    }
    if (!accepted) {
      // Accept the best sufficient-decrease point if any progress was
      // made; otherwise stop.
      std::vector<Tensor> x = clone_list(x0);
      axpy_list(x, lo, direction);
      set_params(x);
      auto [fallback_loss, fallback_grad] = closure();
      if (lo > 0.0 && fallback_loss < loss0) {
        new_loss = fallback_loss;
        new_grad = std::move(fallback_grad);
        step = lo;
      } else {
        set_params(x0);
        result.line_search_failed = true;
        break;
      }
    }

    // Curvature update.
    CurvaturePair pair;
    pair.s = clone_list(direction);
    scale_list(pair.s, step);
    pair.y = clone_list(new_grad);
    axpy_list(pair.y, -1.0, grad);
    const double sy = dot_list(pair.s, pair.y);
    if (sy > 1e-12) {
      pair.rho = 1.0 / sy;
      history.push_back(std::move(pair));
      if (static_cast<std::int64_t>(history.size()) > config.history) {
        history.pop_front();
      }
    }
    loss = new_loss;
    grad = std::move(new_grad);
  }

  result.final_loss = loss;
  result.final_grad_norm = inf_norm(grad);
  return result;
}

}  // namespace qpinn::optim

#include "optim/adam.hpp"

#include <cmath>

#include "tensor/kernels.hpp"
#include "util/error.hpp"

namespace qpinn::optim {

Adam::Adam(std::vector<autodiff::Variable> params, const AdamConfig& config)
    : Optimizer(std::move(params), config.lr), config_(config) {
  QPINN_CHECK(config.beta1 >= 0.0 && config.beta1 < 1.0,
              "beta1 must be in [0, 1)");
  QPINN_CHECK(config.beta2 >= 0.0 && config.beta2 < 1.0,
              "beta2 must be in [0, 1)");
  QPINN_CHECK(config.eps > 0.0, "eps must be positive");
  QPINN_CHECK(config.weight_decay >= 0.0, "weight_decay must be >= 0");
  // Eager: allocating the moment buffers lazily inside the first apply()
  // used to consume pooled buffers mid-step, so the warmup step never
  // reached the steady-state allocation pattern and the first measured
  // step still hit the heap (the 0.2 allocs/op the benchmark tracked).
  ensure_state();
}

void Adam::ensure_state() {
  if (!m_.empty()) return;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.push_back(Tensor::zeros(p.value().shape()));
    v_.push_back(Tensor::zeros(p.value().shape()));
  }
}

void Adam::reset() {
  m_.clear();
  v_.clear();
  step_count_ = 0;
  ensure_state();
}

OptimizerState Adam::export_state() const {
  OptimizerState state;
  state.step_count = step_count_;
  detail::clone_into_slots(state.slots, m_);
  detail::clone_into_slots(state.slots, v_);
  return state;
}

void Adam::import_state(const OptimizerState& state) {
  detail::validate_state_agreement(state, params_, "Adam::import_state");
  if (state.slots.empty()) {
    m_.clear();
    v_.clear();
    ensure_state();
  } else {
    QPINN_CHECK(state.slots.size() == 2 * params_.size(),
                "Adam::import_state expects 2 slots per parameter");
    m_ = detail::clone_slot_group(state, 0, params_, "Adam m");
    v_ = detail::clone_slot_group(state, params_.size(), params_, "Adam v");
  }
  step_count_ = state.step_count;
}

void Adam::apply(const std::vector<Tensor>& grads) {
  ensure_state();
  ++step_count_;
  kernels::AdamStepConfig cfg;
  cfg.lr = lr_;
  cfg.beta1 = config_.beta1;
  cfg.beta2 = config_.beta2;
  cfg.eps = config_.eps;
  cfg.weight_decay = config_.weight_decay;
  cfg.bias_corr1 = 1.0 - std::pow(config_.beta1, step_count_);
  cfg.bias_corr2 = 1.0 - std::pow(config_.beta2, step_count_);
  cfg.decoupled = config_.decoupled;
  for (std::size_t i = 0; i < params_.size(); ++i) {
    // Single fused sweep per buffer (weight decay, moments, bias
    // correction, parameter write); elementwise and collision-free, so
    // chunking over the pool is exact — determinism is untouched by
    // thread count.
    kernels::adam_step_inplace(params_[i].mutable_value(), grads[i], m_[i],
                               v_[i], cfg);
  }
}

}  // namespace qpinn::optim

#include "optim/adam.hpp"

#include <cmath>

#include "parallel/parallel_for.hpp"
#include "util/error.hpp"

namespace qpinn::optim {

Adam::Adam(std::vector<autodiff::Variable> params, const AdamConfig& config)
    : Optimizer(std::move(params), config.lr), config_(config) {
  QPINN_CHECK(config.beta1 >= 0.0 && config.beta1 < 1.0,
              "beta1 must be in [0, 1)");
  QPINN_CHECK(config.beta2 >= 0.0 && config.beta2 < 1.0,
              "beta2 must be in [0, 1)");
  QPINN_CHECK(config.eps > 0.0, "eps must be positive");
  QPINN_CHECK(config.weight_decay >= 0.0, "weight_decay must be >= 0");
}

void Adam::reset() {
  m_.clear();
  v_.clear();
  step_count_ = 0;
}

OptimizerState Adam::export_state() const {
  OptimizerState state;
  state.step_count = step_count_;
  detail::clone_into_slots(state.slots, m_);
  detail::clone_into_slots(state.slots, v_);
  return state;
}

void Adam::import_state(const OptimizerState& state) {
  detail::validate_state_agreement(state, params_, "Adam::import_state");
  if (state.slots.empty()) {
    m_.clear();
    v_.clear();
  } else {
    QPINN_CHECK(state.slots.size() == 2 * params_.size(),
                "Adam::import_state expects 2 slots per parameter");
    m_ = detail::clone_slot_group(state, 0, params_, "Adam m");
    v_ = detail::clone_slot_group(state, params_.size(), params_, "Adam v");
  }
  step_count_ = state.step_count;
}

void Adam::apply(const std::vector<Tensor>& grads) {
  if (m_.empty()) {
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const auto& p : params_) {
      m_.push_back(Tensor::zeros(p.value().shape()));
      v_.push_back(Tensor::zeros(p.value().shape()));
    }
  }
  ++step_count_;
  const double bc1 = 1.0 - std::pow(config_.beta1, step_count_);
  const double bc2 = 1.0 - std::pow(config_.beta2, step_count_);

  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& param = params_[i].mutable_value();
    const double* g = grads[i].data();
    double* p = param.data();
    double* m = m_[i].data();
    double* v = v_[i].data();
    const std::size_t n = static_cast<std::size_t>(param.numel());
    // Elementwise and collision-free, so chunking over the pool is exact
    // (no reduction — determinism is untouched by thread count).
    parallel_for(n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t j = begin; j < end; ++j) {
        double gj = g[j];
        if (config_.weight_decay > 0.0 && !config_.decoupled) {
          gj += config_.weight_decay * p[j];
        }
        m[j] = config_.beta1 * m[j] + (1.0 - config_.beta1) * gj;
        v[j] = config_.beta2 * v[j] + (1.0 - config_.beta2) * gj * gj;
        const double m_hat = m[j] / bc1;
        const double v_hat = v[j] / bc2;
        double update = m_hat / (std::sqrt(v_hat) + config_.eps);
        if (config_.weight_decay > 0.0 && config_.decoupled) {
          update += config_.weight_decay * p[j];
        }
        p[j] -= lr_ * update;
      }
    });
  }
}

}  // namespace qpinn::optim

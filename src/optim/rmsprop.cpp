#include "optim/rmsprop.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qpinn::optim {

Rmsprop::Rmsprop(std::vector<autodiff::Variable> params,
                 const RmspropConfig& config)
    : Optimizer(std::move(params), config.lr), config_(config) {
  QPINN_CHECK(config.alpha >= 0.0 && config.alpha < 1.0,
              "alpha must be in [0, 1)");
  QPINN_CHECK(config.eps > 0.0, "eps must be positive");
  QPINN_CHECK(config.momentum >= 0.0 && config.momentum < 1.0,
              "momentum must be in [0, 1)");
}

void Rmsprop::reset() {
  sq_avg_.clear();
  momentum_buf_.clear();
}

OptimizerState Rmsprop::export_state() const {
  OptimizerState state;
  detail::clone_into_slots(state.slots, sq_avg_);
  detail::clone_into_slots(state.slots, momentum_buf_);
  return state;
}

void Rmsprop::import_state(const OptimizerState& state) {
  detail::validate_state_agreement(state, params_, "Rmsprop::import_state");
  if (state.slots.empty()) {
    sq_avg_.clear();
    momentum_buf_.clear();
    return;
  }
  const std::size_t n = params_.size();
  QPINN_CHECK(state.slots.size() == n || state.slots.size() == 2 * n,
              "Rmsprop::import_state expects 1 or 2 slots per parameter");
  sq_avg_ = detail::clone_slot_group(state, 0, params_, "Rmsprop sq_avg");
  momentum_buf_ =
      state.slots.size() == 2 * n
          ? detail::clone_slot_group(state, n, params_, "Rmsprop momentum")
          : std::vector<Tensor>{};
}

void Rmsprop::apply(const std::vector<Tensor>& grads) {
  if (sq_avg_.empty()) {
    for (const auto& p : params_) {
      sq_avg_.push_back(Tensor::zeros(p.value().shape()));
      if (config_.momentum > 0.0) {
        momentum_buf_.push_back(Tensor::zeros(p.value().shape()));
      }
    }
  }
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& param = params_[i].mutable_value();
    const double* g = grads[i].data();
    double* p = param.data();
    double* s = sq_avg_[i].data();
    double* buf =
        config_.momentum > 0.0 ? momentum_buf_[i].data() : nullptr;
    const std::int64_t n = param.numel();
    for (std::int64_t j = 0; j < n; ++j) {
      s[j] = config_.alpha * s[j] + (1.0 - config_.alpha) * g[j] * g[j];
      const double update = g[j] / (std::sqrt(s[j]) + config_.eps);
      if (buf != nullptr) {
        buf[j] = config_.momentum * buf[j] + update;
        p[j] -= lr_ * buf[j];
      } else {
        p[j] -= lr_ * update;
      }
    }
  }
}

}  // namespace qpinn::optim

// RMSprop (Tieleman & Hinton), kept as an optimizer baseline.
#pragma once

#include "optim/optimizer.hpp"

namespace qpinn::optim {

struct RmspropConfig {
  double lr = 1e-3;
  double alpha = 0.99;  ///< squared-gradient smoothing
  double eps = 1e-8;
  double momentum = 0.0;
};

class Rmsprop : public Optimizer {
 public:
  Rmsprop(std::vector<autodiff::Variable> params, const RmspropConfig& config);

  void reset() override;

  /// Slots layout: [sq_avg...] or [sq_avg..., momentum_buf...].
  OptimizerState export_state() const override;
  void import_state(const OptimizerState& state) override;

 protected:
  void apply(const std::vector<Tensor>& grads) override;

 private:
  RmspropConfig config_;
  std::vector<Tensor> sq_avg_;
  std::vector<Tensor> momentum_buf_;
};

}  // namespace qpinn::optim

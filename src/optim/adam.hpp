// Adam / AdamW (Kingma & Ba 2014; Loshchilov & Hutter 2019).
//
// Adam is the optimizer used for all PINN trainings in this reproduction
// (lr 1e-3 with exponential decay, as is standard for PINNs).
#pragma once

#include "optim/optimizer.hpp"

namespace qpinn::optim {

struct AdamConfig {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
  /// L2 penalty added to gradients (classic Adam) when decoupled=false, or
  /// decoupled weight decay (AdamW) when true.
  double weight_decay = 0.0;
  bool decoupled = false;
};

class Adam : public Optimizer {
 public:
  Adam(std::vector<autodiff::Variable> params, const AdamConfig& config);

  void reset() override;
  std::int64_t step_count() const { return step_count_; }

  /// Slots layout: [m_0..m_{n-1}, v_0..v_{n-1}]. Moment buffers are
  /// allocated (zeroed) at construction, so the export is never empty and
  /// the first step allocates nothing.
  OptimizerState export_state() const override;
  void import_state(const OptimizerState& state) override;

 protected:
  void apply(const std::vector<Tensor>& grads) override;

 private:
  /// Allocates zeroed moment buffers when absent.
  void ensure_state();

  AdamConfig config_;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
  std::int64_t step_count_ = 0;
};

}  // namespace qpinn::optim

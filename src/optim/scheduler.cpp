#include "optim/scheduler.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace qpinn::optim {

ExponentialDecay::ExponentialDecay(double factor, std::int64_t every)
    : factor_(factor), every_(every) {
  QPINN_CHECK(factor > 0.0 && factor <= 1.0, "decay factor must be in (0, 1]");
  QPINN_CHECK(every >= 1, "decay interval must be >= 1");
}

double ExponentialDecay::lr_at(std::int64_t epoch, double base_lr) const {
  const std::int64_t steps = epoch / every_;
  return base_lr * std::pow(factor_, static_cast<double>(steps));
}

CosineAnnealing::CosineAnnealing(std::int64_t t_max, double min_lr)
    : t_max_(t_max), min_lr_(min_lr) {
  QPINN_CHECK(t_max >= 1, "t_max must be >= 1");
  QPINN_CHECK(min_lr >= 0.0, "min_lr must be >= 0");
}

double CosineAnnealing::lr_at(std::int64_t epoch, double base_lr) const {
  const double t = std::min<double>(static_cast<double>(epoch),
                                    static_cast<double>(t_max_));
  const double cosine =
      0.5 * (1.0 + std::cos(std::numbers::pi * t / static_cast<double>(t_max_)));
  return min_lr_ + (base_lr - min_lr_) * cosine;
}

Warmup::Warmup(std::int64_t warmup, std::shared_ptr<const LrSchedule> inner)
    : warmup_(warmup), inner_(std::move(inner)) {
  QPINN_CHECK(warmup >= 1, "warmup must be >= 1");
  QPINN_CHECK(inner_ != nullptr, "warmup requires an inner schedule");
}

double Warmup::lr_at(std::int64_t epoch, double base_lr) const {
  if (epoch < warmup_) {
    return base_lr * static_cast<double>(epoch + 1) /
           static_cast<double>(warmup_);
  }
  return inner_->lr_at(epoch - warmup_, base_lr);
}

}  // namespace qpinn::optim

#include "optim/optimizer.hpp"

#include <cmath>

#include "tensor/kernels.hpp"
#include "util/error.hpp"
#include "util/invariant.hpp"

namespace qpinn::optim {

Optimizer::Optimizer(std::vector<autodiff::Variable> params, double lr)
    : params_(std::move(params)), lr_(lr) {
  QPINN_CHECK(!params_.empty(), "optimizer needs at least one parameter");
  QPINN_CHECK(lr > 0.0, "learning rate must be positive");
  for (const auto& p : params_) {
    QPINN_CHECK(p.defined() && p.requires_grad(),
                "optimizer parameters must be trainable leaves");
  }
}

void Optimizer::set_lr(double lr) {
  QPINN_CHECK(lr > 0.0, "learning rate must be positive");
  lr_ = lr;
}

void Optimizer::step(const std::vector<Tensor>& grads) {
  QPINN_CHECK(grads.size() == params_.size(),
              "step(): gradient count mismatch");
  for (std::size_t i = 0; i < grads.size(); ++i) {
    QPINN_CHECK_SHAPE(grads[i].same_shape(params_[i].value()),
                      "step(): gradient " + std::to_string(i) +
                          " shape mismatch");
    if (!grads[i].all_finite()) {
      throw NumericsError("non-finite gradient in optimizer step (parameter " +
                          std::to_string(i) + ")");
    }
  }
  apply(grads);
}

namespace detail {

void validate_state_agreement(const OptimizerState& state,
                              const std::vector<autodiff::Variable>& params,
                              const char* what) {
#ifdef QPINN_CHECKED
  QPINN_INVARIANT(state.step_count >= 0, "optim.import_state",
                  "param-agreement",
                  std::string(what) + ": negative step count " +
                      std::to_string(state.step_count) +
                      " (corrupted state would skew bias correction)");
  QPINN_INVARIANT(
      state.slots.empty() || params.empty() ||
          state.slots.size() % params.size() == 0,
      "optim.import_state", "param-agreement",
      std::string(what) + ": " + std::to_string(state.slots.size()) +
          " slots is not a whole number of per-parameter buffers for " +
          std::to_string(params.size()) + " parameters");
  for (const Tensor& slot : state.slots) {
    slot.validate("optim.import_state");
  }
#else
  (void)state;
  (void)params;
  (void)what;
#endif
}

void clone_into_slots(std::vector<Tensor>& slots,
                      const std::vector<Tensor>& buffers) {
  slots.reserve(slots.size() + buffers.size());
  for (const Tensor& t : buffers) slots.push_back(t.clone());
}

std::vector<Tensor> clone_slot_group(
    const OptimizerState& state, std::size_t offset,
    const std::vector<autodiff::Variable>& params, const char* what) {
  QPINN_CHECK(offset + params.size() <= state.slots.size(),
              std::string(what) + ": optimizer state is missing slots");
  std::vector<Tensor> group;
  group.reserve(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const Tensor& slot = state.slots[offset + i];
    QPINN_CHECK_SHAPE(slot.same_shape(params[i].value()),
                      std::string(what) + ": slot " + std::to_string(i) +
                          " shape mismatch");
    group.push_back(slot.clone());
  }
  return group;
}

}  // namespace detail

double clip_grad_norm(std::vector<Tensor>& grads, double max_norm) {
  QPINN_CHECK(max_norm > 0.0, "clip_grad_norm: max_norm must be positive");
  double sq = 0.0;
  for (const Tensor& g : grads) sq += kernels::dot(g, g);
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    const double factor = max_norm / norm;
    for (Tensor& g : grads) kernels::scale_inplace(g, factor);
  }
  return norm;
}

}  // namespace qpinn::optim

// Learning-rate schedules.
#pragma once

#include <cstdint>
#include <memory>

namespace qpinn::optim {

/// Maps (epoch, base_lr) -> lr. Stateless; the trainer queries per epoch.
class LrSchedule {
 public:
  virtual ~LrSchedule() = default;
  virtual double lr_at(std::int64_t epoch, double base_lr) const = 0;
};

/// Constant learning rate.
class ConstantLr : public LrSchedule {
 public:
  double lr_at(std::int64_t, double base_lr) const override { return base_lr; }
};

/// lr = base * factor^(epoch / every) — the "decay by 0.85 every 2000
/// epochs" style schedule standard in PINN work.
class ExponentialDecay : public LrSchedule {
 public:
  ExponentialDecay(double factor, std::int64_t every);
  double lr_at(std::int64_t epoch, double base_lr) const override;

 private:
  double factor_;
  std::int64_t every_;
};

/// Cosine annealing from base_lr to min_lr over t_max epochs.
class CosineAnnealing : public LrSchedule {
 public:
  CosineAnnealing(std::int64_t t_max, double min_lr = 0.0);
  double lr_at(std::int64_t epoch, double base_lr) const override;

 private:
  std::int64_t t_max_;
  double min_lr_;
};

/// Linear warmup over `warmup` epochs wrapping another schedule.
class Warmup : public LrSchedule {
 public:
  Warmup(std::int64_t warmup, std::shared_ptr<const LrSchedule> inner);
  double lr_at(std::int64_t epoch, double base_lr) const override;

 private:
  std::int64_t warmup_;
  std::shared_ptr<const LrSchedule> inner_;
};

}  // namespace qpinn::optim

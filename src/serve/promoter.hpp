// best.qckpt -> serving promotion.
//
// The CheckpointPromoter watches a checkpoint file (normally the trainer's
// rotating best.qckpt) and republishes the registry whenever the file's
// epoch changes: peek the training state cheaply (no parameter copy), load
// the full checkpoint into a fresh model from the caller's factory,
// compile a forward-only plan at the serving batch shape, publish. Because
// checkpoint writes are atomic (tmp + fsync + rename) a poll never sees a
// torn file; a checkpoint that fails its CRC or bounds checks is logged
// and skipped — the previous model keeps serving, which is the failure
// semantics of the whole layer: promotion can only ever move forward.
//
// poll_once() is the synchronous test hook; start()/stop() run the same
// poll on a background thread with a condition-variable cadence.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "core/field_model.hpp"
#include "serve/model_registry.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace qpinn::serve {

struct PromoterConfig {
  /// Checkpoint file to watch (e.g. "<dir>/best.qckpt").
  std::string watch_path;
  /// Batch shape the promoted model is compiled at.
  std::int64_t batch_rows = 256;
  /// Background polling cadence in milliseconds.
  std::int64_t poll_ms = 200;

  void validate() const;
};

/// Reads QPINN_SERVE_BATCH / QPINN_SERVE_POLL_MS on top of the defaults
/// (watch_path stays as passed in).
PromoterConfig promoter_config_from_env(std::string watch_path);

class CheckpointPromoter {
 public:
  /// Builds the model instance a checkpoint is loaded into; called once
  /// per promotion so a compiled plan never aliases live training state.
  /// The factory must reproduce the training-time construction exactly —
  /// same architecture AND same seed — because fixed buffers (the random
  /// Fourier projection) are derived from the seed and are not part of
  /// the checkpointed parameter block.
  using ModelFactory = std::function<std::shared_ptr<core::FieldModel>()>;

  CheckpointPromoter(std::shared_ptr<ModelRegistry> registry,
                     ModelFactory factory, PromoterConfig config);
  ~CheckpointPromoter();

  CheckpointPromoter(const CheckpointPromoter&) = delete;
  CheckpointPromoter& operator=(const CheckpointPromoter&) = delete;

  /// One synchronous watch/promote cycle; true when a new model was
  /// published. A missing or unreadable checkpoint is not an error — the
  /// registry simply keeps its current model.
  bool poll_once();

  /// Starts/stops the background polling thread. Not thread-safe against
  /// each other; call from the owning thread (the destructor stops).
  void start();
  void stop();

  /// Epoch of the most recently promoted checkpoint (-1: none yet).
  std::int64_t promoted_epoch() const;
  std::uint64_t promotions() const;

 private:
  bool poll_locked() QPINN_REQUIRES(mu_);
  void poll_loop();

  std::shared_ptr<ModelRegistry> registry_;
  ModelFactory factory_;
  PromoterConfig config_;

  mutable Mutex mu_;
  CondVar stop_cv_;
  bool stop_requested_ QPINN_GUARDED_BY(mu_) = false;
  std::int64_t promoted_epoch_ QPINN_GUARDED_BY(mu_) = -1;
  std::uint64_t promotions_ QPINN_GUARDED_BY(mu_) = 0;

  std::thread thread_;
};

}  // namespace qpinn::serve

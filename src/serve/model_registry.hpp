// RCU-style publication point for the currently served model.
//
// publish() swaps in a new shared_ptr<const CompiledModel>; current()
// hands out a snapshot. Readers hold their snapshot for the duration of a
// batch, so a concurrent publish never pauses or invalidates in-flight
// replays — the retired model is destroyed when its last reader drops the
// reference. The short internal mutex guards only the pointer swap/copy
// (no waiting under it), which keeps the registry TSan-clean without
// relying on std::atomic<std::shared_ptr>.
#pragma once

#include <cstdint>
#include <memory>

#include "serve/compiled_model.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace qpinn::serve {

class ModelRegistry {
 public:
  /// Swaps the served model; returns the new version (monotonic from 1).
  std::uint64_t publish(std::shared_ptr<const CompiledModel> model);

  /// Snapshot of the served model (null until the first publish). Hold the
  /// returned pointer across a whole batch; do not re-fetch mid-batch.
  std::shared_ptr<const CompiledModel> current() const;

  /// Number of publishes so far (0: nothing served yet).
  std::uint64_t version() const;

 private:
  mutable Mutex mu_;
  std::shared_ptr<const CompiledModel> model_ QPINN_GUARDED_BY(mu_);
  std::uint64_t version_ QPINN_GUARDED_BY(mu_) = 0;
};

}  // namespace qpinn::serve

// An immutable, replay-only surrogate: the forward pass of a trained
// FieldModel captured once as a pure ExecutionPlan at a fixed batch shape.
//
// Compilation runs the ordinary eager forward under NoGradGuard with a
// forward-only CaptureScope armed (autodiff/plan.hpp), so the recorded
// schedule contains value-producing kernels only — no tape, no optimizer,
// no gradient buffers. Every query batch afterwards is one replay against
// buffers pinned at compile time: zero Node allocations, zero pool
// traffic, zero refcount churn.
//
// Partial batches ride the same plan. All forward ops are row-independent
// in *value* (matmul, bias/activation sweeps, column slices), so writing
// n < batch rows into the pinned input and reading the first n output rows
// after a full replay yields, per row, exactly what an eager forward at
// the captured batch shape would: bit-identical to rows [0, n) of an eager
// forward over a padded full batch. It is NOT bitwise the same as an
// n-row eager forward — the matmul row-tile fringe uses an unfused kernel
// path, so which rows get fused FMA arithmetic depends on the total row
// count; the difference is confined to the last ulp. The stale tail rows
// compute garbage that is never read.
//
// A CompiledModel is shared immutably (shared_ptr<const CompiledModel>,
// published via ModelRegistry); the pinned input/output buffers are the
// only mutable state and an internal mutex serializes replays, so
// concurrent callers are safe and in-flight evaluations survive a registry
// hot-swap (the shared_ptr keeps the retired model alive until its last
// batch finishes).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>

#include "autodiff/plan.hpp"
#include "core/field_model.hpp"
#include "tensor/tensor.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace qpinn::serve {

/// Provenance of the weights a CompiledModel was captured from.
struct ModelInfo {
  std::int64_t epoch = -1;  ///< checkpoint epoch (-1: not from a checkpoint)
  double loss = std::numeric_limits<double>::infinity();
};

class CompiledModel {
 public:
  /// Captures a forward-only plan for `model` at a fixed batch of
  /// `batch_rows` (x, t) rows. The model's parameters are pinned by the
  /// plan — mutating them afterwards (e.g. continuing training on the same
  /// instance) would corrupt serving, so compile from a dedicated model
  /// instance (the promoter loads checkpoints into fresh models).
  static std::shared_ptr<const CompiledModel> compile(
      std::shared_ptr<core::FieldModel> model, std::int64_t batch_rows,
      ModelInfo info = {});

  std::int64_t batch_rows() const { return batch_rows_; }
  const ModelInfo& info() const { return info_; }
  /// Recorded kernel count of the forward plan (observability).
  std::size_t plan_size() const { return plan_.size(); }
  /// Pinned arena footprint of the forward plan in bytes (observability).
  std::size_t arena_bytes() const { return plan_.arena_bytes(); }
  /// Optimizer-pass statistics for the forward plan (all zero when
  /// QPINN_PLAN_OPT is off).
  const autodiff::plan::PassStats& pass_stats() const {
    return plan_.pass_stats();
  }

  /// Evaluates `rows` queries: xy holds rows*2 doubles (x, t pairs), uv
  /// receives rows*2 doubles (u, v pairs). Chunks of batch_rows() replay
  /// the captured plan; a trailing partial chunk replays the same plan
  /// with only the live rows copied in and out. Thread-safe; zero
  /// allocations.
  void evaluate_into(const double* xy, std::int64_t rows, double* uv) const;

  /// Convenience wrapper allocating the (rows, 2) output tensor.
  Tensor evaluate(const Tensor& xy) const;

 private:
  CompiledModel(std::shared_ptr<core::FieldModel> model,
                std::int64_t batch_rows, ModelInfo info);

  std::shared_ptr<core::FieldModel> model_;  ///< pins the captured params
  std::int64_t batch_rows_ = 0;
  ModelInfo info_;
  mutable Mutex replay_mu_;  ///< replays write the pinned buffers
  mutable Tensor input_ QPINN_GUARDED_BY(replay_mu_);
  mutable Tensor output_ QPINN_GUARDED_BY(replay_mu_);
  autodiff::plan::ExecutionPlan plan_;
};

}  // namespace qpinn::serve

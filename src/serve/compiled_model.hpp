// An immutable, replay-only surrogate: the forward pass of a trained
// FieldModel captured once as a pure ExecutionPlan at a fixed batch shape.
//
// Compilation runs the ordinary eager forward under NoGradGuard with a
// forward-only CaptureScope armed (autodiff/plan.hpp), so the recorded
// schedule contains value-producing kernels only — no tape, no optimizer,
// no gradient buffers. Every query batch afterwards is one replay against
// buffers pinned at compile time: zero Node allocations, zero pool
// traffic, zero refcount churn.
//
// Partial batches ride the same plan. All forward ops are row-independent
// in *value* (matmul, bias/activation sweeps, column slices), so writing
// n < batch rows into the pinned input and reading the first n output rows
// after a full replay yields, per row, exactly what an eager forward at
// the captured batch shape would: bit-identical to rows [0, n) of an eager
// forward over a padded full batch. It is NOT bitwise the same as an
// n-row eager forward — the matmul row-tile fringe uses an unfused kernel
// path, so which rows get fused FMA arithmetic depends on the total row
// count; the difference is confined to the last ulp. The stale tail rows
// compute garbage that is never read.
//
// Replay lanes: a plan replays against buffers pinned at capture time, so
// one plan admits one replay at a time. Compiling a single plan would
// serialize every QPINN_SERVE_WORKERS thread on one mutex — the workers
// would scale queueing, not throughput. Instead compile() captures `lanes`
// independent plans (same weights, each pinning its own input/output
// arena) and evaluate_into() picks a lane by atomic round-robin, so up to
// `lanes` replays proceed concurrently. Lanes share the immutable weight
// tensors; only the per-lane activation arenas are duplicated.
//
// A CompiledModel is shared immutably (shared_ptr<const CompiledModel>,
// published via ModelRegistry); the pinned per-lane buffers are the only
// mutable state and each lane's mutex serializes replays on that lane, so
// concurrent callers are safe and in-flight evaluations survive a registry
// hot-swap (the shared_ptr keeps the retired model alive until its last
// batch finishes).
//
// Under QPINN_PRECISION=mixed each lane's forward plan is demoted to fp32
// compute (autodiff/precision.hpp) at compile time: queries read and write
// fp64 at the boundary while the interior sweeps run through the fp32
// SIMD tables. fp64 mode keeps the bit-identity contract above; mixed is
// tolerance-gated like training replay.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "autodiff/plan.hpp"
#include "core/field_model.hpp"
#include "tensor/tensor.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace qpinn::serve {

/// Provenance of the weights a CompiledModel was captured from.
struct ModelInfo {
  std::int64_t epoch = -1;  ///< checkpoint epoch (-1: not from a checkpoint)
  double loss = std::numeric_limits<double>::infinity();
};

class CompiledModel {
 public:
  /// Captures forward-only plans for `model` at a fixed batch of
  /// `batch_rows` (x, t) rows. The model's parameters are pinned by the
  /// plans — mutating them afterwards (e.g. continuing training on the
  /// same instance) would corrupt serving, so compile from a dedicated
  /// model instance (the promoter loads checkpoints into fresh models).
  /// `lanes` is the number of independent replay lanes; 0 (the default)
  /// reads QPINN_SERVE_WORKERS so the lane count matches the worker pool.
  static std::shared_ptr<const CompiledModel> compile(
      std::shared_ptr<core::FieldModel> model, std::int64_t batch_rows,
      ModelInfo info = {}, std::size_t lanes = 0);

  std::int64_t batch_rows() const { return batch_rows_; }
  const ModelInfo& info() const { return info_; }
  /// Number of independent replay lanes (concurrent replay capacity).
  std::size_t lanes() const { return lanes_.size(); }
  /// Recorded kernel count of one forward plan (observability; every lane
  /// records the identical schedule).
  std::size_t plan_size() const { return lanes_.front()->plan.size(); }
  /// Pinned arena footprint across all lanes in bytes (observability).
  std::size_t arena_bytes() const;
  /// Optimizer-pass statistics for one forward plan (all zero when
  /// QPINN_PLAN_OPT is off; identical across lanes).
  const autodiff::plan::PassStats& pass_stats() const {
    return lanes_.front()->plan.pass_stats();
  }

  /// Evaluates `rows` queries: xy holds rows*2 doubles (x, t pairs), uv
  /// receives rows*2 doubles (u, v pairs). Chunks of batch_rows() replay
  /// a round-robin-selected lane's plan; a trailing partial chunk replays
  /// the same plan with only the live rows copied in and out.
  /// Thread-safe; zero allocations; up to lanes() calls replay
  /// concurrently.
  void evaluate_into(const double* xy, std::int64_t rows, double* uv) const;

  /// Convenience wrapper allocating the (rows, 2) output tensor.
  Tensor evaluate(const Tensor& xy) const;

 private:
  /// One independent replay context: a forward plan plus the input/output
  /// buffers it pinned at capture. The mutex serializes replays on this
  /// lane only.
  struct Lane {
    mutable Mutex mu;
    Tensor input QPINN_GUARDED_BY(mu);
    Tensor output QPINN_GUARDED_BY(mu);
    autodiff::plan::ExecutionPlan plan;
  };

  CompiledModel(std::shared_ptr<core::FieldModel> model,
                std::int64_t batch_rows, ModelInfo info, std::size_t lanes);

  std::shared_ptr<core::FieldModel> model_;  ///< pins the captured params
  std::int64_t batch_rows_ = 0;
  ModelInfo info_;
  std::vector<std::unique_ptr<Lane>> lanes_;
  mutable std::atomic<std::size_t> next_lane_{0};
};

}  // namespace qpinn::serve

#include "serve/compiled_model.hpp"

#include <algorithm>
#include <utility>

#include "autodiff/ops.hpp"
#include "autodiff/plan_passes.hpp"
#include "autodiff/precision.hpp"
#include "autodiff/variable.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace qpinn::serve {

CompiledModel::CompiledModel(std::shared_ptr<core::FieldModel> model,
                             std::int64_t batch_rows, ModelInfo info,
                             std::size_t lanes)
    : model_(std::move(model)), batch_rows_(batch_rows), info_(info) {
  QPINN_CHECK(model_ != nullptr, "CompiledModel: model must not be null");
  QPINN_CHECK(batch_rows_ > 0, "CompiledModel: batch_rows must be positive");
  QPINN_CHECK(lanes > 0, "CompiledModel: lanes must be >= 1");
  lanes_.reserve(lanes);
  for (std::size_t i = 0; i < lanes; ++i) {
    auto lane = std::make_unique<Lane>();
    // Nobody else can reach the lane yet; the lock exists to satisfy the
    // thread-safety analysis on the guarded buffer writes below.
    MutexLock lane_lock(lane->mu);
    lane->input = Tensor::zeros({batch_rows_, 2});
    {
      // The eager forward below IS the capture: NoGradGuard keeps every op
      // a constant (no tape), the forward-only scope records each kernel
      // thunk, and a stray gradient-accumulation record throws instead of
      // poisoning the plan. Each lane captures its own plan so its
      // intermediate arena and output buffer are private to the lane;
      // the weight tensors are shared (they are plan inputs, not arena).
      autodiff::NoGradGuard no_grad;
      autodiff::plan::CaptureScope scope(
          lane->plan, autodiff::plan::CaptureKind::kForwardOnly);
      const autodiff::Variable out =
          model_->forward(autodiff::Variable::constant(lane->input));
      lane->output = out.value();
      QPINN_CHECK_SHAPE(
          lane->output.rank() == 2 && lane->output.rows() == batch_rows_ &&
              lane->output.cols() == 2,
          "CompiledModel: forward must produce (batch_rows, 2)");
    }
    // The forward graph is gone (constants only, destroyed with the
    // block), so the pass pipeline sees plan-private intermediates; the
    // lane's output stays pinned. Demotion (when QPINN_PRECISION=mixed)
    // must run last: a demoted plan is terminal.
    if (autodiff::plan::plan_opt_env_enabled()) {
      autodiff::plan::optimize_plan(lane->plan, {lane->output});
    }
    if (autodiff::precision_mode() == autodiff::Precision::kMixed) {
      autodiff::demote_plan(lane->plan, {lane->output});
    }
    lanes_.push_back(std::move(lane));
  }
}

std::shared_ptr<const CompiledModel> CompiledModel::compile(
    std::shared_ptr<core::FieldModel> model, std::int64_t batch_rows,
    ModelInfo info, std::size_t lanes) {
  if (lanes == 0) {
    const long long workers = env_int("QPINN_SERVE_WORKERS", 1);
    lanes = workers > 0 ? static_cast<std::size_t>(workers) : 1;
  }
  // The constructor is private so every instance is born inside a
  // shared_ptr<const>; make_shared cannot reach it, hence the raw new
  // immediately owned by the returned pointer.
  return std::shared_ptr<const CompiledModel>(
      new CompiledModel(std::move(model), batch_rows, info, lanes));  // lint-allow: naked-new
}

std::size_t CompiledModel::arena_bytes() const {
  std::size_t total = 0;
  for (const auto& lane : lanes_) total += lane->plan.arena_bytes();
  return total;
}

void CompiledModel::evaluate_into(const double* xy, std::int64_t rows,
                                  double* uv) const {
  QPINN_CHECK(rows >= 0, "CompiledModel: rows must be >= 0");
  if (rows == 0) return;
  QPINN_CHECK(xy != nullptr && uv != nullptr,
              "CompiledModel: xy/uv must not be null");
  // Round-robin lane selection: concurrent callers land on distinct lanes
  // and replay in parallel; two callers hashed to the same lane simply
  // queue on that lane's mutex, never on a global one.
  const std::size_t pick =
      next_lane_.fetch_add(1, std::memory_order_relaxed) % lanes_.size();
  Lane& lane = *lanes_[pick];
  MutexLock lock(lane.mu);
  double* in = lane.input.data();
  const double* out = lane.output.data();
  std::int64_t done = 0;
  while (done < rows) {
    const std::int64_t n = std::min(batch_rows_, rows - done);
    // Partial fringe: only the live rows are copied in; the pinned tail
    // keeps whatever the previous batch held, and those rows are computed
    // but never read. Row-value independence makes each live row
    // bit-identical to the same row of an eager forward at the captured
    // batch shape (see the contract note in the header).
    std::copy(xy + done * 2, xy + (done + n) * 2, in);
    lane.plan.replay();
    std::copy(out, out + n * 2, uv + done * 2);
    done += n;
  }
}

Tensor CompiledModel::evaluate(const Tensor& xy) const {
  QPINN_CHECK_SHAPE(xy.rank() == 2 && xy.cols() == 2,
                    "CompiledModel: input must be (rows, 2)");
  Tensor uv = Tensor::zeros({xy.rows(), 2});
  evaluate_into(xy.data(), xy.rows(), uv.data());
  return uv;
}

}  // namespace qpinn::serve

#include "serve/compiled_model.hpp"

#include <algorithm>
#include <utility>

#include "autodiff/ops.hpp"
#include "autodiff/plan_passes.hpp"
#include "autodiff/variable.hpp"
#include "util/error.hpp"

namespace qpinn::serve {

CompiledModel::CompiledModel(std::shared_ptr<core::FieldModel> model,
                             std::int64_t batch_rows, ModelInfo info)
    : model_(std::move(model)), batch_rows_(batch_rows), info_(info) {
  QPINN_CHECK(model_ != nullptr, "CompiledModel: model must not be null");
  QPINN_CHECK(batch_rows_ > 0, "CompiledModel: batch_rows must be positive");
  input_ = Tensor::zeros({batch_rows_, 2});
  {
    // The eager forward below IS the capture: NoGradGuard keeps every op a
    // constant (no tape), the forward-only scope records each kernel thunk,
    // and a stray gradient-accumulation record throws instead of poisoning
    // the plan.
    autodiff::NoGradGuard no_grad;
    autodiff::plan::CaptureScope scope(
        plan_, autodiff::plan::CaptureKind::kForwardOnly);
    const autodiff::Variable out =
        model_->forward(autodiff::Variable::constant(input_));
    output_ = out.value();
    QPINN_CHECK_SHAPE(output_.rank() == 2 && output_.rows() == batch_rows_ &&
                          output_.cols() == 2,
                      "CompiledModel: forward must produce (batch_rows, 2)");
  }
  // The forward graph is gone (constants only, destroyed with the block), so
  // the pass pipeline sees plan-private intermediates; output_ stays pinned.
  if (autodiff::plan::plan_opt_env_enabled()) {
    autodiff::plan::optimize_plan(plan_, {output_});
  }
}

std::shared_ptr<const CompiledModel> CompiledModel::compile(
    std::shared_ptr<core::FieldModel> model, std::int64_t batch_rows,
    ModelInfo info) {
  // The constructor is private so every instance is born inside a
  // shared_ptr<const>; make_shared cannot reach it, hence the raw new
  // immediately owned by the returned pointer.
  return std::shared_ptr<const CompiledModel>(
      new CompiledModel(std::move(model), batch_rows, info));  // lint-allow: naked-new
}

void CompiledModel::evaluate_into(const double* xy, std::int64_t rows,
                                  double* uv) const {
  QPINN_CHECK(rows >= 0, "CompiledModel: rows must be >= 0");
  if (rows == 0) return;
  QPINN_CHECK(xy != nullptr && uv != nullptr,
              "CompiledModel: xy/uv must not be null");
  MutexLock lock(replay_mu_);
  double* in = input_.data();
  const double* out = output_.data();
  std::int64_t done = 0;
  while (done < rows) {
    const std::int64_t n = std::min(batch_rows_, rows - done);
    // Partial fringe: only the live rows are copied in; the pinned tail
    // keeps whatever the previous batch held, and those rows are computed
    // but never read. Row-value independence makes each live row
    // bit-identical to the same row of an eager forward at the captured
    // batch shape (see the contract note in the header).
    std::copy(xy + done * 2, xy + (done + n) * 2, in);
    plan_.replay();
    std::copy(out, out + n * 2, uv + done * 2);
    done += n;
  }
}

Tensor CompiledModel::evaluate(const Tensor& xy) const {
  QPINN_CHECK_SHAPE(xy.rank() == 2 && xy.cols() == 2,
                    "CompiledModel: input must be (rows, 2)");
  Tensor uv = Tensor::zeros({xy.rows(), 2});
  evaluate_into(xy.data(), xy.rows(), uv.data());
  return uv;
}

}  // namespace qpinn::serve

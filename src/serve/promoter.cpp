#include "serve/promoter.hpp"

#include <chrono>
#include <filesystem>
#include <utility>

#include "core/checkpoint.hpp"
#include "util/env.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace qpinn::serve {

void PromoterConfig::validate() const {
  if (watch_path.empty()) {
    throw ConfigError("PromoterConfig: watch_path must be set");
  }
  if (batch_rows <= 0) {
    throw ConfigError("PromoterConfig: batch_rows must be positive");
  }
  if (poll_ms <= 0) {
    throw ConfigError("PromoterConfig: poll_ms must be positive");
  }
}

PromoterConfig promoter_config_from_env(std::string watch_path) {
  PromoterConfig config;
  config.watch_path = std::move(watch_path);
  config.batch_rows = env_int("QPINN_SERVE_BATCH", config.batch_rows);
  config.poll_ms = env_int("QPINN_SERVE_POLL_MS", config.poll_ms);
  config.validate();
  return config;
}

CheckpointPromoter::CheckpointPromoter(std::shared_ptr<ModelRegistry> registry,
                                       ModelFactory factory,
                                       PromoterConfig config)
    : registry_(std::move(registry)),
      factory_(std::move(factory)),
      config_(std::move(config)) {
  QPINN_CHECK(registry_ != nullptr,
              "CheckpointPromoter: registry must not be null");
  QPINN_CHECK(factory_ != nullptr,
              "CheckpointPromoter: factory must not be null");
  config_.validate();
}

CheckpointPromoter::~CheckpointPromoter() { stop(); }

bool CheckpointPromoter::poll_once() {
  MutexLock lock(mu_);
  return poll_locked();
}

bool CheckpointPromoter::poll_locked() {
  if (!std::filesystem::exists(config_.watch_path)) return false;
  core::TrainingState peeked;
  try {
    peeked = core::Checkpointer::peek_state(config_.watch_path);
  } catch (const IoError& e) {
    // Checkpoint writes are atomic, so this is real corruption (or a
    // foreign file), not a torn read; keep serving the current model.
    log::warn() << "promoter: cannot peek '" << config_.watch_path
                << "': " << e.what();
    return false;
  }
  if (peeked.epoch == promoted_epoch_) return false;

  std::shared_ptr<core::FieldModel> model = factory_();
  core::TrainingState state;
  try {
    state = core::Checkpointer::load_state(config_.watch_path,
                                           model->named_parameters());
  } catch (const IoError& e) {
    log::warn() << "promoter: cannot load '" << config_.watch_path
                << "': " << e.what();
    return false;
  }
  // best.qckpt is written at improving epochs, so its stored best_loss IS
  // the loss of the parameters in the file.
  const std::shared_ptr<const CompiledModel> compiled = CompiledModel::compile(
      std::move(model), config_.batch_rows,
      ModelInfo{state.epoch, state.best_loss});
  const std::uint64_t version = registry_->publish(compiled);
  promoted_epoch_ = state.epoch;
  ++promotions_;
  log::info() << "promoter: published epoch " << state.epoch << " (loss "
              << state.best_loss << ") as version " << version;
  return true;
}

void CheckpointPromoter::start() {
  if (thread_.joinable()) return;
  {
    MutexLock lock(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this] { poll_loop(); });
}

void CheckpointPromoter::poll_loop() {
  MutexLock lock(mu_);
  while (!stop_requested_) {
    poll_locked();
    if (stop_requested_) return;
    stop_cv_.wait_for(mu_, std::chrono::milliseconds(config_.poll_ms));
  }
}

void CheckpointPromoter::stop() {
  {
    MutexLock lock(mu_);
    stop_requested_ = true;
    stop_cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  thread_ = std::thread();
}

std::int64_t CheckpointPromoter::promoted_epoch() const {
  MutexLock lock(mu_);
  return promoted_epoch_;
}

std::uint64_t CheckpointPromoter::promotions() const {
  MutexLock lock(mu_);
  return promotions_;
}

}  // namespace qpinn::serve

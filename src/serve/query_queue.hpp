// Batched query coalescing for the serving layer.
//
// Point queries (x, t) are cheap individually but the replay substrate is
// batch-shaped: one plan replay evaluates batch_rows() rows for nearly the
// cost of one. The QueryQueue bridges the two — callers block on
// query(x, t) while worker threads drain the bounded ring, coalescing up
// to one model batch per flush. A flush fires as soon as a full batch is
// available or when the oldest pending query has waited flush_us
// microseconds (deadline-based, so a trickle of queries never stalls);
// partial batches ride the CompiledModel fringe path.
//
// Hot-swap semantics: each flush snapshots registry->current() once, so an
// in-flight batch always completes on the model it started with while the
// next flush picks up a freshly promoted checkpoint. Shutdown drains every
// enqueued query before the workers exit; query() after shutdown throws.
//
// Steady state performs zero heap allocations per query: the ring is
// preallocated, per-worker batch scratch reaches its high-water mark after
// the first few flushes, and replay runs entirely inside the plan arena.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "serve/model_registry.hpp"
#include "util/mutex.hpp"
#include "util/thread_annotations.hpp"

namespace qpinn::serve {

/// One answered query: the surrogate field at (x, t).
struct QueryResult {
  double u = 0.0;
  double v = 0.0;
};

struct QueryQueueConfig {
  /// Ring capacity; submitters block (backpressure) when it is full.
  std::size_t capacity = 1024;
  /// Coalescing deadline in microseconds: a partial batch flushes once the
  /// oldest pending query has waited this long (0: flush immediately).
  std::int64_t flush_us = 200;
  /// Worker threads draining the ring.
  std::size_t workers = 1;

  void validate() const;
};

/// Reads QPINN_SERVE_QUEUE_CAP / QPINN_SERVE_FLUSH_US / QPINN_SERVE_WORKERS
/// on top of the defaults above.
QueryQueueConfig query_queue_config_from_env();

struct QueueStats {
  std::uint64_t queries = 0;
  std::uint64_t batches = 0;          ///< flushes executed (one replay each)
  std::uint64_t full_batches = 0;     ///< flushes at exactly batch_rows
  std::uint64_t partial_batches = 0;  ///< fringe flushes below batch_rows
};

class QueryQueue {
 public:
  /// The registry must already have a published model before the first
  /// query arrives (query() throws otherwise — never silently queues
  /// against nothing).
  QueryQueue(std::shared_ptr<ModelRegistry> registry,
             QueryQueueConfig config = {});
  ~QueryQueue();

  QueryQueue(const QueryQueue&) = delete;
  QueryQueue& operator=(const QueryQueue&) = delete;

  /// Blocks until the batched replay containing this query completes.
  /// Thread-safe; throws ValueError after shutdown() or when no model has
  /// been published yet.
  QueryResult query(double x, double t);

  /// Drains every enqueued query, then stops the workers. Idempotent.
  void shutdown();

  QueueStats stats() const;

 private:
  /// A pending query parked in the ring: inputs by value, output and
  /// completion flag pointing into the submitting caller's stack frame
  /// (valid because the caller blocks until `*done`).
  struct Slot {
    double x = 0.0;
    double t = 0.0;
    QueryResult* out = nullptr;
    bool* done = nullptr;
  };

  void worker_loop();

  std::shared_ptr<ModelRegistry> registry_;
  QueryQueueConfig config_;

  mutable Mutex mu_;
  CondVar not_empty_;  ///< workers wait for pending queries
  CondVar not_full_;   ///< submitters wait for ring space
  CondVar done_cv_;    ///< submitters wait for their result
  std::vector<Slot> ring_ QPINN_GUARDED_BY(mu_);
  std::size_t head_ QPINN_GUARDED_BY(mu_) = 0;
  std::size_t count_ QPINN_GUARDED_BY(mu_) = 0;
  bool stopping_ QPINN_GUARDED_BY(mu_) = false;
  QueueStats stats_ QPINN_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
};

}  // namespace qpinn::serve

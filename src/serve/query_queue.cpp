#include "serve/query_queue.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/env.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace qpinn::serve {

void QueryQueueConfig::validate() const {
  if (capacity == 0) {
    throw ConfigError("QueryQueueConfig: capacity must be positive");
  }
  if (flush_us < 0) {
    throw ConfigError("QueryQueueConfig: flush_us must be >= 0");
  }
  if (workers == 0) {
    throw ConfigError("QueryQueueConfig: workers must be >= 1");
  }
}

QueryQueueConfig query_queue_config_from_env() {
  QueryQueueConfig config;
  config.capacity = static_cast<std::size_t>(env_int(
      "QPINN_SERVE_QUEUE_CAP", static_cast<long long>(config.capacity)));
  config.flush_us = env_int("QPINN_SERVE_FLUSH_US", config.flush_us);
  config.workers = static_cast<std::size_t>(env_int(
      "QPINN_SERVE_WORKERS", static_cast<long long>(config.workers)));
  config.validate();
  return config;
}

QueryQueue::QueryQueue(std::shared_ptr<ModelRegistry> registry,
                       QueryQueueConfig config)
    : registry_(std::move(registry)), config_(config) {
  QPINN_CHECK(registry_ != nullptr, "QueryQueue: registry must not be null");
  config_.validate();
  {
    MutexLock lock(mu_);
    ring_.resize(config_.capacity);
  }
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

QueryQueue::~QueryQueue() { shutdown(); }

QueryResult QueryQueue::query(double x, double t) {
  if (registry_->current() == nullptr) {
    throw ValueError("QueryQueue: no model has been published yet");
  }
  QueryResult result;
  bool done = false;
  MutexLock lock(mu_);
  while (count_ == ring_.size() && !stopping_) not_full_.wait(mu_);
  if (stopping_) {
    throw ValueError("QueryQueue: query() after shutdown()");
  }
  ring_[(head_ + count_) % ring_.size()] = Slot{x, t, &result, &done};
  ++count_;
  ++stats_.queries;
  not_empty_.notify_one();
  // The worker writes *out/*done and notifies under mu_, so the caller's
  // stack storage is published safely.
  while (!done) done_cv_.wait(mu_);
  return result;
}

void QueryQueue::worker_loop() {
  // Per-worker scratch: reaches its high-water mark (one model batch) after
  // the first flushes, then never reallocates.
  std::vector<Slot> batch;
  std::vector<double> xy;
  std::vector<double> uv;
  for (;;) {
    std::shared_ptr<const CompiledModel> model;
    std::size_t take = 0;
    {
      MutexLock lock(mu_);
      while (count_ == 0 && !stopping_) not_empty_.wait(mu_);
      if (count_ == 0 && stopping_) return;
      // One registry snapshot per flush: this batch completes on `model`
      // even if a new checkpoint is published mid-replay; the next flush
      // re-reads the registry and picks the promotion up.
      model = registry_->current();
      const auto rows = static_cast<std::size_t>(model->batch_rows());
      if (count_ < rows && config_.flush_us > 0 && !stopping_) {
        // Deadline-based coalescing: keep absorbing arrivals until the
        // batch fills or the window (measured from the first wait) closes.
        Stopwatch window;
        while (count_ < rows && !stopping_) {
          const double waited_us = window.seconds() * 1e6;
          const auto remaining =
              static_cast<double>(config_.flush_us) - waited_us;
          if (remaining <= 0.0) break;
          not_empty_.wait_for(
              mu_, std::chrono::microseconds(
                       static_cast<std::int64_t>(remaining) + 1));
        }
      }
      take = std::min(count_, static_cast<std::size_t>(model->batch_rows()));
      // The coalescing wait drops the lock, so with several workers another
      // drain can win the race for these queries; go back to sleep.
      if (take == 0) continue;
      batch.clear();
      for (std::size_t s = 0; s < take; ++s) {
        batch.push_back(ring_[(head_ + s) % ring_.size()]);
      }
      head_ = (head_ + take) % ring_.size();
      count_ -= take;
      ++stats_.batches;
      if (take == static_cast<std::size_t>(model->batch_rows())) {
        ++stats_.full_batches;
      } else {
        ++stats_.partial_batches;
      }
      not_full_.notify_all();
    }
    xy.resize(take * 2);
    uv.resize(take * 2);
    for (std::size_t s = 0; s < take; ++s) {
      xy[2 * s] = batch[s].x;
      xy[2 * s + 1] = batch[s].t;
    }
    model->evaluate_into(xy.data(), static_cast<std::int64_t>(take),
                         uv.data());
    {
      MutexLock lock(mu_);
      for (std::size_t s = 0; s < take; ++s) {
        *batch[s].out = QueryResult{uv[2 * s], uv[2 * s + 1]};
        *batch[s].done = true;
      }
      done_cv_.notify_all();
    }
  }
}

void QueryQueue::shutdown() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

QueueStats QueryQueue::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

}  // namespace qpinn::serve

#include "serve/model_registry.hpp"

#include <utility>

#include "util/error.hpp"

namespace qpinn::serve {

std::uint64_t ModelRegistry::publish(
    std::shared_ptr<const CompiledModel> model) {
  QPINN_CHECK(model != nullptr, "ModelRegistry: cannot publish a null model");
  std::shared_ptr<const CompiledModel> retired;
  std::uint64_t version = 0;
  {
    MutexLock lock(mu_);
    retired = std::move(model_);
    model_ = std::move(model);
    version = ++version_;
  }
  // `retired` drops outside the lock: if this was the last reference, the
  // old model's plan/buffers tear down without blocking readers.
  return version;
}

std::shared_ptr<const CompiledModel> ModelRegistry::current() const {
  MutexLock lock(mu_);
  return model_;
}

std::uint64_t ModelRegistry::version() const {
  MutexLock lock(mu_);
  return version_;
}

}  // namespace qpinn::serve

// Fault-tolerant message transport for the distributed runtime.
//
// Frames travel over local stream sockets (AF_UNIX) in a fixed binary
// format: a 32-byte header (magic, type, epoch, rank, payload length)
// followed by the payload and a trailing CRC-32 of the payload, so a torn
// or corrupted message surfaces as a structured TransportError instead of
// deserializing garbage. All *blocking* socket entry points — connect,
// accept, receive — live in transport.cpp behind deadline-aware wrappers
// (poll + bounded retry with exponential backoff); qpinn_lint bans the raw
// calls everywhere else so no code path can block without a timeout.
//
// Failure taxonomy:
//   TransportError — the operation failed after bounded retries (connect
//     refused, receive deadline, corrupt frame); carries op / peer rank /
//     attempt count for diagnosis and test assertions.
//   PeerLostError — the peer is gone (EOF on the stream, or the
//     coordinator aborted the epoch after a heartbeat timeout); the caller
//     is expected to run the recovery state machine, not retry.
//
// Fault injection (see util/fault.hpp): send_frame consults the injector
// before every send — "dist.drop_msg" silently discards the frame,
// "dist.delay" sleeps delay_ms() first — scoped to QPINN_FAULT_RANK.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace qpinn::dist {

/// Timeouts and retry policy for every transport operation.
struct TransportOptions {
  /// Per-attempt connect timeout and per-wait receive timeout.
  std::int64_t message_timeout_ms = 1000;
  /// Coordinator-side epoch deadline: a rank whose contribution has not
  /// arrived this many ms into the gather is declared lost. Contributions
  /// double as heartbeats, so no extra threads are needed.
  std::int64_t heartbeat_timeout_ms = 2000;
  /// Bounded retries for connects and sum-awaits (attempts = retries + 1).
  std::int64_t max_retries = 4;
  /// Exponential backoff between connect attempts: initial, doubling, cap.
  std::int64_t backoff_initial_ms = 50;
  std::int64_t backoff_max_ms = 1000;
  /// How long recovery waits for a replacement rank to dial in.
  std::int64_t rejoin_timeout_ms = 20000;

  /// Defaults overridden by QPINN_DIST_MESSAGE_TIMEOUT_MS,
  /// QPINN_DIST_HEARTBEAT_TIMEOUT_MS, QPINN_DIST_MAX_RETRIES,
  /// QPINN_DIST_BACKOFF_MS and QPINN_DIST_REJOIN_TIMEOUT_MS.
  static TransportOptions from_env();
};

/// A transport operation failed after its bounded retries.
class TransportError : public Error {
 public:
  TransportError(const std::string& op, std::int64_t rank,
                 std::int64_t attempts, const std::string& detail);

  const std::string& op() const { return op_; }
  std::int64_t rank() const { return rank_; }
  std::int64_t attempts() const { return attempts_; }

 private:
  std::string op_;
  std::int64_t rank_ = -1;
  std::int64_t attempts_ = 0;
};

/// A peer process is gone (EOF) or the coordinator aborted the epoch.
class PeerLostError : public Error {
 public:
  explicit PeerLostError(std::int64_t rank, const std::string& detail = "");

  std::int64_t rank() const { return rank_; }

 private:
  std::int64_t rank_ = -1;
};

/// Message kinds understood by the runtime.
enum class MsgType : std::uint32_t {
  kHello = 1,        // worker -> root: join (payload "rejoin" on re-entry)
  kHelloAck = 2,     // root -> worker: join accepted
  kGradContrib = 3,  // worker -> root: this epoch's reduction contribution
  kGradSum = 4,      // root -> worker: rank-ordered sum for the epoch
  kEpochAbort = 5,   // root -> worker: a peer died, roll back this epoch
  kSync = 6,         // root -> rejoiner: authoritative trainer sync state
  kResume = 7,       // root -> worker: recovery done; payload "rank world"
  kShutdown = 8,     // root -> worker: training finished, close cleanly
};

/// One message: header fields plus an opaque payload.
struct Frame {
  MsgType type = MsgType::kHello;
  std::int64_t epoch = 0;
  std::int64_t rank = 0;
  std::string payload;
};

/// Fixed wire-format geometry: a 32-byte header (magic, type, epoch, rank,
/// payload length) followed by the payload and a CRC-32 of the payload.
constexpr std::size_t kFrameHeaderBytes = 32;
constexpr std::size_t kFrameTrailerBytes = sizeof(std::uint32_t);
/// Hard cap on a payload length field, enforced before any allocation so a
/// corrupt or hostile length can never drive a multi-gigabyte resize.
constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 30;

/// Serializes one frame into its wire form: header, payload, CRC trailer.
std::string encode_frame(const Frame& frame);

/// Decodes one complete frame from an untrusted byte buffer. Every header
/// field is validated before the payload is touched: the magic word, the
/// message type (must be a known MsgType), and the payload length (hard
/// cap, and it must account for exactly the bytes present). The payload
/// CRC-32 must match. Throws TransportError naming the defect; never
/// crashes or allocates more than `len` bytes. recv_frame applies the same
/// validation on the streaming path, and fuzz/fuzz_frame_decode.cpp drives
/// this entry point directly.
Frame decode_frame(const void* data, std::size_t len,
                   std::int64_t peer_rank = -1);

/// RAII file-descriptor wrapper for one connected stream socket.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Connected socketpair for in-process (loopback) communicators.
  static void make_pair(Socket& a, Socket& b);

 private:
  int fd_ = -1;
};

/// Listening AF_UNIX socket owned by the coordinator; removes a stale
/// socket file on bind and unlinks it again on destruction.
class Listener {
 public:
  explicit Listener(const std::string& endpoint);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accepts one peer, or nullopt when `timeout_ms` elapses first.
  std::optional<Socket> accept_peer(std::int64_t timeout_ms);

  const std::string& endpoint() const { return endpoint_; }

 private:
  std::string endpoint_;
  int fd_ = -1;
};

/// Dials the coordinator's endpoint with bounded retry and exponential
/// backoff (the coordinator may not be listening yet when a worker
/// starts). Throws TransportError after the retry budget is spent.
Socket connect_peer(const std::string& endpoint, const TransportOptions& opts,
                    std::int64_t self_rank);

/// Sends one frame, applying the armed dist faults for `self_rank` first
/// (delay, then drop). Throws PeerLostError when the peer has hung up.
void send_frame(Socket& socket, const Frame& frame, std::int64_t self_rank);

/// Receives one frame, waiting at most `timeout_ms`. Returns nullopt on
/// timeout, throws PeerLostError on EOF and TransportError on a corrupt
/// frame (bad magic, bad CRC, oversized payload).
std::optional<Frame> recv_frame(Socket& socket, std::int64_t timeout_ms,
                                std::int64_t peer_rank);

/// True when `socket` has readable data (or EOF) within `timeout_ms`.
bool wait_readable(const Socket& socket, std::int64_t timeout_ms);

/// Indices of the sockets with readable data (or EOF) once any becomes
/// ready, waiting at most `timeout_ms`; empty on timeout.
std::vector<std::size_t> wait_any_readable(
    const std::vector<const Socket*>& sockets, std::int64_t timeout_ms);

/// Monotonic milliseconds for transport deadlines (steady_clock).
std::int64_t steady_now_ms();

}  // namespace qpinn::dist

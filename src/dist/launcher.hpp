// Elastic process launcher for multi-rank jobs.
//
// Rank 0 runs in the launching process itself; ranks 1..world-1 are
// fork+exec'd re-invocations of the same binary (/proc/self/exe) carrying
// their coordinates in argv:
//   --qpinn-dist-worker --qpinn-dist-rank R --qpinn-dist-world N
//   --qpinn-dist-endpoint PATH [--qpinn-dist-rejoin]
// A worker binary calls parse_worker_argv() first thing in main() and, if
// is_worker is set, runs the worker entry point instead of its normal
// flow. fork alone would not do — the thread pool and any background
// state do not survive a fork — so children always exec a fresh image.
//
// Elasticity: restart(rank) reaps the dead child and forks a replacement
// with --qpinn-dist-rejoin; the replacement's environment also pins
// QPINN_FAULT_KILL_RANK=-1 so an injected rank-kill fires exactly once
// per run instead of re-killing every replacement. Wire restart() into
// DistConfig::restart_rank and the root's recovery loop becomes elastic.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qpinn::dist {

/// How to spawn the worker ranks.
struct LaunchConfig {
  std::int64_t world = 2;
  std::string endpoint;
  /// Extra argv entries appended to every worker command line.
  std::vector<std::string> extra_args;
  /// "KEY=VALUE" environment overrides applied to every worker.
  std::vector<std::string> extra_env;
};

/// Worker coordinates recovered from argv by a re-exec'd child.
struct WorkerArgs {
  bool is_worker = false;
  bool rejoin = false;
  std::int64_t rank = 0;
  std::int64_t world = 1;
  std::string endpoint;
};

/// Scans argv for the --qpinn-dist-* flags; is_worker stays false when
/// none are present (the normal, non-worker invocation).
WorkerArgs parse_worker_argv(int argc, const char* const* argv);

class Launcher {
 public:
  explicit Launcher(LaunchConfig config);
  /// Reaps (SIGKILL) any children still running.
  ~Launcher();
  Launcher(const Launcher&) = delete;
  Launcher& operator=(const Launcher&) = delete;

  /// Forks ranks 1..world-1.
  void launch_all();

  /// Reaps the previous child for `rank` if any, then forks a
  /// replacement; `rejoin` adds --qpinn-dist-rejoin and the kill-fault
  /// override described above.
  void restart(std::int64_t rank, bool rejoin = true);

  /// Blocks until every child exits or `timeout_ms` elapses. Returns the
  /// number of children that exited with a nonzero status (a timeout
  /// counts each straggler, which is then SIGKILLed).
  std::int64_t wait_all(std::int64_t timeout_ms);

  /// SIGKILLs and reaps every remaining child (test cleanup).
  void kill_all();

  const std::map<std::int64_t, pid_t>& children() const { return children_; }

 private:
  void spawn(std::int64_t rank, bool rejoin);

  LaunchConfig config_;
  std::map<std::int64_t, pid_t> children_;
};

}  // namespace qpinn::dist

#include "dist/communicator.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>
#include <utility>

#include "util/fault.hpp"

namespace qpinn::dist {

namespace {

RankContext parse_resume(const std::string& payload) {
  std::istringstream in(payload);
  RankContext ctx;
  if (!(in >> ctx.rank >> ctx.world) || ctx.rank < 0 || ctx.world < 1 ||
      ctx.rank >= ctx.world) {
    throw TransportError("resume", -1, 1,
                         "malformed kResume payload: " + payload);
  }
  return ctx;
}

std::string format_resume(std::int64_t rank, std::int64_t world) {
  return std::to_string(rank) + " " + std::to_string(world);
}

}  // namespace

std::string pack_doubles(const std::vector<double>& values) {
  std::string payload(values.size() * sizeof(double), '\0');
  if (!values.empty()) {
    std::memcpy(payload.data(), values.data(),
                values.size() * sizeof(double));
  }
  return payload;
}

void unpack_doubles(const std::string& payload, std::vector<double>& values) {
  if (payload.size() != values.size() * sizeof(double)) {
    throw TransportError("unpack", -1, 1,
                         "reduction payload size mismatch: got " +
                             std::to_string(payload.size()) + " bytes for " +
                             std::to_string(values.size()) + " doubles");
  }
  if (!values.empty()) {
    std::memcpy(values.data(), payload.data(), payload.size());
  }
}

void maybe_fault_kill(std::int64_t rank, std::int64_t epoch) {
  auto& injector = FaultInjector::instance();
  if (injector.kill_rank() == rank &&
      injector.should_fire_at(kFaultDistKill, epoch)) {
    // Die the way a real crash would: no stack unwinding, no flushing,
    // the peer sees a bare EOF.
    ::_exit(137);
  }
}

std::shared_ptr<Communicator> Communicator::create(const DistConfig& config) {
  if (config.rank < 0 || config.world < 1 || config.rank >= config.world) {
    throw ConfigError("dist rank " + std::to_string(config.rank) +
                      " outside world " + std::to_string(config.world));
  }
  if (config.endpoint.empty()) {
    throw ConfigError("dist endpoint path must be non-empty");
  }
  // Private ctor keeps construction behind the factories (make_shared
  // cannot reach it).
  std::shared_ptr<Communicator> comm(
      new Communicator());  // lint-allow: naked-new
  comm->rank_ = config.rank;
  comm->world_ = config.world;
  comm->options_ = config.transport;
  comm->policy_ = config.policy;
  comm->restart_rank_ = config.restart_rank;

  if (comm->is_root()) {
    comm->listener_ = std::make_unique<Listener>(config.endpoint);
    const std::int64_t deadline =
        steady_now_ms() + comm->options_.rejoin_timeout_ms;
    while (static_cast<std::int64_t>(comm->peers_.size()) <
           config.world - 1) {
      const std::int64_t budget = deadline - steady_now_ms();
      if (budget <= 0) {
        throw TransportError(
            "hello", 0,
            static_cast<std::int64_t>(comm->peers_.size()) + 1,
            "timed out waiting for " +
                std::to_string(config.world - 1 -
                               static_cast<std::int64_t>(
                                   comm->peers_.size())) +
                " worker(s) to join");
      }
      auto peer = comm->listener_->accept_peer(budget);
      if (!peer) continue;
      auto hello =
          recv_frame(*peer, comm->options_.message_timeout_ms, -1);
      if (!hello || hello->type != MsgType::kHello) continue;
      const std::int64_t peer_rank = hello->rank;
      if (peer_rank <= 0 || peer_rank >= config.world ||
          comm->peers_.count(peer_rank) != 0) {
        continue;  // junk or duplicate: drop the stream
      }
      Frame ack{MsgType::kHelloAck, 0, 0, ""};
      send_frame(*peer, ack, 0);
      comm->peers_.emplace(peer_rank, std::move(*peer));
    }
  } else {
    comm->root_socket_ =
        connect_peer(config.endpoint, comm->options_, config.rank);
    Frame hello{MsgType::kHello, 0, config.rank,
                config.rejoin ? "rejoin" : ""};
    send_frame(comm->root_socket_, hello, config.rank);
    const std::int64_t deadline =
        steady_now_ms() + comm->options_.rejoin_timeout_ms;
    bool acked = false;
    bool synced = !config.rejoin;
    bool resumed = !config.rejoin;
    while (!acked || !synced || !resumed) {
      const std::int64_t budget = deadline - steady_now_ms();
      if (budget <= 0) {
        throw TransportError("hello", config.rank, 1,
                             "timed out waiting for root handshake");
      }
      auto frame = recv_frame(
          comm->root_socket_,
          std::min(budget, comm->options_.message_timeout_ms), 0);
      if (!frame) continue;
      if (frame->type == MsgType::kHelloAck) {
        acked = true;
      } else if (frame->type == MsgType::kSync) {
        comm->sync_payload_ = std::move(frame->payload);
        comm->rejoined_ = true;
        synced = true;
      } else if (frame->type == MsgType::kResume) {
        const RankContext ctx = parse_resume(frame->payload);
        comm->rank_ = ctx.rank;
        comm->world_ = ctx.world;
        resumed = true;
      }
    }
  }
  return comm;
}

std::vector<std::shared_ptr<Communicator>> Communicator::loopback(
    std::int64_t world, const TransportOptions& options) {
  if (world < 1) throw ConfigError("loopback world must be >= 1");
  std::vector<std::shared_ptr<Communicator>> comms;
  comms.reserve(static_cast<std::size_t>(world));
  for (std::int64_t r = 0; r < world; ++r) {
    std::shared_ptr<Communicator> comm(
        new Communicator());  // lint-allow: naked-new (private ctor)
    comm->rank_ = r;
    comm->world_ = world;
    comm->options_ = options;
    comm->policy_ = FailurePolicy::kDegrade;
    comms.push_back(std::move(comm));
  }
  for (std::int64_t r = 1; r < world; ++r) {
    Socket root_end;
    Socket worker_end;
    Socket::make_pair(root_end, worker_end);
    comms[0]->peers_.emplace(r, std::move(root_end));
    comms[static_cast<std::size_t>(r)]->root_socket_ =
        std::move(worker_end);
  }
  return comms;
}

void Communicator::allreduce(std::vector<double>& buffer,
                             std::int64_t epoch) {
  if (world_ == 1) {
    ++stats_.allreduces;
    return;
  }
  if (is_root()) {
    root_allreduce(buffer, epoch);
  } else {
    worker_allreduce(buffer, epoch);
  }
}

void Communicator::root_allreduce(std::vector<double>& buffer,
                                  std::int64_t epoch) {
  std::map<std::int64_t, std::string> contribs;
  const std::int64_t deadline =
      steady_now_ms() + options_.heartbeat_timeout_ms;
  while (static_cast<std::int64_t>(contribs.size()) < world_ - 1) {
    const std::int64_t budget = deadline - steady_now_ms();
    if (budget <= 0) {
      // Heartbeat deadline: every silent rank is lost.
      for (const auto& [peer_rank, socket] : peers_) {
        (void)socket;
        if (contribs.count(peer_rank) == 0) {
          lost_ranks_.push_back(peer_rank);
        }
      }
      root_abort_epoch(epoch);
      throw PeerLostError(lost_ranks_.front(),
                          "no contribution before heartbeat deadline");
    }
    std::vector<const Socket*> sockets;
    std::vector<std::int64_t> socket_ranks;
    sockets.reserve(peers_.size());
    for (const auto& [peer_rank, socket] : peers_) {
      sockets.push_back(&socket);
      socket_ranks.push_back(peer_rank);
    }
    const auto ready =
        wait_any_readable(sockets, std::min<std::int64_t>(budget, 100));
    for (const std::size_t idx : ready) {
      const std::int64_t peer_rank = socket_ranks[idx];
      try {
        auto frame = recv_frame(peers_.at(peer_rank),
                                options_.message_timeout_ms, peer_rank);
        if (!frame || frame->type != MsgType::kGradContrib) continue;
        if (frame->epoch == epoch) {
          if (contribs.count(peer_rank) != 0) ++stats_.retransmits;
          contribs[peer_rank] = std::move(frame->payload);
        } else if (frame->epoch == epoch - 1 &&
                   cached_sum_.epoch == frame->epoch) {
          // The rank never saw last epoch's sum; replay it from cache.
          ++stats_.retransmits;
          send_frame(peers_.at(peer_rank), cached_sum_, 0);
        }
      } catch (const PeerLostError&) {
        lost_ranks_.push_back(peer_rank);
      }
    }
    if (!lost_ranks_.empty()) {
      root_abort_epoch(epoch);
      throw PeerLostError(lost_ranks_.front(),
                          "stream closed during epoch gather");
    }
  }

  // Rank-ordered elementwise sum: the reduction order is a pure function
  // of rank, so the result is bit-identical to the single-process
  // shard-ordered reduction for the same partition.
  std::vector<double> contribution(buffer.size());
  for (std::int64_t r = 1; r < world_; ++r) {
    unpack_doubles(contribs.at(r), contribution);
    for (std::size_t i = 0; i < buffer.size(); ++i) {
      buffer[i] += contribution[i];
    }
  }

  cached_sum_ = Frame{MsgType::kGradSum, epoch, 0, pack_doubles(buffer)};
  for (auto& [peer_rank, socket] : peers_) {
    try {
      send_frame(socket, cached_sum_, 0);
    } catch (const PeerLostError&) {
      lost_ranks_.push_back(peer_rank);
    }
  }
  if (!lost_ranks_.empty()) {
    root_abort_epoch(epoch);
    throw PeerLostError(lost_ranks_.front(),
                        "stream closed during sum broadcast");
  }
  last_epoch_ = epoch;
  ++stats_.allreduces;
}

void Communicator::worker_allreduce(std::vector<double>& buffer,
                                    std::int64_t epoch) {
  const Frame contrib{MsgType::kGradContrib, epoch, rank_,
                      pack_doubles(buffer)};
  send_frame(root_socket_, contrib, rank_);
  std::int64_t attempts = 1;
  while (true) {
    auto frame = recv_frame(root_socket_, options_.message_timeout_ms, 0);
    if (!frame) {
      if (attempts > options_.max_retries) {
        throw TransportError("allreduce", rank_, attempts,
                             "no reduction sum from root within the retry "
                             "budget");
      }
      ++attempts;
      ++stats_.retransmits;
      send_frame(root_socket_, contrib, rank_);
      continue;
    }
    if (frame->type == MsgType::kGradSum) {
      if (frame->epoch != epoch) continue;  // stale replay: ignore
      unpack_doubles(frame->payload, buffer);
      ++stats_.allreduces;
      return;
    }
    if (frame->type == MsgType::kEpochAbort) {
      std::int64_t lost = -1;
      std::istringstream(frame->payload) >> lost;
      throw PeerLostError(lost, "epoch " + std::to_string(frame->epoch) +
                                    " aborted by root");
    }
    // Any other type here is a protocol stray; keep waiting.
  }
}

void Communicator::root_abort_epoch(std::int64_t epoch) {
  ++stats_.aborts;
  std::sort(lost_ranks_.begin(), lost_ranks_.end());
  lost_ranks_.erase(std::unique(lost_ranks_.begin(), lost_ranks_.end()),
                    lost_ranks_.end());
  const std::string lost_payload = std::to_string(lost_ranks_.front());
  for (auto& [peer_rank, socket] : peers_) {
    if (std::binary_search(lost_ranks_.begin(), lost_ranks_.end(),
                           peer_rank)) {
      continue;
    }
    try {
      Frame abort{MsgType::kEpochAbort, epoch, 0, lost_payload};
      send_frame(socket, abort, 0);
    } catch (const PeerLostError&) {
      lost_ranks_.push_back(peer_rank);
      std::sort(lost_ranks_.begin(), lost_ranks_.end());
    }
  }
  for (const std::int64_t lost : lost_ranks_) {
    peers_.erase(lost);
  }
}

RankContext Communicator::recover(const std::string& sync_payload) {
  ++stats_.recoveries;
  return is_root() ? root_recover(sync_payload) : worker_recover();
}

RankContext Communicator::root_recover(const std::string& sync_payload) {
  if (policy_ == FailurePolicy::kRejoin) {
    if (!listener_) {
      throw ConfigError(
          "rejoin recovery requires the multi-process listener (loopback "
          "communicators support only kDegrade)");
    }
    for (const std::int64_t lost : lost_ranks_) {
      if (restart_rank_) restart_rank_(lost);
    }
    std::set<std::int64_t> remaining(lost_ranks_.begin(),
                                     lost_ranks_.end());
    const std::int64_t deadline =
        steady_now_ms() + options_.rejoin_timeout_ms;
    while (!remaining.empty()) {
      const std::int64_t budget = deadline - steady_now_ms();
      if (budget <= 0) {
        throw TransportError(
            "rejoin", 0, 1,
            "timed out waiting for " + std::to_string(remaining.size()) +
                " replacement rank(s)");
      }
      auto peer = listener_->accept_peer(budget);
      if (!peer) continue;
      auto hello = recv_frame(*peer, options_.message_timeout_ms, -1);
      if (!hello || hello->type != MsgType::kHello) continue;
      const std::int64_t peer_rank = hello->rank;
      if (remaining.count(peer_rank) == 0) continue;
      Frame ack{MsgType::kHelloAck, 0, 0, ""};
      send_frame(*peer, ack, 0);
      Frame sync{MsgType::kSync, last_epoch_, 0, sync_payload};
      send_frame(*peer, sync, 0);
      peers_.emplace(peer_rank, std::move(*peer));
      remaining.erase(peer_rank);
    }
    lost_ranks_.clear();
    for (auto& [peer_rank, socket] : peers_) {
      Frame resume{MsgType::kResume, last_epoch_, 0,
                   format_resume(peer_rank, world_)};
      send_frame(socket, resume, 0);
    }
    return RankContext{0, world_};
  }

  // Degrade: compact the surviving ranks into a dense [0, world) range,
  // preserving relative order (root stays 0), and broadcast the new
  // coordinates.
  std::map<std::int64_t, Socket> compacted;
  std::int64_t next_rank = 1;
  for (auto& [peer_rank, socket] : peers_) {
    (void)peer_rank;
    compacted.emplace(next_rank++, std::move(socket));
  }
  peers_ = std::move(compacted);
  world_ = next_rank;
  lost_ranks_.clear();
  for (auto& [peer_rank, socket] : peers_) {
    Frame resume{MsgType::kResume, last_epoch_, 0,
                 format_resume(peer_rank, world_)};
    send_frame(socket, resume, 0);
  }
  return RankContext{0, world_};
}

RankContext Communicator::worker_recover() {
  const std::int64_t deadline =
      steady_now_ms() + options_.rejoin_timeout_ms;
  while (true) {
    const std::int64_t budget = deadline - steady_now_ms();
    if (budget <= 0) {
      throw TransportError("recover", rank_, 1,
                           "no kResume from root within the rejoin "
                           "timeout");
    }
    auto frame = recv_frame(
        root_socket_, std::min(budget, options_.message_timeout_ms), 0);
    if (!frame) continue;
    if (frame->type == MsgType::kResume) {
      const RankContext ctx = parse_resume(frame->payload);
      rank_ = ctx.rank;
      world_ = ctx.world;
      return ctx;
    }
    // Duplicate aborts or stale sums may still be in flight: ignore.
  }
}

void Communicator::shutdown() {
  if (!is_root()) return;
  for (auto& [peer_rank, socket] : peers_) {
    try {
      Frame bye{MsgType::kShutdown, last_epoch_, 0, ""};
      send_frame(socket, bye, 0);
    } catch (const Error&) {
      // Shutdown is best-effort; a dead peer at teardown is not an error.
    }
  }
}

}  // namespace qpinn::dist

#include "dist/launcher.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string_view>
#include <thread>

#include "dist/transport.hpp"
#include "util/error.hpp"

extern char** environ;

namespace qpinn::dist {

namespace {

std::int64_t parse_int_flag(const char* value, const char* flag) {
  try {
    return std::stoll(value);
  } catch (const std::exception&) {
    throw ConfigError(std::string("bad value for ") + flag + ": " + value);
  }
}

std::string_view key_of(std::string_view entry) {
  return entry.substr(0, entry.find('='));
}

/// Builds the child environment: the parent's, minus keys overridden by
/// `overrides` ("KEY=VALUE" entries, later wins). Duplicate override keys
/// are collapsed to the last occurrence — getenv returns the *first*
/// match, so leaving both would silently resurrect the earlier value.
std::vector<std::string> build_env(const std::vector<std::string>& overrides) {
  std::vector<std::string> effective;
  for (const std::string& override_entry : overrides) {
    const std::string_view key = key_of(override_entry);
    bool replaced = false;
    for (std::string& existing : effective) {
      if (key_of(existing) == key) {
        existing = override_entry;
        replaced = true;
        break;
      }
    }
    if (!replaced) effective.push_back(override_entry);
  }

  std::vector<std::string> env;
  for (char** entry = environ; *entry != nullptr; ++entry) {
    const std::string_view var(*entry);
    const std::string_view key = key_of(var);
    bool overridden = false;
    for (const std::string& override_entry : effective) {
      if (key_of(override_entry) == key) {
        overridden = true;
        break;
      }
    }
    if (!overridden) env.emplace_back(var);
  }
  env.insert(env.end(), effective.begin(), effective.end());
  return env;
}

}  // namespace

WorkerArgs parse_worker_argv(int argc, const char* const* argv) {
  WorkerArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    const bool has_value = i + 1 < argc;
    if (arg == "--qpinn-dist-worker") {
      args.is_worker = true;
    } else if (arg == "--qpinn-dist-rejoin") {
      args.rejoin = true;
    } else if (arg == "--qpinn-dist-rank" && has_value) {
      args.rank = parse_int_flag(argv[++i], "--qpinn-dist-rank");
    } else if (arg == "--qpinn-dist-world" && has_value) {
      args.world = parse_int_flag(argv[++i], "--qpinn-dist-world");
    } else if (arg == "--qpinn-dist-endpoint" && has_value) {
      args.endpoint = argv[++i];
    }
  }
  return args;
}

Launcher::Launcher(LaunchConfig config) : config_(std::move(config)) {
  if (config_.world < 1) throw ConfigError("launcher world must be >= 1");
  if (config_.endpoint.empty()) {
    throw ConfigError("launcher endpoint must be non-empty");
  }
}

Launcher::~Launcher() { kill_all(); }

void Launcher::launch_all() {
  for (std::int64_t rank = 1; rank < config_.world; ++rank) {
    spawn(rank, /*rejoin=*/false);
  }
}

void Launcher::restart(std::int64_t rank, bool rejoin) {
  const auto it = children_.find(rank);
  if (it != children_.end()) {
    // The child is expected dead; reap it (blocking: a zombie reaps
    // immediately, and if it is somehow alive we must not fork a second
    // copy of the rank).
    int status = 0;
    ::waitpid(it->second, &status, 0);
    children_.erase(it);
  }
  spawn(rank, rejoin);
}

void Launcher::spawn(std::int64_t rank, bool rejoin) {
  std::vector<std::string> argv_store;
  argv_store.emplace_back("/proc/self/exe");
  argv_store.emplace_back("--qpinn-dist-worker");
  argv_store.emplace_back("--qpinn-dist-rank");
  argv_store.emplace_back(std::to_string(rank));
  argv_store.emplace_back("--qpinn-dist-world");
  argv_store.emplace_back(std::to_string(config_.world));
  argv_store.emplace_back("--qpinn-dist-endpoint");
  argv_store.emplace_back(config_.endpoint);
  if (rejoin) argv_store.emplace_back("--qpinn-dist-rejoin");
  argv_store.insert(argv_store.end(), config_.extra_args.begin(),
                    config_.extra_args.end());

  std::vector<std::string> env_overrides = config_.extra_env;
  if (rejoin) {
    // The injected rank-kill already fired in the child being replaced;
    // disarm it so the replacement survives.
    env_overrides.emplace_back("QPINN_FAULT_KILL_RANK=-1");
  }
  std::vector<std::string> env_store = build_env(env_overrides);

  std::vector<char*> argv;
  argv.reserve(argv_store.size() + 1);
  for (std::string& arg : argv_store) argv.push_back(arg.data());
  argv.push_back(nullptr);
  std::vector<char*> envp;
  envp.reserve(env_store.size() + 1);
  for (std::string& entry : env_store) envp.push_back(entry.data());
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw Error(std::string("fork failed: ") + std::strerror(errno));
  }
  if (pid == 0) {
    ::execve(argv[0], argv.data(), envp.data());
    // Reached only when exec fails; die loudly without running atexit
    // handlers that belong to the parent image.
    ::_exit(127);
  }
  children_[rank] = pid;
}

std::int64_t Launcher::wait_all(std::int64_t timeout_ms) {
  const std::int64_t deadline = steady_now_ms() + timeout_ms;
  std::int64_t failures = 0;
  while (!children_.empty()) {
    bool reaped = false;
    for (auto it = children_.begin(); it != children_.end();) {
      int status = 0;
      const pid_t done = ::waitpid(it->second, &status, WNOHANG);
      if (done == it->second) {
        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        if (!clean) ++failures;
        it = children_.erase(it);
        reaped = true;
      } else {
        ++it;
      }
    }
    if (children_.empty()) break;
    if (steady_now_ms() >= deadline) {
      failures += static_cast<std::int64_t>(children_.size());
      kill_all();
      break;
    }
    if (!reaped) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  return failures;
}

void Launcher::kill_all() {
  for (auto& [rank, pid] : children_) {
    (void)rank;
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
  }
  children_.clear();
}

}  // namespace qpinn::dist

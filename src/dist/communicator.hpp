// Rank abstraction and deterministic all-reduce for data-parallel training.
//
// Topology is a star: rank 0 (the root) owns the listening endpoint and
// coordinates; ranks 1..world-1 hold one stream to the root. An
// all-reduce is gather -> rank-ordered elementwise sum -> broadcast, so
// the reduction order is a function of rank alone and the result is
// bit-identical run-to-run — the same discipline the SIMD and plan layers
// follow. Workers' contributions double as heartbeats: the root's gather
// carries a deadline (TransportOptions::heartbeat_timeout_ms) and a rank
// whose contribution never arrives — EOF or silence — is declared lost, no
// watchdog threads required.
//
// Failure state machine (driven by Trainer::fit):
//   gather deadline / EOF on root  ->  root sends kEpochAbort to the
//   survivors and every rank throws PeerLostError  ->  the trainer rolls
//   the epoch back and checkpoints  ->  all survivors call recover():
//     kRejoin:  the root restarts the lost rank (restart_rank callback),
//               accepts its Hello, replies kSync with the trainer's
//               authoritative state, then broadcasts kResume; the
//               replacement loads last.qckpt and applies the sync payload.
//     kDegrade: the root compacts surviving ranks into a smaller world and
//               broadcasts kResume with each rank's new coordinates.
//   ->  the aborted epoch is retried.
//
// A root death is fatal to the job (single point of coordination); see
// DESIGN.md for the limitation and the planned failover follow-up.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/transport.hpp"

namespace qpinn::dist {

/// This process's coordinates in the job.
struct RankContext {
  std::int64_t rank = 0;
  std::int64_t world = 1;
};

/// What the survivors do about a lost rank.
enum class FailurePolicy {
  kDegrade,  // reshard onto the smaller surviving world
  kRejoin,   // restart the rank and block until it re-syncs
};

/// Configuration for Communicator::create.
struct DistConfig {
  std::int64_t rank = 0;
  std::int64_t world = 1;
  /// AF_UNIX socket path owned by rank 0 (keep it short: sun_path caps
  /// out near 108 bytes).
  std::string endpoint;
  TransportOptions transport;
  FailurePolicy policy = FailurePolicy::kRejoin;
  /// True when this process is a restarted rank re-entering a running
  /// job: Hello carries the rejoin marker and create() blocks for the
  /// root's kSync + kResume.
  bool rejoin = false;
  /// Root-side hook invoked during kRejoin recovery to restart a dead
  /// rank (the launcher forks a replacement). Unset: recovery just waits
  /// for a replacement to dial in.
  std::function<void(std::int64_t lost_rank)> restart_rank;
};

/// Counters for tests and bench reporting.
struct CommStats {
  std::int64_t allreduces = 0;
  std::int64_t retransmits = 0;
  std::int64_t aborts = 0;
  std::int64_t recoveries = 0;
};

class Communicator {
 public:
  /// Multi-process communicator: rank 0 listens on config.endpoint and
  /// accepts world-1 Hellos; other ranks dial in with bounded retry.
  static std::shared_ptr<Communicator> create(const DistConfig& config);

  /// In-process communicators joined by socketpairs, one per rank — the
  /// same code paths as create() minus the listener, so unit tests, TSan
  /// and the bench harness can exercise the protocol without forking.
  /// Rejoin recovery needs the listener and is unsupported here.
  static std::vector<std::shared_ptr<Communicator>> loopback(
      std::int64_t world, const TransportOptions& options = {});

  std::int64_t rank() const { return rank_; }
  std::int64_t world() const { return world_; }
  bool is_root() const { return rank_ == 0; }
  FailurePolicy policy() const { return policy_; }

  /// Trainer sync state received via kSync when this process rejoined
  /// (empty otherwise).
  const std::string& sync_payload() const { return sync_payload_; }
  bool rejoined() const { return rejoined_; }

  /// In-place sum of `buffer` across all ranks, reduced in rank order so
  /// the result is bit-identical for a given world size. Every rank must
  /// call with the same buffer length and epoch. Throws PeerLostError
  /// when a rank is lost mid-epoch (after the root aborts the epoch) and
  /// TransportError when this rank's own retry budget is exhausted.
  void allreduce(std::vector<double>& buffer, std::int64_t epoch);

  /// Runs the recovery half of the state machine after PeerLostError.
  /// `sync_payload` is the trainer state the root forwards to rejoining
  /// ranks (ignored on non-root ranks). Returns the possibly-changed
  /// coordinates (degrade shrinks the world).
  RankContext recover(const std::string& sync_payload);

  /// Root broadcasts kShutdown; workers close their stream.
  void shutdown();

  /// Ranks the root declared lost in the most recent aborted epoch.
  const std::vector<std::int64_t>& lost_ranks() const { return lost_ranks_; }

  const CommStats& stats() const { return stats_; }

 private:
  Communicator() = default;

  void root_allreduce(std::vector<double>& buffer, std::int64_t epoch);
  void worker_allreduce(std::vector<double>& buffer, std::int64_t epoch);
  void root_abort_epoch(std::int64_t epoch);
  RankContext root_recover(const std::string& sync_payload);
  RankContext worker_recover();

  std::int64_t rank_ = 0;
  std::int64_t world_ = 1;
  TransportOptions options_;
  FailurePolicy policy_ = FailurePolicy::kRejoin;
  std::function<void(std::int64_t)> restart_rank_;

  std::unique_ptr<Listener> listener_;      // root, multi-process only
  std::map<std::int64_t, Socket> peers_;    // root: rank -> stream
  Socket root_socket_;                      // workers: stream to root

  std::vector<std::int64_t> lost_ranks_;
  Frame cached_sum_;          // root: last completed epoch's kGradSum
  std::int64_t last_epoch_ = -1;
  std::string sync_payload_;
  bool rejoined_ = false;
  CommStats stats_;
};

/// Deterministic rank-kill fault: when QPINN_FAULT_KILL_RANK targets
/// `rank` and the "dist.kill" window covers `epoch` (QPINN_FAULT_AT /
/// QPINN_FAULT_COUNT), the process exits immediately — no cleanup, as a
/// real crash would. Trainer calls this at the top of every epoch.
void maybe_fault_kill(std::int64_t rank, std::int64_t epoch);

/// Packs doubles into an opaque frame payload and back.
std::string pack_doubles(const std::vector<double>& values);
void unpack_doubles(const std::string& payload, std::vector<double>& values);

}  // namespace qpinn::dist

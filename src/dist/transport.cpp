#include "dist/transport.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "util/crc32.hpp"
#include "util/env.hpp"
#include "util/fault.hpp"

namespace qpinn::dist {

namespace {

constexpr std::uint32_t kFrameMagic = 0x51444631u;  // "QDF1"

std::int64_t now_ms() { return steady_now_ms(); }

/// Header fields in decoded form; only produced by parse_frame_header,
/// i.e. after every field has been validated.
struct ParsedHeader {
  MsgType type = MsgType::kHello;
  std::int64_t epoch = 0;
  std::int64_t rank = 0;
  std::uint64_t payload_len = 0;
};

void append_pod(std::string& out, const void* data, std::size_t len) {
  out.append(static_cast<const char*>(data), len);
}

template <typename T>
T read_pod_at(const unsigned char* buf) {
  T value;
  std::memcpy(&value, buf, sizeof(T));
  return value;
}

/// Validates and decodes the fixed 32-byte header. Rejects a bad magic
/// word, an unknown message type, and a payload length above the hard cap
/// — all before the caller allocates anything for the payload.
ParsedHeader parse_frame_header(const unsigned char* header,
                                std::int64_t peer_rank) {
  const auto magic = read_pod_at<std::uint32_t>(header);
  if (magic != kFrameMagic) {
    throw TransportError("decode", peer_rank, 1, "bad frame magic");
  }
  const auto raw_type = read_pod_at<std::uint32_t>(header + 4);
  if (raw_type < static_cast<std::uint32_t>(MsgType::kHello) ||
      raw_type > static_cast<std::uint32_t>(MsgType::kShutdown)) {
    throw TransportError("decode", peer_rank, 1,
                         "unknown message type " + std::to_string(raw_type));
  }
  ParsedHeader parsed;
  parsed.type = static_cast<MsgType>(raw_type);
  parsed.epoch = read_pod_at<std::int64_t>(header + 8);
  parsed.rank = read_pod_at<std::int64_t>(header + 16);
  parsed.payload_len = read_pod_at<std::uint64_t>(header + 24);
  if (parsed.payload_len > kMaxFramePayload) {
    throw TransportError("decode", peer_rank, 1,
                         "payload length " +
                             std::to_string(parsed.payload_len) +
                             " exceeds the frame cap");
  }
  return parsed;
}

/// Writes the whole buffer, retrying on short writes and EINTR.
/// MSG_NOSIGNAL turns a dead peer into EPIPE instead of SIGPIPE.
void send_all(Socket& socket, const void* data, std::size_t len,
              std::int64_t peer_rank) {
  const char* cursor = static_cast<const char*>(data);
  std::size_t remaining = len;
  while (remaining > 0) {
    const ssize_t sent =
        ::send(socket.fd(), cursor, remaining, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        throw PeerLostError(peer_rank, "send: peer hung up");
      }
      throw TransportError("send", peer_rank, 1,
                           std::string("send failed: ") +
                               std::strerror(errno));
    }
    cursor += sent;
    remaining -= static_cast<std::size_t>(sent);
  }
}

/// Reads exactly `len` bytes before `deadline` (absolute, now_ms clock).
/// Returns false on timeout with zero bytes consumed so far; once any byte
/// of the frame has been read, a timeout mid-frame is a hard error.
bool recv_exact(Socket& socket, void* data, std::size_t len,
                std::int64_t deadline, std::int64_t peer_rank,
                bool started) {
  char* cursor = static_cast<char*>(data);
  std::size_t remaining = len;
  while (remaining > 0) {
    const std::int64_t budget = deadline - now_ms();
    if (budget <= 0) {
      if (!started && remaining == len) return false;
      throw TransportError("recv", peer_rank, 1,
                           "frame truncated by receive deadline");
    }
    struct pollfd pfd {};
    pfd.fd = socket.fd();
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, static_cast<int>(budget));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw TransportError("recv", peer_rank, 1,
                           std::string("poll failed: ") +
                               std::strerror(errno));
    }
    if (ready == 0) continue;  // re-check deadline at loop head
    const ssize_t got = ::recv(socket.fd(), cursor, remaining, 0);
    if (got < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      if (errno == ECONNRESET) {
        throw PeerLostError(peer_rank, "recv: connection reset");
      }
      throw TransportError("recv", peer_rank, 1,
                           std::string("recv failed: ") +
                               std::strerror(errno));
    }
    if (got == 0) throw PeerLostError(peer_rank, "recv: peer closed stream");
    cursor += got;
    remaining -= static_cast<std::size_t>(got);
    started = true;
  }
  return true;
}

sockaddr_un make_address(const std::string& endpoint) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (endpoint.size() >= sizeof(address.sun_path)) {
    throw ConfigError("dist endpoint path too long: " + endpoint);
  }
  std::memcpy(address.sun_path, endpoint.c_str(), endpoint.size() + 1);
  return address;
}

}  // namespace

std::int64_t steady_now_ms() {
  // The transport's deadline clock: the one sanctioned monotonic source
  // outside util/timer.hpp. Deadlines never feed numeric training state,
  // so replay bit-identity is unaffected.
  using clock = std::chrono::steady_clock;  // lint-allow: banned-wallclock
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             clock::now().time_since_epoch())
      .count();
}

TransportOptions TransportOptions::from_env() {
  TransportOptions opts;
  opts.message_timeout_ms =
      env_int("QPINN_DIST_MESSAGE_TIMEOUT_MS", opts.message_timeout_ms);
  opts.heartbeat_timeout_ms =
      env_int("QPINN_DIST_HEARTBEAT_TIMEOUT_MS", opts.heartbeat_timeout_ms);
  opts.max_retries = env_int("QPINN_DIST_MAX_RETRIES", opts.max_retries);
  opts.backoff_initial_ms =
      env_int("QPINN_DIST_BACKOFF_MS", opts.backoff_initial_ms);
  opts.rejoin_timeout_ms =
      env_int("QPINN_DIST_REJOIN_TIMEOUT_MS", opts.rejoin_timeout_ms);
  return opts;
}

TransportError::TransportError(const std::string& op, std::int64_t rank,
                               std::int64_t attempts,
                               const std::string& detail)
    : Error("TransportError: op=" + op + " rank=" + std::to_string(rank) +
            " attempts=" + std::to_string(attempts) + ": " + detail),
      op_(op),
      rank_(rank),
      attempts_(attempts) {}

PeerLostError::PeerLostError(std::int64_t rank, const std::string& detail)
    : Error("PeerLostError: rank=" + std::to_string(rank) +
            (detail.empty() ? "" : ": " + detail)),
      rank_(rank) {}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::make_pair(Socket& a, Socket& b) {
  int fds[2] = {-1, -1};
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw TransportError("socketpair", -1, 1, std::strerror(errno));
  }
  a = Socket(fds[0]);
  b = Socket(fds[1]);
}

Listener::Listener(const std::string& endpoint) : endpoint_(endpoint) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw TransportError("listen", -1, 1,
                         std::string("socket failed: ") +
                             std::strerror(errno));
  }
  const sockaddr_un address = make_address(endpoint_);
  ::unlink(endpoint_.c_str());  // remove a stale socket file from a crash
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw TransportError("listen", -1, 1,
                         "bind(" + endpoint_ + ") failed: " + detail);
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    const std::string detail = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw TransportError("listen", -1, 1, "listen failed: " + detail);
  }
}

Listener::~Listener() {
  if (fd_ >= 0) ::close(fd_);
  if (!endpoint_.empty()) ::unlink(endpoint_.c_str());
}

std::optional<Socket> Listener::accept_peer(std::int64_t timeout_ms) {
  const std::int64_t deadline = now_ms() + timeout_ms;
  while (true) {
    const std::int64_t budget = deadline - now_ms();
    if (budget <= 0) return std::nullopt;
    struct pollfd pfd {};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, static_cast<int>(budget));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw TransportError("accept", -1, 1,
                           std::string("poll failed: ") +
                               std::strerror(errno));
    }
    if (ready == 0) continue;
    const int peer = ::accept(fd_, nullptr, nullptr);
    if (peer < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK ||
          errno == ECONNABORTED) {
        continue;
      }
      throw TransportError("accept", -1, 1,
                           std::string("accept failed: ") +
                               std::strerror(errno));
    }
    return Socket(peer);
  }
}

Socket connect_peer(const std::string& endpoint, const TransportOptions& opts,
                    std::int64_t self_rank) {
  const sockaddr_un address = make_address(endpoint);
  std::int64_t backoff = opts.backoff_initial_ms;
  const std::int64_t attempts_allowed = opts.max_retries + 1;
  std::string last_error = "no attempt made";
  for (std::int64_t attempt = 0; attempt < attempts_allowed; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
      backoff = std::min(backoff * 2, opts.backoff_max_ms);
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      last_error = std::string("socket failed: ") + std::strerror(errno);
      continue;
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) == 0) {
      return Socket(fd);
    }
    last_error = std::strerror(errno);
    ::close(fd);
  }
  throw TransportError("connect", self_rank, attempts_allowed,
                       "connect(" + endpoint + ") failed: " + last_error);
}

std::string encode_frame(const Frame& frame) {
  std::string wire;
  wire.reserve(kFrameHeaderBytes + frame.payload.size() + kFrameTrailerBytes);
  const auto type = static_cast<std::uint32_t>(frame.type);
  const auto payload_len = static_cast<std::uint64_t>(frame.payload.size());
  append_pod(wire, &kFrameMagic, sizeof(kFrameMagic));
  append_pod(wire, &type, sizeof(type));
  append_pod(wire, &frame.epoch, sizeof(frame.epoch));
  append_pod(wire, &frame.rank, sizeof(frame.rank));
  append_pod(wire, &payload_len, sizeof(payload_len));
  wire += frame.payload;
  const std::uint32_t checksum = crc32(frame.payload);
  append_pod(wire, &checksum, sizeof(checksum));
  return wire;
}

Frame decode_frame(const void* data, std::size_t len,
                   std::int64_t peer_rank) {
  if (len < kFrameHeaderBytes + kFrameTrailerBytes) {
    throw TransportError("decode", peer_rank, 1,
                         "buffer shorter than frame header + CRC trailer");
  }
  const auto* bytes = static_cast<const unsigned char*>(data);
  const ParsedHeader parsed = parse_frame_header(bytes, peer_rank);
  const std::uint64_t present = len - kFrameHeaderBytes - kFrameTrailerBytes;
  if (parsed.payload_len != present) {
    throw TransportError("decode", peer_rank, 1,
                         "payload length field " +
                             std::to_string(parsed.payload_len) +
                             " disagrees with the " +
                             std::to_string(present) + " bytes present");
  }
  Frame frame;
  frame.type = parsed.type;
  frame.epoch = parsed.epoch;
  frame.rank = parsed.rank;
  frame.payload.assign(
      reinterpret_cast<const char*>(bytes + kFrameHeaderBytes),
      static_cast<std::size_t>(parsed.payload_len));
  const auto checksum = read_pod_at<std::uint32_t>(
      bytes + kFrameHeaderBytes + parsed.payload_len);
  if (checksum != crc32(frame.payload)) {
    throw TransportError("decode", peer_rank, 1, "frame CRC mismatch");
  }
  return frame;
}

void send_frame(Socket& socket, const Frame& frame, std::int64_t self_rank) {
  auto& injector = FaultInjector::instance();
  if (injector.rank_in_scope(self_rank)) {
    const std::int64_t delay = injector.delay_ms();
    if (delay > 0 && injector.should_fire(kFaultDistDelay)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
    if (injector.should_fire(kFaultDistDropMsg)) return;
  }
  const std::string wire = encode_frame(frame);
  send_all(socket, wire.data(), wire.size(), frame.rank);
}

std::optional<Frame> recv_frame(Socket& socket, std::int64_t timeout_ms,
                                std::int64_t peer_rank) {
  const std::int64_t deadline = now_ms() + timeout_ms;
  unsigned char header[kFrameHeaderBytes];
  if (!recv_exact(socket, header, sizeof(header), deadline, peer_rank,
                  /*started=*/false)) {
    return std::nullopt;
  }
  // Magic, type, and length are all validated before the payload buffer is
  // sized, so a corrupt header surfaces as a TransportError, never as an
  // unbounded allocation.
  const ParsedHeader parsed = parse_frame_header(header, peer_rank);
  Frame frame;
  frame.type = parsed.type;
  frame.epoch = parsed.epoch;
  frame.rank = parsed.rank;
  frame.payload.resize(static_cast<std::size_t>(parsed.payload_len));
  if (parsed.payload_len > 0) {
    recv_exact(socket, frame.payload.data(),
               static_cast<std::size_t>(parsed.payload_len), deadline,
               peer_rank,
               /*started=*/true);
  }
  std::uint32_t checksum = 0;
  recv_exact(socket, &checksum, sizeof(checksum), deadline, peer_rank,
             /*started=*/true);
  if (checksum != crc32(frame.payload)) {
    throw TransportError("decode", peer_rank, 1, "frame CRC mismatch");
  }
  return frame;
}

std::vector<std::size_t> wait_any_readable(
    const std::vector<const Socket*>& sockets, std::int64_t timeout_ms) {
  std::vector<struct pollfd> pfds(sockets.size());
  for (std::size_t i = 0; i < sockets.size(); ++i) {
    pfds[i].fd = sockets[i]->fd();
    pfds[i].events = POLLIN;
  }
  std::vector<std::size_t> ready;
  while (true) {
    const int count = ::poll(pfds.data(), pfds.size(),
                             static_cast<int>(timeout_ms));
    if (count < 0) {
      if (errno == EINTR) continue;
      return ready;
    }
    if (count == 0) return ready;
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        ready.push_back(i);
      }
    }
    return ready;
  }
}

bool wait_readable(const Socket& socket, std::int64_t timeout_ms) {
  struct pollfd pfd {};
  pfd.fd = socket.fd();
  pfd.events = POLLIN;
  while (true) {
    const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
    if (ready < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    return ready > 0;
  }
}

}  // namespace qpinn::dist

// Persistent worker pool (Core Guidelines CP.41: minimize thread
// creation/destruction; CP.42: never wait without a condition).
//
// The pool is the shared-memory stand-in for the GPU in the original
// system: collocation batches are sharded across workers and gradients are
// reduced deterministically (see data-parallel trainer in core/).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace qpinn {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes (exceptions are
  /// transported through the future).
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), blocking until all complete. Work is
  /// divided into contiguous chunks, at most `size()` of them. Exceptions
  /// from any chunk are rethrown (first one wins).
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(chunk_index, begin, end) over a static partition of [0, n)
  /// into exactly min(size(), n) chunks. Useful when per-chunk scratch
  /// state is needed (e.g. per-shard gradients).
  void for_each_chunk(
      std::size_t n,
      const std::function<void(std::size_t chunk, std::size_t begin,
                               std::size_t end)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool used by tensor kernels and the trainer.
/// The first call creates it with `default_num_threads()` workers.
ThreadPool& global_pool();

/// Resizes the global pool (joins old workers, spawns new ones).
/// Not safe to call concurrently with in-flight pool work.
void set_global_threads(std::size_t num_threads);

/// QPINN_THREADS env override, otherwise hardware_concurrency (>= 1).
std::size_t default_num_threads();

}  // namespace qpinn

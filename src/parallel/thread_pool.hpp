// Persistent worker pool (Core Guidelines CP.41: minimize thread
// creation/destruction; CP.42: never wait without a condition).
//
// The pool is the shared-memory stand-in for the GPU in the original
// system: collocation batches are sharded across workers and gradients are
// reduced deterministically (see data-parallel trainer in core/).
//
// All queue and lifecycle state is guarded by a single annotated mutex
// (clang -Wthread-safety proves the locking discipline; TSan checks the
// dynamic behavior in CI). Task bodies themselves run unlocked.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "util/mutex.hpp"

namespace qpinn {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains the queue: already-submitted tasks still run; workers exit
  /// once the queue is empty.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes (exceptions are
  /// transported through the future).
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(i) for i in [0, n), blocking until all complete. Work is
  /// divided into contiguous chunks, at most `size()` of them. Exceptions
  /// from any chunk are rethrown (first one wins).
  void for_each_index(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(chunk_index, begin, end) over a static partition of [0, n)
  /// into exactly min(size(), n) chunks. Useful when per-chunk scratch
  /// state is needed (e.g. per-shard gradients).
  void for_each_chunk(
      std::size_t n,
      const std::function<void(std::size_t chunk, std::size_t begin,
                               std::size_t end)>& fn);

  /// True when no submitted task is queued or executing. Point-in-time
  /// answer: another thread may submit immediately afterwards.
  bool idle() const;

  /// Lifetime count of tasks handed to workers via submit(). Work run
  /// inline on the calling thread (small-n parallel_for, chunk 0 of
  /// for_each_chunk) is NOT counted — the counter measures dispatch, which
  /// is what grain heuristics are tuned against (see the serial-dispatch
  /// tests in tests/kernels_test.cpp).
  std::uint64_t tasks_submitted() const {
    return submitted_.load(std::memory_order_relaxed);
  }

 private:
  /// Task plus its completion channel. A plain promise (not packaged_task)
  /// so the worker can decrement inflight_ BEFORE fulfilling the future:
  /// a caller that saw future.get() return is then guaranteed to observe
  /// idle() == true, which the set_global_threads() contract relies on.
  struct Entry {
    std::function<void()> fn;
    std::shared_ptr<std::promise<void>> done;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<Entry> queue_ QPINN_GUARDED_BY(mutex_);
  bool stopping_ QPINN_GUARDED_BY(mutex_) = false;
  /// Tasks submitted but not yet finished (queued + executing).
  std::size_t inflight_ QPINN_GUARDED_BY(mutex_) = 0;
  /// Lifetime dispatch counter; see tasks_submitted().
  std::atomic<std::uint64_t> submitted_{0};
};

/// Process-wide pool used by tensor kernels and the trainer.
/// The first call creates it with `default_num_threads()` workers.
///
/// Lifecycle contract: the returned reference stays valid until the next
/// set_global_threads() call. Callers must not hold it across a resize.
ThreadPool& global_pool();

/// Resizes the global pool (joins old workers, spawns new ones).
///
/// Contract (enforced): the current pool must be idle — no submitted task
/// queued or executing — when the resize happens; a busy pool raises
/// ConfigError instead of destroying workers under in-flight work. Callers
/// must additionally guarantee that no other thread calls into the pool
/// concurrently with the resize (the check cannot see a reference another
/// thread is *about to* use), which is the documented single-threaded
/// configuration phase of a training run.
void set_global_threads(std::size_t num_threads);

/// QPINN_THREADS env override, otherwise hardware_concurrency (>= 1).
std::size_t default_num_threads();

}  // namespace qpinn

#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "util/env.hpp"
#include "util/error.hpp"

namespace qpinn {

ThreadPool::ThreadPool(std::size_t num_threads) {
  QPINN_CHECK(num_threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Entry entry;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) cv_.wait(mutex_);
      if (stopping_ && queue_.empty()) return;
      entry = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      entry.fn();
    } catch (...) {
      error = std::current_exception();
    }
    {
      // Decrement before fulfilling the future: once a waiter unblocks,
      // idle() already reflects this task as finished.
      MutexLock lock(mutex_);
      --inflight_;
    }
    if (error) {
      entry.done->set_exception(error);
    } else {
      entry.done->set_value();
    }
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  Entry entry{std::move(task), std::make_shared<std::promise<void>>()};
  std::future<void> future = entry.done->get_future();
  {
    MutexLock lock(mutex_);
    QPINN_CHECK(!stopping_, "submit() on a stopping thread pool");
    queue_.push_back(std::move(entry));
    ++inflight_;
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  cv_.notify_one();
  return future;
}

bool ThreadPool::idle() const {
  MutexLock lock(mutex_);
  return inflight_ == 0;
}

void ThreadPool::for_each_chunk(
    std::size_t n,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = std::min(size(), n);
  if (chunks == 1) {
    fn(0, 0, n);
    return;
  }
  const std::size_t base = n / chunks;
  const std::size_t extra = n % chunks;

  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  std::size_t begin = 0;
  std::size_t first_begin = 0, first_end = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    const std::size_t end = begin + len;
    if (c == 0) {
      // Chunk 0 runs on the calling thread so the pool never deadlocks when
      // invoked from inside a pool task.
      first_begin = begin;
      first_end = end;
    } else {
      futures.push_back(
          submit([&fn, c, begin, end] { fn(c, begin, end); }));
    }
    begin = end;
  }
  std::exception_ptr error;
  try {
    fn(0, first_begin, first_end);
  } catch (...) {
    error = std::current_exception();
  }
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!error) error = std::current_exception();
    }
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::for_each_index(
    std::size_t n, const std::function<void(std::size_t)>& fn) {
  for_each_chunk(n, [&fn](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

namespace {
Mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool QPINN_GUARDED_BY(g_pool_mutex);
}  // namespace

std::size_t default_num_threads() {
  const long long from_env = env_int("QPINN_THREADS", 0);
  if (from_env > 0) return static_cast<std::size_t>(from_env);
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool& global_pool() {
  MutexLock lock(g_pool_mutex);
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(default_num_threads());
  return *g_pool;
}

void set_global_threads(std::size_t num_threads) {
  QPINN_CHECK(num_threads >= 1, "set_global_threads needs >= 1 worker");
  // Build the replacement before taking the lock so a throwing constructor
  // leaves the old pool in place.
  auto next = std::make_unique<ThreadPool>(num_threads);
  std::unique_ptr<ThreadPool> retired;
  {
    MutexLock lock(g_pool_mutex);
    if (g_pool && !g_pool->idle()) {
      throw ConfigError(
          "set_global_threads() while the global pool has in-flight work; "
          "resize the pool only from the single-threaded configuration "
          "phase (see thread_pool.hpp contract)");
    }
    retired = std::exchange(g_pool, std::move(next));
  }
  // Old workers join outside the lock (they cannot be running pool work:
  // the idle() check above saw an empty queue and stopping_ drains it).
  retired.reset();
}

}  // namespace qpinn

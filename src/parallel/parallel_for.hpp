// Convenience wrappers over the global ThreadPool.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace qpinn {

/// Runs body(begin, end) over a static partition of [0, n). For small `n`
/// (below `grain`) the body runs inline on the calling thread, avoiding
/// pool overhead for tiny kernels.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 2048);

/// Deterministic parallel reduction: partial results are produced per
/// chunk and combined in chunk order, so the result does not depend on
/// thread scheduling.
///
///   double s = parallel_reduce<double>(n, 0.0,
///       [&](size_t b, size_t e, double acc){ ... return acc; },
///       [](double a, double b){ return a + b; });
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(std::size_t n, T init, ChunkFn chunk_fn,
                  CombineFn combine_fn, std::size_t grain = 2048) {
  if (n == 0) return init;
  if (n < grain || global_pool().size() == 1) {
    return chunk_fn(std::size_t{0}, n, std::move(init));
  }
  ThreadPool& pool = global_pool();
  const std::size_t chunks = std::min(pool.size(), n);
  std::vector<T> partials(chunks, init);
  pool.for_each_chunk(n, [&](std::size_t c, std::size_t begin,
                             std::size_t end) {
    partials[c] = chunk_fn(begin, end, partials[c]);
  });
  // Combine in fixed chunk order for determinism.
  T result = partials[0];
  for (std::size_t c = 1; c < chunks; ++c) {
    result = combine_fn(std::move(result), std::move(partials[c]));
  }
  return result;
}

}  // namespace qpinn

#include "parallel/parallel_for.hpp"

namespace qpinn {

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain) {
  if (n == 0) return;
  if (n < grain) {
    body(0, n);
    return;
  }
  ThreadPool& pool = global_pool();
  if (pool.size() == 1) {
    body(0, n);
    return;
  }
  pool.for_each_chunk(
      n, [&body](std::size_t, std::size_t begin, std::size_t end) {
        body(begin, end);
      });
}

}  // namespace qpinn

// Closed-form solutions of quantum benchmark problems (hbar = m = 1).
//
// Every solution here is property-tested: it must satisfy its own PDE to
// finite-difference accuracy and match the corresponding FDM solver.
#pragma once

#include <complex>
#include <functional>
#include <vector>

namespace qpinn::quantum {

using Complex = std::complex<double>;
/// psi(x, t).
using SpaceTimeField = std::function<Complex(double, double)>;

/// Free Gaussian wave packet: at t = 0,
///   psi = (2 pi sigma0^2)^{-1/4} exp(-(x-x0)^2/(4 sigma0^2) + i k0 (x-x0)),
/// evolving under i psi_t = -1/2 psi_xx (exact Gaussian-integral form).
SpaceTimeField free_gaussian_packet(double x0, double k0, double sigma0);

/// Harmonic-oscillator (omega = 1) coherent state displaced to x0 with
/// zero initial momentum:
///   psi(x, t) = pi^{-1/4} exp(-(x - x0 cos t)^2 / 2
///               - i (t/2 + x x0 sin t - x0^2 sin(2t)/4)).
SpaceTimeField ho_coherent_state(double x0);

/// Superposition of infinite-well eigenstates on a box [0, L]:
///   psi = sum_n c_n sqrt(2/L) sin(n pi x / L) e^{-i E_n t},
/// with coefficients[n-1] = c_n (not necessarily normalized).
SpaceTimeField well_superposition(double width,
                                  std::vector<Complex> coefficients);

/// Stationary HO eigenstate n with its phase: phi_n(x) e^{-i E_n t}.
SpaceTimeField ho_stationary_state(std::int64_t n);

/// Bright one-soliton of the focusing NLS
///   i psi_t + 1/2 psi_xx + |psi|^2 psi = 0:
///   psi = a sech(a (x - v t)) exp(i (v x + (a^2 - v^2) t / 2)).
SpaceTimeField nls_bright_soliton(double amplitude, double velocity);

/// The Raissi et al. (2019) NLS benchmark initial condition 2 sech(x).
Complex nls_raissi_initial(double x);

}  // namespace qpinn::quantum

#include "quantum/potentials.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace qpinn::quantum {

PotentialFn free_potential() {
  return [](double) { return 0.0; };
}

PotentialFn harmonic_potential(double omega) {
  QPINN_CHECK(omega > 0.0, "harmonic omega must be positive");
  return [omega](double x) { return 0.5 * omega * omega * x * x; };
}

PotentialFn barrier_potential(double height, double center, double width) {
  QPINN_CHECK(width > 0.0, "barrier width must be positive");
  const double lo = center - 0.5 * width;
  const double hi = center + 0.5 * width;
  return [height, lo, hi](double x) {
    return (x >= lo && x <= hi) ? height : 0.0;
  };
}

PotentialFn double_well_potential(double a, double b) {
  QPINN_CHECK(a > 0.0 && b > 0.0, "double-well parameters must be positive");
  return [a, b](double x) {
    const double u = x * x - b * b;
    return a * u * u;
  };
}

PotentialFn poschl_teller_potential(double lambda) {
  QPINN_CHECK(lambda > 0.0, "Poschl-Teller lambda must be positive");
  return [lambda](double x) {
    const double sech = 1.0 / std::cosh(x);
    return -0.5 * lambda * (lambda + 1.0) * sech * sech;
  };
}

double infinite_well_eigenvalue(std::int64_t n, double width) {
  QPINN_CHECK(n >= 1, "well quantum number starts at 1");
  QPINN_CHECK(width > 0.0, "well width must be positive");
  const double k = static_cast<double>(n) * std::numbers::pi / width;
  return 0.5 * k * k;
}

}  // namespace qpinn::quantum

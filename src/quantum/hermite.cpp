#include "quantum/hermite.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace qpinn::quantum {

double hermite(std::int64_t n, double x) {
  QPINN_CHECK(n >= 0, "hermite order must be >= 0");
  if (n == 0) return 1.0;
  double h_prev = 1.0;
  double h = 2.0 * x;
  for (std::int64_t k = 1; k < n; ++k) {
    const double h_next = 2.0 * x * h - 2.0 * static_cast<double>(k) * h_prev;
    h_prev = h;
    h = h_next;
  }
  return h;
}

std::vector<double> hermite_all(std::int64_t n, double x) {
  QPINN_CHECK(n >= 0, "hermite order must be >= 0");
  std::vector<double> values(static_cast<std::size_t>(n + 1));
  values[0] = 1.0;
  if (n >= 1) values[1] = 2.0 * x;
  for (std::int64_t k = 1; k < n; ++k) {
    values[static_cast<std::size_t>(k + 1)] =
        2.0 * x * values[static_cast<std::size_t>(k)] -
        2.0 * static_cast<double>(k) * values[static_cast<std::size_t>(k - 1)];
  }
  return values;
}

double ho_eigenfunction(std::int64_t n, double x) {
  QPINN_CHECK(n >= 0, "eigenfunction index must be >= 0");
  // Normalized recurrence: with u_n = phi_n(x),
  //   u_{n+1} = x sqrt(2/(n+1)) u_n - sqrt(n/(n+1)) u_{n-1},
  // starting from u_0 = pi^{-1/4} e^{-x^2/2}.
  const double u0 =
      std::pow(std::numbers::pi, -0.25) * std::exp(-0.5 * x * x);
  if (n == 0) return u0;
  double prev = u0;
  double curr = std::numbers::sqrt2 * x * u0;  // u_1 = sqrt(2) x u_0
  for (std::int64_t k = 1; k < n; ++k) {
    const double dk = static_cast<double>(k);
    const double next = x * std::sqrt(2.0 / (dk + 1.0)) * curr -
                        std::sqrt(dk / (dk + 1.0)) * prev;
    prev = curr;
    curr = next;
  }
  return curr;
}

double ho_eigenvalue(std::int64_t n) {
  QPINN_CHECK(n >= 0, "eigenvalue index must be >= 0");
  return static_cast<double>(n) + 0.5;
}

}  // namespace qpinn::quantum

#include "quantum/observables.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qpinn::quantum {

using fdm::Complex;
using fdm::Grid1d;

namespace {

/// Central-difference first derivative with boundary handling.
std::vector<Complex> derivative(const Grid1d& grid,
                                const std::vector<Complex>& psi) {
  const std::size_t n = psi.size();
  const double dx = grid.dx();
  std::vector<Complex> d(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (grid.periodic) {
      const Complex right = psi[(i + 1) % n];
      const Complex left = psi[(i + n - 1) % n];
      d[i] = (right - left) / (2.0 * dx);
    } else if (i == 0) {
      d[i] = (psi[1] - psi[0]) / dx;
    } else if (i + 1 == n) {
      d[i] = (psi[n - 1] - psi[n - 2]) / dx;
    } else {
      d[i] = (psi[i + 1] - psi[i - 1]) / (2.0 * dx);
    }
  }
  return d;
}

/// Central-difference second derivative.
std::vector<Complex> second_derivative(const Grid1d& grid,
                                       const std::vector<Complex>& psi) {
  const std::size_t n = psi.size();
  const double dx2 = grid.dx() * grid.dx();
  std::vector<Complex> d(n, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < n; ++i) {
    Complex left, right;
    if (grid.periodic) {
      right = psi[(i + 1) % n];
      left = psi[(i + n - 1) % n];
    } else if (i == 0 || i + 1 == n) {
      // Walls: Dirichlet reference problems have psi ~ 0 here; a one-sided
      // stencil adds noise without value, so keep the second derivative 0.
      continue;
    } else {
      right = psi[i + 1];
      left = psi[i - 1];
    }
    d[i] = (right - 2.0 * psi[i] + left) / dx2;
  }
  return d;
}

}  // namespace

double total_probability(const Grid1d& grid, const std::vector<Complex>& psi) {
  QPINN_CHECK(static_cast<std::int64_t>(psi.size()) == grid.n,
              "observable: psi size must match grid");
  std::vector<double> density(psi.size());
  for (std::size_t i = 0; i < psi.size(); ++i) density[i] = std::norm(psi[i]);
  return trapezoid(grid, density);
}

double position_mean(const Grid1d& grid, const std::vector<Complex>& psi) {
  QPINN_CHECK(static_cast<std::int64_t>(psi.size()) == grid.n,
              "observable: psi size must match grid");
  const std::vector<double> x = grid.points();
  std::vector<double> integrand(psi.size());
  for (std::size_t i = 0; i < psi.size(); ++i) {
    integrand[i] = x[i] * std::norm(psi[i]);
  }
  return trapezoid(grid, integrand) / total_probability(grid, psi);
}

double momentum_mean(const Grid1d& grid, const std::vector<Complex>& psi) {
  QPINN_CHECK(static_cast<std::int64_t>(psi.size()) == grid.n,
              "observable: psi size must match grid");
  const std::vector<Complex> dpsi = derivative(grid, psi);
  std::vector<double> integrand(psi.size());
  for (std::size_t i = 0; i < psi.size(); ++i) {
    // Re( psi* (-i) psi' ) = Im( psi* psi' ).
    integrand[i] = std::imag(std::conj(psi[i]) * dpsi[i]);
  }
  return trapezoid(grid, integrand) / total_probability(grid, psi);
}

double energy_mean(const Grid1d& grid, const std::vector<Complex>& psi,
                   const std::function<double(double)>& potential) {
  QPINN_CHECK(static_cast<std::int64_t>(psi.size()) == grid.n,
              "observable: psi size must match grid");
  const std::vector<Complex> d2 = second_derivative(grid, psi);
  const std::vector<double> x = grid.points();
  std::vector<double> integrand(psi.size());
  for (std::size_t i = 0; i < psi.size(); ++i) {
    const double v = potential ? potential(x[i]) : 0.0;
    const Complex h_psi = -0.5 * d2[i] + v * psi[i];
    integrand[i] = std::real(std::conj(psi[i]) * h_psi);
  }
  return trapezoid(grid, integrand) / total_probability(grid, psi);
}

std::vector<double> probability_density(const std::vector<Complex>& psi) {
  std::vector<double> density(psi.size());
  for (std::size_t i = 0; i < psi.size(); ++i) density[i] = std::norm(psi[i]);
  return density;
}

}  // namespace qpinn::quantum

// Physical observables of a wavefunction sampled on a grid.
//
// These back both the physics-fidelity metrics (norm / energy drift of a
// trained PINN) and the conservation property tests of the FDM solvers.
#pragma once

#include <functional>
#include <vector>

#include "fdm/grid.hpp"

namespace qpinn::quantum {

/// Total probability integral |psi|^2 dx.
double total_probability(const fdm::Grid1d& grid,
                         const std::vector<fdm::Complex>& psi);

/// Position expectation <x>.
double position_mean(const fdm::Grid1d& grid,
                     const std::vector<fdm::Complex>& psi);

/// Momentum expectation <p> = Re integral psi* (-i d/dx) psi dx (central
/// differences; one-sided at walls, wrapped when periodic).
double momentum_mean(const fdm::Grid1d& grid,
                     const std::vector<fdm::Complex>& psi);

/// Energy expectation <H> with H = -1/2 d2/dx2 + V (central differences).
double energy_mean(const fdm::Grid1d& grid,
                   const std::vector<fdm::Complex>& psi,
                   const std::function<double(double)>& potential);

/// Probability density |psi|^2 at every grid point.
std::vector<double> probability_density(const std::vector<fdm::Complex>& psi);

}  // namespace qpinn::quantum

// Standard potentials (hbar = m = 1 units throughout).
#pragma once

#include <functional>
#include <string>

namespace qpinn::quantum {

using PotentialFn = std::function<double(double)>;

/// V = 0.
PotentialFn free_potential();

/// V = 1/2 omega^2 x^2.
PotentialFn harmonic_potential(double omega = 1.0);

/// Rectangular barrier of the given height on [center - width/2,
/// center + width/2], zero elsewhere.
PotentialFn barrier_potential(double height, double center, double width);

/// Symmetric quartic double well V = a (x^2 - b^2)^2.
PotentialFn double_well_potential(double a, double b);

/// Pöschl-Teller well V = -lambda(lambda+1)/2 sech^2(x) — has known bound
/// states, useful for eigen-solver validation.
PotentialFn poschl_teller_potential(double lambda);

/// Infinite-well eigenvalue for a box of width L: E_n = n^2 pi^2 / (2 L^2),
/// n = 1, 2, ... (the box itself is modeled by Dirichlet walls, V = 0).
double infinite_well_eigenvalue(std::int64_t n, double width);

}  // namespace qpinn::quantum

// Physicists' Hermite polynomials and harmonic-oscillator eigenfunctions.
#pragma once

#include <cstdint>
#include <vector>

namespace qpinn::quantum {

/// H_n(x) via the stable three-term recurrence
/// H_{n+1} = 2x H_n - 2n H_{n-1}.
double hermite(std::int64_t n, double x);

/// Values H_0..H_n at x (one recurrence pass).
std::vector<double> hermite_all(std::int64_t n, double x);

/// Normalized harmonic-oscillator eigenfunction (hbar = m = omega = 1):
/// phi_n(x) = (2^n n! sqrt(pi))^{-1/2} H_n(x) e^{-x^2/2}.
/// Computed with a normalized recurrence so it stays finite for large n.
double ho_eigenfunction(std::int64_t n, double x);

/// Eigenvalue E_n = n + 1/2.
double ho_eigenvalue(std::int64_t n);

}  // namespace qpinn::quantum

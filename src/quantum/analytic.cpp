#include "quantum/analytic.hpp"

#include <cmath>
#include <numbers>

#include "quantum/hermite.hpp"
#include "quantum/potentials.hpp"
#include "util/error.hpp"

namespace qpinn::quantum {

namespace {
constexpr Complex kI{0.0, 1.0};
}

SpaceTimeField free_gaussian_packet(double x0, double k0, double sigma0) {
  QPINN_CHECK(sigma0 > 0.0, "packet width must be positive");
  const double a = 1.0 / (4.0 * sigma0 * sigma0);
  const double norm =
      std::pow(2.0 * std::numbers::pi * sigma0 * sigma0, -0.25);

  return [=](double x, double t) -> Complex {
    const double X = x - x0;
    if (std::abs(t) < 1e-12) {
      return norm * std::exp(-a * X * X) * std::exp(kI * (k0 * X));
    }
    // psi(x,t) = N / sqrt(2 pi i t) * e^{i X^2/(2t)} * sqrt(pi/A)
    //            * exp(B^2 / (4A)),
    // A = a - i/(2t), B = i (k0 - X/t)  (free propagator Gaussian integral).
    const Complex A = Complex(a, -1.0 / (2.0 * t));
    const Complex B = kI * (k0 - X / t);
    const Complex prefactor =
        norm / std::sqrt(Complex(0.0, 2.0 * std::numbers::pi * t)) *
        std::sqrt(std::numbers::pi / A);
    const Complex phase = kI * (X * X / (2.0 * t)) + B * B / (4.0 * A);
    return prefactor * std::exp(phase);
  };
}

SpaceTimeField ho_coherent_state(double x0) {
  const double norm = std::pow(std::numbers::pi, -0.25);
  return [=](double x, double t) -> Complex {
    const double xc = x0 * std::cos(t);
    const double gauss = std::exp(-0.5 * (x - xc) * (x - xc));
    const double phase =
        -(0.5 * t + x * x0 * std::sin(t) - 0.25 * x0 * x0 * std::sin(2.0 * t));
    return norm * gauss * std::exp(kI * phase);
  };
}

SpaceTimeField well_superposition(double width,
                                  std::vector<Complex> coefficients) {
  QPINN_CHECK(width > 0.0, "well width must be positive");
  QPINN_CHECK(!coefficients.empty(), "need at least one coefficient");
  const double L = width;
  return [L, coefficients = std::move(coefficients)](double x,
                                                     double t) -> Complex {
    if (x <= 0.0 || x >= L) return Complex(0.0, 0.0);
    Complex acc(0.0, 0.0);
    const double amplitude = std::sqrt(2.0 / L);
    for (std::size_t m = 0; m < coefficients.size(); ++m) {
      const auto n = static_cast<std::int64_t>(m + 1);
      const double kn = static_cast<double>(n) * std::numbers::pi / L;
      const double energy = infinite_well_eigenvalue(n, L);
      acc += coefficients[m] * amplitude * std::sin(kn * x) *
             std::exp(-kI * (energy * t));
    }
    return acc;
  };
}

SpaceTimeField ho_stationary_state(std::int64_t n) {
  QPINN_CHECK(n >= 0, "eigenstate index must be >= 0");
  const double energy = ho_eigenvalue(n);
  return [n, energy](double x, double t) -> Complex {
    return ho_eigenfunction(n, x) * std::exp(-kI * (energy * t));
  };
}

SpaceTimeField nls_bright_soliton(double amplitude, double velocity) {
  QPINN_CHECK(amplitude > 0.0, "soliton amplitude must be positive");
  const double a = amplitude;
  const double v = velocity;
  return [a, v](double x, double t) -> Complex {
    const double envelope = a / std::cosh(a * (x - v * t));
    const double phase = v * x + 0.5 * (a * a - v * v) * t;
    return envelope * std::exp(kI * phase);
  };
}

Complex nls_raissi_initial(double x) {
  return Complex(2.0 / std::cosh(x), 0.0);
}

}  // namespace qpinn::quantum

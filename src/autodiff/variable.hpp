// Reverse-mode automatic differentiation with higher-order support.
//
// A Variable wraps a node in a dynamically built computation graph. Every
// operation's vector-Jacobian product (backward rule) is itself expressed
// in terms of differentiable operations, so calling grad(...) with
// create_graph=true yields gradients that can be differentiated again —
// exactly the double-backward recipe PINNs use for u_t, u_xx inside the
// loss. This is the "autodiff plumbing" substrate of the reproduction.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace qpinn::autodiff {

class Variable;

/// Graph node. Nodes own their parents (keeping subgraphs alive) and a
/// backward function producing parent gradients from the output gradient.
/// Backward functions receive `self` as a borrowed Variable so closures do
/// not capture their own node (which would create a shared_ptr cycle).
struct Node {
  Tensor value;
  bool requires_grad = false;
  std::vector<Variable> parents;
  std::function<std::vector<Variable>(const Variable& grad_out,
                                      const Variable& self)>
      backward;
  const char* op = "leaf";
  std::uint64_t id = 0;  ///< creation order; stable tie-break in traversals
  /// Checked-build tape state (QPINN_CHECKED; see util/invariant.hpp): a
  /// non-retaining backward pass marks every interior node it consumed as
  /// released. Running backward through — or building new ops on top of —
  /// a released node is a tape-discipline violation (use-after-backward /
  /// backward-twice) and raises InvariantError in checked builds. Leaves
  /// are never released (parameters survive across training steps).
  bool released = false;
};

class Variable {
 public:
  /// Default-constructed Variables are "undefined" (no node).
  Variable() = default;

  /// Trainable or differentiable-input leaf.
  static Variable leaf(Tensor value, bool requires_grad = true);
  /// Non-differentiable constant wrapping the given tensor.
  static Variable constant(Tensor value);
  /// Scalar constant.
  static Variable constant(double value);

  bool defined() const { return node_ != nullptr; }
  const Tensor& value() const;
  /// Mutable access to the underlying tensor (sanctioned only for leaves,
  /// e.g. optimizer parameter updates).
  Tensor& mutable_value();
  bool requires_grad() const { return node_ != nullptr && node_->requires_grad; }
  const char* op() const { return node_ ? node_->op : "undefined"; }

  const Shape& shape() const { return value().shape(); }
  std::int64_t numel() const { return value().numel(); }
  /// Scalar value of a one-element Variable.
  double item() const { return value().item(); }

  /// A constant sharing this Variable's tensor (cuts the graph).
  Variable detach() const;

  Node* node() const { return node_.get(); }
  const std::shared_ptr<Node>& node_ptr() const { return node_; }

  /// Identity comparison (same graph node).
  bool is(const Variable& other) const { return node_ == other.node_; }

 private:
  friend Variable make_op(
      const char* op, Tensor value, std::vector<Variable> parents,
      std::function<std::vector<Variable>(const Variable&, const Variable&)>
          backward);
  friend Variable wrap_node(std::shared_ptr<Node> node);

  std::shared_ptr<Node> node_;
};

/// Creates an interior graph node. requires_grad is inherited from parents;
/// when no parent requires grad the backward function is dropped and the
/// node behaves as a constant.
Variable make_op(
    const char* op, Tensor value, std::vector<Variable> parents,
    std::function<std::vector<Variable>(const Variable&, const Variable&)>
        backward);

/// Rewraps an existing node (used by the traversal machinery).
Variable wrap_node(std::shared_ptr<Node> node);

}  // namespace qpinn::autodiff

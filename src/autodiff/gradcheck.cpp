#include "autodiff/gradcheck.hpp"

#include <cmath>
#include <sstream>

#include "autodiff/grad.hpp"
#include "autodiff/ops.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qpinn::autodiff {

namespace {

std::vector<Variable> make_leaves(const std::vector<Tensor>& points) {
  std::vector<Variable> leaves;
  leaves.reserve(points.size());
  for (const Tensor& p : points) leaves.push_back(Variable::leaf(p.clone()));
  return leaves;
}

double eval_scalar(const ScalarFn& f, const std::vector<Variable>& leaves) {
  const Variable y = f(leaves);
  QPINN_CHECK_SHAPE(y.numel() == 1,
                    "gradcheck: function under test must return a scalar");
  return y.item();
}

}  // namespace

GradcheckReport check_gradients(const ScalarFn& f,
                                const std::vector<Tensor>& points, double eps,
                                double atol, double rtol) {
  GradcheckReport report;
  std::vector<Variable> leaves = make_leaves(points);

  const Variable y = f(leaves);
  QPINN_CHECK_SHAPE(y.numel() == 1,
                    "gradcheck: function under test must return a scalar");
  const std::vector<Variable> analytic = grad(y, leaves);

  for (std::size_t which = 0; which < leaves.size(); ++which) {
    Tensor& x = leaves[which].mutable_value();
    const Tensor& a = analytic[which].value();
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      const double saved = x.data()[i];
      x.data()[i] = saved + eps;
      const double plus = eval_scalar(f, leaves);
      x.data()[i] = saved - eps;
      const double minus = eval_scalar(f, leaves);
      x.data()[i] = saved;
      const double numeric = (plus - minus) / (2.0 * eps);
      const double analytic_value = a.data()[i];
      const double abs_err = std::abs(analytic_value - numeric);
      const double rel_err = abs_err / std::max(1e-12, std::abs(numeric));
      report.max_abs_err = std::max(report.max_abs_err, abs_err);
      report.max_rel_err = std::max(report.max_rel_err, rel_err);
      if (abs_err > atol + rtol * std::abs(numeric) && report.ok) {
        report.ok = false;
        std::ostringstream os;
        os << "input " << which << " element " << i << ": analytic "
           << analytic_value << " vs numeric " << numeric;
        report.detail = os.str();
      }
    }
  }
  return report;
}

GradcheckReport check_second_gradients(const ScalarFn& f,
                                       const std::vector<Tensor>& points,
                                       std::uint64_t seed, double eps,
                                       double atol, double rtol) {
  // Fixed random weights give a generic direction through the Hessian.
  Rng rng(seed);
  std::vector<Tensor> weights;
  weights.reserve(points.size());
  for (const Tensor& p : points) {
    weights.push_back(Tensor::randn(p.shape(), rng));
  }

  const ScalarFn g = [&f, &weights](const std::vector<Variable>& leaves) {
    const Variable y = f(leaves);
    GradOptions options;
    options.create_graph = true;
    const std::vector<Variable> first = grad(y, leaves, {}, options);
    Variable acc = Variable::constant(0.0);
    for (std::size_t i = 0; i < first.size(); ++i) {
      const Variable w = Variable::constant(weights[i]);
      acc = add(acc, sum_all(mul(first[i], w)));
    }
    return acc;
  };
  return check_gradients(g, points, eps, atol, rtol);
}

}  // namespace qpinn::autodiff

#include "autodiff/ops.hpp"

#include <algorithm>

#include "tensor/kernels.hpp"
#include "util/error.hpp"

namespace qpinn::autodiff {

namespace k = qpinn::kernels;

namespace {

thread_local bool g_grad_enabled = true;

/// Parent i of a backward invocation.
const Variable& parent(const Variable& self, std::size_t i) {
  return self.node()->parents[i];
}

/// True when parent i needs a gradient (used to skip dead computations).
bool needs(const Variable& self, std::size_t i) {
  return self.node()->parents[i].requires_grad();
}

}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool grad_mode_enabled() { return g_grad_enabled; }

// make_op wrapper honoring the thread-local grad mode.
namespace {
Variable op(const char* name, Tensor value, std::vector<Variable> parents,
            std::function<std::vector<Variable>(const Variable&,
                                                const Variable&)>
                backward) {
  if (!g_grad_enabled) {
    return Variable::constant(std::move(value));
  }
  return make_op(name, std::move(value), std::move(parents),
                 std::move(backward));
}
}  // namespace

// ---- binary ----------------------------------------------------------------

Variable add(const Variable& a, const Variable& b) {
  return op("add", k::add(a.value(), b.value()), {a, b},
            [](const Variable& g, const Variable& self) {
              std::vector<Variable> grads(2);
              if (needs(self, 0))
                grads[0] = sum_to(g, parent(self, 0).shape());
              if (needs(self, 1))
                grads[1] = sum_to(g, parent(self, 1).shape());
              return grads;
            });
}

Variable sub(const Variable& a, const Variable& b) {
  return op("sub", k::sub(a.value(), b.value()), {a, b},
            [](const Variable& g, const Variable& self) {
              std::vector<Variable> grads(2);
              if (needs(self, 0))
                grads[0] = sum_to(g, parent(self, 0).shape());
              if (needs(self, 1))
                grads[1] = neg(sum_to(g, parent(self, 1).shape()));
              return grads;
            });
}

Variable mul(const Variable& a, const Variable& b) {
  return op("mul", k::mul(a.value(), b.value()), {a, b},
            [](const Variable& g, const Variable& self) {
              std::vector<Variable> grads(2);
              if (needs(self, 0))
                grads[0] = sum_to(mul(g, parent(self, 1)),
                                  parent(self, 0).shape());
              if (needs(self, 1))
                grads[1] = sum_to(mul(g, parent(self, 0)),
                                  parent(self, 1).shape());
              return grads;
            });
}

Variable div(const Variable& a, const Variable& b) {
  return op("div", k::div(a.value(), b.value()), {a, b},
            [](const Variable& g, const Variable& self) {
              const Variable& a_ = parent(self, 0);
              const Variable& b_ = parent(self, 1);
              std::vector<Variable> grads(2);
              if (needs(self, 0)) grads[0] = sum_to(div(g, b_), a_.shape());
              if (needs(self, 1)) {
                grads[1] =
                    neg(sum_to(mul(g, div(a_, square(b_))), b_.shape()));
              }
              return grads;
            });
}

// ---- unary -------------------------------------------------------------------

Variable neg(const Variable& a) {
  return op("neg", k::neg(a.value()), {a},
            [](const Variable& g, const Variable&) {
              return std::vector<Variable>{neg(g)};
            });
}

Variable scale(const Variable& a, double s) {
  return op("scale", k::scale(a.value(), s), {a},
            [s](const Variable& g, const Variable&) {
              return std::vector<Variable>{scale(g, s)};
            });
}

Variable add_scalar(const Variable& a, double s) {
  return op("add_scalar", k::add_scalar(a.value(), s), {a},
            [](const Variable& g, const Variable&) {
              return std::vector<Variable>{g};
            });
}

Variable exp(const Variable& a) {
  return op("exp", k::exp(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{mul(g, self)};
            });
}

Variable log(const Variable& a) {
  return op("log", k::log(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{div(g, parent(self, 0))};
            });
}

Variable tanh(const Variable& a) {
  return op("tanh", k::tanh(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              // d tanh = 1 - tanh^2; reuse the forward value through `self`
              // so the second derivative flows through tanh's own graph.
              return std::vector<Variable>{
                  mul(g, add_scalar(neg(square(self)), 1.0))};
            });
}

Variable sin(const Variable& a) {
  return op("sin", k::sin(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{mul(g, cos(parent(self, 0)))};
            });
}

Variable cos(const Variable& a) {
  return op("cos", k::cos(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{neg(mul(g, sin(parent(self, 0))))};
            });
}

Variable sqrt(const Variable& a) {
  return op("sqrt", k::sqrt(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{scale(div(g, self), 0.5)};
            });
}

Variable reciprocal(const Variable& a) {
  return op("reciprocal", k::reciprocal(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{neg(mul(g, square(self)))};
            });
}

Variable square(const Variable& a) {
  return op("square", k::square(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  scale(mul(g, parent(self, 0)), 2.0)};
            });
}

Variable sigmoid(const Variable& a) {
  return op("sigmoid", k::sigmoid(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  mul(g, mul(self, add_scalar(neg(self), 1.0)))};
            });
}

Variable softplus(const Variable& a) {
  return op("softplus", k::softplus(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{mul(g, sigmoid(parent(self, 0)))};
            });
}

Variable pow_scalar(const Variable& a, double p) {
  return op("pow_scalar", k::pow_scalar(a.value(), p), {a},
            [p](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  scale(mul(g, pow_scalar(parent(self, 0), p - 1.0)), p)};
            });
}

Variable relu(const Variable& a) {
  return op("relu", k::relu(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              // Step factor is locally constant: correct a.e., and its
              // second derivative is identically zero.
              const Variable mask =
                  Variable::constant(k::step(parent(self, 0).value()));
              return std::vector<Variable>{mul(g, mask)};
            });
}

Variable abs(const Variable& a) {
  return op("abs", k::abs(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              const Variable sgn =
                  Variable::constant(k::sign(parent(self, 0).value()));
              return std::vector<Variable>{mul(g, sgn)};
            });
}

// ---- linear algebra ------------------------------------------------------------

Variable matmul(const Variable& a, const Variable& b) {
  return op("matmul", k::matmul(a.value(), b.value()), {a, b},
            [](const Variable& g, const Variable& self) {
              std::vector<Variable> grads(2);
              if (needs(self, 0))
                grads[0] = matmul(g, transpose(parent(self, 1)));
              if (needs(self, 1))
                grads[1] = matmul(transpose(parent(self, 0)), g);
              return grads;
            });
}

Variable transpose(const Variable& a) {
  return op("transpose", k::transpose(a.value()), {a},
            [](const Variable& g, const Variable&) {
              return std::vector<Variable>{transpose(g)};
            });
}

// ---- reductions -------------------------------------------------------------------

Variable sum_all(const Variable& a) {
  return op("sum_all", k::sum_all(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  broadcast_to(g, parent(self, 0).shape())};
            });
}

Variable mean_all(const Variable& a) {
  const double inv_n = 1.0 / static_cast<double>(a.numel());
  return scale(sum_all(a), inv_n);
}

Variable sum_to(const Variable& a, const Shape& target) {
  if (a.shape() == target) return a;
  return op("sum_to", k::sum_to(a.value(), target), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  broadcast_to(g, parent(self, 0).shape())};
            });
}

Variable broadcast_to(const Variable& a, const Shape& target) {
  if (a.shape() == target) return a;
  return op("broadcast_to", k::broadcast_to(a.value(), target), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  sum_to(g, parent(self, 0).shape())};
            });
}

// ---- fused ----------------------------------------------------------------------

Variable bias_tanh(const Variable& a, const Variable& bias) {
  return op("bias_tanh", k::bias_tanh(a.value(), bias.value()), {a, bias},
            [](const Variable& g, const Variable& self) {
              // d tanh(x + b) = 1 - tanh^2(x + b); reuse the forward value
              // through `self` like tanh does.
              const Variable dx =
                  mul(g, add_scalar(neg(square(self)), 1.0));
              std::vector<Variable> grads(2);
              if (needs(self, 0)) grads[0] = dx;
              if (needs(self, 1))
                grads[1] = sum_to(dx, parent(self, 1).shape());
              return grads;
            });
}

Variable bias_sin(const Variable& a, const Variable& bias) {
  return op("bias_sin", k::bias_sin(a.value(), bias.value()), {a, bias},
            [](const Variable& g, const Variable& self) {
              const Variable dx =
                  mul(g, cos(add(parent(self, 0), parent(self, 1))));
              std::vector<Variable> grads(2);
              if (needs(self, 0)) grads[0] = dx;
              if (needs(self, 1))
                grads[1] = sum_to(dx, parent(self, 1).shape());
              return grads;
            });
}

Variable square_sum(const Variable& a) {
  return op("square_sum", k::square_sum_all(a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  scale(mul(g, parent(self, 0)), 2.0)};
            });
}

Variable weighted_square_sum(const Variable& w, const Variable& a) {
  return op("weighted_square_sum",
            k::weighted_square_sum_all(w.value(), a.value()), {w, a},
            [](const Variable& g, const Variable& self) {
              const Variable& w_ = parent(self, 0);
              const Variable& a_ = parent(self, 1);
              std::vector<Variable> grads(2);
              if (needs(self, 0))
                grads[0] = mul(g, sum_to(square(a_), w_.shape()));
              if (needs(self, 1))
                grads[1] = scale(mul(g, mul(w_, a_)), 2.0);
              return grads;
            });
}

// ---- structural --------------------------------------------------------------------

Variable reshape(const Variable& a, const Shape& shape) {
  if (a.shape() == shape) return a;
  return op("reshape", a.value().reshape(shape), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  reshape(g, parent(self, 0).shape())};
            });
}

namespace {
// Embeds `g` into a zero matrix of `cols` columns at column offset c0.
Tensor pad_cols_tensor(const Tensor& g, std::int64_t c0, std::int64_t cols) {
  Tensor out(Shape{g.rows(), cols});
  const std::int64_t w = g.cols();
  double* po = out.data();
  const double* pg = g.data();
  for (std::int64_t r = 0; r < g.rows(); ++r) {
    std::copy(pg + r * w, pg + (r + 1) * w, po + r * cols + c0);
  }
  return out;
}

Variable pad_cols(const Variable& g, std::int64_t c0, std::int64_t cols);

Tensor pad_rows_tensor(const Tensor& g, std::int64_t r0, std::int64_t rows) {
  Tensor out(Shape{rows, g.cols()});
  std::copy(g.data(), g.data() + g.numel(), out.data() + r0 * g.cols());
  return out;
}

Variable pad_rows(const Variable& g, std::int64_t r0, std::int64_t rows);
}  // namespace

Variable slice_cols(const Variable& a, std::int64_t c0, std::int64_t c1) {
  return op("slice_cols", k::slice_cols(a.value(), c0, c1), {a},
            [c0](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  pad_cols(g, c0, parent(self, 0).value().cols())};
            });
}

namespace {
Variable pad_cols(const Variable& g, std::int64_t c0, std::int64_t cols) {
  return op("pad_cols", pad_cols_tensor(g.value(), c0, cols), {g},
            [c0](const Variable& gg, const Variable& self) {
              const std::int64_t w = parent(self, 0).value().cols();
              return std::vector<Variable>{slice_cols(gg, c0, c0 + w)};
            });
}

Variable pad_rows(const Variable& g, std::int64_t r0, std::int64_t rows) {
  return op("pad_rows", pad_rows_tensor(g.value(), r0, rows), {g},
            [r0](const Variable& gg, const Variable& self) {
              const std::int64_t h = parent(self, 0).value().rows();
              return std::vector<Variable>{slice_rows(gg, r0, r0 + h)};
            });
}
}  // namespace

Variable concat_cols(const std::vector<Variable>& parts) {
  QPINN_CHECK(!parts.empty(), "concat_cols needs at least one Variable");
  if (parts.size() == 1) return parts.front();
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  return op("concat_cols", k::concat_cols(values), parts,
            [](const Variable& g, const Variable& self) {
              std::vector<Variable> grads;
              grads.reserve(self.node()->parents.size());
              std::int64_t offset = 0;
              for (const Variable& p : self.node()->parents) {
                const std::int64_t w = p.value().cols();
                grads.push_back(
                    p.requires_grad()
                        ? slice_cols(g, offset, offset + w)
                        : Variable());
                offset += w;
              }
              return grads;
            });
}

Variable slice_rows(const Variable& a, std::int64_t r0, std::int64_t r1) {
  return op("slice_rows", k::slice_rows(a.value(), r0, r1), {a},
            [r0](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  pad_rows(g, r0, parent(self, 0).value().rows())};
            });
}

Variable concat_rows(const std::vector<Variable>& parts) {
  QPINN_CHECK(!parts.empty(), "concat_rows needs at least one Variable");
  if (parts.size() == 1) return parts.front();
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  return op("concat_rows", k::concat_rows(values), parts,
            [](const Variable& g, const Variable& self) {
              std::vector<Variable> grads;
              grads.reserve(self.node()->parents.size());
              std::int64_t offset = 0;
              for (const Variable& p : self.node()->parents) {
                const std::int64_t h = p.value().rows();
                grads.push_back(
                    p.requires_grad()
                        ? slice_rows(g, offset, offset + h)
                        : Variable());
                offset += h;
              }
              return grads;
            });
}

// ---- composite ------------------------------------------------------------------------

Variable mse(const Variable& a) {
  // Fused sum-of-squares reduction; same math as mean_all(square(a)) with
  // one pass and no squared intermediate.
  return scale(square_sum(a), 1.0 / static_cast<double>(a.numel()));
}

Variable column(const Variable& a, std::int64_t c) {
  return slice_cols(a, c, c + 1);
}

}  // namespace qpinn::autodiff

#include "autodiff/ops.hpp"

#include <algorithm>

#include "autodiff/plan.hpp"
#include "tensor/kernels.hpp"
#include "util/error.hpp"

namespace qpinn::autodiff {

namespace k = qpinn::kernels;

namespace {

thread_local bool g_grad_enabled = true;

/// Parent i of a backward invocation.
const Variable& parent(const Variable& self, std::size_t i) {
  return self.node()->parents[i];
}

/// True when parent i needs a gradient (used to skip dead computations).
bool needs(const Variable& self, std::size_t i) {
  return self.node()->parents[i].requires_grad();
}

// Capture-aware kernel launchers: compute the value eagerly and, while an
// execution plan is recording, append a structured thunk that re-runs the
// SAME kernel into the SAME buffer (the `_into` variants in
// tensor/kernels.hpp), so replay is bit-identical to the captured eager
// step and the optimizer passes can inspect the kernel identity.
Tensor run1(Tensor (*f)(const Tensor&), void (*fi)(Tensor&, const Tensor&),
            const Tensor& a) {
  Tensor out = f(a);
  plan::record_unary(out, fi, a);
  return out;
}

Tensor run1s(Tensor (*f)(const Tensor&, double),
             void (*fi)(Tensor&, const Tensor&, double), const Tensor& a,
             double s) {
  Tensor out = f(a, s);
  plan::record_unary_scalar(out, fi, a, s);
  return out;
}

Tensor run2(Tensor (*f)(const Tensor&, const Tensor&),
            void (*fi)(Tensor&, const Tensor&, const Tensor&), const Tensor& a,
            const Tensor& b) {
  Tensor out = f(a, b);
  plan::record_binary(out, fi, a, b);
  return out;
}

}  // namespace

NoGradGuard::NoGradGuard() : previous_(g_grad_enabled) {
  g_grad_enabled = false;
}

NoGradGuard::~NoGradGuard() { g_grad_enabled = previous_; }

bool grad_mode_enabled() { return g_grad_enabled; }

// make_op wrapper honoring the thread-local grad mode.
namespace {
Variable op(const char* name, Tensor value, std::vector<Variable> parents,
            std::function<std::vector<Variable>(const Variable&,
                                                const Variable&)>
                backward) {
  if (!g_grad_enabled) {
    return Variable::constant(std::move(value));
  }
  return make_op(name, std::move(value), std::move(parents),
                 std::move(backward));
}
}  // namespace

// ---- binary ----------------------------------------------------------------

Variable add(const Variable& a, const Variable& b) {
  return op("add", run2(&k::add, &k::add_into, a.value(), b.value()), {a, b},
            [](const Variable& g, const Variable& self) {
              std::vector<Variable> grads(2);
              if (needs(self, 0))
                grads[0] = sum_to(g, parent(self, 0).shape());
              if (needs(self, 1))
                grads[1] = sum_to(g, parent(self, 1).shape());
              return grads;
            });
}

Variable sub(const Variable& a, const Variable& b) {
  return op("sub", run2(&k::sub, &k::sub_into, a.value(), b.value()), {a, b},
            [](const Variable& g, const Variable& self) {
              std::vector<Variable> grads(2);
              if (needs(self, 0))
                grads[0] = sum_to(g, parent(self, 0).shape());
              if (needs(self, 1))
                grads[1] = neg(sum_to(g, parent(self, 1).shape()));
              return grads;
            });
}

Variable mul(const Variable& a, const Variable& b) {
  return op("mul", run2(&k::mul, &k::mul_into, a.value(), b.value()), {a, b},
            [](const Variable& g, const Variable& self) {
              std::vector<Variable> grads(2);
              if (needs(self, 0))
                grads[0] = sum_to(mul(g, parent(self, 1)),
                                  parent(self, 0).shape());
              if (needs(self, 1))
                grads[1] = sum_to(mul(g, parent(self, 0)),
                                  parent(self, 1).shape());
              return grads;
            });
}

Variable div(const Variable& a, const Variable& b) {
  return op("div", run2(&k::div, &k::div_into, a.value(), b.value()), {a, b},
            [](const Variable& g, const Variable& self) {
              const Variable& a_ = parent(self, 0);
              const Variable& b_ = parent(self, 1);
              std::vector<Variable> grads(2);
              if (needs(self, 0)) grads[0] = sum_to(div(g, b_), a_.shape());
              if (needs(self, 1)) {
                grads[1] =
                    neg(sum_to(mul(g, div(a_, square(b_))), b_.shape()));
              }
              return grads;
            });
}

// ---- unary ------------------------------------------------------------------

Variable neg(const Variable& a) {
  return op("neg", run1(&k::neg, &k::neg_into, a.value()), {a},
            [](const Variable& g, const Variable&) {
              return std::vector<Variable>{neg(g)};
            });
}

Variable scale(const Variable& a, double s) {
  return op("scale", run1s(&k::scale, &k::scale_into, a.value(), s), {a},
            [s](const Variable& g, const Variable&) {
              return std::vector<Variable>{scale(g, s)};
            });
}

Variable add_scalar(const Variable& a, double s) {
  return op("add_scalar",
            run1s(&k::add_scalar, &k::add_scalar_into, a.value(), s), {a},
            [](const Variable& g, const Variable&) {
              return std::vector<Variable>{g};
            });
}

Variable exp(const Variable& a) {
  return op("exp", run1(&k::exp, &k::exp_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{mul(g, self)};
            });
}

Variable log(const Variable& a) {
  return op("log", run1(&k::log, &k::log_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{div(g, parent(self, 0))};
            });
}

Variable tanh(const Variable& a) {
  return op("tanh", run1(&k::tanh, &k::tanh_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              // d tanh = 1 - tanh^2; reuse the forward value through `self`
              // so the second derivative flows through tanh's own graph.
              return std::vector<Variable>{
                  mul(g, add_scalar(neg(square(self)), 1.0))};
            });
}

Variable sin(const Variable& a) {
  return op("sin", run1(&k::sin, &k::sin_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{mul(g, cos(parent(self, 0)))};
            });
}

Variable cos(const Variable& a) {
  return op("cos", run1(&k::cos, &k::cos_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{neg(mul(g, sin(parent(self, 0))))};
            });
}

Variable sqrt(const Variable& a) {
  return op("sqrt", run1(&k::sqrt, &k::sqrt_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{scale(div(g, self), 0.5)};
            });
}

Variable reciprocal(const Variable& a) {
  return op("reciprocal", run1(&k::reciprocal, &k::reciprocal_into, a.value()),
            {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{neg(mul(g, square(self)))};
            });
}

Variable square(const Variable& a) {
  return op("square", run1(&k::square, &k::square_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  scale(mul(g, parent(self, 0)), 2.0)};
            });
}

Variable sigmoid(const Variable& a) {
  return op("sigmoid", run1(&k::sigmoid, &k::sigmoid_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  mul(g, mul(self, add_scalar(neg(self), 1.0)))};
            });
}

Variable softplus(const Variable& a) {
  return op("softplus", run1(&k::softplus, &k::softplus_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{mul(g, sigmoid(parent(self, 0)))};
            });
}

Variable pow_scalar(const Variable& a, double p) {
  return op("pow_scalar",
            run1s(&k::pow_scalar, &k::pow_scalar_into, a.value(), p), {a},
            [p](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  scale(mul(g, pow_scalar(parent(self, 0), p - 1.0)), p)};
            });
}

Variable relu(const Variable& a) {
  return op("relu", run1(&k::relu, &k::relu_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              // Step factor is locally constant: correct a.e., and its
              // second derivative is identically zero.
              const Variable mask = Variable::constant(
                  run1(&k::step, &k::step_into, parent(self, 0).value()));
              return std::vector<Variable>{mul(g, mask)};
            });
}

Variable abs(const Variable& a) {
  return op("abs", run1(&k::abs, &k::abs_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              const Variable sgn = Variable::constant(
                  run1(&k::sign, &k::sign_into, parent(self, 0).value()));
              return std::vector<Variable>{mul(g, sgn)};
            });
}

// ---- linear algebra ---------------------------------------------------------

Variable matmul(const Variable& a, const Variable& b) {
  return op("matmul", run2(&k::matmul, &k::matmul_into, a.value(), b.value()),
            {a, b},
            [](const Variable& g, const Variable& self) {
              std::vector<Variable> grads(2);
              if (needs(self, 0))
                grads[0] = matmul(g, transpose(parent(self, 1)));
              if (needs(self, 1))
                grads[1] = matmul(transpose(parent(self, 0)), g);
              return grads;
            });
}

Variable transpose(const Variable& a) {
  return op("transpose", run1(&k::transpose, &k::transpose_into, a.value()),
            {a},
            [](const Variable& g, const Variable&) {
              return std::vector<Variable>{transpose(g)};
            });
}

// ---- reductions -------------------------------------------------------------

Variable sum_all(const Variable& a) {
  return op("sum_all", run1(&k::sum_all, &k::sum_all_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  broadcast_to(g, parent(self, 0).shape())};
            });
}

Variable mean_all(const Variable& a) {
  const double inv_n = 1.0 / static_cast<double>(a.numel());
  return scale(sum_all(a), inv_n);
}

Variable sum_to(const Variable& a, const Shape& target) {
  if (a.shape() == target) return a;
  Tensor value = k::sum_to(a.value(), target);
  plan::record_unary(value, &k::sum_to_into, a.value());
  return op("sum_to", std::move(value), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  broadcast_to(g, parent(self, 0).shape())};
            });
}

Variable broadcast_to(const Variable& a, const Shape& target) {
  if (a.shape() == target) return a;
  Tensor value = k::broadcast_to(a.value(), target);
  plan::record_unary(value, &k::broadcast_to_into, a.value());
  return op("broadcast_to", std::move(value), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  sum_to(g, parent(self, 0).shape())};
            });
}

// ---- fused ------------------------------------------------------------------

Variable bias_tanh(const Variable& a, const Variable& bias) {
  return op("bias_tanh",
            run2(&k::bias_tanh, &k::bias_tanh_into, a.value(), bias.value()),
            {a, bias},
            [](const Variable& g, const Variable& self) {
              // d tanh(x + b) = 1 - tanh^2(x + b); reuse the forward value
              // through `self` like tanh does.
              const Variable dx =
                  mul(g, add_scalar(neg(square(self)), 1.0));
              std::vector<Variable> grads(2);
              if (needs(self, 0)) grads[0] = dx;
              if (needs(self, 1))
                grads[1] = sum_to(dx, parent(self, 1).shape());
              return grads;
            });
}

Variable bias_sin(const Variable& a, const Variable& bias) {
  return op("bias_sin",
            run2(&k::bias_sin, &k::bias_sin_into, a.value(), bias.value()),
            {a, bias},
            [](const Variable& g, const Variable& self) {
              const Variable dx =
                  mul(g, cos(add(parent(self, 0), parent(self, 1))));
              std::vector<Variable> grads(2);
              if (needs(self, 0)) grads[0] = dx;
              if (needs(self, 1))
                grads[1] = sum_to(dx, parent(self, 1).shape());
              return grads;
            });
}

Variable square_sum(const Variable& a) {
  return op("square_sum",
            run1(&k::square_sum_all, &k::square_sum_all_into, a.value()), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  scale(mul(g, parent(self, 0)), 2.0)};
            });
}

Variable weighted_square_sum(const Variable& w, const Variable& a) {
  return op("weighted_square_sum",
            run2(&k::weighted_square_sum_all, &k::weighted_square_sum_all_into,
                 w.value(), a.value()),
            {w, a},
            [](const Variable& g, const Variable& self) {
              const Variable& w_ = parent(self, 0);
              const Variable& a_ = parent(self, 1);
              std::vector<Variable> grads(2);
              if (needs(self, 0))
                grads[0] = mul(g, sum_to(square(a_), w_.shape()));
              if (needs(self, 1))
                grads[1] = scale(mul(g, mul(w_, a_)), 2.0);
              return grads;
            });
}

// ---- structural -------------------------------------------------------------

Variable reshape(const Variable& a, const Shape& shape) {
  // Shares the parent's storage — nothing to record for replay.
  if (a.shape() == shape) return a;
  return op("reshape", a.value().reshape(shape), {a},
            [](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  reshape(g, parent(self, 0).shape())};
            });
}

namespace {
// Embeds `g` into a zero matrix at column offset c0 (out carries the target
// column count); full overwrite, so safe as a replay thunk.
void pad_cols_tensor_into(Tensor& out, const Tensor& g, std::int64_t c0) {
  std::fill(out.data(), out.data() + out.numel(), 0.0);
  const std::int64_t w = g.cols(), cols = out.cols();
  double* po = out.data();
  const double* pg = g.data();
  for (std::int64_t r = 0; r < g.rows(); ++r) {
    std::copy(pg + r * w, pg + (r + 1) * w, po + r * cols + c0);
  }
}

Tensor pad_cols_tensor(const Tensor& g, std::int64_t c0, std::int64_t cols) {
  Tensor out = Tensor::uninitialized(Shape{g.rows(), cols});
  pad_cols_tensor_into(out, g, c0);
  plan::record_opaque(out, {g}, [o = out, g, c0]() mutable {
    pad_cols_tensor_into(o, g, c0);
  });
  return out;
}

Variable pad_cols(const Variable& g, std::int64_t c0, std::int64_t cols);

void pad_rows_tensor_into(Tensor& out, const Tensor& g, std::int64_t r0) {
  std::fill(out.data(), out.data() + out.numel(), 0.0);
  std::copy(g.data(), g.data() + g.numel(), out.data() + r0 * g.cols());
}

Tensor pad_rows_tensor(const Tensor& g, std::int64_t r0, std::int64_t rows) {
  Tensor out = Tensor::uninitialized(Shape{rows, g.cols()});
  pad_rows_tensor_into(out, g, r0);
  plan::record_opaque(out, {g}, [o = out, g, r0]() mutable {
    pad_rows_tensor_into(o, g, r0);
  });
  return out;
}

Variable pad_rows(const Variable& g, std::int64_t r0, std::int64_t rows);
}  // namespace

Variable slice_cols(const Variable& a, std::int64_t c0, std::int64_t c1) {
  Tensor value = k::slice_cols(a.value(), c0, c1);
  plan::record_opaque(value, {a.value()},
                      [o = value, src = a.value(), c0, c1]() mutable {
                        k::slice_cols_into(o, src, c0, c1);
                      });
  return op("slice_cols", std::move(value), {a},
            [c0](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  pad_cols(g, c0, parent(self, 0).value().cols())};
            });
}

namespace {
Variable pad_cols(const Variable& g, std::int64_t c0, std::int64_t cols) {
  return op("pad_cols", pad_cols_tensor(g.value(), c0, cols), {g},
            [c0](const Variable& gg, const Variable& self) {
              const std::int64_t w = parent(self, 0).value().cols();
              return std::vector<Variable>{slice_cols(gg, c0, c0 + w)};
            });
}

Variable pad_rows(const Variable& g, std::int64_t r0, std::int64_t rows) {
  return op("pad_rows", pad_rows_tensor(g.value(), r0, rows), {g},
            [r0](const Variable& gg, const Variable& self) {
              const std::int64_t h = parent(self, 0).value().rows();
              return std::vector<Variable>{slice_rows(gg, r0, r0 + h)};
            });
}
}  // namespace

Variable concat_cols(const std::vector<Variable>& parts) {
  QPINN_CHECK(!parts.empty(), "concat_cols needs at least one Variable");
  if (parts.size() == 1) return parts.front();
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  Tensor value = k::concat_cols(values);
  plan::record_opaque(value, values, [o = value, values]() mutable {
    k::concat_cols_into(o, values);
  });
  return op("concat_cols", std::move(value), parts,
            [](const Variable& g, const Variable& self) {
              std::vector<Variable> grads;
              grads.reserve(self.node()->parents.size());
              std::int64_t offset = 0;
              for (const Variable& p : self.node()->parents) {
                const std::int64_t w = p.value().cols();
                grads.push_back(
                    p.requires_grad()
                        ? slice_cols(g, offset, offset + w)
                        : Variable());
                offset += w;
              }
              return grads;
            });
}

Variable slice_rows(const Variable& a, std::int64_t r0, std::int64_t r1) {
  Tensor value = k::slice_rows(a.value(), r0, r1);
  plan::record_opaque(value, {a.value()},
                      [o = value, src = a.value(), r0, r1]() mutable {
                        k::slice_rows_into(o, src, r0, r1);
                      });
  return op("slice_rows", std::move(value), {a},
            [r0](const Variable& g, const Variable& self) {
              return std::vector<Variable>{
                  pad_rows(g, r0, parent(self, 0).value().rows())};
            });
}

Variable concat_rows(const std::vector<Variable>& parts) {
  QPINN_CHECK(!parts.empty(), "concat_rows needs at least one Variable");
  if (parts.size() == 1) return parts.front();
  std::vector<Tensor> values;
  values.reserve(parts.size());
  for (const Variable& p : parts) values.push_back(p.value());
  Tensor value = k::concat_rows(values);
  plan::record_opaque(value, values, [o = value, values]() mutable {
    k::concat_rows_into(o, values);
  });
  return op("concat_rows", std::move(value), parts,
            [](const Variable& g, const Variable& self) {
              std::vector<Variable> grads;
              grads.reserve(self.node()->parents.size());
              std::int64_t offset = 0;
              for (const Variable& p : self.node()->parents) {
                const std::int64_t h = p.value().rows();
                grads.push_back(
                    p.requires_grad()
                        ? slice_rows(g, offset, offset + h)
                        : Variable());
                offset += h;
              }
              return grads;
            });
}

// ---- composite --------------------------------------------------------------

Variable mse(const Variable& a) {
  // Fused sum-of-squares reduction; same math as mean_all(square(a)) with
  // one pass and no squared intermediate.
  return scale(square_sum(a), 1.0 / static_cast<double>(a.numel()));
}

Variable column(const Variable& a, std::int64_t c) {
  return slice_cols(a, c, c + 1);
}

}  // namespace qpinn::autodiff

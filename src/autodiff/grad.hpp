// Reverse-mode gradient computation (functional API, like torch.autograd.grad).
#pragma once

#include <vector>

#include "autodiff/variable.hpp"

namespace qpinn::autodiff {

struct GradOptions {
  /// When true, the returned gradients carry their own graphs and can be
  /// differentiated again (needed for u_xx inside PINN losses and for the
  /// parameter gradient of residual-based losses).
  bool create_graph = false;
  /// When false, an input unreachable from the output raises ValueError;
  /// when true, its gradient is a zero tensor of matching shape.
  bool allow_unused = true;
  /// When false (and create_graph is false), the backward pass releases
  /// the interior nodes it consumed: checked builds (QPINN_CHECKED) then
  /// flag a second backward through the same graph — or new ops built on
  /// released nodes — as tape-discipline violations (InvariantError).
  /// Defaults to true, under which graphs stay reusable.
  bool retain_graph = true;
};

/// Gradients of `output` with respect to each of `inputs`.
///
/// `grad_output` seeds the backward pass; when undefined it defaults to
/// ones_like(output) (so for scalar outputs it is the plain gradient).
/// Throws ValueError if `output` does not require grad.
std::vector<Variable> grad(const Variable& output,
                           const std::vector<Variable>& inputs,
                           const Variable& grad_output = {},
                           const GradOptions& options = {});

/// Convenience single-input overload.
Variable grad_single(const Variable& output, const Variable& input,
                     const Variable& grad_output = {},
                     const GradOptions& options = {});

/// Constant tensor of ones with `v`'s shape.
Variable ones_like(const Variable& v);
/// Constant tensor of zeros with `v`'s shape.
Variable zeros_like(const Variable& v);

}  // namespace qpinn::autodiff

#include "autodiff/precision.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "tensor/kernels.hpp"
#include "tensor/kernels_f32.hpp"
#include "tensor/storage_pool.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace qpinn::autodiff {

namespace {

namespace k = qpinn::kernels;
namespace f32 = qpinn::kernels_f32;
using plan::Thunk;
using plan::ThunkKind;

Precision parse_precision_env() {
  const std::string v = env_string("QPINN_PRECISION");
  if (v.empty() || v == "fp64") return Precision::kFp64;
  if (v == "mixed") return Precision::kMixed;
  throw ConfigError("unknown QPINN_PRECISION value '" + v +
                    "' (expected fp64|mixed)");
}

std::atomic<int> g_override{-1};

}  // namespace

Precision precision_mode() {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o >= 0) return static_cast<Precision>(o);
  static const Precision from_env = parse_precision_env();
  return from_env;
}

void set_precision_mode(Precision p) {
  g_override.store(static_cast<int>(p), std::memory_order_relaxed);
}

const char* precision_name(Precision p) {
  return p == Precision::kMixed ? "mixed" : "fp64";
}

namespace {

/// fp32 mirror of one pinned fp64 arena buffer. The pooled storage is
/// kept alive by an ownership anchor attached to the rewritten plan (see
/// Demoter::run); `p` is the stable raw base the closures compute with.
struct Shadow {
  std::shared_ptr<std::vector<float>> buf;
  float* p = nullptr;
};

/// Where the current value of one arena buffer lives during replay.
/// Walk order equals replay order, so tracking this during the single
/// forward walk is exact even when the rebind pass mapped several
/// logical tensors onto one slot: every reuse begins with a full
/// overwrite, which resets both flags below.
struct Residency {
  bool v64 = true;   ///< fp64 buffer holds the current value
  bool v32 = false;  ///< fp32 shadow holds the current value
  Shadow shadow;     ///< allocated lazily on first fp32 use
};

/// True for the rank-2 row-broadcast operand layout bin_row handles
/// (full-shape `a`, row-vector `b`), mirroring the fast-path test in
/// kernels.cpp binary_apply_into.
bool is_row_broadcast(const Tensor& a, const Tensor& b, const Tensor& o) {
  if (o.rank() != 2 || !a.same_shape(o) || o.cols() < 2) return false;
  return (b.rank() == 1 && b.numel() == o.cols()) ||
         (b.rank() == 2 && b.rows() == 1 && b.cols() == o.cols());
}

/// True for the rank-2 row-collapse sum_to fast path ({n,m} -> {m} or
/// {1,m}).
bool is_row_collapse(const Tensor& a, const Tensor& o) {
  if (a.rank() != 2) return false;
  return (o.rank() == 1 && o.numel() == a.cols()) ||
         (o.rank() == 2 && o.rows() == 1 && o.cols() == a.cols());
}

/// The demotion walk over one plan's thunk array. Emitted closures
/// capture only raw pointers and immediates: the fp64 buffers stay
/// pinned by each thunk's out/ins tensors, and the fp32 shadows by the
/// ownership anchor installed at the end of run().
class Demoter {
 public:
  explicit Demoter(std::vector<Thunk> thunks) : in_(std::move(thunks)) {
    stats_.thunks_before = in_.size();
    // Arena reuse can bind logical tensors of different sizes to one
    // buffer; the shadow must cover the largest of them.
    for (const Thunk& t : in_) {
      note_extent(t.out);
      for (const Tensor& x : t.ins) note_extent(x);
    }
  }

  std::vector<Thunk> run(const std::vector<Tensor>& outputs) {
    for (Thunk& t : in_) visit(t);
    for (const Tensor& o : outputs) {
      auto it = res_.find(o.data());
      if (it != res_.end() && !it->second.v64) upcast(o, it->second);
    }
    anchor_shadows();
    return std::move(out_);
  }

  const DemoteStats& stats() const { return stats_; }

 private:
  void note_extent(const Tensor& t) {
    if (t.numel() <= 0) return;
    std::size_t& m = extent_[t.data()];
    m = std::max(m, static_cast<std::size_t>(t.numel()));
  }

  Residency& residency(const Tensor& t) { return res_[t.data()]; }

  /// The shadow for `t`'s buffer, allocating (uninitialized) on first use.
  Shadow& shadow(const Tensor& t) {
    Residency& r = residency(t);
    if (r.shadow.p == nullptr) {
      const std::size_t n = extent_[t.data()];
      r.shadow.buf = StoragePool::instance().acquire_f32(n, /*zero=*/false);
      r.shadow.p = r.shadow.buf->data();
      ++stats_.shadow_buffers;
      stats_.shadow_bytes += n * sizeof(float);
    }
    return r.shadow;
  }

  void emit(const Tensor& out, std::vector<Tensor> ins,
            std::function<void()> run) {
    Thunk t;
    t.kind = ThunkKind::kOpaque;
    t.out = out;
    t.ins = std::move(ins);
    t.run = std::move(run);
    out_.push_back(std::move(t));
    last_emitted_ = out_.size() - 1;
  }

  /// Rewrites the last emitted closure to co-own every shadow buffer, so
  /// the shadows live exactly as long as the rewritten thunk array.
  void anchor_shadows() {
    if (stats_.shadow_buffers == 0) return;
    std::vector<std::shared_ptr<std::vector<float>>> owned;
    owned.reserve(stats_.shadow_buffers);
    for (const auto& [ptr, r] : res_) {
      if (r.shadow.buf) owned.push_back(r.shadow.buf);
    }
    Thunk& t = out_[last_emitted_];
    t.run = [owned = std::move(owned), fn = std::move(t.run)] {
      (void)owned;
      fn();
    };
  }

  void downcast(const Tensor& t, Residency& r) {
    float* dst = shadow(t).p;
    const double* src = t.data();
    const auto n = static_cast<std::size_t>(t.numel());
    emit(t, {t}, [dst, src, n] { f32::downcast(dst, src, n); });
    r.v32 = true;
    ++stats_.downcasts;
  }

  void upcast(const Tensor& t, Residency& r) {
    const float* src = shadow(t).p;
    double* dst = const_cast<Tensor&>(t).data();
    const auto n = static_cast<std::size_t>(t.numel());
    emit(t, {t}, [dst, src, n] { f32::upcast(dst, src, n); });
    r.v64 = true;
    ++stats_.upcasts;
  }

  /// fp32 base for reading `t`; inserts a downcast when the shadow is
  /// stale. This is the downcast-on-publish point: a parameter the fp64
  /// optimizer rewrites between replays is v64-resident forever (nothing
  /// in the plan writes it), so its downcast thunk re-runs every replay.
  const float* read_f32(const Tensor& t) {
    Residency& r = residency(t);
    Shadow& s = shadow(t);
    if (!r.v32) downcast(t, r);
    return s.p;
  }

  /// fp64 base for reading `t`; inserts an upcast when the fp64 buffer
  /// is stale.
  const double* read_f64(const Tensor& t) {
    Residency& r = residency(t);
    if (!r.v64) upcast(t, r);
    return t.data();
  }

  /// fp32 base for fully overwriting `t` (no conversion inserted).
  float* write_f32(const Tensor& t) { return shadow(t).p; }

  void wrote_f32(const Tensor& t) {
    Residency& r = residency(t);
    r.v64 = false;
    r.v32 = true;
    ++stats_.demoted;
  }

  void wrote_f64_reduction(const Tensor& t) {
    Residency& r = residency(t);
    r.v64 = true;
    r.v32 = false;
    ++stats_.demoted;
  }

  /// Leaves the thunk on its fp64 kernel: restore fp64 residency of
  /// every operand, then forward the original thunk untouched.
  void keep(Thunk& t) {
    for (const Tensor& x : t.ins) read_f64(x);
    if (t.reads_out()) read_f64(t.out);
    Residency& r = residency(t.out);
    r.v64 = true;
    r.v32 = false;
    ++stats_.kept_fp64;
    out_.push_back(std::move(t));
  }

  void visit(Thunk& t) {
    switch (t.kind) {
      case ThunkKind::kUnary:
        if (!try_unary(t)) keep(t);
        break;
      case ThunkKind::kUnaryScalar:
        if (!try_unary_scalar(t)) keep(t);
        break;
      case ThunkKind::kBinary:
        if (!try_binary(t)) keep(t);
        break;
      case ThunkKind::kAxpyAcc: {
        // out += s * src, reading the shadow's prior contents.
        float* op = const_cast<float*>(read_f32(t.out));
        const float* sp = read_f32(t.ins[0]);
        const auto n = static_cast<std::size_t>(t.out.numel());
        const double s = t.scalar;
        emit(t.out, t.ins, [op, s, sp, n] { f32::axpy(op, s, sp, n); });
        wrote_f32(t.out);
        break;
      }
      case ThunkKind::kCopyAxpy: {
        const float* fp = read_f32(t.ins[0]);
        const float* sp = read_f32(t.ins[1]);
        float* op = write_f32(t.out);
        const auto n = static_cast<std::size_t>(t.out.numel());
        const double s = t.scalar;
        emit(t.out, t.ins, [op, fp, s, sp, n] {
          f32::copy(op, fp, n);
          f32::axpy(op, s, sp, n);
        });
        wrote_f32(t.out);
        break;
      }
      case ThunkKind::kZero: {
        float* op = write_f32(t.out);
        const auto n = static_cast<std::size_t>(t.out.numel());
        emit(t.out, {}, [op, n] { f32::fill_zero(op, n); });
        wrote_f32(t.out);
        break;
      }
      case ThunkKind::kOpaque:
        keep(t);
        break;
    }
  }

  bool try_unary(Thunk& t) {
    const Tensor& a = t.ins[0];
    const Tensor& o = t.out;
    const auto n = static_cast<std::size_t>(a.numel());

    void (*fn)(const float*, float*, std::size_t) = nullptr;
    if (t.k1 == &k::neg_into) fn = &f32::neg;
    else if (t.k1 == &k::tanh_into) fn = &f32::tanh;
    else if (t.k1 == &k::square_into) fn = &f32::square;
    else if (t.k1 == &k::sqrt_into) fn = &f32::sqrt;
    else if (t.k1 == &k::reciprocal_into) fn = &f32::reciprocal;
    else if (t.k1 == &k::relu_into) fn = &f32::relu;
    else if (t.k1 == &k::abs_into) fn = &f32::abs;
    else if (t.k1 == &k::step_into) fn = &f32::step;
    else if (t.k1 == &k::sign_into) fn = &f32::sign;
    else if (t.k1 == &k::exp_into) fn = &f32::exp;
    else if (t.k1 == &k::log_into) fn = &f32::log;
    else if (t.k1 == &k::sin_into) fn = &f32::sin;
    else if (t.k1 == &k::cos_into) fn = &f32::cos;
    else if (t.k1 == &k::sigmoid_into) fn = &f32::sigmoid;
    else if (t.k1 == &k::softplus_into) fn = &f32::softplus;
    if (fn != nullptr) {
      const float* ap = read_f32(a);
      float* op = write_f32(o);
      emit(o, t.ins, [fn, ap, op, n] { fn(ap, op, n); });
      wrote_f32(o);
      return true;
    }

    if (t.k1 == &k::transpose_into) {
      const float* ap = read_f32(a);
      float* op = write_f32(o);
      const std::int64_t rows = a.rows(), cols = a.cols();
      emit(o, t.ins,
           [ap, op, rows, cols] { f32::transpose(ap, op, rows, cols); });
      wrote_f32(o);
      return true;
    }

    if (t.k1 == &k::sum_to_into || t.k1 == &k::broadcast_to_into) {
      if (a.same_shape(o)) {
        const float* ap = read_f32(a);
        float* op = write_f32(o);
        emit(o, t.ins, [ap, op, n] { f32::copy(op, ap, n); });
        wrote_f32(o);
        return true;
      }
      if (t.k1 == &k::sum_to_into && is_row_collapse(a, o)) {
        const float* ap = read_f32(a);
        float* op = write_f32(o);
        const auto rows = static_cast<std::size_t>(a.rows());
        const auto cols = static_cast<std::size_t>(a.cols());
        emit(o, t.ins,
             [ap, op, rows, cols] { f32::sum_to_rows(ap, op, rows, cols); });
        wrote_f32(o);
        return true;
      }
      if (t.k1 == &k::broadcast_to_into && a.numel() == 1) {
        // The broadcast value is read from the fp64 buffer at replay
        // time (scalars stay fp64-resident across demotion).
        const double* av = read_f64(a);
        float* op = write_f32(o);
        const auto on = static_cast<std::size_t>(o.numel());
        emit(o, t.ins, [av, op, on] { f32::fill_value(op, av[0], on); });
        wrote_f32(o);
        return true;
      }
      return false;
    }

    if (t.k1 == &k::sum_all_into || t.k1 == &k::square_sum_all_into) {
      const bool square = t.k1 == &k::square_sum_all_into;
      const float* ap = read_f32(a);
      double* po = const_cast<Tensor&>(o).data();
      emit(o, t.ins, [square, ap, po, n] {
        po[0] = square ? f32::square_sum(ap, n) : f32::sum(ap, n);
      });
      wrote_f64_reduction(o);
      return true;
    }

    return false;
  }

  bool try_unary_scalar(Thunk& t) {
    const Tensor& a = t.ins[0];
    const Tensor& o = t.out;
    const auto n = static_cast<std::size_t>(a.numel());
    const double s = t.scalar;

    void (*fn)(const float*, double, float*, std::size_t) = nullptr;
    if (t.k1s == &k::scale_into) fn = &f32::scale;
    else if (t.k1s == &k::add_scalar_into) fn = &f32::add_scalar;
    else if (t.k1s == &k::pow_scalar_into) fn = &f32::pow_scalar;
    if (fn == nullptr) return false;

    const float* ap = read_f32(a);
    float* op = write_f32(o);
    emit(o, t.ins, [fn, ap, s, op, n] { fn(ap, s, op, n); });
    wrote_f32(o);
    return true;
  }

  bool try_binary(Thunk& t) {
    const Tensor& a = t.ins[0];
    const Tensor& b = t.ins[1];
    const Tensor& o = t.out;

    if (t.k2 == &k::matmul_into) {
      const float* ap = read_f32(a);
      const float* bp = read_f32(b);
      float* op = write_f32(o);
      const std::int64_t rows = a.rows(), kk = a.cols(), m = b.cols();
      emit(o, t.ins, [ap, bp, op, rows, kk, m] {
        f32::matmul(ap, bp, op, rows, kk, m);
      });
      wrote_f32(o);
      return true;
    }

    if (t.k2 == &k::bias_tanh_into || t.k2 == &k::bias_sin_into) {
      if (a.rank() != 2 || b.numel() != a.cols()) return false;
      const bool is_tanh = t.k2 == &k::bias_tanh_into;
      const float* ap = read_f32(a);
      const float* bp = read_f32(b);
      float* op = write_f32(o);
      const auto rows = static_cast<std::size_t>(a.rows());
      const auto cols = static_cast<std::size_t>(a.cols());
      emit(o, t.ins, [is_tanh, ap, bp, op, rows, cols] {
        if (is_tanh) {
          f32::bias_tanh(ap, bp, op, rows, cols);
        } else {
          f32::bias_sin(ap, bp, op, rows, cols);
        }
      });
      wrote_f32(o);
      return true;
    }

    if (t.k2 == &k::tanh_grad_into) {
      const float* gp = read_f32(a);
      const float* tp = read_f32(b);
      float* op = write_f32(o);
      const auto n = static_cast<std::size_t>(o.numel());
      emit(o, t.ins, [gp, tp, op, n] { f32::tanh_grad(gp, tp, op, n); });
      wrote_f32(o);
      return true;
    }

    if (t.k2 == &k::weighted_square_sum_all_into) {
      // ins are (weights, residual); weights are either same-shape or a
      // per-row column vector against a rank-2 residual.
      const bool roww = !a.same_shape(b);
      if (roww &&
          !(b.rank() == 2 && ((a.rank() == 1 && a.numel() == b.rows()) ||
                              (a.rank() == 2 && a.rows() == b.rows() &&
                               a.cols() == 1)))) {
        return false;
      }
      const float* wp = read_f32(a);
      const float* ap = read_f32(b);
      double* po = const_cast<Tensor&>(o).data();
      const auto n = static_cast<std::size_t>(b.numel());
      const auto rows = static_cast<std::size_t>(roww ? b.rows() : 0);
      const auto cols = static_cast<std::size_t>(roww ? b.cols() : 0);
      emit(o, t.ins, [roww, wp, ap, po, n, rows, cols] {
        po[0] = roww ? f32::weighted_square_sum_rows(wp, ap, rows, cols)
                     : f32::weighted_square_sum(wp, ap, n);
      });
      wrote_f64_reduction(o);
      return true;
    }

    simd::BinOp bop;
    if (t.k2 == &k::add_into) bop = simd::kAdd;
    else if (t.k2 == &k::sub_into) bop = simd::kSub;
    else if (t.k2 == &k::mul_into) bop = simd::kMul;
    else if (t.k2 == &k::div_into) bop = simd::kDiv;
    else return false;

    if (a.same_shape(b)) {
      const float* ap = read_f32(a);
      const float* bp = read_f32(b);
      float* op = write_f32(o);
      const auto n = static_cast<std::size_t>(o.numel());
      emit(o, t.ins, [bop, ap, bp, op, n] {
        f32::bin_same(bop, ap, bp, op, n);
      });
      wrote_f32(o);
      return true;
    }
    if (b.numel() == 1 && a.same_shape(o)) {
      const float* ap = read_f32(a);
      const double* bv = read_f64(b);
      float* op = write_f32(o);
      const auto n = static_cast<std::size_t>(o.numel());
      emit(o, t.ins, [bop, ap, bv, op, n] {
        f32::bin_scalar_rhs(bop, ap, bv[0], op, n);
      });
      wrote_f32(o);
      return true;
    }
    if (a.numel() == 1 && b.same_shape(o)) {
      const double* av = read_f64(a);
      const float* bp = read_f32(b);
      float* op = write_f32(o);
      const auto n = static_cast<std::size_t>(o.numel());
      emit(o, t.ins, [bop, av, bp, op, n] {
        f32::bin_scalar_lhs(bop, av[0], bp, op, n);
      });
      wrote_f32(o);
      return true;
    }
    if (is_row_broadcast(a, b, o)) {
      const float* ap = read_f32(a);
      const float* bp = read_f32(b);
      float* op = write_f32(o);
      const auto rows = static_cast<std::size_t>(o.rows());
      const auto cols = static_cast<std::size_t>(o.cols());
      emit(o, t.ins, [bop, ap, bp, op, rows, cols] {
        f32::bin_row(bop, ap, bp, op, rows, cols);
      });
      wrote_f32(o);
      return true;
    }
    return false;
  }

  std::vector<Thunk> in_;
  std::vector<Thunk> out_;
  std::size_t last_emitted_ = 0;
  std::unordered_map<const double*, std::size_t> extent_;
  std::unordered_map<const double*, Residency> res_;
  DemoteStats stats_;
};

}  // namespace

DemoteStats demote_plan(plan::ExecutionPlan& plan,
                        const std::vector<Tensor>& outputs) {
  Demoter d(plan.take_thunks());
  plan.set_thunks(d.run(outputs));
  return d.stats();
}

}  // namespace qpinn::autodiff

// Graph capture & replay: a compiled execution plan for the training step.
//
// PINN training re-runs a structurally identical graph every step. The eager
// tape rebuilds that graph from scratch each time — Node allocations,
// shared_ptr refcount traffic, and pool round-trips on every intermediate.
// This module records the step ONCE and replays a flat, topologically-ordered
// array of kernel thunks against buffers pinned at capture time, so
// steady-state replay performs zero Node allocations, zero refcount traffic,
// and zero pool lookups.
//
// Capture model: a thread-local recorder is armed by CaptureScope. While it
// is armed, every tape op (autodiff/ops.cpp) and every gradient-accumulation
// kernel (autodiff/grad.cpp) appends a thunk that re-executes the SAME kernel
// function into the SAME output buffer. The recorded tensors share storage
// with the live graph, which pins those buffers for the plan's lifetime (the
// "arena": buffers are not round-tripped through the pool between replays).
//
// Thunks are structured, not opaque closures: each records its kernel entry
// point (a function pointer for the common unary/scalar/binary shapes), its
// output tensor, and its input tensors. That metadata is what makes the plan
// an analyzable IR — the optimizer passes in autodiff/plan_passes.hpp walk
// the thunk array to eliminate dead thunks, fuse adjacent elementwise
// sequences into the fused kernels, and re-bind non-overlapping buffer
// lifetimes onto shared arena storage. Structural kernels that need extra
// immediates (pad/slice/concat) record an opaque closure but still declare
// their read/write sets so the analyses stay sound.
//
// Bit-identity contract: replay calls the identical kernel entry points with
// the identical operand buffers in the identical order as the eager step that
// was captured, and all kernels are deterministic for a fixed thread count
// and SIMD variant. Replayed losses/gradients are therefore bit-identical to
// eager execution, checkpoints resume exactly across modes, and
// QPINN_GRAPH=off is a pure escape hatch. Anything that breaks the premise —
// batch shape, thread count, ISA, or buffer identity changes — must
// invalidate the plan (the trainer keys plans on exactly those inputs and
// re-captures with a logged fallback). The optimizer passes preserve the
// contract by construction (see plan_passes.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "tensor/tensor.hpp"

namespace qpinn::autodiff::plan {

/// Kernel signatures a structured thunk can carry (the `_into` variants in
/// tensor/kernels.hpp).
using UnaryKernel = void (*)(Tensor&, const Tensor&);
using UnaryScalarKernel = void (*)(Tensor&, const Tensor&, double);
using BinaryKernel = void (*)(Tensor&, const Tensor&, const Tensor&);

/// Discriminates how a Thunk executes and which operand slots it uses.
enum class ThunkKind : std::uint8_t {
  /// `run()` closure; writes only `out`, reads only `ins` (declared so the
  /// optimizer passes can reason about liveness without seeing inside).
  kOpaque,
  /// k1(out, ins[0]) — full overwrite of out.
  kUnary,
  /// k1s(out, ins[0], scalar) — full overwrite of out.
  kUnaryScalar,
  /// k2(out, ins[0], ins[1]) — full overwrite of out.
  kBinary,
  /// axpy_inplace(out, scalar, ins[0]) — reads AND writes out (gradient
  /// accumulation into an owned buffer).
  kAxpyAcc,
  /// copy_into(out, ins[0]); axpy_inplace(out, scalar, ins[1]) — full
  /// overwrite of out (first-collision gradient accumulator materialize).
  kCopyAxpy,
  /// fill_zero(out) — constant-zero gradient buffers callers axpy into.
  kZero,
};

/// One recorded kernel invocation. The operand tensors share storage with
/// the buffers pinned at capture time; re-running the thunk recomputes the
/// same values into the same memory.
struct Thunk {
  ThunkKind kind = ThunkKind::kOpaque;
  UnaryKernel k1 = nullptr;
  UnaryScalarKernel k1s = nullptr;
  BinaryKernel k2 = nullptr;
  std::function<void()> run;  ///< kOpaque only
  Tensor out;
  std::vector<Tensor> ins;
  double scalar = 0.0;

  /// True when this thunk reads `out`'s prior contents (accumulation).
  bool reads_out() const { return kind == ThunkKind::kAxpyAcc; }
};

/// Per-plan optimizer statistics, recorded by plan_passes.hpp when the pass
/// pipeline runs over a finalized capture (all zero for verbatim plans).
struct PassStats {
  std::size_t thunks_before = 0;
  std::size_t thunks_after = 0;
  std::size_t dead_eliminated = 0;  ///< pass 1: dead-thunk elimination
  std::size_t fused = 0;            ///< pass 2: thunks removed by fusion
  std::size_t buffers_rebound = 0;  ///< pass 3: buffers moved onto shared slots
  std::size_t arena_buffers_before = 0;
  std::size_t arena_buffers_after = 0;
  std::size_t arena_bytes_before = 0;
  std::size_t arena_bytes_after = 0;
};

/// An immutable recorded schedule: a flat array of kernel invocations whose
/// operand/output buffers were resolved at capture time. Move-only — the
/// thunks close over pinned storage that must not be double-owned.
class ExecutionPlan {
 public:
  ExecutionPlan() = default;
  ExecutionPlan(const ExecutionPlan&) = delete;
  ExecutionPlan& operator=(const ExecutionPlan&) = delete;
  ExecutionPlan(ExecutionPlan&&) = default;
  ExecutionPlan& operator=(ExecutionPlan&&) = default;

  /// Re-executes every recorded kernel in capture order.
  void replay() const;

  /// Number of recorded kernel invocations.
  std::size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }

  /// Number of distinct output buffers pinned by this plan and their total
  /// payload in bytes (the plan's arena footprint).
  std::size_t arena_buffers() const { return arena_buffers_; }
  std::size_t arena_bytes() const { return arena_bytes_; }

  /// Read-only view of the recorded thunks (the optimizer passes' input).
  const std::vector<Thunk>& thunks() const { return steps_; }

  /// Replaces the thunk array and recomputes the arena index from the new
  /// output set. ONLY the optimizer passes (src/autodiff/plan_passes.cpp)
  /// may call this — plans must otherwise stay verbatim captures, and the
  /// lint rule `plan-thunk-mutation` bans call sites outside src/autodiff/.
  void set_thunks(std::vector<Thunk> thunks);

  /// Moves the thunk array out, leaving the plan empty; pair with
  /// set_thunks. Avoids doubling every tensor's refcount during a pass
  /// (the liveness analysis proves buffer privacy by exact reference
  /// counting). Same restriction as set_thunks.
  std::vector<Thunk> take_thunks();

  /// Optimizer statistics for this plan (zeros unless the pass pipeline
  /// ran; see plan_passes.hpp).
  const PassStats& pass_stats() const { return pass_stats_; }
  void set_pass_stats(const PassStats& s) { pass_stats_ = s; }

  void clear();

 private:
  friend void record_thunk(Thunk thunk);

  // `replay() const` executes kernels that write through the thunks' output
  // tensors; the array itself is logically immutable between set_thunks
  // calls, hence mutable rather than a const_cast at every dispatch.
  mutable std::vector<Thunk> steps_;
  std::unordered_set<const void*> seen_buffers_;
  std::size_t arena_buffers_ = 0;
  std::size_t arena_bytes_ = 0;
  PassStats pass_stats_;
};

/// What a CaptureScope is allowed to record. kTraining captures the full
/// step (forward kernels plus gradient accumulation); kForwardOnly is the
/// serving mode — the plan must contain pure value-producing kernels, so a
/// gradient-accumulation thunk reaching the recorder is a ValueError (it
/// means a tape was built inside what should be inference).
enum class CaptureKind { kTraining, kForwardOnly };

/// Arms the thread-local recorder for the enclosed eager step. Non-reentrant
/// nesting is allowed (the previous recorder is restored on destruction);
/// capture is per-thread, so data-parallel shards record concurrently into
/// their own plans.
class CaptureScope {
 public:
  explicit CaptureScope(ExecutionPlan& plan,
                        CaptureKind kind = CaptureKind::kTraining);
  CaptureScope(const CaptureScope&) = delete;
  CaptureScope& operator=(const CaptureScope&) = delete;
  ~CaptureScope();

 private:
  ExecutionPlan* prev_ = nullptr;
  CaptureKind prev_kind_ = CaptureKind::kTraining;
};

/// True while a CaptureScope is armed on this thread.
bool capturing();

/// True while the armed CaptureScope (if any) is forward-only.
bool capturing_forward_only();

// Recording API — each appends one thunk to the armed plan (no-op unless
// capturing). The structured variants carry the kernel pointer and operands
// so the optimizer passes can inspect them.
void record_unary(const Tensor& out, UnaryKernel k, const Tensor& a);
void record_unary_scalar(const Tensor& out, UnaryScalarKernel k,
                         const Tensor& a, double s);
void record_binary(const Tensor& out, BinaryKernel k, const Tensor& a,
                   const Tensor& b);
/// Gradient accumulation `dst += s * src` into an already-recorded buffer.
/// Throws ValueError under a forward-only capture (see CaptureKind).
void record_axpy_acc(const Tensor& dst, double s, const Tensor& src);
/// First-collision accumulator materialize: `dst = first; dst += s * src`.
/// Throws ValueError under a forward-only capture.
void record_copy_axpy(const Tensor& dst, const Tensor& first, double s,
                      const Tensor& src);
/// Constant-zero gradient buffer restored on every replay.
void record_zero(const Tensor& out);
/// Structural kernels with extra immediates (pad/slice/concat): `run` must
/// write only `out` and read only `ins` — both are declared here so the
/// optimizer passes can treat the closure as a black box with a known
/// read/write set (buffers touched by opaque thunks are never re-bound).
void record_opaque(const Tensor& out, std::vector<Tensor> ins,
                   std::function<void()> run);

/// Process-wide capture/replay counters (monotonic until reset), reported
/// alongside the storage-pool counters. The optimizer-pass counters
/// aggregate the per-plan PassStats of every optimized plan.
struct PlanStats {
  std::uint64_t plans_captured = 0;
  std::uint64_t replays = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t plans_optimized = 0;
  std::uint64_t thunks_eliminated = 0;  ///< dead + fused, all plans
  std::uint64_t arena_bytes_saved = 0;
};
PlanStats plan_stats();
void reset_plan_stats();
/// Called by plan owners when an armed plan is discarded for re-capture
/// (shape/thread/ISA change).
void count_fallback();
/// Called by the pass pipeline after optimizing one plan.
void count_optimized(const PassStats& s);

/// Parses QPINN_GRAPH: unset/empty/"on"/"1"/"true"/"yes" -> true (replay is
/// the default), "off"/"0"/"false"/"no" -> false; anything else throws
/// ConfigError.
bool graph_env_enabled();

}  // namespace qpinn::autodiff::plan

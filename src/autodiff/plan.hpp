// Graph capture & replay: a compiled execution plan for the training step.
//
// PINN training re-runs a structurally identical graph every step. The eager
// tape rebuilds that graph from scratch each time — Node allocations,
// shared_ptr refcount traffic, and pool round-trips on every intermediate.
// This module records the step ONCE and replays a flat, topologically-ordered
// array of kernel thunks against buffers pinned at capture time, so
// steady-state replay performs zero Node allocations, zero refcount traffic,
// and zero pool lookups.
//
// Capture model: a thread-local recorder is armed by CaptureScope. While it
// is armed, every tape op (autodiff/ops.cpp) and every gradient-accumulation
// kernel (autodiff/grad.cpp) appends a thunk that re-executes the SAME kernel
// function into the SAME output buffer. The recorded tensors share storage
// with the live graph, which pins those buffers for the plan's lifetime (the
// "arena": buffers are not round-tripped through the pool between replays).
//
// Bit-identity contract: replay calls the identical kernel entry points with
// the identical operand buffers in the identical order as the eager step that
// was captured, and all kernels are deterministic for a fixed thread count
// and SIMD variant. Replayed losses/gradients are therefore bit-identical to
// eager execution, checkpoints resume exactly across modes, and
// QPINN_GRAPH=off is a pure escape hatch. Anything that breaks the premise —
// batch shape, thread count, ISA, or buffer identity changes — must
// invalidate the plan (the trainer keys plans on exactly those inputs and
// re-captures with a logged fallback).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "tensor/tensor.hpp"

namespace qpinn::autodiff::plan {

/// An immutable recorded schedule: a flat array of kernel invocations whose
/// operand/output buffers were resolved at capture time. Move-only — the
/// thunks close over pinned storage that must not be double-owned.
class ExecutionPlan {
 public:
  ExecutionPlan() = default;
  ExecutionPlan(const ExecutionPlan&) = delete;
  ExecutionPlan& operator=(const ExecutionPlan&) = delete;
  ExecutionPlan(ExecutionPlan&&) = default;
  ExecutionPlan& operator=(ExecutionPlan&&) = default;

  /// Re-executes every recorded kernel in capture order.
  void replay() const;

  /// Number of recorded kernel invocations.
  std::size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }

  /// Number of distinct output buffers pinned by this plan and their total
  /// payload in bytes (the plan's arena footprint).
  std::size_t arena_buffers() const { return arena_buffers_; }
  std::size_t arena_bytes() const { return arena_bytes_; }

  void clear();

 private:
  friend void record(const Tensor& out, std::function<void()> step);
  friend void record_inplace(std::function<void()> step);

  std::vector<std::function<void()>> steps_;
  std::unordered_set<const void*> seen_buffers_;
  std::size_t arena_buffers_ = 0;
  std::size_t arena_bytes_ = 0;
};

/// What a CaptureScope is allowed to record. kTraining captures the full
/// step (forward kernels plus gradient accumulation); kForwardOnly is the
/// serving mode — the plan must contain pure value-producing kernels, so a
/// gradient-accumulation thunk reaching the recorder is a ValueError (it
/// means a tape was built inside what should be inference).
enum class CaptureKind { kTraining, kForwardOnly };

/// Arms the thread-local recorder for the enclosed eager step. Non-reentrant
/// nesting is allowed (the previous recorder is restored on destruction);
/// capture is per-thread, so data-parallel shards record concurrently into
/// their own plans.
class CaptureScope {
 public:
  explicit CaptureScope(ExecutionPlan& plan,
                        CaptureKind kind = CaptureKind::kTraining);
  CaptureScope(const CaptureScope&) = delete;
  CaptureScope& operator=(const CaptureScope&) = delete;
  ~CaptureScope();

 private:
  ExecutionPlan* prev_ = nullptr;
  CaptureKind prev_kind_ = CaptureKind::kTraining;
};

/// True while a CaptureScope is armed on this thread.
bool capturing();

/// True while the armed CaptureScope (if any) is forward-only.
bool capturing_forward_only();

/// Appends a thunk producing `out`; `out`'s storage is noted in the arena.
/// No-op unless capturing.
void record(const Tensor& out, std::function<void()> step);

/// Appends a thunk that mutates an already-recorded buffer in place
/// (gradient accumulation). No-op unless capturing; throws ValueError under
/// a forward-only capture (see CaptureKind).
void record_inplace(std::function<void()> step);

/// Process-wide capture/replay counters (monotonic until reset), reported
/// alongside the storage-pool counters.
struct PlanStats {
  std::uint64_t plans_captured = 0;
  std::uint64_t replays = 0;
  std::uint64_t fallbacks = 0;
};
PlanStats plan_stats();
void reset_plan_stats();
/// Called by plan owners when an armed plan is discarded for re-capture
/// (shape/thread/ISA change).
void count_fallback();

/// Parses QPINN_GRAPH: unset/empty/"on"/"1"/"true"/"yes" -> true (replay is
/// the default), "off"/"0"/"false"/"no" -> false; anything else throws
/// ConfigError.
bool graph_env_enabled();

}  // namespace qpinn::autodiff::plan

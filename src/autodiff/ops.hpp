// Differentiable operations on Variables.
//
// Every backward rule is written in terms of these same operations, which
// is what makes second (and higher) derivatives work: grad(create_graph)
// returns Variables whose own graphs can be differentiated again.
#pragma once

#include <vector>

#include "autodiff/variable.hpp"

namespace qpinn::autodiff {

// ---- grad mode -----------------------------------------------------------
/// While a NoGradGuard is alive on this thread, make_op produces constants
/// (no parents, no backward) — used internally by grad() when
/// create_graph=false and available to user code for cheap evaluation.
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();
  NoGradGuard(const NoGradGuard&) = delete;
  NoGradGuard& operator=(const NoGradGuard&) = delete;

 private:
  bool previous_;
};

/// True when gradients are currently being recorded on this thread.
bool grad_mode_enabled();

// ---- elementwise binary (broadcasting) ------------------------------------
Variable add(const Variable& a, const Variable& b);
Variable sub(const Variable& a, const Variable& b);
Variable mul(const Variable& a, const Variable& b);
Variable div(const Variable& a, const Variable& b);

// ---- elementwise unary -----------------------------------------------------
Variable neg(const Variable& a);
Variable scale(const Variable& a, double s);
Variable add_scalar(const Variable& a, double s);
Variable exp(const Variable& a);
Variable log(const Variable& a);
Variable tanh(const Variable& a);
Variable sin(const Variable& a);
Variable cos(const Variable& a);
Variable sqrt(const Variable& a);
Variable reciprocal(const Variable& a);
Variable square(const Variable& a);
Variable sigmoid(const Variable& a);
Variable softplus(const Variable& a);
Variable pow_scalar(const Variable& a, double p);
/// relu / abs have measure-zero kinks; their backward treats the
/// step/sign factor as locally constant (zero second derivative a.e.).
Variable relu(const Variable& a);
Variable abs(const Variable& a);

// ---- linear algebra --------------------------------------------------------
Variable matmul(const Variable& a, const Variable& b);
Variable transpose(const Variable& a);

// ---- reductions / broadcast management --------------------------------------
Variable sum_all(const Variable& a);
Variable mean_all(const Variable& a);
/// Reverse-broadcast reduction to `target` shape.
Variable sum_to(const Variable& a, const Shape& target);
Variable broadcast_to(const Variable& a, const Shape& target);

// ---- fused ops ----------------------------------------------------------------
// Single-sweep versions of common multi-node sequences: one kernel pass and
// one tape node instead of two or three of each (see tensor/simd.hpp).
/// tanh(a + bias); a rank-2, bias a row vector ({M} or {1,M}).
Variable bias_tanh(const Variable& a, const Variable& bias);
/// sin(a + bias); same contract as bias_tanh.
Variable bias_sin(const Variable& a, const Variable& bias);
/// sum(a^2) as a scalar Variable without materializing square(a).
Variable square_sum(const Variable& a);
/// sum(w * a^2); w is same-shape as `a` or a per-row column vector ({N} or
/// {N,1}) against rank-2 `a`. Argument order matches the kernel.
Variable weighted_square_sum(const Variable& w, const Variable& a);

// ---- structural --------------------------------------------------------------
Variable reshape(const Variable& a, const Shape& shape);
Variable slice_cols(const Variable& a, std::int64_t c0, std::int64_t c1);
Variable concat_cols(const std::vector<Variable>& parts);
Variable slice_rows(const Variable& a, std::int64_t r0, std::int64_t r1);
Variable concat_rows(const std::vector<Variable>& parts);

// ---- composite helpers --------------------------------------------------------
/// mean(a^2) — the MSE of a residual against zero.
Variable mse(const Variable& a);
/// Single column c as an (N,1) Variable.
Variable column(const Variable& a, std::int64_t c);

// ---- operator sugar -------------------------------------------------------------
inline Variable operator+(const Variable& a, const Variable& b) { return add(a, b); }
inline Variable operator-(const Variable& a, const Variable& b) { return sub(a, b); }
inline Variable operator*(const Variable& a, const Variable& b) { return mul(a, b); }
inline Variable operator/(const Variable& a, const Variable& b) { return div(a, b); }
inline Variable operator-(const Variable& a) { return neg(a); }
inline Variable operator+(const Variable& a, double s) { return add_scalar(a, s); }
inline Variable operator+(double s, const Variable& a) { return add_scalar(a, s); }
inline Variable operator-(const Variable& a, double s) { return add_scalar(a, -s); }
inline Variable operator-(double s, const Variable& a) { return add_scalar(neg(a), s); }
inline Variable operator*(const Variable& a, double s) { return scale(a, s); }
inline Variable operator*(double s, const Variable& a) { return scale(a, s); }
inline Variable operator/(const Variable& a, double s) { return scale(a, 1.0 / s); }
inline Variable operator/(double s, const Variable& a) { return scale(reciprocal(a), s); }

}  // namespace qpinn::autodiff

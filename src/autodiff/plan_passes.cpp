#include "autodiff/plan_passes.hpp"

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "tensor/kernels.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace qpinn::autodiff::plan {

namespace {

namespace k = qpinn::kernels;

/// Buffer identity: storage start. Tensors never carry an offset, so two
/// tensors alias exactly when their data pointers are equal (reshape shares
/// the pointer; every kernel output is fresh storage).
using BufKey = const void*;

BufKey buf(const Tensor& t) { return t.data(); }

bool is_unary(const Thunk& t, UnaryKernel f) {
  return t.kind == ThunkKind::kUnary && t.k1 == f;
}
bool is_unary_scalar(const Thunk& t, UnaryScalarKernel f) {
  return t.kind == ThunkKind::kUnaryScalar && t.k1s == f;
}
bool is_binary(const Thunk& t, BinaryKernel f) {
  return t.kind == ThunkKind::kBinary && t.k2 == f;
}

// ---- pass 1: dead-thunk elimination ---------------------------------------
//
// One backward scan computes transitive liveness exactly: a thunk is kept
// only if its output is live below it (read by a kept thunk or a declared
// plan output). A dead thunk never marks its inputs live, so whole dead
// chains fall out in the same scan. A full-overwrite write kills liveness
// above it (earlier values of that buffer are unobservable); an
// accumulation (reads_out) keeps it live.

std::size_t eliminate_dead_thunks(std::vector<Thunk>& ts,
                                  const std::unordered_set<BufKey>& outputs) {
  std::unordered_set<BufKey> live = outputs;
  std::vector<char> keep(ts.size(), 0);
  for (std::size_t idx = ts.size(); idx-- > 0;) {
    const Thunk& t = ts[idx];
    const BufKey out = buf(t.out);
    if (live.count(out) == 0) continue;
    keep[idx] = 1;
    if (!t.reads_out()) live.erase(out);
    for (const Tensor& in : t.ins) live.insert(buf(in));
  }
  std::vector<Thunk> kept;
  kept.reserve(ts.size());
  std::size_t removed = 0;
  for (std::size_t idx = 0; idx < ts.size(); ++idx) {
    if (keep[idx] != 0) {
      kept.push_back(std::move(ts[idx]));
    } else {
      ++removed;
    }
  }
  ts = std::move(kept);
  return removed;
}

// ---- pass 2: elementwise fusion -------------------------------------------
//
// Pattern-matches adjacent thunk runs whose intermediates are ephemeral —
// written once, read once (both inside the pattern), not a declared output,
// untouched by opaque closures — and rewrites them onto a fused kernel that
// performs the identical per-element IEEE operation sequence. Only
// bit-exact rewrites are applied: the fused FMA reductions
// (square_sum/weighted_square_sum) accumulate in a different order than
// their compositions and are deliberately NOT substituted (see the
// bit-identity discussion in DESIGN.md).

struct AccessCount {
  std::size_t writes = 0;
  std::size_t reads = 0;
  bool opaque = false;
};

std::unordered_map<BufKey, AccessCount> count_accesses(
    const std::vector<Thunk>& ts) {
  std::unordered_map<BufKey, AccessCount> acc;
  for (const Thunk& t : ts) {
    const bool opaque = t.kind == ThunkKind::kOpaque;
    for (const Tensor& in : t.ins) {
      AccessCount& a = acc[buf(in)];
      a.reads += 1;
      a.opaque = a.opaque || opaque;
    }
    AccessCount& a = acc[buf(t.out)];
    a.writes += 1;
    if (t.reads_out()) a.reads += 1;
    a.opaque = a.opaque || opaque;
  }
  return acc;
}

/// True when `x` is a bias row vector against rank-2 `a` (the shape class
/// bias_tanh_into/bias_sin_into accept).
bool is_bias_row(const Tensor& a, const Tensor& x) {
  if (a.rank() != 2) return false;
  return (x.rank() == 1 && x.numel() == a.cols()) ||
         (x.rank() == 2 && x.rows() == 1 && x.cols() == a.cols());
}

std::size_t fuse_elementwise(std::vector<Thunk>& ts,
                             const std::unordered_set<BufKey>& outputs) {
  std::size_t fused_total = 0;
  for (int round = 0; round < 8; ++round) {
    const auto acc = count_accesses(ts);
    const auto ephemeral = [&](const Tensor& x) {
      if (outputs.count(buf(x)) != 0) return false;
      const auto it = acc.find(buf(x));
      if (it == acc.end()) return false;
      return it->second.writes == 1 && it->second.reads == 1 &&
             !it->second.opaque;
    };
    // `links(p, c, slot)` — p's output feeds exactly c's input `slot` and
    // dies there.
    const auto links = [&](const Thunk& p, const Thunk& c, std::size_t slot) {
      return slot < c.ins.size() && buf(c.ins[slot]) == buf(p.out) &&
             ephemeral(p.out);
    };

    std::vector<char> erased(ts.size(), 0);
    std::size_t fused_round = 0;
    for (std::size_t i = 0; i < ts.size(); ++i) {
      if (erased[i] != 0) continue;

      // tanh-backward chain: square(t) -> neg -> +1.0 -> mul(g, .) becomes
      // tanh_grad(g, t) = g * (1 - t^2), same lane-wise op sequence.
      if (i + 3 < ts.size() && is_unary(ts[i], &k::square_into) &&
          is_unary(ts[i + 1], &k::neg_into) && links(ts[i], ts[i + 1], 0) &&
          is_unary_scalar(ts[i + 2], &k::add_scalar_into) &&
          ts[i + 2].scalar == 1.0 && links(ts[i + 1], ts[i + 2], 0) &&
          is_binary(ts[i + 3], &k::mul_into) && links(ts[i + 2], ts[i + 3], 1) &&
          ts[i + 3].ins[0].same_shape(ts[i].ins[0]) &&
          ts[i + 3].out.same_shape(ts[i + 3].ins[0])) {
        Thunk& m = ts[i + 3];
        m.k2 = &k::tanh_grad_into;
        m.ins = {m.ins[0], ts[i].ins[0]};
        erased[i] = erased[i + 1] = erased[i + 2] = 1;
        fused_round += 3;
        continue;
      }

      // bias + activation: add(a, bias-row) -> tanh/sin becomes
      // bias_tanh/bias_sin (bit-identical per the SIMD table contract).
      if (i + 1 < ts.size() && is_binary(ts[i], &k::add_into) &&
          links(ts[i], ts[i + 1], 0) &&
          (is_unary(ts[i + 1], &k::tanh_into) ||
           is_unary(ts[i + 1], &k::sin_into)) &&
          is_bias_row(ts[i].ins[0], ts[i].ins[1]) &&
          ts[i].out.same_shape(ts[i].ins[0])) {
        Thunk& act = ts[i + 1];
        const bool is_tanh = is_unary(act, &k::tanh_into);
        act.kind = ThunkKind::kBinary;
        act.k2 = is_tanh ? &k::bias_tanh_into : &k::bias_sin_into;
        act.k1 = nullptr;
        act.ins = {ts[i].ins[0], ts[i].ins[1]};
        erased[i] = 1;
        fused_round += 1;
        continue;
      }

      // Scalar folds into gradient accumulation: a unit-scale axpy whose
      // source is a dying scale (or neg) absorbs the factor —
      // dst += 1.0*(s*g) == dst += s*g exactly (and 1.0*(-g) == (-1.0)*g).
      if (i + 1 < ts.size() &&
          (is_unary_scalar(ts[i], &k::scale_into) ||
           is_unary(ts[i], &k::neg_into))) {
        const double s =
            ts[i].kind == ThunkKind::kUnaryScalar ? ts[i].scalar : -1.0;
        Thunk& c = ts[i + 1];
        if (c.kind == ThunkKind::kAxpyAcc && c.scalar == 1.0 &&
            links(ts[i], c, 0)) {
          c.ins[0] = ts[i].ins[0];
          c.scalar = s;
          erased[i] = 1;
          fused_round += 1;
          continue;
        }
        if (c.kind == ThunkKind::kCopyAxpy && c.scalar == 1.0 &&
            links(ts[i], c, 1)) {
          c.ins[1] = ts[i].ins[0];
          c.scalar = s;
          erased[i] = 1;
          fused_round += 1;
          continue;
        }
      }

      // Unit-scale accumulator materialize: dst = first; dst += 1.0*src is
      // one add sweep — round(first + 1.0*src) == round(first + src).
      if (ts[i].kind == ThunkKind::kCopyAxpy && ts[i].scalar == 1.0 &&
          ts[i].ins[0].same_shape(ts[i].ins[1]) &&
          ts[i].out.same_shape(ts[i].ins[0])) {
        Thunk& t = ts[i];
        t.kind = ThunkKind::kBinary;
        t.k2 = &k::add_into;
        fused_round += 1;
        continue;
      }
    }

    if (fused_round == 0) break;
    fused_total += fused_round;
    std::vector<Thunk> kept;
    kept.reserve(ts.size());
    for (std::size_t idx = 0; idx < ts.size(); ++idx) {
      if (erased[idx] == 0) kept.push_back(std::move(ts[idx]));
    }
    ts = std::move(kept);
  }
  return fused_total;
}

// ---- pass 3: liveness-based arena reuse -----------------------------------
//
// Computes each buffer's live interval [first write, last access] over the
// thunk sequence and greedily colors the interval graph per buffer-size
// class (interval partitioning: sorted by start, first free slot wins), so
// buffers whose lifetimes never overlap share one pinned storage. A buffer
// is only re-bound when the plan provably owns it: produced by a structured
// thunk, not a declared output, never read before its first in-plan write
// (that would make it an external input the host refreshes), untouched by
// opaque closures (their closures capture the original tensors), and with
// a storage use count exactly accounted for by the plan's own references —
// any outside observer blocks the move.

struct BufInfo {
  Tensor rep;
  bool has_rep = false;
  long plan_refs = 0;
  bool opaque = false;
  bool written = false;
  bool read_before_write = false;
  std::size_t first_def = 0;
  std::size_t last_use = 0;
};

std::size_t reuse_arena(std::vector<Thunk>& ts,
                        const std::unordered_set<BufKey>& outputs) {
  std::unordered_map<BufKey, BufInfo> bufs;
  const auto touch = [&](const Tensor& x) -> BufInfo& {
    BufInfo& b = bufs[buf(x)];
    if (!b.has_rep) {
      b.rep = x;
      b.has_rep = true;
    }
    return b;
  };
  for (std::size_t i = 0; i < ts.size(); ++i) {
    const Thunk& t = ts[i];
    const bool opaque = t.kind == ThunkKind::kOpaque;
    for (const Tensor& in : t.ins) {
      BufInfo& b = touch(in);
      if (!b.written) b.read_before_write = true;
      b.last_use = i;
      b.plan_refs += 1;
      b.opaque = b.opaque || opaque;
    }
    BufInfo& b = touch(t.out);
    if (t.reads_out() && !b.written) b.read_before_write = true;
    if (!b.written) {
      b.written = true;
      b.first_def = i;
    }
    b.last_use = i;
    b.plan_refs += 1;
    b.opaque = b.opaque || opaque;
  }

  // Candidate set, grouped by element count (storage sharing goes through
  // Tensor::reshape, which requires numel preserved).
  std::unordered_map<std::int64_t, std::vector<const BufInfo*>> classes;
  for (const auto& [key, b] : bufs) {
    if (!b.written || b.read_before_write || b.opaque) continue;
    if (outputs.count(key) != 0) continue;
    // +1: the `rep` copy held by this analysis. Anything beyond the plan's
    // own references means an outside owner could observe the buffer.
    if (b.rep.storage_use_count() != b.plan_refs + 1) continue;
    classes[b.rep.numel()].push_back(&b);
  }

  struct Slot {
    Tensor owner;
    std::size_t busy_until;
  };
  std::unordered_map<BufKey, Tensor> rebind;
  std::size_t rebound = 0;
  for (auto& [numel, list] : classes) {
    std::sort(list.begin(), list.end(),
              [](const BufInfo* a, const BufInfo* b) {
                return a->first_def < b->first_def;
              });
    std::vector<Slot> slots;
    for (const BufInfo* b : list) {
      Slot* free_slot = nullptr;
      for (Slot& s : slots) {
        if (s.busy_until < b->first_def) {
          free_slot = &s;
          break;
        }
      }
      if (free_slot != nullptr) {
        rebind.emplace(buf(b->rep), free_slot->owner);
        free_slot->busy_until = b->last_use;
        rebound += 1;
      } else {
        slots.push_back(Slot{b->rep, b->last_use});
      }
    }
  }

  if (!rebind.empty()) {
    const auto fix = [&](Tensor& x) {
      const auto it = rebind.find(buf(x));
      if (it != rebind.end()) x = it->second.reshape(x.shape());
    };
    for (Thunk& t : ts) {
      fix(t.out);
      for (Tensor& in : t.ins) fix(in);
    }
  }
  return rebound;
}

}  // namespace

bool plan_opt_env_enabled() {
  std::string raw = env_string("QPINN_PLAN_OPT");
  std::transform(raw.begin(), raw.end(), raw.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (raw.empty() || raw == "on" || raw == "1" || raw == "true" ||
      raw == "yes") {
    return true;
  }
  if (raw == "off" || raw == "0" || raw == "false" || raw == "no") {
    return false;
  }
  throw ConfigError("QPINN_PLAN_OPT must be on/off (got \"" + raw + "\")");
}

PassStats optimize_plan(ExecutionPlan& plan,
                        const std::vector<Tensor>& outputs) {
  PassStats s;
  s.thunks_before = plan.size();
  s.arena_buffers_before = plan.arena_buffers();
  s.arena_bytes_before = plan.arena_bytes();

  std::unordered_set<BufKey> outs;
  outs.reserve(outputs.size());
  for (const Tensor& o : outputs) outs.insert(o.data());

  std::vector<Thunk> ts = plan.take_thunks();
  s.dead_eliminated = eliminate_dead_thunks(ts, outs);
  s.fused = fuse_elementwise(ts, outs);
  s.buffers_rebound = reuse_arena(ts, outs);
  plan.set_thunks(std::move(ts));

  s.thunks_after = plan.size();
  s.arena_buffers_after = plan.arena_buffers();
  s.arena_bytes_after = plan.arena_bytes();
  plan.set_pass_stats(s);
  count_optimized(s);
  return s;
}

}  // namespace qpinn::autodiff::plan

// Optimizer passes over a captured ExecutionPlan.
//
// A finalized capture is a flat, topologically-ordered thunk array — an IR.
// The pipeline here runs ONCE at capture finalization (training plans and
// forward-only serving plans alike) and rewrites that IR without changing
// any replayed value:
//
//   1. Dead-thunk elimination — a thunk whose output buffer is never read
//      by a later thunk and is not a bound plan output computes a value
//      nobody observes (e.g. forward values of zero-weight auxiliary loss
//      terms); drop it. Iterated to a fixpoint, since dropping a consumer
//      can kill its producers.
//   2. Elementwise fusion — adjacent pair/triple/quad sequences whose
//      intermediates die immediately are pattern-matched into the fused
//      `_into` kernels (tensor/kernels.hpp): add+tanh -> bias_tanh,
//      add+sin -> bias_sin, square+sum -> square_sum, the tanh-backward
//      chain square/neg/add_scalar/mul -> tanh_grad, scale/neg folded into
//      gradient-accumulation axpy scalars, and unit-scale copy+axpy -> add.
//      Every rewrite reuses a kernel whose bit-identity against the
//      composition it replaces is already part of the SIMD layer's
//      contract, so replay output is unchanged to the last bit.
//   3. Liveness-based arena reuse — buffer live intervals over the thunk
//      sequence are colored greedily (interval partitioning per buffer
//      size class) so non-overlapping lifetimes share one pinned arena
//      slot, shrinking arena_bytes(). Only buffers proven plan-private are
//      re-bound: produced by a structured thunk, not a declared output,
//      never read before their first write, untouched by opaque closures,
//      and with no storage owners outside the plan (storage_use_count()
//      equals the plan-internal reference count).
//
// Ordering matters: fusion runs before liveness because fusing shortens
// live ranges (intermediates disappear), which is exactly what makes
// interval coloring effective; liveness runs last because re-binding
// invalidates the buffer-identity facts the earlier passes key on.
//
// The pipeline is gated by QPINN_PLAN_OPT (same grammar as QPINN_GRAPH);
// with the knob off, plan owners skip optimize_plan() and replay the
// verbatim capture.
#pragma once

#include <vector>

#include "autodiff/plan.hpp"
#include "tensor/tensor.hpp"

namespace qpinn::autodiff::plan {

/// Parses QPINN_PLAN_OPT: unset/empty/"on"/"1"/"true"/"yes" -> true (the
/// passes are on by default), "off"/"0"/"false"/"no" -> false; anything
/// else throws ConfigError.
bool plan_opt_env_enabled();

/// Runs the pass pipeline over `plan`. `outputs` are the buffers the host
/// reads after replay (loss/gradient/aux tensors, the serving output) —
/// they keep their identity and final value. Buffers the host refreshes in
/// place before replay (batch points, curriculum weights, parameters, the
/// serving input) need no declaration: the passes detect them as external
/// inputs because the plan reads them before writing them. Returns the
/// per-plan statistics, which are also stored on the plan and aggregated
/// into plan_stats(). Callers gate on plan_opt_env_enabled(); this
/// function itself always runs.
PassStats optimize_plan(ExecutionPlan& plan,
                        const std::vector<Tensor>& outputs);

}  // namespace qpinn::autodiff::plan

// PDE derivative helpers on batched network outputs.
//
// PINN convention: the network maps a batch X of shape (N, D) — one
// collocation point per row — to outputs of shape (N, C). Because each
// output row depends only on its own input row, grad(sum(y), X) recovers
// per-point derivatives, and slicing column `dim` yields d y / d x_dim at
// every collocation point. Repeating with create_graph gives u_xx etc.
#pragma once

#include "autodiff/grad.hpp"
#include "autodiff/ops.hpp"

namespace qpinn::autodiff {

/// d y / d x_dim as an (N, 1) Variable. `y` must be (N, 1) (one channel);
/// `x` the (N, D) input leaf it was computed from. The result carries a
/// graph (create_graph=true) so it can be differentiated again or used
/// inside a loss.
Variable partial(const Variable& y, const Variable& x, std::int64_t dim);

/// Repeated partial: order-th derivative along `dim` (order >= 1).
Variable partial_n(const Variable& y, const Variable& x, std::int64_t dim,
                   int order);

/// Mixed second derivative d^2 y / (d x_i d x_j).
Variable partial_mixed(const Variable& y, const Variable& x, std::int64_t i,
                       std::int64_t j);

}  // namespace qpinn::autodiff

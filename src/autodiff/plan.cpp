#include "autodiff/plan.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <string>
#include <utility>

#include "tensor/kernels.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

namespace qpinn::autodiff::plan {

namespace {

thread_local ExecutionPlan* g_recorder = nullptr;
thread_local CaptureKind g_capture_kind = CaptureKind::kTraining;

std::atomic<std::uint64_t> g_captured{0};
std::atomic<std::uint64_t> g_replays{0};
std::atomic<std::uint64_t> g_fallbacks{0};
std::atomic<std::uint64_t> g_optimized{0};
std::atomic<std::uint64_t> g_thunks_eliminated{0};
std::atomic<std::uint64_t> g_arena_bytes_saved{0};

void run_thunk(Thunk& t) {
  switch (t.kind) {
    case ThunkKind::kUnary:
      t.k1(t.out, t.ins[0]);
      break;
    case ThunkKind::kUnaryScalar:
      t.k1s(t.out, t.ins[0], t.scalar);
      break;
    case ThunkKind::kBinary:
      t.k2(t.out, t.ins[0], t.ins[1]);
      break;
    case ThunkKind::kAxpyAcc:
      kernels::axpy_inplace(t.out, t.scalar, t.ins[0]);
      break;
    case ThunkKind::kCopyAxpy:
      kernels::copy_into(t.out, t.ins[0]);
      kernels::axpy_inplace(t.out, t.scalar, t.ins[1]);
      break;
    case ThunkKind::kZero:
      kernels::fill_zero(t.out);
      break;
    case ThunkKind::kOpaque:
      t.run();
      break;
  }
}

void check_not_forward_only() {
  if (g_capture_kind == CaptureKind::kForwardOnly) {
    throw ValueError(
        "gradient-accumulation kernel recorded under a forward-only capture; "
        "inference must not build a tape (wrap the forward pass in "
        "NoGradGuard)");
  }
}

}  // namespace

void ExecutionPlan::replay() const {
  for (Thunk& t : steps_) run_thunk(t);
  g_replays.fetch_add(1, std::memory_order_relaxed);
}

void ExecutionPlan::set_thunks(std::vector<Thunk> thunks) {
  steps_ = std::move(thunks);
  seen_buffers_.clear();
  arena_buffers_ = 0;
  arena_bytes_ = 0;
  for (const Thunk& t : steps_) {
    if (seen_buffers_.insert(t.out.data()).second) {
      arena_buffers_ += 1;
      arena_bytes_ +=
          static_cast<std::size_t>(t.out.numel()) * sizeof(double);
    }
  }
}

std::vector<Thunk> ExecutionPlan::take_thunks() {
  std::vector<Thunk> out = std::move(steps_);
  steps_.clear();
  seen_buffers_.clear();
  arena_buffers_ = 0;
  arena_bytes_ = 0;
  return out;
}

void ExecutionPlan::clear() {
  steps_.clear();
  seen_buffers_.clear();
  arena_buffers_ = 0;
  arena_bytes_ = 0;
  pass_stats_ = PassStats{};
}

CaptureScope::CaptureScope(ExecutionPlan& plan, CaptureKind kind)
    : prev_(g_recorder), prev_kind_(g_capture_kind) {
  g_recorder = &plan;
  g_capture_kind = kind;
}

CaptureScope::~CaptureScope() {
  g_recorder = prev_;
  g_capture_kind = prev_kind_;
  g_captured.fetch_add(1, std::memory_order_relaxed);
}

bool capturing() { return g_recorder != nullptr; }

bool capturing_forward_only() {
  return g_recorder != nullptr && g_capture_kind == CaptureKind::kForwardOnly;
}

void record_thunk(Thunk thunk) {
  ExecutionPlan* p = g_recorder;
  if (p == nullptr) return;
  if (p->seen_buffers_.insert(thunk.out.data()).second) {
    p->arena_buffers_ += 1;
    p->arena_bytes_ +=
        static_cast<std::size_t>(thunk.out.numel()) * sizeof(double);
  }
  p->steps_.push_back(std::move(thunk));
}

void record_unary(const Tensor& out, UnaryKernel k, const Tensor& a) {
  if (g_recorder == nullptr) return;
  Thunk t;
  t.kind = ThunkKind::kUnary;
  t.k1 = k;
  t.out = out;
  t.ins = {a};
  record_thunk(std::move(t));
}

void record_unary_scalar(const Tensor& out, UnaryScalarKernel k,
                         const Tensor& a, double s) {
  if (g_recorder == nullptr) return;
  Thunk t;
  t.kind = ThunkKind::kUnaryScalar;
  t.k1s = k;
  t.out = out;
  t.ins = {a};
  t.scalar = s;
  record_thunk(std::move(t));
}

void record_binary(const Tensor& out, BinaryKernel k, const Tensor& a,
                   const Tensor& b) {
  if (g_recorder == nullptr) return;
  Thunk t;
  t.kind = ThunkKind::kBinary;
  t.k2 = k;
  t.out = out;
  t.ins = {a, b};
  record_thunk(std::move(t));
}

void record_axpy_acc(const Tensor& dst, double s, const Tensor& src) {
  if (g_recorder == nullptr) return;
  check_not_forward_only();
  Thunk t;
  t.kind = ThunkKind::kAxpyAcc;
  t.out = dst;
  t.ins = {src};
  t.scalar = s;
  record_thunk(std::move(t));
}

void record_copy_axpy(const Tensor& dst, const Tensor& first, double s,
                      const Tensor& src) {
  if (g_recorder == nullptr) return;
  check_not_forward_only();
  Thunk t;
  t.kind = ThunkKind::kCopyAxpy;
  t.out = dst;
  t.ins = {first, src};
  t.scalar = s;
  record_thunk(std::move(t));
}

void record_zero(const Tensor& out) {
  if (g_recorder == nullptr) return;
  Thunk t;
  t.kind = ThunkKind::kZero;
  t.out = out;
  record_thunk(std::move(t));
}

void record_opaque(const Tensor& out, std::vector<Tensor> ins,
                   std::function<void()> run) {
  if (g_recorder == nullptr) return;
  Thunk t;
  t.kind = ThunkKind::kOpaque;
  t.run = std::move(run);
  t.out = out;
  t.ins = std::move(ins);
  record_thunk(std::move(t));
}

PlanStats plan_stats() {
  PlanStats s;
  s.plans_captured = g_captured.load(std::memory_order_relaxed);
  s.replays = g_replays.load(std::memory_order_relaxed);
  s.fallbacks = g_fallbacks.load(std::memory_order_relaxed);
  s.plans_optimized = g_optimized.load(std::memory_order_relaxed);
  s.thunks_eliminated = g_thunks_eliminated.load(std::memory_order_relaxed);
  s.arena_bytes_saved = g_arena_bytes_saved.load(std::memory_order_relaxed);
  return s;
}

void reset_plan_stats() {
  g_captured.store(0, std::memory_order_relaxed);
  g_replays.store(0, std::memory_order_relaxed);
  g_fallbacks.store(0, std::memory_order_relaxed);
  g_optimized.store(0, std::memory_order_relaxed);
  g_thunks_eliminated.store(0, std::memory_order_relaxed);
  g_arena_bytes_saved.store(0, std::memory_order_relaxed);
}

void count_fallback() { g_fallbacks.fetch_add(1, std::memory_order_relaxed); }

void count_optimized(const PassStats& s) {
  g_optimized.fetch_add(1, std::memory_order_relaxed);
  g_thunks_eliminated.fetch_add(s.thunks_before - s.thunks_after,
                                std::memory_order_relaxed);
  g_arena_bytes_saved.fetch_add(s.arena_bytes_before - s.arena_bytes_after,
                                std::memory_order_relaxed);
}

bool graph_env_enabled() {
  std::string raw = env_string("QPINN_GRAPH");
  std::transform(raw.begin(), raw.end(), raw.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (raw.empty() || raw == "on" || raw == "1" || raw == "true" ||
      raw == "yes") {
    return true;
  }
  if (raw == "off" || raw == "0" || raw == "false" || raw == "no") {
    return false;
  }
  throw ConfigError("QPINN_GRAPH must be on/off (got \"" + raw + "\")");
}

}  // namespace qpinn::autodiff::plan

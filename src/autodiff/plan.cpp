#include "autodiff/plan.hpp"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <string>
#include <utility>

#include "util/env.hpp"
#include "util/error.hpp"

namespace qpinn::autodiff::plan {

namespace {

thread_local ExecutionPlan* g_recorder = nullptr;
thread_local CaptureKind g_capture_kind = CaptureKind::kTraining;

std::atomic<std::uint64_t> g_captured{0};
std::atomic<std::uint64_t> g_replays{0};
std::atomic<std::uint64_t> g_fallbacks{0};

}  // namespace

void ExecutionPlan::replay() const {
  for (const auto& step : steps_) step();
  g_replays.fetch_add(1, std::memory_order_relaxed);
}

void ExecutionPlan::clear() {
  steps_.clear();
  seen_buffers_.clear();
  arena_buffers_ = 0;
  arena_bytes_ = 0;
}

CaptureScope::CaptureScope(ExecutionPlan& plan, CaptureKind kind)
    : prev_(g_recorder), prev_kind_(g_capture_kind) {
  g_recorder = &plan;
  g_capture_kind = kind;
}

CaptureScope::~CaptureScope() {
  g_recorder = prev_;
  g_capture_kind = prev_kind_;
  g_captured.fetch_add(1, std::memory_order_relaxed);
}

bool capturing() { return g_recorder != nullptr; }

bool capturing_forward_only() {
  return g_recorder != nullptr && g_capture_kind == CaptureKind::kForwardOnly;
}

void record(const Tensor& out, std::function<void()> step) {
  ExecutionPlan* p = g_recorder;
  if (p == nullptr) return;
  if (p->seen_buffers_.insert(out.data()).second) {
    p->arena_buffers_ += 1;
    p->arena_bytes_ += static_cast<std::size_t>(out.numel()) * sizeof(double);
  }
  p->steps_.push_back(std::move(step));
}

void record_inplace(std::function<void()> step) {
  ExecutionPlan* p = g_recorder;
  if (p == nullptr) return;
  if (g_capture_kind == CaptureKind::kForwardOnly) {
    throw ValueError(
        "gradient-accumulation kernel recorded under a forward-only capture; "
        "inference must not build a tape (wrap the forward pass in "
        "NoGradGuard)");
  }
  p->steps_.push_back(std::move(step));
}

PlanStats plan_stats() {
  PlanStats s;
  s.plans_captured = g_captured.load(std::memory_order_relaxed);
  s.replays = g_replays.load(std::memory_order_relaxed);
  s.fallbacks = g_fallbacks.load(std::memory_order_relaxed);
  return s;
}

void reset_plan_stats() {
  g_captured.store(0, std::memory_order_relaxed);
  g_replays.store(0, std::memory_order_relaxed);
  g_fallbacks.store(0, std::memory_order_relaxed);
}

void count_fallback() { g_fallbacks.fetch_add(1, std::memory_order_relaxed); }

bool graph_env_enabled() {
  std::string raw = env_string("QPINN_GRAPH");
  std::transform(raw.begin(), raw.end(), raw.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (raw.empty() || raw == "on" || raw == "1" || raw == "true" ||
      raw == "yes") {
    return true;
  }
  if (raw == "off" || raw == "0" || raw == "false" || raw == "no") {
    return false;
  }
  throw ConfigError("QPINN_GRAPH must be on/off (got \"" + raw + "\")");
}

}  // namespace qpinn::autodiff::plan

// Finite-difference verification of autodiff gradients.
//
// Used heavily by the test suite: every op's first AND second derivatives
// are checked against central differences across randomized shapes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "autodiff/variable.hpp"

namespace qpinn::autodiff {

struct GradcheckReport {
  bool ok = true;
  double max_abs_err = 0.0;
  double max_rel_err = 0.0;
  std::string detail;  ///< first failing location, when !ok
};

/// A differentiable scalar-valued function of several tensors.
using ScalarFn = std::function<Variable(const std::vector<Variable>&)>;

/// Compares analytic gradients of `f` at `points` against central finite
/// differences with step `eps`. Passes when for every element
/// |analytic - numeric| <= atol + rtol * |numeric|.
GradcheckReport check_gradients(const ScalarFn& f,
                                const std::vector<Tensor>& points,
                                double eps = 1e-5, double atol = 1e-7,
                                double rtol = 1e-4);

/// Second-order check: runs check_gradients on
///   g(x) = sum_i <grad_i f(x), w_i>
/// for fixed random weights w, which exercises the double-backward path of
/// every op appearing in f.
GradcheckReport check_second_gradients(const ScalarFn& f,
                                       const std::vector<Tensor>& points,
                                       std::uint64_t seed = 17,
                                       double eps = 1e-5, double atol = 1e-6,
                                       double rtol = 1e-3);

}  // namespace qpinn::autodiff

// Mixed-precision plan demotion: fp32 compute under fp64 master state.
//
// Mixed precision in qpinn is a PLAN-LEVEL transformation, not a tensor
// dtype. Tensors stay double everywhere — parameters, optimizer moments,
// checkpoints, dist all-reduce buffers, and the serving capture all keep
// their fp64 representation and code paths untouched. What changes is how
// a captured ExecutionPlan replays: demote_plan() rewrites the thunk array
// so the demotable kernels (elementwise sweeps, row broadcasts, fused
// activations, matmuls) execute through the fp32 SIMD tables against
// pooled float shadow buffers, with conversion thunks inserted at the
// precision boundary:
//
//   - every fp64-resident input of a demoted thunk gets a downcast thunk
//     that runs on EVERY replay — so parameters updated by the fp64 Adam
//     sweep between steps are re-published to fp32 automatically
//     (downcast-on-publish; the master weights never live in fp32);
//   - reductions (sum_all, square_sum_all, weighted_square_sum_all) read
//     fp32 operands but accumulate in and write fp64 (the fp32 kernel
//     tables promote per element), so losses keep fp64 accumulation;
//   - thunks kept on fp64 kernels (strided broadcasts, pad/slice/concat
//     opaques) get upcast thunks for any fp32-resident input, and every
//     declared plan output is upcast back to its fp64 buffer at the end —
//     the trainer, optimizer, and checkpoints only ever observe doubles.
//
// The pass walks thunks in replay order tracking per-buffer residency
// (which of the fp64 buffer / fp32 shadow holds the current value), which
// is exactly correct under arena reuse because walk order equals replay
// order. A demoted plan is terminal: its thunks are opaque closures over
// raw shadow pointers, so no optimizer pass may run after demotion
// (demote last, after plan::optimize_plan).
//
// Eager execution and the elastic dist trainer never see this pass — only
// captured plans demote, so QPINN_GRAPH=off composes with QPINN_PRECISION
// by simply running everything fp64.
#pragma once

#include <cstddef>
#include <vector>

#include "autodiff/plan.hpp"
#include "tensor/tensor.hpp"

namespace qpinn::autodiff {

/// What precision captured plans replay in. kFp64 is the default and is
/// bit-identical to eager execution; kMixed runs demoted fp32 compute
/// gated by tolerances (tests/precision_test.cpp).
enum class Precision { kFp64, kMixed };

/// Parses QPINN_PRECISION once: unset/""/"fp64" -> kFp64, "mixed" ->
/// kMixed, anything else throws ConfigError. Cached after first call.
Precision precision_mode();

/// Runtime override for tests and benchmarks; wins over the environment
/// for all subsequent precision_mode() calls.
void set_precision_mode(Precision p);

const char* precision_name(Precision p);

/// What demote_plan did to one plan (logged by the trainer, asserted by
/// tests).
struct DemoteStats {
  std::size_t thunks_before = 0;
  std::size_t demoted = 0;      ///< thunks now executing through fp32 tables
  std::size_t kept_fp64 = 0;    ///< thunks left on their fp64 kernels
  std::size_t downcasts = 0;    ///< inserted fp64 -> fp32 boundary thunks
  std::size_t upcasts = 0;      ///< inserted fp32 -> fp64 boundary thunks
  std::size_t shadow_buffers = 0;
  std::size_t shadow_bytes = 0;
};

/// Rewrites `plan` in place for fp32 replay as described above. `outputs`
/// are the tensors the plan's consumers read after replay() (loss, grads,
/// aux) — each is guaranteed fp64-resident when replay returns. Safe to
/// call on any finalized captured plan, including one already processed
/// by plan::optimize_plan; must be the LAST pass applied.
DemoteStats demote_plan(plan::ExecutionPlan& plan,
                        const std::vector<Tensor>& outputs);

}  // namespace qpinn::autodiff

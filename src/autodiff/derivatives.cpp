#include "autodiff/derivatives.hpp"

#include "util/error.hpp"

namespace qpinn::autodiff {

Variable partial(const Variable& y, const Variable& x, std::int64_t dim) {
  QPINN_CHECK_SHAPE(y.value().rank() == 2 && y.value().cols() == 1,
                    "partial(): y must be an (N, 1) channel");
  QPINN_CHECK_SHAPE(x.value().rank() == 2,
                    "partial(): x must be the (N, D) input batch");
  QPINN_CHECK(dim >= 0 && dim < x.value().cols(),
              "partial(): dim out of range");
  GradOptions options;
  options.create_graph = true;
  const Variable full = grad_single(sum_all(y), x, /*grad_output=*/{}, options);
  return slice_cols(full, dim, dim + 1);
}

Variable partial_n(const Variable& y, const Variable& x, std::int64_t dim,
                   int order) {
  QPINN_CHECK(order >= 1, "partial_n(): order must be >= 1");
  Variable d = y;
  for (int k = 0; k < order; ++k) d = partial(d, x, dim);
  return d;
}

Variable partial_mixed(const Variable& y, const Variable& x, std::int64_t i,
                       std::int64_t j) {
  return partial(partial(y, x, i), x, j);
}

}  // namespace qpinn::autodiff

#include "autodiff/grad.hpp"

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "autodiff/ops.hpp"
#include "autodiff/plan.hpp"
#include "tensor/kernels.hpp"
#include "util/error.hpp"
#include "util/invariant.hpp"

namespace qpinn::autodiff {

namespace {

/// Iterative postorder DFS over the requires-grad subgraph rooted at `root`.
/// Returns nodes in topological order (parents before children).
std::vector<Node*> topo_order(Node* root) {
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  // Stack entries: (node, next parent index to visit).
  std::vector<std::pair<Node*, std::size_t>> stack;
  if (root->requires_grad) stack.emplace_back(root, 0);
  visited.insert(root);
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      Node* parent = node->parents[idx].node();
      ++idx;
      if (parent != nullptr && parent->requires_grad &&
          visited.insert(parent).second) {
        stack.emplace_back(parent, 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  return order;
}

}  // namespace

Variable ones_like(const Variable& v) {
  return Variable::constant(Tensor::ones(v.shape()));
}

Variable zeros_like(const Variable& v) {
  return Variable::constant(Tensor::zeros(v.shape()));
}

std::vector<Variable> grad(const Variable& output,
                           const std::vector<Variable>& inputs,
                           const Variable& grad_output,
                           const GradOptions& options) {
  QPINN_CHECK(output.defined(), "grad(): output is undefined");
  QPINN_CHECK(output.requires_grad(),
              "grad(): output does not require grad (no differentiable path)");
  for (const Variable& input : inputs) {
    QPINN_CHECK(input.defined(), "grad(): an input is undefined");
  }

  Variable seed = grad_output.defined() ? grad_output : ones_like(output);
  QPINN_CHECK_SHAPE(seed.shape() == output.shape(),
                    "grad(): grad_output shape " +
                        shape_to_string(seed.shape()) +
                        " must match output shape " +
                        shape_to_string(output.shape()));

  // Without create_graph, backward computations need no graphs of their own.
  std::optional<NoGradGuard> guard;
  if (!options.create_graph) guard.emplace();

  // Accumulated gradient per node. Nodes in `owned_accum` hold a private
  // accumulation buffer this pass created, so further contributions may
  // axpy into it in place; everything else (the seed, gradients produced
  // by backward closures) is treated as immutable.
  std::unordered_map<Node*, Variable> grads;
  std::unordered_set<Node*> owned_accum;
  grads[output.node()] = seed;

  const std::vector<Node*> order = topo_order(output.node());

#ifdef QPINN_CHECKED
  // Tape discipline: a non-retaining backward released these nodes; a
  // second pass would differentiate a graph the caller declared dead.
  for (Node* node : order) {
    QPINN_INVARIANT(!node->released, "autodiff.tape", "backward-twice",
                    std::string("backward through released node of op '") +
                        node->op +
                        "' (a previous grad() ran with retain_graph=false; "
                        "pass retain_graph/create_graph to reuse a graph)");
  }
#endif

  // Backward closures receive `self` as a Variable, so we need an owning
  // pointer for every node; parents vectors own every interior node except
  // the output itself.
  std::unordered_map<Node*, std::shared_ptr<Node>> owners;
  owners[output.node()] = output.node_ptr();
  for (Node* node : order) {
    for (const Variable& parent : node->parents) {
      if (parent.node() != nullptr) {
        owners.emplace(parent.node(), parent.node_ptr());
      }
    }
  }

  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node* node = *it;
    auto found = grads.find(node);
    if (found == grads.end()) continue;
    if (!node->backward) continue;
    const Variable node_grad = found->second;
    const Variable self = wrap_node(owners.at(node));
    std::vector<Variable> parent_grads = node->backward(node_grad, self);
    QPINN_CHECK(parent_grads.size() == node->parents.size(),
                std::string("op '") + node->op +
                    "' backward returned wrong grad count");
    for (std::size_t i = 0; i < node->parents.size(); ++i) {
      const Variable& parent = node->parents[i];
      if (!parent.requires_grad()) continue;
      Variable& pg = parent_grads[i];
      if (!pg.defined()) continue;
      QPINN_INVARIANT(
          pg.value().all_finite(), "autodiff.grad", "non-finite",
          std::string("op '") + node->op +
              "' produced a non-finite gradient for parent " +
              std::to_string(i) + " (op '" + parent.op() +
              "'); this is the origin of the NaN/Inf, not a downstream "
              "accumulation");
      QPINN_CHECK_SHAPE(
          pg.shape() == parent.shape(),
          std::string("op '") + node->op + "' produced gradient of shape " +
              shape_to_string(pg.shape()) + " for parent of shape " +
              shape_to_string(parent.shape()));
      auto existing = grads.find(parent.node());
      if (existing == grads.end()) {
        grads.emplace(parent.node(), pg);
      } else if (options.create_graph) {
        // Higher-order path: the accumulation itself must be on the tape.
        existing->second = add(existing->second, pg);
      } else if (owned_accum.contains(parent.node())) {
        // Private accumulator: fold the new contribution in without
        // allocating another tensor per accumulation edge.
        kernels::axpy_inplace(existing->second.mutable_value(), 1.0,
                              pg.value());
        plan::record_axpy_acc(existing->second.value(), 1.0, pg.value());
      } else {
        // First collision for this node: materialize a private buffer
        // (the stored gradient may alias the seed or a tape value, which
        // must stay untouched) and accumulate into it from now on.
        Tensor acc = existing->second.value().clone();
        kernels::axpy_inplace(acc, 1.0, pg.value());
        plan::record_copy_axpy(acc, existing->second.value(), 1.0, pg.value());
        existing->second = Variable::constant(std::move(acc));
        owned_accum.insert(parent.node());
      }
    }
  }

#ifdef QPINN_CHECKED
  // A non-retaining backward consumes the graph: mark the interior nodes
  // released so checked builds catch any later use. Leaves stay live —
  // parameters are reused across steps by design.
  if (!options.retain_graph && !options.create_graph) {
    for (Node* node : order) {
      if (node->backward) node->released = true;
    }
  }
#endif

  std::vector<Variable> results;
  results.reserve(inputs.size());
  for (const Variable& input : inputs) {
    auto found = grads.find(input.node());
    if (found == grads.end() || !input.requires_grad()) {
      if (!options.allow_unused) {
        throw ValueError(
            "grad(): an input is not reachable from the output "
            "(allow_unused=false)");
      }
      Variable zero = zeros_like(input);
      // Callers (trainer shard reduction) may axpy into result buffers in
      // place; the plan must restore this one to zero on every replay.
      plan::record_zero(zero.value());
      results.push_back(zero);
      continue;
    }
    Variable g = found->second;
    results.push_back(options.create_graph ? g : g.detach());
  }
  return results;
}

Variable grad_single(const Variable& output, const Variable& input,
                     const Variable& grad_output, const GradOptions& options) {
  return grad(output, {input}, grad_output, options)[0];
}

}  // namespace qpinn::autodiff

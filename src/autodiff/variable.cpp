#include "autodiff/variable.hpp"

#include <atomic>

#include "util/error.hpp"
#include "util/invariant.hpp"

namespace qpinn::autodiff {

namespace {
std::uint64_t next_node_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Variable Variable::leaf(Tensor value, bool requires_grad) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->op = "leaf";
  node->id = next_node_id();
  Variable v;
  v.node_ = std::move(node);
  return v;
}

Variable Variable::constant(Tensor value) {
  return leaf(std::move(value), /*requires_grad=*/false);
}

Variable Variable::constant(double value) {
  return constant(Tensor::scalar(value));
}

const Tensor& Variable::value() const {
  QPINN_CHECK(node_ != nullptr, "value() on an undefined Variable");
  return node_->value;
}

Tensor& Variable::mutable_value() {
  QPINN_CHECK(node_ != nullptr, "mutable_value() on an undefined Variable");
  return node_->value;
}

Variable Variable::detach() const {
  QPINN_CHECK(node_ != nullptr, "detach() on an undefined Variable");
  return constant(node_->value);
}

Variable make_op(
    const char* op, Tensor value, std::vector<Variable> parents,
    std::function<std::vector<Variable>(const Variable&, const Variable&)>
        backward) {
  bool requires_grad = false;
  for (const Variable& p : parents) {
    QPINN_CHECK(p.defined(), std::string("undefined parent passed to op ") + op);
    QPINN_INVARIANT(
        !p.node()->released, "autodiff.make_op", "use-after-backward",
        std::string("op '") + op + "' built on released node of op '" +
            p.op() +
            "' (its graph was consumed by a grad() call with "
            "retain_graph=false)");
    requires_grad = requires_grad || p.requires_grad();
  }
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->requires_grad = requires_grad;
  node->op = op;
  node->id = next_node_id();
  if (requires_grad) {
    node->parents = std::move(parents);
    node->backward = std::move(backward);
  }
  return wrap_node(std::move(node));
}

Variable wrap_node(std::shared_ptr<Node> node) {
  Variable v;
  v.node_ = std::move(node);
  return v;
}

}  // namespace qpinn::autodiff

// Crash-consistent file writes.
//
// A process killed mid-write must never leave a torn file where a reader
// (or a resumed training run) expects a checkpoint: write_file_atomic
// streams into `path + ".tmp"`, flushes and fsyncs the temporary, then
// renames it over `path` — POSIX rename is atomic, so readers observe
// either the complete old content or the complete new content.
#pragma once

#include <functional>
#include <ostream>
#include <string>

namespace qpinn {

/// Writes a file atomically: `writer` streams the content into a hidden
/// temporary which is flushed, fsynced, and renamed over `path`. Throws
/// IoError on any failure (the temporary is removed first). The fault site
/// "atomic_write.commit" fires between the flush and the rename, modelling
/// a crash or full disk at the worst possible moment.
void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer);

}  // namespace qpinn

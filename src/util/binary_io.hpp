// POD-level binary stream helpers shared by the nn serializer and the
// training checkpointer.
//
// Integers are written in native byte order (little-endian on every
// supported platform), matching the original v1 parameter format. All
// readers take a `field` label so a corrupt file reports *which* field was
// implausible, and length-prefixed reads are bounded so a flipped byte
// fails fast instead of triggering a multi-gigabyte allocation.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "util/error.hpp"

namespace qpinn {

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in, const std::string& field) {
  static_assert(std::is_trivially_copyable_v<T>);
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw IoError("truncated while reading " + field);
  return value;
}

/// u64 length prefix + raw bytes.
inline void write_string(std::ostream& out, const std::string& s) {
  write_pod(out, static_cast<std::uint64_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Bounded counterpart of write_string: rejects lengths above `max_len`
/// before allocating.
inline std::string read_string(std::istream& in, std::uint64_t max_len,
                               const std::string& field) {
  const auto len = read_pod<std::uint64_t>(in, field + " length");
  if (len > max_len) {
    throw IoError(field + " length " + std::to_string(len) +
                  " exceeds limit " + std::to_string(max_len));
  }
  std::string s(static_cast<std::size_t>(len), '\0');
  in.read(s.data(), static_cast<std::streamsize>(len));
  if (!in) throw IoError("truncated while reading " + field);
  return s;
}

}  // namespace qpinn

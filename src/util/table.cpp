#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "util/error.hpp"

namespace qpinn {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  QPINN_CHECK(!header_.empty(), "table header must not be empty");
}

void Table::add_row(std::vector<std::string> row) {
  QPINN_CHECK(row.size() == header_.size(),
              "table row arity must match header");
  rows_.push_back(std::move(row));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::fmt_sci(double value, int precision) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row, std::ostream& os) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << row[c] << " |";
    }
    os << "\n";
  };

  std::ostringstream os;
  if (!title.empty()) os << title << "\n";
  std::size_t total = 1;
  for (std::size_t w : widths) total += w + 3;
  const std::string rule(total, '-');
  os << rule << "\n";
  render_row(header_, os);
  os << rule << "\n";
  for (const auto& row : rows_) render_row(row, os);
  os << rule << "\n";
  return os.str();
}

namespace {
std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') out += "\"\"";
    else out += ch;
  }
  out += "\"";
  return out;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) os << ",";
    os << csv_escape(header_[c]);
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ",";
      os << csv_escape(row[c]);
    }
    os << "\n";
  }
  return os.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw IoError("cannot open '" + path + "' for writing");
  file << to_csv();
  if (!file) throw IoError("failed while writing '" + path + "'");
}

}  // namespace qpinn

#include "util/error.hpp"

#include <cstring>
#include <sstream>

namespace qpinn::detail {

[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg) {
  // Strip leading directories from the file path for readable messages.
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;

  std::ostringstream os;
  os << msg << " [check `" << expr << "` failed at " << base << ":" << line
     << "]";
  if (std::strcmp(kind, "ShapeError") == 0) {
    throw ShapeError(os.str());
  }
  throw ValueError(os.str());
}

}  // namespace qpinn::detail

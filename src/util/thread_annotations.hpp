// Clang thread-safety analysis annotations.
//
// These macros attach lock requirements to data members and functions so
// `clang -Wthread-safety` can prove, at compile time, that every access to
// guarded state happens under the right mutex. Under compilers without the
// attribute (gcc) they expand to nothing, so the annotations are free
// documentation everywhere and enforced wherever clang builds the tree
// (the clang CI job compiles with -Wthread-safety -Werror).
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define QPINN_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef QPINN_THREAD_ANNOTATION
#define QPINN_THREAD_ANNOTATION(x)
#endif

/// Class that acts as a lockable capability (see qpinn::Mutex).
#define QPINN_CAPABILITY(name) QPINN_THREAD_ANNOTATION(capability(name))
/// RAII class that acquires a capability for its lifetime.
#define QPINN_SCOPED_CAPABILITY QPINN_THREAD_ANNOTATION(scoped_lockable)
/// Data member that may only be read or written while holding `mu`.
#define QPINN_GUARDED_BY(mu) QPINN_THREAD_ANNOTATION(guarded_by(mu))
/// Pointer member whose *pointee* is protected by `mu`.
#define QPINN_PT_GUARDED_BY(mu) QPINN_THREAD_ANNOTATION(pt_guarded_by(mu))
/// Function that must be called with the listed capabilities held.
#define QPINN_REQUIRES(...) \
  QPINN_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function that must be called with the capabilities NOT held.
#define QPINN_EXCLUDES(...) QPINN_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Function that acquires the capabilities and returns with them held.
#define QPINN_ACQUIRE(...) \
  QPINN_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function that releases the capabilities.
#define QPINN_RELEASE(...) \
  QPINN_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Escape hatch for code the analysis cannot follow (e.g. init order).
#define QPINN_NO_THREAD_SAFETY_ANALYSIS \
  QPINN_THREAD_ANNOTATION(no_thread_safety_analysis)

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used as an end-to-end integrity check on checkpoint files (trailing
// checksum over the whole body, see core/checkpoint.cpp) and on every
// transport frame payload (src/dist/transport.cpp), so a torn write or a
// corrupted message fails loudly with IoError/TransportError instead of
// deserializing garbage. Table-driven, byte-at-a-time: integrity checking
// is off every hot loop, so simplicity wins over slicing tricks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace qpinn {

/// CRC-32 of `len` bytes at `data`. `seed` chains incremental computation:
/// crc32(b, crc32(a)) == crc32(a + b). The empty buffer hashes to 0.
std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed = 0);

inline std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0) {
  return crc32(data.data(), data.size(), seed);
}

}  // namespace qpinn

// Typed error hierarchy used throughout qpinn.
//
// All recoverable failures are reported via exceptions derived from
// qpinn::Error (itself a std::runtime_error), so callers can catch either
// the precise category or the whole family.
#pragma once

#include <stdexcept>
#include <string>

namespace qpinn {

/// Root of the qpinn exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid argument value (domain errors, bad enum strings, ...).
class ValueError : public Error {
 public:
  explicit ValueError(const std::string& what) : Error("ValueError: " + what) {}
};

/// Tensor shape mismatch or illegal shape.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error("ShapeError: " + what) {}
};

/// Invalid configuration of a model / trainer / solver.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("ConfigError: " + what) {}
};

/// Numerical failure: NaN/Inf encountered, solver divergence, singular system.
class NumericsError : public Error {
 public:
  explicit NumericsError(const std::string& what) : Error("NumericsError: " + what) {}
};

/// I/O failure (checkpoint files, CSV output).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("IoError: " + what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* kind, const char* expr,
                                      const char* file, int line,
                                      const std::string& msg);
}  // namespace detail

}  // namespace qpinn

/// Precondition check that throws qpinn::ValueError with location info.
#define QPINN_CHECK(cond, msg)                                                \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::qpinn::detail::throw_check_failure("ValueError", #cond, __FILE__,     \
                                           __LINE__, (msg));                  \
    }                                                                         \
  } while (false)

/// Shape-specific check that throws qpinn::ShapeError.
#define QPINN_CHECK_SHAPE(cond, msg)                                          \
  do {                                                                        \
    if (!(cond)) {                                                            \
      ::qpinn::detail::throw_check_failure("ShapeError", #cond, __FILE__,     \
                                           __LINE__, (msg));                  \
    }                                                                         \
  } while (false)

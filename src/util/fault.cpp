#include "util/fault.hpp"

#include <cstdlib>

#include "util/env.hpp"

namespace qpinn {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& site, std::int64_t at,
                        std::int64_t count) {
  MutexLock lock(mutex_);
  armed_[site] = Window{at, count};
}

void FaultInjector::disarm(const std::string& site) {
  MutexLock lock(mutex_);
  armed_.erase(site);
}

void FaultInjector::clear() {
  MutexLock lock(mutex_);
  armed_.clear();
  hits_.clear();
}

bool FaultInjector::should_fire(const std::string& site) {
  MutexLock lock(mutex_);
  const std::int64_t hit = hits_[site]++;
  const auto it = armed_.find(site);
  if (it == armed_.end()) return false;
  return hit >= it->second.at && hit < it->second.at + it->second.count;
}

std::int64_t FaultInjector::hits(const std::string& site) const {
  MutexLock lock(mutex_);
  const auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

void FaultInjector::arm_from_env() {
  const char* site = std::getenv("QPINN_FAULT_SITE");
  if (site == nullptr || site[0] == '\0') return;
  arm(site, env_int("QPINN_FAULT_AT", 0), env_int("QPINN_FAULT_COUNT", 1));
}

bool fault_fires(const std::string& site) {
  return FaultInjector::instance().should_fire(site);
}

}  // namespace qpinn

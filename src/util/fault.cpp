#include "util/fault.hpp"

#include <cstdlib>
#include <limits>

#include "util/env.hpp"

namespace qpinn {

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(const std::string& site, std::int64_t at,
                        std::int64_t count) {
  MutexLock lock(mutex_);
  armed_[site] = Window{at, count};
}

void FaultInjector::disarm(const std::string& site) {
  MutexLock lock(mutex_);
  armed_.erase(site);
}

void FaultInjector::clear() {
  MutexLock lock(mutex_);
  armed_.clear();
  hits_.clear();
  delay_ms_ = 0;
  kill_rank_ = -1;
  fault_rank_ = -1;
}

bool FaultInjector::should_fire(const std::string& site) {
  MutexLock lock(mutex_);
  const std::int64_t hit = hits_[site]++;
  const auto it = armed_.find(site);
  if (it == armed_.end()) return false;
  return hit >= it->second.at && hit < it->second.at + it->second.count;
}

bool FaultInjector::should_fire_at(const std::string& site,
                                   std::int64_t index) {
  MutexLock lock(mutex_);
  hits_[site]++;
  const auto it = armed_.find(site);
  if (it == armed_.end()) return false;
  return index >= it->second.at && index < it->second.at + it->second.count;
}

std::int64_t FaultInjector::hits(const std::string& site) const {
  MutexLock lock(mutex_);
  const auto it = hits_.find(site);
  return it == hits_.end() ? 0 : it->second;
}

void FaultInjector::set_delay_ms(std::int64_t ms) {
  MutexLock lock(mutex_);
  delay_ms_ = ms;
}

std::int64_t FaultInjector::delay_ms() const {
  MutexLock lock(mutex_);
  return delay_ms_;
}

void FaultInjector::set_kill_rank(std::int64_t rank) {
  MutexLock lock(mutex_);
  kill_rank_ = rank;
}

std::int64_t FaultInjector::kill_rank() const {
  MutexLock lock(mutex_);
  return kill_rank_;
}

void FaultInjector::set_fault_rank(std::int64_t rank) {
  MutexLock lock(mutex_);
  fault_rank_ = rank;
}

bool FaultInjector::rank_in_scope(std::int64_t rank) const {
  MutexLock lock(mutex_);
  return fault_rank_ < 0 || fault_rank_ == rank;
}

void FaultInjector::arm_from_env() {
  const std::int64_t at = env_int("QPINN_FAULT_AT", 0);
  const std::int64_t count = env_int("QPINN_FAULT_COUNT", 1);
  const char* site = std::getenv("QPINN_FAULT_SITE");
  if (site != nullptr && site[0] != '\0') arm(site, at, count);

  // Transport knobs. Each arms its dedicated site so hits are observable
  // and windows are honored; the parameter values live beside the windows.
  const std::int64_t drop_at = env_int("QPINN_FAULT_DROP_MSG", -1);
  if (drop_at >= 0) arm(kFaultDistDropMsg, drop_at, count);

  const std::int64_t delay_ms = env_int("QPINN_FAULT_DELAY_MS", 0);
  if (delay_ms > 0) {
    set_delay_ms(delay_ms);
    // Delay every send unless QPINN_FAULT_AT/COUNT narrow the window via
    // the generic QPINN_FAULT_SITE form.
    {
      MutexLock lock(mutex_);
      if (armed_.find(kFaultDistDelay) == armed_.end()) {
        armed_[kFaultDistDelay] =
            Window{0, std::numeric_limits<std::int64_t>::max()};
      }
    }
  }

  const std::int64_t kill_rank = env_int("QPINN_FAULT_KILL_RANK", -1);
  if (kill_rank >= 0) {
    set_kill_rank(kill_rank);
    // Epoch-indexed window: fires when the training epoch reaches
    // QPINN_FAULT_AT (default epoch 0).
    arm(kFaultDistKill, at, count);
  }

  const std::int64_t fault_rank = env_int("QPINN_FAULT_RANK", -1);
  if (fault_rank >= 0) set_fault_rank(fault_rank);
}

bool fault_fires(const std::string& site) {
  return FaultInjector::instance().should_fire(site);
}

}  // namespace qpinn

// Deterministic fault-injection harness.
//
// Production code marks named *sites* (e.g. "trainer.nan_loss",
// "atomic_write.commit") by calling fault_fires(site) on the path to be
// hardened; the call counts hits and returns true only while the site is
// armed for the current hit window, so every recovery path can be
// exercised by tests instead of hoped-for. Sites are disarmed by default —
// the cost of an unarmed site is one locked map lookup, well off any hot
// loop. Tests arm sites programmatically; QPINN_FAULT_SITE /
// QPINN_FAULT_AT / QPINN_FAULT_COUNT arm one site from the environment so
// whole-process runs (examples, CI) can be faulted without recompiling.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/mutex.hpp"

namespace qpinn {

/// Canonical fault-site names (kept here so tests and call sites agree).
inline constexpr char kFaultTrainerNanLoss[] = "trainer.nan_loss";
inline constexpr char kFaultTrainerExplodeLoss[] = "trainer.explode_loss";
inline constexpr char kFaultAtomicWriteCommit[] = "atomic_write.commit";

class FaultInjector {
 public:
  /// Process-wide instance (reads the QPINN_FAULT_* environment once).
  static FaultInjector& instance();

  /// Arms `site` to fire on hits [at, at + count): the hit counter is
  /// 0-based, so arm(site, 3) fires on exactly the 4th call to
  /// should_fire(site). Re-arming replaces the previous window but keeps
  /// the hit counter (use clear() between tests).
  void arm(const std::string& site, std::int64_t at, std::int64_t count = 1);
  void disarm(const std::string& site);

  /// Disarms every site and resets all hit counters.
  void clear();

  /// Called at a fault site: increments the site's hit counter and
  /// returns true when the armed window covers this hit.
  bool should_fire(const std::string& site);

  /// Total should_fire calls seen for `site` (for test assertions).
  std::int64_t hits(const std::string& site) const;

  /// Arms one site from QPINN_FAULT_SITE / QPINN_FAULT_AT /
  /// QPINN_FAULT_COUNT (no-op when QPINN_FAULT_SITE is unset). Called by
  /// the constructor; exposed for tests.
  void arm_from_env();

 private:
  FaultInjector() { arm_from_env(); }

  struct Window {
    std::int64_t at = 0;
    std::int64_t count = 1;
  };
  mutable Mutex mutex_;
  std::map<std::string, Window> armed_ QPINN_GUARDED_BY(mutex_);
  std::map<std::string, std::int64_t> hits_ QPINN_GUARDED_BY(mutex_);
};

/// Shorthand for FaultInjector::instance().should_fire(site).
bool fault_fires(const std::string& site);

}  // namespace qpinn

// Deterministic fault-injection harness.
//
// Production code marks named *sites* (e.g. "trainer.nan_loss",
// "atomic_write.commit") by calling fault_fires(site) on the path to be
// hardened; the call counts hits and returns true only while the site is
// armed for the current hit window, so every recovery path can be
// exercised by tests instead of hoped-for. Sites are disarmed by default —
// the cost of an unarmed site is one locked map lookup, well off any hot
// loop. Tests arm sites programmatically; QPINN_FAULT_SITE /
// QPINN_FAULT_AT / QPINN_FAULT_COUNT arm one site from the environment so
// whole-process runs (examples, CI) can be faulted without recompiling.
//
// The distributed runtime (src/dist/) adds transport-level injection with
// dedicated environment knobs, all deterministic:
//   QPINN_FAULT_DROP_MSG=n   drop outbound frames n .. n+COUNT-1
//                            (site "dist.drop_msg")
//   QPINN_FAULT_DELAY_MS=ms  sleep `ms` before outbound frames in the
//                            armed window of site "dist.delay" (armed for
//                            every send when only the delay is given)
//   QPINN_FAULT_KILL_RANK=r  rank r calls _exit at the epoch given by
//                            QPINN_FAULT_AT (site "dist.kill")
//   QPINN_FAULT_RANK=r       scope drop/delay faults to rank r
//                            (default: every rank)
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "util/mutex.hpp"

namespace qpinn {

/// Canonical fault-site names (kept here so tests and call sites agree).
inline constexpr char kFaultTrainerNanLoss[] = "trainer.nan_loss";
inline constexpr char kFaultTrainerExplodeLoss[] = "trainer.explode_loss";
inline constexpr char kFaultAtomicWriteCommit[] = "atomic_write.commit";
inline constexpr char kFaultDistDropMsg[] = "dist.drop_msg";
inline constexpr char kFaultDistDelay[] = "dist.delay";
inline constexpr char kFaultDistKill[] = "dist.kill";

class FaultInjector {
 public:
  /// Process-wide instance (reads the QPINN_FAULT_* environment once).
  static FaultInjector& instance();

  /// Arms `site` to fire on hits [at, at + count): the hit counter is
  /// 0-based, so arm(site, 3) fires on exactly the 4th call to
  /// should_fire(site). Re-arming replaces the previous window but keeps
  /// the hit counter (use clear() between tests).
  void arm(const std::string& site, std::int64_t at, std::int64_t count = 1);
  void disarm(const std::string& site);

  /// Disarms every site, resets all hit counters, and clears the dist
  /// fault parameters (delay, kill rank, rank scope).
  void clear();

  /// Called at a fault site: increments the site's hit counter and
  /// returns true when the armed window covers this hit.
  bool should_fire(const std::string& site);

  /// Windowed check against an external index instead of the hit counter
  /// (used for epoch-indexed faults like "dist.kill", where a restarted
  /// process must agree with the original about *when* the fault fires).
  /// Still counts the call in hits(site).
  bool should_fire_at(const std::string& site, std::int64_t index);

  /// Total should_fire calls seen for `site` (for test assertions).
  std::int64_t hits(const std::string& site) const;

  // ---- dist fault parameters (values, not windows) -----------------------

  /// Millisecond delay injected before transport sends while "dist.delay"
  /// fires (0 = none).
  void set_delay_ms(std::int64_t ms);
  std::int64_t delay_ms() const;

  /// Rank that "dist.kill" targets (-1 = disarmed).
  void set_kill_rank(std::int64_t rank);
  std::int64_t kill_rank() const;

  /// Rank scope for drop/delay faults (-1 = every rank).
  void set_fault_rank(std::int64_t rank);
  /// True when dist faults apply to `rank` under the current scope.
  bool rank_in_scope(std::int64_t rank) const;

  /// Arms sites from the environment: QPINN_FAULT_SITE / QPINN_FAULT_AT /
  /// QPINN_FAULT_COUNT for the generic single-site form, plus the
  /// QPINN_FAULT_DROP_MSG / QPINN_FAULT_DELAY_MS / QPINN_FAULT_KILL_RANK /
  /// QPINN_FAULT_RANK transport knobs. Called by the constructor; exposed
  /// for tests.
  void arm_from_env();

 private:
  FaultInjector() { arm_from_env(); }

  struct Window {
    std::int64_t at = 0;
    std::int64_t count = 1;
  };
  mutable Mutex mutex_;
  std::map<std::string, Window> armed_ QPINN_GUARDED_BY(mutex_);
  std::map<std::string, std::int64_t> hits_ QPINN_GUARDED_BY(mutex_);
  std::int64_t delay_ms_ QPINN_GUARDED_BY(mutex_) = 0;
  std::int64_t kill_rank_ QPINN_GUARDED_BY(mutex_) = -1;
  std::int64_t fault_rank_ QPINN_GUARDED_BY(mutex_) = -1;
};

/// Shorthand for FaultInjector::instance().should_fire(site).
bool fault_fires(const std::string& site);

}  // namespace qpinn

// Wall-clock stopwatch used by the trainer and experiment harnesses.
#pragma once

#include <chrono>

namespace qpinn {

class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace qpinn

#include "util/cli.hpp"

#include <cstdlib>
#include <sstream>

#include "util/error.hpp"

namespace qpinn {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name, const std::string& help) {
  QPINN_CHECK(options_.find(name) == options_.end(),
              "duplicate option '" + name + "'");
  options_[name] = Option{Kind::kFlag, help, "0", "0"};
  order_.push_back(name);
}

void CliParser::add_int(const std::string& name, long long default_value,
                        const std::string& help) {
  QPINN_CHECK(options_.find(name) == options_.end(),
              "duplicate option '" + name + "'");
  const std::string v = std::to_string(default_value);
  options_[name] = Option{Kind::kInt, help, v, v};
  order_.push_back(name);
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  QPINN_CHECK(options_.find(name) == options_.end(),
              "duplicate option '" + name + "'");
  std::ostringstream os;
  os << default_value;
  options_[name] = Option{Kind::kDouble, help, os.str(), os.str()};
  order_.push_back(name);
}

void CliParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  QPINN_CHECK(options_.find(name) == options_.end(),
              "duplicate option '" + name + "'");
  options_[name] = Option{Kind::kString, help, default_value, default_value};
  order_.push_back(name);
}

void CliParser::parse(int argc, const char* const argv[]) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw ValueError("unexpected positional argument '" + arg + "'");
    }
    std::string name = arg.substr(2);
    std::string inline_value;
    bool has_inline = false;
    const auto eq = name.find('=');
    if (eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    auto it = options_.find(name);
    if (it == options_.end()) {
      throw ValueError("unknown option '--" + name + "'");
    }
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      if (has_inline) {
        throw ValueError("flag '--" + name + "' does not take a value");
      }
      opt.value = "1";
      continue;
    }
    if (!has_inline) {
      if (i + 1 >= argc) {
        throw ValueError("option '--" + name + "' requires a value");
      }
      inline_value = argv[++i];
    }
    // Validate numeric options eagerly so errors point at the culprit.
    if (opt.kind == Kind::kInt) {
      char* end = nullptr;
      (void)std::strtoll(inline_value.c_str(), &end, 10);
      if (end == inline_value.c_str() || *end != '\0') {
        throw ValueError("option '--" + name + "' expects an integer, got '" +
                         inline_value + "'");
      }
    } else if (opt.kind == Kind::kDouble) {
      char* end = nullptr;
      (void)std::strtod(inline_value.c_str(), &end);
      if (end == inline_value.c_str() || *end != '\0') {
        throw ValueError("option '--" + name + "' expects a number, got '" +
                         inline_value + "'");
      }
    }
    opt.value = inline_value;
  }
}

std::string CliParser::help_text() const {
  std::ostringstream os;
  os << program_ << " - " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (opt.kind != Kind::kFlag) os << " <value>";
    os << "\n      " << opt.help;
    if (opt.kind != Kind::kFlag) os << " (default: " << opt.default_value << ")";
    os << "\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

const CliParser::Option& CliParser::find(const std::string& name,
                                         Kind kind) const {
  auto it = options_.find(name);
  QPINN_CHECK(it != options_.end(), "option '" + name + "' was never declared");
  QPINN_CHECK(it->second.kind == kind,
              "option '" + name + "' accessed with the wrong type");
  return it->second;
}

bool CliParser::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).value == "1";
}

long long CliParser::get_int(const std::string& name) const {
  return std::strtoll(find(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double CliParser::get_double(const std::string& name) const {
  return std::strtod(find(name, Kind::kDouble).value.c_str(), nullptr);
}

const std::string& CliParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

}  // namespace qpinn

// Minimal leveled logger.
//
// A single global logger writes to stderr; severity is filtered by a global
// level which tests and benchmarks may lower to keep output quiet.
#pragma once

#include <sstream>
#include <string>

namespace qpinn::log {

enum class Level : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global minimum severity that will be emitted.
void set_level(Level level);

/// Returns the current global severity threshold.
Level level();

/// Parses "debug" / "info" / "warn" / "error" / "off" (case-insensitive).
Level parse_level(const std::string& name);

namespace detail {
void emit(Level level, const std::string& message);

class LineLogger {
 public:
  explicit LineLogger(Level level) : level_(level) {}
  LineLogger(const LineLogger&) = delete;
  LineLogger& operator=(const LineLogger&) = delete;
  ~LineLogger() { emit(level_, stream_.str()); }

  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LineLogger debug() { return detail::LineLogger(Level::kDebug); }
inline detail::LineLogger info() { return detail::LineLogger(Level::kInfo); }
inline detail::LineLogger warn() { return detail::LineLogger(Level::kWarn); }
inline detail::LineLogger error() { return detail::LineLogger(Level::kError); }

}  // namespace qpinn::log

#include "util/env.hpp"

#include <cctype>
#include <cstdlib>

namespace qpinn {

bool env_flag(const std::string& name) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return false;
  std::string value;
  for (const char* p = raw; *p != '\0'; ++p) {
    value.push_back(static_cast<char>(std::tolower(*p)));
  }
  return !(value.empty() || value == "0" || value == "false" ||
           value == "no" || value == "off");
}

long long env_int(const std::string& name, long long fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return v;
}

std::string env_string(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr || *raw == '\0') return fallback;
  return std::string(raw);
}

}  // namespace qpinn

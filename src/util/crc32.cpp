#include "util/crc32.hpp"

#include <array>

namespace qpinn {

namespace {

constexpr std::uint32_t kPoly = 0xEDB88320u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (kPoly ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len, std::uint32_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace qpinn

// A tiny command-line option parser for examples and experiment binaries.
//
//   CliParser cli("quickstart", "Train a small PINN");
//   cli.add_int("epochs", 500, "training epochs");
//   cli.add_flag("full", "run the full-size configuration");
//   cli.parse(argc, argv);          // throws ValueError on bad input
//   int epochs = cli.get_int("epochs");
#pragma once

#include <map>
#include <string>
#include <vector>

namespace qpinn {

class CliParser {
 public:
  CliParser(std::string program, std::string description);

  void add_flag(const std::string& name, const std::string& help);
  void add_int(const std::string& name, long long default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);

  /// Parses `--name value` and `--flag` style arguments. Recognizes
  /// `--help` and sets help_requested(). Throws ValueError on unknown
  /// options or malformed values.
  void parse(int argc, const char* const argv[]);

  bool help_requested() const { return help_requested_; }
  std::string help_text() const;

  bool get_flag(const std::string& name) const;
  long long get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;

 private:
  enum class Kind { kFlag, kInt, kDouble, kString };
  struct Option {
    Kind kind;
    std::string help;
    std::string value;   // textual current value
    std::string default_value;
  };

  const Option& find(const std::string& name, Kind kind) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
  bool help_requested_ = false;
};

}  // namespace qpinn

// Checked-build invariant layer (-DQPINN_CHECKED=ON).
//
// A checked build compiles semantic invariants into the hot layers that
// ordinary tests cannot see failing: tensor storage consistency, autodiff
// tape discipline (use-after-backward, backward-twice), and optimizer/model
// parameter agreement. Violations raise InvariantError, a structured error
// naming the *site* (a stable dotted identifier such as "autodiff.tape")
// and the *category* of the broken invariant, so CI logs point at the
// responsible subsystem rather than a downstream symptom.
//
// Release builds compile every check out; the only permanent cost is a few
// bytes of per-node bookkeeping state that is never touched. Use
// `qpinn::checked_build()` to ask at runtime whether the layer is active
// (tests skip their trigger cases in unchecked builds).
#pragma once

#include <string>

#include "util/error.hpp"

namespace qpinn {

/// True when the library was compiled with QPINN_CHECKED.
constexpr bool checked_build() {
#ifdef QPINN_CHECKED
  return true;
#else
  return false;
#endif
}

/// Violation of a checked-build invariant. `site()` is the stable dotted
/// identifier of the check location; `category()` is the invariant class
/// (e.g. "tape", "storage", "param-agreement").
class InvariantError : public Error {
 public:
  InvariantError(std::string site, std::string category,
                 const std::string& what);

  const std::string& site() const { return site_; }
  const std::string& category() const { return category_; }

 private:
  std::string site_;
  std::string category_;
};

namespace detail {
[[noreturn]] void throw_invariant_failure(const char* site,
                                          const char* category,
                                          const std::string& msg);
}  // namespace detail

}  // namespace qpinn

/// Checked-build-only invariant. Compiles to nothing in release builds.
#ifdef QPINN_CHECKED
#define QPINN_INVARIANT(cond, site, category, msg)                         \
  do {                                                                     \
    if (!(cond)) {                                                         \
      ::qpinn::detail::throw_invariant_failure((site), (category), (msg)); \
    }                                                                      \
  } while (false)
#else
#define QPINN_INVARIANT(cond, site, category, msg) \
  do {                                             \
  } while (false)
#endif

#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace qpinn {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  QPINN_CHECK(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 is kept away from zero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  QPINN_CHECK(stddev >= 0.0, "normal stddev must be non-negative");
  return mean + stddev * normal();
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  QPINN_CHECK(n > 0, "uniform_int requires n > 0");
  // Rejection sampling for an unbiased result.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % n;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_int(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

RngState Rng::state() const {
  RngState state;
  for (int i = 0; i < 4; ++i) state.s[i] = state_[i];
  state.has_cached_normal = has_cached_normal_;
  state.cached_normal = cached_normal_;
  return state;
}

void Rng::set_state(const RngState& state) {
  for (int i = 0; i < 4; ++i) state_[i] = state.s[i];
  has_cached_normal_ = state.has_cached_normal;
  cached_normal_ = state.cached_normal;
}

Rng Rng::split() {
  // A fresh stream derived from two draws of this one.
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  return Rng(a ^ rotl(b, 29) ^ 0xD1B54A32D192ED03ULL);
}

}  // namespace qpinn

#include "util/invariant.hpp"

namespace qpinn {

InvariantError::InvariantError(std::string site, std::string category,
                               const std::string& what)
    : Error("InvariantError[" + site + "/" + category + "]: " + what),
      site_(std::move(site)),
      category_(std::move(category)) {}

namespace detail {

void throw_invariant_failure(const char* site, const char* category,
                             const std::string& msg) {
  throw InvariantError(site, category, msg);
}

}  // namespace detail

}  // namespace qpinn

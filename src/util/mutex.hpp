// Annotated mutex primitives for clang thread-safety analysis.
//
// std::mutex and std::lock_guard carry no capability attributes, so
// -Wthread-safety cannot see them acquire anything. Mutex/MutexLock are
// thin, zero-overhead wrappers that do carry the attributes; guarded state
// declares QPINN_GUARDED_BY(mu) and the analysis then proves every access
// is under the lock. Use qpinn::CondVar (a std::condition_variable_any)
// to wait directly on a Mutex.
#pragma once

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.hpp"

namespace qpinn {

/// std::mutex with clang capability attributes.
class QPINN_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QPINN_ACQUIRE() { mutex_.lock(); }
  void unlock() QPINN_RELEASE() { mutex_.unlock(); }

 private:
  std::mutex mutex_;
};

/// Waits on a Mutex directly (BasicLockable), keeping the capability
/// attributes intact; wait() releases and reacquires invisibly to the
/// analysis, which matches the condition-variable contract (the guarded
/// predicate must be re-checked in a loop after every wake-up).
using CondVar = std::condition_variable_any;

/// std::lock_guard equivalent understood by the analysis.
class QPINN_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) QPINN_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() QPINN_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

}  // namespace qpinn

// Deterministic random number generation.
//
// qpinn uses its own xoshiro256++ engine plus hand-rolled distributions so
// that results are bit-reproducible across platforms and standard libraries
// (std::normal_distribution is not portable across implementations).
#pragma once

#include <cstdint>
#include <vector>

namespace qpinn {

/// Full engine state (including the Box-Muller cache) — exported and
/// restored for checkpointing so a resumed run replays the exact stream.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  bool has_cached_normal = false;
  double cached_normal = 0.0;
};

/// xoshiro256++ engine seeded via SplitMix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (deterministic, platform independent).
  double normal();

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Fisher-Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent child stream (for per-thread RNGs).
  Rng split();

  /// Snapshot / restore of the complete engine state.
  RngState state() const;
  void set_state(const RngState& state);

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace qpinn

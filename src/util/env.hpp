// Environment-variable helpers shared by tests / benches / experiments.
#pragma once

#include <string>

namespace qpinn {

/// True when the variable is set to a non-empty value other than "0",
/// "false", "no" or "off" (case-insensitive).
bool env_flag(const std::string& name);

/// Integer value of an environment variable, or `fallback` when unset/bad.
long long env_int(const std::string& name, long long fallback);

/// Raw string value of an environment variable, or `fallback` when unset.
/// An empty value counts as unset.
std::string env_string(const std::string& name,
                       const std::string& fallback = "");

/// Experiment binaries run a fast smoke configuration by default; setting
/// QPINN_FULL=1 switches them to the full-size runs recorded in
/// EXPERIMENTS.md.
inline bool full_experiments() { return env_flag("QPINN_FULL"); }

}  // namespace qpinn

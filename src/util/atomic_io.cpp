#include "util/atomic_io.hpp"

#include <cstdio>
#include <fstream>

#include "util/error.hpp"
#include "util/fault.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace qpinn {

namespace {

/// Best-effort fsync so the rename cannot be reordered before the data
/// reaches disk (rename-over-unsynced-file is the classic torn-checkpoint
/// bug). Non-POSIX platforms fall back to the stream flush alone.
bool sync_to_disk(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
#else
  (void)path;
  return true;
#endif
}

}  // namespace

void write_file_atomic(const std::string& path,
                       const std::function<void(std::ostream&)>& writer) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw IoError("cannot open '" + tmp + "' for writing");
    try {
      writer(out);
    } catch (...) {
      out.close();
      std::remove(tmp.c_str());
      throw;
    }
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw IoError("failed while writing '" + tmp + "'");
    }
  }
  if (!sync_to_disk(tmp)) {
    std::remove(tmp.c_str());
    throw IoError("fsync failed for '" + tmp + "'");
  }
  if (fault_fires(kFaultAtomicWriteCommit)) {
    std::remove(tmp.c_str());
    throw IoError("injected fault at '" + std::string(kFaultAtomicWriteCommit) +
                  "' while committing '" + path + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("cannot rename '" + tmp + "' over '" + path + "'");
  }
}

}  // namespace qpinn

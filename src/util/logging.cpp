#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>

#include "util/error.hpp"
#include "util/mutex.hpp"

namespace qpinn::log {

namespace {
std::atomic<int> g_level{static_cast<int>(Level::kInfo)};
Mutex g_emit_mutex;

const char* level_tag(Level level) {
  switch (level) {
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_level(Level level) { g_level.store(static_cast<int>(level)); }

Level level() { return static_cast<Level>(g_level.load()); }

Level parse_level(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) lower.push_back(static_cast<char>(std::tolower(c)));
  if (lower == "debug") return Level::kDebug;
  if (lower == "info") return Level::kInfo;
  if (lower == "warn" || lower == "warning") return Level::kWarn;
  if (lower == "error") return Level::kError;
  if (lower == "off" || lower == "none") return Level::kOff;
  throw ValueError("unknown log level '" + name + "'");
}

namespace detail {

void emit(Level level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;

  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();

  MutexLock lock(g_emit_mutex);
  std::fprintf(stderr, "[%9.3fs %s] %s\n", elapsed, level_tag(level),
               message.c_str());
}

}  // namespace detail

}  // namespace qpinn::log

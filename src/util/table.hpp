// Aligned console tables and CSV output for experiment harnesses.
#pragma once

#include <string>
#include <vector>

namespace qpinn {

/// Collects rows of strings and renders them as an aligned ASCII table
/// and/or a CSV file. Used by every `exp_*` experiment binary so that all
/// tables in EXPERIMENTS.md share one format.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double value, int precision = 4);
  /// Scientific notation, e.g. for error norms.
  static std::string fmt_sci(double value, int precision = 3);

  std::size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& header() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Renders the aligned ASCII table.
  std::string to_string(const std::string& title = "") const;

  /// Renders RFC-4180-ish CSV (fields containing commas/quotes are quoted).
  std::string to_csv() const;

  /// Writes the CSV rendering to a file; throws IoError on failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qpinn

// Numerov shooting method for 1-D Schrödinger eigenvalues with Dirichlet
// walls — an independent cross-check on the Sturm/FD eigensolver (the two
// must agree to their respective discretization orders).
//
// Numerov integrates psi'' = f(x) psi with O(dx^6) local error:
//   (1 - dx^2/12 f_{i+1}) psi_{i+1} =
//     2 (1 + 5 dx^2/12 f_i) psi_i - (1 - dx^2/12 f_{i-1}) psi_{i-1}
// where f = 2 (V - E) for H = -1/2 d2/dx2 + V.
#pragma once

#include <functional>
#include <vector>

#include "fdm/grid.hpp"

namespace qpinn::fdm {

/// Value of psi at the right wall when shooting from psi(lo)=0 with unit
/// initial slope; an eigenvalue is a zero of this function in E.
double numerov_shoot(const Grid1d& grid,
                     const std::function<double(double)>& potential, double E);

/// Number of sign changes (nodes) of the shooting solution in the interior;
/// equals the number of eigenvalues below E (Sturm oscillation theorem).
std::int64_t numerov_node_count(const Grid1d& grid,
                                const std::function<double(double)>& potential,
                                double E);

/// The k smallest Dirichlet eigenvalues by node-count bracketing followed
/// by bisection on the boundary mismatch.
std::vector<double> numerov_eigenvalues(
    const Grid1d& grid, const std::function<double(double)>& potential,
    std::int64_t k, double e_min, double e_max, double tol = 1e-10);

}  // namespace qpinn::fdm

// Bilinear space-time interpolation of a stored WaveEvolution — turns an
// FDM solve into a SpaceTimeField-compatible callable usable as a PINN
// reference where no closed form exists (e.g. the Raissi NLS benchmark).
#pragma once

#include <functional>
#include <memory>

#include "fdm/crank_nicolson.hpp"

namespace qpinn::fdm {

/// psi(x, t) by bilinear interpolation. Requires uniformly spaced snapshot
/// times; x and t are clamped to the stored ranges. For `periodic_x` the
/// wrap-around cell between the last and first grid point is interpolated.
std::function<Complex(double, double)> make_interpolant(
    std::shared_ptr<const WaveEvolution> evolution, bool periodic_x);

}  // namespace qpinn::fdm

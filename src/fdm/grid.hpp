// Uniform grids and quadrature used by the reference solvers and the
// PINN's integral loss terms (norm conservation).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

namespace qpinn::fdm {

using Complex = std::complex<double>;

/// Uniform 1-D grid. `inclusive` grids contain both endpoints (natural for
/// Dirichlet problems); periodic grids exclude the right endpoint.
struct Grid1d {
  double lo = -1.0;
  double hi = 1.0;
  std::int64_t n = 2;
  bool periodic = false;

  double dx() const;
  std::vector<double> points() const;
};

/// Composite trapezoid rule over samples on a Grid1d. For periodic grids
/// the wrap-around interval is included (all points weigh dx).
double trapezoid(const Grid1d& grid, const std::vector<double>& f);
Complex trapezoid(const Grid1d& grid, const std::vector<Complex>& f);

/// Composite Simpson rule (non-periodic grids; n must be odd so the
/// interval count is even).
double simpson(const Grid1d& grid, const std::vector<double>& f);

/// L2 norm of a complex field: sqrt( integral |psi|^2 dx ).
double l2_norm(const Grid1d& grid, const std::vector<Complex>& psi);

/// Normalizes psi to unit L2 norm in place; throws NumericsError when the
/// field is (numerically) zero.
void normalize(const Grid1d& grid, std::vector<Complex>& psi);

}  // namespace qpinn::fdm

// Iterative radix-2 Cooley-Tukey FFT (power-of-two sizes).
//
// Used by the split-step Fourier reference solvers and by the spectral
// analysis utilities. Convention: forward transform has e^{-i k x} kernel
// and no scaling; the inverse applies 1/n.
#pragma once

#include <complex>
#include <vector>

namespace qpinn::fdm {

/// In-place FFT; size must be a power of two (>= 1).
void fft_inplace(std::vector<std::complex<double>>& a, bool inverse = false);

/// Out-of-place helpers.
std::vector<std::complex<double>> fft(std::vector<std::complex<double>> a);
std::vector<std::complex<double>> ifft(std::vector<std::complex<double>> a);

/// Angular wavenumbers k_j = 2*pi*f_j matching fft() output ordering for a
/// length-n periodic grid of spacing dx (NumPy fftfreq layout).
std::vector<double> fft_wavenumbers(std::int64_t n, double dx);

/// True when n is a power of two (n >= 1).
bool is_power_of_two(std::int64_t n);

}  // namespace qpinn::fdm

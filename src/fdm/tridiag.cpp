#include "fdm/tridiag.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qpinn::fdm {

namespace {
double magnitude(double v) { return std::abs(v); }
double magnitude(const std::complex<double>& v) { return std::abs(v); }
}  // namespace

template <typename T>
std::vector<T> solve_tridiagonal(const std::vector<T>& lower,
                                 const std::vector<T>& diag,
                                 const std::vector<T>& upper,
                                 const std::vector<T>& rhs) {
  const std::size_t n = diag.size();
  QPINN_CHECK(n >= 1, "tridiagonal system must be non-empty");
  QPINN_CHECK(lower.size() == n && upper.size() == n && rhs.size() == n,
              "tridiagonal bands and rhs must all have length n");

  std::vector<T> c_prime(n);
  std::vector<T> d_prime(n);
  if (magnitude(diag[0]) < 1e-300) {
    throw NumericsError("tridiagonal solve: zero pivot at row 0");
  }
  c_prime[0] = upper[0] / diag[0];
  d_prime[0] = rhs[0] / diag[0];
  for (std::size_t i = 1; i < n; ++i) {
    const T denom = diag[i] - lower[i] * c_prime[i - 1];
    if (magnitude(denom) < 1e-300) {
      throw NumericsError("tridiagonal solve: zero pivot at row " +
                          std::to_string(i));
    }
    c_prime[i] = upper[i] / denom;
    d_prime[i] = (rhs[i] - lower[i] * d_prime[i - 1]) / denom;
  }
  std::vector<T> x(n);
  x[n - 1] = d_prime[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) {
    x[i] = d_prime[i] - c_prime[i] * x[i + 1];
  }
  return x;
}

template <typename T>
std::vector<T> solve_cyclic_tridiagonal(const std::vector<T>& lower,
                                        const std::vector<T>& diag,
                                        const std::vector<T>& upper,
                                        T corner_lower, T corner_upper,
                                        const std::vector<T>& rhs) {
  const std::size_t n = diag.size();
  QPINN_CHECK(n >= 3, "cyclic tridiagonal system needs n >= 3");
  QPINN_CHECK(lower.size() == n && upper.size() == n && rhs.size() == n,
              "cyclic tridiagonal bands and rhs must all have length n");

  // Sherman-Morrison: A = B + u v^T with
  //   u = (gamma, 0, ..., 0, corner_lower)^T,
  //   v = (1, 0, ..., 0, corner_upper / gamma)^T,
  // where B is A with modified corners folded into the diagonal.
  const T gamma = -diag[0];
  std::vector<T> mod_diag = diag;
  mod_diag[0] -= gamma;
  mod_diag[n - 1] -= corner_lower * corner_upper / gamma;

  std::vector<T> u(n, T{});
  u[0] = gamma;
  u[n - 1] = corner_lower;

  const std::vector<T> y = solve_tridiagonal(lower, mod_diag, upper, rhs);
  const std::vector<T> z = solve_tridiagonal(lower, mod_diag, upper, u);

  const T v_dot_y = y[0] + (corner_upper / gamma) * y[n - 1];
  const T v_dot_z = z[0] + (corner_upper / gamma) * z[n - 1];
  const T denom = T{1} + v_dot_z;
  if (magnitude(denom) < 1e-300) {
    throw NumericsError("cyclic tridiagonal solve: singular correction");
  }
  const T factor = v_dot_y / denom;

  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = y[i] - factor * z[i];
  return x;
}

template std::vector<double> solve_tridiagonal(const std::vector<double>&,
                                               const std::vector<double>&,
                                               const std::vector<double>&,
                                               const std::vector<double>&);
template std::vector<std::complex<double>> solve_tridiagonal(
    const std::vector<std::complex<double>>&,
    const std::vector<std::complex<double>>&,
    const std::vector<std::complex<double>>&,
    const std::vector<std::complex<double>>&);
template std::vector<double> solve_cyclic_tridiagonal(
    const std::vector<double>&, const std::vector<double>&,
    const std::vector<double>&, double, double, const std::vector<double>&);
template std::vector<std::complex<double>> solve_cyclic_tridiagonal(
    const std::vector<std::complex<double>>&,
    const std::vector<std::complex<double>>&,
    const std::vector<std::complex<double>>&, std::complex<double>,
    std::complex<double>, const std::vector<std::complex<double>>&);

}  // namespace qpinn::fdm

// Crank-Nicolson integrator for the 1-D time-dependent Schrödinger
// equation  i hbar psi_t = -hbar^2/(2m) psi_xx + V(x) psi.
//
// Unconditionally stable and unitary up to roundoff (the scheme is the
// Cayley transform of H), making it the high-fidelity reference against
// which PINN solutions are scored.
#pragma once

#include <functional>

#include "fdm/grid.hpp"

namespace qpinn::fdm {

enum class Boundary {
  kDirichlet,  ///< psi = 0 at both walls (particle in a box)
  kPeriodic,   ///< psi(lo) = psi(hi)
};

struct CrankNicolsonConfig {
  Grid1d grid;                               ///< spatial grid
  double dt = 1e-3;                          ///< time step
  std::int64_t steps = 100;                  ///< number of steps
  Boundary boundary = Boundary::kDirichlet;  ///< must match grid.periodic
  std::function<double(double)> potential;   ///< V(x); null = free
  double hbar = 1.0;
  double mass = 1.0;
  /// Snapshot stride: state is recorded every `store_every` steps (and at
  /// t=0 and the final time).
  std::int64_t store_every = 1;

  void validate() const;  ///< throws ConfigError on inconsistency
};

struct WaveEvolution {
  std::vector<double> x;                          ///< grid points
  std::vector<double> t;                          ///< snapshot times
  std::vector<std::vector<Complex>> psi;          ///< psi[k][i] at (t_k, x_i)

  /// L2 norm of snapshot k on the stored grid.
  double norm_at(std::size_t k, const Grid1d& grid) const;
};

/// Evolves `psi0` (sampled on config.grid.points()).
WaveEvolution solve_tdse_crank_nicolson(const CrankNicolsonConfig& config,
                                        std::vector<Complex> psi0);

/// Convenience overload sampling psi0 from a callable.
WaveEvolution solve_tdse_crank_nicolson(
    const CrankNicolsonConfig& config,
    const std::function<Complex(double)>& psi0);

}  // namespace qpinn::fdm

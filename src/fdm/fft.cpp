#include "fdm/fft.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace qpinn::fdm {

bool is_power_of_two(std::int64_t n) { return n >= 1 && (n & (n - 1)) == 0; }

void fft_inplace(std::vector<std::complex<double>>& a, bool inverse) {
  const std::size_t n = a.size();
  QPINN_CHECK(is_power_of_two(static_cast<std::int64_t>(n)),
              "fft size must be a power of two, got " + std::to_string(n));
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> w_len(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = a[i + j];
        const std::complex<double> v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= w_len;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : a) v *= inv_n;
  }
}

std::vector<std::complex<double>> fft(std::vector<std::complex<double>> a) {
  fft_inplace(a, false);
  return a;
}

std::vector<std::complex<double>> ifft(std::vector<std::complex<double>> a) {
  fft_inplace(a, true);
  return a;
}

std::vector<double> fft_wavenumbers(std::int64_t n, double dx) {
  QPINN_CHECK(n >= 1, "fft_wavenumbers needs n >= 1");
  QPINN_CHECK(dx > 0.0, "fft_wavenumbers needs dx > 0");
  std::vector<double> k(static_cast<std::size_t>(n));
  const double scale =
      2.0 * std::numbers::pi / (static_cast<double>(n) * dx);
  const std::int64_t half = (n - 1) / 2;
  for (std::int64_t i = 0; i <= half; ++i) {
    k[static_cast<std::size_t>(i)] = scale * static_cast<double>(i);
  }
  for (std::int64_t i = half + 1; i < n; ++i) {
    k[static_cast<std::size_t>(i)] = scale * static_cast<double>(i - n);
  }
  return k;
}

}  // namespace qpinn::fdm

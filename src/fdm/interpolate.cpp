#include "fdm/interpolate.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qpinn::fdm {

std::function<Complex(double, double)> make_interpolant(
    std::shared_ptr<const WaveEvolution> evolution, bool periodic_x) {
  QPINN_CHECK(evolution != nullptr, "interpolant needs an evolution");
  QPINN_CHECK(evolution->x.size() >= 2 && evolution->t.size() >= 2,
              "interpolant needs at least a 2x2 space-time sampling");
  // Snapshot times must be uniform for O(1) lookup.
  const double dt = evolution->t[1] - evolution->t[0];
  for (std::size_t k = 1; k < evolution->t.size(); ++k) {
    const double step = evolution->t[k] - evolution->t[k - 1];
    QPINN_CHECK(std::abs(step - dt) < 1e-9 * std::max(1.0, std::abs(dt)),
                "interpolant requires uniformly spaced snapshots");
  }
  const double dx = evolution->x[1] - evolution->x[0];
  const double x0 = evolution->x.front();
  const double t0 = evolution->t.front();
  const std::size_t nx = evolution->x.size();
  const std::size_t nt = evolution->t.size();

  return [evolution = std::move(evolution), periodic_x, dx, dt, x0, t0, nx,
          nt](double x, double t) -> Complex {
    // Fractional indices, clamped to the stored ranges.
    double fx = (x - x0) / dx;
    double ft = (t - t0) / dt;
    const double max_fx =
        periodic_x ? static_cast<double>(nx) : static_cast<double>(nx - 1);
    fx = std::clamp(fx, 0.0, max_fx - 1e-12);
    ft = std::clamp(ft, 0.0, static_cast<double>(nt - 1) - 1e-12);

    const std::size_t i = static_cast<std::size_t>(fx);
    const std::size_t k = static_cast<std::size_t>(ft);
    const double ax = fx - static_cast<double>(i);
    const double at = ft - static_cast<double>(k);
    const std::size_t i1 = periodic_x ? (i + 1) % nx : std::min(i + 1, nx - 1);
    const std::size_t k1 = std::min(k + 1, nt - 1);

    const Complex f00 = evolution->psi[k][i];
    const Complex f10 = evolution->psi[k][i1];
    const Complex f01 = evolution->psi[k1][i];
    const Complex f11 = evolution->psi[k1][i1];
    return (1.0 - ax) * (1.0 - at) * f00 + ax * (1.0 - at) * f10 +
           (1.0 - ax) * at * f01 + ax * at * f11;
  };
}

}  // namespace qpinn::fdm

// Tridiagonal and cyclic-tridiagonal linear solvers (Thomas algorithm and
// Sherman-Morrison), real and complex — the kernels behind Crank-Nicolson
// and inverse iteration.
#pragma once

#include <complex>
#include <vector>

namespace qpinn::fdm {

/// Solves a tridiagonal system:
///   lower[i] x[i-1] + diag[i] x[i] + upper[i] x[i+1] = rhs[i]
/// with lower[0] and upper[n-1] ignored. Throws NumericsError on a
/// (numerically) singular pivot. T is double or std::complex<double>.
template <typename T>
std::vector<T> solve_tridiagonal(const std::vector<T>& lower,
                                 const std::vector<T>& diag,
                                 const std::vector<T>& upper,
                                 const std::vector<T>& rhs);

/// Solves the cyclic variant where additionally
///   corner_lower couples x[0] into row n-1, and
///   corner_upper couples x[n-1] into row 0
/// (the periodic-boundary Crank-Nicolson matrix). n must be >= 3.
template <typename T>
std::vector<T> solve_cyclic_tridiagonal(const std::vector<T>& lower,
                                        const std::vector<T>& diag,
                                        const std::vector<T>& upper,
                                        T corner_lower, T corner_upper,
                                        const std::vector<T>& rhs);

extern template std::vector<double> solve_tridiagonal(
    const std::vector<double>&, const std::vector<double>&,
    const std::vector<double>&, const std::vector<double>&);
extern template std::vector<std::complex<double>> solve_tridiagonal(
    const std::vector<std::complex<double>>&,
    const std::vector<std::complex<double>>&,
    const std::vector<std::complex<double>>&,
    const std::vector<std::complex<double>>&);
extern template std::vector<double> solve_cyclic_tridiagonal(
    const std::vector<double>&, const std::vector<double>&,
    const std::vector<double>&, double, double, const std::vector<double>&);
extern template std::vector<std::complex<double>> solve_cyclic_tridiagonal(
    const std::vector<std::complex<double>>&,
    const std::vector<std::complex<double>>&,
    const std::vector<std::complex<double>>&, std::complex<double>,
    std::complex<double>, const std::vector<std::complex<double>>&);

}  // namespace qpinn::fdm

#include "fdm/numerov.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qpinn::fdm {

namespace {

/// Shooting integration; returns the full trajectory.
std::vector<double> numerov_trajectory(
    const Grid1d& grid, const std::function<double(double)>& potential,
    double E) {
  QPINN_CHECK(!grid.periodic, "numerov assumes Dirichlet walls");
  QPINN_CHECK(grid.n >= 8, "numerov grid too small");
  const std::vector<double> x = grid.points();
  const double dx = grid.dx();
  const double h2 = dx * dx;

  auto f = [&](double xv) {
    const double v = potential ? potential(xv) : 0.0;
    return 2.0 * (v - E);
  };

  std::vector<double> psi(x.size(), 0.0);
  psi[0] = 0.0;
  psi[1] = dx;  // unit slope start; overall scale is irrelevant
  for (std::size_t i = 1; i + 1 < x.size(); ++i) {
    const double fi = f(x[i]);
    const double fim = f(x[i - 1]);
    const double fip = f(x[i + 1]);
    const double num = 2.0 * (1.0 + 5.0 * h2 / 12.0 * fi) * psi[i] -
                       (1.0 - h2 / 12.0 * fim) * psi[i - 1];
    const double den = 1.0 - h2 / 12.0 * fip;
    psi[i + 1] = num / den;
    // Renormalize occasionally to avoid overflow in classically forbidden
    // regions.
    if (std::abs(psi[i + 1]) > 1e100) {
      const double scale = 1.0 / std::abs(psi[i + 1]);
      for (std::size_t j = 0; j <= i + 1; ++j) psi[j] *= scale;
    }
  }
  return psi;
}

}  // namespace

double numerov_shoot(const Grid1d& grid,
                     const std::function<double(double)>& potential,
                     double E) {
  return numerov_trajectory(grid, potential, E).back();
}

std::int64_t numerov_node_count(const Grid1d& grid,
                                const std::function<double(double)>& potential,
                                double E) {
  const std::vector<double> psi = numerov_trajectory(grid, potential, E);
  std::int64_t nodes = 0;
  for (std::size_t i = 2; i + 1 < psi.size(); ++i) {
    if (psi[i] == 0.0) continue;
    if (psi[i] * psi[i - 1] < 0.0) ++nodes;
  }
  return nodes;
}

std::vector<double> numerov_eigenvalues(
    const Grid1d& grid, const std::function<double(double)>& potential,
    std::int64_t k, double e_min, double e_max, double tol) {
  QPINN_CHECK(k >= 1, "numerov_eigenvalues needs k >= 1");
  QPINN_CHECK(e_max > e_min, "numerov_eigenvalues needs e_max > e_min");

  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(k));
  for (std::int64_t j = 0; j < k; ++j) {
    // Bracket the j-th eigenvalue by node count: below E_j the shooting
    // solution has <= j-1 interior nodes, above it >= j (well-known
    // oscillation property).
    double lo = e_min, hi = e_max;
    // Ensure the bracket actually contains the target node counts.
    QPINN_CHECK(numerov_node_count(grid, potential, hi) >= j + 1,
                "numerov: e_max too small to contain requested state");
    while (hi - lo > tol * std::max(1.0, std::abs(hi))) {
      const double mid = 0.5 * (lo + hi);
      if (numerov_node_count(grid, potential, mid) >= j + 1) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    // Node counting only registers a node once it has moved a cell or two
    // inside the wall, so the transition sits slightly ABOVE the true
    // eigenvalue (relative offset ~ grid cells / domain). Refine on the
    // boundary-value sign change, which flips exactly at the discrete
    // eigenvalue: search downward from the transition for a bracket.
    const double transition = 0.5 * (lo + hi);
    const double cell_fraction =
        grid.dx() / (grid.hi - grid.lo);  // relative width of one cell
    double width =
        8.0 * cell_fraction * std::max(1.0, std::abs(transition));
    double b = transition;
    double fb = numerov_shoot(grid, potential, b);
    bool bracketed = false;
    double a = b;
    double fa = fb;
    for (int expand = 0; expand < 10; ++expand) {
      a = b - width;
      if (a <= e_min) break;
      fa = numerov_shoot(grid, potential, a);
      if (fa * fb < 0.0) {
        bracketed = true;
        break;
      }
      width *= 2.0;
    }
    if (bracketed) {
      while (b - a > tol * std::max(1.0, std::abs(b))) {
        const double mid = 0.5 * (a + b);
        const double fm = numerov_shoot(grid, potential, mid);
        if (fa * fm <= 0.0) {
          b = mid;
        } else {
          a = mid;
          fa = fm;
        }
      }
      values.push_back(0.5 * (a + b));
    } else {
      values.push_back(transition);
    }
  }
  return values;
}

}  // namespace qpinn::fdm

#include "fdm/split_step.hpp"

#include <cmath>

#include "fdm/fft.hpp"
#include "util/error.hpp"

namespace qpinn::fdm {

void SplitStepConfig::validate() const {
  if (!grid.periodic) {
    throw ConfigError("split-step requires a periodic grid");
  }
  if (!is_power_of_two(grid.n)) {
    throw ConfigError("split-step grid size must be a power of two");
  }
  if (dt <= 0.0) throw ConfigError("split-step: dt must be positive");
  if (steps < 1) throw ConfigError("split-step: steps must be >= 1");
  if (store_every < 1) throw ConfigError("split-step: store_every must be >= 1");
}

WaveEvolution solve_split_step(const SplitStepConfig& config,
                               std::vector<Complex> psi0) {
  config.validate();
  const std::size_t n = static_cast<std::size_t>(config.grid.n);
  QPINN_CHECK(psi0.size() == n, "split-step: psi0 size must match grid");

  const std::vector<double> x = config.grid.points();
  const std::vector<double> k = fft_wavenumbers(config.grid.n, config.grid.dx());

  std::vector<double> v(n, 0.0);
  if (config.potential) {
    for (std::size_t i = 0; i < n; ++i) v[i] = config.potential(x[i]);
  }

  // Kinetic full-step phases exp(-i k^2/2 dt).
  std::vector<Complex> kinetic_phase(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = -0.5 * k[i] * k[i] * config.dt;
    kinetic_phase[i] = Complex(std::cos(phase), std::sin(phase));
  }

  WaveEvolution out;
  out.x = x;
  out.t.push_back(0.0);
  out.psi.push_back(psi0);

  std::vector<Complex> psi = std::move(psi0);
  const double g = config.nonlinearity;
  auto apply_half_potential = [&](std::vector<Complex>& field) {
    for (std::size_t i = 0; i < n; ++i) {
      const double phase =
          -(v[i] + g * std::norm(field[i])) * (config.dt / 2.0);
      field[i] *= Complex(std::cos(phase), std::sin(phase));
    }
  };

  for (std::int64_t step = 1; step <= config.steps; ++step) {
    apply_half_potential(psi);
    fft_inplace(psi, /*inverse=*/false);
    for (std::size_t i = 0; i < n; ++i) psi[i] *= kinetic_phase[i];
    fft_inplace(psi, /*inverse=*/true);
    apply_half_potential(psi);

    if (step % config.store_every == 0 || step == config.steps) {
      out.t.push_back(config.dt * static_cast<double>(step));
      out.psi.push_back(psi);
    }
  }
  return out;
}

WaveEvolution solve_split_step(const SplitStepConfig& config,
                               const std::function<Complex(double)>& psi0) {
  QPINN_CHECK(static_cast<bool>(psi0), "split-step: psi0 callable must be set");
  const std::vector<double> x = config.grid.points();
  std::vector<Complex> samples(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) samples[i] = psi0(x[i]);
  return solve_split_step(config, std::move(samples));
}

}  // namespace qpinn::fdm

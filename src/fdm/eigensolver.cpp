#include "fdm/eigensolver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fdm/tridiag.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qpinn::fdm {

std::vector<double> SymTridiag::apply(const std::vector<double>& x) const {
  QPINN_CHECK(x.size() == diag.size(), "SymTridiag::apply size mismatch");
  std::vector<double> y(x.size());
  const std::size_t n = x.size();
  for (std::size_t i = 0; i < n; ++i) {
    double acc = diag[i] * x[i];
    if (i > 0) acc += offdiag[i - 1] * x[i - 1];
    if (i + 1 < n) acc += offdiag[i] * x[i + 1];
    y[i] = acc;
  }
  return y;
}

SymTridiag build_hamiltonian(const Grid1d& grid,
                             const std::function<double(double)>& potential) {
  QPINN_CHECK(!grid.periodic,
              "build_hamiltonian assumes Dirichlet (non-periodic) walls");
  QPINN_CHECK(grid.n >= 4, "eigensolver grid needs at least 4 points");
  const std::vector<double> x = grid.points();
  const double dx = grid.dx();
  const double kinetic = 1.0 / (2.0 * dx * dx);

  const std::size_t interior = static_cast<std::size_t>(grid.n - 2);
  SymTridiag m;
  m.diag.resize(interior);
  m.offdiag.assign(interior - 1, -kinetic);
  for (std::size_t i = 0; i < interior; ++i) {
    const double v = potential ? potential(x[i + 1]) : 0.0;
    m.diag[i] = 2.0 * kinetic + v;
  }
  return m;
}

std::int64_t sturm_count(const SymTridiag& m, double lambda) {
  // Count negative values in the Sturm sequence of pivots of
  // (M - lambda I) = L D L^T; equals the number of eigenvalues < lambda.
  // A pivot that is exactly zero (lambda hits an eigenvalue of a leading
  // submatrix) is handled by Wilkinson's replacement: substitute
  // |off| / eps for off^2 / d so the next pivot is driven hard negative
  // and gets counted exactly once.
  const std::size_t n = m.size();
  std::int64_t count = 0;
  double d = m.diag[0] - lambda;
  if (d < 0.0) ++count;
  for (std::size_t i = 1; i < n; ++i) {
    const double off = m.offdiag[i - 1];
    double correction;
    if (d == 0.0) {
      correction = std::abs(off) / std::numeric_limits<double>::epsilon();
    } else {
      correction = off * off / d;
    }
    d = (m.diag[i] - lambda) - correction;
    if (d < 0.0) ++count;
  }
  return count;
}

namespace {
/// Gershgorin bounds on the spectrum.
std::pair<double, double> spectrum_bounds(const SymTridiag& m) {
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  const std::size_t n = m.size();
  for (std::size_t i = 0; i < n; ++i) {
    double radius = 0.0;
    if (i > 0) radius += std::abs(m.offdiag[i - 1]);
    if (i + 1 < n) radius += std::abs(m.offdiag[i]);
    lo = std::min(lo, m.diag[i] - radius);
    hi = std::max(hi, m.diag[i] + radius);
  }
  return {lo, hi};
}
}  // namespace

std::vector<double> smallest_eigenvalues(const SymTridiag& m, std::int64_t k,
                                         double tol) {
  QPINN_CHECK(k >= 1 && k <= static_cast<std::int64_t>(m.size()),
              "requested eigenvalue count out of range");
  auto [lo, hi] = spectrum_bounds(m);

  std::vector<double> values(static_cast<std::size_t>(k));
  for (std::int64_t j = 0; j < k; ++j) {
    // Bisection for the (j+1)-th smallest eigenvalue: find lambda with
    // sturm_count(lambda) >= j+1 minimal.
    double a = lo, b = hi;
    while (b - a > tol * std::max(1.0, std::abs(b))) {
      const double mid = 0.5 * (a + b);
      if (sturm_count(m, mid) >= j + 1) {
        b = mid;
      } else {
        a = mid;
      }
    }
    values[static_cast<std::size_t>(j)] = 0.5 * (a + b);
  }
  return values;
}

std::vector<EigenPair> smallest_eigenpairs(const SymTridiag& m, std::int64_t k,
                                           double dx, double tol) {
  QPINN_CHECK(dx > 0.0, "dx must be positive");
  const std::vector<double> values = smallest_eigenvalues(m, k, tol);
  const std::size_t n = m.size();

  std::vector<double> lower(n), upper(n);
  std::vector<EigenPair> pairs;
  pairs.reserve(values.size());

  Rng rng(12345);
  for (double lambda : values) {
    // Inverse iteration on (M - (lambda + delta) I); the small shift keeps
    // the system invertible even when lambda is accurate to roundoff.
    const double shift =
        lambda + 10.0 * tol * std::max(1.0, std::abs(lambda));
    std::vector<double> diag(n);
    for (std::size_t i = 0; i < n; ++i) diag[i] = m.diag[i] - shift;
    for (std::size_t i = 0; i < n; ++i) {
      lower[i] = (i > 0) ? m.offdiag[i - 1] : 0.0;
      upper[i] = (i + 1 < n) ? m.offdiag[i] : 0.0;
    }

    std::vector<double> v(n);
    for (auto& value : v) value = rng.normal();
    for (int iteration = 0; iteration < 4; ++iteration) {
      v = solve_tridiagonal(lower, diag, upper, v);
      double norm = 0.0;
      for (double value : v) norm += value * value;
      norm = std::sqrt(norm);
      if (!(norm > 0.0) || !std::isfinite(norm)) {
        throw NumericsError("inverse iteration diverged");
      }
      for (auto& value : v) value /= norm;
    }

    // Grid normalization: sum v^2 dx = 1.
    double grid_norm = 0.0;
    for (double value : v) grid_norm += value * value;
    grid_norm = std::sqrt(grid_norm * dx);
    for (auto& value : v) value /= grid_norm;

    // Deterministic sign: first entry with significant magnitude positive.
    for (double value : v) {
      if (std::abs(value) > 1e-8) {
        if (value < 0.0) {
          for (auto& flip : v) flip = -flip;
        }
        break;
      }
    }
    pairs.push_back(EigenPair{lambda, std::move(v)});
  }
  return pairs;
}

}  // namespace qpinn::fdm

#include "fdm/grid.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qpinn::fdm {

double Grid1d::dx() const {
  QPINN_CHECK(n >= 2, "grid needs at least two points");
  QPINN_CHECK(hi > lo, "grid requires hi > lo");
  return periodic ? (hi - lo) / static_cast<double>(n)
                  : (hi - lo) / static_cast<double>(n - 1);
}

std::vector<double> Grid1d::points() const {
  const double step = dx();
  std::vector<double> x(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = lo + step * static_cast<double>(i);
  }
  if (!periodic) x.back() = hi;
  return x;
}

double trapezoid(const Grid1d& grid, const std::vector<double>& f) {
  QPINN_CHECK(static_cast<std::int64_t>(f.size()) == grid.n,
              "trapezoid: sample count must match grid");
  const double dx = grid.dx();
  if (grid.periodic) {
    double acc = 0.0;
    for (double v : f) acc += v;
    return acc * dx;
  }
  double acc = 0.5 * (f.front() + f.back());
  for (std::size_t i = 1; i + 1 < f.size(); ++i) acc += f[i];
  return acc * dx;
}

Complex trapezoid(const Grid1d& grid, const std::vector<Complex>& f) {
  QPINN_CHECK(static_cast<std::int64_t>(f.size()) == grid.n,
              "trapezoid: sample count must match grid");
  const double dx = grid.dx();
  if (grid.periodic) {
    Complex acc = 0.0;
    for (const Complex& v : f) acc += v;
    return acc * dx;
  }
  Complex acc = 0.5 * (f.front() + f.back());
  for (std::size_t i = 1; i + 1 < f.size(); ++i) acc += f[i];
  return acc * dx;
}

double simpson(const Grid1d& grid, const std::vector<double>& f) {
  QPINN_CHECK(!grid.periodic, "simpson is defined for non-periodic grids");
  QPINN_CHECK(static_cast<std::int64_t>(f.size()) == grid.n,
              "simpson: sample count must match grid");
  QPINN_CHECK(grid.n >= 3 && grid.n % 2 == 1,
              "simpson needs an odd number of points");
  const double dx = grid.dx();
  double acc = f.front() + f.back();
  for (std::int64_t i = 1; i < grid.n - 1; ++i) {
    acc += f[static_cast<std::size_t>(i)] * (i % 2 == 1 ? 4.0 : 2.0);
  }
  return acc * dx / 3.0;
}

double l2_norm(const Grid1d& grid, const std::vector<Complex>& psi) {
  std::vector<double> density(psi.size());
  for (std::size_t i = 0; i < psi.size(); ++i) density[i] = std::norm(psi[i]);
  return std::sqrt(trapezoid(grid, density));
}

void normalize(const Grid1d& grid, std::vector<Complex>& psi) {
  const double norm = l2_norm(grid, psi);
  if (!(norm > 1e-300)) {
    throw NumericsError("cannot normalize a zero wavefunction");
  }
  for (Complex& v : psi) v /= norm;
}

}  // namespace qpinn::fdm

// Strang split-step Fourier integrator for the (nonlinear) Schrödinger
// equation on a periodic domain:
//
//   i psi_t = -1/2 psi_xx + V(x) psi + g |psi|^2 psi
//
// (hbar = m = 1; g = -1 gives the focusing NLS benchmark
//  i psi_t + 1/2 psi_xx + |psi|^2 psi = 0 from Raissi et al. 2019).
// Spectral in space, 2nd order in time; the reference solver for the NLS
// experiments.
#pragma once

#include <functional>

#include "fdm/crank_nicolson.hpp"  // WaveEvolution
#include "fdm/grid.hpp"

namespace qpinn::fdm {

struct SplitStepConfig {
  Grid1d grid;              ///< must be periodic with power-of-two n
  double dt = 1e-4;
  std::int64_t steps = 100;
  std::function<double(double)> potential;  ///< V(x); null = 0
  double nonlinearity = 0.0;                ///< g
  std::int64_t store_every = 1;

  void validate() const;
};

WaveEvolution solve_split_step(const SplitStepConfig& config,
                               std::vector<Complex> psi0);

WaveEvolution solve_split_step(const SplitStepConfig& config,
                               const std::function<Complex(double)>& psi0);

}  // namespace qpinn::fdm

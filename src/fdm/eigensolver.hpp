// Finite-difference eigensolver for the 1-D time-independent Schrödinger
// equation  H psi = E psi,  H = -1/2 d^2/dx^2 + V(x)  (hbar = m = 1),
// with Dirichlet walls.
//
// The symmetric tridiagonal spectrum is located by Sturm-sequence
// bisection (bit-reliable bracketing of the k lowest eigenvalues) and
// eigenvectors are recovered by shifted inverse iteration. This is the
// spectral reference for the eigen-PINN experiments (table T2).
#pragma once

#include <functional>
#include <vector>

#include "fdm/grid.hpp"

namespace qpinn::fdm {

/// A symmetric tridiagonal matrix (diag, offdiag with offdiag.size() ==
/// diag.size() - 1).
struct SymTridiag {
  std::vector<double> diag;
  std::vector<double> offdiag;

  std::size_t size() const { return diag.size(); }
  /// y = M x.
  std::vector<double> apply(const std::vector<double>& x) const;
};

/// Discretizes H on the interior points of `grid` (Dirichlet: boundary
/// values are pinned to zero and excluded from the matrix).
SymTridiag build_hamiltonian(const Grid1d& grid,
                             const std::function<double(double)>& potential);

/// Number of eigenvalues of M strictly less than `lambda` (Sturm count).
std::int64_t sturm_count(const SymTridiag& m, double lambda);

/// The k smallest eigenvalues by bisection, to absolute tolerance `tol`.
std::vector<double> smallest_eigenvalues(const SymTridiag& m, std::int64_t k,
                                         double tol = 1e-10);

struct EigenPair {
  double value = 0.0;
  std::vector<double> vector;  ///< interior values, L2-grid-normalized
};

/// Eigenpairs for the k lowest states: values via Sturm bisection, vectors
/// via inverse iteration; vectors are normalized so sum(v^2) dx = 1 and
/// sign-fixed (first significant entry positive).
std::vector<EigenPair> smallest_eigenpairs(const SymTridiag& m, std::int64_t k,
                                           double dx, double tol = 1e-10);

}  // namespace qpinn::fdm

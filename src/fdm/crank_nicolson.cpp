#include "fdm/crank_nicolson.hpp"

#include <cmath>

#include "fdm/tridiag.hpp"
#include "util/error.hpp"

namespace qpinn::fdm {

void CrankNicolsonConfig::validate() const {
  if (grid.n < 3) throw ConfigError("CN: grid needs at least 3 points");
  if (dt <= 0.0) throw ConfigError("CN: dt must be positive");
  if (steps < 1) throw ConfigError("CN: steps must be >= 1");
  if (store_every < 1) throw ConfigError("CN: store_every must be >= 1");
  if (hbar <= 0.0 || mass <= 0.0) {
    throw ConfigError("CN: hbar and mass must be positive");
  }
  if ((boundary == Boundary::kPeriodic) != grid.periodic) {
    throw ConfigError("CN: boundary kind must match grid.periodic");
  }
}

double WaveEvolution::norm_at(std::size_t k, const Grid1d& grid) const {
  QPINN_CHECK(k < psi.size(), "snapshot index out of range");
  return l2_norm(grid, psi[k]);
}

WaveEvolution solve_tdse_crank_nicolson(const CrankNicolsonConfig& config,
                                        std::vector<Complex> psi0) {
  config.validate();
  const std::size_t n = static_cast<std::size_t>(config.grid.n);
  QPINN_CHECK(psi0.size() == n, "CN: psi0 size must match grid");

  const std::vector<double> x = config.grid.points();
  const double dx = config.grid.dx();
  const double kinetic =
      config.hbar * config.hbar / (2.0 * config.mass * dx * dx);

  // H is tridiagonal: diag_i = 2*kinetic + V_i, offdiag = -kinetic
  // (plus corner couplings when periodic).
  std::vector<double> v(n, 0.0);
  if (config.potential) {
    for (std::size_t i = 0; i < n; ++i) v[i] = config.potential(x[i]);
  }

  // CN matrices: A = I + i dt/(2 hbar) H (implicit), B = I - i dt/(2 hbar) H.
  const Complex ifac = Complex(0.0, config.dt / (2.0 * config.hbar));
  std::vector<Complex> a_lower(n), a_diag(n), a_upper(n);
  std::vector<Complex> b_lower(n), b_diag(n), b_upper(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double h_diag = 2.0 * kinetic + v[i];
    a_diag[i] = Complex(1.0, 0.0) + ifac * h_diag;
    b_diag[i] = Complex(1.0, 0.0) - ifac * h_diag;
    const Complex a_off = ifac * (-kinetic);
    const Complex b_off = -ifac * (-kinetic);
    a_lower[i] = a_upper[i] = a_off;
    b_lower[i] = b_upper[i] = b_off;
  }
  const bool periodic = config.boundary == Boundary::kPeriodic;
  const Complex a_corner = ifac * (-kinetic);
  const Complex b_corner = -ifac * (-kinetic);

  WaveEvolution out;
  out.x = x;
  out.t.push_back(0.0);
  out.psi.push_back(psi0);

  std::vector<Complex> psi = std::move(psi0);
  std::vector<Complex> rhs(n);
  for (std::int64_t step = 1; step <= config.steps; ++step) {
    // rhs = B psi.
    for (std::size_t i = 0; i < n; ++i) {
      Complex acc = b_diag[i] * psi[i];
      if (i > 0) acc += b_lower[i] * psi[i - 1];
      if (i + 1 < n) acc += b_upper[i] * psi[i + 1];
      rhs[i] = acc;
    }
    if (periodic) {
      rhs[0] += b_corner * psi[n - 1];
      rhs[n - 1] += b_corner * psi[0];
      psi = solve_cyclic_tridiagonal(a_lower, a_diag, a_upper, a_corner,
                                     a_corner, rhs);
    } else {
      psi = solve_tridiagonal(a_lower, a_diag, a_upper, rhs);
    }

    if (step % config.store_every == 0 || step == config.steps) {
      out.t.push_back(config.dt * static_cast<double>(step));
      out.psi.push_back(psi);
    }
  }
  return out;
}

WaveEvolution solve_tdse_crank_nicolson(
    const CrankNicolsonConfig& config,
    const std::function<Complex(double)>& psi0) {
  QPINN_CHECK(static_cast<bool>(psi0), "CN: psi0 callable must be set");
  const std::vector<double> x = config.grid.points();
  std::vector<Complex> samples(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) samples[i] = psi0(x[i]);
  if (config.boundary == Boundary::kDirichlet) {
    samples.front() = 0.0;
    samples.back() = 0.0;
  }
  return solve_tdse_crank_nicolson(config, std::move(samples));
}

}  // namespace qpinn::fdm

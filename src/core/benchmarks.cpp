#include "core/benchmarks.hpp"

#include <cmath>
#include <numbers>

#include "core/trainer.hpp"
#include "fdm/interpolate.hpp"
#include "fdm/split_step.hpp"
#include "quantum/potentials.hpp"

namespace qpinn::core {

namespace {
void apply_overrides(SchrodingerProblem::Config& config,
                     const BenchmarkOverrides& overrides) {
  config.weight_norm = overrides.weight_norm;
  config.weight_ic = overrides.weight_ic;
  config.weight_bc = overrides.weight_bc;
}
}  // namespace

std::shared_ptr<SchrodingerProblem> make_free_packet_problem(
    const BenchmarkOverrides& overrides) {
  constexpr double x0 = -1.0, k0 = 1.0, sigma0 = 0.6;
  SchrodingerProblem::Config config;
  config.name = "free_packet";
  config.domain = Domain{-4.0, 4.0, 0.0, 0.75};
  config.potential = nullptr;  // V = 0
  config.initial = gaussian_packet_ic(x0, k0, sigma0);
  config.reference_field = quantum::free_gaussian_packet(x0, k0, sigma0);
  config.periodic_x = false;
  config.norm_target = 1.0;
  apply_overrides(config, overrides);
  return std::make_shared<SchrodingerProblem>(std::move(config));
}

std::shared_ptr<SchrodingerProblem> make_ho_coherent_problem(
    const BenchmarkOverrides& overrides) {
  constexpr double x0 = 0.5;
  SchrodingerProblem::Config config;
  config.name = "ho_coherent";
  config.domain = Domain{-5.0, 5.0, 0.0, 1.5};
  config.potential = harmonic_potential_op(1.0);
  config.initial = coherent_state_ic(x0);
  config.reference_field = quantum::ho_coherent_state(x0);
  config.periodic_x = false;
  config.norm_target = 1.0;
  apply_overrides(config, overrides);
  return std::make_shared<SchrodingerProblem>(std::move(config));
}

std::shared_ptr<SchrodingerProblem> make_well_superposition_problem(
    const BenchmarkOverrides& overrides) {
  constexpr double width = 1.0;
  const double c = 1.0 / std::numbers::sqrt2;
  SchrodingerProblem::Config config;
  config.name = "well_beat";
  config.domain = Domain{0.0, width, 0.0, 0.4};
  config.potential = nullptr;  // box walls via Dirichlet loss
  config.initial = well_superposition_ic(width, {c, c});
  config.reference_field = quantum::well_superposition(
      width, {quantum::Complex(c, 0.0), quantum::Complex(c, 0.0)});
  config.periodic_x = false;
  config.norm_target = 1.0;
  apply_overrides(config, overrides);
  return std::make_shared<SchrodingerProblem>(std::move(config));
}

std::shared_ptr<SchrodingerProblem> make_nls_soliton_problem(
    const BenchmarkOverrides& overrides) {
  constexpr double amplitude = 1.0, velocity = 0.5;
  SchrodingerProblem::Config config;
  config.name = "nls_soliton";
  config.domain = Domain{-5.0, 5.0, 0.0, 0.5};
  config.potential = nullptr;
  config.nonlinearity = -1.0;  // focusing NLS
  config.initial = soliton_ic(amplitude, velocity);
  config.reference_field = quantum::nls_bright_soliton(amplitude, velocity);
  config.periodic_x = true;
  // mass = integral a^2 sech^2(a x) dx = 2 a.
  config.norm_target = 2.0 * amplitude;
  apply_overrides(config, overrides);
  return std::make_shared<SchrodingerProblem>(std::move(config));
}

std::shared_ptr<SchrodingerProblem> make_nls_raissi_problem(
    const BenchmarkOverrides& overrides) {
  const double t_final = std::numbers::pi / 2.0;

  // Reference by split-step Fourier (no closed form for the 2 sech x
  // bound state; it is a higher-order soliton).
  fdm::SplitStepConfig solver;
  solver.grid = fdm::Grid1d{-5.0, 5.0, 256, /*periodic=*/true};
  solver.steps = 1600;
  solver.dt = t_final / static_cast<double>(solver.steps);
  solver.nonlinearity = -1.0;
  solver.store_every = 8;
  auto evolution = std::make_shared<fdm::WaveEvolution>(solve_split_step(
      solver, [](double x) { return quantum::nls_raissi_initial(x); }));

  SchrodingerProblem::Config config;
  config.name = "nls_raissi";
  config.domain = Domain{-5.0, 5.0, 0.0, t_final};
  config.potential = nullptr;
  config.nonlinearity = -1.0;
  config.initial = sech_ic(2.0);
  config.reference_field =
      fdm::make_interpolant(std::move(evolution), /*periodic_x=*/true);
  config.periodic_x = true;
  // mass = integral 4 sech^2 x dx = 8.
  config.norm_target = 8.0;
  apply_overrides(config, overrides);
  return std::make_shared<SchrodingerProblem>(std::move(config));
}

FieldModelConfig default_model_config(const SchrodingerProblem& problem,
                                      std::uint64_t seed) {
  FieldModelConfig config;
  config.hidden = {64, 64, 64, 64};
  config.activation = nn::Activation::kTanh;
  config.fourier = nn::FourierConfig{64, 1.0};
  config.x_period =
      problem.periodic_x() ? problem.domain().x_span() : 0.0;
  const Domain& d = problem.domain();
  config.normalization =
      InputNormalization::for_domain(d.x_lo, d.x_hi, d.t_lo, d.t_hi);
  config.seed = seed;
  return config;
}

std::shared_ptr<FieldModel> make_model_for(const SchrodingerProblem& problem,
                                           std::uint64_t seed, bool hard_ic) {
  FieldModelConfig config = default_model_config(problem, seed);
  if (hard_ic) {
    config.hard_ic = HardIc{problem.config().initial, problem.domain().t_lo};
  }
  return make_field_model(config);
}

TrainConfig default_train_config(std::int64_t epochs, std::uint64_t seed) {
  TrainConfig config;
  config.epochs = epochs;
  config.adam.lr = 2e-3;
  config.lr_decay = 0.9;
  config.lr_decay_every = std::max<std::int64_t>(1, epochs / 4);
  config.sampling.kind = SamplerKind::kLatinHypercube;
  config.sampling.n_interior_x = 30;
  config.sampling.n_interior_t = 30;
  config.sampling.n_initial = 64;
  config.sampling.n_boundary = 32;
  config.sampling.seed = seed;
  config.resample_every = 1;
  config.metric_nx = 64;
  config.metric_nt = 24;
  return config;
}

}  // namespace qpinn::core

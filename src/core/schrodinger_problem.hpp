// The (non)linear Schrödinger problem family (hbar = m = 1):
//
//   i psi_t = -1/2 psi_xx + V(x) psi + g |psi|^2 psi
//
// g = 0 is the linear TDSE; g = -1 the focusing NLS benchmark. With
// psi = u + i v the real residual system driven to zero is
//
//   r1 = -v_t + 1/2 u_xx - (V + g (u^2+v^2)) u
//   r2 =  u_t + 1/2 v_xx - (V + g (u^2+v^2)) v
#pragma once

#include "core/problem.hpp"

namespace qpinn::core {

class SchrodingerProblem : public Problem {
 public:
  struct Config {
    std::string name = "tdse";
    Domain domain;
    /// V(x) as a differentiable op; null means V = 0.
    PotentialOp potential;
    /// g in the cubic term.
    double nonlinearity = 0.0;
    /// psi(x, t_lo) as a differentiable op (required unless the model has
    /// a hard IC, but keep it set: it also seeds the IC loss and norm
    /// target checks).
    FieldOp initial;
    /// Ground truth for metrics.
    quantum::SpaceTimeField reference_field;
    bool periodic_x = false;
    /// Auxiliary loss weights; 0 disables a term.
    double weight_ic = 10.0;
    double weight_bc = 10.0;   ///< soft Dirichlet walls (ignored if periodic)
    double weight_norm = 0.0;  ///< global norm-conservation penalty
    /// Norm-conservation quadrature: nx points per slice, nt slices.
    std::int64_t norm_quad_nx = 64;
    std::int64_t norm_quad_nt = 8;
    /// Target value of the conserved integral |psi|^2 dx.
    double norm_target = 1.0;

    void validate() const;
  };

  explicit SchrodingerProblem(Config config);

  std::string name() const override { return config_.name; }
  Domain domain() const override { return config_.domain; }
  autodiff::Variable residual(FieldModel& model,
                              const autodiff::Variable& X) const override;
  std::int64_t residual_dim() const override { return 2; }
  std::vector<LossTerm> auxiliary_losses(
      FieldModel& model, const CollocationSet& points) const override;
  quantum::SpaceTimeField reference() const override {
    return config_.reference_field;
  }
  bool periodic_x() const override { return config_.periodic_x; }

  const Config& config() const { return config_; }

  /// The norm-conservation penalty alone (exposed for the F3 experiment).
  autodiff::Variable norm_conservation_loss(FieldModel& model) const;

 private:
  Config config_;
};

}  // namespace qpinn::core

// Accuracy and physics-fidelity metrics for trained field models.
#pragma once

#include <vector>

#include "core/domain.hpp"
#include "core/field_model.hpp"
#include "quantum/analytic.hpp"

namespace qpinn::core {

/// Samples the reference field at each (x, t) row of X; returns (N, 2)
/// columns (Re psi, Im psi).
Tensor sample_reference(const quantum::SpaceTimeField& reference,
                        const Tensor& X);

/// Relative L2 error over a dense nx x nt evaluation grid:
///   sqrt( sum |psi_model - psi_ref|^2 / sum |psi_ref|^2 ).
double relative_l2(FieldModel& model, const quantum::SpaceTimeField& reference,
                   const Domain& domain, std::int64_t nx, std::int64_t nt);

/// Maximum pointwise |psi_model - psi_ref| on the grid.
double max_abs_error(FieldModel& model,
                     const quantum::SpaceTimeField& reference,
                     const Domain& domain, std::int64_t nx, std::int64_t nt);

/// Total probability integral of the model at each requested time
/// (trapezoid over nx points) — the conserved quantity whose drift the F3
/// experiment tracks.
std::vector<double> norm_series(FieldModel& model, const Domain& domain,
                                std::int64_t nx,
                                const std::vector<double>& times);

/// Largest |N(t) - N(t_0)| over the series.
double max_norm_drift(const std::vector<double>& series);

}  // namespace qpinn::core

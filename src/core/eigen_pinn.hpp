// Eigenvalue PINN for the time-independent Schrödinger equation
// (Jin, Mattheakis & Protopapas style):
//
//   H psi = E psi,  H = -1/2 d2/dx2 + V(x),  Dirichlet walls,
//
// with E a trainable scalar. The loss combines the eigen-residual MSE,
// a normalization penalty (integral psi^2 dx = 1), and orthogonality
// penalties against previously found states (spectral deflation), so the
// spectrum is recovered state by state from the ground state up.
// Dirichlet boundary conditions are enforced exactly by the envelope
// psi = (x - a)(b - x) * NN(x).
#pragma once

#include <memory>
#include <vector>

#include "core/field_ops.hpp"
#include "nn/mlp.hpp"
#include "optim/adam.hpp"

namespace qpinn::core {

struct EigenPinnConfig {
  double x_lo = 0.0;
  double x_hi = 1.0;
  std::int64_t n_collocation = 128;
  PotentialOp potential;  ///< null = 0 (pure box)

  std::vector<std::int64_t> hidden = {32, 32, 32};
  nn::Activation activation = nn::Activation::kTanh;
  std::uint64_t seed = 0;

  std::int64_t epochs = 4000;
  optim::AdamConfig adam{};  ///< adam.lr defaults to 1e-3

  double weight_residual = 1.0;
  double weight_norm = 10.0;
  double weight_ortho = 10.0;
  /// Penalty (E - E_guess)^2 weight during an initial window; anchors the
  /// search near the requested part of the spectrum, then is released.
  double weight_energy_anchor = 1.0;
  std::int64_t anchor_epochs = 500;

  std::int64_t log_every = 0;

  void validate() const;
};

struct EigenState {
  double energy = 0.0;
  std::vector<double> x;    ///< collocation grid
  std::vector<double> psi;  ///< normalized, sign-fixed wavefunction
  double residual_loss = 0.0;
};

class EigenPinn {
 public:
  explicit EigenPinn(EigenPinnConfig config);

  /// Trains one state with the given energy initialization, orthogonal to
  /// `lower_states`.
  EigenState solve_state(double energy_guess,
                         const std::vector<EigenState>& lower_states) const;

  /// Recovers the k lowest states using the provided energy guesses
  /// (guesses.size() == k). Guesses typically come from WKB estimates or a
  /// coarse Numerov sweep.
  std::vector<EigenState> solve_spectrum(
      const std::vector<double>& energy_guesses) const;

  const EigenPinnConfig& config() const { return config_; }

 private:
  EigenPinnConfig config_;
};

}  // namespace qpinn::core

// 2+1-dimensional time-dependent Schrödinger equation — the
// "scale to higher dimensions" extension:
//
//   i psi_t = -1/2 (psi_xx + psi_yy) + V(x, y) psi,   hbar = m = 1.
//
// The solver is self-contained (its own sampling, residual assembly, and
// training loop) because the 1+1-D Problem/Trainer abstractions are
// specialized to (x, t) inputs; it reuses every substrate underneath
// (autodiff, nn, optim, metrics conventions). The benchmark solution is
// the separable free Gaussian packet psi(x,t) * psi(y,t), exact because
// the free 2-D Hamiltonian separates.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "nn/mlp.hpp"
#include "quantum/analytic.hpp"
#include "util/rng.hpp"

namespace qpinn::core {

/// Rectangular (x, y) x time domain.
struct Domain2d {
  double x_lo = -1.0, x_hi = 1.0;
  double y_lo = -1.0, y_hi = 1.0;
  double t_lo = 0.0, t_hi = 1.0;
  void validate() const;
};

/// psi(x, y, t).
using SpaceTimeField2d = std::function<quantum::Complex(double, double, double)>;

/// The exact separable free packet: product of two 1-D packets.
SpaceTimeField2d free_gaussian_packet_2d(double x0, double kx, double sigma_x,
                                         double y0, double ky, double sigma_y);

/// Differentiable 2-D initial condition: (u0, v0) built from column
/// Variables of x and y. Must be op-expressible because the hard-IC
/// transform differentiates psi0 with respect to x and y inside the PDE
/// residual.
using FieldOp2d = std::function<std::pair<autodiff::Variable, autodiff::Variable>(
    const autodiff::Variable& x, const autodiff::Variable& y)>;

/// psi0 of the separable Gaussian packet as ops.
FieldOp2d gaussian_packet_2d_ic(double x0, double kx, double sigma_x,
                                double y0, double ky, double sigma_y);

struct Tdse2dConfig {
  Domain2d domain;
  /// V(x, y) as a plain callable used to build per-batch constant columns
  /// (potentials without trainable parts need no graph).
  std::function<double(double, double)> potential;  ///< null = free
  /// Exact reference for metrics (required).
  SpaceTimeField2d reference;
  /// Initial condition as differentiable ops (required; enforced exactly
  /// by the hard-IC ramp psi = psi0 + (t - t_lo) NN, which is what made
  /// the 1-D benchmarks converge).
  FieldOp2d initial;

  std::vector<std::int64_t> hidden = {48, 48, 48};
  nn::Activation activation = nn::Activation::kTanh;
  std::optional<nn::FourierConfig> fourier = nn::FourierConfig{24, 1.0};
  std::uint64_t seed = 0;

  std::int64_t epochs = 1000;
  double lr = 2e-3;
  double lr_decay = 0.9;
  std::int64_t lr_decay_every = 500;
  std::int64_t n_interior = 1024;  ///< fresh LHS points per epoch
  std::int64_t log_every = 0;

  void validate() const;
};

struct Tdse2dResult {
  double final_loss = 0.0;
  double final_l2 = 0.0;  ///< relative L2 on an evaluation grid
  double seconds = 0.0;
  std::vector<double> loss_history;
};

class Tdse2dSolver {
 public:
  explicit Tdse2dSolver(Tdse2dConfig config);

  /// Trains and reports the final metric.
  Tdse2dResult fit();

  /// (N, 2) prediction (Re, Im) for (x, y, t) rows.
  Tensor evaluate(const Tensor& points);

  /// Relative L2 against the reference on an nx x ny x nt grid.
  double relative_l2(std::int64_t nx, std::int64_t ny, std::int64_t nt);

  /// The PDE residual matrix (N, 2) at given points (exposed for tests:
  /// an exact solution must yield ~0).
  Tensor residual_at(const Tensor& points);

 private:
  autodiff::Variable forward(const autodiff::Variable& X);
  autodiff::Variable residual(const autodiff::Variable& X);

  Tdse2dConfig config_;
  std::unique_ptr<nn::Mlp> net_;
  Rng rng_;
};

/// n Latin-hypercube samples of (x, y, t) in the domain.
Tensor latin_hypercube_points_2d(const Domain2d& domain, std::int64_t n,
                                 Rng& rng);

}  // namespace qpinn::core

#include "core/checkpoint.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <vector>

#include "util/atomic_io.hpp"
#include "util/binary_io.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace qpinn::core {

namespace {

// Section tags of the v2 training checkpoint. Unknown tags are skipped on
// load, so new sections can be added without breaking old readers.
constexpr char kSectionEpoch[] = "epoch";
constexpr char kSectionOptim[] = "optim";
constexpr char kSectionRng[] = "rng";
constexpr char kSectionRecovery[] = "recovery";
constexpr char kSectionColloc[] = "colloc";

// Integrity trailer appended after the last section: a magic word and the
// CRC-32 of every byte before the trailer. Readers treat the trailer as
// optional so CRC-less files from older writers still load.
constexpr std::uint32_t kCrcTrailerMagic = 0x43524351u;  // "QCRC"
constexpr std::size_t kCrcTrailerBytes = 2 * sizeof(std::uint32_t);

void write_section(std::ostream& out, const std::string& tag,
                   const std::string& payload) {
  write_string(out, tag);
  write_string(out, payload);
}

std::string payload_of(const std::function<void(std::ostream&)>& writer) {
  std::ostringstream out(std::ios::binary);
  writer(out);
  return out.str();
}

/// Bytes of `total` not yet consumed from `in`; the upper bound for any
/// length field read next, so a hostile length can never outrun the file.
std::uint64_t remaining_bytes(std::istream& in, std::uint64_t total) {
  const auto pos = in.tellg();
  if (pos < 0) return 0;
  const auto consumed = static_cast<std::uint64_t>(pos);
  return consumed > total ? 0 : total - consumed;
}

}  // namespace

void CheckpointConfig::validate() const {
  if (dir.empty()) throw ConfigError("CheckpointConfig: dir must be set");
  if (every < 0) throw ConfigError("CheckpointConfig: every must be >= 0");
  if (max_write_retries < 0) {
    throw ConfigError("CheckpointConfig: max_write_retries must be >= 0");
  }
}

Checkpointer::Checkpointer(CheckpointConfig config)
    : config_(std::move(config)) {
  config_.validate();
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) {
    throw IoError("cannot create checkpoint directory '" + config_.dir +
                  "': " + ec.message());
  }
}

std::string Checkpointer::last_path() const {
  return config_.dir + "/last.qckpt";
}

std::string Checkpointer::best_path() const {
  return config_.dir + "/best.qckpt";
}

bool Checkpointer::save_last(const nn::NamedParams& params,
                             const TrainingState& state) {
  return save_with_retry(last_path(), params, state);
}

bool Checkpointer::save_best(const nn::NamedParams& params,
                             const TrainingState& state) {
  if (!config_.keep_best) return false;
  return save_with_retry(best_path(), params, state);
}

bool Checkpointer::save_with_retry(const std::string& path,
                                   const nn::NamedParams& params,
                                   const TrainingState& state) {
  for (int attempt = 0; attempt <= config_.max_write_retries; ++attempt) {
    try {
      save_state(path, params, state);
      return true;
    } catch (const IoError& e) {
      ++failed_writes_;
      log::warn() << "checkpoint write to '" << path << "' failed (attempt "
                  << (attempt + 1) << "): " << e.what();
    }
  }
  log::warn() << "giving up on checkpoint '" << path
              << "' after retries; training continues";
  return false;
}

void Checkpointer::save_state(const std::string& path,
                              const nn::NamedParams& params,
                              const TrainingState& state) {
  // Assemble the whole body in memory first so the trailing CRC-32 can
  // cover it; checkpoints are small relative to training state in RAM.
  const std::string body = payload_of([&](std::ostream& out) {
    nn::write_header(out);
    nn::write_param_block(out, params);

    std::vector<std::pair<std::string, std::string>> sections;
    sections.emplace_back(kSectionEpoch, payload_of([&](std::ostream& s) {
                            write_pod(s, state.epoch);
                          }));
    sections.emplace_back(
        kSectionOptim, payload_of([&](std::ostream& s) {
          write_pod(s, state.optimizer.step_count);
          write_pod(s,
                    static_cast<std::uint64_t>(state.optimizer.scalars.size()));
          for (double v : state.optimizer.scalars) write_pod(s, v);
          write_pod(s,
                    static_cast<std::uint64_t>(state.optimizer.slots.size()));
          for (const Tensor& t : state.optimizer.slots) nn::write_tensor(s, t);
        }));
    sections.emplace_back(kSectionRng, payload_of([&](std::ostream& s) {
                            for (int i = 0; i < 4; ++i) {
                              write_pod(s, state.resample_rng.s[i]);
                            }
                            write_pod(s, std::uint8_t{
                                             state.resample_rng
                                                 .has_cached_normal});
                            write_pod(s, state.resample_rng.cached_normal);
                          }));
    sections.emplace_back(kSectionRecovery, payload_of([&](std::ostream& s) {
                            write_pod(s, state.lr_scale);
                            write_pod(s, state.recoveries);
                            write_pod(s, state.best_loss);
                          }));
    if (state.has_interior) {
      sections.emplace_back(kSectionColloc, payload_of([&](std::ostream& s) {
                              nn::write_tensor(s, state.interior);
                            }));
    }

    write_pod(out, static_cast<std::uint32_t>(sections.size()));
    for (const auto& [tag, payload] : sections) {
      write_section(out, tag, payload);
    }
  });
  write_file_atomic(path, [&](std::ostream& out) {
    out.write(body.data(), static_cast<std::streamsize>(body.size()));
    write_pod(out, kCrcTrailerMagic);
    write_pod(out, crc32(body));
    if (!out) throw IoError("failed while writing checkpoint '" + path + "'");
  });
}

namespace {

std::string slurp_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw IoError("cannot open checkpoint '" + path + "'");
  std::ostringstream raw(std::ios::binary);
  raw << file.rdbuf();
  return std::move(raw).str();
}

}  // namespace

TrainingState Checkpointer::load_state(const std::string& path,
                                       const nn::NamedParams& params) {
  return load_state_from_bytes(slurp_file(path), params, path);
}

TrainingState Checkpointer::load_state_from_bytes(
    std::string bytes, const nn::NamedParams& params,
    const std::string& label) {
  return parse_state(std::move(bytes), &params, label);
}

TrainingState Checkpointer::peek_state(const std::string& path) {
  return peek_state_from_bytes(slurp_file(path), path);
}

TrainingState Checkpointer::peek_state_from_bytes(std::string bytes,
                                                  const std::string& label) {
  return parse_state(std::move(bytes), nullptr, label);
}

TrainingState Checkpointer::parse_state(std::string bytes,
                                        const nn::NamedParams* params,
                                        const std::string& label) {
  std::string body = std::move(bytes);

  // Verify and strip the integrity trailer when present; files from
  // writers that predate the trailer parse exactly as before.
  if (body.size() >= kCrcTrailerBytes) {
    std::uint32_t magic = 0;
    std::memcpy(&magic, body.data() + body.size() - kCrcTrailerBytes,
                sizeof(magic));
    if (magic == kCrcTrailerMagic) {
      std::uint32_t stored = 0;
      std::memcpy(&stored, body.data() + body.size() - sizeof(stored),
                  sizeof(stored));
      body.resize(body.size() - kCrcTrailerBytes);
      if (stored != crc32(body)) {
        throw CheckpointError("checkpoint '" + label +
                              "' failed its CRC-32 integrity check (torn "
                              "or corrupt file)");
      }
    }
  }

  std::istringstream in(body, std::ios::binary);
  const std::uint64_t size = body.size();

  const std::uint32_t version = nn::read_header(in, label);
  if (version < nn::kCheckpointVersion) {
    throw CheckpointError(
        "'" + label +
        "' is a parameter-only (v1) checkpoint and holds no "
        "training state to resume from");
  }
  if (params != nullptr) {
    nn::read_param_block(in, *params, size);
  } else {
    nn::skip_param_block(in, size);
  }

  const auto n_sections = read_pod<std::uint32_t>(in, "section count");
  if (n_sections > nn::kMaxSectionCount) {
    throw CheckpointError("section count " + std::to_string(n_sections) +
                          " exceeds limit " +
                          std::to_string(nn::kMaxSectionCount));
  }

  TrainingState state;
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    // Both length prefixes are bounded by the bytes actually left in the
    // file, so a truncated section fails the bound check up front instead
    // of allocating and then hitting a short read.
    const std::string tag = read_string(
        in, std::min<std::uint64_t>(nn::kMaxSectionTagLen,
                                    remaining_bytes(in, size)),
        "section tag");
    const std::string payload = read_string(in, remaining_bytes(in, size),
                                            "section '" + tag + "'");
    std::istringstream s(payload, std::ios::binary);
    if (tag == kSectionEpoch) {
      state.epoch = read_pod<std::int64_t>(s, "epoch");
    } else if (tag == kSectionOptim) {
      state.optimizer.step_count =
          read_pod<std::int64_t>(s, "optimizer step count");
      const auto n_scalars =
          read_pod<std::uint64_t>(s, "optimizer scalar count");
      if (n_scalars > payload.size() / sizeof(double)) {
        throw CheckpointError("optimizer scalar count " +
                              std::to_string(n_scalars) +
                              " exceeds the section payload");
      }
      state.optimizer.scalars.reserve(n_scalars);
      for (std::uint64_t k = 0; k < n_scalars; ++k) {
        state.optimizer.scalars.push_back(
            read_pod<double>(s, "optimizer scalar"));
      }
      const auto n_slots = read_pod<std::uint64_t>(s, "optimizer slot count");
      if (n_slots > payload.size() / sizeof(double)) {
        throw CheckpointError("optimizer slot count " +
                              std::to_string(n_slots) +
                              " exceeds the section payload");
      }
      state.optimizer.slots.reserve(n_slots);
      for (std::uint64_t k = 0; k < n_slots; ++k) {
        state.optimizer.slots.push_back(
            nn::read_tensor(s, payload.size(), "optimizer slot"));
      }
    } else if (tag == kSectionRng) {
      for (int k = 0; k < 4; ++k) {
        state.resample_rng.s[k] = read_pod<std::uint64_t>(s, "rng state");
      }
      state.resample_rng.has_cached_normal =
          read_pod<std::uint8_t>(s, "rng cache flag") != 0;
      state.resample_rng.cached_normal = read_pod<double>(s, "rng cache");
    } else if (tag == kSectionRecovery) {
      state.lr_scale = read_pod<double>(s, "lr scale");
      state.recoveries = read_pod<std::int64_t>(s, "recovery count");
      state.best_loss = read_pod<double>(s, "best loss");
    } else if (tag == kSectionColloc) {
      state.interior = nn::read_tensor(s, payload.size(), "collocation");
      state.has_interior = true;
    }
    // Unknown tags: payload already consumed, simply skipped.
  }
  return state;
}

}  // namespace qpinn::core

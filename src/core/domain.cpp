#include "core/domain.hpp"

#include "util/error.hpp"

namespace qpinn::core {

void Domain::validate() const {
  if (!(x_hi > x_lo) || !(t_hi > t_lo)) {
    throw ConfigError("Domain must satisfy x_hi > x_lo and t_hi > t_lo");
  }
}

SamplerKind parse_sampler(const std::string& name) {
  if (name == "grid") return SamplerKind::kGrid;
  if (name == "uniform") return SamplerKind::kUniformRandom;
  if (name == "lhs" || name == "latin") return SamplerKind::kLatinHypercube;
  throw ValueError("unknown sampler '" + name + "'");
}

std::string to_string(SamplerKind kind) {
  switch (kind) {
    case SamplerKind::kGrid: return "grid";
    case SamplerKind::kUniformRandom: return "uniform";
    case SamplerKind::kLatinHypercube: return "lhs";
  }
  throw ValueError("invalid SamplerKind");
}

Tensor grid_points(const Domain& domain, std::int64_t nx, std::int64_t nt,
                   bool skip_initial_slice) {
  domain.validate();
  QPINN_CHECK(nx >= 2 && nt >= 2, "grid_points needs nx, nt >= 2");
  const Tensor xs = Tensor::linspace(domain.x_lo, domain.x_hi, nx);
  const Tensor ts = Tensor::linspace(domain.t_lo, domain.t_hi, nt);
  const std::int64_t t_begin = skip_initial_slice ? 1 : 0;
  const std::int64_t rows = nx * (nt - t_begin);
  Tensor out(Shape{rows, 2});
  double* p = out.data();
  std::int64_t r = 0;
  for (std::int64_t j = t_begin; j < nt; ++j) {
    for (std::int64_t i = 0; i < nx; ++i, ++r) {
      p[2 * r] = xs[i];
      p[2 * r + 1] = ts[j];
    }
  }
  return out;
}

Tensor uniform_points(const Domain& domain, std::int64_t n, Rng& rng) {
  domain.validate();
  QPINN_CHECK(n >= 1, "uniform_points needs n >= 1");
  Tensor out(Shape{n, 2});
  double* p = out.data();
  for (std::int64_t r = 0; r < n; ++r) {
    p[2 * r] = rng.uniform(domain.x_lo, domain.x_hi);
    p[2 * r + 1] = rng.uniform(domain.t_lo, domain.t_hi);
  }
  return out;
}

Tensor latin_hypercube_points(const Domain& domain, std::int64_t n, Rng& rng) {
  domain.validate();
  QPINN_CHECK(n >= 1, "latin_hypercube_points needs n >= 1");
  const auto perm_x = rng.permutation(static_cast<std::size_t>(n));
  const auto perm_t = rng.permutation(static_cast<std::size_t>(n));
  Tensor out(Shape{n, 2});
  double* p = out.data();
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::int64_t r = 0; r < n; ++r) {
    const double ux =
        (static_cast<double>(perm_x[static_cast<std::size_t>(r)]) +
         rng.uniform()) *
        inv_n;
    const double ut =
        (static_cast<double>(perm_t[static_cast<std::size_t>(r)]) +
         rng.uniform()) *
        inv_n;
    p[2 * r] = domain.x_lo + domain.x_span() * ux;
    p[2 * r + 1] = domain.t_lo + domain.t_span() * ut;
  }
  return out;
}

Tensor initial_points(const Domain& domain, std::int64_t nx) {
  domain.validate();
  QPINN_CHECK(nx >= 2, "initial_points needs nx >= 2");
  const Tensor xs = Tensor::linspace(domain.x_lo, domain.x_hi, nx);
  Tensor out(Shape{nx, 2});
  double* p = out.data();
  for (std::int64_t i = 0; i < nx; ++i) {
    p[2 * i] = xs[i];
    p[2 * i + 1] = domain.t_lo;
  }
  return out;
}

Tensor boundary_points(const Domain& domain, std::int64_t nt) {
  domain.validate();
  QPINN_CHECK(nt >= 2, "boundary_points needs nt >= 2");
  const Tensor ts = Tensor::linspace(domain.t_lo, domain.t_hi, nt);
  Tensor out(Shape{2 * nt, 2});
  double* p = out.data();
  for (std::int64_t j = 0; j < nt; ++j) {
    p[2 * j] = domain.x_lo;
    p[2 * j + 1] = ts[j];
  }
  for (std::int64_t j = 0; j < nt; ++j) {
    const std::int64_t r = nt + j;
    p[2 * r] = domain.x_hi;
    p[2 * r + 1] = ts[j];
  }
  return out;
}

CollocationSet make_collocation(const Domain& domain,
                                const SamplingConfig& config) {
  CollocationSet set;
  Rng rng(config.seed);
  switch (config.kind) {
    case SamplerKind::kGrid:
      set.interior = grid_points(domain, config.n_interior_x,
                                 config.n_interior_t,
                                 /*skip_initial_slice=*/true);
      break;
    case SamplerKind::kUniformRandom:
      set.interior = uniform_points(
          domain, config.n_interior_x * config.n_interior_t, rng);
      break;
    case SamplerKind::kLatinHypercube:
      set.interior = latin_hypercube_points(
          domain, config.n_interior_x * config.n_interior_t, rng);
      break;
  }
  set.initial = initial_points(domain, config.n_initial);
  if (config.n_boundary > 0) {
    set.boundary = boundary_points(domain, config.n_boundary);
  }
  return set;
}

}  // namespace qpinn::core

// Differentiable building blocks for problem definitions.
//
// Initial conditions and potentials appear inside PINN losses where their
// derivatives with respect to x matter (hard-IC transforms, PDE residuals),
// so they must be expressed in autodiff ops, not as opaque callables.
// This header provides the op-expressible forms of every IC / potential
// used by the benchmark problems, alongside their plain-double twins in
// src/quantum.
#pragma once

#include <functional>
#include <utility>

#include "autodiff/ops.hpp"

namespace qpinn::core {

/// (u0(x), v0(x)) — the real/imaginary parts of psi at t = t_lo — built
/// from a column Variable of x values.
using FieldOp = std::function<std::pair<autodiff::Variable, autodiff::Variable>(
    const autodiff::Variable& x)>;

/// V(x) as a differentiable op on a column Variable.
using PotentialOp = std::function<autodiff::Variable(const autodiff::Variable& x)>;

/// Gaussian packet (matches quantum::free_gaussian_packet at t = 0):
/// u0 = N exp(-(x-x0)^2/(4 s^2)) cos(k0 (x-x0)), v0 = ... sin(...).
FieldOp gaussian_packet_ic(double x0, double k0, double sigma0);

/// HO coherent state at t = 0: real Gaussian pi^{-1/4} e^{-(x-x0)^2/2}.
FieldOp coherent_state_ic(double x0);

/// Infinite-well ground+excited superposition at t = 0 (real):
/// sum_n c_n sqrt(2/L) sin(n pi x / L) for real coefficients.
FieldOp well_superposition_ic(double width, std::vector<double> coefficients);

/// The Raissi NLS benchmark IC: 2 sech(x) (real).
FieldOp sech_ic(double amplitude = 2.0);

/// Bright-soliton IC a sech(a x) e^{i v x}.
FieldOp soliton_ic(double amplitude, double velocity);

/// V = 0 represented as a null PotentialOp-compatible functor returning an
/// all-zero column.
PotentialOp zero_potential_op();

/// V = 1/2 omega^2 x^2.
PotentialOp harmonic_potential_op(double omega = 1.0);

/// sech(x) built from exp (used by soliton / Pöschl-Teller forms):
/// 2 / (e^x + e^{-x}).
autodiff::Variable sech_op(const autodiff::Variable& x);

}  // namespace qpinn::core

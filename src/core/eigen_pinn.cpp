#include "core/eigen_pinn.hpp"

#include <cmath>

#include "autodiff/derivatives.hpp"
#include "autodiff/grad.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace qpinn::core {

using autodiff::Variable;
using namespace autodiff;

void EigenPinnConfig::validate() const {
  if (!(x_hi > x_lo)) throw ConfigError("EigenPinn: x_hi must exceed x_lo");
  if (n_collocation < 8) {
    throw ConfigError("EigenPinn: need at least 8 collocation points");
  }
  if (epochs < 1) throw ConfigError("EigenPinn: epochs must be >= 1");
  if (weight_residual <= 0.0) {
    throw ConfigError("EigenPinn: weight_residual must be positive");
  }
  if (weight_norm < 0.0 || weight_ortho < 0.0 || weight_energy_anchor < 0.0) {
    throw ConfigError("EigenPinn: penalty weights must be >= 0");
  }
}

EigenPinn::EigenPinn(EigenPinnConfig config) : config_(std::move(config)) {
  config_.validate();
}

namespace {

/// Trapezoid row-weights as an (N, 1) constant.
Variable trapezoid_weights(std::int64_t n, double dx) {
  Tensor w(Shape{n, 1});
  for (std::int64_t i = 0; i < n; ++i) w[i] = dx;
  w[0] *= 0.5;
  w[n - 1] *= 0.5;
  return Variable::constant(w);
}

}  // namespace

EigenState EigenPinn::solve_state(
    double energy_guess, const std::vector<EigenState>& lower_states) const {
  const std::int64_t n = config_.n_collocation;
  const Tensor xs =
      Tensor::linspace(config_.x_lo, config_.x_hi, n).reshape({n, 1});
  const double dx =
      (config_.x_hi - config_.x_lo) / static_cast<double>(n - 1);

  // Fresh network per state; input x, output raw amplitude.
  nn::MlpConfig mlp;
  mlp.in_dim = 1;
  mlp.out_dim = 1;
  mlp.hidden = config_.hidden;
  mlp.activation = config_.activation;
  mlp.seed = config_.seed + 7919 * (lower_states.size() + 1);
  nn::Mlp net(mlp);

  Variable energy = Variable::leaf(Tensor::full({1, 1}, energy_guess));
  std::vector<Variable> params = net.parameters();
  params.push_back(energy);

  optim::AdamConfig adam_config = config_.adam;
  optim::Adam optimizer(params, adam_config);

  const Variable weights = trapezoid_weights(n, dx);
  // Previously found states as constants for the deflation penalties.
  std::vector<Variable> lower;
  lower.reserve(lower_states.size());
  for (const EigenState& state : lower_states) {
    QPINN_CHECK(static_cast<std::int64_t>(state.psi.size()) == n,
                "lower state sampled on a different grid");
    lower.push_back(Variable::constant(
        Tensor::from_vector(state.psi, Shape{n, 1})));
  }

  const double a = config_.x_lo, b = config_.x_hi;
  double last_residual = 0.0;

  for (std::int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const Variable x = Variable::leaf(xs, /*requires_grad=*/true);
    // Exact Dirichlet envelope (x - a)(b - x), scale-normalized so the raw
    // network output stays O(1).
    const double envelope_scale = 4.0 / ((b - a) * (b - a));
    const Variable envelope =
        scale(mul(add_scalar(x, -a), add_scalar(neg(x), b)), envelope_scale);
    const Variable psi = mul(envelope, net.forward(x));

    const Variable psi_xx = partial_n(psi, x, 0, 2);
    Variable h_psi = scale(psi_xx, -0.5);
    if (config_.potential) {
      h_psi = add(h_psi, mul(config_.potential(x), psi));
    }
    const Variable residual = sub(h_psi, mul(energy, psi));
    const Variable residual_loss = mse(residual);

    // (integral psi^2 dx - 1)^2.
    const Variable norm_integral = sum_all(mul(weights, square(psi)));
    const Variable norm_loss = square(add_scalar(norm_integral, -1.0));

    Variable loss = scale(residual_loss, config_.weight_residual);
    loss = add(loss, scale(norm_loss, config_.weight_norm));
    for (const Variable& lower_psi : lower) {
      const Variable overlap = sum_all(mul(weights, mul(psi, lower_psi)));
      loss = add(loss, scale(square(overlap), config_.weight_ortho));
    }
    if (epoch < config_.anchor_epochs && config_.weight_energy_anchor > 0.0) {
      const Variable anchor = square(add_scalar(energy, -energy_guess));
      loss = add(loss, scale(anchor, config_.weight_energy_anchor));
    }

    last_residual = residual_loss.item();
    if (config_.log_every > 0 && epoch % config_.log_every == 0) {
      log::info() << "eigen state " << lower_states.size() << " epoch "
                  << epoch << " loss " << loss.item() << " E "
                  << energy.item();
    }

    const std::vector<Variable> grads = grad(loss, params);
    std::vector<Tensor> grad_tensors;
    grad_tensors.reserve(grads.size());
    for (const Variable& g : grads) grad_tensors.push_back(g.value());
    optimizer.step(grad_tensors);
  }

  // Extract the final normalized, sign-fixed wavefunction.
  EigenState state;
  state.energy = energy.item();
  state.residual_loss = last_residual;
  state.x.resize(static_cast<std::size_t>(n));
  state.psi.resize(static_cast<std::size_t>(n));
  {
    NoGradGuard guard;
    const Variable x = Variable::constant(xs);
    const double envelope_scale = 4.0 / ((b - a) * (b - a));
    const Variable envelope =
        scale(mul(add_scalar(x, -a), add_scalar(neg(x), b)), envelope_scale);
    const Tensor psi = mul(envelope, net.forward(x)).value();
    double norm = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const double w = (i == 0 || i == n - 1) ? 0.5 : 1.0;
      norm += w * psi[i] * psi[i] * dx;
    }
    norm = std::sqrt(norm);
    QPINN_CHECK(norm > 1e-12, "eigen-PINN collapsed to the zero function");
    double sign = 1.0;
    for (std::int64_t i = 0; i < n; ++i) {
      if (std::abs(psi[i]) > 1e-6) {
        sign = psi[i] > 0.0 ? 1.0 : -1.0;
        break;
      }
    }
    for (std::int64_t i = 0; i < n; ++i) {
      state.x[static_cast<std::size_t>(i)] = xs[i];
      state.psi[static_cast<std::size_t>(i)] = sign * psi[i] / norm;
    }
  }
  return state;
}

std::vector<EigenState> EigenPinn::solve_spectrum(
    const std::vector<double>& energy_guesses) const {
  QPINN_CHECK(!energy_guesses.empty(), "need at least one energy guess");
  std::vector<EigenState> states;
  states.reserve(energy_guesses.size());
  for (double guess : energy_guesses) {
    states.push_back(solve_state(guess, states));
  }
  return states;
}

}  // namespace qpinn::core

#include "core/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <filesystem>
#include <sstream>

#include "autodiff/grad.hpp"
#include "autodiff/plan_passes.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/kernels.hpp"
#include "util/binary_io.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/invariant.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace qpinn::core {

using autodiff::Variable;
using namespace autodiff;

void RecoveryConfig::validate() const {
  if (max_recoveries < 0) {
    throw ConfigError("RecoveryConfig: max_recoveries must be >= 0");
  }
  if (lr_backoff <= 0.0 || lr_backoff > 1.0) {
    throw ConfigError("RecoveryConfig: lr_backoff must be in (0, 1]");
  }
  if (explosion_factor != 0.0 && explosion_factor <= 1.0) {
    throw ConfigError(
        "RecoveryConfig: explosion_factor must be > 1 (or 0 to disable)");
  }
  if (explosion_window < 1) {
    throw ConfigError("RecoveryConfig: explosion_window must be >= 1");
  }
  if (snapshot_every < 1) {
    throw ConfigError("RecoveryConfig: snapshot_every must be >= 1");
  }
}

void TrainConfig::validate() const {
  if (epochs < 1) throw ConfigError("TrainConfig: epochs must be >= 1");
  if (adam.lr <= 0.0) throw ConfigError("TrainConfig: lr must be positive");
  if (lr_decay <= 0.0 || lr_decay > 1.0) {
    throw ConfigError("TrainConfig: lr_decay must be in (0, 1]");
  }
  if (lr_decay_every < 1) {
    throw ConfigError("TrainConfig: lr_decay_every must be >= 1");
  }
  if (grad_clip < 0.0) throw ConfigError("TrainConfig: grad_clip must be >= 0");
  if (weight_pde < 0.0) {
    throw ConfigError("TrainConfig: weight_pde must be >= 0");
  }
  if (threads < 1) throw ConfigError("TrainConfig: threads must be >= 1");
  if (metric_nx < 2 || metric_nt < 2) {
    throw ConfigError("TrainConfig: metric grid must be at least 2x2");
  }
  if (second_stage.enabled &&
      (second_stage.lbfgs.max_iterations < 1 || second_stage.lbfgs.history < 1)) {
    throw ConfigError(
        "TrainConfig: second_stage needs max_iterations >= 1 and "
        "history >= 1");
  }
  if (curriculum) curriculum->validate();
  if (recovery) recovery->validate();
  if (checkpoint) checkpoint->validate();
  if (dist && dist->world() > 1 && threads > 1) {
    throw ConfigError(
        "TrainConfig: dist training shards the interior across ranks; "
        "combine it with threads = 1 (per-rank thread sharding would "
        "change the reduction partition)");
  }
}

const EpochRecord& TrainResult::at_epoch(std::int64_t epoch) const {
  QPINN_CHECK(!history.empty(), "empty training history");
  for (const auto& record : history) {
    if (record.epoch >= epoch) return record;
  }
  return history.back();
}

Trainer::Trainer(std::shared_ptr<Problem> problem,
                 std::shared_ptr<FieldModel> model, TrainConfig config)
    : problem_(std::move(problem)),
      model_(std::move(model)),
      config_(std::move(config)) {
  QPINN_CHECK(problem_ != nullptr, "Trainer needs a problem");
  QPINN_CHECK(model_ != nullptr, "Trainer needs a model");
  config_.validate();

  points_ = make_collocation(problem_->domain(), config_.sampling);
  resample_rng_ = Rng(config_.sampling.seed ^ 0xA5A5A5A5ULL);
  if (config_.resample_every > 0 &&
      config_.sampling.kind == SamplerKind::kGrid) {
    throw ConfigError(
        "TrainConfig: resampling requires a random or LHS sampler");
  }
  params_ = model_->parameters();
  optimizer_ = std::make_unique<optim::Adam>(params_, config_.adam);
  QPINN_INVARIANT(
      optimizer_->params().size() == model_->parameters().size(),
      "core.trainer", "param-agreement",
      "optimizer parameter count " +
          std::to_string(optimizer_->params().size()) +
          " disagrees with model parameter count " +
          std::to_string(model_->parameters().size()));
  if (config_.lr_decay < 1.0) {
    schedule_ = std::make_unique<optim::ExponentialDecay>(
        config_.lr_decay, config_.lr_decay_every);
  } else {
    schedule_ = std::make_unique<optim::ConstantLr>();
  }
  graph_enabled_ =
      config_.graph == GraphMode::kOn ||
      (config_.graph == GraphMode::kEnv && plan::graph_env_enabled());
  plan_opt_enabled_ = plan::plan_opt_env_enabled();
  if (config_.dist && config_.dist->world() > 1) {
    // Dist mode forces eager execution: a captured plan pins one epoch's
    // sharding, but rank failure (degrade/rejoin) can reshape the step
    // mid-run. Composing graph replay with dist is a tracked follow-up.
    graph_enabled_ = false;
  }
}

Variable Trainer::shard_loss(
    const Tensor& shard_points, const Tensor& shard_weights,
    std::int64_t total_rows, bool include_aux,
    std::vector<std::pair<std::string, double>>* aux_out,
    double* aux_weighted_sum, std::vector<AuxBinding>* aux_bindings) {
  const Variable X = Variable::leaf(shard_points, /*requires_grad=*/true);
  const Variable residual = problem_->residual(*model_, X);
  QPINN_CHECK_SHAPE(residual.value().rows() == shard_points.rows(),
                    "problem residual row count mismatch");

  // sum(w * r^2) normalized by the FULL interior size so shard losses add
  // up to the serial mean. The square/multiply/reduce composition is fused
  // into one kernel sweep (and one tape node).
  Variable reduced =
      (shard_weights.rank() == 2)
          ? weighted_square_sum(Variable::constant(shard_weights), residual)
          : square_sum(residual);
  const double denom = static_cast<double>(total_rows) *
                       static_cast<double>(problem_->residual_dim());
  Variable loss = scale(reduced, config_.weight_pde / denom);

  if (include_aux) {
    for (LossTerm& term : problem_->auxiliary_losses(*model_, points_)) {
      if (term.weight == 0.0) continue;
      const double value = term.value.item();
      if (aux_out != nullptr) aux_out->emplace_back(term.name, value);
      if (aux_weighted_sum != nullptr) {
        *aux_weighted_sum += term.weight * value;
      }
      if (aux_bindings != nullptr) {
        aux_bindings->push_back({term.name, term.weight, term.value.value()});
      }
      loss = add(loss, scale(term.value, term.weight));
    }
  }
  return loss;
}

Trainer::LossAndGrads Trainer::compute_serial(std::int64_t epoch) {
  Tensor weights;  // scalar sentinel = no per-point weights
  if (config_.curriculum) {
    weights = per_point_weights(*config_.curriculum, problem_->domain(),
                                points_.interior, epoch);
  }
  LossAndGrads result;
  double aux_weighted_sum = 0.0;
  const Variable loss =
      shard_loss(points_.interior, weights, points_.interior.rows(),
                 /*include_aux=*/true, &result.aux, &aux_weighted_sum);
  result.total = loss.item();
  result.pde = result.total - aux_weighted_sum;

  const std::vector<Variable> grads = grad(loss, params_);
  result.grads.reserve(grads.size());
  for (const Variable& g : grads) result.grads.push_back(g.value());
  return result;
}

Trainer::LossAndGrads Trainer::compute_parallel(std::int64_t epoch) {
  const std::int64_t total_rows = points_.interior.rows();
  const std::size_t shards =
      std::min<std::size_t>(config_.threads,
                            static_cast<std::size_t>(total_rows));

  Tensor weights;
  if (config_.curriculum) {
    weights = per_point_weights(*config_.curriculum, problem_->domain(),
                                points_.interior, epoch);
  }

  struct ShardOutput {
    double loss = 0.0;
    double aux_weighted_sum = 0.0;
    std::vector<std::pair<std::string, double>> aux;
    std::vector<Tensor> grads;
  };
  std::vector<ShardOutput> outputs(shards);

  const std::int64_t base = total_rows / static_cast<std::int64_t>(shards);
  const std::int64_t extra = total_rows % static_cast<std::int64_t>(shards);
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges(shards);
  std::int64_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::int64_t len =
        base + (static_cast<std::int64_t>(s) < extra ? 1 : 0);
    ranges[s] = {begin, begin + len};
    begin += len;
  }

  global_pool().for_each_index(shards, [&](std::size_t s) {
    const auto [r0, r1] = ranges[s];
    const Tensor shard_points = kernels::slice_rows(points_.interior, r0, r1);
    Tensor shard_weights;
    if (weights.rank() == 2) {
      shard_weights = kernels::slice_rows(weights, r0, r1);
    }
    ShardOutput& out = outputs[s];
    const Variable loss = shard_loss(
        shard_points, shard_weights, total_rows,
        /*include_aux=*/s == 0, s == 0 ? &out.aux : nullptr,
        s == 0 ? &out.aux_weighted_sum : nullptr);
    out.loss = loss.item();
    const std::vector<Variable> grads = grad(loss, params_);
    out.grads.reserve(grads.size());
    for (const Variable& g : grads) out.grads.push_back(g.value());
  });

  // Deterministic shard-order reduction.
  LossAndGrads result;
  result.aux = std::move(outputs[0].aux);
  result.grads = std::move(outputs[0].grads);
  result.total = outputs[0].loss;
  for (std::size_t s = 1; s < shards; ++s) {
    result.total += outputs[s].loss;
    for (std::size_t p = 0; p < result.grads.size(); ++p) {
      kernels::axpy_inplace(result.grads[p], 1.0, outputs[s].grads[p]);
    }
  }
  result.pde = result.total - outputs[0].aux_weighted_sum;
  return result;
}

Trainer::LossAndGrads Trainer::compute_dist(std::int64_t epoch) {
  dist::Communicator& comm = *config_.dist;
  const std::int64_t rank = comm.rank();
  const std::int64_t total_rows = points_.interior.rows();
  const std::int64_t shards = std::min(comm.world(), total_rows);

  Tensor weights;
  if (config_.curriculum) {
    weights = per_point_weights(*config_.curriculum, problem_->domain(),
                                points_.interior, epoch);
  }

  // One contiguous shard per rank, with the same base + extra arithmetic
  // as compute_parallel — this is what makes an N-rank step bit-identical
  // to a single-process step with threads = N.
  const std::int64_t base = total_rows / shards;
  const std::int64_t extra = total_rows % shards;
  std::int64_t r0 = 0;
  std::int64_t r1 = 0;
  if (rank < shards) {
    r0 = rank * base + std::min(rank, extra);
    r1 = r0 + base + (rank < extra ? 1 : 0);
  }

  LossAndGrads local;
  double aux_weighted_sum = 0.0;
  if (r1 > r0) {
    const Tensor shard_points = kernels::slice_rows(points_.interior, r0, r1);
    Tensor shard_weights;
    if (weights.rank() == 2) {
      shard_weights = kernels::slice_rows(weights, r0, r1);
    }
    const Variable loss = shard_loss(
        shard_points, shard_weights, total_rows,
        /*include_aux=*/rank == 0, rank == 0 ? &local.aux : nullptr,
        rank == 0 ? &aux_weighted_sum : nullptr);
    local.total = loss.item();
    const std::vector<Variable> grads = grad(loss, params_);
    local.grads.reserve(grads.size());
    for (const Variable& g : grads) local.grads.push_back(g.value());
  } else {
    // More ranks than interior rows: contribute exact zeros.
    local.grads.reserve(params_.size());
    for (const Variable& p : params_) {
      local.grads.push_back(Tensor::zeros(p.value().shape()));
    }
  }

  // Reduction buffer: [loss, weighted aux sum, stop flag, grads...]. The
  // stop flag rides the same all-reduce so every rank observes the same
  // sum and stops at the same epoch.
  std::size_t numel = 0;
  for (const Tensor& g : local.grads) {
    numel += static_cast<std::size_t>(g.numel());
  }
  std::vector<double> buffer;
  buffer.reserve(3 + numel);
  buffer.push_back(local.total);
  buffer.push_back(aux_weighted_sum);
  buffer.push_back(stop_requested() ? 1.0 : 0.0);
  for (const Tensor& g : local.grads) {
    buffer.insert(buffer.end(), g.data(), g.data() + g.numel());
  }

  comm.allreduce(buffer, epoch);

  LossAndGrads result;
  result.aux = std::move(local.aux);  // named aux values live on rank 0
  result.total = buffer[0];
  result.pde = buffer[0] - buffer[1];
  dist_stop_sum_ = buffer[2];
  result.grads = std::move(local.grads);
  std::size_t offset = 3;
  for (Tensor& g : result.grads) {
    const std::size_t count = static_cast<std::size_t>(g.numel());
    std::copy(buffer.begin() + static_cast<std::ptrdiff_t>(offset),
              buffer.begin() + static_cast<std::ptrdiff_t>(offset + count),
              g.data());
    offset += count;
  }
  return result;
}

Trainer::PlanKey Trainer::current_plan_key() const {
  PlanKey key;
  key.interior_data = points_.interior.data();
  key.interior_generation = interior_generation_;
  key.interior_shape = points_.interior.shape();
  key.pool_threads = global_pool().size();
  key.isa = simd::active_isa();
  key.curriculum = config_.curriculum.has_value();
  key.precision = precision_mode();
  return key;
}

// ---- graph capture & replay (autodiff/plan.hpp) ---------------------------
//
// Capture runs the ordinary eager step with the thread-local recorder armed,
// so the captured epoch IS an eager epoch; replay re-executes the recorded
// kernel sequence against the pinned buffers and re-reads loss/grad/aux
// buffers on the host side, in the same order as the eager reduction —
// every replayed epoch is bit-identical to what eager would have computed.

void Trainer::optimize_shard_plan(ShardPlan& sp) {
  std::vector<Tensor> outputs;
  outputs.reserve(sp.grads.size() + sp.aux.size() + 1);
  outputs.push_back(sp.loss);
  for (const Tensor& g : sp.grads) outputs.push_back(g);
  for (const AuxBinding& b : sp.aux) outputs.push_back(b.value);
  if (plan_opt_enabled_) {
    const plan::PassStats stats = plan::optimize_plan(sp.plan, outputs);
    log::debug() << problem_->name() << " plan optimized: "
                 << stats.thunks_before << " -> " << stats.thunks_after
                 << " thunks (" << stats.dead_eliminated << " dead, "
                 << stats.fused << " fused), arena "
                 << stats.arena_bytes_before << " -> "
                 << stats.arena_bytes_after << " bytes ("
                 << stats.buffers_rebound << " buffers re-bound)";
  }
  if (precision_mode() == Precision::kMixed) {
    // Must run after the optimizer passes: demoted thunks are opaque
    // closures the passes cannot analyze.
    const DemoteStats d = demote_plan(sp.plan, outputs);
    log::debug() << problem_->name() << " plan demoted to mixed precision: "
                 << d.demoted << "/" << d.thunks_before
                 << " thunks fp32 (" << d.kept_fp64 << " kept fp64, "
                 << d.downcasts << " downcasts, " << d.upcasts
                 << " upcasts, " << d.shadow_bytes << " shadow bytes)";
  }
}

std::vector<plan::PassStats> Trainer::plan_pass_stats() const {
  std::vector<plan::PassStats> stats;
  stats.reserve(plans_.size());
  for (const ShardPlan& sp : plans_) stats.push_back(sp.plan.pass_stats());
  return stats;
}

Trainer::LossAndGrads Trainer::capture_serial(std::int64_t epoch) {
  plans_.clear();
  plans_.resize(1);
  ShardPlan& sp = plans_[0];
  Tensor weights;
  if (config_.curriculum) {
    weights = per_point_weights(*config_.curriculum, problem_->domain(),
                                points_.interior, epoch);
  }
  LossAndGrads result;
  double aux_weighted_sum = 0.0;
  {
    plan::CaptureScope scope(sp.plan);
    const Variable loss =
        shard_loss(points_.interior, weights, points_.interior.rows(),
                   /*include_aux=*/true, &result.aux, &aux_weighted_sum,
                   &sp.aux);
    result.total = loss.item();
    result.pde = result.total - aux_weighted_sum;
    const std::vector<Variable> grads = grad(loss, params_);
    result.grads.reserve(grads.size());
    for (const Variable& g : grads) result.grads.push_back(g.value());
    sp.loss = loss.value();
    sp.grads = result.grads;
  }
  sp.weights = weights;
  sp.r0 = 0;
  sp.r1 = points_.interior.rows();
  optimize_shard_plan(sp);
  return result;
}

Trainer::LossAndGrads Trainer::replay_serial(std::int64_t epoch) {
  ShardPlan& sp = plans_[0];
  if (config_.curriculum) {
    const Tensor w = per_point_weights(*config_.curriculum, problem_->domain(),
                                       points_.interior, epoch);
    kernels::copy_into(sp.weights, w);
  }
  sp.plan.replay();
  LossAndGrads result;
  result.total = sp.loss.item();
  double aux_weighted_sum = 0.0;
  for (const AuxBinding& b : sp.aux) {
    const double value = b.value.item();
    result.aux.emplace_back(b.name, value);
    aux_weighted_sum += b.weight * value;
  }
  result.pde = result.total - aux_weighted_sum;
  result.grads = sp.grads;
  return result;
}

Trainer::LossAndGrads Trainer::capture_parallel(std::int64_t epoch) {
  const std::int64_t total_rows = points_.interior.rows();
  const std::size_t shards =
      std::min<std::size_t>(config_.threads,
                            static_cast<std::size_t>(total_rows));

  Tensor weights;
  if (config_.curriculum) {
    weights = per_point_weights(*config_.curriculum, problem_->domain(),
                                points_.interior, epoch);
  }

  struct ShardOutput {
    double loss = 0.0;
    double aux_weighted_sum = 0.0;
    std::vector<std::pair<std::string, double>> aux;
    std::vector<Tensor> grads;
  };
  std::vector<ShardOutput> outputs(shards);
  plans_.clear();
  plans_.resize(shards);

  const std::int64_t base = total_rows / static_cast<std::int64_t>(shards);
  const std::int64_t extra = total_rows % static_cast<std::int64_t>(shards);
  std::vector<std::pair<std::int64_t, std::int64_t>> ranges(shards);
  std::int64_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::int64_t len =
        base + (static_cast<std::int64_t>(s) < extra ? 1 : 0);
    ranges[s] = {begin, begin + len};
    begin += len;
  }

  global_pool().for_each_index(shards, [&](std::size_t s) {
    const auto [r0, r1] = ranges[s];
    const Tensor shard_points = kernels::slice_rows(points_.interior, r0, r1);
    Tensor shard_weights;
    if (weights.rank() == 2) {
      shard_weights = kernels::slice_rows(weights, r0, r1);
    }
    ShardOutput& out = outputs[s];
    ShardPlan& sp = plans_[s];
    {
      plan::CaptureScope scope(sp.plan);
      const Variable loss = shard_loss(
          shard_points, shard_weights, total_rows,
          /*include_aux=*/s == 0, s == 0 ? &out.aux : nullptr,
          s == 0 ? &out.aux_weighted_sum : nullptr,
          s == 0 ? &sp.aux : nullptr);
      out.loss = loss.item();
      const std::vector<Variable> grads = grad(loss, params_);
      out.grads.reserve(grads.size());
      for (const Variable& g : grads) out.grads.push_back(g.value());
      sp.loss = loss.value();
      sp.grads = out.grads;
    }
    sp.points = shard_points;
    sp.weights = shard_weights;
    sp.r0 = r0;
    sp.r1 = r1;
    optimize_shard_plan(sp);
  });

  // Deterministic shard-order reduction.
  LossAndGrads result;
  result.aux = std::move(outputs[0].aux);
  result.grads = std::move(outputs[0].grads);
  result.total = outputs[0].loss;
  for (std::size_t s = 1; s < shards; ++s) {
    result.total += outputs[s].loss;
    for (std::size_t p = 0; p < result.grads.size(); ++p) {
      kernels::axpy_inplace(result.grads[p], 1.0, outputs[s].grads[p]);
    }
  }
  result.pde = result.total - outputs[0].aux_weighted_sum;
  return result;
}

Trainer::LossAndGrads Trainer::replay_parallel(std::int64_t epoch) {
  const std::size_t shards = plans_.size();
  // The shard point slices were materialized at capture; refresh them from
  // the interior set so an in-place resample (which keeps the tensor's
  // identity, and therefore the plan) is seen by every shard's thunks.
  for (ShardPlan& sp : plans_) {
    kernels::slice_rows_into(sp.points, points_.interior, sp.r0, sp.r1);
  }
  if (config_.curriculum) {
    const Tensor w = per_point_weights(*config_.curriculum, problem_->domain(),
                                       points_.interior, epoch);
    for (ShardPlan& sp : plans_) {
      if (sp.weights.rank() == 2) {
        kernels::slice_rows_into(sp.weights, w, sp.r0, sp.r1);
      }
    }
  }
  global_pool().for_each_index(shards,
                               [&](std::size_t s) { plans_[s].plan.replay(); });

  // Same shard-order reduction (and buffers) as the captured eager step.
  LossAndGrads result;
  result.grads = plans_[0].grads;
  result.total = plans_[0].loss.item();
  for (std::size_t s = 1; s < shards; ++s) {
    result.total += plans_[s].loss.item();
    for (std::size_t p = 0; p < result.grads.size(); ++p) {
      kernels::axpy_inplace(result.grads[p], 1.0, plans_[s].grads[p]);
    }
  }
  double aux_weighted_sum = 0.0;
  for (const AuxBinding& b : plans_[0].aux) {
    const double value = b.value.item();
    result.aux.emplace_back(b.name, value);
    aux_weighted_sum += b.weight * value;
  }
  result.pde = result.total - aux_weighted_sum;
  return result;
}

Trainer::LossAndGrads Trainer::compute(std::int64_t epoch) {
  if (config_.dist && config_.dist->world() > 1) return compute_dist(epoch);
  if (!graph_enabled_) {
    return (config_.threads > 1) ? compute_parallel(epoch)
                                 : compute_serial(epoch);
  }
  const PlanKey key = current_plan_key();
  if (plans_ready_ && !(key == plan_key_)) {
    plans_.clear();
    plans_ready_ = false;
    plan::count_fallback();
    log::info() << problem_->name()
                << " execution plan invalidated (batch-shape/thread/ISA "
                   "change); re-capturing";
  }
  if (!plans_ready_) {
    LossAndGrads result;
    try {
      result = (config_.threads > 1) ? capture_parallel(epoch)
                                     : capture_serial(epoch);
    } catch (...) {
      // A failed capture (e.g. non-finite loss mid-step) leaves a partial
      // plan behind; discard it so the next step re-captures cleanly.
      plans_.clear();
      throw;
    }
    plan_key_ = key;
    plans_ready_ = true;
    return result;
  }
  return (config_.threads > 1) ? replay_parallel(epoch) : replay_serial(epoch);
}

EpochRecord Trainer::step(std::int64_t epoch) {
  if (config_.dist) {
    dist::maybe_fault_kill(config_.dist->rank(), epoch);
  }
  const double lr = lr_scale_ * schedule_->lr_at(epoch, config_.adam.lr);
  optimizer_->set_lr(lr);

  if (config_.resample_every > 0 && epoch > 0 &&
      epoch % config_.resample_every == 0) {
    const std::int64_t n =
        config_.sampling.n_interior_x * config_.sampling.n_interior_t;
    Tensor fresh =
        (config_.sampling.kind == SamplerKind::kLatinHypercube)
            ? latin_hypercube_points(problem_->domain(), n, resample_rng_)
            : uniform_points(problem_->domain(), n, resample_rng_);
    // Refreshing the pinned buffer in place keeps the tensor's identity, so
    // a captured plan survives per-epoch resampling (replay re-reads the
    // storage). A shape change still swaps the tensor and the new pointer
    // invalidates the plan.
    if (graph_enabled_ && points_.interior.shape() == fresh.shape()) {
      kernels::copy_into(points_.interior, fresh);
    } else {
      points_.interior = std::move(fresh);
      ++interior_generation_;
    }
  }

  LossAndGrads lg = compute(epoch);
  if (fault_fires(kFaultTrainerNanLoss)) {
    lg.total = std::numeric_limits<double>::quiet_NaN();
  }
  if (fault_fires(kFaultTrainerExplodeLoss)) {
    lg.total *= 1e9;
  }
  if ((config_.check_finite || config_.recovery) && !std::isfinite(lg.total)) {
    throw NumericsError("training loss became non-finite at epoch " +
                        std::to_string(epoch));
  }
  double grad_norm;
  if (config_.grad_clip > 0.0) {
    grad_norm = optim::clip_grad_norm(lg.grads, config_.grad_clip);
  } else {
    double sq = 0.0;
    for (const Tensor& g : lg.grads) sq += kernels::dot(g, g);
    grad_norm = std::sqrt(sq);
  }
  if ((config_.check_finite || config_.recovery) && !std::isfinite(grad_norm)) {
    throw NumericsError("gradient norm became non-finite at epoch " +
                        std::to_string(epoch));
  }
  optimizer_->step(lg.grads);

  EpochRecord record;
  record.epoch = epoch;
  record.total_loss = lg.total;
  record.pde_loss = lg.pde;
  record.aux_losses = std::move(lg.aux);
  record.lr = lr;
  record.grad_norm = grad_norm;
  return record;
}

double Trainer::evaluate_l2() {
  return relative_l2(*model_, problem_->reference(), problem_->domain(),
                     config_.metric_nx, config_.metric_nt);
}

bool Trainer::stop_requested() const {
  if (stop_requested_.load(std::memory_order_relaxed)) return true;
  return config_.stop_flag != nullptr &&
         config_.stop_flag->load(std::memory_order_relaxed);
}

Trainer::Snapshot Trainer::take_snapshot(std::int64_t epoch) const {
  Snapshot snapshot;
  snapshot.epoch = epoch;
  snapshot.params.reserve(params_.size());
  for (const auto& p : params_) snapshot.params.push_back(p.value().clone());
  snapshot.optimizer = optimizer_->export_state();
  snapshot.rng = resample_rng_.state();
  snapshot.interior = points_.interior.clone();
  return snapshot;
}

void Trainer::restore_snapshot(const Snapshot& snapshot) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& target = params_[i].mutable_value();
    const Tensor& source = snapshot.params[i];
    std::copy(source.data(), source.data() + source.numel(), target.data());
  }
  optimizer_->import_state(snapshot.optimizer);
  resample_rng_.set_state(snapshot.rng);
  points_.interior = snapshot.interior.clone();
  ++interior_generation_;
}

TrainingState Trainer::make_state(std::int64_t epoch) const {
  TrainingState state;
  state.epoch = epoch;
  state.lr_scale = lr_scale_;
  state.recoveries = recoveries_;
  state.best_loss = best_loss_;
  state.optimizer = optimizer_->export_state();
  state.resample_rng = resample_rng_.state();
  state.interior = points_.interior.clone();
  state.has_interior = true;
  return state;
}

void Trainer::restore_state(const TrainingState& state) {
  // Model parameters were already loaded in place by load_state.
  optimizer_->import_state(state.optimizer);
  resample_rng_.set_state(state.resample_rng);
  lr_scale_ = state.lr_scale;
  recoveries_ = state.recoveries;
  best_loss_ = state.best_loss;
  if (state.has_interior) {
    QPINN_CHECK_SHAPE(state.interior.rank() == 2 &&
                          state.interior.cols() == points_.interior.cols(),
                      "resumed collocation set has the wrong shape");
    points_.interior = state.interior.clone();
    ++interior_generation_;
  }
}

std::string Trainer::make_dist_sync(std::int64_t epoch) const {
  std::ostringstream out(std::ios::binary);
  write_pod(out, epoch);
  write_pod(out, lr_scale_);
  write_pod(out, recoveries_);
  write_pod(out, best_loss_);
  const RngState rng = resample_rng_.state();
  for (int i = 0; i < 4; ++i) write_pod(out, rng.s[i]);
  write_pod(out, std::uint8_t{rng.has_cached_normal});
  write_pod(out, rng.cached_normal);
  return std::move(out).str();
}

std::int64_t Trainer::apply_dist_sync(const std::string& payload) {
  std::istringstream in(payload, std::ios::binary);
  const auto epoch = read_pod<std::int64_t>(in, "dist sync epoch");
  lr_scale_ = read_pod<double>(in, "dist sync lr scale");
  recoveries_ = read_pod<std::int64_t>(in, "dist sync recoveries");
  best_loss_ = read_pod<double>(in, "dist sync best loss");
  RngState rng;
  for (int i = 0; i < 4; ++i) {
    rng.s[i] = read_pod<std::uint64_t>(in, "dist sync rng");
  }
  rng.has_cached_normal = read_pod<std::uint8_t>(in, "dist sync rng flag") != 0;
  rng.cached_normal = read_pod<double>(in, "dist sync rng cache");
  resample_rng_.set_state(rng);
  return epoch;
}

TrainResult Trainer::fit() {
  Stopwatch watch;
  TrainResult result;
  const auto dist_active = [&]() {
    return config_.dist && config_.dist->world() > 1;
  };

  std::int64_t start_epoch = 0;
  if (!config_.resume_from.empty()) {
    TrainingState state;
    try {
      state = Checkpointer::load_state(config_.resume_from,
                                       model_->named_parameters());
    } catch (const IoError& primary) {
      // A torn last.qckpt must not kill the run when an intact best
      // checkpoint sits next to it.
      const std::filesystem::path requested(config_.resume_from);
      if (requested.filename() != "last.qckpt") throw;
      const std::string fallback =
          (requested.parent_path() / "best.qckpt").string();
      if (!std::filesystem::exists(fallback)) throw;
      log::warn() << problem_->name() << " cannot resume from '"
                  << config_.resume_from << "' (" << primary.what()
                  << "); falling back to '" << fallback << "'";
      state = Checkpointer::load_state(fallback, model_->named_parameters());
    }
    restore_state(state);
    // last.qckpt is written on a cadence, so the best_loss it carries can
    // predate the latest best.qckpt rotation. Resuming with that stale
    // (higher) value would let the first improving-but-worse epoch clobber
    // best.qckpt with a worse model, so fold in the loss best.qckpt itself
    // recorded. A missing or torn best file simply cannot lower the bar.
    {
      const std::filesystem::path requested(config_.resume_from);
      const std::string best_file =
          config_.checkpoint
              ? config_.checkpoint->dir + "/best.qckpt"
              : (requested.parent_path() / "best.qckpt").string();
      if (std::filesystem::exists(best_file)) {
        try {
          const TrainingState best = Checkpointer::peek_state(best_file);
          best_loss_ = std::min(best_loss_, best.best_loss);
        } catch (const IoError& e) {
          log::warn() << problem_->name() << " could not read best loss from '"
                      << best_file << "': " << e.what();
        }
      }
    }
    start_epoch = state.epoch + 1;
    log::info() << problem_->name() << " resuming from '"
                << config_.resume_from << "' at epoch " << start_epoch;
    if (config_.dist && config_.dist->rejoined()) {
      // The root's kSync state is authoritative; the checkpoint this rank
      // loaded must describe the same point in the run.
      const std::int64_t sync_epoch =
          apply_dist_sync(config_.dist->sync_payload());
      if (sync_epoch != state.epoch) {
        throw ConfigError(
            "rejoin checkpoint is at epoch " + std::to_string(state.epoch) +
            " but the root expected epoch " + std::to_string(sync_epoch));
      }
    }
  }
  result.start_epoch = start_epoch;

  std::unique_ptr<Checkpointer> checkpointer;
  if (config_.checkpoint && !(config_.dist && config_.dist->rank() != 0)) {
    // In dist mode only rank 0 owns the checkpoint files; a worker
    // writing the same paths would race the rotation.
    checkpointer = std::make_unique<Checkpointer>(*config_.checkpoint);
  }
  const auto last_completed = [&]() {
    return result.history.empty() ? start_epoch - 1
                                  : result.history.back().epoch;
  };

  const RecoveryConfig* recovery =
      config_.recovery ? &*config_.recovery : nullptr;
  Snapshot snapshot;
  if (recovery) snapshot = take_snapshot(start_epoch - 1);
  std::deque<double> window;  // trailing losses for explosion detection

  result.history.reserve(
      static_cast<std::size_t>(std::max<std::int64_t>(
          0, config_.epochs - start_epoch)));
  std::int64_t epoch = start_epoch;
  while (epoch < config_.epochs) {
    // In dist mode the only state a resample mutates before the reduction
    // is the RNG and the interior set; capturing them makes an aborted
    // epoch exactly replayable after recovery.
    RngState dist_pre_rng;
    Tensor dist_pre_interior;
    const bool dist_may_resample =
        dist_active() && config_.resample_every > 0 && epoch > 0 &&
        epoch % config_.resample_every == 0;
    if (dist_may_resample) {
      dist_pre_rng = resample_rng_.state();
      dist_pre_interior = points_.interior.clone();
    }

    EpochRecord record;
    std::string failure;
    try {
      record = step(epoch);
    } catch (const NumericsError& e) {
      if (!recovery) throw;
      failure = e.what();
    } catch (const dist::PeerLostError& e) {
      // A rank died mid-epoch: the reduction never completed, so no
      // optimizer step ran anywhere. Roll the epoch's resample back,
      // checkpoint the consistent pre-epoch state (rank 0), run the
      // recovery state machine, and retry the epoch.
      if (dist_may_resample) {
        resample_rng_.set_state(dist_pre_rng);
        points_.interior = dist_pre_interior.clone();
      }
      ++result.rank_failures;
      if (result.rank_failures > 8) throw;  // runaway failure loop
      log::warn() << problem_->name() << " lost rank " << e.rank()
                  << " at epoch " << epoch << " (failure "
                  << result.rank_failures << "); recovering via "
                  << (config_.dist->policy() ==
                              dist::FailurePolicy::kRejoin
                          ? "elastic rejoin"
                          : "graceful degrade");
      if (checkpointer) {
        checkpointer->save_last(model_->named_parameters(),
                                make_state(epoch - 1));
      }
      config_.dist->recover(make_dist_sync(epoch - 1));
      continue;
    }
    if (failure.empty() && recovery && recovery->explosion_factor > 0.0 &&
        !window.empty()) {
      const double floor = *std::min_element(window.begin(), window.end());
      if (record.total_loss > recovery->explosion_factor * floor) {
        failure = "loss " + std::to_string(record.total_loss) + " exploded " +
                  std::to_string(recovery->explosion_factor) +
                  "x past the trailing minimum " + std::to_string(floor) +
                  " at epoch " + std::to_string(epoch);
      }
    }

    if (!failure.empty()) {
      restore_snapshot(snapshot);
      // Epochs past the rollback point either rerun or never happened;
      // drop their records so history matches the restored state.
      while (!result.history.empty() &&
             result.history.back().epoch > snapshot.epoch) {
        result.history.pop_back();
      }
      window.clear();
      if (recoveries_ >= recovery->max_recoveries) {
        // Graceful degradation: keep the last good state, report, stop.
        result.diverged = true;
        log::warn() << problem_->name() << " giving up after "
                    << recoveries_ << " recoveries: " << failure;
        break;
      }
      lr_scale_ *= recovery->lr_backoff;
      ++recoveries_;
      RecoveryEvent event;
      event.detected_epoch = epoch;
      event.rollback_epoch = snapshot.epoch;
      event.lr_scale = lr_scale_;
      event.reason = failure;
      log::warn() << problem_->name() << " recovery " << recoveries_
                  << ": rolling back to epoch " << snapshot.epoch
                  << " with lr scale " << lr_scale_ << " (" << failure << ")";
      result.recovery_events.push_back(std::move(event));
      epoch = snapshot.epoch + 1;
      continue;
    }

    if (config_.eval_every > 0 && (epoch % config_.eval_every == 0 ||
                                   epoch + 1 == config_.epochs)) {
      record.l2 = evaluate_l2();
    }
    if (config_.log_every > 0 && epoch % config_.log_every == 0) {
      auto line = log::info();
      line << problem_->name() << " epoch " << epoch << " loss "
           << record.total_loss;
      if (!std::isnan(record.l2)) line << " L2 " << record.l2;
    }
    const double loss = record.total_loss;
    result.history.push_back(std::move(record));

    if (recovery) {
      window.push_back(loss);
      while (static_cast<std::int64_t>(window.size()) >
             recovery->explosion_window) {
        window.pop_front();
      }
      if ((epoch + 1) % recovery->snapshot_every == 0) {
        snapshot = take_snapshot(epoch);
      }
    }

    const bool improved = loss < best_loss_;
    if (improved) best_loss_ = loss;
    // `best` tracks every improving epoch (the best model cannot be
    // reconstructed later); `last` rotates on the configured cadence.
    if (checkpointer && improved && config_.checkpoint->keep_best) {
      checkpointer->save_best(model_->named_parameters(), make_state(epoch));
    }
    if (checkpointer && config_.checkpoint->every > 0 &&
        (epoch + 1) % config_.checkpoint->every == 0) {
      checkpointer->save_last(model_->named_parameters(), make_state(epoch));
    }

    ++epoch;
    // Dist ranks stop on the all-reduced flag sum so every rank leaves
    // the loop at the same epoch (a local flag alone would desynchronize
    // the reduction).
    const bool stop_now =
        dist_active() ? dist_stop_sum_ > 0.0 : stop_requested();
    if (stop_now) {
      result.interrupted = epoch < config_.epochs;
      break;
    }
  }

  // Optional L-BFGS refinement (the classical Adam -> L-BFGS PINN
  // two-stage recipe). Always eager fp64 full-batch: no plan capture and
  // no mixed-precision demotion, so the curvature estimates see the fp64
  // master weights directly. Skipped after divergence or a cooperative
  // stop (both mean the Adam stage did not finish cleanly) and in dist
  // mode (the ranks would each run an unsynchronized full-batch stage).
  std::optional<double> second_stage_loss;
  if (config_.second_stage.enabled && !result.diverged &&
      !result.interrupted && !dist_active()) {
    const optim::LbfgsResult refined = run_second_stage(last_completed());
    second_stage_loss = refined.final_loss;
    log::info() << problem_->name() << " L-BFGS second stage: loss "
                << refined.final_loss << " after " << refined.iterations
                << " iterations (grad norm " << refined.final_grad_norm
                << (refined.converged ? ", converged)" : ")");
  }

  if (checkpointer && last_completed() >= 0) {
    // Final checkpoint — also the graceful-shutdown write.
    checkpointer->save_last(model_->named_parameters(),
                            make_state(last_completed()));
  }
  if (config_.dist) config_.dist->shutdown();

  result.recoveries = static_cast<std::int64_t>(result.recovery_events.size());
  result.epochs_run = static_cast<std::int64_t>(result.history.size());
  if (!result.history.empty()) {
    result.final_loss = result.history.back().total_loss;
  }
  if (second_stage_loss) result.final_loss = *second_stage_loss;
  result.final_l2 = evaluate_l2();
  result.seconds = watch.seconds();
  return result;
}

optim::LbfgsResult Trainer::run_second_stage(std::int64_t epoch) {
  Tensor weights;
  if (config_.curriculum) {
    weights = per_point_weights(*config_.curriculum, problem_->domain(),
                                points_.interior, epoch);
  }
  const optim::LossClosure closure = [&]() {
    std::vector<std::pair<std::string, double>> aux;
    double aux_weighted_sum = 0.0;
    const Variable loss =
        shard_loss(points_.interior, weights, points_.interior.rows(),
                   /*include_aux=*/true, &aux, &aux_weighted_sum);
    const std::vector<Variable> grads = grad(loss, params_);
    std::vector<Tensor> grad_values;
    grad_values.reserve(grads.size());
    for (const Variable& g : grads) grad_values.push_back(g.value());
    return std::make_pair(loss.item(), std::move(grad_values));
  };
  return optim::lbfgs_minimize(params_, closure, config_.second_stage.lbfgs);
}

}  // namespace qpinn::core

#include "core/inverse_problem.hpp"

#include <cmath>

#include "autodiff/derivatives.hpp"
#include "autodiff/grad.hpp"
#include "optim/adam.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"

namespace qpinn::core {

using autodiff::Variable;
using namespace autodiff;

void InverseHarmonicConfig::validate() const {
  domain.validate();
  if (data_points.rank() != 2 || data_points.cols() != 2) {
    throw ConfigError("inverse: data_points must be (N, 2)");
  }
  if (data_values.rank() != 2 || data_values.cols() != 2 ||
      data_values.rows() != data_points.rows()) {
    throw ConfigError("inverse: data_values must match data_points rows");
  }
  if (!initial) throw ConfigError("inverse: initial condition op required");
  if (omega_guess <= 0.0) throw ConfigError("inverse: omega_guess must be > 0");
  if (epochs < 1) throw ConfigError("inverse: epochs must be >= 1");
}

std::pair<Tensor, Tensor> make_observations(
    const quantum::SpaceTimeField& field, const Domain& domain,
    std::int64_t nx, std::int64_t nt, double noise_stddev,
    std::uint64_t seed) {
  QPINN_CHECK(static_cast<bool>(field), "make_observations: field unset");
  QPINN_CHECK(nx >= 2 && nt >= 2, "make_observations: need nx, nt >= 2");
  QPINN_CHECK(noise_stddev >= 0.0, "make_observations: noise must be >= 0");
  const Tensor points = grid_points(domain, nx, nt);
  Tensor values(Shape{points.rows(), 2});
  Rng rng(seed);
  for (std::int64_t r = 0; r < points.rows(); ++r) {
    const quantum::Complex psi =
        field(points.at(r, 0), points.at(r, 1));
    values.at(r, 0) = psi.real() + rng.normal(0.0, noise_stddev);
    values.at(r, 1) = psi.imag() + rng.normal(0.0, noise_stddev);
  }
  return {points, values};
}

InverseResult solve_inverse_harmonic(const InverseHarmonicConfig& config) {
  config.validate();

  // Field model: standard backbone with normalization; soft IC (the hard
  // IC transform would also work, kept soft to exercise the general path).
  FieldModelConfig mc;
  mc.hidden = {32, 32, 32};
  mc.fourier = nn::FourierConfig{16, 1.0};
  mc.normalization = InputNormalization::for_domain(
      config.domain.x_lo, config.domain.x_hi, config.domain.t_lo,
      config.domain.t_hi);
  mc.seed = config.seed;
  auto model = make_field_model(mc);

  // omega = w^2 keeps the frequency positive without constraints.
  Variable w = Variable::leaf(
      Tensor::full({1, 1}, std::sqrt(config.omega_guess)));
  std::vector<Variable> params = model->parameters();
  params.push_back(w);
  optim::Adam optimizer(params, config.adam);

  const CollocationSet points = make_collocation(config.domain, config.sampling);
  const Variable data_x = Variable::constant(config.data_points);
  const Variable data_y = Variable::constant(config.data_values);

  InverseResult result;
  result.omega_history.reserve(static_cast<std::size_t>(config.epochs));

  Rng resample_rng(config.seed ^ 0x51ed2701ULL);
  Tensor interior = points.interior;
  const std::int64_t n_interior =
      config.sampling.n_interior_x * config.sampling.n_interior_t;

  for (std::int64_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Fresh collocation points every epoch (same rationale as the forward
    // trainer: prevents residual overfitting).
    interior = latin_hypercube_points(config.domain, n_interior, resample_rng);

    const Variable omega = square(w);

    // PDE residual with the PARAMETRIZED potential V = 1/2 omega^2 x^2.
    const Variable X = Variable::leaf(interior, /*requires_grad=*/true);
    const Variable out = model->forward(X);
    const Variable u = slice_cols(out, 0, 1);
    const Variable v = slice_cols(out, 1, 2);
    const Variable u_t = partial(u, X, 1);
    const Variable v_t = partial(v, X, 1);
    const Variable u_xx = partial_n(u, X, 0, 2);
    const Variable v_xx = partial_n(v, X, 0, 2);
    const Variable x_col = slice_cols(X, 0, 1);
    const Variable v_pot =
        mul(broadcast_to(scale(square(omega), 0.5), x_col.shape()),
            square(x_col));
    const Variable r1 = sub(add(neg(v_t), scale(u_xx, 0.5)), mul(v_pot, u));
    const Variable r2 = sub(add(u_t, scale(v_xx, 0.5)), mul(v_pot, v));
    const Variable pde_loss = add(mse(r1), mse(r2));

    // Data misfit.
    const Variable pred = model->forward(data_x);
    const Variable data_loss = mse(sub(pred, data_y));

    // Initial condition.
    const Variable Xi = Variable::constant(points.initial);
    const Variable ic_out = model->forward(Xi);
    auto [u0, v0] = config.initial(slice_cols(Xi, 0, 1));
    const Variable ic_loss = add(mse(sub(slice_cols(ic_out, 0, 1), u0)),
                                 mse(sub(slice_cols(ic_out, 1, 2), v0)));

    Variable loss = scale(pde_loss, config.weight_pde);
    loss = add(loss, scale(data_loss, config.weight_data));
    loss = add(loss, scale(ic_loss, config.weight_ic));
    // The loss picked up omega's (1,1) shape through broadcasting guards;
    // reduce to scalar for reporting.
    const double loss_value = sum_all(loss).item();
    if (!std::isfinite(loss_value)) {
      throw NumericsError("inverse training diverged at epoch " +
                          std::to_string(epoch));
    }

    result.omega_history.push_back(square(w).item());
    if (config.log_every > 0 && epoch % config.log_every == 0) {
      log::info() << "inverse epoch " << epoch << " loss " << loss_value
                  << " omega " << result.omega_history.back();
    }

    const std::vector<Variable> grads = grad(loss, params);
    std::vector<Tensor> grad_tensors;
    grad_tensors.reserve(grads.size());
    for (const Variable& g : grads) grad_tensors.push_back(g.value());
    optimizer.step(grad_tensors);

    result.final_loss = loss_value;
    result.data_loss = data_loss.item();
  }

  result.omega = square(w).item();
  result.model = std::move(model);
  return result;
}

}  // namespace qpinn::core

// Full-training-state checkpointing (format v2).
//
// A v2 training checkpoint extends the nn parameter block with tagged
// sections holding the optimizer moments + step count, the resampling RNG,
// the LR recovery scale, the epoch counter, and the live interior
// collocation set — everything Trainer needs to resume a killed run
// bit-for-bit. Writes are crash-consistent (tmp + flush + fsync + rename)
// and rotate a `last.qckpt` / `best.qckpt` pair; a failed write is retried
// and then *skipped* with a warning, because losing one snapshot must not
// kill a multi-hour training run.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "nn/serialize.hpp"
#include "optim/optimizer.hpp"
#include "tensor/tensor.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace qpinn::core {

/// A checkpoint file is malformed: truncated, bit-rotted, or hostile.
/// Derives from IoError so existing last->best fallback paths (which catch
/// IoError) treat a corrupt file exactly like an unreadable one.
class CheckpointError : public IoError {
 public:
  explicit CheckpointError(const std::string& what) : IoError(what) {}
};

/// Everything beyond the model parameters that a resumed run needs.
struct TrainingState {
  std::int64_t epoch = -1;  ///< last completed epoch (-1: nothing run)
  double lr_scale = 1.0;    ///< LR multiplier from divergence backoff
  std::int64_t recoveries = 0;
  double best_loss = std::numeric_limits<double>::infinity();
  optim::OptimizerState optimizer;
  RngState resample_rng;
  /// Interior collocation snapshot (rank 2 when present), so a resumed run
  /// trains on the exact points of the interrupted one until the next
  /// resample.
  Tensor interior;
  bool has_interior = false;
};

struct CheckpointConfig {
  std::string dir = "checkpoints";
  /// Save cadence in epochs (0: only the final checkpoint of fit()).
  std::int64_t every = 0;
  /// Also rotate best.qckpt whenever the total loss improves.
  bool keep_best = true;
  /// Additional attempts after a failed write before giving up on that
  /// snapshot (training continues either way).
  int max_write_retries = 1;

  void validate() const;
};

class Checkpointer {
 public:
  explicit Checkpointer(CheckpointConfig config);

  std::string last_path() const;
  std::string best_path() const;

  /// Rotating saves with retry; return false when the write failed even
  /// after retries (the failure is logged, never thrown).
  bool save_last(const nn::NamedParams& params, const TrainingState& state);
  bool save_best(const nn::NamedParams& params, const TrainingState& state);

  /// Failed write attempts so far (each retry counts).
  std::int64_t failed_writes() const { return failed_writes_; }

  /// Atomic single-file write of a full training state; throws IoError.
  static void save_state(const std::string& path, const nn::NamedParams& params,
                         const TrainingState& state);

  /// Loads parameters in place and returns the training state. Rejects v1
  /// (parameter-only) files — they carry no state to resume from.
  static TrainingState load_state(const std::string& path,
                                  const nn::NamedParams& params);

  /// Byte-level counterpart of load_state: parses `bytes` as a whole v2
  /// checkpoint file (CRC trailer included when present). Every section
  /// header is bound-checked against the bytes actually remaining before
  /// any allocation, so truncated or bit-rotted input yields a structured
  /// CheckpointError instead of a bad resize/read. `label` names the
  /// source in error messages. This is the entry point
  /// fuzz/fuzz_checkpoint_load.cpp drives.
  static TrainingState load_state_from_bytes(std::string bytes,
                                             const nn::NamedParams& params,
                                             const std::string& label);

  /// Reads only the training-state sections of a v2 checkpoint: the
  /// parameter block is bound-checked and skipped, never copied into a
  /// module. Used by Trainer on resume to recover the best loss recorded in
  /// best.qckpt (which last.qckpt may predate), and by the serving promoter
  /// to poll best.qckpt for new epochs without paying a full load.
  static TrainingState peek_state(const std::string& path);
  static TrainingState peek_state_from_bytes(std::string bytes,
                                             const std::string& label);

 private:
  /// Shared parse behind load_state*/peek_state*: a null `params` skips the
  /// parameter block instead of loading it.
  static TrainingState parse_state(std::string bytes,
                                   const nn::NamedParams* params,
                                   const std::string& label);

  bool save_with_retry(const std::string& path, const nn::NamedParams& params,
                       const TrainingState& state);

  CheckpointConfig config_;
  std::int64_t failed_writes_ = 0;
};

}  // namespace qpinn::core

#include "core/field_model.hpp"

#include "util/error.hpp"

namespace qpinn::core {

using autodiff::Variable;
using namespace autodiff;

InputNormalization InputNormalization::for_domain(double x_lo, double x_hi,
                                                  double t_lo, double t_hi) {
  QPINN_CHECK(x_hi > x_lo && t_hi > t_lo,
              "normalization needs a non-degenerate domain");
  InputNormalization norm;
  norm.x_center = 0.5 * (x_lo + x_hi);
  norm.x_half_span = 0.5 * (x_hi - x_lo);
  norm.t_center = 0.5 * (t_lo + t_hi);
  norm.t_half_span = 0.5 * (t_hi - t_lo);
  return norm;
}

FieldModel::FieldModel(std::unique_ptr<nn::Module> backbone,
                       std::optional<HardIc> hard_ic,
                       std::optional<InputNormalization> normalization)
    : backbone_(std::move(backbone)),
      hard_ic_(std::move(hard_ic)),
      normalization_(normalization) {
  QPINN_CHECK(backbone_ != nullptr, "FieldModel needs a backbone");
  QPINN_CHECK(backbone_->input_dim() == 2,
              "FieldModel backbone must take (x, t) input");
  QPINN_CHECK(backbone_->output_dim() == 2,
              "FieldModel backbone must emit (u, v)");
  if (hard_ic_) {
    QPINN_CHECK(static_cast<bool>(hard_ic_->psi0),
                "hard IC requires a psi0 field op");
  }
}

Variable FieldModel::forward(const Variable& X) {
  QPINN_CHECK_SHAPE(X.value().rank() == 2 && X.value().cols() == 2,
                    "FieldModel expects (N, 2) input, got " +
                        shape_to_string(X.shape()));
  Variable net_input = X;
  if (normalization_) {
    const InputNormalization& n = *normalization_;
    const Variable x_hat =
        scale(add_scalar(slice_cols(X, 0, 1), -n.x_center),
              1.0 / n.x_half_span);
    const Variable t_hat =
        scale(add_scalar(slice_cols(X, 1, 2), -n.t_center),
              1.0 / n.t_half_span);
    net_input = concat_cols({x_hat, t_hat});
  }
  const Variable raw = backbone_->forward(net_input);
  if (!hard_ic_) return raw;

  const Variable x = slice_cols(X, 0, 1);
  const Variable t = slice_cols(X, 1, 2);
  const Variable ramp = add_scalar(t, -hard_ic_->t0);
  auto [u0, v0] = hard_ic_->psi0(x);
  const Variable u = add(u0, mul(ramp, slice_cols(raw, 0, 1)));
  const Variable v = add(v0, mul(ramp, slice_cols(raw, 1, 2)));
  return concat_cols({u, v});
}

Tensor FieldModel::evaluate(const Tensor& X) {
  NoGradGuard guard;
  const Variable input = Variable::constant(X);
  return forward(input).value();
}

std::shared_ptr<FieldModel> make_field_model(const FieldModelConfig& config) {
  nn::MlpConfig mlp;
  mlp.in_dim = 2;
  mlp.out_dim = 2;
  mlp.hidden = config.hidden;
  mlp.activation = config.activation;
  mlp.fourier = config.fourier;
  if (config.x_period > 0.0) {
    // The backbone sees normalized x, so convert the period accordingly.
    const double period =
        config.normalization
            ? config.x_period / config.normalization->x_half_span
            : config.x_period;
    mlp.periods = {period, 0.0};
  }
  mlp.seed = config.seed;
  return std::make_shared<FieldModel>(std::make_unique<nn::Mlp>(mlp),
                                      config.hard_ic, config.normalization);
}

}  // namespace qpinn::core

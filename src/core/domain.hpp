// Space-time domain and collocation sampling for 1+1-D PINN problems.
#pragma once

#include <cstdint>
#include <string>

#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace qpinn::core {

/// Rectangular space-time domain [x_lo, x_hi] x [t_lo, t_hi].
struct Domain {
  double x_lo = -1.0;
  double x_hi = 1.0;
  double t_lo = 0.0;
  double t_hi = 1.0;

  double x_span() const { return x_hi - x_lo; }
  double t_span() const { return t_hi - t_lo; }
  void validate() const;  ///< throws ConfigError when degenerate
};

enum class SamplerKind {
  kGrid,            ///< tensor-product nx x nt grid
  kUniformRandom,   ///< i.i.d. uniform points
  kLatinHypercube,  ///< stratified in both coordinates
};

SamplerKind parse_sampler(const std::string& name);
std::string to_string(SamplerKind kind);

/// (nx * nt, 2) tensor of (x, t) rows on a tensor-product grid. Interior
/// excludes t = t_lo slice when `skip_initial_slice` (those points belong
/// to the IC loss).
Tensor grid_points(const Domain& domain, std::int64_t nx, std::int64_t nt,
                   bool skip_initial_slice = false);

/// n i.i.d. uniform points in the domain.
Tensor uniform_points(const Domain& domain, std::int64_t n, Rng& rng);

/// n Latin-hypercube points (one per stratum in each coordinate).
Tensor latin_hypercube_points(const Domain& domain, std::int64_t n, Rng& rng);

/// (nx, 2) points on the initial slice t = t_lo.
Tensor initial_points(const Domain& domain, std::int64_t nx);

/// (2 * nt, 2) points on the two spatial walls (x_lo rows first).
Tensor boundary_points(const Domain& domain, std::int64_t nt);

/// The collocation sets a training run works with.
struct CollocationSet {
  Tensor interior;  ///< (N, 2) PDE residual points
  Tensor initial;   ///< (Ni, 2) initial-condition points
  Tensor boundary;  ///< (Nb, 2) wall points (may be empty for periodic)
};

struct SamplingConfig {
  SamplerKind kind = SamplerKind::kGrid;
  std::int64_t n_interior_x = 32;  ///< grid: points per axis; random: total
  std::int64_t n_interior_t = 32;
  std::int64_t n_initial = 64;
  std::int64_t n_boundary = 0;  ///< 0 disables wall points
  std::uint64_t seed = 0;
};

CollocationSet make_collocation(const Domain& domain,
                                const SamplingConfig& config);

}  // namespace qpinn::core

// The four quantum benchmark problems of the reproduction, each paired
// with a recommended field-model configuration.
//
// B1 free-packet TDSE      — analytic reference (Gaussian integral form)
// B2 HO coherent state     — analytic reference
// B3 infinite-well beat    — analytic eigen-expansion reference
// B4 NLS bright soliton    — analytic reference
// B5 NLS Raissi 2 sech(x)  — split-step Fourier reference (no closed form)
#pragma once

#include <memory>

#include "core/schrodinger_problem.hpp"
#include "core/trainer.hpp"

namespace qpinn::core {

struct BenchmarkOverrides {
  /// Norm-conservation loss weight (0 disables — ablation dimension F3).
  double weight_norm = 0.0;
  /// IC loss weight.
  double weight_ic = 10.0;
  /// Wall (Dirichlet) loss weight for non-periodic problems.
  double weight_bc = 10.0;
};

/// B1: free Gaussian packet, x in [-6, 6], t in [0, 1],
/// psi0 centered at x0 = -2 moving with k0 = 2, sigma0 = 0.5.
std::shared_ptr<SchrodingerProblem> make_free_packet_problem(
    const BenchmarkOverrides& overrides = {});

/// B2: harmonic-oscillator coherent state displaced to x0 = 1,
/// x in [-6, 6], t in [0, 2].
std::shared_ptr<SchrodingerProblem> make_ho_coherent_problem(
    const BenchmarkOverrides& overrides = {});

/// B3: infinite well [0, 1], equal superposition of n = 1, 2,
/// t in [0, 0.4] (about one beat period is 4/(3 pi) ~ 0.42).
std::shared_ptr<SchrodingerProblem> make_well_superposition_problem(
    const BenchmarkOverrides& overrides = {});

/// B4: NLS bright soliton a = 1, v = 1, x in [-5, 5] periodic,
/// t in [0, 1].
std::shared_ptr<SchrodingerProblem> make_nls_soliton_problem(
    const BenchmarkOverrides& overrides = {});

/// B5: the Raissi NLS benchmark psi0 = 2 sech x, x in [-5, 5] periodic,
/// t in [0, pi/2]; reference computed once by split-step Fourier
/// (nx = 256, ~2e3 steps) and bilinearly interpolated.
std::shared_ptr<SchrodingerProblem> make_nls_raissi_problem(
    const BenchmarkOverrides& overrides = {});

/// A model configuration adapted to the problem: periodic x-embedding for
/// periodic problems, input normalization to [-1,1]^2, RFF on, tanh
/// activations.
FieldModelConfig default_model_config(const SchrodingerProblem& problem,
                                      std::uint64_t seed = 0);

/// Builds the standard model for a benchmark problem. `hard_ic` wires the
/// problem's own initial condition into the exact-IC transform (the
/// configuration that converges most reliably).
std::shared_ptr<FieldModel> make_model_for(const SchrodingerProblem& problem,
                                           std::uint64_t seed = 0,
                                           bool hard_ic = true);

/// The training recipe validated in this reproduction: Adam 2e-3 with
/// exponential decay, Latin-hypercube collocation resampled every epoch
/// (the key defense against residual overfitting), soft walls for
/// non-periodic problems.
TrainConfig default_train_config(std::int64_t epochs, std::uint64_t seed = 0);

}  // namespace qpinn::core

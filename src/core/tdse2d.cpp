#include "core/tdse2d.hpp"

#include <cmath>

#include "autodiff/derivatives.hpp"
#include "autodiff/grad.hpp"
#include "core/field_ops.hpp"
#include "optim/adam.hpp"
#include "util/error.hpp"
#include "util/logging.hpp"
#include "util/timer.hpp"

namespace qpinn::core {

using autodiff::Variable;
using namespace autodiff;

void Domain2d::validate() const {
  if (!(x_hi > x_lo) || !(y_hi > y_lo) || !(t_hi > t_lo)) {
    throw ConfigError("Domain2d must have positive spans in x, y, t");
  }
}

void Tdse2dConfig::validate() const {
  domain.validate();
  if (!reference) throw ConfigError("tdse2d: reference field required");
  if (!initial) throw ConfigError("tdse2d: initial op required");
  if (epochs < 1) throw ConfigError("tdse2d: epochs must be >= 1");
  if (lr <= 0.0) throw ConfigError("tdse2d: lr must be positive");
  if (n_interior < 8) throw ConfigError("tdse2d: n_interior too small");
  if (hidden.empty()) throw ConfigError("tdse2d: need hidden layers");
}

SpaceTimeField2d free_gaussian_packet_2d(double x0, double kx, double sigma_x,
                                         double y0, double ky,
                                         double sigma_y) {
  const auto fx = quantum::free_gaussian_packet(x0, kx, sigma_x);
  const auto fy = quantum::free_gaussian_packet(y0, ky, sigma_y);
  return [fx, fy](double x, double y, double t) {
    return fx(x, t) * fy(y, t);
  };
}

FieldOp2d gaussian_packet_2d_ic(double x0, double kx, double sigma_x,
                                double y0, double ky, double sigma_y) {
  const FieldOp icx = gaussian_packet_ic(x0, kx, sigma_x);
  const FieldOp icy = gaussian_packet_ic(y0, ky, sigma_y);
  return [icx, icy](const Variable& x, const Variable& y) {
    auto [ux, vx] = icx(x);
    auto [uy, vy] = icy(y);
    // Complex product (ux + i vx)(uy + i vy).
    return std::make_pair(sub(mul(ux, uy), mul(vx, vy)),
                          add(mul(ux, vy), mul(vx, uy)));
  };
}

Tensor latin_hypercube_points_2d(const Domain2d& domain, std::int64_t n,
                                 Rng& rng) {
  domain.validate();
  QPINN_CHECK(n >= 1, "latin_hypercube_points_2d needs n >= 1");
  const auto perm_x = rng.permutation(static_cast<std::size_t>(n));
  const auto perm_y = rng.permutation(static_cast<std::size_t>(n));
  const auto perm_t = rng.permutation(static_cast<std::size_t>(n));
  Tensor out(Shape{n, 3});
  double* p = out.data();
  const double inv_n = 1.0 / static_cast<double>(n);
  for (std::int64_t r = 0; r < n; ++r) {
    const auto stratum = [&](const std::vector<std::size_t>& perm) {
      return (static_cast<double>(perm[static_cast<std::size_t>(r)]) +
              rng.uniform()) *
             inv_n;
    };
    p[3 * r] = domain.x_lo + (domain.x_hi - domain.x_lo) * stratum(perm_x);
    p[3 * r + 1] = domain.y_lo + (domain.y_hi - domain.y_lo) * stratum(perm_y);
    p[3 * r + 2] = domain.t_lo + (domain.t_hi - domain.t_lo) * stratum(perm_t);
  }
  return out;
}

Tdse2dSolver::Tdse2dSolver(Tdse2dConfig config)
    : config_(std::move(config)), rng_(config_.seed ^ 0x2d2d2dULL) {
  config_.validate();
  nn::MlpConfig mlp;
  mlp.in_dim = 3;
  mlp.out_dim = 2;
  mlp.hidden = config_.hidden;
  mlp.activation = config_.activation;
  mlp.fourier = config_.fourier;
  mlp.seed = config_.seed;
  net_ = std::make_unique<nn::Mlp>(mlp);
}

Variable Tdse2dSolver::forward(const Variable& X) {
  const Domain2d& d = config_.domain;
  const Variable x = slice_cols(X, 0, 1);
  const Variable y = slice_cols(X, 1, 2);
  const Variable t = slice_cols(X, 2, 3);

  // Normalize each coordinate to [-1, 1] before the backbone.
  auto normalized = [](const Variable& col, double lo, double hi) {
    return scale(add_scalar(col, -0.5 * (lo + hi)), 2.0 / (hi - lo));
  };
  const Variable net_in = concat_cols({normalized(x, d.x_lo, d.x_hi),
                                       normalized(y, d.y_lo, d.y_hi),
                                       normalized(t, d.t_lo, d.t_hi)});
  const Variable raw = net_->forward(net_in);

  // Hard IC: psi = psi0(x, y) + (t - t_lo) * NN.
  const Variable ramp = add_scalar(t, -d.t_lo);
  auto [u0, v0] = config_.initial(x, y);
  const Variable u = add(u0, mul(ramp, slice_cols(raw, 0, 1)));
  const Variable v = add(v0, mul(ramp, slice_cols(raw, 1, 2)));
  return concat_cols({u, v});
}

Variable Tdse2dSolver::residual(const Variable& X) {
  const Variable out = forward(X);
  const Variable u = slice_cols(out, 0, 1);
  const Variable v = slice_cols(out, 1, 2);

  const Variable u_t = partial(u, X, 2);
  const Variable v_t = partial(v, X, 2);
  const Variable lap_u = add(partial_n(u, X, 0, 2), partial_n(u, X, 1, 2));
  const Variable lap_v = add(partial_n(v, X, 0, 2), partial_n(v, X, 1, 2));

  Variable r1 = add(neg(v_t), scale(lap_u, 0.5));
  Variable r2 = add(u_t, scale(lap_v, 0.5));
  if (config_.potential) {
    // V enters multiplicatively (never differentiated), so a constant
    // column built from the batch values is exact.
    Tensor v_values(Shape{X.value().rows(), 1});
    const double* px = X.value().data();
    for (std::int64_t r = 0; r < v_values.rows(); ++r) {
      v_values[r] = config_.potential(px[3 * r], px[3 * r + 1]);
    }
    const Variable v_pot = Variable::constant(v_values);
    r1 = sub(r1, mul(v_pot, u));
    r2 = sub(r2, mul(v_pot, v));
  }
  return concat_cols({r1, r2});
}

Tensor Tdse2dSolver::residual_at(const Tensor& points) {
  QPINN_CHECK_SHAPE(points.rank() == 2 && points.cols() == 3,
                    "tdse2d: points must be (N, 3)");
  const Variable X = Variable::leaf(points.clone());
  return residual(X).value();
}

Tensor Tdse2dSolver::evaluate(const Tensor& points) {
  QPINN_CHECK_SHAPE(points.rank() == 2 && points.cols() == 3,
                    "tdse2d: points must be (N, 3)");
  NoGradGuard guard;
  return forward(Variable::constant(points)).value();
}

double Tdse2dSolver::relative_l2(std::int64_t nx, std::int64_t ny,
                                 std::int64_t nt) {
  QPINN_CHECK(nx >= 2 && ny >= 2 && nt >= 2, "tdse2d: metric grid too small");
  const Domain2d& d = config_.domain;
  const Tensor xs = Tensor::linspace(d.x_lo, d.x_hi, nx);
  const Tensor ys = Tensor::linspace(d.y_lo, d.y_hi, ny);
  const Tensor ts = Tensor::linspace(d.t_lo, d.t_hi, nt);
  Tensor points(Shape{nx * ny * nt, 3});
  double* p = points.data();
  for (std::int64_t k = 0; k < nt; ++k) {
    for (std::int64_t j = 0; j < ny; ++j) {
      for (std::int64_t i = 0; i < nx; ++i) {
        *p++ = xs[i];
        *p++ = ys[j];
        *p++ = ts[k];
      }
    }
  }
  const Tensor pred = evaluate(points);
  double num = 0.0, den = 0.0;
  const double* pp = pred.data();
  const double* pq = points.data();
  for (std::int64_t r = 0; r < points.rows(); ++r) {
    const quantum::Complex exact =
        config_.reference(pq[3 * r], pq[3 * r + 1], pq[3 * r + 2]);
    const double du = pp[2 * r] - exact.real();
    const double dv = pp[2 * r + 1] - exact.imag();
    num += du * du + dv * dv;
    den += std::norm(exact);
  }
  QPINN_CHECK(den > 0.0, "tdse2d: reference identically zero on the grid");
  return std::sqrt(num / den);
}

Tdse2dResult Tdse2dSolver::fit() {
  Stopwatch watch;
  std::vector<Variable> params = net_->parameters();
  optim::AdamConfig adam_config;
  adam_config.lr = config_.lr;
  optim::Adam optimizer(params, adam_config);

  Tdse2dResult result;
  result.loss_history.reserve(static_cast<std::size_t>(config_.epochs));
  for (std::int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    const double lr =
        config_.lr * std::pow(config_.lr_decay,
                              static_cast<double>(epoch /
                                                  config_.lr_decay_every));
    optimizer.set_lr(lr);

    const Tensor points =
        latin_hypercube_points_2d(config_.domain, config_.n_interior, rng_);
    const Variable X = Variable::leaf(points, /*requires_grad=*/true);
    const Variable loss = mse(residual(X));
    const double loss_value = loss.item();
    if (!std::isfinite(loss_value)) {
      throw NumericsError("tdse2d training diverged at epoch " +
                          std::to_string(epoch));
    }
    result.loss_history.push_back(loss_value);
    if (config_.log_every > 0 && epoch % config_.log_every == 0) {
      log::info() << "tdse2d epoch " << epoch << " loss " << loss_value;
    }

    const std::vector<Variable> grads = grad(loss, params);
    std::vector<Tensor> grad_tensors;
    grad_tensors.reserve(grads.size());
    for (const Variable& g : grads) grad_tensors.push_back(g.value());
    optimizer.step(grad_tensors);
  }
  result.final_loss = result.loss_history.back();
  result.final_l2 = relative_l2(24, 24, 8);
  result.seconds = watch.seconds();
  return result;
}

}  // namespace qpinn::core

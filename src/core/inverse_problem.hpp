// Inverse quantum problems: identify potential parameters from observed
// wavefunction data.
//
// Given noisy samples of psi(x, t) (e.g. produced by the Crank-Nicolson
// solver from the TRUE potential), a PINN is trained with
//
//   L = L_data (match the samples) + L_pde (Schrödinger residual with the
//       PARAMETRIZED potential) + L_ic
//
// where the potential parameters (here: the trap frequency omega of
// V = 1/2 omega^2 x^2) are trainable leaves updated alongside the network
// weights. Recovering omega from data is the canonical quantum inverse
// problem in the PINN literature.
#pragma once

#include <memory>

#include "core/field_model.hpp"
#include "core/trainer.hpp"

namespace qpinn::core {

struct InverseHarmonicConfig {
  Domain domain{-5.0, 5.0, 0.0, 1.0};
  /// Observed data: rows (x, t) and matching (Re psi, Im psi) targets.
  Tensor data_points;   ///< (N, 2)
  Tensor data_values;   ///< (N, 2)
  /// Initial guess for omega (the unknown to recover).
  double omega_guess = 0.5;
  /// Initial condition of the observed evolution (known experimentally).
  FieldOp initial;

  std::int64_t epochs = 1500;
  optim::AdamConfig adam{};
  double weight_data = 10.0;
  double weight_pde = 1.0;
  double weight_ic = 10.0;
  SamplingConfig sampling{};
  std::uint64_t seed = 0;
  std::int64_t log_every = 0;

  void validate() const;
};

struct InverseResult {
  double omega = 0.0;            ///< recovered trap frequency
  double final_loss = 0.0;
  double data_loss = 0.0;        ///< final data misfit
  std::vector<double> omega_history;  ///< omega per epoch
  std::shared_ptr<FieldModel> model;
};

/// Trains the joint (network, omega) system and returns the recovered
/// frequency. Omega is parametrized as omega = softplus-free |w| via w^2
/// to keep it positive.
InverseResult solve_inverse_harmonic(const InverseHarmonicConfig& config);

/// Convenience: builds (data_points, data_values) by sampling a
/// SpaceTimeField on a grid with optional Gaussian noise.
std::pair<Tensor, Tensor> make_observations(
    const quantum::SpaceTimeField& field, const Domain& domain,
    std::int64_t nx, std::int64_t nt, double noise_stddev, std::uint64_t seed);

}  // namespace qpinn::core

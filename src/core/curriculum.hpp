// Adaptive temporal weighting (time-domain curriculum).
//
// Collocation points are grouped into M time bins; later bins start with a
// small residual weight that ramps to 1 as training progresses, so the
// network resolves early-time dynamics first and propagates the solution
// forward in a causality-respecting manner (Wang, Sankaran & Perdikaris
// 2024 style).
#pragma once

#include <cstdint>
#include <vector>

#include "core/domain.hpp"

namespace qpinn::core {

struct CurriculumConfig {
  std::int64_t bins = 5;
  /// Epoch by which every bin reaches full weight.
  std::int64_t warmup_epochs = 1000;
  /// Weight a bin starts from before its ramp begins.
  double min_weight = 1e-2;

  void validate() const;
};

/// Per-bin weights at `epoch`: bin m stays at min_weight until its start
/// epoch m/M * warmup, ramps linearly to 1 over one bin interval, then
/// stays at 1. Bin 0 is always 1.
std::vector<double> curriculum_weights(const CurriculumConfig& config,
                                       std::int64_t epoch);

/// (N, 1) per-point weights for collocation rows X (columns x, t): each
/// point gets its time bin's weight.
Tensor per_point_weights(const CurriculumConfig& config,
                         const Domain& domain, const Tensor& X,
                         std::int64_t epoch);

}  // namespace qpinn::core

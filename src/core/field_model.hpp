// The PINN field model: a backbone network mapping (x, t) -> (u, v) with
// an optional hard initial-condition transform
//
//   psi_theta(x, t) = psi0(x) + (t - t0) * NN_theta(x, t)
//
// which enforces the IC exactly (the IC loss becomes unnecessary) — one of
// the ablation dimensions in the experiments.
#pragma once

#include <memory>
#include <optional>

#include "core/field_ops.hpp"
#include "nn/mlp.hpp"

namespace qpinn::core {

struct HardIc {
  FieldOp psi0;
  double t0 = 0.0;
};

/// Fixed affine input normalization (x, t) -> ((x - cx)/sx, (t - ct)/st)
/// mapping the training domain onto [-1, 1]^2. Keeps tanh layers and
/// Fourier features in their useful range regardless of domain size.
struct InputNormalization {
  double x_center = 0.0, x_half_span = 1.0;
  double t_center = 0.0, t_half_span = 1.0;

  static InputNormalization for_domain(double x_lo, double x_hi, double t_lo,
                                       double t_hi);
};

class FieldModel {
 public:
  /// Takes ownership of the backbone; out_dim must be 2 (u, v). The
  /// backbone sees normalized inputs when `normalization` is set.
  FieldModel(std::unique_ptr<nn::Module> backbone,
             std::optional<HardIc> hard_ic = std::nullopt,
             std::optional<InputNormalization> normalization = std::nullopt);

  /// Builds the forward graph for a batch X of (x, t) rows; returns (N, 2).
  autodiff::Variable forward(const autodiff::Variable& X);

  /// Evaluates without building graphs (metrics / inference).
  Tensor evaluate(const Tensor& X);

  std::vector<autodiff::Variable> parameters() const {
    return backbone_->parameters();
  }
  std::vector<std::pair<std::string, autodiff::Variable>> named_parameters()
      const {
    return backbone_->named_parameters();
  }
  std::int64_t num_parameters() const { return backbone_->num_parameters(); }
  bool has_hard_ic() const { return hard_ic_.has_value(); }
  nn::Module& backbone() { return *backbone_; }

 private:
  std::unique_ptr<nn::Module> backbone_;
  std::optional<HardIc> hard_ic_;
  std::optional<InputNormalization> normalization_;
};

/// Architecture + feature configuration of the standard QPINN field model.
struct FieldModelConfig {
  std::vector<std::int64_t> hidden = {64, 64, 64, 64};
  nn::Activation activation = nn::Activation::kTanh;
  /// Random Fourier features (nullopt disables).
  std::optional<nn::FourierConfig> fourier = nn::FourierConfig{64, 1.0};
  /// Period of the x coordinate (0 = not periodic). Time is never embedded
  /// periodically.
  double x_period = 0.0;
  /// Exact-IC transform (nullopt disables; the IC is then a loss term).
  std::optional<HardIc> hard_ic;
  /// Affine input normalization (strongly recommended; set from the
  /// problem domain). With x_period set, the periodic embedding runs on
  /// raw x and only t is normalized.
  std::optional<InputNormalization> normalization;
  std::uint64_t seed = 0;
};

/// Builds the standard 2-input (x, t) -> 2-output (u, v) model.
std::shared_ptr<FieldModel> make_field_model(const FieldModelConfig& config);

}  // namespace qpinn::core

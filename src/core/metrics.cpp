#include "core/metrics.hpp"

#include <cmath>

#include "util/error.hpp"

namespace qpinn::core {

Tensor sample_reference(const quantum::SpaceTimeField& reference,
                        const Tensor& X) {
  QPINN_CHECK(static_cast<bool>(reference), "reference field is unset");
  QPINN_CHECK_SHAPE(X.rank() == 2 && X.cols() == 2,
                    "sample_reference expects (N, 2) points");
  const std::int64_t n = X.rows();
  Tensor out(Shape{n, 2});
  const double* px = X.data();
  double* po = out.data();
  for (std::int64_t r = 0; r < n; ++r) {
    const quantum::Complex value = reference(px[2 * r], px[2 * r + 1]);
    po[2 * r] = value.real();
    po[2 * r + 1] = value.imag();
  }
  return out;
}

namespace {
Tensor evaluation_grid(const Domain& domain, std::int64_t nx,
                       std::int64_t nt) {
  return grid_points(domain, nx, nt, /*skip_initial_slice=*/false);
}
}  // namespace

double relative_l2(FieldModel& model, const quantum::SpaceTimeField& reference,
                   const Domain& domain, std::int64_t nx, std::int64_t nt) {
  const Tensor X = evaluation_grid(domain, nx, nt);
  const Tensor pred = model.evaluate(X);
  const Tensor ref = sample_reference(reference, X);
  double num = 0.0, den = 0.0;
  const double* pp = pred.data();
  const double* pr = ref.data();
  const std::int64_t n = pred.numel();
  for (std::int64_t i = 0; i < n; ++i) {
    const double diff = pp[i] - pr[i];
    num += diff * diff;
    den += pr[i] * pr[i];
  }
  QPINN_CHECK(den > 0.0, "relative_l2: reference is identically zero");
  return std::sqrt(num / den);
}

double max_abs_error(FieldModel& model,
                     const quantum::SpaceTimeField& reference,
                     const Domain& domain, std::int64_t nx, std::int64_t nt) {
  const Tensor X = evaluation_grid(domain, nx, nt);
  const Tensor pred = model.evaluate(X);
  const Tensor ref = sample_reference(reference, X);
  double max_err = 0.0;
  const double* pp = pred.data();
  const double* pr = ref.data();
  for (std::int64_t r = 0; r < pred.rows(); ++r) {
    const double du = pp[2 * r] - pr[2 * r];
    const double dv = pp[2 * r + 1] - pr[2 * r + 1];
    max_err = std::max(max_err, std::sqrt(du * du + dv * dv));
  }
  return max_err;
}

std::vector<double> norm_series(FieldModel& model, const Domain& domain,
                                std::int64_t nx,
                                const std::vector<double>& times) {
  QPINN_CHECK(nx >= 2, "norm_series needs nx >= 2");
  QPINN_CHECK(!times.empty(), "norm_series needs at least one time");
  const Tensor xs = Tensor::linspace(domain.x_lo, domain.x_hi, nx);
  const double dx = domain.x_span() / static_cast<double>(nx - 1);

  std::vector<double> series;
  series.reserve(times.size());
  Tensor X(Shape{nx, 2});
  for (double t : times) {
    double* p = X.data();
    for (std::int64_t i = 0; i < nx; ++i) {
      p[2 * i] = xs[i];
      p[2 * i + 1] = t;
    }
    const Tensor out = model.evaluate(X);
    const double* po = out.data();
    double acc = 0.0;
    for (std::int64_t i = 0; i < nx; ++i) {
      const double density = po[2 * i] * po[2 * i] + po[2 * i + 1] * po[2 * i + 1];
      const double weight = (i == 0 || i == nx - 1) ? 0.5 : 1.0;
      acc += weight * density;
    }
    series.push_back(acc * dx);
  }
  return series;
}

double max_norm_drift(const std::vector<double>& series) {
  QPINN_CHECK(!series.empty(), "empty norm series");
  double drift = 0.0;
  for (double value : series) {
    drift = std::max(drift, std::abs(value - series.front()));
  }
  return drift;
}

}  // namespace qpinn::core

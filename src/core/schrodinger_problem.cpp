#include "core/schrodinger_problem.hpp"

#include "autodiff/derivatives.hpp"
#include "util/error.hpp"

namespace qpinn::core {

using autodiff::Variable;
using namespace autodiff;

void SchrodingerProblem::Config::validate() const {
  domain.validate();
  if (!initial) throw ConfigError("SchrodingerProblem: initial op required");
  if (!reference_field) {
    throw ConfigError("SchrodingerProblem: reference field required");
  }
  if (weight_ic < 0.0 || weight_bc < 0.0 || weight_norm < 0.0) {
    throw ConfigError("SchrodingerProblem: loss weights must be >= 0");
  }
  if (norm_quad_nx < 2 || norm_quad_nt < 1) {
    throw ConfigError("SchrodingerProblem: invalid norm quadrature sizes");
  }
}

SchrodingerProblem::SchrodingerProblem(Config config)
    : config_(std::move(config)) {
  config_.validate();
}

Variable SchrodingerProblem::residual(FieldModel& model,
                                      const Variable& X) const {
  const Variable out = model.forward(X);
  const Variable u = slice_cols(out, 0, 1);
  const Variable v = slice_cols(out, 1, 2);

  const Variable u_t = partial(u, X, 1);
  const Variable v_t = partial(v, X, 1);
  const Variable u_xx = partial_n(u, X, 0, 2);
  const Variable v_xx = partial_n(v, X, 0, 2);

  // Effective potential V + g |psi|^2.
  Variable v_eff;
  if (config_.potential) {
    v_eff = config_.potential(slice_cols(X, 0, 1));
  }
  if (config_.nonlinearity != 0.0) {
    const Variable density = add(square(u), square(v));
    const Variable cubic = scale(density, config_.nonlinearity);
    v_eff = v_eff.defined() ? add(v_eff, cubic) : cubic;
  }

  Variable r1 = add(neg(v_t), scale(u_xx, 0.5));
  Variable r2 = add(u_t, scale(v_xx, 0.5));
  if (v_eff.defined()) {
    r1 = sub(r1, mul(v_eff, u));
    r2 = sub(r2, mul(v_eff, v));
  }
  return concat_cols({r1, r2});
}

std::vector<LossTerm> SchrodingerProblem::auxiliary_losses(
    FieldModel& model, const CollocationSet& points) const {
  std::vector<LossTerm> losses;

  // Initial condition (redundant — and skipped — under a hard-IC model).
  if (config_.weight_ic > 0.0 && !model.has_hard_ic()) {
    QPINN_CHECK(points.initial.rank() == 2,
                "IC loss requires initial collocation points");
    const Variable Xi = Variable::constant(points.initial);
    const Variable out = model.forward(Xi);
    auto [u0, v0] = config_.initial(slice_cols(Xi, 0, 1));
    const Variable du = sub(slice_cols(out, 0, 1), u0);
    const Variable dv = sub(slice_cols(out, 1, 2), v0);
    losses.push_back(
        {"ic", config_.weight_ic, add(mse(du), mse(dv))});
  }

  // Soft Dirichlet walls (periodic problems enforce BCs in the model).
  if (config_.weight_bc > 0.0 && !config_.periodic_x &&
      points.boundary.rank() == 2) {
    const Variable Xb = Variable::constant(points.boundary);
    const Variable out = model.forward(Xb);
    losses.push_back({"bc", config_.weight_bc, mse(out)});
  }

  if (config_.weight_norm > 0.0) {
    losses.push_back(
        {"norm", config_.weight_norm, norm_conservation_loss(model)});
  }
  return losses;
}

Variable SchrodingerProblem::norm_conservation_loss(FieldModel& model) const {
  const Domain& d = config_.domain;
  const std::int64_t nx = config_.norm_quad_nx;
  const std::int64_t nt = config_.norm_quad_nt;

  // Quadrature points: nt time slices, each with the same nx x-grid,
  // rows grouped by slice so a reshape recovers (nt, nx).
  Tensor quad(Shape{nx * nt, 2});
  {
    const Tensor xs = Tensor::linspace(d.x_lo, d.x_hi, nx);
    const Tensor ts = Tensor::linspace(d.t_lo, d.t_hi, nt);
    double* p = quad.data();
    for (std::int64_t j = 0; j < nt; ++j) {
      for (std::int64_t i = 0; i < nx; ++i) {
        *p++ = xs[i];
        *p++ = ts[j];
      }
    }
  }

  // Trapezoid weights (dx at interior points, dx/2 at the walls).
  Tensor weights(Shape{nx, 1});
  {
    const double dx = d.x_span() / static_cast<double>(nx - 1);
    for (std::int64_t i = 0; i < nx; ++i) weights[i] = dx;
    weights[0] *= 0.5;
    weights[nx - 1] *= 0.5;
  }

  const Variable Xq = Variable::constant(quad);
  const Variable out = model.forward(Xq);
  const Variable density =
      add(square(slice_cols(out, 0, 1)), square(slice_cols(out, 1, 2)));
  const Variable per_slice = reshape(density, Shape{nt, nx});
  const Variable norms = matmul(per_slice, Variable::constant(weights));
  return mse(add_scalar(norms, -config_.norm_target));
}

}  // namespace qpinn::core

// The PINN training loop.
//
// Serial and data-parallel paths compute the *same* loss decomposition:
// the interior residual MSE is split into contiguous row shards, each
// worker builds its own forward/backward graph against the shared
// parameter leaves, and the per-shard gradients are reduced in shard order
// (deterministic). This mirrors the batch-parallel GPU training of the
// original system on a shared-memory thread pool.
//
// The loop is fault-tolerant: optional crash-consistent checkpoints with
// resume (TrainConfig::checkpoint / resume_from), automatic rollback + LR
// backoff on divergence (TrainConfig::recovery), and cooperative shutdown
// (Trainer::request_stop / TrainConfig::stop_flag) that finishes the
// current epoch and writes a final checkpoint.
#pragma once

#include <atomic>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "autodiff/plan.hpp"
#include "autodiff/precision.hpp"
#include "core/checkpoint.hpp"
#include "core/curriculum.hpp"
#include "core/metrics.hpp"
#include "core/problem.hpp"
#include "dist/communicator.hpp"
#include "optim/adam.hpp"
#include "optim/lbfgs.hpp"
#include "optim/scheduler.hpp"
#include "tensor/simd.hpp"

namespace qpinn::core {

/// Graph capture & replay policy for the training step. kEnv (default)
/// follows QPINN_GRAPH (replay is on unless QPINN_GRAPH=off); kOn/kOff
/// override the environment.
enum class GraphMode { kEnv, kOn, kOff };

/// Divergence-recovery policy. When a step's loss or gradients go
/// non-finite — or the loss exceeds `explosion_factor` times the minimum of
/// the trailing window — the trainer rolls model, optimizer, and RNG back
/// to the last good in-memory snapshot, decays the LR by `lr_backoff`, and
/// retries from there; after `max_recoveries` rollbacks it gives up
/// gracefully (TrainResult.diverged) instead of throwing.
struct RecoveryConfig {
  std::int64_t max_recoveries = 3;
  double lr_backoff = 0.5;  ///< multiplied into the LR on each recovery
  /// Diverged when loss > factor * min(trailing window); 0 disables the
  /// explosion check (non-finite values still trigger recovery).
  double explosion_factor = 0.0;
  std::int64_t explosion_window = 20;
  /// In-memory snapshot cadence in epochs (rollback granularity).
  std::int64_t snapshot_every = 25;

  void validate() const;
};

/// One rollback performed by the divergence-recovery policy.
struct RecoveryEvent {
  std::int64_t detected_epoch = 0;  ///< epoch whose step diverged
  std::int64_t rollback_epoch = 0;  ///< last good epoch restored
  double lr_scale = 1.0;            ///< LR multiplier in effect afterwards
  std::string reason;
};

/// Optional L-BFGS refinement after the Adam epochs — the classical PINN
/// two-stage recipe. The second stage runs eagerly in fp64 on the full
/// interior set (no plan capture, no mixed-precision demotion) and is
/// skipped when the Adam stage diverged or was interrupted.
struct SecondStageConfig {
  bool enabled = false;
  optim::LbfgsConfig lbfgs{};
};

struct TrainConfig {
  std::int64_t epochs = 2000;
  optim::AdamConfig adam{};       ///< adam.lr is the base learning rate
  double lr_decay = 1.0;          ///< multiplicative factor (1 = constant)
  std::int64_t lr_decay_every = 2000;
  double grad_clip = 0.0;         ///< global-norm clip; 0 disables
  double weight_pde = 1.0;        ///< weight of the interior residual MSE
  std::optional<CurriculumConfig> curriculum;
  SamplingConfig sampling{};
  /// Draw a fresh interior collocation set every `resample_every` epochs
  /// (0 = fixed set). Only meaningful for random/LHS samplers; the key
  /// defense against residual overfitting at fixed points.
  std::int64_t resample_every = 0;
  /// Evaluate relative L2 against the reference every `eval_every` epochs
  /// (0: only at the end). Evaluation uses a metric_nx x metric_nt grid.
  std::int64_t eval_every = 0;
  std::int64_t metric_nx = 64;
  std::int64_t metric_nt = 32;
  /// Emit a log line every `log_every` epochs (0: silent).
  std::int64_t log_every = 0;
  /// Interior-shard count for data-parallel training (1 = serial).
  std::size_t threads = 1;
  /// Throw NumericsError when the loss goes non-finite. (With `recovery`
  /// set, non-finite steps are rolled back instead of thrown regardless.)
  bool check_finite = true;
  /// Roll back + LR-backoff on divergence instead of throwing.
  std::optional<RecoveryConfig> recovery;
  /// Periodic crash-consistent checkpoints (last/best rotation).
  std::optional<CheckpointConfig> checkpoint;
  /// Path of a v2 training checkpoint to resume from (empty: fresh start).
  std::string resume_from;
  /// Optional external stop flag (e.g. set from a SIGINT handler); polled
  /// after every epoch, same semantics as Trainer::request_stop().
  const std::atomic<bool>* stop_flag = nullptr;
  /// Capture the training step into an execution plan on the first epoch
  /// and replay it afterwards (autodiff/plan.hpp). Replay is bit-identical
  /// to eager execution, so this is purely a performance choice.
  GraphMode graph = GraphMode::kEnv;
  /// Multi-process data-parallel training (dist/communicator.hpp): each
  /// rank computes one contiguous interior shard — the same partition
  /// arithmetic as `threads` sharding — and gradients are all-reduced in
  /// rank order, so an N-rank run is bit-identical to a single-process
  /// run with threads = N. Dist mode forces eager execution (a captured
  /// plan would pin a sharding that rank failure can reshape mid-run) and
  /// is mutually exclusive with threads > 1. Only rank 0 writes
  /// checkpoints; `resume_from` plus Communicator::rejoined() drives the
  /// elastic-rejoin path. Null: single-process training.
  std::shared_ptr<dist::Communicator> dist;
  /// L-BFGS refinement stage after the Adam epochs (see SecondStageConfig).
  SecondStageConfig second_stage{};

  void validate() const;
};

struct EpochRecord {
  std::int64_t epoch = 0;
  double total_loss = 0.0;
  double pde_loss = 0.0;
  std::vector<std::pair<std::string, double>> aux_losses;
  double l2 = std::numeric_limits<double>::quiet_NaN();  ///< NaN: not evaluated
  double lr = 0.0;
  double grad_norm = 0.0;
};

struct TrainResult {
  std::vector<EpochRecord> history;
  double final_loss = 0.0;
  double final_l2 = 0.0;
  double seconds = 0.0;
  std::int64_t epochs_run = 0;
  /// First epoch of this fit() call (nonzero when resumed).
  std::int64_t start_epoch = 0;
  /// Every rollback performed; recoveries == recovery_events.size().
  std::vector<RecoveryEvent> recovery_events;
  std::int64_t recoveries = 0;
  /// Gave up after max_recoveries (model restored to the last good state).
  bool diverged = false;
  /// Stopped cooperatively before the configured epoch count.
  bool interrupted = false;
  /// Rank losses survived via the distributed recovery state machine
  /// (checkpoint + rejoin/degrade + epoch retry).
  std::int64_t rank_failures = 0;

  /// First epoch record at-or-after `epoch` (for convergence plots).
  const EpochRecord& at_epoch(std::int64_t epoch) const;
};

class Trainer {
 public:
  Trainer(std::shared_ptr<Problem> problem, std::shared_ptr<FieldModel> model,
          TrainConfig config);

  /// Runs the configured number of epochs and returns the history.
  TrainResult fit();

  /// One optimization step on the stored collocation set; returns the
  /// epoch record (exposed for benchmarking single-step cost).
  EpochRecord step(std::int64_t epoch);

  /// Relative L2 of the current model against the problem reference.
  double evaluate_l2();

  /// One L-BFGS refinement pass over the current full-batch objective
  /// (the second stage of the classical Adam -> L-BFGS PINN recipe),
  /// using config.second_stage.lbfgs. Always eager fp64: no plan capture
  /// and no mixed-precision demotion, so the curvature estimates see the
  /// fp64 master weights directly. fit() invokes this automatically when
  /// second_stage.enabled; it is public so benchmarks can interleave
  /// refinement rounds with metric evaluation. `epoch` selects the
  /// curriculum weighting epoch (fit passes the last completed epoch;
  /// pass the Adam-stage epoch count when driving it manually — it is
  /// ignored without a curriculum).
  optim::LbfgsResult run_second_stage(std::int64_t epoch);

  /// Cooperative stop: the current epoch finishes, a final checkpoint is
  /// written (when checkpointing is configured), and fit() returns a
  /// partial TrainResult with interrupted = true. Async-signal-safe.
  void request_stop() {
    stop_requested_.store(true, std::memory_order_relaxed);
  }
  bool stop_requested() const;

  const CollocationSet& collocation() const { return points_; }
  FieldModel& model() { return *model_; }

  /// True when this trainer captures/replays execution plans.
  bool graph_enabled() const { return graph_enabled_; }

  /// Optimizer-pass statistics for each captured shard plan (observability:
  /// bench_report surfaces the thunk/arena reduction per training plan).
  /// Empty until the first captured step; all-zero when QPINN_PLAN_OPT is
  /// off.
  std::vector<autodiff::plan::PassStats> plan_pass_stats() const;

  /// Replaces the interior collocation set (e.g. to change the batch size
  /// between fit() calls). Any captured execution plan is invalidated on
  /// the next step, exactly like a resample.
  void replace_interior(Tensor interior) {
    points_.interior = std::move(interior);
    ++interior_generation_;
  }

 private:
  /// Loss + parameter gradients for the current epoch.
  struct LossAndGrads {
    double total = 0.0;
    double pde = 0.0;
    std::vector<std::pair<std::string, double>> aux;
    std::vector<Tensor> grads;
  };
  LossAndGrads compute(std::int64_t epoch);
  LossAndGrads compute_serial(std::int64_t epoch);
  LossAndGrads compute_parallel(std::int64_t epoch);
  LossAndGrads compute_dist(std::int64_t epoch);

  /// An auxiliary loss term pinned by a captured plan: replay recomputes
  /// `value` in place, and the host loop re-reads it per epoch.
  struct AuxBinding {
    std::string name;
    double weight = 0.0;
    Tensor value;
  };

  /// Shard-local weighted residual sum: sum(w * r^2) / (N_total * R),
  /// plus (on shard 0) the auxiliary losses. When aux terms are included,
  /// `aux_out` receives their unweighted values and `aux_weighted_sum`
  /// their weighted total (so the PDE component can be recovered without
  /// re-evaluating the losses); `aux_bindings` (when non-null) receives the
  /// scalar tensors themselves for plan replay.
  autodiff::Variable shard_loss(const Tensor& shard_points,
                                const Tensor& shard_weights,
                                std::int64_t total_rows, bool include_aux,
                                std::vector<std::pair<std::string, double>>*
                                    aux_out,
                                double* aux_weighted_sum,
                                std::vector<AuxBinding>* aux_bindings =
                                    nullptr);

  /// One shard's captured step: the plan plus the buffers the host loop
  /// reads (loss, grads, aux) or refreshes (curriculum weights) per replay.
  struct ShardPlan {
    autodiff::plan::ExecutionPlan plan;
    Tensor loss;
    std::vector<Tensor> grads;
    Tensor points;   ///< pinned shard slice of the interior set (parallel)
    Tensor weights;  ///< pinned shard weights (undefined without curriculum)
    std::int64_t r0 = 0, r1 = 0;  ///< interior row range of this shard
    std::vector<AuxBinding> aux;  ///< shard 0 only
  };

  /// Everything a captured plan depends on besides buffer contents; any
  /// change means the recorded kernel sequence (or its chunking) would
  /// diverge from eager, so the plan must be re-captured.
  struct PlanKey {
    const void* interior_data = nullptr;
    /// Monotonic count of interior-tensor *identity* changes (resample,
    /// replace_interior, snapshot/checkpoint restore). The data pointer
    /// alone is unsafe: the StoragePool can hand a freed buffer back at the
    /// same address for a different point set (ABA), which would silently
    /// replay a stale plan.
    std::uint64_t interior_generation = 0;
    Shape interior_shape;
    std::size_t pool_threads = 0;
    simd::Isa isa = simd::Isa::kScalar;
    bool curriculum = false;
    /// Mixed-precision demotion changes the replayed kernel sequence, so
    /// toggling QPINN_PRECISION between steps forces a re-capture.
    autodiff::Precision precision = autodiff::Precision::kFp64;
    bool operator==(const PlanKey&) const = default;
  };
  PlanKey current_plan_key() const;

  LossAndGrads capture_serial(std::int64_t epoch);
  LossAndGrads capture_parallel(std::int64_t epoch);
  /// Finalizes one shard's capture: runs the optimizer passes
  /// (autodiff/plan_passes.hpp) when QPINN_PLAN_OPT is on, then the
  /// mixed-precision demotion pass (autodiff/precision.hpp) when
  /// QPINN_PRECISION=mixed — demotion must be last, a demoted plan is
  /// terminal. The host-read buffers (loss, grads, aux) are declared as
  /// plan outputs for both. Called after the CaptureScope block, once the
  /// eager Variable graph is destroyed; thread-safe (per-shard state
  /// only).
  void optimize_shard_plan(ShardPlan& sp);
  LossAndGrads replay_serial(std::int64_t epoch);
  LossAndGrads replay_parallel(std::int64_t epoch);

  /// In-memory rollback point for divergence recovery.
  struct Snapshot {
    std::int64_t epoch = -1;  ///< last completed epoch at snapshot time
    std::vector<Tensor> params;
    optim::OptimizerState optimizer;
    RngState rng;
    Tensor interior;
  };
  Snapshot take_snapshot(std::int64_t epoch) const;
  void restore_snapshot(const Snapshot& snapshot);

  /// Checkpoint assembly / restore (epoch = last completed epoch).
  TrainingState make_state(std::int64_t epoch) const;
  void restore_state(const TrainingState& state);

  /// Opaque trainer state a rejoining rank receives over the transport
  /// (kSync): last completed epoch, LR scale, recoveries, best loss, and
  /// the resample RNG. apply returns the payload's epoch so fit() can
  /// verify it against the rejoiner's checkpoint.
  std::string make_dist_sync(std::int64_t epoch) const;
  std::int64_t apply_dist_sync(const std::string& payload);

  std::shared_ptr<Problem> problem_;
  std::shared_ptr<FieldModel> model_;
  TrainConfig config_;
  CollocationSet points_;
  Rng resample_rng_{0};
  std::vector<autodiff::Variable> params_;
  std::unique_ptr<optim::Adam> optimizer_;
  std::unique_ptr<optim::LrSchedule> schedule_;
  bool graph_enabled_ = false;
  /// QPINN_PLAN_OPT at construction: run the optimizer passes
  /// (autodiff/plan_passes.hpp) over every finalized capture.
  bool plan_opt_enabled_ = false;
  bool plans_ready_ = false;
  /// Bumped whenever points_.interior is rebound to a different tensor
  /// (see PlanKey::interior_generation). The in-place refresh path
  /// (copy_into) deliberately does NOT bump — same buffer, plan stays hot.
  std::uint64_t interior_generation_ = 0;
  PlanKey plan_key_;
  std::vector<ShardPlan> plans_;
  double lr_scale_ = 1.0;  ///< divergence-recovery LR backoff multiplier
  std::int64_t recoveries_ = 0;
  double best_loss_ = std::numeric_limits<double>::infinity();
  std::atomic<bool> stop_requested_{false};
  /// All-reduced sum of the ranks' stop flags from the latest dist step,
  /// so every rank stops at the same epoch (synchronized cooperative
  /// stop).
  double dist_stop_sum_ = 0.0;
};

}  // namespace qpinn::core

// The PINN problem abstraction.
//
// A Problem owns the physics: it turns a model and collocation points into
// residual matrices and auxiliary loss terms, and provides the reference
// solution the trained model is scored against.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/domain.hpp"
#include "core/field_model.hpp"
#include "quantum/analytic.hpp"

namespace qpinn::core {

/// One named, weighted scalar contribution to the total loss.
struct LossTerm {
  std::string name;
  double weight = 1.0;
  autodiff::Variable value;  ///< scalar Variable
};

class Problem {
 public:
  virtual ~Problem() = default;

  virtual std::string name() const = 0;
  virtual Domain domain() const = 0;

  /// PDE residual matrix (N, R) at interior points X (an (N, 2) leaf with
  /// requires_grad). Each column is one scalar residual equation; training
  /// drives all entries to zero. Rows stay aligned with X's rows so the
  /// trainer can apply per-point (curriculum) weights.
  virtual autodiff::Variable residual(FieldModel& model,
                                      const autodiff::Variable& X) const = 0;

  /// Number of residual columns.
  virtual std::int64_t residual_dim() const = 0;

  /// Auxiliary losses (IC, BC, norm conservation, ...) for the collocation
  /// set. Default weights are baked in here; the trainer can rescale by
  /// name.
  virtual std::vector<LossTerm> auxiliary_losses(
      FieldModel& model, const CollocationSet& points) const = 0;

  /// Ground truth psi(x, t) for metrics.
  virtual quantum::SpaceTimeField reference() const = 0;

  /// Whether the model should use exact x-periodicity (informs model
  /// construction; periodic problems need no wall loss).
  virtual bool periodic_x() const = 0;
};

}  // namespace qpinn::core

#include "core/field_ops.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace qpinn::core {

using autodiff::Variable;
using namespace autodiff;  // op vocabulary

Variable sech_op(const Variable& x) {
  return div(Variable::constant(2.0), add(exp(x), exp(neg(x))));
}

FieldOp gaussian_packet_ic(double x0, double k0, double sigma0) {
  QPINN_CHECK(sigma0 > 0.0, "packet width must be positive");
  const double norm =
      std::pow(2.0 * std::numbers::pi * sigma0 * sigma0, -0.25);
  const double a = 1.0 / (4.0 * sigma0 * sigma0);
  return [=](const Variable& x) {
    const Variable dx = add_scalar(x, -x0);
    const Variable envelope = scale(exp(scale(square(dx), -a)), norm);
    const Variable phase = scale(dx, k0);
    return std::make_pair(mul(envelope, cos(phase)),
                          mul(envelope, sin(phase)));
  };
}

FieldOp coherent_state_ic(double x0) {
  const double norm = std::pow(std::numbers::pi, -0.25);
  return [=](const Variable& x) {
    const Variable dx = add_scalar(x, -x0);
    const Variable u0 = scale(exp(scale(square(dx), -0.5)), norm);
    const Variable v0 = Variable::constant(Tensor::zeros(x.shape()));
    return std::make_pair(u0, v0);
  };
}

FieldOp well_superposition_ic(double width, std::vector<double> coefficients) {
  QPINN_CHECK(width > 0.0, "well width must be positive");
  QPINN_CHECK(!coefficients.empty(), "need at least one coefficient");
  return [width, coefficients = std::move(coefficients)](const Variable& x) {
    const double amplitude = std::sqrt(2.0 / width);
    Variable u0 = Variable::constant(Tensor::zeros(x.shape()));
    for (std::size_t m = 0; m < coefficients.size(); ++m) {
      if (coefficients[m] == 0.0) continue;
      const double kn =
          static_cast<double>(m + 1) * std::numbers::pi / width;
      u0 = add(u0, scale(sin(scale(x, kn)), amplitude * coefficients[m]));
    }
    const Variable v0 = Variable::constant(Tensor::zeros(x.shape()));
    return std::make_pair(u0, v0);
  };
}

FieldOp sech_ic(double amplitude) {
  QPINN_CHECK(amplitude > 0.0, "sech amplitude must be positive");
  return [amplitude](const Variable& x) {
    return std::make_pair(scale(sech_op(x), amplitude),
                          Variable::constant(Tensor::zeros(x.shape())));
  };
}

FieldOp soliton_ic(double amplitude, double velocity) {
  QPINN_CHECK(amplitude > 0.0, "soliton amplitude must be positive");
  return [amplitude, velocity](const Variable& x) {
    const Variable envelope = scale(sech_op(scale(x, amplitude)), amplitude);
    const Variable phase = scale(x, velocity);
    return std::make_pair(mul(envelope, cos(phase)),
                          mul(envelope, sin(phase)));
  };
}

PotentialOp zero_potential_op() {
  return [](const Variable& x) {
    return Variable::constant(Tensor::zeros(x.shape()));
  };
}

PotentialOp harmonic_potential_op(double omega) {
  QPINN_CHECK(omega > 0.0, "harmonic omega must be positive");
  const double c = 0.5 * omega * omega;
  return [c](const Variable& x) { return scale(square(x), c); };
}

}  // namespace qpinn::core

#include "core/curriculum.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace qpinn::core {

void CurriculumConfig::validate() const {
  if (bins < 1) throw ConfigError("curriculum: bins must be >= 1");
  if (warmup_epochs < 1) {
    throw ConfigError("curriculum: warmup_epochs must be >= 1");
  }
  if (min_weight <= 0.0 || min_weight > 1.0) {
    throw ConfigError("curriculum: min_weight must be in (0, 1]");
  }
}

std::vector<double> curriculum_weights(const CurriculumConfig& config,
                                       std::int64_t epoch) {
  config.validate();
  std::vector<double> weights(static_cast<std::size_t>(config.bins));
  const double ramp =
      static_cast<double>(config.warmup_epochs) /
      static_cast<double>(config.bins);
  for (std::int64_t m = 0; m < config.bins; ++m) {
    if (m == 0) {
      weights[0] = 1.0;
      continue;
    }
    const double start = static_cast<double>(m - 1) * ramp;
    const double progress =
        (static_cast<double>(epoch) - start) / std::max(1.0, ramp);
    const double w =
        config.min_weight + (1.0 - config.min_weight) *
                                std::clamp(progress, 0.0, 1.0);
    weights[static_cast<std::size_t>(m)] = w;
  }
  return weights;
}

Tensor per_point_weights(const CurriculumConfig& config, const Domain& domain,
                         const Tensor& X, std::int64_t epoch) {
  QPINN_CHECK_SHAPE(X.rank() == 2 && X.cols() == 2,
                    "per_point_weights expects (N, 2) collocation points");
  const std::vector<double> bin_weights = curriculum_weights(config, epoch);
  const double t_span = domain.t_span();
  Tensor weights(Shape{X.rows(), 1});
  const double* px = X.data();
  double* pw = weights.data();
  for (std::int64_t r = 0; r < X.rows(); ++r) {
    const double t = px[2 * r + 1];
    const double fraction = std::clamp((t - domain.t_lo) / t_span, 0.0, 1.0);
    auto bin = static_cast<std::int64_t>(fraction *
                                         static_cast<double>(config.bins));
    bin = std::min(bin, config.bins - 1);
    pw[r] = bin_weights[static_cast<std::size_t>(bin)];
  }
  return weights;
}

}  // namespace qpinn::core

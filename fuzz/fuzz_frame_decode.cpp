// Fuzzes the transport frame decoder: the byte parser that every rank
// runs on data received from other processes. Malformed input of any kind
// must surface as a structured TransportError — never a crash, sanitizer
// report, or unbounded allocation — and a frame that does decode must
// re-encode to the identical wire bytes (the format has no redundancy, so
// decode followed by encode is the identity on valid frames).
#include <cstdint>
#include <cstring>
#include <string>

#include "dist/transport.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  try {
    const qpinn::dist::Frame frame =
        qpinn::dist::decode_frame(data, size, /*peer_rank=*/0);
    const std::string wire = qpinn::dist::encode_frame(frame);
    if (wire.size() != size ||
        std::memcmp(wire.data(), data, size) != 0) {
      __builtin_trap();  // round-trip broke: decoder and encoder disagree
    }
  } catch (const qpinn::Error&) {
    // Structured rejection is the expected outcome for malformed input.
  }
  return 0;
}

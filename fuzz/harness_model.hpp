// The tiny fixed model shared by the checkpoint/model harnesses and the
// seed generator. Seeds written by fuzz_gen_seeds must deserialize against
// exactly these parameters, so there is one definition of the shape.
#pragma once

#include "nn/mlp.hpp"
#include "nn/serialize.hpp"

namespace qpinn::fuzz {

inline nn::MlpConfig harness_mlp_config() {
  nn::MlpConfig config;
  config.in_dim = 2;
  config.out_dim = 2;
  config.hidden = {4};
  config.seed = 1;
  return config;
}

/// Parameters the harnesses deserialize into. One static instance per
/// process: libFuzzer calls the harness millions of times and model
/// construction must not dominate.
inline nn::NamedParams& harness_params() {
  static nn::Mlp net(harness_mlp_config());
  static nn::NamedParams params = net.named_parameters();
  return params;
}

}  // namespace qpinn::fuzz

// Writes the committed seed corpora (fuzz/corpus/<target>/) and the
// regression artifacts (fuzz/artifacts/<target>/) deterministically, using
// the real encoders so every valid seed is bit-exact against the current
// wire/file formats. Artifacts are the minimized adversarial inputs behind
// past hardening fixes; they are replayed by fuzz-regress and by the
// table-driven corrupted-input tests in checkpoint_test / dist_test, so a
// regression surfaces even in builds that never run the fuzzer itself.
//
// Usage: fuzz_gen_seeds <fuzz-dir>   (defaults to the current directory)
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "dist/transport.hpp"
#include "harness_model.hpp"
#include "optim/adam.hpp"
#include "util/binary_io.hpp"
#include "util/rng.hpp"

namespace {

namespace fs = std::filesystem;
using qpinn::Tensor;

void write_bytes(const fs::path& path, const std::string& bytes) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw qpinn::IoError("cannot write seed '" + path.string() + "'");
}

std::string read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

/// Overwrites `bytes` at `offset` with the raw representation of `value`.
template <typename T>
void patch_pod(std::string& bytes, std::size_t offset, T value) {
  std::memcpy(bytes.data() + offset, &value, sizeof(T));
}

std::string capture(const std::function<void(std::ostream&)>& writer) {
  std::ostringstream out(std::ios::binary);
  writer(out);
  return out.str();
}

// ---- frame_decode ------------------------------------------------------

void gen_frame_decode(const fs::path& corpus, const fs::path& artifacts) {
  qpinn::dist::Frame hello;
  hello.type = qpinn::dist::MsgType::kHello;
  hello.epoch = 1;
  hello.rank = 1;
  hello.payload = "rejoin";
  const std::string hello_wire = qpinn::dist::encode_frame(hello);

  qpinn::dist::Frame contrib;
  contrib.type = qpinn::dist::MsgType::kGradContrib;
  contrib.epoch = 7;
  contrib.rank = 2;
  contrib.payload = capture([](std::ostream& out) {
    for (double v : {0.5, -1.25, 3.0}) qpinn::write_pod(out, v);
  });

  // An unknown message type must be rejected with a structured
  // TransportError; committed as the corpus' first entry.
  std::string unknown_type = hello_wire;
  patch_pod(unknown_type, 4, std::uint32_t{99});

  // A hostile length field must be rejected before any allocation.
  std::string oversized_len = hello_wire;
  patch_pod(oversized_len, 24, std::uint64_t{1} << 40);

  std::string length_mismatch = hello_wire;
  patch_pod(length_mismatch, 24,
            static_cast<std::uint64_t>(hello.payload.size() + 1));

  std::string bad_crc = hello_wire;
  bad_crc.back() = static_cast<char>(bad_crc.back() ^ 0x01);

  write_bytes(corpus / "00_unknown_type.bin", unknown_type);
  write_bytes(corpus / "hello.bin", hello_wire);
  write_bytes(corpus / "grad_contrib.bin",
              qpinn::dist::encode_frame(contrib));
  write_bytes(corpus / "bad_crc.bin", bad_crc);
  write_bytes(corpus / "oversized_len.bin", oversized_len);
  write_bytes(corpus / "truncated.bin", hello_wire.substr(0, 20));

  write_bytes(artifacts / "unknown_type.bin", unknown_type);
  write_bytes(artifacts / "oversized_len.bin", oversized_len);
  write_bytes(artifacts / "length_mismatch.bin", length_mismatch);
  write_bytes(artifacts / "bad_crc.bin", bad_crc);
  write_bytes(artifacts / "short_buffer.bin", hello_wire.substr(0, 8));
}

// ---- checkpoint_load ---------------------------------------------------

void gen_checkpoint_load(const fs::path& corpus, const fs::path& artifacts) {
  fs::create_directories(corpus);
  const qpinn::nn::NamedParams& params = qpinn::fuzz::harness_params();

  qpinn::core::TrainingState state;
  state.epoch = 3;
  state.lr_scale = 0.5;
  state.recoveries = 1;
  state.best_loss = 2.5e-2;
  std::vector<qpinn::autodiff::Variable> variables;
  for (const auto& [name, variable] : params) variables.push_back(variable);
  qpinn::optim::Adam adam(variables, qpinn::optim::AdamConfig{});
  std::vector<Tensor> grads;
  for (const auto& v : variables) {
    grads.push_back(Tensor::ones(v.value().shape()));
  }
  adam.step(grads);
  state.optimizer = adam.export_state();
  qpinn::Rng rng(17);
  state.resample_rng = rng.state();
  state.interior = Tensor::from_vector({1, 2, 3, 4, 5, 6, 7, 8}, {4, 2});
  state.has_interior = true;

  const fs::path full = corpus / "full_state.qckpt";
  qpinn::core::Checkpointer::save_state(full.string(), params, state);
  const std::string full_bytes = read_bytes(full);

  // Trailer stripped, then truncated mid-section: the input that must hit
  // the remaining-bytes bound check, not a bad resize/read.
  const std::string no_trailer =
      full_bytes.substr(0, full_bytes.size() - 8);
  const std::string truncated_no_trailer =
      no_trailer.substr(0, (no_trailer.size() * 7) / 10);

  std::string bitflip = full_bytes;
  bitflip[bitflip.size() / 2] =
      static_cast<char>(bitflip[bitflip.size() / 2] ^ 0x10);

  // Valid prefix, then one section whose length field promises an
  // exabyte: must be rejected against the bytes actually remaining.
  const std::string huge_section_len = capture([&](std::ostream& out) {
    qpinn::nn::write_header(out);
    qpinn::nn::write_param_block(out, params);
    qpinn::write_pod(out, std::uint32_t{1});
    qpinn::write_string(out, "optim");
    qpinn::write_pod(out, std::uint64_t{1} << 60);
  });

  // A parameter tensor claiming 2^40 x 2^40 extents.
  const std::string huge_tensor_extent = capture([&](std::ostream& out) {
    qpinn::nn::write_header(out);
    qpinn::write_pod(out, std::uint64_t{1});
    qpinn::write_string(out, params.front().first);
    qpinn::write_pod(out, std::uint64_t{2});
    qpinn::write_pod(out, std::uint64_t{1} << 40);
    qpinn::write_pod(out, std::uint64_t{1} << 40);
  });

  const std::string huge_param_count = capture([](std::ostream& out) {
    qpinn::nn::write_header(out);
    qpinn::write_pod(out, std::uint64_t{1} << 50);
  });

  const std::string v1_reject = capture([&](std::ostream& out) {
    qpinn::nn::write_header(out, qpinn::nn::kCheckpointVersionV1);
    qpinn::nn::write_param_block(out, params);
  });

  write_bytes(corpus / "truncated_no_trailer.qckpt", truncated_no_trailer);
  write_bytes(corpus / "bitflip.qckpt", bitflip);
  write_bytes(corpus / "huge_section_len.qckpt", huge_section_len);

  write_bytes(artifacts / "truncated_no_trailer.qckpt",
              truncated_no_trailer);
  write_bytes(artifacts / "bitflip.qckpt", bitflip);
  write_bytes(artifacts / "huge_section_len.qckpt", huge_section_len);
  write_bytes(artifacts / "huge_tensor_extent.qckpt", huge_tensor_extent);
  write_bytes(artifacts / "huge_param_count.qckpt", huge_param_count);
  write_bytes(artifacts / "v1_reject.qckpt", v1_reject);
}

// ---- model_deserialize -------------------------------------------------

void gen_model_deserialize(const fs::path& corpus,
                           const fs::path& artifacts) {
  fs::create_directories(corpus);
  const qpinn::nn::NamedParams& params = qpinn::fuzz::harness_params();

  const fs::path v2 = corpus / "params_v2.qpnn";
  qpinn::nn::save_parameters(v2.string(), params);
  const std::string v2_bytes = read_bytes(v2);

  const std::string v1_bytes = capture([&](std::ostream& out) {
    qpinn::nn::write_header(out, qpinn::nn::kCheckpointVersionV1);
    qpinn::nn::write_param_block(out, params);
  });

  std::string bad_magic = v2_bytes;
  bad_magic[0] = 'X';

  std::string wrong_version = v2_bytes;
  patch_pod(wrong_version, 4, std::uint32_t{7});

  const std::string huge_name_len = capture([](std::ostream& out) {
    qpinn::nn::write_header(out);
    qpinn::write_pod(out, std::uint64_t{1});
    qpinn::write_pod(out, std::uint64_t{1} << 50);
  });

  const std::string huge_extent = capture([&](std::ostream& out) {
    qpinn::nn::write_header(out);
    qpinn::write_pod(out, std::uint64_t{1});
    qpinn::write_string(out, params.front().first);
    qpinn::write_pod(out, std::uint64_t{1});
    qpinn::write_pod(out, std::uint64_t{1} << 55);
  });

  write_bytes(corpus / "params_v1.qpnn", v1_bytes);
  write_bytes(corpus / "truncated.qpnn",
              v2_bytes.substr(0, v2_bytes.size() / 2));
  write_bytes(corpus / "bad_magic.qpnn", bad_magic);

  write_bytes(artifacts / "huge_name_len.qpnn", huge_name_len);
  write_bytes(artifacts / "huge_extent.qpnn", huge_extent);
  write_bytes(artifacts / "wrong_version.qpnn", wrong_version);
  write_bytes(artifacts / "truncated.qpnn",
              v2_bytes.substr(0, v2_bytes.size() / 2));
}

// ---- env_cli -----------------------------------------------------------

void gen_env_cli(const fs::path& corpus, const fs::path& artifacts) {
  write_bytes(corpus / "00_valid.txt",
              "1\n--verbose\n--epochs\n42\n--lr=0.5\n--dir\n/tmp/x");
  write_bytes(corpus / "flags_off.txt", "off\n--help");
  write_bytes(corpus / "bad_int.txt", "123abc\n--epochs=notanint");
  write_bytes(corpus / "unknown_opt.txt", "no\n--unknown=1");
  write_bytes(corpus / "missing_value.txt", "yes\n--epochs");
  write_bytes(corpus / "positional.txt", "TRUE\nstray");

  write_bytes(artifacts / "bad_int.txt", "123abc\n--epochs=notanint");
  write_bytes(artifacts / "missing_value.txt", "yes\n--epochs");
}

}  // namespace

int main(int argc, char** argv) {
  const fs::path root = argc > 1 ? fs::path(argv[1]) : fs::path(".");
  gen_frame_decode(root / "corpus" / "frame_decode",
                   root / "artifacts" / "frame_decode");
  gen_checkpoint_load(root / "corpus" / "checkpoint_load",
                      root / "artifacts" / "checkpoint_load");
  gen_model_deserialize(root / "corpus" / "model_deserialize",
                        root / "artifacts" / "model_deserialize");
  gen_env_cli(root / "corpus" / "env_cli", root / "artifacts" / "env_cli");
  std::printf("fuzz_gen_seeds: corpora written under %s\n",
              root.string().c_str());
  return 0;
}

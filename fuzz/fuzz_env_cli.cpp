// Fuzzes the two remaining untrusted-text parsers: environment-variable
// helpers (util/env) and the CLI argument parser (util/cli). The input is
// split on newlines — the first token becomes the value of a scratch
// environment variable read back through every env helper, the rest
// become argv for a parser declaring one option of each kind. Bad input
// must surface as ValueError (CLI) or fall back to defaults (env), never
// crash.
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/cli.hpp"
#include "util/env.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  std::vector<std::string> tokens(1);
  for (std::size_t i = 0; i < size; ++i) {
    const char c = static_cast<char>(data[i]);
    if (c == '\n') {
      tokens.emplace_back();
    } else {
      tokens.back().push_back(c);
    }
  }

  // setenv requires a NUL-free value; anything after an embedded NUL
  // would be invisible to getenv anyway.
  std::string env_value = tokens.front();
  const auto nul = env_value.find('\0');
  if (nul != std::string::npos) env_value.resize(nul);
  ::setenv("QPINN_FUZZ_SCRATCH", env_value.c_str(), 1);
  (void)qpinn::env_flag("QPINN_FUZZ_SCRATCH");
  (void)qpinn::env_int("QPINN_FUZZ_SCRATCH", -1);
  (void)qpinn::env_string("QPINN_FUZZ_SCRATCH", "fallback");

  qpinn::CliParser parser("fuzz_env_cli", "cli fuzz harness");
  parser.add_flag("verbose", "a flag");
  parser.add_int("epochs", 10, "an integer");
  parser.add_double("lr", 1e-3, "a double");
  parser.add_string("dir", "ckpt", "a string");
  std::vector<const char*> argv = {"fuzz_env_cli"};
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    argv.push_back(tokens[i].c_str());
  }
  try {
    parser.parse(static_cast<int>(argv.size()), argv.data());
    (void)parser.get_flag("verbose");
    (void)parser.get_int("epochs");
    (void)parser.get_double("lr");
    (void)parser.get_string("dir");
    (void)parser.help_text();
  } catch (const qpinn::Error&) {
    // Structured rejection is the expected outcome for malformed input.
  }
  return 0;
}

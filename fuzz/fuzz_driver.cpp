// Standalone replay engine for the fuzz harnesses.
//
// libFuzzer ships its own main() and is clang-only; this driver supplies
// the missing one everywhere else (gcc builds, including the ASan+UBSan CI
// leg) so the committed corpus replays in every sanitizer configuration.
// Each command-line argument is a file — or a directory whose regular
// files are replayed in sorted order — fed once through
// LLVMFuzzerTestOneInput, mirroring `./fuzz_target file...` under
// libFuzzer. A crash aborts the process, which is the failure signal
// tools/fuzz_regress.py keys on.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

void replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz_driver: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  std::fprintf(stderr, "fuzz_driver: replay %s (%zu bytes)\n", path.c_str(),
               bytes.size());
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                         bytes.size());
}

}  // namespace

int main(int argc, char** argv) {
  long long replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      std::vector<std::filesystem::path> files;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      std::sort(files.begin(), files.end());
      for (const auto& file : files) {
        replay_file(file);
        ++replayed;
      }
    } else {
      replay_file(arg);
      ++replayed;
    }
  }
  std::fprintf(stderr, "fuzz_driver: replayed %lld input(s), no crash\n",
               replayed);
  return 0;
}

// Fuzzes the v2 training-checkpoint loader: header, parameter block,
// section table, and the optional CRC-32 trailer. Checkpoints are parsed
// from disk after crashes and from operator-supplied resume paths, so a
// truncated, bit-rotted, or hostile file must yield a structured
// qpinn::Error (CheckpointError / IoError / ShapeError / ValueError) —
// never a crash or an allocation larger than the input itself implies.
#include <cstdint>
#include <string>

#include "core/checkpoint.hpp"
#include "harness_model.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  try {
    (void)qpinn::core::Checkpointer::load_state_from_bytes(
        std::string(reinterpret_cast<const char*>(data), size),
        qpinn::fuzz::harness_params(), "fuzz-input");
  } catch (const qpinn::Error&) {
    // Structured rejection is the expected outcome for malformed input.
  }
  return 0;
}

// Fuzzes the nn parameter deserializer (v1 and v2 files): the magic and
// version words, the parameter count, and per-parameter name lengths,
// tensor ranks, and extents. Every length field must be bounded before
// allocation, so malformed input yields a structured qpinn::Error rather
// than a crash or a multi-gigabyte resize.
#include <cstdint>
#include <string>

#include "harness_model.hpp"
#include "nn/serialize.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  try {
    qpinn::nn::load_parameters_from_bytes(
        std::string(reinterpret_cast<const char*>(data), size),
        qpinn::fuzz::harness_params(), "fuzz-input");
  } catch (const qpinn::Error&) {
    // Structured rejection is the expected outcome for malformed input.
  }
  return 0;
}

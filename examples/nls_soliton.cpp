// Nonlinear Schrödinger soliton: trains a PINN on the focusing NLS
//   i psi_t + 1/2 psi_xx + |psi|^2 psi = 0
// with a moving bright-soliton initial condition (exact periodicity of
// the model enforced by the sin/cos input embedding — no boundary loss),
// then prints |psi| profiles against the analytic soliton and the
// split-step Fourier solution.
#include <cmath>
#include <cstdio>

#include "core/benchmarks.hpp"
#include "core/trainer.hpp"
#include "fdm/split_step.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qpinn;
  using namespace qpinn::core;

  CliParser cli("nls_soliton", "PINN for the focusing NLS bright soliton");
  cli.add_int("epochs", 500, "training epochs");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }

  auto problem = make_nls_soliton_problem();
  const Domain domain = problem->domain();
  const auto analytic = problem->reference();

  // Split-step Fourier reference (spectral in space).
  fdm::SplitStepConfig ss;
  ss.grid = fdm::Grid1d{domain.x_lo, domain.x_hi, 256, true};
  ss.dt = 5e-4;
  ss.steps = static_cast<std::int64_t>(domain.t_span() / ss.dt);
  ss.store_every = ss.steps;
  ss.nonlinearity = -1.0;
  const fdm::WaveEvolution evolution =
      solve_split_step(ss, [&](double x) { return analytic(x, 0.0); });

  // PINN with exact x-periodicity.
  auto model = make_model_for(*problem, /*seed=*/5);
  TrainConfig config = default_train_config(cli.get_int("epochs"), 5);
  config.sampling.n_boundary = 0;
  Trainer trainer(problem, model, config);
  const TrainResult result = trainer.fit();
  std::printf("PINN rel L2 %.4f after %lld epochs (%.1fs)\n\n",
              result.final_l2, static_cast<long long>(result.epochs_run),
              result.seconds);

  // |psi| profile at the final time.
  const double t = domain.t_hi;
  Table table({"x", "|psi| analytic", "|psi| split-step", "|psi| PINN"});
  for (double x = -4.0; x <= 4.01; x += 1.0) {
    const double exact = std::abs(analytic(x, t));
    // Nearest split-step grid value.
    const auto idx = static_cast<std::size_t>(
        std::round((x - domain.x_lo) / ss.grid.dx()));
    const double spectral = std::abs(evolution.psi.back()[idx]);
    Tensor point(Shape{1, 2});
    point[0] = x;
    point[1] = t;
    const Tensor out = model->evaluate(point);
    const double pinn = std::hypot(out[0], out[1]);
    table.add_row({Table::fmt(x, 1), Table::fmt(exact, 4),
                   Table::fmt(spectral, 4), Table::fmt(pinn, 4)});
  }
  std::printf("%s", table.to_string("soliton envelope at t = t_final").c_str());
  std::printf(
      "\nThe soliton moves at v = 0.5 without changing shape; all three\n"
      "columns should peak at x = v * t with height 1.\n");
  return 0;
}

// Inverse quantum problem: recover a trap frequency from wavefunction
// observations.
//
// "Measurements" of a coherent state evolving in a harmonic trap with
// TRUE omega = 1 (optionally noisy) are fed to a PINN whose potential
// V = 1/2 omega^2 x^2 carries a TRAINABLE omega, initialized wrong. The
// joint optimization fits the data, satisfies the Schrödinger residual,
// and thereby identifies omega.
#include <cstdio>

#include "core/inverse_problem.hpp"
#include "quantum/analytic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qpinn;
  using namespace qpinn::core;

  CliParser cli("inverse_problem",
                "recover the trap frequency from psi observations");
  cli.add_int("epochs", 2500, "training epochs");
  cli.add_double("guess", 0.6, "initial omega guess (true value is 1.0)");
  cli.add_double("noise", 0.0, "observation noise stddev");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }

  InverseHarmonicConfig config;
  config.domain = Domain{-5.0, 5.0, 0.0, 1.0};
  const auto truth = quantum::ho_coherent_state(0.8);  // omega = 1 dynamics
  auto [points, values] = make_observations(
      truth, config.domain, 24, 12, cli.get_double("noise"), /*seed=*/1);
  config.data_points = points;
  config.data_values = values;
  config.omega_guess = cli.get_double("guess");
  config.initial = coherent_state_ic(0.8);
  config.epochs = cli.get_int("epochs");
  config.adam.lr = 3e-3;
  config.weight_data = 50.0;
  config.sampling.n_interior_x = 18;
  config.sampling.n_interior_t = 18;

  std::printf("observations: %lld samples, noise %.3f, omega guess %.2f\n",
              static_cast<long long>(points.rows()), cli.get_double("noise"),
              config.omega_guess);
  const InverseResult result = solve_inverse_harmonic(config);

  Table table({"epoch", "omega estimate"});
  const std::size_t n = result.omega_history.size();
  for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 10)) {
    table.add_row({std::to_string(i),
                   Table::fmt(result.omega_history[i], 4)});
  }
  table.add_row({std::to_string(n - 1), Table::fmt(result.omega, 4)});
  std::printf("%s", table.to_string("omega trajectory").c_str());
  std::printf(
      "\nrecovered omega = %.4f (true 1.0); data misfit %.2e\n"
      "The estimate dips while the network is still fitting the field,\n"
      "then climbs to the true frequency once the data term locks in.\n",
      result.omega, result.data_loss);
  return 0;
}

// Data-parallel PINN training: shards the collocation batch across the
// thread pool (the shared-memory stand-in for the original system's GPU
// batches), demonstrates that the decomposition is numerically exact, and
// reports the step-time scaling on this machine.
#include <cmath>
#include <cstdio>
#include <thread>

#include "core/benchmarks.hpp"
#include "core/trainer.hpp"
#include "parallel/thread_pool.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace qpinn;
  using namespace qpinn::core;

  CliParser cli("parallel_training", "data-parallel PINN training demo");
  cli.add_int("side", 30, "collocation points per axis (side^2 total)");
  cli.add_int("repeats", 5, "timed steps per configuration");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }
  const auto side = cli.get_int("side");
  const auto repeats = static_cast<int>(cli.get_int("repeats"));

  std::printf("hardware threads on this machine: %u\n\n",
              std::thread::hardware_concurrency());

  auto problem = make_free_packet_problem();
  Table table({"worker shards", "step ms", "loss (must agree)"});
  double serial_loss = 0.0;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    set_global_threads(threads);
    auto model = make_model_for(*problem, /*seed=*/6);
    TrainConfig config = default_train_config(/*epochs=*/1, /*seed=*/6);
    config.sampling.n_interior_x = side;
    config.sampling.n_interior_t = side;
    config.resample_every = 0;  // identical batch across configurations
    config.threads = threads;
    Trainer trainer(problem, model, config);

    trainer.step(0);  // warm-up
    Stopwatch watch;
    double loss = 0.0;
    for (int r = 0; r < repeats; ++r) loss = trainer.step(0).total_loss;
    const double ms = watch.millis() / repeats;
    if (threads == 1) serial_loss = loss;
    table.add_row({std::to_string(threads), Table::fmt(ms, 1),
                   Table::fmt_sci(loss, 10)});
  }
  set_global_threads(default_num_threads());

  std::printf("%s", table.to_string("one training step, same batch").c_str());
  std::printf(
      "\nThe loss column is identical across shard counts (up to last-digit\n"
      "floating-point association): the parallel decomposition computes the\n"
      "same mathematics, so speed is the only thing threads change.\n"
      "(serial loss = %.12e)\n",
      serial_loss);
  return 0;
}

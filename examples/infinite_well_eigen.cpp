// Solving the time-INdependent Schrödinger equation as an eigenvalue
// problem with a PINN: the particle-in-a-box spectrum is recovered state
// by state (trainable energy + normalization + deflation against lower
// states) and cross-checked against the analytic values and the
// finite-difference eigensolver.
#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/eigen_pinn.hpp"
#include "fdm/eigensolver.hpp"
#include "quantum/potentials.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qpinn;
  using namespace qpinn::core;

  CliParser cli("infinite_well_eigen",
                "eigen-PINN for the particle-in-a-box spectrum");
  cli.add_int("states", 2, "number of eigenstates to recover");
  cli.add_int("epochs", 1500, "epochs per state");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }
  const auto k = cli.get_int("states");

  EigenPinnConfig config;
  config.x_lo = 0.0;
  config.x_hi = 1.0;
  config.n_collocation = 64;
  config.hidden = {16, 16};
  config.epochs = cli.get_int("epochs");
  config.adam.lr = 5e-3;
  config.seed = 3;
  const EigenPinn solver(config);

  // Energy guesses: perturbed analytic values, standing in for the WKB
  // estimates a practitioner would use on an unknown potential.
  std::vector<double> guesses;
  for (long long n = 1; n <= k; ++n) {
    guesses.push_back(1.08 * quantum::infinite_well_eigenvalue(n, 1.0));
  }
  std::printf("training %lld states x %lld epochs...\n", k,
              cli.get_int("epochs"));
  const std::vector<EigenState> states = solver.solve_spectrum(guesses);

  // FD cross-check.
  const fdm::Grid1d grid{0.0, 1.0, 801, false};
  const auto fd = fdm::smallest_eigenvalues(
      fdm::build_hamiltonian(grid, nullptr), k);

  Table table({"n", "E analytic", "E finite-diff", "E eigen-PINN",
               "PINN rel err", "max |psi - exact|"});
  for (long long n = 1; n <= k; ++n) {
    const double exact = quantum::infinite_well_eigenvalue(n, 1.0);
    const EigenState& state = states[static_cast<std::size_t>(n - 1)];
    double max_err = 0.0;
    for (std::size_t i = 0; i < state.x.size(); ++i) {
      const double phi = std::sqrt(2.0) * std::sin(static_cast<double>(n) *
                                                   std::numbers::pi *
                                                   state.x[i]);
      max_err = std::max(max_err, std::abs(state.psi[i] - phi));
    }
    table.add_row({std::to_string(n), Table::fmt(exact, 5),
                   Table::fmt(fd[static_cast<std::size_t>(n - 1)], 5),
                   Table::fmt(state.energy, 5),
                   Table::fmt_sci(std::abs(state.energy - exact) / exact, 2),
                   Table::fmt(max_err, 4)});
  }
  std::printf("%s", table.to_string("particle-in-a-box spectrum").c_str());
  return 0;
}

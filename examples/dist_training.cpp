// Elastic multi-process data-parallel training.
//
//   ./dist_training --world 4                   # 4 ranks on this machine
//   ./dist_training --world 2 --degrade         # survivors reshard on loss
//
// Rank 0 runs here; the launcher fork+execs ranks 1..world-1 from this
// same binary. Gradients are all-reduced in rank order over an AF_UNIX
// transport, so an N-rank run is bit-identical to a single-process run
// with threads = N.
//
// Watch the failure machinery work — kill rank 1 at epoch 50 and see it
// restart, reload last.qckpt, re-sync over the transport, and finish with
// the same parameters an uninterrupted run produces:
//
//   QPINN_FAULT_KILL_RANK=1 QPINN_FAULT_AT=50 ./dist_training --world 2
//
// Delay or drop frames instead (the retry/heartbeat paths):
//
//   QPINN_FAULT_DELAY_MS=50 QPINN_FAULT_RANK=1 ./dist_training --world 2
//   QPINN_FAULT_DROP_MSG=10 QPINN_FAULT_COUNT=3 ./dist_training --world 2
//
// Ctrl-C requests a synchronized stop: the flag travels inside the
// reduction, every rank leaves the loop at the same epoch, and rank 0
// writes a final checkpoint. A second Ctrl-C kills the process group the
// hard way.
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>

#include "core/benchmarks.hpp"
#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "dist/communicator.hpp"
#include "dist/launcher.hpp"
#include "util/cli.hpp"
#include "util/env.hpp"

namespace {
std::atomic<bool> g_stop{false};

void handle_signal(int signum) {
  if (g_stop.load(std::memory_order_relaxed)) {
    std::signal(signum, SIG_DFL);
    std::raise(signum);
    return;
  }
  g_stop.store(true, std::memory_order_relaxed);
}

// Job shape shared with the worker ranks through their environment.
constexpr char kEnvEpochs[] = "QPINN_DIST_EX_EPOCHS";
constexpr char kEnvSeed[] = "QPINN_DIST_EX_SEED";
constexpr char kEnvDir[] = "QPINN_DIST_EX_DIR";

qpinn::core::TrainConfig job_config(std::int64_t epochs, std::int64_t seed) {
  qpinn::core::TrainConfig config =
      qpinn::core::default_train_config(epochs, static_cast<std::uint64_t>(seed));
  return config;
}

int worker_main(const qpinn::dist::WorkerArgs& args) {
  using namespace qpinn;
  try {
    const std::int64_t epochs = env_int(kEnvEpochs, 200);
    const std::int64_t seed = env_int(kEnvSeed, 3);
    auto problem = core::make_free_packet_problem();
    auto model = core::make_model_for(*problem, static_cast<std::uint64_t>(seed));
    core::TrainConfig config = job_config(epochs, seed);

    dist::DistConfig dc;
    dc.rank = args.rank;
    dc.world = args.world;
    dc.endpoint = args.endpoint;
    dc.rejoin = args.rejoin;
    dc.transport = dist::TransportOptions::from_env();
    config.dist = dist::Communicator::create(dc);
    if (args.rejoin) {
      config.resume_from = env_string(kEnvDir, "dist_checkpoints") +
                           "/last.qckpt";
    }
    core::Trainer trainer(problem, model, config);
    trainer.fit();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rank %lld: %s\n",
                 static_cast<long long>(args.rank), e.what());
    return 1;
  }
}
}  // namespace

int main(int argc, char** argv) {
  using namespace qpinn;
  using namespace qpinn::core;

  const dist::WorkerArgs worker_args = dist::parse_worker_argv(argc, argv);
  if (worker_args.is_worker) return worker_main(worker_args);

  CliParser cli("dist_training",
                "elastic multi-process data-parallel training");
  cli.add_int("world", 2, "number of ranks (processes)");
  cli.add_int("epochs", 200, "training epochs");
  cli.add_int("seed", 3, "model / sampling seed");
  cli.add_string("dir", "dist_checkpoints", "checkpoint directory");
  cli.add_flag("degrade", "reshard onto the survivors instead of rejoining");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  const std::int64_t world = cli.get_int("world");
  const std::int64_t epochs = cli.get_int("epochs");
  const std::int64_t seed = cli.get_int("seed");
  const std::string dir = cli.get_string("dir");
  const std::string endpoint =
      "/tmp/qpinn_dist_" + std::to_string(::getpid()) + ".sock";

  dist::LaunchConfig lc;
  lc.world = world;
  lc.endpoint = endpoint;
  lc.extra_env = {std::string(kEnvEpochs) + "=" + std::to_string(epochs),
                  std::string(kEnvSeed) + "=" + std::to_string(seed),
                  std::string(kEnvDir) + "=" + dir};
  dist::Launcher launcher(lc);
  launcher.launch_all();

  dist::DistConfig dc;
  dc.rank = 0;
  dc.world = world;
  dc.endpoint = endpoint;
  dc.policy = cli.get_flag("degrade") ? dist::FailurePolicy::kDegrade
                                      : dist::FailurePolicy::kRejoin;
  dc.restart_rank = [&launcher](std::int64_t lost) {
    launcher.restart(lost, /*rejoin=*/true);
  };
  auto comm = dist::Communicator::create(dc);

  auto problem = make_free_packet_problem();
  auto model = make_model_for(*problem, static_cast<std::uint64_t>(seed));
  TrainConfig config = job_config(epochs, seed);
  config.log_every = std::max<std::int64_t>(1, epochs / 20);
  CheckpointConfig checkpoint;
  checkpoint.dir = dir;
  checkpoint.every = 25;
  config.checkpoint = checkpoint;
  config.stop_flag = &g_stop;
  config.dist = comm;

  Trainer trainer(problem, model, config);
  const TrainResult result = trainer.fit();
  const std::int64_t straggling = launcher.wait_all(/*timeout_ms=*/30000);

  std::printf(
      "\n%lld ranks, epochs %lld..%lld in %.1fs\n"
      "final loss        %.3e\n"
      "relative L2 error %.4f\n"
      "allreduces %lld  retransmits %lld  aborts %lld  recoveries %lld\n",
      static_cast<long long>(comm->world()),
      static_cast<long long>(result.start_epoch),
      static_cast<long long>(result.start_epoch + result.epochs_run - 1),
      result.seconds, result.final_loss, result.final_l2,
      static_cast<long long>(comm->stats().allreduces),
      static_cast<long long>(comm->stats().retransmits),
      static_cast<long long>(comm->stats().aborts),
      static_cast<long long>(comm->stats().recoveries));
  if (result.rank_failures > 0) {
    std::printf("survived %lld rank failure(s) via %s\n",
                static_cast<long long>(result.rank_failures),
                cli.get_flag("degrade") ? "graceful degrade"
                                        : "elastic rejoin");
  }
  if (result.interrupted) {
    std::printf("interrupted — all ranks stopped at the same epoch\n");
  }
  return straggling == 0 ? 0 : 1;
}

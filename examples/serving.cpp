// Serving: train a surrogate, promote its best checkpoint into an
// immutable compiled model, and answer point queries through the batched
// query queue — including a live hot-swap while clients keep querying.
//
//   ./serving                    # quick demo run
//   ./serving --epochs 400      # better surrogate before serving
//   ./serving --help
//
// Env knobs (see README "Serving"): QPINN_SERVE_BATCH,
// QPINN_SERVE_QUEUE_CAP, QPINN_SERVE_FLUSH_US, QPINN_SERVE_WORKERS,
// QPINN_SERVE_POLL_MS.
#include <cstdio>
#include <thread>
#include <vector>

#include "core/benchmarks.hpp"
#include "core/trainer.hpp"
#include "serve/promoter.hpp"
#include "serve/query_queue.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace qpinn;
  using namespace qpinn::core;
  using namespace qpinn::serve;

  CliParser cli("serving", "serve a trained PINN surrogate");
  cli.add_int("epochs", 150, "training epochs before the first promotion");
  cli.add_int("extra-epochs", 150, "additional epochs for the hot-swap");
  cli.add_int("clients", 4, "client threads issuing queries");
  cli.add_int("queries", 2000, "queries per client thread");
  cli.add_int("seed", 3, "model / sampling seed");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed"));

  // 1. Train briefly with best-checkpoint rotation enabled.
  auto problem = make_free_packet_problem();
  auto model = make_model_for(*problem, seed);
  TrainConfig config = default_train_config(cli.get_int("epochs"), seed);
  config.log_every = 0;
  config.eval_every = 0;
  config.checkpoint = CheckpointConfig{};
  config.checkpoint->dir = "serving_checkpoints";
  config.checkpoint->every = 25;
  Trainer trainer(problem, model, config);
  TrainResult result = trainer.fit();
  std::printf("trained %lld epochs, final loss %.3e\n",
              static_cast<long long>(result.epochs_run), result.final_loss);

  // 2. Promote best.qckpt into the registry: load into a fresh model,
  //    capture a forward-only plan, publish.
  auto registry = std::make_shared<ModelRegistry>();
  CheckpointPromoter promoter(
      registry, [&] { return make_model_for(*problem, seed); },
      promoter_config_from_env("serving_checkpoints/best.qckpt"));
  if (!promoter.poll_once()) {
    std::printf("no checkpoint to promote; aborting\n");
    return 1;
  }
  std::printf("serving epoch %lld (loss %.3e), plan of %zu kernels\n",
              static_cast<long long>(registry->current()->info().epoch),
              registry->current()->info().loss,
              registry->current()->plan_size());

  // 3. Serve: client threads issue point queries; the queue coalesces them
  //    into batched plan replays. Half-way through, train some more and
  //    hot-swap the improved checkpoint in — queries never stop.
  QueryQueue queue(registry, query_queue_config_from_env());
  const auto clients = static_cast<std::size_t>(cli.get_int("clients"));
  const std::int64_t per_client = cli.get_int("queries");
  Stopwatch watch;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const auto& domain = problem->domain();
      for (std::int64_t q = 0; q < per_client; ++q) {
        const double fx =
            static_cast<double>(q * (c + 1) % 1000) / 1000.0;
        const double x = domain.x_lo + fx * (domain.x_hi - domain.x_lo);
        const double t =
            domain.t_lo + 0.5 * static_cast<double>(q % 100) / 100.0 *
                              (domain.t_hi - domain.t_lo);
        (void)queue.query(x, t);
      }
    });
  }

  const std::int64_t extra = cli.get_int("extra-epochs");
  if (extra > 0) {
    TrainConfig more = config;
    more.epochs = cli.get_int("epochs") + extra;
    more.resume_from = "serving_checkpoints/last.qckpt";
    Trainer continued(problem, make_model_for(*problem, seed), more);
    continued.fit();
    const std::uint64_t before = registry->version();
    if (promoter.poll_once()) {
      std::printf("hot-swapped to epoch %lld (registry version %llu -> %llu)\n",
                  static_cast<long long>(promoter.promoted_epoch()),
                  static_cast<unsigned long long>(before),
                  static_cast<unsigned long long>(registry->version()));
    }
  }

  for (auto& thread : threads) thread.join();
  const double seconds = watch.seconds();
  queue.shutdown();

  const QueueStats stats = queue.stats();
  std::printf(
      "answered %llu queries in %.2fs (%.0f qps) across %llu batches "
      "(%llu full, %llu partial)\n",
      static_cast<unsigned long long>(stats.queries), seconds,
      static_cast<double>(stats.queries) / seconds,
      static_cast<unsigned long long>(stats.batches),
      static_cast<unsigned long long>(stats.full_batches),
      static_cast<unsigned long long>(stats.partial_batches));
  return 0;
}

// Fault-tolerant training: periodic crash-consistent checkpoints, resume,
// divergence recovery, and graceful shutdown on Ctrl-C.
//
//   ./resilient_training                        # fresh run, checkpoints
//   ./resilient_training --resume               # continue from last.qckpt
//   ./resilient_training --dir my_ckpts         # choose the checkpoint dir
//
// Press Ctrl-C mid-run: the current epoch finishes, a final checkpoint is
// written, and the partial result is reported. Re-running with --resume
// continues exactly where the interrupted run left off — same seeds, same
// collocation stream, bit-for-bit identical to a run that was never
// stopped. Kill -9 loses at most `--every` epochs of progress.
//
// Divergence recovery is also armed: if the loss ever goes non-finite or
// explodes past 100x the trailing minimum, the trainer rolls back to the
// last in-memory snapshot and retries at half the learning rate. Inject a
// fault to watch it work:
//
//   QPINN_FAULT_SITE=trainer.nan_loss QPINN_FAULT_AT=40 ./resilient_training
#include <atomic>
#include <csignal>
#include <cstdio>
#include <filesystem>

#include "core/benchmarks.hpp"
#include "core/checkpoint.hpp"
#include "core/trainer.hpp"
#include "util/cli.hpp"
#include "util/fault.hpp"

namespace {
// Signal handlers may only touch lock-free atomics; the trainer polls this
// flag after every epoch (TrainConfig::stop_flag).
std::atomic<bool> g_stop{false};

// First signal: request a cooperative stop (the epoch finishes and a final
// checkpoint is written). Second signal: the user means it — restore the
// default disposition and re-raise, so a wedged epoch cannot hold the
// process hostage. Both steps are async-signal-safe.
void handle_signal(int signum) {
  if (g_stop.load(std::memory_order_relaxed)) {
    std::signal(signum, SIG_DFL);
    std::raise(signum);
    return;
  }
  g_stop.store(true, std::memory_order_relaxed);
}
}  // namespace

int main(int argc, char** argv) {
  using namespace qpinn;
  using namespace qpinn::core;

  CliParser cli("resilient_training",
                "fault-tolerant PINN training with checkpoint/resume");
  cli.add_int("epochs", 600, "training epochs");
  cli.add_int("seed", 3, "model / sampling seed");
  cli.add_int("every", 25, "checkpoint cadence in epochs");
  cli.add_string("dir", "checkpoints", "checkpoint directory");
  cli.add_flag("resume", "resume from <dir>/last.qckpt");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }

  // Deterministic fault injection via QPINN_FAULT_SITE / QPINN_FAULT_AT.
  FaultInjector::instance().arm_from_env();

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  auto problem = make_free_packet_problem();
  auto model = make_model_for(*problem, cli.get_int("seed"));

  TrainConfig config =
      default_train_config(cli.get_int("epochs"), cli.get_int("seed"));
  config.log_every = std::max<std::int64_t>(1, cli.get_int("epochs") / 20);

  CheckpointConfig checkpoint;
  checkpoint.dir = cli.get_string("dir");
  checkpoint.every = cli.get_int("every");
  config.checkpoint = checkpoint;

  RecoveryConfig recovery;
  recovery.max_recoveries = 3;
  recovery.lr_backoff = 0.5;
  recovery.explosion_factor = 100.0;
  config.recovery = recovery;

  config.stop_flag = &g_stop;

  const std::string last = checkpoint.dir + "/last.qckpt";
  if (cli.get_flag("resume")) {
    if (!std::filesystem::exists(last)) {
      std::fprintf(stderr, "no checkpoint at %s — run without --resume\n",
                   last.c_str());
      return 1;
    }
    config.resume_from = last;
  }

  Trainer trainer(problem, model, config);
  const TrainResult result = trainer.fit();

  std::printf(
      "\nepochs %lld..%lld in %.1fs\n"
      "final loss        %.3e\n"
      "relative L2 error %.4f\n",
      static_cast<long long>(result.start_epoch),
      static_cast<long long>(result.start_epoch + result.epochs_run - 1),
      result.seconds, result.final_loss, result.final_l2);
  for (const auto& event : result.recovery_events) {
    std::printf("recovered at epoch %lld (rolled back to %lld, lr x%.3g)\n",
                static_cast<long long>(event.detected_epoch),
                static_cast<long long>(event.rollback_epoch), event.lr_scale);
  }
  if (result.diverged) {
    std::printf("diverged after %lld recoveries — kept the last good state\n",
                static_cast<long long>(result.recoveries));
  }
  if (result.interrupted) {
    std::printf("interrupted — resume with:  %s --resume --dir %s\n", argv[0],
                checkpoint.dir.c_str());
  }
  return result.diverged ? 2 : 0;
}

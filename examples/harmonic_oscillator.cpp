// Coherent-state dynamics in a harmonic trap, three ways:
//   1. analytic closed form,
//   2. Crank-Nicolson finite differences (the classical reference), and
//   3. a trained PINN,
// followed by a comparison of physical observables <x>(t) and N(t) —
// the coherent state's center must swing like a classical pendulum.
#include <cmath>
#include <cstdio>

#include "core/benchmarks.hpp"
#include "core/metrics.hpp"
#include "core/trainer.hpp"
#include "fdm/crank_nicolson.hpp"
#include "quantum/observables.hpp"
#include "quantum/potentials.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qpinn;
  using namespace qpinn::core;

  CliParser cli("harmonic_oscillator",
                "coherent-state dynamics: analytic vs Crank-Nicolson vs PINN");
  cli.add_int("epochs", 500, "PINN training epochs");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }

  auto problem = make_ho_coherent_problem();
  const Domain domain = problem->domain();
  const auto analytic = problem->reference();

  // Crank-Nicolson reference on the same domain.
  fdm::CrankNicolsonConfig cn;
  cn.grid = fdm::Grid1d{domain.x_lo, domain.x_hi, 600, false};
  cn.dt = 1e-3;
  cn.steps = static_cast<std::int64_t>(domain.t_span() / cn.dt);
  cn.store_every = cn.steps / 5;
  cn.potential = quantum::harmonic_potential();
  const fdm::WaveEvolution evolution = solve_tdse_crank_nicolson(
      cn, [&](double x) { return analytic(x, 0.0); });

  // PINN.
  auto model = make_model_for(*problem, /*seed=*/4);
  TrainConfig config = default_train_config(cli.get_int("epochs"), 4);
  Trainer trainer(problem, model, config);
  const TrainResult result = trainer.fit();
  std::printf("PINN: %lld params, rel L2 %.4f after %lld epochs (%.1fs)\n\n",
              static_cast<long long>(model->num_parameters()),
              result.final_l2, static_cast<long long>(result.epochs_run),
              result.seconds);

  // Observables at the CN snapshot times.
  Table table({"t", "<x> classical", "<x> CN", "<x> PINN", "N(t) PINN"});
  for (std::size_t k = 0; k < evolution.t.size(); ++k) {
    const double t = evolution.t[k];
    const double classical = 0.5 * std::cos(t);  // x0 cos(omega t)

    const double cn_mean =
        quantum::position_mean(cn.grid, evolution.psi[k]);

    // PINN observables from its predicted field on the same grid.
    const auto x = cn.grid.points();
    Tensor batch(Shape{static_cast<std::int64_t>(x.size()), 2});
    for (std::size_t i = 0; i < x.size(); ++i) {
      batch.at(static_cast<std::int64_t>(i), 0) = x[i];
      batch.at(static_cast<std::int64_t>(i), 1) = t;
    }
    const Tensor out = model->evaluate(batch);
    std::vector<fdm::Complex> psi(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      psi[i] = fdm::Complex(out.at(static_cast<std::int64_t>(i), 0),
                            out.at(static_cast<std::int64_t>(i), 1));
    }
    const double pinn_mean = quantum::position_mean(cn.grid, psi);
    const double pinn_norm = quantum::total_probability(cn.grid, psi);

    table.add_row({Table::fmt(t, 2), Table::fmt(classical, 4),
                   Table::fmt(cn_mean, 4), Table::fmt(pinn_mean, 4),
                   Table::fmt(pinn_norm, 4)});
  }
  std::printf("%s", table.to_string("coherent-state center of mass").c_str());
  std::printf(
      "\nEhrenfest check: <x>(t) must follow the classical trajectory\n"
      "x0 cos(t); N(t) must stay 1 (probability conservation).\n");
  return 0;
}

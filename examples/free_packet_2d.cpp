// Scaling the PINN to 2+1 dimensions: a free Gaussian packet moving in
// the plane, i psi_t = -1/2 (psi_xx + psi_yy). The exact solution is the
// product of two 1-D packets (the free Hamiltonian separates), so the
// solver is scored against a genuine closed form.
#include <cmath>
#include <cstdio>

#include "core/tdse2d.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace qpinn;
  using namespace qpinn::core;

  CliParser cli("free_packet_2d", "2+1-D free Gaussian packet PINN");
  cli.add_int("epochs", 400, "training epochs");
  cli.add_int("points", 768, "collocation points per epoch");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }

  Tdse2dConfig config;
  config.domain = Domain2d{-3.0, 3.0, -3.0, 3.0, 0.0, 0.4};
  // Packet at (-0.5, 0) moving along +x, slightly wider in y.
  config.reference = free_gaussian_packet_2d(-0.5, 1.0, 0.6, 0.0, 0.0, 0.7);
  config.initial = gaussian_packet_2d_ic(-0.5, 1.0, 0.6, 0.0, 0.0, 0.7);
  config.epochs = cli.get_int("epochs");
  config.n_interior = cli.get_int("points");
  config.hidden = {32, 32, 32};
  config.fourier = nn::FourierConfig{16, 1.0};
  config.seed = 3;
  config.log_every = std::max<std::int64_t>(1, config.epochs / 8);

  Tdse2dSolver solver(config);
  const double initial_l2 = solver.relative_l2(24, 24, 6);
  const Tdse2dResult result = solver.fit();
  std::printf(
      "\n2+1-D packet: loss %.3e, rel L2 %.4f (was %.4f untrained), %.0fs\n\n",
      result.final_loss, result.final_l2, initial_l2, result.seconds);

  // |psi| along the x axis at the final time (packet has drifted right).
  const double t = config.domain.t_hi;
  Table table({"x (y=0)", "|psi| exact", "|psi| PINN"});
  for (double x = -2.0; x <= 2.01; x += 0.5) {
    Tensor point(Shape{1, 3});
    point[0] = x;
    point[1] = 0.0;
    point[2] = t;
    const Tensor out = solver.evaluate(point);
    table.add_row({Table::fmt(x, 1),
                   Table::fmt(std::abs(config.reference(x, 0.0, t)), 4),
                   Table::fmt(std::hypot(out[0], out[1]), 4)});
  }
  std::printf("%s", table.to_string("slice y = 0, t = t_final").c_str());
  return 0;
}

// Quickstart: train a physics-informed neural network on the 1-D
// time-dependent Schrödinger equation for a free Gaussian wave packet and
// score it against the analytic solution.
//
//   ./quickstart                 # 2-minute default run
//   ./quickstart --epochs 2000   # better accuracy
//   ./quickstart --help
//
// This is the whole public-API workflow in ~40 lines: pick a benchmark
// problem, build the standard field model, run the trainer, evaluate.
#include <cstdio>

#include "core/benchmarks.hpp"
#include "core/trainer.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace qpinn;
  using namespace qpinn::core;

  CliParser cli("quickstart", "train a PINN on the free-packet TDSE");
  cli.add_int("epochs", 600, "training epochs");
  cli.add_int("seed", 3, "model / sampling seed");
  cli.add_flag("no-hard-ic", "disable the exact initial-condition transform");
  cli.parse(argc, argv);
  if (cli.help_requested()) {
    std::printf("%s", cli.help_text().c_str());
    return 0;
  }

  // 1. The physics: i psi_t = -1/2 psi_xx with a Gaussian packet IC.
  auto problem = make_free_packet_problem();

  // 2. The model: MLP + input normalization + random Fourier features,
  //    with psi(x, 0) enforced exactly unless ablated away.
  auto model = make_model_for(*problem, cli.get_int("seed"),
                              /*hard_ic=*/!cli.get_flag("no-hard-ic"));
  std::printf("model: %lld trainable parameters\n",
              static_cast<long long>(model->num_parameters()));

  // 3. Train: Adam + LR decay + per-epoch Latin-hypercube resampling.
  TrainConfig config =
      default_train_config(cli.get_int("epochs"), cli.get_int("seed"));
  config.eval_every = std::max<std::int64_t>(1, cli.get_int("epochs") / 10);
  config.log_every = config.eval_every;
  Trainer trainer(problem, model, config);
  const TrainResult result = trainer.fit();

  // 4. Score against the closed-form solution.
  std::printf(
      "\ntrained %lld epochs in %.1fs\n"
      "final loss        %.3e\n"
      "relative L2 error %.4f   (the trivial zero solution scores 1.0)\n",
      static_cast<long long>(result.epochs_run), result.seconds,
      result.final_loss, result.final_l2);
  return 0;
}

# Empty dependencies file for inverse_problem_test.
# This may be replaced when dependencies are built.

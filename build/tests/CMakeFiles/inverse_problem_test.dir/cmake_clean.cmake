file(REMOVE_RECURSE
  "CMakeFiles/inverse_problem_test.dir/inverse_problem_test.cpp.o"
  "CMakeFiles/inverse_problem_test.dir/inverse_problem_test.cpp.o.d"
  "inverse_problem_test"
  "inverse_problem_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverse_problem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

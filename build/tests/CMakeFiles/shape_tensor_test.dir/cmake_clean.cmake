file(REMOVE_RECURSE
  "CMakeFiles/shape_tensor_test.dir/shape_tensor_test.cpp.o"
  "CMakeFiles/shape_tensor_test.dir/shape_tensor_test.cpp.o.d"
  "shape_tensor_test"
  "shape_tensor_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shape_tensor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/tridiag_test.dir/tridiag_test.cpp.o"
  "CMakeFiles/tridiag_test.dir/tridiag_test.cpp.o.d"
  "tridiag_test"
  "tridiag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tridiag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

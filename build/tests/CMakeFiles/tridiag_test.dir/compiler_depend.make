# Empty compiler generated dependencies file for tridiag_test.
# This may be replaced when dependencies are built.

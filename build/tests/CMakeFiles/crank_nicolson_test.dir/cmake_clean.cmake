file(REMOVE_RECURSE
  "CMakeFiles/crank_nicolson_test.dir/crank_nicolson_test.cpp.o"
  "CMakeFiles/crank_nicolson_test.dir/crank_nicolson_test.cpp.o.d"
  "crank_nicolson_test"
  "crank_nicolson_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crank_nicolson_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for crank_nicolson_test.
# This may be replaced when dependencies are built.

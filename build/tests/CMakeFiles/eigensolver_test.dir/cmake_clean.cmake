file(REMOVE_RECURSE
  "CMakeFiles/eigensolver_test.dir/eigensolver_test.cpp.o"
  "CMakeFiles/eigensolver_test.dir/eigensolver_test.cpp.o.d"
  "eigensolver_test"
  "eigensolver_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eigensolver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for eigensolver_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/curriculum_test.dir/curriculum_test.cpp.o"
  "CMakeFiles/curriculum_test.dir/curriculum_test.cpp.o.d"
  "curriculum_test"
  "curriculum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/curriculum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tdse2d_test.
# This may be replaced when dependencies are built.

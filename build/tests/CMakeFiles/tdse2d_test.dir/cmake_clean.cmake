file(REMOVE_RECURSE
  "CMakeFiles/tdse2d_test.dir/tdse2d_test.cpp.o"
  "CMakeFiles/tdse2d_test.dir/tdse2d_test.cpp.o.d"
  "tdse2d_test"
  "tdse2d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdse2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/autodiff_grad_test.dir/autodiff_grad_test.cpp.o"
  "CMakeFiles/autodiff_grad_test.dir/autodiff_grad_test.cpp.o.d"
  "autodiff_grad_test"
  "autodiff_grad_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodiff_grad_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

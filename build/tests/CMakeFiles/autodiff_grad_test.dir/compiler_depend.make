# Empty compiler generated dependencies file for autodiff_grad_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/autodiff_ops_test.dir/autodiff_ops_test.cpp.o"
  "CMakeFiles/autodiff_ops_test.dir/autodiff_ops_test.cpp.o.d"
  "autodiff_ops_test"
  "autodiff_ops_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autodiff_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for autodiff_ops_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/field_model_test.dir/field_model_test.cpp.o"
  "CMakeFiles/field_model_test.dir/field_model_test.cpp.o.d"
  "field_model_test"
  "field_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/field_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for field_model_test.
# This may be replaced when dependencies are built.

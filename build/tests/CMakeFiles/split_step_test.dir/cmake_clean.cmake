file(REMOVE_RECURSE
  "CMakeFiles/split_step_test.dir/split_step_test.cpp.o"
  "CMakeFiles/split_step_test.dir/split_step_test.cpp.o.d"
  "split_step_test"
  "split_step_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_step_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for quantum_test.
# This may be replaced when dependencies are built.

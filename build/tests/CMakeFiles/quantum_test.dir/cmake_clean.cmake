file(REMOVE_RECURSE
  "CMakeFiles/quantum_test.dir/quantum_test.cpp.o"
  "CMakeFiles/quantum_test.dir/quantum_test.cpp.o.d"
  "quantum_test"
  "quantum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

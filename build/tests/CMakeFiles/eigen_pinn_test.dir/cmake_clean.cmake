file(REMOVE_RECURSE
  "CMakeFiles/eigen_pinn_test.dir/eigen_pinn_test.cpp.o"
  "CMakeFiles/eigen_pinn_test.dir/eigen_pinn_test.cpp.o.d"
  "eigen_pinn_test"
  "eigen_pinn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eigen_pinn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for eigen_pinn_test.
# This may be replaced when dependencies are built.

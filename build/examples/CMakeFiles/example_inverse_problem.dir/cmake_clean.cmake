file(REMOVE_RECURSE
  "CMakeFiles/example_inverse_problem.dir/inverse_problem.cpp.o"
  "CMakeFiles/example_inverse_problem.dir/inverse_problem.cpp.o.d"
  "inverse_problem"
  "inverse_problem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_inverse_problem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

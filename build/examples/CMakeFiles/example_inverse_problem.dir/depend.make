# Empty dependencies file for example_inverse_problem.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_nls_soliton.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_nls_soliton.dir/nls_soliton.cpp.o"
  "CMakeFiles/example_nls_soliton.dir/nls_soliton.cpp.o.d"
  "nls_soliton"
  "nls_soliton.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_nls_soliton.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

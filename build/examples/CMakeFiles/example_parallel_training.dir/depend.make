# Empty dependencies file for example_parallel_training.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_infinite_well_eigen.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_infinite_well_eigen.dir/infinite_well_eigen.cpp.o"
  "CMakeFiles/example_infinite_well_eigen.dir/infinite_well_eigen.cpp.o.d"
  "infinite_well_eigen"
  "infinite_well_eigen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_infinite_well_eigen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_free_packet_2d.dir/free_packet_2d.cpp.o"
  "CMakeFiles/example_free_packet_2d.dir/free_packet_2d.cpp.o.d"
  "free_packet_2d"
  "free_packet_2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_free_packet_2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

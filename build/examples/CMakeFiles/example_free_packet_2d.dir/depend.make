# Empty dependencies file for example_free_packet_2d.
# This may be replaced when dependencies are built.

# Empty dependencies file for example_harmonic_oscillator.
# This may be replaced when dependencies are built.

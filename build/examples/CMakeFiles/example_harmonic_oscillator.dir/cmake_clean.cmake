file(REMOVE_RECURSE
  "CMakeFiles/example_harmonic_oscillator.dir/harmonic_oscillator.cpp.o"
  "CMakeFiles/example_harmonic_oscillator.dir/harmonic_oscillator.cpp.o.d"
  "harmonic_oscillator"
  "harmonic_oscillator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_harmonic_oscillator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

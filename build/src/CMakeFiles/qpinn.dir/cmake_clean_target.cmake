file(REMOVE_RECURSE
  "libqpinn.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autodiff/derivatives.cpp" "src/CMakeFiles/qpinn.dir/autodiff/derivatives.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/autodiff/derivatives.cpp.o.d"
  "/root/repo/src/autodiff/grad.cpp" "src/CMakeFiles/qpinn.dir/autodiff/grad.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/autodiff/grad.cpp.o.d"
  "/root/repo/src/autodiff/gradcheck.cpp" "src/CMakeFiles/qpinn.dir/autodiff/gradcheck.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/autodiff/gradcheck.cpp.o.d"
  "/root/repo/src/autodiff/ops.cpp" "src/CMakeFiles/qpinn.dir/autodiff/ops.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/autodiff/ops.cpp.o.d"
  "/root/repo/src/autodiff/variable.cpp" "src/CMakeFiles/qpinn.dir/autodiff/variable.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/autodiff/variable.cpp.o.d"
  "/root/repo/src/core/benchmarks.cpp" "src/CMakeFiles/qpinn.dir/core/benchmarks.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/core/benchmarks.cpp.o.d"
  "/root/repo/src/core/curriculum.cpp" "src/CMakeFiles/qpinn.dir/core/curriculum.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/core/curriculum.cpp.o.d"
  "/root/repo/src/core/domain.cpp" "src/CMakeFiles/qpinn.dir/core/domain.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/core/domain.cpp.o.d"
  "/root/repo/src/core/eigen_pinn.cpp" "src/CMakeFiles/qpinn.dir/core/eigen_pinn.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/core/eigen_pinn.cpp.o.d"
  "/root/repo/src/core/field_model.cpp" "src/CMakeFiles/qpinn.dir/core/field_model.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/core/field_model.cpp.o.d"
  "/root/repo/src/core/field_ops.cpp" "src/CMakeFiles/qpinn.dir/core/field_ops.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/core/field_ops.cpp.o.d"
  "/root/repo/src/core/inverse_problem.cpp" "src/CMakeFiles/qpinn.dir/core/inverse_problem.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/core/inverse_problem.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/qpinn.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/schrodinger_problem.cpp" "src/CMakeFiles/qpinn.dir/core/schrodinger_problem.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/core/schrodinger_problem.cpp.o.d"
  "/root/repo/src/core/tdse2d.cpp" "src/CMakeFiles/qpinn.dir/core/tdse2d.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/core/tdse2d.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/CMakeFiles/qpinn.dir/core/trainer.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/core/trainer.cpp.o.d"
  "/root/repo/src/fdm/crank_nicolson.cpp" "src/CMakeFiles/qpinn.dir/fdm/crank_nicolson.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/fdm/crank_nicolson.cpp.o.d"
  "/root/repo/src/fdm/eigensolver.cpp" "src/CMakeFiles/qpinn.dir/fdm/eigensolver.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/fdm/eigensolver.cpp.o.d"
  "/root/repo/src/fdm/fft.cpp" "src/CMakeFiles/qpinn.dir/fdm/fft.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/fdm/fft.cpp.o.d"
  "/root/repo/src/fdm/grid.cpp" "src/CMakeFiles/qpinn.dir/fdm/grid.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/fdm/grid.cpp.o.d"
  "/root/repo/src/fdm/interpolate.cpp" "src/CMakeFiles/qpinn.dir/fdm/interpolate.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/fdm/interpolate.cpp.o.d"
  "/root/repo/src/fdm/numerov.cpp" "src/CMakeFiles/qpinn.dir/fdm/numerov.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/fdm/numerov.cpp.o.d"
  "/root/repo/src/fdm/split_step.cpp" "src/CMakeFiles/qpinn.dir/fdm/split_step.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/fdm/split_step.cpp.o.d"
  "/root/repo/src/fdm/tridiag.cpp" "src/CMakeFiles/qpinn.dir/fdm/tridiag.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/fdm/tridiag.cpp.o.d"
  "/root/repo/src/nn/activation.cpp" "src/CMakeFiles/qpinn.dir/nn/activation.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/nn/activation.cpp.o.d"
  "/root/repo/src/nn/fourier.cpp" "src/CMakeFiles/qpinn.dir/nn/fourier.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/nn/fourier.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/CMakeFiles/qpinn.dir/nn/init.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/nn/init.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/qpinn.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/mlp.cpp" "src/CMakeFiles/qpinn.dir/nn/mlp.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/nn/mlp.cpp.o.d"
  "/root/repo/src/nn/periodic.cpp" "src/CMakeFiles/qpinn.dir/nn/periodic.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/nn/periodic.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/CMakeFiles/qpinn.dir/nn/serialize.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/nn/serialize.cpp.o.d"
  "/root/repo/src/optim/adam.cpp" "src/CMakeFiles/qpinn.dir/optim/adam.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/optim/adam.cpp.o.d"
  "/root/repo/src/optim/lbfgs.cpp" "src/CMakeFiles/qpinn.dir/optim/lbfgs.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/optim/lbfgs.cpp.o.d"
  "/root/repo/src/optim/optimizer.cpp" "src/CMakeFiles/qpinn.dir/optim/optimizer.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/optim/optimizer.cpp.o.d"
  "/root/repo/src/optim/rmsprop.cpp" "src/CMakeFiles/qpinn.dir/optim/rmsprop.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/optim/rmsprop.cpp.o.d"
  "/root/repo/src/optim/scheduler.cpp" "src/CMakeFiles/qpinn.dir/optim/scheduler.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/optim/scheduler.cpp.o.d"
  "/root/repo/src/optim/sgd.cpp" "src/CMakeFiles/qpinn.dir/optim/sgd.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/optim/sgd.cpp.o.d"
  "/root/repo/src/parallel/parallel_for.cpp" "src/CMakeFiles/qpinn.dir/parallel/parallel_for.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/parallel/parallel_for.cpp.o.d"
  "/root/repo/src/parallel/thread_pool.cpp" "src/CMakeFiles/qpinn.dir/parallel/thread_pool.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/parallel/thread_pool.cpp.o.d"
  "/root/repo/src/quantum/analytic.cpp" "src/CMakeFiles/qpinn.dir/quantum/analytic.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/quantum/analytic.cpp.o.d"
  "/root/repo/src/quantum/hermite.cpp" "src/CMakeFiles/qpinn.dir/quantum/hermite.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/quantum/hermite.cpp.o.d"
  "/root/repo/src/quantum/observables.cpp" "src/CMakeFiles/qpinn.dir/quantum/observables.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/quantum/observables.cpp.o.d"
  "/root/repo/src/quantum/potentials.cpp" "src/CMakeFiles/qpinn.dir/quantum/potentials.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/quantum/potentials.cpp.o.d"
  "/root/repo/src/tensor/kernels.cpp" "src/CMakeFiles/qpinn.dir/tensor/kernels.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/tensor/kernels.cpp.o.d"
  "/root/repo/src/tensor/shape.cpp" "src/CMakeFiles/qpinn.dir/tensor/shape.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/tensor/shape.cpp.o.d"
  "/root/repo/src/tensor/tensor.cpp" "src/CMakeFiles/qpinn.dir/tensor/tensor.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/tensor/tensor.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/qpinn.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/env.cpp" "src/CMakeFiles/qpinn.dir/util/env.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/util/env.cpp.o.d"
  "/root/repo/src/util/error.cpp" "src/CMakeFiles/qpinn.dir/util/error.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/util/error.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/qpinn.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/qpinn.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/qpinn.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/qpinn.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

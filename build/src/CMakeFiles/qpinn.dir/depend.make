# Empty dependencies file for qpinn.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_autodiff.
# This may be replaced when dependencies are built.

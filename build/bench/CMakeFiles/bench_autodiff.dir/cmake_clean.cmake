file(REMOVE_RECURSE
  "CMakeFiles/bench_autodiff.dir/bench_autodiff.cpp.o"
  "CMakeFiles/bench_autodiff.dir/bench_autodiff.cpp.o.d"
  "bench_autodiff"
  "bench_autodiff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autodiff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/exp_t1_accuracy.dir/exp_t1_accuracy.cpp.o"
  "CMakeFiles/exp_t1_accuracy.dir/exp_t1_accuracy.cpp.o.d"
  "exp_t1_accuracy"
  "exp_t1_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t1_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

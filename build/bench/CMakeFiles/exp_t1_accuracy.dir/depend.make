# Empty dependencies file for exp_t1_accuracy.
# This may be replaced when dependencies are built.

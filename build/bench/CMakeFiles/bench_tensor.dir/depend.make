# Empty dependencies file for bench_tensor.
# This may be replaced when dependencies are built.

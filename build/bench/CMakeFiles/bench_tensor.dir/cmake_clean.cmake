file(REMOVE_RECURSE
  "CMakeFiles/bench_tensor.dir/bench_tensor.cpp.o"
  "CMakeFiles/bench_tensor.dir/bench_tensor.cpp.o.d"
  "bench_tensor"
  "bench_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

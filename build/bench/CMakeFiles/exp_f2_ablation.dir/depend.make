# Empty dependencies file for exp_f2_ablation.
# This may be replaced when dependencies are built.

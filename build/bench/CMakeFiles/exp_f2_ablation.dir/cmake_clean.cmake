file(REMOVE_RECURSE
  "CMakeFiles/exp_f2_ablation.dir/exp_f2_ablation.cpp.o"
  "CMakeFiles/exp_f2_ablation.dir/exp_f2_ablation.cpp.o.d"
  "exp_f2_ablation"
  "exp_f2_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f2_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

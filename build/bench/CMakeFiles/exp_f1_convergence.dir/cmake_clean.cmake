file(REMOVE_RECURSE
  "CMakeFiles/exp_f1_convergence.dir/exp_f1_convergence.cpp.o"
  "CMakeFiles/exp_f1_convergence.dir/exp_f1_convergence.cpp.o.d"
  "exp_f1_convergence"
  "exp_f1_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f1_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for exp_f1_convergence.
# This may be replaced when dependencies are built.

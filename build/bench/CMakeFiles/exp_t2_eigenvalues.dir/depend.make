# Empty dependencies file for exp_t2_eigenvalues.
# This may be replaced when dependencies are built.

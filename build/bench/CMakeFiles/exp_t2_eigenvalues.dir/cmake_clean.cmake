file(REMOVE_RECURSE
  "CMakeFiles/exp_t2_eigenvalues.dir/exp_t2_eigenvalues.cpp.o"
  "CMakeFiles/exp_t2_eigenvalues.dir/exp_t2_eigenvalues.cpp.o.d"
  "exp_t2_eigenvalues"
  "exp_t2_eigenvalues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t2_eigenvalues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

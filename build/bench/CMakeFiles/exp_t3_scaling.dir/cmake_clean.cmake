file(REMOVE_RECURSE
  "CMakeFiles/exp_t3_scaling.dir/exp_t3_scaling.cpp.o"
  "CMakeFiles/exp_t3_scaling.dir/exp_t3_scaling.cpp.o.d"
  "exp_t3_scaling"
  "exp_t3_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t3_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fdm.dir/bench_fdm.cpp.o"
  "CMakeFiles/bench_fdm.dir/bench_fdm.cpp.o.d"
  "bench_fdm"
  "bench_fdm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fdm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fdm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/exp_f3_norm_drift.dir/exp_f3_norm_drift.cpp.o"
  "CMakeFiles/exp_f3_norm_drift.dir/exp_f3_norm_drift.cpp.o.d"
  "exp_f3_norm_drift"
  "exp_f3_norm_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f3_norm_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for exp_f3_norm_drift.
# This may be replaced when dependencies are built.

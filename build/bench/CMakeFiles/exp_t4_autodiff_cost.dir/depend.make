# Empty dependencies file for exp_t4_autodiff_cost.
# This may be replaced when dependencies are built.

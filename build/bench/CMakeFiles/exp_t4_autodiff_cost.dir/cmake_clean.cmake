file(REMOVE_RECURSE
  "CMakeFiles/exp_t4_autodiff_cost.dir/exp_t4_autodiff_cost.cpp.o"
  "CMakeFiles/exp_t4_autodiff_cost.dir/exp_t4_autodiff_cost.cpp.o.d"
  "exp_t4_autodiff_cost"
  "exp_t4_autodiff_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_t4_autodiff_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for exp_f4_solver_orders.
# This may be replaced when dependencies are built.

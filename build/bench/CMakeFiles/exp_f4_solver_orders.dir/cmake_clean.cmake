file(REMOVE_RECURSE
  "CMakeFiles/exp_f4_solver_orders.dir/exp_f4_solver_orders.cpp.o"
  "CMakeFiles/exp_f4_solver_orders.dir/exp_f4_solver_orders.cpp.o.d"
  "exp_f4_solver_orders"
  "exp_f4_solver_orders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_f4_solver_orders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

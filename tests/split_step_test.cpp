#include <gtest/gtest.h>

#include <cmath>

#include "fdm/split_step.hpp"
#include "quantum/analytic.hpp"
#include "quantum/hermite.hpp"
#include "util/error.hpp"

namespace qpinn::fdm {
namespace {

TEST(SplitStep, SolitonPropagatesExactly) {
  const auto soliton = quantum::nls_bright_soliton(1.0, 1.0);
  SplitStepConfig config;
  config.grid = Grid1d{-12.0, 12.0, 512, true};
  config.dt = 1e-3;
  config.steps = 1000;  // t = 1
  config.store_every = 1000;
  config.nonlinearity = -1.0;
  const WaveEvolution evolution =
      solve_split_step(config, [&](double x) { return soliton(x, 0.0); });

  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < evolution.x.size(); ++i) {
    const Complex exact = soliton(evolution.x[i], 1.0);
    num += std::norm(evolution.psi.back()[i] - exact);
    den += std::norm(exact);
  }
  EXPECT_LT(std::sqrt(num / den), 1e-3);
}

TEST(SplitStep, MassConservedForNls) {
  SplitStepConfig config;
  config.grid = Grid1d{-10.0, 10.0, 256, true};
  config.dt = 2e-3;
  config.steps = 500;
  config.store_every = 100;
  config.nonlinearity = -1.0;
  const WaveEvolution evolution = solve_split_step(
      config, [](double x) { return quantum::nls_raissi_initial(x); });

  const double initial = evolution.norm_at(0, config.grid);
  for (std::size_t k = 1; k < evolution.psi.size(); ++k) {
    EXPECT_NEAR(evolution.norm_at(k, config.grid), initial, 1e-10);
  }
}

TEST(SplitStep, LinearCaseMatchesAnalyticPacket) {
  const auto reference = quantum::free_gaussian_packet(0.0, 1.0, 0.5);
  SplitStepConfig config;
  config.grid = Grid1d{-16.0, 16.0, 1024, true};
  config.dt = 1e-3;
  config.steps = 500;  // t = 0.5
  config.store_every = 500;
  config.nonlinearity = 0.0;
  const WaveEvolution evolution =
      solve_split_step(config, [&](double x) { return reference(x, 0.0); });

  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < evolution.x.size(); ++i) {
    const Complex exact = reference(evolution.x[i], 0.5);
    num += std::norm(evolution.psi.back()[i] - exact);
    den += std::norm(exact);
  }
  EXPECT_LT(std::sqrt(num / den), 1e-6);  // spectral accuracy in space
}

TEST(SplitStep, HarmonicPotentialPhaseEvolution) {
  // HO ground state under split-step with V = x^2/2 acquires only phase.
  SplitStepConfig config;
  config.grid = Grid1d{-10.0, 10.0, 256, true};
  config.dt = 1e-3;
  config.steps = 400;
  config.store_every = 400;
  config.potential = [](double x) { return 0.5 * x * x; };
  const WaveEvolution evolution = solve_split_step(config, [](double x) {
    return Complex(quantum::ho_eigenfunction(0, x), 0.0);
  });
  for (std::size_t i = 0; i < evolution.x.size(); ++i) {
    EXPECT_NEAR(std::abs(evolution.psi.back()[i]),
                std::abs(evolution.psi.front()[i]), 1e-6);
  }
}

TEST(SplitStep, ConfigValidation) {
  SplitStepConfig config;
  config.grid = Grid1d{-1.0, 1.0, 100, true};  // not a power of two
  EXPECT_THROW(config.validate(), ConfigError);
  config.grid.n = 128;
  config.grid.periodic = false;
  EXPECT_THROW(config.validate(), ConfigError);
  config.grid.periodic = true;
  config.dt = 0.0;
  EXPECT_THROW(config.validate(), ConfigError);
  config.dt = 1e-3;
  EXPECT_NO_THROW(config.validate());
}

TEST(SplitStep, RejectsMismatchedInitialState) {
  SplitStepConfig config;
  config.grid = Grid1d{-1.0, 1.0, 64, true};
  std::vector<Complex> wrong(32);
  EXPECT_THROW(solve_split_step(config, std::move(wrong)), ValueError);
}

}  // namespace
}  // namespace qpinn::fdm
